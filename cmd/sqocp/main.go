// Command sqocp demonstrates the appendix's NP-completeness chain on a
// PARTITION instance: PARTITION → SPPCS → SQO−CP, deciding every stage
// exactly and printing the constructed star-query instance's optimal
// plan against the reduction threshold.
//
// Usage:
//
//	sqocp -items 1,2,3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"approxqo/internal/sqocp"
)

func main() {
	itemsFlag := flag.String("items", "1,2,3", "comma-separated non-negative integers")
	flag.Parse()

	items, err := parseItems(*itemsFlag)
	if err != nil {
		fatal(err)
	}
	p := &sqocp.Partition{Items: items}
	yes, err := p.Decide()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("PARTITION %v: %v\n", items, verdict(yes))

	s, err := p.ToSPPCS()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("SPPCS: %d pairs, L = %v\n", len(s.P), s.L)
	sYes, mask, best, err := s.Decide()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("SPPCS optimum: %v at subset mask %b → %v\n", best, mask, verdict(sYes))

	red, err := sqocp.FromSPPCS(s, s.L)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("SQO−CP star query: %d satellites, J = %v, threshold M ≈ 2^%d\n",
		red.Star.M(), red.J, red.Threshold.BitLen()-1)
	qYes, plan, cost, err := red.Decide()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("optimal star plan: order %v, methods %v, cost ≈ 2^%d → %v\n",
		plan.Order, methodNames(plan.Methods), cost.BitLen()-1, verdict(qYes))

	if yes == sYes && sYes == qYes {
		fmt.Println("all three stages agree ✓")
	} else {
		fmt.Println("STAGE DISAGREEMENT — reduction bug")
		os.Exit(1)
	}
}

func parseItems(s string) ([]int64, error) {
	var out []int64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad item %q: %w", tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func verdict(yes bool) string {
	if yes {
		return "YES"
	}
	return "NO"
}

func methodNames(ms []sqocp.Method) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		if m == sqocp.NL {
			out[i] = "NL"
		} else {
			out[i] = "SM"
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqocp:", err)
	os.Exit(1)
}
