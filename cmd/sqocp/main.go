// Command sqocp demonstrates the appendix's NP-completeness chain on a
// PARTITION instance: PARTITION → SPPCS → SQO−CP, deciding every stage
// exactly and printing the constructed star-query instance's optimal
// plan against the reduction threshold.
//
// Usage:
//
//	sqocp -items 1,2,3
//	sqocp -items random -n 8 -seed 3 [-timeout 5s] [-json]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"approxqo/internal/cliutil"
	"approxqo/internal/sqocp"
)

var common = cliutil.Common{Seed: 1}

// result is sqocp's -json output: the three stage verdicts and the
// optimal star plan.
type result struct {
	Items        []int64  `json:"items"`
	Partition    bool     `json:"partition_yes"`
	SPPCS        bool     `json:"sppcs_yes"`
	SPPCSMask    string   `json:"sppcs_mask"`
	SQOCP        bool     `json:"sqocp_yes"`
	PlanOrder    []int    `json:"plan_order"`
	PlanMethods  []string `json:"plan_methods"`
	CostLog2Bits int      `json:"cost_log2_bits"`
	Agree        bool     `json:"stages_agree"`
}

func main() {
	common.Register(flag.CommandLine)
	itemsFlag := flag.String("items", "1,2,3", "comma-separated non-negative integers, or 'random' (see -n)")
	n := flag.Int("n", 6, "item count when -items random")
	flag.Parse()

	items, err := parseItems(*itemsFlag, *n, common.Seed)
	if err != nil {
		fatal(err)
	}

	// The decision chain is exact and fast; the timeout is a hard
	// backstop so a pathological instance cannot wedge scripted runs.
	ctx, cancel := common.Context()
	defer cancel()
	common.Observe("sqocp")
	defer common.Close("sqocp")
	type outcome struct {
		res *result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := decideAll(items)
		ch <- outcome{r, err}
	}()
	select {
	case oc := <-ch:
		if oc.err != nil {
			fatal(oc.err)
		}
		if common.JSON {
			if err := cliutil.WriteJSON(os.Stdout, oc.res); err != nil {
				fatal(err)
			}
		}
		if !oc.res.Agree {
			os.Exit(1)
		}
	case <-ctx.Done():
		fatal(fmt.Errorf("timed out after %v", common.Timeout))
	}
}

func decideAll(items []int64) (*result, error) {
	root := common.Tracer().Start("sqocp.decide")
	root.SetField("items", len(items))
	defer root.End()

	stage := root.Child("partition")
	p := &sqocp.Partition{Items: items}
	yes, err := p.Decide()
	stage.End()
	if err != nil {
		return nil, err
	}
	textf("PARTITION %v: %v\n", items, verdict(yes))

	stage = root.Child("sppcs")
	s, err := p.ToSPPCS()
	if err != nil {
		stage.End()
		return nil, err
	}
	textf("SPPCS: %d pairs, L = %v\n", len(s.P), s.L)
	sYes, mask, best, err := s.Decide()
	stage.End()
	if err != nil {
		return nil, err
	}
	textf("SPPCS optimum: %v at subset mask %b → %v\n", best, mask, verdict(sYes))

	stage = root.Child("sqocp")
	red, err := sqocp.FromSPPCS(s, s.L)
	if err != nil {
		stage.End()
		return nil, err
	}
	textf("SQO−CP star query: %d satellites, J = %v, threshold M ≈ 2^%d\n",
		red.Star.M(), red.J, red.Threshold.BitLen()-1)
	qYes, plan, cost, err := red.Decide()
	stage.End()
	if err != nil {
		return nil, err
	}
	textf("optimal star plan: order %v, methods %v, cost ≈ 2^%d → %v\n",
		plan.Order, methodNames(plan.Methods), cost.BitLen()-1, verdict(qYes))

	agree := yes == sYes && sYes == qYes
	root.SetField("agree", agree)
	if agree {
		common.Registry().Counter("sqocp.agree").Inc()
		textf("all three stages agree ✓\n")
	} else {
		common.Registry().Counter("sqocp.disagree").Inc()
		textf("STAGE DISAGREEMENT — reduction bug\n")
	}
	return &result{
		Items:        items,
		Partition:    yes,
		SPPCS:        sYes,
		SPPCSMask:    fmt.Sprintf("%b", mask),
		SQOCP:        qYes,
		PlanOrder:    plan.Order,
		PlanMethods:  methodNames(plan.Methods),
		CostLog2Bits: cost.BitLen() - 1,
		Agree:        agree,
	}, nil
}

// textf prints only in text mode, keeping -json output pure.
func textf(format string, args ...any) {
	if !common.JSON {
		fmt.Printf(format, args...)
	}
}

func parseItems(s string, n int, seed int64) ([]int64, error) {
	if s == "random" {
		rng := rand.New(rand.NewSource(seed))
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(rng.Intn(50) + 1)
		}
		return out, nil
	}
	var out []int64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad item %q: %w", tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func verdict(yes bool) string {
	if yes {
		return "YES"
	}
	return "NO"
}

func methodNames(ms []sqocp.Method) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		if m == sqocp.NL {
			out[i] = "NL"
		} else {
			out[i] = "SM"
		}
	}
	return out
}

func fatal(err error) {
	common.Fatal("sqocp", err)
}
