// Command qohard generates hard query-optimization instances via the
// paper's reductions and prints a gap report — as text or, with -json,
// as a structured summary embedding the engine's per-optimizer report.
// The constructed QO_N instance can be exported with -out.
//
// Four modes:
//
//	qohard -mode formula -vars 3 -clauses 5 [-seed 1] [-a 4] [-out inst.json]
//	    runs the full Theorem 9 chain 3SAT → CLIQUE → QO_N on a random
//	    3-CNF formula;
//	qohard -mode pair -n 16 [-c 0.75] [-d 0.25] [-out inst.json]
//	    builds a certified f_N YES/NO pair at size n and reports the
//	    measured gap;
//	qohard -mode sparse -n 5 -tau 0.5 [-k 2]
//	    builds the §6 sparse-graph f_{N,e} pair;
//	qohard -mode hash -n 6
//	    builds a certified f_H YES/NO pair (QO_H, Theorem 15).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"approxqo/internal/cliquered"
	"approxqo/internal/cliutil"
	"approxqo/internal/core"
	"approxqo/internal/engine"
	"approxqo/internal/opt"
	"approxqo/internal/report"
	"approxqo/internal/sat"
)

var common = cliutil.Common{Seed: 1}

// obsOpts carries the -trace/-metrics engine options from main to the
// mode runners that start an ensemble.
var obsOpts []engine.Option

// summary is qohard's -json output: the mode's headline numbers in
// log₂ form, plus the supervising engine's report where a search ran.
type summary struct {
	Mode        string         `json:"mode"`
	N           int            `json:"n"`
	YesCostLog2 float64        `json:"yes_cost_log2"`
	NoCostLog2  float64        `json:"no_cost_log2"`
	GapLog2     float64        `json:"gap_log2"`
	Exact       bool           `json:"exact"`
	Engine      *engine.Report `json:"engine,omitempty"`
	Extra       map[string]any `json:"extra,omitempty"`
}

func emit(s *summary) {
	if !common.JSON {
		return
	}
	if err := cliutil.WriteJSON(os.Stdout, s); err != nil {
		fatal(err)
	}
}

// textf prints only in text mode, keeping -json output pure.
func textf(format string, args ...any) {
	if !common.JSON {
		fmt.Printf(format, args...)
	}
}

func main() {
	common.Register(flag.CommandLine)
	mode := flag.String("mode", "pair", "formula | pair | sparse | hash")
	vars := flag.Int("vars", 3, "formula mode: variable count")
	clauses := flag.Int("clauses", 5, "formula mode: clause count")
	a := flag.Int64("a", 0, "log₂ α (0 = auto)")
	n := flag.Int("n", 16, "pair/sparse mode: source graph size")
	c := flag.Float64("c", 0.75, "pair mode: YES clique ratio")
	d := flag.Float64("d", 0.25, "pair mode: promise gap ratio")
	tau := flag.Float64("tau", 0.5, "sparse mode: edge budget exponent (e(m) = m + m^τ)")
	k := flag.Int("k", 2, "sparse mode: vertex blow-up exponent (m = n^k)")
	out := flag.String("out", "", "write the YES QO_N instance as JSON to this file")
	flag.Parse()

	ctx, cancel := common.Context()
	defer cancel()
	obsOpts = common.Observe("qohard")
	defer common.Close("qohard")

	switch *mode {
	case "formula":
		runFormula(*vars, *clauses, common.Seed, *a, *out)
	case "pair":
		runPair(ctx, *n, *c, *d, *a, *out)
	case "sparse":
		runSparse(*n, *tau, *k, *a, common.Seed, *out)
	case "hash":
		runHash(ctx, *n, *a)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// runHash builds a certified f_H YES/NO pair (QO_H, Theorem 15).
func runHash(ctx context.Context, n int, a int64) {
	if n%3 != 0 {
		fatal(fmt.Errorf("hash mode needs n divisible by 3, got %d", n))
	}
	if a == 0 {
		a = 2 * int64(n)
		if a*int64(n-1)%2 != 0 {
			a++
		}
	}
	yes := cliquered.CertifiedCliqueGraph(n, 2*n/3)
	no := cliquered.CertifiedCliqueGraph(n, 2*n/3-1)
	fhYes, err := core.FH(yes.G, core.FHParams{A: a})
	if err != nil {
		fatal(err)
	}
	fhNo, err := core.FH(no.G, core.FHParams{A: a})
	if err != nil {
		fatal(err)
	}
	textf("certified ⅔CLIQUE pair: n=%d (ωYes=%d, ωNo=%d), α=2^%d\n", n, 2*n/3, 2*n/3-1, a)
	textf("QO_H instances: %d relations, t=%s, t₀=%s, M=%s\n",
		fhYes.QOH.N(), report.Log2(fhYes.T), report.Log2(fhYes.T0), report.Log2(fhYes.M))
	textf("L(α,n) = %s; G bound (NO) = %s\n",
		report.Log2(fhYes.L), report.Log2(fhNo.GBound(no.Omega)))
	plan, err := fhYes.YesWitnessPlan(yes.G.MaxClique())
	if err != nil {
		fatal(err)
	}
	textf("YES witness (Lemma 12 five-pipeline plan): %s, pipelines %v\n",
		report.Log2(plan.Cost), plan.Pipelines())
	rep, err := engine.New(obsOpts...).RunQOH(ctx, fhNo.QOH, engine.QOHSearchers(opt.WithSeed(common.Seed))...)
	if err != nil {
		fatal(err)
	}
	exact := ""
	if rep.Best.Exact {
		exact = " (exact)"
	}
	textf("NO best plan found%s (%s): %s\n", exact, rep.Best.Winner,
		fmt.Sprintf("2^%.1f", rep.Best.CostLog2))
	textf("gap: 2^%.1f\n", rep.Best.CostLog2-plan.Cost.Log2())
	emit(&summary{
		Mode: "hash", N: fhYes.QOH.N(),
		YesCostLog2: plan.Cost.Log2(), NoCostLog2: rep.Best.CostLog2,
		GapLog2: rep.Best.CostLog2 - plan.Cost.Log2(),
		Exact:   rep.Best.Exact, Engine: rep,
	})
}

func runSparse(n int, tau float64, k int, a, seed int64, out string) {
	if n < 3 {
		fatal(fmt.Errorf("sparse mode needs n ≥ 3"))
	}
	yes := cliquered.CertifiedCliqueGraph(n, n-1)
	no := cliquered.CertifiedCliqueGraph(n, n-2)
	m := 1
	for i := 0; i < k; i++ {
		m *= n
	}
	if a == 0 {
		a = 2 * int64(n) * int64(m) // the negligibility threshold B·n·m
	}
	params := core.SparseFNParams{
		FNParams: core.FNParams{A: a, OmegaYes: n - 1, OmegaNo: n - 2},
		K:        k,
		Budget:   core.SparseBudget(tau),
		Seed:     seed,
	}
	sy, err := core.SparseFN(yes.G, params)
	if err != nil {
		fatal(err)
	}
	sn, err := core.SparseFN(no.G, params)
	if err != nil {
		fatal(err)
	}
	textf("sparse f_N pair: source n=%d (ωYes=%d, ωNo=%d), blow-up m=%d, τ=%.2f\n",
		n, n-1, n-2, sy.M, tau)
	textf("query graph: %d vertices, %d edges (clique would have %d)\n",
		sy.M, sy.QON.Q.EdgeCount(), sy.M*(sy.M-1)/2)
	textf("K = %s; NO lower bound = %s\n", report.Log2(sy.K), report.Log2(sn.NoLowerBound))
	yesCost := sy.QON.Cost(core.CliqueFirst(sy.QON.Q, yes.G.MaxClique()))
	noCost := sn.QON.Cost(core.CliqueFirst(sn.QON.Q, no.G.MaxClique()))
	textf("YES clique-first cost: %s\n", report.Log2(yesCost))
	textf("NO  clique-first cost: %s\n", report.Log2(noCost))
	textf("gap: %s\n", report.Ratio(noCost, yesCost))
	writeInstance(out, sy.QON)
	emit(&summary{
		Mode: "sparse", N: sy.M,
		YesCostLog2: yesCost.Log2(), NoCostLog2: noCost.Log2(),
		GapLog2: noCost.Log2() - yesCost.Log2(),
		Extra: map[string]any{
			"edges":         sy.QON.Q.EdgeCount(),
			"k_log2":        sy.K.Log2(),
			"no_bound_log2": sn.NoLowerBound.Log2(),
			"clique_edges":  sy.M * (sy.M - 1) / 2,
		},
	})
}

func runFormula(vars, clauses int, seed, a int64, out string) {
	f := sat.Random3SAT(vars, clauses, seed)
	textf("formula: %s\n", f)
	if a == 0 {
		a = 4
	}
	res, err := core.Theorem9(f, a, 1)
	if err != nil {
		fatal(err)
	}
	textf("satisfiable: %v\n", res.Satisfiable)
	textf("clique instance: n=%d, ω-if-SAT=%d (c=%.3f)\n",
		res.Clique.G.N(), res.Clique.CliqueIfSat, res.Clique.C)
	textf("QO_N instance: %d relations, t=%s, K=%s\n",
		res.FN.QON.N(), report.Log2(res.FN.T), report.Log2(res.FN.K))
	s := &summary{Mode: "formula", N: res.FN.QON.N(), Extra: map[string]any{
		"satisfiable": res.Satisfiable,
		"k_log2":      res.FN.K.Log2(),
	}}
	if res.Satisfiable {
		textf("Lemma 6 witness cost: %s (sequence starts with the %d-clique)\n",
			report.Log2(res.WitnessCost), res.Clique.CliqueIfSat)
		s.YesCostLog2 = res.WitnessCost.Log2()
	} else {
		textf("Lemma 8 lower bound on every sequence: %s\n", report.Log2(res.FN.NoLowerBound))
		s.NoCostLog2 = res.FN.NoLowerBound.Log2()
	}
	writeInstance(out, res.FN.QON)
	emit(s)
}

func runPair(ctx context.Context, n int, c, d float64, a int64, out string) {
	if a == 0 {
		a = 2 * int64(n)
	}
	yes, no := cliquered.YesNoPair(n, c, d)
	params := core.FNParams{A: a, OmegaYes: yes.Omega, OmegaNo: no.Omega}
	fnYes, err := core.FN(yes.G, params)
	if err != nil {
		fatal(err)
	}
	fnNo, err := core.FN(no.G, params)
	if err != nil {
		fatal(err)
	}
	textf("certified pair: n=%d, ωYes=%d, ωNo=%d, α=2^%d\n", n, yes.Omega, no.Omega, a)
	textf("K_{c,d}(α,n) = %s; NO lower bound = %s\n",
		report.Log2(fnYes.K), report.Log2(fnNo.NoLowerBound))

	_, yesCost, err := fnYes.YesWitnessCost(yes.G.MaxClique())
	if err != nil {
		fatal(err)
	}
	textf("YES witness (Lemma 6 clique-first): %s\n", report.Log2(yesCost))
	s := &summary{Mode: "pair", N: fnYes.QON.N()}
	if n <= 18 {
		dp := opt.NewDP(opt.WithMaxRelations(18))
		yesOpt, err := dp.Optimize(ctx, fnYes.QON)
		if err != nil {
			fatal(err)
		}
		noOpt, err := dp.Optimize(ctx, fnNo.QON)
		if err != nil {
			fatal(err)
		}
		textf("YES exact optimum: %s\n", report.Log2(yesOpt.Cost))
		textf("NO exact optimum:  %s\n", report.Log2(noOpt.Cost))
		textf("gap: %s (promised ≥ %s)\n",
			report.Ratio(noOpt.Cost, yesOpt.Cost), report.Ratio(fnNo.NoLowerBound, fnYes.K))
		s.YesCostLog2 = yesOpt.Cost.Log2()
		s.NoCostLog2 = noOpt.Cost.Log2()
		s.GapLog2 = noOpt.Cost.Log2() - yesOpt.Cost.Log2()
		s.Exact = true
	} else {
		rep, err := engine.New(obsOpts...).Run(ctx, fnNo.QON, opt.Heuristics(opt.WithSeed(7))...)
		if err != nil {
			fatal(err)
		}
		textf("NO best heuristic (%s): %s\n", rep.Best.Winner,
			fmt.Sprintf("2^%.1f", rep.Best.CostLog2))
		textf("gap vs witness: 2^%.1f\n", rep.Best.CostLog2-yesCost.Log2())
		s.YesCostLog2 = yesCost.Log2()
		s.NoCostLog2 = rep.Best.CostLog2
		s.GapLog2 = rep.Best.CostLog2 - yesCost.Log2()
		s.Engine = rep
	}
	writeInstance(out, fnYes.QON)
	emit(s)
}

func writeInstance(path string, v any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	textf("instance written to %s\n", path)
}

func fatal(err error) {
	common.Fatal("qohard", err)
}
