// Command qohard generates hard query-optimization instances via the
// paper's reductions and prints a gap report, optionally emitting the
// constructed QO_N instance as JSON.
//
// Four modes:
//
//	qohard -mode formula -vars 3 -clauses 5 [-seed 1] [-a 4] [-json out.json]
//	    runs the full Theorem 9 chain 3SAT → CLIQUE → QO_N on a random
//	    3-CNF formula;
//	qohard -mode pair -n 16 [-c 0.75] [-d 0.25] [-json out.json]
//	    builds a certified f_N YES/NO pair at size n and reports the
//	    measured gap;
//	qohard -mode sparse -n 5 -tau 0.5 [-k 2]
//	    builds the §6 sparse-graph f_{N,e} pair;
//	qohard -mode hash -n 6
//	    builds a certified f_H YES/NO pair (QO_H, Theorem 15).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/opt"
	"approxqo/internal/report"
	"approxqo/internal/sat"
)

func main() {
	mode := flag.String("mode", "pair", "formula | pair | sparse | hash")
	vars := flag.Int("vars", 3, "formula mode: variable count")
	clauses := flag.Int("clauses", 5, "formula mode: clause count")
	seed := flag.Int64("seed", 1, "random seed")
	a := flag.Int64("a", 0, "log₂ α (0 = auto)")
	n := flag.Int("n", 16, "pair/sparse mode: source graph size")
	c := flag.Float64("c", 0.75, "pair mode: YES clique ratio")
	d := flag.Float64("d", 0.25, "pair mode: promise gap ratio")
	tau := flag.Float64("tau", 0.5, "sparse mode: edge budget exponent (e(m) = m + m^τ)")
	k := flag.Int("k", 2, "sparse mode: vertex blow-up exponent (m = n^k)")
	jsonOut := flag.String("json", "", "write the YES QO_N instance as JSON to this file")
	flag.Parse()

	switch *mode {
	case "formula":
		runFormula(*vars, *clauses, *seed, *a, *jsonOut)
	case "pair":
		runPair(*n, *c, *d, *a, *jsonOut)
	case "sparse":
		runSparse(*n, *tau, *k, *a, *seed, *jsonOut)
	case "hash":
		runHash(*n, *a)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// runHash builds a certified f_H YES/NO pair (QO_H, Theorem 15).
func runHash(n int, a int64) {
	if n%3 != 0 {
		fatal(fmt.Errorf("hash mode needs n divisible by 3, got %d", n))
	}
	if a == 0 {
		a = 2 * int64(n)
		if a*int64(n-1)%2 != 0 {
			a++
		}
	}
	yes := cliquered.CertifiedCliqueGraph(n, 2*n/3)
	no := cliquered.CertifiedCliqueGraph(n, 2*n/3-1)
	fhYes, err := core.FH(yes.G, core.FHParams{A: a})
	if err != nil {
		fatal(err)
	}
	fhNo, err := core.FH(no.G, core.FHParams{A: a})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("certified ⅔CLIQUE pair: n=%d (ωYes=%d, ωNo=%d), α=2^%d\n", n, 2*n/3, 2*n/3-1, a)
	fmt.Printf("QO_H instances: %d relations, t=%s, t₀=%s, M=%s\n",
		fhYes.QOH.N(), report.Log2(fhYes.T), report.Log2(fhYes.T0), report.Log2(fhYes.M))
	fmt.Printf("L(α,n) = %s; G bound (NO) = %s\n",
		report.Log2(fhYes.L), report.Log2(fhNo.GBound(no.Omega)))
	plan, err := fhYes.YesWitnessPlan(yes.G.MaxClique())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("YES witness (Lemma 12 five-pipeline plan): %s, pipelines %v\n",
		report.Log2(plan.Cost), plan.Pipelines())
	noBest, err := opt.QOHBest(fhNo.QOH, 1)
	if err != nil {
		fatal(err)
	}
	exact := ""
	if fhNo.QOH.N() <= 8 {
		exact = " (exact)"
	}
	fmt.Printf("NO best plan found%s: %s\n", exact, report.Log2(noBest.Cost))
	fmt.Printf("gap: %s\n", report.Ratio(noBest.Cost, plan.Cost))
}

func runSparse(n int, tau float64, k int, a, seed int64, jsonOut string) {
	if n < 3 {
		fatal(fmt.Errorf("sparse mode needs n ≥ 3"))
	}
	yes := cliquered.CertifiedCliqueGraph(n, n-1)
	no := cliquered.CertifiedCliqueGraph(n, n-2)
	m := 1
	for i := 0; i < k; i++ {
		m *= n
	}
	if a == 0 {
		a = 2 * int64(n) * int64(m) // the negligibility threshold B·n·m
	}
	params := core.SparseFNParams{
		FNParams: core.FNParams{A: a, OmegaYes: n - 1, OmegaNo: n - 2},
		K:        k,
		Budget:   core.SparseBudget(tau),
		Seed:     seed,
	}
	sy, err := core.SparseFN(yes.G, params)
	if err != nil {
		fatal(err)
	}
	sn, err := core.SparseFN(no.G, params)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sparse f_N pair: source n=%d (ωYes=%d, ωNo=%d), blow-up m=%d, τ=%.2f\n",
		n, n-1, n-2, sy.M, tau)
	fmt.Printf("query graph: %d vertices, %d edges (clique would have %d)\n",
		sy.M, sy.QON.Q.EdgeCount(), sy.M*(sy.M-1)/2)
	fmt.Printf("K = %s; NO lower bound = %s\n", report.Log2(sy.K), report.Log2(sn.NoLowerBound))
	yesCost := sy.QON.Cost(core.CliqueFirst(sy.QON.Q, yes.G.MaxClique()))
	noCost := sn.QON.Cost(core.CliqueFirst(sn.QON.Q, no.G.MaxClique()))
	fmt.Printf("YES clique-first cost: %s\n", report.Log2(yesCost))
	fmt.Printf("NO  clique-first cost: %s\n", report.Log2(noCost))
	fmt.Printf("gap: %s\n", report.Ratio(noCost, yesCost))
	writeJSON(jsonOut, sy.QON)
}

func runFormula(vars, clauses int, seed, a int64, jsonOut string) {
	f := sat.Random3SAT(vars, clauses, seed)
	fmt.Printf("formula: %s\n", f)
	if a == 0 {
		a = 4
	}
	res, err := core.Theorem9(f, a, 1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("satisfiable: %v\n", res.Satisfiable)
	fmt.Printf("clique instance: n=%d, ω-if-SAT=%d (c=%.3f)\n",
		res.Clique.G.N(), res.Clique.CliqueIfSat, res.Clique.C)
	fmt.Printf("QO_N instance: %d relations, t=%s, K=%s\n",
		res.FN.QON.N(), report.Log2(res.FN.T), report.Log2(res.FN.K))
	if res.Satisfiable {
		fmt.Printf("Lemma 6 witness cost: %s (sequence starts with the %d-clique)\n",
			report.Log2(res.WitnessCost), res.Clique.CliqueIfSat)
	} else {
		fmt.Printf("Lemma 8 lower bound on every sequence: %s\n", report.Log2(res.FN.NoLowerBound))
	}
	writeJSON(jsonOut, res.FN.QON)
}

func runPair(n int, c, d float64, a int64, jsonOut string) {
	if a == 0 {
		a = 2 * int64(n)
	}
	yes, no := cliquered.YesNoPair(n, c, d)
	params := core.FNParams{A: a, OmegaYes: yes.Omega, OmegaNo: no.Omega}
	fnYes, err := core.FN(yes.G, params)
	if err != nil {
		fatal(err)
	}
	fnNo, err := core.FN(no.G, params)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("certified pair: n=%d, ωYes=%d, ωNo=%d, α=2^%d\n", n, yes.Omega, no.Omega, a)
	fmt.Printf("K_{c,d}(α,n) = %s; NO lower bound = %s\n",
		report.Log2(fnYes.K), report.Log2(fnNo.NoLowerBound))

	_, yesCost, err := fnYes.YesWitnessCost(yes.G.MaxClique())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("YES witness (Lemma 6 clique-first): %s\n", report.Log2(yesCost))
	if n <= 18 {
		dp := opt.DP{MaxN: 18}
		yesOpt, err := dp.Optimize(fnYes.QON)
		if err != nil {
			fatal(err)
		}
		noOpt, err := dp.Optimize(fnNo.QON)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("YES exact optimum: %s\n", report.Log2(yesOpt.Cost))
		fmt.Printf("NO exact optimum:  %s\n", report.Log2(noOpt.Cost))
		fmt.Printf("gap: %s (promised ≥ %s)\n",
			report.Ratio(noOpt.Cost, yesOpt.Cost), report.Ratio(fnNo.NoLowerBound, fnYes.K))
	} else {
		best, winner, err := opt.BestOf(fnNo.QON, opt.Heuristics(7)...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NO best heuristic (%s): %s\n", winner, report.Log2(best.Cost))
		fmt.Printf("gap vs witness: %s\n", report.Ratio(best.Cost, yesCost))
	}
	writeJSON(jsonOut, fnYes.QON)
}

func writeJSON(path string, v any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("instance written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qohard:", err)
	os.Exit(1)
}
