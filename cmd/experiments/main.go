// Command experiments regenerates the reproduction's full experiment
// catalog (DESIGN.md §3): every table and figure derived from the
// paper's theorems and lemmas, printed as aligned text tables or, with
// -json, as a structured document of the same tables.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only T1[,T7,...]] [-list]
//	experiments -only E1 -timeout 2s -json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"approxqo/internal/cliutil"
	"approxqo/internal/experiments"
	"approxqo/internal/report"
)

var common = cliutil.Common{Seed: 1}

// jsonExperiment is one catalog entry in the -json document.
type jsonExperiment struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Tables []*report.Table `json:"tables"`
}

func main() {
	common.Register(flag.CommandLine)
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csv", "", "also write each experiment's tables as CSV files into this directory")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	ctx, cancel := common.Context()
	defer cancel()
	common.Observe("experiments")
	defer common.Close("experiments")
	opts := experiments.Options{Quick: *quick, Seed: common.Seed, Context: ctx}
	selected := experiments.All()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	if common.JSON {
		doc := make([]jsonExperiment, 0, len(selected))
		for _, e := range selected {
			tables, err := runTraced(e, opts)
			if err != nil {
				fatal(err)
			}
			doc = append(doc, jsonExperiment{ID: e.ID, Title: e.Title, Tables: tables})
		}
		if err := cliutil.WriteJSON(os.Stdout, doc); err != nil {
			fatal(err)
		}
		return
	}

	for _, e := range selected {
		if *csvDir == "" {
			span := common.Tracer().Start("experiment:" + e.ID)
			err := experiments.WriteOne(os.Stdout, e, opts)
			span.End()
			if err != nil {
				fatal(err)
			}
			common.Registry().Counter("experiments.runs").Inc()
			continue
		}
		// Run once, render both ways.
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		tables, err := runTraced(e, opts)
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		for ti, tb := range tables {
			if err := tb.WriteText(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", e.ID, ti))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("(csv: %s)\n\n", path)
		}
	}
}

// runTraced runs one experiment under a command-level span and tallies
// it in the metrics registry; with -trace/-metrics off both sinks are
// nil and this is just e.Run.
func runTraced(e experiments.Experiment, opts experiments.Options) ([]*report.Table, error) {
	span := common.Tracer().Start("experiment:" + e.ID)
	defer span.End()
	tables, err := e.Run(opts)
	if err != nil {
		common.Registry().Counter("experiments.failed").Inc()
		return nil, err
	}
	common.Registry().Counter("experiments.runs").Inc()
	span.SetField("tables", len(tables))
	return tables, nil
}

func fatal(err error) {
	common.Fatal("experiments", err)
}
