// Command qopt optimizes a QO_N instance — read from a JSON file
// (qohard -json output) or generated as a random workload — with one or
// all of the registered algorithms, and prints the resulting plans.
//
// Usage:
//
//	qopt -file instance.json [-algo subset-dp]
//	qopt -shape chain -n 12 [-seed 3] [-algo all]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"approxqo/internal/bushy"
	"approxqo/internal/opt"
	"approxqo/internal/plan"
	"approxqo/internal/qon"
	"approxqo/internal/report"
	"approxqo/internal/workload"
)

func main() {
	file := flag.String("file", "", "JSON instance file (from qohard -json)")
	shape := flag.String("shape", "chain", "workload shape: chain|cycle|star|grid|clique|random")
	catalog := flag.String("catalog", "", "named catalog query (e.g. tpch-q5-like); overrides -shape")
	listCatalog := flag.Bool("list-catalog", false, "list catalog queries and exit")
	n := flag.Int("n", 10, "workload size")
	seed := flag.Int64("seed", 1, "workload seed")
	algo := flag.String("algo", "all", "algorithm name or 'all'")
	explain := flag.Bool("explain", false, "print an EXPLAIN tree for the best plan found")
	bushyFlag := flag.Bool("bushy", false, "also optimize over bushy join trees")
	flag.Parse()

	if *listCatalog {
		for _, c := range workload.Catalog() {
			fmt.Printf("%-16s %s\n", c.Name, c.Comment)
		}
		return
	}

	var in *qon.Instance
	var err error
	if *catalog != "" {
		c, cerr := workload.CatalogQueryByName(*catalog)
		if cerr != nil {
			fatal(cerr)
		}
		in = c.Instance
		fmt.Printf("catalog query %s: %s\n", c.Name, c.Comment)
		for i, name := range c.RelationNames() {
			fmt.Printf("  R%d = %s (%s tuples)\n", i, name, in.T[i])
		}
	} else {
		in, err = loadInstance(*file, *shape, *n, *seed)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("instance: %d relations, %d predicates\n", in.N(), in.Q.EdgeCount())

	optimizers := registry(*seed)
	tb := report.New("", "algorithm", "cost", "sequence", "time", "exact")
	var best *opt.Result
	for _, o := range optimizers {
		if *algo != "all" && o.Name() != *algo {
			continue
		}
		start := time.Now()
		r, err := o.Optimize(in)
		elapsed := time.Since(start).Round(time.Microsecond)
		if err != nil {
			tb.AddRow(o.Name(), "—", "n/a: "+err.Error(), elapsed.String(), "")
			continue
		}
		if best == nil || r.Cost.Less(best.Cost) {
			best = r
		}
		tb.AddRow(o.Name(), report.Log2(r.Cost), fmt.Sprint(r.Sequence), elapsed.String(), fmt.Sprint(r.Exact))
	}
	if len(tb.Rows) == 0 {
		fatal(fmt.Errorf("no algorithm named %q; have %v", *algo, names(optimizers)))
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	if *bushyFlag {
		tree, cost, err := bushy.Optimize(in)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbushy optimum: %s  cost=%s\n", tree, report.Log2(cost))
		if *explain {
			fmt.Print(plan.ExplainBushy(in, tree))
		}
	}
	if *explain && best != nil {
		fmt.Println()
		fmt.Print(plan.ExplainQON(in, best.Sequence))
	}
}

func registry(seed int64) []opt.Optimizer {
	return append([]opt.Optimizer{
		opt.NewExhaustive(),
		opt.NewDP(),
		opt.NewDPParallel(),
		opt.NewDPNoCross(),
	}, append(opt.Heuristics(seed), opt.NewIterativeImprovement(seed, 10))...)
}

func names(os []opt.Optimizer) []string {
	out := make([]string, len(os))
	for i, o := range os {
		out[i] = o.Name()
	}
	return out
}

func loadInstance(file, shape string, n int, seed int64) (*qon.Instance, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var in qon.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return nil, err
		}
		return &in, nil
	}
	return workload.Generate(workload.Params{N: n, Shape: workload.Shape(shape), Seed: seed})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qopt:", err)
	os.Exit(1)
}
