// Command qopt optimizes a QO_N instance — read from a JSON file
// (qohard -out output) or generated as a random workload — with one or
// all of the registered algorithms, supervised by the ensemble engine:
// runs execute concurrently with per-run instrumentation, panic
// isolation and deadline handling, and the per-optimizer report is
// printed as a table or, with -json, as a structured engine.Report.
//
// The -chaos flag injects deterministic faults into the ensemble
// (panics, stalls, corrupted costs, …) to exercise the engine's
// certification gate and quarantine machinery end to end:
//
//	qopt -shape chain -n 8 -chaos 'panic:greedy-min-cost,wrongcost:dp'
//
// The -route flag hands ensemble selection to the structural
// classifier (internal/classify): the routed subset runs, the pruned
// optimizers are reported as skipped with reasons, and -json wraps the
// report together with the routing decision:
//
//	qopt -shape chain-selective -n 12 -route [-json]
//
// Usage:
//
//	qopt -file instance.json [-algo subset-dp]
//	qopt -shape chain -n 12 [-seed 3] [-algo all] [-timeout 500ms] [-json]
//	qopt -shape skewed-star -n 12 -route
//	qopt -shape chain -n 12 -trace trace.json -metrics [-cpuprofile cpu.pb.gz]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"approxqo/internal/bushy"
	"approxqo/internal/chaos"
	"approxqo/internal/classify"
	"approxqo/internal/cliutil"
	"approxqo/internal/engine"
	"approxqo/internal/opt"
	"approxqo/internal/plan"
	"approxqo/internal/qon"
	"approxqo/internal/report"
	"approxqo/internal/workload"
)

var common = cliutil.Common{Seed: 1}

func main() {
	common.Register(flag.CommandLine)
	file := flag.String("file", "", "JSON instance file (from qohard -out)")
	shape := flag.String("shape", "chain", "workload shape (chain|cycle|star|grid|clique|random) or family (skewed-star|chain-selective|sparse-em|cliquered-yes|cliquered-no)")
	catalog := flag.String("catalog", "", "named catalog query (e.g. tpch-q5-like); overrides -shape")
	listCatalog := flag.Bool("list-catalog", false, "list catalog queries and exit")
	n := flag.Int("n", 10, "workload size")
	algo := flag.String("algo", "all", "algorithm name or 'all'")
	route := flag.Bool("route", false, "pick the ensemble with the structural classifier and report its decision (incompatible with -algo)")
	explain := flag.Bool("explain", false, "print an EXPLAIN tree for the best plan found")
	bushyFlag := flag.Bool("bushy", false, "also optimize over bushy join trees")
	chaosSpec := flag.String("chaos", "", "fault injection spec: fault[:optimizer],... (faults: panic|stall|wrongcost|invalidplan|error|leak)")
	flag.Parse()

	if *listCatalog {
		for _, c := range workload.Catalog() {
			fmt.Printf("%-16s %s\n", c.Name, c.Comment)
		}
		return
	}

	var in *qon.Instance
	var err error
	if *catalog != "" {
		c, cerr := workload.CatalogQueryByName(*catalog)
		if cerr != nil {
			fatal(cerr)
		}
		in = c.Instance
		if !common.JSON {
			fmt.Printf("catalog query %s: %s\n", c.Name, c.Comment)
			for i, name := range c.RelationNames() {
				fmt.Printf("  R%d = %s (%s tuples)\n", i, name, in.T[i])
			}
		}
	} else {
		in, err = loadInstance(*file, *shape, *n, common.Seed)
		if err != nil {
			fatal(err)
		}
	}
	if !common.JSON {
		fmt.Printf("instance: %d relations, %d predicates\n", in.N(), in.Q.EdgeCount())
	}

	optimizers := registry(common.Seed)
	var dec *classify.Decision
	var skips []engine.SkipRecord
	if *route {
		if *algo != "all" {
			fatal(fmt.Errorf("-route picks the ensemble itself; drop -algo"))
		}
		d := classify.Route(classify.Extract(in))
		dec = &d
		optimizers, skips = classify.Ensemble(d, in.N(), common.Seed)
		if !common.JSON {
			fmt.Printf("routing: class=%s recognized=%v tiers=%v budget_frac=%g\n  %s\n",
				d.Class, d.Recognized, d.Tiers, d.BudgetFrac, d.Reason)
		}
	}
	if *algo != "all" {
		var picked []opt.Optimizer
		for _, o := range optimizers {
			if o.Name() == *algo {
				picked = append(picked, o)
			}
		}
		if len(picked) == 0 {
			fatal(fmt.Errorf("no algorithm named %q; have %v", *algo, names(optimizers)))
		}
		optimizers = picked
	}
	if *chaosSpec != "" {
		optimizers, err = chaos.ApplySpec(*chaosSpec, optimizers, chaos.WithSeed(common.Seed))
		if err != nil {
			fatal(err)
		}
		if !common.JSON {
			fmt.Printf("chaos: injecting %q; uncertified results will be quarantined\n", *chaosSpec)
		}
	}

	ctx, cancel := common.Context()
	defer cancel()
	observe := common.Observe("qopt")
	defer common.Close("qopt")
	// Keep every run going: qopt's point is the per-optimizer comparison.
	eng := engine.New(append([]engine.Option{engine.WithoutEarlyExit()}, observe...)...)
	rep, err := eng.Run(ctx, in, optimizers...)
	if err != nil {
		fatal(err)
	}
	rep.Skipped = skips
	if common.JSON {
		if dec != nil {
			err = cliutil.WriteJSON(os.Stdout, struct {
				Routing *classify.Decision `json:"routing"`
				Report  *engine.Report     `json:"report"`
			}{dec, rep})
		} else {
			err = cliutil.WriteJSON(os.Stdout, rep)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	rep.WriteText(os.Stdout)
	fmt.Printf("best sequence: %v\n", rep.Best.Sequence)

	if *bushyFlag {
		tree, cost, err := bushy.Optimize(in)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbushy optimum: %s  cost=%s\n", tree, report.Log2(cost))
		if *explain {
			fmt.Print(plan.ExplainBushy(in, tree))
		}
	}
	if *explain {
		fmt.Println()
		fmt.Print(plan.ExplainQON(in, qon.Sequence(rep.Best.Sequence)))
	}
}

func registry(seed int64) []opt.Optimizer {
	return append([]opt.Optimizer{
		opt.NewExhaustive(),
		opt.NewDP(),
		opt.NewDPParallel(),
		opt.NewDPNoCross(),
	}, append(opt.Heuristics(opt.WithSeed(seed)),
		opt.NewIterativeImprovement(opt.WithSeed(seed), opt.WithRestarts(10)))...)
}

func names(os []opt.Optimizer) []string {
	out := make([]string, len(os))
	for i, o := range os {
		out[i] = o.Name()
	}
	return out
}

func loadInstance(file, shape string, n int, seed int64) (*qon.Instance, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var in qon.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return nil, err
		}
		return &in, nil
	}
	// The Spec grammar covers the basic topologies and the paper-grounded
	// families alike.
	return (&workload.Spec{Shape: shape, N: n, Seed: seed}).Generate()
}

func fatal(err error) {
	common.Fatal("qopt", err)
}
