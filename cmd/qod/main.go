// Command qod is the optimization daemon: it serves QO_N/QO_H
// optimization requests over HTTP through the supervised ensemble
// engine, with admission control, a load-aware degradation ladder and
// graceful shutdown (see internal/server and README §Serving).
//
// Endpoints:
//
//	POST /optimize       — JSON request (a tagged job object, or the
//	                       deprecated top-level form) → certified result
//	                       or structured error document
//	POST /optimize/batch — {"jobs":[...]} → per-job results in order;
//	                       jobs are deduplicated by canonical instance
//	                       fingerprint, so k relabeled copies of one
//	                       query cost one engine run
//	GET  /healthz        — liveness + load gauges
//	GET  /readyz         — readiness (engine health probe, breaker circuits)
//
// Usage:
//
//	qod -addr :8080
//	qod -addr :8080 -workers 8 -queue 64 -degrade-at 8 -shed-at 48
//	qod -addr :8080 -req-timeout 2s -max-timeout 30s -drain 5s
//	qod -addr :8080 -max-batch 128 -cache-size 1024
//	qod -addr :8080 -chaos 'panic:greedy-min-cost' -metrics
//	qod -addr :8080 -route
//	qod -addr :8080 -pprof-addr localhost:6060 -memlimit 2GiB
//
// With -route, the structural classifier (internal/classify) picks each
// QO_N request's ensemble subset and the degradation ladder sheds the
// tiers it ranks least valuable; jobs can override per request with
// "route": true/false. Two one-shot modes support the routing feature
// without starting a server: -route-explain prints the classifier's
// decision for a workload spec, and -eval measures routed-vs-full cost
// ratios and wall times per family against a running qod:
//
//	qod -route-explain '{"shape":"chain-selective","n":12,"seed":4}'
//	qod -eval http://localhost:8080 -eval-n 12 -eval-seeds 5
//
// Coordinator mode (-coordinate) turns qod into the fault-tolerant
// front of a worker fleet instead of a worker: requests are routed to
// the listed qod workers by canonical instance fingerprint over a
// consistent-hash ring, with health-gated failover, budgeted retries
// and tail-latency hedging (see internal/cluster and README
// §Clustering):
//
//	qod -addr :8080 -coordinate 'http://w1:8081,http://w2:8082'
//	qod -addr :8080 -coordinate ... -hedge-after 0 -max-retries 2
//	qod -addr :8080 -coordinate ... -replicas 2 -repair-every 5s
//	qod -addr :8080 -coordinate ... -net-chaos 'delay:w2,rate:0.1'
//
// With replication on (the default, -replicas 2), each certified result
// stored by a worker is fanned out to its ring successors, membership
// changes stream the moved keyspace to the new owner before traffic
// flips (hinted handoff), and a background anti-entropy loop
// (-repair-every) digests replica pairs and read-repairs divergence,
// paying for each transfer out of the global retry budget. Replication
// traffic is authenticated by a shared secret (-cluster-secret, or
// $QOD_CLUSTER_SECRET) that every fleet member must be started with;
// without one, workers keep their /cache/* surfaces closed and the
// coordinator runs with replication off.
//
// SIGINT/SIGTERM triggers a graceful drain: admission stops, in-flight
// requests finish within -drain, and the observability outputs
// requested by -trace/-metrics/-cpuprofile/-memprofile are flushed.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/classify"
	"approxqo/internal/cliutil"
	"approxqo/internal/cluster"
	"approxqo/internal/server"
	"approxqo/internal/server/loadgen"
	"approxqo/internal/workload"
)

var common = cliutil.Common{Seed: 1}

func main() {
	common.Register(flag.CommandLine)
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent optimization workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth beyond the workers (0 = 4x workers)")
	degradeAt := flag.Int("degrade-at", 0, "load at which exact optimizers are shed (0 = workers)")
	shedAt := flag.Int("shed-at", 0, "load at which requests are shed outright (0 = disabled)")
	reqTimeout := flag.Duration("req-timeout", 2*time.Second, "default per-request deadline budget")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on requested deadline budgets")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	retryAfter := flag.Duration("retry-after", 250*time.Millisecond, "Retry-After hint on 429/503")
	chaosSpec := flag.String("chaos", "", "fault injection spec applied to every request's ensemble")
	cacheSize := flag.Int("cache-size", 0, "certified-result cache entries (0 = default 256, negative disables)")
	route := flag.Bool("route", false, "adaptive ensemble routing by structural classifier (jobs override per-request with \"route\")")
	routeExplain := flag.String("route-explain", "", "one-shot: classify the given workload spec JSON, print the routing decision, exit")
	evalTarget := flag.String("eval", "", "one-shot: run the routed-vs-full family eval against the given qod base URL, print the report, exit")
	evalFamilies := flag.String("eval-families", "", "eval mode: comma-separated workload families (default: the harness families)")
	evalN := flag.Int("eval-n", 0, "eval mode: instance size (0 = default 12)")
	evalSeeds := flag.Int("eval-seeds", 0, "eval mode: seeds per family (0 = default 5)")
	maxBatch := flag.Int("max-batch", 0, "max jobs per /optimize/batch request (0 = default 64)")
	coordinate := flag.String("coordinate", "", "comma-separated worker base URLs; set to run as a cluster coordinator instead of a worker")
	maxRetries := flag.Int("max-retries", 0, "coordinator: failover retries per request (0 = default 2)")
	hedgeAfter := flag.Duration("hedge-after", 0, "coordinator: hedge trigger (0 = adaptive p95, negative disables)")
	probeEvery := flag.Duration("probe-every", 0, "coordinator: worker /readyz probe cadence (0 = default 500ms, negative disables)")
	replicas := flag.Int("replicas", 0, "coordinator: ring successors holding a copy of each certified result (0 = default 2, negative disables replication)")
	repairEvery := flag.Duration("repair-every", 0, "coordinator: anti-entropy repair cadence (0 = default 5s, negative disables)")
	netChaos := flag.String("net-chaos", "", "coordinator: network fault spec applied to upstream requests (e.g. 'drop,delay:w2')")
	clusterSecret := flag.String("cluster-secret", os.Getenv("QOD_CLUSTER_SECRET"),
		"shared secret authenticating cache-replication traffic; must match across the fleet (default $QOD_CLUSTER_SECRET; empty disables replication)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this extra listener (e.g. localhost:6060); never exposed on the public mux")
	memLimit := flag.String("memlimit", "", "soft heap limit for the Go runtime (e.g. 512MiB, 2GiB); sets debug.SetMemoryLimit like GOMEMLIMIT")
	flag.Parse()

	if *memLimit != "" {
		limit, err := parseByteSize(*memLimit)
		if err != nil {
			common.Fatal("qod", err)
		}
		debug.SetMemoryLimit(limit)
	}
	if *pprofAddr != "" {
		// The profiling surface gets its own listener and mux so it can be
		// bound to loopback while -addr faces the network; registering
		// pprof on the serving mux would expose heap and goroutine dumps
		// to every client.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			common.Fatal("qod", fmt.Errorf("pprof listener: %w", err))
		}
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(os.Stderr, "qod: pprof on http://%s/debug/pprof/\n", ln.Addr())
		go func() { _ = (&http.Server{Handler: pm}).Serve(ln) }()
	}

	// The signal handler's force-flush must not fire while a healthy
	// drain is still inside its deadline.
	common.SignalGrace = *drain + 2*time.Second
	ctx, cancel := common.Context()
	defer cancel()
	common.Observe("qod")
	defer common.Close("qod")

	if *routeExplain != "" {
		spec, err := workload.DecodeSpec([]byte(*routeExplain))
		if err != nil {
			common.Fatal("qod", err)
		}
		in, err := spec.Generate()
		if err != nil {
			common.Fatal("qod", err)
		}
		dec := classify.Route(classify.Extract(in))
		if err := cliutil.WriteJSON(os.Stdout, dec); err != nil {
			common.Fatal("qod", err)
		}
		return
	}

	if *evalTarget != "" {
		cfg := loadgen.EvalConfig{N: *evalN, Seeds: *evalSeeds, TimeoutMS: int64(*maxTimeout / time.Millisecond)}
		if *evalFamilies != "" {
			for _, f := range strings.Split(*evalFamilies, ",") {
				if f = strings.TrimSpace(f); f != "" {
					cfg.Families = append(cfg.Families, f)
				}
			}
		}
		rep, err := loadgen.New(strings.TrimRight(*evalTarget, "/"), common.Seed).EvalFamilies(ctx, cfg)
		if err != nil {
			common.Fatal("qod", err)
		}
		if err := cliutil.WriteJSON(os.Stdout, rep); err != nil {
			common.Fatal("qod", err)
		}
		return
	}

	if *coordinate != "" {
		var workers []string
		for _, w := range strings.Split(*coordinate, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workers = append(workers, strings.TrimRight(w, "/"))
			}
		}
		var transport http.RoundTripper
		if *netChaos != "" {
			rules, err := chaos.ParseNetSpec(*netChaos)
			if err != nil {
				common.Fatal("qod", err)
			}
			transport = chaos.NewTransport(nil, rules, chaos.WithNetSeed(common.Seed))
		}
		if *replicas >= 0 && *clusterSecret == "" {
			fmt.Fprintln(os.Stderr, "qod: replication disabled: -cluster-secret not set")
		}
		co, err := cluster.New(cluster.Config{
			Workers:        workers,
			Transport:      transport,
			MaxRetries:     *maxRetries,
			HedgeAfter:     *hedgeAfter,
			ProbeInterval:  *probeEvery,
			Replicas:       *replicas,
			RepairInterval: *repairEvery,
			ClusterSecret:  *clusterSecret,
			DefaultTimeout: *reqTimeout,
			MaxTimeout:     *maxTimeout,
			RetryAfter:     *retryAfter,
			MaxBatchJobs:   *maxBatch,
			Seed:           common.Seed,
			Tracer:         common.Tracer(),
			Metrics:        common.Registry(),
		})
		if err != nil {
			common.Fatal("qod", err)
		}
		fmt.Fprintf(os.Stderr, "qod: coordinating %d workers on %s\n", len(workers), *addr)
		if err := co.ListenAndServe(ctx, *addr); err != nil {
			common.Fatal("qod", err)
		}
		fmt.Fprintln(os.Stderr, "qod: coordinator drained cleanly")
		return
	}

	s, err := server.New(server.Config{
		MaxConcurrent:  *workers,
		QueueDepth:     *queue,
		DegradeAt:      *degradeAt,
		ShedAt:         *shedAt,
		Route:          *route,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drain,
		RetryAfter:     *retryAfter,
		Seed:           common.Seed,
		ChaosSpec:      *chaosSpec,
		CacheSize:      *cacheSize,
		MaxBatchJobs:   *maxBatch,
		ClusterSecret:  *clusterSecret,
		Tracer:         common.Tracer(),
		Metrics:        common.Registry(),
	})
	if err != nil {
		common.Fatal("qod", err)
	}
	fmt.Fprintf(os.Stderr, "qod: serving on %s (drain deadline %s)\n", *addr, *drain)
	// ListenAndServe blocks until ctx ends (SIGINT/SIGTERM via cliutil,
	// or -timeout), then drains in-flight requests before returning.
	if err := s.ListenAndServe(ctx, *addr); err != nil {
		common.Fatal("qod", err)
	}
	fmt.Fprintln(os.Stderr, "qod: drained cleanly")
}

// parseByteSize parses a GOMEMLIMIT-style byte quantity: a decimal
// count with an optional B, KiB, MiB, GiB or TiB suffix.
func parseByteSize(s string) (int64, error) {
	orig := s
	shift := 0
	switch {
	case strings.HasSuffix(s, "KiB"):
		shift, s = 10, s[:len(s)-3]
	case strings.HasSuffix(s, "MiB"):
		shift, s = 20, s[:len(s)-3]
	case strings.HasSuffix(s, "GiB"):
		shift, s = 30, s[:len(s)-3]
	case strings.HasSuffix(s, "TiB"):
		shift, s = 40, s[:len(s)-3]
	case strings.HasSuffix(s, "B"):
		s = s[:len(s)-1]
	}
	if s == "" {
		return 0, fmt.Errorf("invalid -memlimit %q", orig)
	}
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid -memlimit %q (want e.g. 512MiB, 2GiB)", orig)
		}
		v = v*10 + int64(c-'0')
		if v<<shift < 0 {
			return 0, fmt.Errorf("-memlimit %q overflows", orig)
		}
	}
	if v == 0 {
		return 0, fmt.Errorf("-memlimit %q must be positive", orig)
	}
	return v << shift, nil
}
