module approxqo

go 1.22
