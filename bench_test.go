package approxqo

import (
	"fmt"
	"testing"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/experiments"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
	"approxqo/internal/sqocp"
	"approxqo/internal/workload"
)

// One benchmark per experiment table/figure in DESIGN.md §3. Each runs
// the harness in quick mode (the cmd/experiments binary regenerates the
// full-size tables); the benchmark numbers record the cost of
// regenerating each result.

func benchExperiment(b *testing.B, id string) {
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1TheoremNine regenerates the Theorem 9 QO_N gap table.
func BenchmarkT1TheoremNine(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkT2TheoremFifteen regenerates the Theorem 15 QO_H gap table.
func BenchmarkT2TheoremFifteen(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkT3SparseQON regenerates the Theorem 16 sparse-graph table.
func BenchmarkT3SparseQON(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkT4SparseQOH regenerates the Theorem 17 sparse-graph table.
func BenchmarkT4SparseQOH(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkF1CostProfile regenerates the Lemma 5/6 H_i profile figure.
func BenchmarkF1CostProfile(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkF2IntermediateSizes regenerates the Lemma 11/13 N_j figure.
func BenchmarkF2IntermediateSizes(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkT5CliqueReductions regenerates the Lemma 3/4 table.
func BenchmarkT5CliqueReductions(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkT6CompetitiveRatio regenerates the competitive-ratio table.
func BenchmarkT6CompetitiveRatio(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkT7StarQuery regenerates the Appendix A/B equivalence table.
func BenchmarkT7StarQuery(b *testing.B) { benchExperiment(b, "T7") }

// BenchmarkT8Workloads regenerates the baseline workload table.
func BenchmarkT8Workloads(b *testing.B) { benchExperiment(b, "T8") }

// --- Component micro-benchmarks --------------------------------------

// BenchmarkSubsetDP measures the exact optimizer across sizes.
func BenchmarkSubsetDP(b *testing.B) {
	for _, n := range []int{10, 12, 14} {
		in, err := workload.Generate(workload.Params{N: n, Shape: workload.Random, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dp := opt.NewDP()
			for i := 0; i < b.N; i++ {
				if _, err := dp.Optimize(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCostEvaluation measures one QO_N sequence evaluation.
func BenchmarkCostEvaluation(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		in, err := workload.Generate(workload.Params{N: n, Shape: workload.Random, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		z := make(qon.Sequence, n)
		for i := range z {
			z[i] = i
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in.Evaluate(z)
			}
		})
	}
}

// BenchmarkMaxClique measures exact clique search on the dense graphs
// the reductions produce.
func BenchmarkMaxClique(b *testing.B) {
	for _, n := range []int{20, 30, 40} {
		g := cliquered.CertifiedCliqueGraph(n, 3*n/4).G
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.MaxClique()
			}
		})
	}
}

// BenchmarkFNReduction measures f_N instance construction.
func BenchmarkFNReduction(b *testing.B) {
	for _, n := range []int{16, 32} {
		yes, no := cliquered.YesNoPair(n, 0.75, 0.25)
		params := core.FNParams{A: 2 * int64(n), OmegaYes: yes.Omega, OmegaNo: no.Omega}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FN(yes.G, params); err != nil {
					b.Fatal(err)
				}
			}
		})
		_ = no
	}
}

// BenchmarkQOHDecomposition measures the optimal pipeline-decomposition
// DP on f_H witness sequences.
func BenchmarkQOHDecomposition(b *testing.B) {
	for _, n := range []int{9, 12, 15} {
		yes := cliquered.CertifiedCliqueGraph(n, 2*n/3)
		a := 2 * int64(n)
		if a*int64(n-1)%2 != 0 {
			a++
		}
		fh, err := core.FH(yes.G, core.FHParams{A: a})
		if err != nil {
			b.Fatal(err)
		}
		z := fh.WitnessSequence(yes.G.MaxClique())
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fh.QOH.BestDecomposition(z); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQOCPOptimal measures exhaustive star-query optimization at
// reduction scale.
func BenchmarkSQOCPOptimal(b *testing.B) {
	p := &sqocp.Partition{Items: []int64{1, 2, 3}}
	s, err := p.ToSPPCS()
	if err != nil {
		b.Fatal(err)
	}
	red, err := sqocp.FromSPPCS(s, s.L)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := red.Star.Optimal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1Ablation regenerates the left-deep vs bushy ablation table.
func BenchmarkA1Ablation(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2NoCrossAblation regenerates the §4-remark ablation table.
func BenchmarkA2NoCrossAblation(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkSubsetDPParallel compares the layered parallel DP against
// the serial one (see BenchmarkSubsetDP) on the same instances.
func BenchmarkSubsetDPParallel(b *testing.B) {
	for _, n := range []int{10, 12, 14} {
		in, err := workload.Generate(workload.Params{N: n, Shape: workload.Random, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dp := opt.NewDPParallel()
			for i := 0; i < b.N; i++ {
				if _, err := dp.Optimize(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA3PsiSensitivity regenerates the hjmin-exponent ablation.
func BenchmarkA3PsiSensitivity(b *testing.B) { benchExperiment(b, "A3") }
