// Optimizer-shootout: every registered join-order optimizer on every
// workload shape, run concurrently under the supervised ensemble engine
// with a wall-clock budget per shape. The engine report shows each
// optimizer's cost, instrumentation (cost evaluations, DP subsets,
// annealing moves) and wall time; a summary table gives competitive
// ratios against the certified subset-DP optimum — the empirical side
// of the paper's conclusion that easy shapes (trees) have exact
// polynomial algorithms while general graphs do not.
//
// All shapes share one metrics registry, so the closing metrics summary
// aggregates the whole shootout: total runs, certification verdicts,
// and per-optimizer latency histograms across every shape.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"approxqo/internal/engine"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/report"
	"approxqo/internal/trace"
	"approxqo/internal/workload"
)

func main() {
	const n = 12
	const budget = 2 * time.Second

	metrics := trace.NewRegistry()
	summary := report.New(
		fmt.Sprintf("Join-order optimizer shootout (n = %d relations per query, %v budget per shape)", n, budget),
		"shape", "optimizer", "ratio to optimum", "time",
	)
	for _, shape := range workload.Shapes() {
		in, err := workload.Generate(workload.Params{N: n, Shape: shape, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}

		ensemble := append(opt.Heuristics(opt.WithSeed(7)),
			opt.NewDP(),
			opt.NewIterativeImprovement(opt.WithSeed(7), opt.WithRestarts(5)))

		ctx, cancel := context.WithTimeout(context.Background(), budget)
		// The engine runs every optimizer concurrently, isolates
		// panics, and returns best-so-far results when the budget
		// expires; WithoutEarlyExit keeps the slow heuristics running
		// even after the exact DP finishes, since the comparison is
		// the point.
		rep, err := engine.New(engine.WithoutEarlyExit(), engine.WithMetrics(metrics)).Run(ctx, in, ensemble...)
		cancel()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s ===\n", shape)
		rep.WriteText(os.Stdout)
		fmt.Println()

		var optimum *num.Num
		for _, run := range rep.Runs {
			if run.Name == "subset-dp" && run.Cost != nil {
				optimum = run.Cost
			}
		}
		for _, run := range rep.Runs {
			if run.Name == "subset-dp" {
				continue
			}
			switch {
			case run.Err != "":
				summary.AddRow(string(shape), run.Name, "n/a ("+run.Err+")", "")
			case run.Cost == nil || optimum == nil:
				summary.AddRow(string(shape), run.Name, "n/a", "")
			default:
				summary.AddRow(string(shape), run.Name,
					report.Ratio(*run.Cost, *optimum),
					fmt.Sprintf("%.1fms", run.WallMS))
			}
		}
	}
	if err := summary.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nratio 2^0.0 = found the certified optimum; kbz is exact on chain/star (trees).")

	fmt.Println("\nshootout metrics (all shapes):")
	if err := metrics.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
