// Optimizer-shootout: every registered join-order optimizer on every
// workload shape, with competitive ratios against the certified subset-
// DP optimum — the empirical side of the paper's conclusion that easy
// shapes (trees) have exact polynomial algorithms while general graphs
// do not.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"approxqo/internal/opt"
	"approxqo/internal/report"
	"approxqo/internal/workload"
)

func main() {
	const n = 12
	tb := report.New(
		fmt.Sprintf("Join-order optimizer shootout (n = %d relations per query)", n),
		"shape", "optimizer", "ratio to optimum", "time",
	)
	for _, shape := range workload.Shapes() {
		in, err := workload.Generate(workload.Params{N: n, Shape: shape, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		best, err := opt.NewDP().Optimize(in)
		if err != nil {
			log.Fatal(err)
		}
		optimizers := append(opt.Heuristics(7), opt.NewIterativeImprovement(7, 5))
		for _, o := range optimizers {
			start := time.Now()
			r, err := o.Optimize(in)
			if err != nil {
				tb.AddRow(string(shape), o.Name(), "n/a ("+err.Error()+")", "")
				continue
			}
			tb.AddRow(string(shape), o.Name(),
				report.Ratio(r.Cost, best.Cost),
				time.Since(start).Round(time.Microsecond).String())
		}
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nratio 2^0.0 = found the certified optimum; kbz is exact on chain/star (trees).")
}
