// Explain: EXPLAIN-style plan trees for benchmark-shaped catalog
// queries, for a hard-instance witness plan, and for a bushy optimum —
// the plan-rendering face of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"approxqo/internal/bushy"
	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/opt"
	"approxqo/internal/plan"
	"approxqo/internal/workload"
)

func main() {
	// 1. A TPC-H-shaped catalog query, optimized exactly and explained.
	q5, err := workload.CatalogQueryByName("tpch-q5-like")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s: %s ===\n", q5.Name, q5.Comment)
	for i, name := range q5.RelationNames() {
		fmt.Printf("  R%d = %s\n", i, name)
	}
	best, err := opt.NewDP().Optimize(context.Background(), q5.Instance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.ExplainQON(q5.Instance, best.Sequence))

	// 2. The bushy optimum of the SSB star query.
	ssb, err := workload.CatalogQueryByName("ssb-q41-like")
	if err != nil {
		log.Fatal(err)
	}
	tree, _, err := bushy.Optimize(ssb.Instance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== %s (bushy optimum %s) ===\n", ssb.Name, tree)
	fmt.Print(plan.ExplainBushy(ssb.Instance, tree))

	// 3. A QO_H witness plan from the f_H reduction: five pipelines with
	// their memory allocations.
	yes := cliquered.CertifiedCliqueGraph(9, 6)
	fh, err := core.FH(yes.G, core.FHParams{A: 4})
	if err != nil {
		log.Fatal(err)
	}
	witness, err := fh.YesWitnessPlan(yes.G.MaxClique())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== f_H witness plan (Lemma 12, n=9) ===\n")
	fmt.Print(plan.ExplainQOH(fh.QOH, witness))
}
