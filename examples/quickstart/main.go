// Quickstart: build a small query, cost join orders under the paper's
// QO_N nested-loops model, and optimize it with the exact subset DP and
// the classic polynomial-time heuristics.
package main

import (
	"context"
	"fmt"
	"log"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
)

func main() {
	// A five-relation chain query R0 — R1 — R2 — R3 — R4 with mixed
	// cardinalities: the classic motivating example for join ordering.
	q := graph.Path(5)
	cards := []int64{1_000, 50, 200_000, 10, 5_000}
	sels := []float64{0.01, 0.001, 0.05, 0.002} // edge i—i+1

	in := &qon.Instance{Q: q, T: make([]num.Num, 5)}
	for i, c := range cards {
		in.T[i] = num.FromInt64(c)
	}
	in.S = make([][]num.Num, 5)
	in.W = make([][]num.Num, 5)
	for i := range in.S {
		in.S[i] = make([]num.Num, 5)
		in.W[i] = make([]num.Num, 5)
		for j := range in.S[i] {
			in.S[i][j] = num.One()
			in.W[i][j] = in.T[i]
		}
	}
	for i, s := range sels {
		sv := num.FromFloat64(s)
		in.S[i][i+1], in.S[i+1][i] = sv, sv
		// Index access: the cheapest the model allows (t·s per probe).
		in.W[i][i+1] = in.T[i].Mul(sv)
		in.W[i+1][i] = in.T[i+1].Mul(sv)
	}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}

	// Cost a couple of hand-written join orders.
	for _, z := range []qon.Sequence{{0, 1, 2, 3, 4}, {3, 2, 1, 0, 4}, {1, 0, 2, 3, 4}} {
		bd := in.Evaluate(z)
		fmt.Printf("order %v: cost = %.4g (intermediates", z, bd.C.Float64())
		for _, nSize := range bd.N[1:] {
			fmt.Printf(" %.3g", nSize.Float64())
		}
		fmt.Println(")")
	}

	// The exact optimum via the subset DP (N(X) is a set function, so
	// the DP is exact — see internal/opt). Optimizers take a context:
	// pass context.Background() for an unbounded run, or a deadline to
	// get the best order found so far when time runs out.
	ctx := context.Background()
	best, err := opt.NewDP().Optimize(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal order %v: cost = %.4g\n", best.Sequence, best.Cost.Float64())

	// Polynomial-time heuristics, including Ibaraki–Kameda (exact on
	// tree queries like this chain).
	for _, o := range opt.Heuristics(opt.WithSeed(1)) {
		r, err := o.Optimize(ctx, in)
		if err != nil {
			continue
		}
		fmt.Printf("%-22s cost = %-12.4g (%.2f× optimal)\n",
			o.Name(), r.Cost.Float64(), r.Cost.Div(best.Cost).Float64())
	}
}
