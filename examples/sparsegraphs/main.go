// Sparsegraphs: §6 of the paper — the hardness gap survives when the
// query graph is forced to be sparse. A certified CLIQUE pair on n
// vertices is embedded into query graphs on n² vertices with exactly
// e(m) = m + ⌈m^τ⌉ edges; the YES/NO cost gap persists.
package main

import (
	"fmt"
	"log"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
)

func main() {
	const n = 5
	yes := cliquered.CertifiedCliqueGraph(n, n-1) // ω = 4
	no := cliquered.CertifiedCliqueGraph(n, n-2)  // ω = 3

	for _, tau := range []float64{0.5, 0.75} {
		m := n * n
		params := core.SparseFNParams{
			FNParams: core.FNParams{
				A:        2 * int64(n) * int64(m),
				OmegaYes: n - 1,
				OmegaNo:  n - 2,
			},
			K:      2,
			Budget: core.SparseBudget(tau),
			Seed:   9,
		}
		sy, err := core.SparseFN(yes.G, params)
		if err != nil {
			log.Fatal(err)
		}
		sn, err := core.SparseFN(no.G, params)
		if err != nil {
			log.Fatal(err)
		}
		yesCost := sy.QON.Cost(core.CliqueFirst(sy.QON.Q, yes.G.MaxClique()))
		noCost := sn.QON.Cost(core.CliqueFirst(sn.QON.Q, no.G.MaxClique()))

		fmt.Printf("τ = %.2f: query graph has m = %d vertices, e(m) = %d edges (vs %d for a clique)\n",
			tau, sy.M, sy.QON.Q.EdgeCount(), m*(m-1)/2)
		fmt.Printf("  YES clique-first cost: 2^%.1f   (K = 2^%.1f)\n", yesCost.Log2(), sy.K.Log2())
		fmt.Printf("  NO  clique-first cost: 2^%.1f   (bound = 2^%.1f)\n", noCost.Log2(), sn.NoLowerBound.Log2())
		fmt.Printf("  gap: 2^%.1f — sparsity does not help the optimizer\n\n", noCost.Log2()-yesCost.Log2())
	}
}
