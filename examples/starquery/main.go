// Starquery: Appendix A/B of the paper — optimizing a star query with
// nested-loops and sort-merge operators (no cartesian products) is
// NP-complete. This example walks a PARTITION instance through SPPCS
// into a star-query instance and shows the optimal plan reading off
// the subset-product structure.
package main

import (
	"fmt"
	"log"

	"approxqo/internal/sqocp"
)

func main() {
	for _, items := range [][]int64{{1, 2, 3}, {1, 1, 3}} {
		p := &sqocp.Partition{Items: items}
		partitionable, err := p.Decide()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== PARTITION %v → %v ===\n", items, yn(partitionable))

		s, err := p.ToSPPCS()
		if err != nil {
			log.Fatal(err)
		}
		_, mask, best, err := s.Decide()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SPPCS: minimize ∏_A p + Σ_Ā c; optimum %v at A = %03b, bound L = %v\n",
			best, mask, s.L)

		red, err := sqocp.FromSPPCS(s, s.L)
		if err != nil {
			log.Fatal(err)
		}
		st := red.Star
		fmt.Printf("star query: R₀ plus %d satellites (R_%d is the closing relation)\n",
			st.M(), st.M())
		plan, cost, err := st.Optimal()
		if err != nil {
			log.Fatal(err)
		}
		cheap := cost.Cmp(red.Threshold) <= 0
		fmt.Printf("optimal plan: order %v methods %v\n", plan.Order, methods(plan.Methods))
		fmt.Printf("cost ≈ 2^%d vs threshold M ≈ 2^%d → SQO−CP %v\n",
			cost.BitLen()-1, red.Threshold.BitLen()-1, yn(cheap))
		fmt.Printf("note: satellites joined by NL before R_%d are exactly the SPPCS subset A;\n", st.M())
		fmt.Printf("      the rest are joined by sort-merge, paying their c_i instead.\n\n")
	}
}

func yn(b bool) string {
	if b {
		return "YES"
	}
	return "NO"
}

func methods(ms []sqocp.Method) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		if m == sqocp.NL {
			out[i] = "NL"
		} else {
			out[i] = "SM"
		}
	}
	return out
}
