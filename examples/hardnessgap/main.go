// Hardnessgap: the paper's Theorem 9 pipeline end to end. A 3-CNF
// formula is reduced through VERTEX COVER and CLIQUE to a QO_N
// instance; a satisfiable formula yields a cheap clique-first plan,
// while an unsatisfiable one forces every plan above the Lemma 8 bound
// — the machinery that makes approximate query optimization NP-hard.
package main

import (
	"context"
	"fmt"
	"log"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/opt"
	"approxqo/internal/sat"
)

func main() {
	// Stage 0: two tiny formulas, one satisfiable, one not.
	satF := sat.New(3)
	satF.AddClause(1, 2, 3)
	satF.AddClause(-1, 2)

	unsatF := sat.New(2)
	unsatF.AddClause(1)
	unsatF.AddClause(-1)
	unsatF.AddClause(2)

	for name, f := range map[string]*sat.Formula{"satisfiable": satF, "unsatisfiable": unsatF} {
		fmt.Printf("=== %s formula: %s ===\n", name, f)
		res, err := core.Theorem9(f, 4, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Lemma 3 graph: %d vertices, clique-if-SAT = %d (exact ω = %d)\n",
			res.Clique.G.N(), res.Clique.CliqueIfSat, res.Clique.G.CliqueNumber())
		fmt.Printf("f_N instance: %d relations, K = 2^%.0f\n",
			res.FN.QON.N(), res.FN.K.Log2())
		if res.Satisfiable {
			fmt.Printf("witness plan (clique first): cost = 2^%.1f\n", res.WitnessCost.Log2())
		} else {
			fmt.Printf("Lemma 8: EVERY join order costs ≥ 2^%.1f\n", res.FN.NoLowerBound.Log2())
		}
		fmt.Println()
	}

	// The same gap at certified scale, with exact optima on both sides.
	fmt.Println("=== certified YES/NO pair, n = 14 ===")
	yes, no := cliquered.YesNoPair(14, 0.75, 0.25)
	params := core.FNParams{A: 28, OmegaYes: yes.Omega, OmegaNo: no.Omega}
	fnYes, err := core.FN(yes.G, params)
	if err != nil {
		log.Fatal(err)
	}
	fnNo, err := core.FN(no.G, params)
	if err != nil {
		log.Fatal(err)
	}
	dp := opt.NewDP()
	ctx := context.Background()
	yesOpt, err := dp.Optimize(ctx, fnYes.QON)
	if err != nil {
		log.Fatal(err)
	}
	noOpt, err := dp.Optimize(ctx, fnNo.QON)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("YES optimum 2^%.1f ≤ K = 2^%.1f < NO bound 2^%.1f ≤ NO optimum 2^%.1f\n",
		yesOpt.Cost.Log2(), fnYes.K.Log2(), fnNo.NoLowerBound.Log2(), noOpt.Cost.Log2())
	fmt.Printf("measured gap: 2^%.1f — deciding which side you are on is CLIQUE-hard\n",
		noOpt.Cost.Log2()-yesOpt.Cost.Log2())
}
