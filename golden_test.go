package approxqo

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// Golden-file tests pin the exact -json output of the commands: the
// schema, field names, ordering and values consumers script against.
// Volatile fields (wall_ms, span_id) are normalized before comparison.
// Regenerate after an intentional schema change with:
//
//	go test -run TestGolden -update ./...
var update = flag.Bool("update", false, "rewrite testdata/golden files")

// normalizeJSON zeroes wall-clock fields and strips span ids anywhere
// in the document, then re-marshals with stable indentation.
func normalizeJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	var walk func(v any)
	walk = func(v any) {
		switch v := v.(type) {
		case map[string]any:
			if _, ok := v["wall_ms"]; ok {
				v["wall_ms"] = 0
			}
			delete(v, "span_id")
			for _, c := range v {
				walk(c)
			}
		case []any:
			for _, c := range v {
				walk(c)
			}
		}
	}
	walk(doc)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// checkGolden compares got (already normalized) against the named
// golden file, rewriting it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run TestGolden -update ./...)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// goldenCLI runs a command expecting the given exit code and returns
// its stdout.
func goldenCLI(t *testing.T, wantExit int, args ...string) []byte {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	exit := 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, stderr.Bytes())
	}
	if exit != wantExit {
		t.Fatalf("go run %v exited %d, want %d\nstdout: %s\nstderr: %s",
			args, exit, wantExit, stdout.Bytes(), stderr.Bytes())
	}
	return stdout.Bytes()
}

func TestGoldenQoptJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := goldenCLI(t, 0, "./cmd/qopt", "-shape", "chain", "-n", "6", "-seed", "1", "-json")
	checkGolden(t, "qopt_chain_n6.json", normalizeJSON(t, out))
}

func TestGoldenQoptRouteJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	// A recognized family's routed ensemble is all-deterministic
	// (greedy tier only), so the full {routing, report} document —
	// decision, features, skip reasons, certified costs — is stable.
	out := goldenCLI(t, 0, "./cmd/qopt", "-shape", "chain-selective", "-n", "10", "-seed", "4",
		"-route", "-json")
	checkGolden(t, "qopt_route_chainsel_n10.json", normalizeJSON(t, out))
}

func TestGoldenQodRouteExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := goldenCLI(t, 0, "./cmd/qod", "-route-explain", `{"shape":"chain-selective","n":12,"seed":4}`)
	checkGolden(t, "qod_route_explain_chainsel.json", normalizeJSON(t, out))
	// The adversarial side: the statistics-free f_N signature must keep
	// the exact tier first.
	out = goldenCLI(t, 0, "./cmd/qod", "-route-explain", `{"shape":"cliquered-yes","n":12}`)
	checkGolden(t, "qod_route_explain_cliquered.json", normalizeJSON(t, out))
}

func TestGoldenQohardPairJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	// n ≤ 18 takes the exact-DP branch: fully deterministic output.
	out := goldenCLI(t, 0, "./cmd/qohard", "-mode", "pair", "-n", "10", "-json")
	checkGolden(t, "qohard_pair_n10.json", normalizeJSON(t, out))
	out = goldenCLI(t, 0, "./cmd/qohard", "-mode", "pair", "-n", "12", "-json")
	checkGolden(t, "qohard_pair_n12.json", normalizeJSON(t, out))
}

func TestGoldenSqocpJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	out := goldenCLI(t, 0, "./cmd/sqocp", "-items", "1,2,3", "-json")
	checkGolden(t, "sqocp_items123.json", normalizeJSON(t, out))
}

func TestGoldenErrorDoc(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	// Every optimizer adversarial: the command must exit 1 with the
	// structured error document, and its kind/message are stable.
	out := goldenCLI(t, 1, "./cmd/qopt", "-shape", "chain", "-n", "6", "-seed", "1",
		"-json", "-chaos", "error:*")
	checkGolden(t, "qopt_error_doc.json", normalizeJSON(t, out))
}
