package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"

	"approxqo/internal/num"
	"approxqo/internal/stats"
)

// BestRecord is the winning plan of an ensemble run.
type BestRecord struct {
	// Winner is the Name of the optimizer that produced the plan.
	Winner string `json:"winner"`
	// Sequence is the join order (for QO_H runs, the sequence of the
	// winning plan).
	Sequence []int `json:"sequence"`
	// Breaks holds the pipeline boundaries of a QO_H plan; empty for
	// QO_N runs.
	Breaks []int `json:"breaks,omitempty"`
	// Cost is the exact plan cost (arbitrary magnitude, serialized as a
	// string); CostLog2 is its float64 log₂ for human consumption.
	Cost     num.Num `json:"cost"`
	CostLog2 float64 `json:"cost_log2"`
	// Exact reports whether the cost is certified optimal.
	Exact bool `json:"exact"`
	// Certified reports that the plan passed the independent audit
	// (always true for a merged winner: uncertified results cannot win).
	Certified bool `json:"certified"`
}

// RunRecord is the per-optimizer account of one ensemble run: outcome,
// wall time, certification verdict and instrumentation counters.
// Exactly one of Cost/Err is meaningful unless the run was abandoned
// with no result.
type RunRecord struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	// SpanID links the record to its optimizer span in the trace
	// exported by engine.WithTracer; zero when tracing was off.
	SpanID uint64 `json:"span_id,omitempty"`
	// Stats are the cost-model counters observed for this run: cost
	// evaluations, DP subsets expanded, local-search moves. With
	// retries they accumulate across attempts.
	Stats stats.Snapshot `json:"stats"`

	Cost     *num.Num `json:"cost,omitempty"`
	CostLog2 float64  `json:"cost_log2,omitempty"`
	Exact    bool     `json:"exact,omitempty"`

	// Certified reports that the run's result passed the independent
	// audit; only certified results participate in the merge.
	Certified bool `json:"certified,omitempty"`
	// Attempts counts optimization attempts (1 unless retried);
	// Failures counts attempts that errored, panicked or failed
	// certification.
	Attempts int `json:"attempts,omitempty"`
	Failures int `json:"failures,omitempty"`
	// CertError carries the auditor's rejection for the last attempt
	// that failed certification.
	CertError string `json:"cert_error,omitempty"`

	Err string `json:"error,omitempty"`
	// Panicked marks a run that crashed; PanicValue carries the
	// recovered panic value and PanicStack a short frame summary of
	// where it happened.
	Panicked   bool   `json:"panicked,omitempty"`
	PanicValue string `json:"panic_value,omitempty"`
	PanicStack string `json:"panic_stack,omitempty"`
	// TimedOut marks a run whose per-run deadline expired (the run may
	// still carry a best-so-far result if its algorithm is anytime).
	TimedOut bool `json:"timed_out,omitempty"`
	// Abandoned marks a run that failed to return within the engine's
	// grace period after cancellation; its goroutine was left behind and
	// only its counters were salvaged.
	Abandoned bool `json:"abandoned,omitempty"`
	// Quarantined marks an optimizer benched by the circuit-breaker:
	// repeated failures or abandonment. Its results are discarded.
	Quarantined bool `json:"quarantined,omitempty"`
}

// Skip reasons for SkipRecord. Routing and degradation come from the
// adaptive classifier (internal/classify); breaker skips come from the
// server's circuit breaker; out_of_range marks an exact optimizer whose
// size cap excludes the instance. None of these are failures — that is
// exactly why they are recorded separately from quarantine/abandonment,
// so soaks and metrics checks don't conflate "benched for misbehaving"
// with "deliberately not run".
const (
	SkipRouting    = "routing"
	SkipDegraded   = "degraded"
	SkipBreaker    = "breaker"
	SkipOutOfRange = "out_of_range"
)

// SkipRecord documents an optimizer that was deliberately not run and
// why. The engine itself runs whatever it is given; callers that prune
// the ensemble (router, ladder, breaker) attach the records to the
// Report so the account of the run stays complete.
type SkipRecord struct {
	Name   string `json:"name"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

// Report is the structured, JSON-serializable outcome of one ensemble
// run: the winning plan plus one RunRecord per optimizer.
type Report struct {
	// Model is "qon" or "qoh".
	Model string `json:"model"`
	// N is the relation count of the instance.
	N int `json:"n"`
	// Best is nil when every optimizer failed.
	Best *BestRecord `json:"best,omitempty"`
	Runs []RunRecord `json:"runs"`
	// Quarantined lists the optimizers benched by the circuit-breaker
	// during this run.
	Quarantined []string `json:"quarantined,omitempty"`
	// Skipped lists optimizers deliberately excluded before the run
	// (routing, load degradation, open breaker, size range) — attached
	// by the caller that pruned the ensemble, never by the engine.
	Skipped []SkipRecord `json:"skipped,omitempty"`
	WallMS  float64      `json:"wall_ms"`
	// SpanID identifies the engine.run root span when the run was
	// traced (engine.WithTracer); zero otherwise.
	SpanID uint64 `json:"span_id,omitempty"`

	// pooled marks a Report whose Runs/Quarantined/Skipped backing
	// arrays came from reportPool; released guards against double
	// Release. Both are engine-internal: JSON never sees them, and a
	// Report built or decoded elsewhere has pooled == false, making
	// Release a no-op. See Release for the ownership contract.
	pooled   bool
	released bool
}

// reportPool recycles Report values and their record buffers across
// engine runs: one serving request costs one Report, one RunRecord per
// optimizer and the quarantine/skip lists, all of which are
// request-scoped garbage without pooling.
var reportPool = sync.Pool{New: func() any { return &Report{} }}

// newReport returns a pooled Report with Runs sized (and zeroed) for n
// runs and every other field reset.
func newReport(n int) *Report {
	r := reportPool.Get().(*Report)
	runs, quarantined, skipped := r.Runs, r.Quarantined, r.Skipped
	*r = Report{pooled: true}
	if cap(runs) < n {
		runs = make([]RunRecord, n)
	} else {
		runs = runs[:n]
		for i := range runs {
			runs[i] = RunRecord{}
		}
	}
	r.Runs = runs
	if quarantined != nil {
		r.Quarantined = quarantined[:0]
	}
	if skipped != nil {
		r.Skipped = skipped[:0]
	}
	return r
}

// Release returns a pool-born Report's buffers to the engine's report
// pool. The ownership contract (see DESIGN § Pooled request lifecycle):
// a Report returned by Engine.Run/RunQOH is owned by the caller until
// Release; after Release the Report and everything reachable from it —
// Runs, Best, Quarantined, Skipped, and any view built over them — must
// not be touched. Callers that hand a Report to something longer-lived
// than the request (a cache, a replication queue) must store a Detach
// copy, never the pooled original. Release on a Report that did not
// come from the pool (zero value, JSON-decoded, Detach copy) is a
// no-op, so callers can release unconditionally; releasing the same
// pooled Report twice panics, because the second caller may already be
// racing the pool's next requester.
func (r *Report) Release() {
	if r == nil || !r.pooled {
		return
	}
	if r.released {
		panic("engine: Report.Release called twice")
	}
	r.released = true
	reportPool.Put(r)
}

// Detach returns a deep copy of the report that shares no mutable
// memory with the (possibly pooled) original: safe to retain
// indefinitely, to store in caches, and to serve concurrently after the
// original is released. Immutable values — strings and num.Num — are
// shared; slices and the Best record are copied.
func (r *Report) Detach() *Report {
	if r == nil {
		return nil
	}
	d := *r
	d.pooled, d.released = false, false
	d.Runs = append([]RunRecord(nil), r.Runs...)
	if r.Quarantined != nil {
		d.Quarantined = append([]string(nil), r.Quarantined...)
	}
	if r.Skipped != nil {
		d.Skipped = append([]SkipRecord(nil), r.Skipped...)
	}
	if r.Best != nil {
		best := *r.Best
		best.Sequence = append([]int(nil), r.Best.Sequence...)
		if r.Best.Breaks != nil {
			best.Breaks = append([]int(nil), r.Best.Breaks...)
		}
		d.Best = &best
	}
	return &d
}

// WriteText renders the report as an aligned table, cheapest run first.
func (r *Report) WriteText(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "optimizer\tlog2(cost)\texact\twall\tcost evals\tdp subsets\tmoves\tnote\n")
	runs := append([]RunRecord(nil), r.Runs...)
	sort.SliceStable(runs, func(a, b int) bool {
		ra, rb := runs[a], runs[b]
		if (ra.Cost == nil) != (rb.Cost == nil) {
			return ra.Cost != nil
		}
		if ra.Cost == nil {
			return false
		}
		return ra.Cost.Less(*rb.Cost)
	})
	for _, run := range runs {
		cost, note := "-", ""
		if run.Cost != nil {
			cost = fmt.Sprintf("%.3f", run.CostLog2)
		}
		switch {
		case run.Abandoned:
			note = "abandoned (quarantined)"
		case run.Quarantined && run.Panicked:
			note = "quarantined: panicked: " + run.PanicValue
		case run.Quarantined && run.CertError != "":
			note = "quarantined: uncertified: " + run.CertError
		case run.Quarantined:
			note = "quarantined: " + run.Err
		case run.Panicked:
			note = "panicked: " + run.PanicValue
		case run.CertError != "":
			note = "uncertified: " + run.CertError
		case run.TimedOut:
			note = "timed out"
		case run.Err != "":
			note = run.Err
		}
		if note == "" && run.Attempts > 1 {
			note = fmt.Sprintf("recovered after %d attempts", run.Attempts)
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%.1fms\t%d\t%d\t%d\t%s\n",
			run.Name, cost, run.Exact, run.WallMS,
			run.Stats.CostEvals, run.Stats.DPSubsets, run.Stats.Moves, note)
	}
	for _, sk := range r.Skipped {
		note := sk.Reason
		if sk.Detail != "" {
			note += ": " + sk.Detail
		}
		fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t-\tskipped (%s)\n", sk.Name, note)
	}
	if len(r.Quarantined) > 0 {
		fmt.Fprintf(tw, "\nquarantined\t%v\n", r.Quarantined)
	}
	if r.Best != nil {
		fmt.Fprintf(tw, "\nwinner\t%s (log2 cost %.3f, exact=%v, certified=%v)\n",
			r.Best.Winner, r.Best.CostLog2, r.Best.Exact, r.Best.Certified)
	}
	tw.Flush()
}
