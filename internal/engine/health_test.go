package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
)

func healthInstance(n int) *qon.Instance {
	return qon.NewUniform(graph.Complete(n), num.FromInt64(8), num.Pow2(-1), num.FromInt64(2))
}

func TestHealthZeroValue(t *testing.T) {
	e := New()
	h := e.Health()
	if h.Runs != 0 || h.Failed != 0 || h.LastOK || h.Quarantined != 0 || len(h.ErrKinds) != 0 {
		t.Fatalf("fresh engine health not zero: %+v", h)
	}
}

func TestHealthAfterSuccessfulRun(t *testing.T) {
	e := New()
	if _, err := e.Run(context.Background(), healthInstance(5), opt.NewDP()); err != nil {
		t.Fatal(err)
	}
	h := e.Health()
	if h.Runs != 1 || h.Failed != 0 || !h.LastOK {
		t.Fatalf("health after clean run: %+v", h)
	}
	if h.Quarantined != 0 || len(h.ErrKinds) != 0 {
		t.Fatalf("clean run reported faults: %+v", h)
	}
}

func TestHealthAfterFailedRun(t *testing.T) {
	e := New(WithRetries(0), WithQuarantineAfter(1))
	bad := chaos.Wrap(opt.NewDP(), chaos.FaultPanic)
	if _, err := e.Run(context.Background(), healthInstance(5), bad); err == nil {
		t.Fatal("expected all-failed error")
	}
	h := e.Health()
	if h.Runs != 1 || h.Failed != 1 || h.LastOK {
		t.Fatalf("health after failed run: %+v", h)
	}
	if h.Quarantined != 1 {
		t.Fatalf("want 1 quarantined, got %+v", h)
	}
	if len(h.ErrKinds) != 1 || h.ErrKinds[0] != "panic" {
		t.Fatalf("want err kinds [panic], got %v", h.ErrKinds)
	}

	// A subsequent clean run flips LastOK back and resets the last-run
	// fields while the cumulative counters keep history.
	if _, err := e.Run(context.Background(), healthInstance(5), opt.NewDP()); err != nil {
		t.Fatal(err)
	}
	h = e.Health()
	if h.Runs != 2 || h.Failed != 1 || !h.LastOK || h.Quarantined != 0 || len(h.ErrKinds) != 0 {
		t.Fatalf("health after recovery: %+v", h)
	}
}

func TestHealthMixedKinds(t *testing.T) {
	e := New(WithRetries(0), WithQuarantineAfter(10))
	in := healthInstance(5)
	_, err := e.Run(context.Background(), in,
		chaos.Wrap(opt.NewDP(), chaos.FaultWrongCost),
		chaos.Wrap(opt.NewGreedy(opt.GreedyMinCost), chaos.FaultError),
		opt.NewGreedy(opt.GreedyMinSize),
	)
	if err != nil {
		t.Fatal(err)
	}
	h := e.Health()
	if !h.LastOK {
		t.Fatalf("run with one honest optimizer should be OK: %+v", h)
	}
	want := map[string]bool{"uncertified": true, "error": true}
	if len(h.ErrKinds) != len(want) {
		t.Fatalf("want kinds %v, got %v", want, h.ErrKinds)
	}
	for _, k := range h.ErrKinds {
		if !want[k] {
			t.Fatalf("unexpected kind %q in %v", k, h.ErrKinds)
		}
	}
}

// TestHealthConcurrent reads the probe while runs are in flight; the
// race detector is the assertion.
func TestHealthConcurrent(t *testing.T) {
	e := New()
	in := healthInstance(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Health()
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = e.Run(context.Background(), in, opt.NewDP(), opt.NewGreedy(opt.GreedyMinSize))
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if h := e.Health(); h.Runs != 8 {
		t.Fatalf("want 8 runs accounted, got %+v", h)
	}
}
