package engine

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"approxqo/internal/certify"
	"approxqo/internal/chaos"
	"approxqo/internal/opt"
)

// The acceptance matrix: under every injected fault type, with one
// honest optimizer alongside, Run must return a certified valid plan
// whose recomputed cost equals the reported cost, and the faulty
// optimizer must be quarantined in the report.
func TestRunSurvivesEveryFault(t *testing.T) {
	faults := []chaos.Fault{
		chaos.FaultPanic,
		chaos.FaultStall,
		chaos.FaultWrongCost,
		chaos.FaultInvalidPlan,
		chaos.FaultError,
	}
	for _, fault := range faults {
		fault := fault
		t.Run(string(fault), func(t *testing.T) {
			t.Parallel()
			in := randomInstance(7, 0.7, 11)
			faulty := chaos.Wrap(opt.NewGreedy(opt.GreedyMinSize), fault,
				chaos.WithSeed(1), chaos.WithStall(5*time.Second))
			honest := opt.NewGreedy(opt.GreedyMinCost)

			ctx := context.Background()
			var cancel context.CancelFunc
			if fault == chaos.FaultStall {
				// A stalling run never returns; bound the ensemble so the
				// abandonment path fires instead of waiting out the stall.
				ctx, cancel = context.WithTimeout(ctx, 100*time.Millisecond)
				defer cancel()
			}
			report, err := New(WithGrace(100*time.Millisecond)).Run(ctx, in, faulty, honest)
			if err != nil {
				t.Fatalf("honest optimizer should carry the run: %v", err)
			}
			if report.Best == nil || !report.Best.Certified {
				t.Fatal("merged result not certified")
			}
			if report.Best.Winner != honest.Name() {
				t.Fatalf("winner %q, want the honest %q", report.Best.Winner, honest.Name())
			}
			if !in.ValidSequence(report.Best.Sequence) {
				t.Fatal("merged sequence is not a valid permutation")
			}
			// Recomputed cost must equal the reported cost (the issue's
			// acceptance check, applied through the independent auditor).
			cert, aerr := certify.QON(in, report.Best.Sequence, report.Best.Cost, report.Best.Exact)
			if aerr != nil {
				t.Fatalf("merged result fails re-audit: %v", aerr)
			}
			if !cert.Recomputed.Equal(report.Best.Cost) {
				t.Fatal("recomputed cost differs from reported cost")
			}
			found := false
			for _, name := range report.Quarantined {
				if name == faulty.Name() {
					found = true
				}
			}
			if !found {
				t.Fatalf("faulty optimizer not quarantined: %v", report.Quarantined)
			}
			var rec *RunRecord
			for i := range report.Runs {
				if report.Runs[i].Name == faulty.Name() {
					rec = &report.Runs[i]
				}
			}
			if rec == nil || !rec.Quarantined {
				t.Fatalf("faulty run record not quarantined: %+v", rec)
			}
			if !strings.Contains(rec.Err, ErrQuarantined.Error()) {
				t.Fatalf("quarantine not surfaced in the record error: %q", rec.Err)
			}
			// The quarantine must survive the -json surface.
			blob, err := json.Marshal(report)
			if err != nil {
				t.Fatal(err)
			}
			var back Report
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}
			if len(back.Quarantined) == 0 || back.Quarantined[0] != faulty.Name() {
				t.Fatalf("quarantine lost in JSON round trip: %v", back.Quarantined)
			}
		})
	}
}

// An adversarial ensemble with no honest member must fail structurally:
// ErrAllFailed, never an uncertified merge.
func TestRunAllAdversarialFails(t *testing.T) {
	in := randomInstance(6, 0.7, 12)
	report, err := New().Run(context.Background(), in,
		chaos.Wrap(opt.NewGreedy(opt.GreedyMinSize), chaos.FaultWrongCost),
		chaos.Wrap(opt.NewGreedy(opt.GreedyMinCost), chaos.FaultInvalidPlan))
	if !errors.Is(err, ErrAllFailed) {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
	if report == nil || report.Best != nil {
		t.Fatal("no result may survive an all-adversarial ensemble")
	}
	for _, rec := range report.Runs {
		if rec.Certified {
			t.Fatalf("%s: corrupted result certified", rec.Name)
		}
		if !strings.Contains(rec.Err, ErrUncertified.Error()) && !strings.Contains(rec.Err, ErrQuarantined.Error()) {
			t.Fatalf("%s: error %q carries no taxonomy", rec.Name, rec.Err)
		}
	}
	if len(report.Quarantined) != 2 {
		t.Fatalf("both adversaries should be quarantined, got %v", report.Quarantined)
	}
}

// A transient failure (one injected error, then honesty) must be healed
// by retry-with-reseed, without quarantine.
func TestRunRetriesTransientFailure(t *testing.T) {
	in := randomInstance(6, 0.7, 13)
	flaky := chaos.Wrap(opt.NewGreedy(opt.GreedyMinSize), chaos.FaultError, chaos.WithFailures(1))
	report, err := New().Run(context.Background(), in, flaky)
	if err != nil {
		t.Fatalf("transient failure not healed: %v", err)
	}
	rec := report.Runs[0]
	if rec.Attempts != 2 || rec.Failures != 1 {
		t.Fatalf("attempts=%d failures=%d, want 2 and 1", rec.Attempts, rec.Failures)
	}
	if rec.Quarantined || !rec.Certified {
		t.Fatalf("healed run misrecorded: %+v", rec)
	}
	if report.Best == nil || !report.Best.Certified {
		t.Fatal("healed run produced no certified best")
	}
}

// With retries disabled, the failure budget is one attempt.
func TestRunWithRetriesDisabled(t *testing.T) {
	in := randomInstance(6, 0.7, 14)
	flaky := chaos.Wrap(opt.NewGreedy(opt.GreedyMinSize), chaos.FaultError, chaos.WithFailures(1))
	report, err := New(WithRetries(0)).Run(context.Background(), in, flaky)
	if err == nil {
		t.Fatal("zero retries must not heal a transient failure")
	}
	if report.Runs[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", report.Runs[0].Attempts)
	}
}

// A lowered circuit-breaker threshold quarantines on the first failure.
func TestRunQuarantineThreshold(t *testing.T) {
	in := randomInstance(6, 0.7, 15)
	flaky := chaos.Wrap(opt.NewGreedy(opt.GreedyMinSize), chaos.FaultError, chaos.WithFailures(1))
	report, err := New(WithQuarantineAfter(1)).Run(context.Background(), in, flaky)
	if !errors.Is(err, ErrAllFailed) {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
	rec := report.Runs[0]
	if !rec.Quarantined || rec.Attempts != 1 {
		t.Fatalf("threshold 1 should bench on first failure: %+v", rec)
	}
}

// Panicked runs must carry the recovered panic value and a stack
// summary pointing at the crash site (satellite 1).
func TestRunRecordsPanicValueAndStack(t *testing.T) {
	in := randomInstance(6, 0.7, 16)
	report, _ := New().Run(context.Background(), in,
		chaos.Wrap(opt.NewGreedy(opt.GreedyMinSize), chaos.FaultPanic, chaos.WithSeed(9)))
	rec := report.Runs[0]
	if !rec.Panicked {
		t.Fatalf("panic not recorded: %+v", rec)
	}
	// Retries reseed the injector, so the recorded value is the final
	// attempt's deterministic panic.
	if !strings.Contains(rec.PanicValue, "injected panic") || !strings.Contains(rec.PanicValue, "call 3") {
		t.Fatalf("panic value lost: %q", rec.PanicValue)
	}
	if rec.Attempts != 3 || rec.Failures != 3 {
		t.Fatalf("attempts=%d failures=%d, want 3 and 3", rec.Attempts, rec.Failures)
	}
	if !strings.Contains(rec.PanicStack, "chaos") || !strings.Contains(rec.PanicStack, ".go:") {
		t.Fatalf("stack summary does not locate the crash: %q", rec.PanicStack)
	}
	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "panic_value") {
		t.Fatal("panic value missing from JSON report")
	}
}

// Satellite 3: structured errors on degenerate inputs.
func TestRunStructuredInputErrors(t *testing.T) {
	in := randomInstance(4, 1.0, 17)

	if _, err := New().Run(context.Background(), in); !errors.Is(err, ErrNoOptimizers) {
		t.Fatalf("empty ensemble: err = %v, want ErrNoOptimizers", err)
	}
	if _, err := New().Run(context.Background(), nil, opt.NewGreedy(opt.GreedyMinSize)); !errors.Is(err, ErrNilInstance) {
		t.Fatalf("nil instance: err = %v, want ErrNilInstance", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New().Run(ctx, in, opt.NewGreedy(opt.GreedyMinSize)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v, want context.Canceled", err)
	}

	// The QO_H entry point enforces the same taxonomy.
	if _, err := New().RunQOH(context.Background(), nil); !errors.Is(err, ErrNilInstance) {
		t.Fatalf("RunQOH nil instance: err = %v, want ErrNilInstance", err)
	}
}

// A leak fault answers honestly, so it must NOT be quarantined — only
// actually-faulty behavior trips the breaker.
func TestRunDoesNotQuarantineLeaks(t *testing.T) {
	in := randomInstance(6, 0.7, 18)
	leaky := chaos.Wrap(opt.NewGreedy(opt.GreedyMinSize), chaos.FaultLeak,
		chaos.WithLeakHold(10*time.Millisecond))
	report, err := New().Run(context.Background(), in, leaky)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Quarantined) != 0 {
		t.Fatalf("honest-but-leaky optimizer quarantined: %v", report.Quarantined)
	}
	if report.Best == nil || !report.Best.Certified {
		t.Fatal("leaky run should still win with a certified result")
	}
	time.Sleep(20 * time.Millisecond) // drain the leaked goroutine before -race exit checks
}
