package engine

import (
	"context"
	"math/rand"
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qoh"
)

func randomQOH(n int, seed int64) *qoh.Instance {
	rng := rand.New(rand.NewSource(seed))
	q := graph.Random(n, 0.5, seed)
	in := &qoh.Instance{
		Q: q,
		T: make([]num.Num, n),
		M: num.FromInt64(256),
	}
	for i := range in.T {
		in.T[i] = num.FromInt64(int64(rng.Intn(120) + 4))
	}
	in.S = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		in.S[i][i] = num.One()
		for j := 0; j < i; j++ {
			s := num.One()
			if q.HasEdge(i, j) {
				s = num.FromFloat64(float64(rng.Intn(7)+1) / 8)
			}
			in.S[i][j], in.S[j][i] = s, s
		}
	}
	return in
}

// RunQOH supervises the QO_H ensemble: the exhaustive searcher's plan
// is exact and must match the direct computation; instrumentation must
// record evaluations for every searcher.
func TestRunQOHEnsemble(t *testing.T) {
	in := randomQOH(6, 1)
	report, err := New(WithoutEarlyExit()).RunQOH(context.Background(), in,
		QOHSearchers(opt.WithSeed(2), opt.WithIterations(100))...)
	if err != nil {
		t.Fatal(err)
	}
	if report.Model != "qoh" || report.N != 6 {
		t.Fatalf("report header wrong: %+v", report)
	}
	exact, err := in.ExactBest()
	if err != nil {
		t.Fatal(err)
	}
	// A heuristic may tie the optimum and win on arrival order, so assert
	// on cost, and on the exhaustive run's record being exact.
	if !report.Best.Cost.Equal(exact.Cost) {
		t.Fatalf("ensemble best 2^%.3f not the exact optimum 2^%.3f",
			report.Best.CostLog2, exact.Cost.Log2())
	}
	for _, rec := range report.Runs {
		if rec.Name == "qoh-exhaustive" && !rec.Exact {
			t.Fatal("exhaustive run not marked exact")
		}
	}
	if len(report.Best.Breaks) == 0 {
		t.Fatal("QO_H best lacks pipeline boundaries")
	}
	for _, rec := range report.Runs {
		if rec.Err == "" && rec.Stats.CostEvals == 0 {
			t.Errorf("%s: zero cost evaluations recorded", rec.Name)
		}
	}
}

// Oversize instances drop the exhaustive searcher but the heuristics
// still carry the ensemble.
func TestRunQOHOversizeFallsBackToHeuristics(t *testing.T) {
	in := randomQOH(qoh.MaxExhaustiveN+2, 2)
	report, err := New().RunQOH(context.Background(), in, QOHSearchers(opt.WithSeed(3))...)
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil || report.Best.Exact {
		t.Fatal("oversize run should produce a non-exact heuristic plan")
	}
	if len(report.Best.Sequence) != qoh.MaxExhaustiveN+2 {
		t.Fatal("incomplete plan")
	}
}
