package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"approxqo/internal/opt"
	"approxqo/internal/qon"
	"approxqo/internal/trace"
)

// spanIndex maps a snapshot by ID and groups children by parent.
func spanIndex(infos []trace.SpanInfo) (byID map[uint64]trace.SpanInfo, children map[uint64][]trace.SpanInfo) {
	byID = make(map[uint64]trace.SpanInfo, len(infos))
	children = make(map[uint64][]trace.SpanInfo)
	for _, s := range infos {
		byID[s.ID] = s
		children[s.Parent] = append(children[s.Parent], s)
	}
	return byID, children
}

// The span taxonomy: engine.run → optimizer:<name> → attempt →
// optimize/certify, plus a merge phase — and the report's span IDs
// resolve into the trace.
func TestTraceSpanTaxonomy(t *testing.T) {
	in := randomInstance(7, 0.7, 11)
	tr := trace.New()
	report, err := New(WithTracer(tr), WithoutEarlyExit()).Run(context.Background(), in,
		opt.NewDP(), opt.NewGreedy(opt.GreedyMinCost))
	if err != nil {
		t.Fatal(err)
	}
	infos := tr.Snapshot()
	byID, children := spanIndex(infos)

	root, ok := byID[report.SpanID]
	if !ok || root.Name != "engine.run" {
		t.Fatalf("report.SpanID %d does not resolve to an engine.run span", report.SpanID)
	}
	if root.Fields["model"] != "qon" {
		t.Errorf("root span model = %v, want qon", root.Fields["model"])
	}
	var sawMerge bool
	optSpans := map[string]trace.SpanInfo{}
	for _, c := range children[root.ID] {
		switch c.Name {
		case "merge":
			sawMerge = true
		default:
			optSpans[c.Name] = c
		}
	}
	if !sawMerge {
		t.Error("no merge span under engine.run")
	}
	for _, rec := range report.Runs {
		s, ok := byID[rec.SpanID]
		if !ok {
			t.Fatalf("run %s span_id %d not in trace", rec.Name, rec.SpanID)
		}
		if s.Name != "optimizer:"+rec.Name || s.Parent != root.ID {
			t.Errorf("run %s span = %q parent %d, want optimizer child of root", rec.Name, s.Name, s.Parent)
		}
		if !s.Ended {
			t.Errorf("finished run %s left its span open", rec.Name)
		}
		attempts := children[s.ID]
		if len(attempts) != rec.Attempts {
			t.Errorf("run %s: %d attempt spans, record says %d attempts", rec.Name, len(attempts), rec.Attempts)
		}
		for _, a := range attempts {
			var sawOptimize, sawCertify bool
			for _, phase := range children[a.ID] {
				switch phase.Name {
				case "optimize":
					sawOptimize = true
				case "certify":
					sawCertify = true
				}
			}
			if !sawOptimize || !sawCertify {
				t.Errorf("run %s attempt missing phases (optimize=%v certify=%v)", rec.Name, sawOptimize, sawCertify)
			}
			if a.Fields["outcome"] != "certified" {
				t.Errorf("run %s attempt outcome = %v", rec.Name, a.Fields["outcome"])
			}
		}
	}
}

// Metric invariants over a mixed ensemble: every run is measured
// exactly once, and every attempt ends in exactly one outcome bucket.
func TestMetricsInvariants(t *testing.T) {
	in := randomInstance(6, 0.7, 12)
	reg := trace.NewRegistry()
	_, err := New(WithMetrics(reg), WithoutEarlyExit()).Run(context.Background(), in,
		opt.NewGreedy(opt.GreedyMinSize), panickingOptimizer{}, failingOptimizer{})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	runs := s.Counters[MetricRuns]
	if runs != 3 {
		t.Fatalf("runs counter = %d, want 3", runs)
	}
	if got := s.Histograms[MetricRunWallUS].Count; got != runs {
		t.Errorf("run wall histogram count %d != runs counter %d", got, runs)
	}
	attempts := s.Counters[MetricAttempts]
	outcomes := s.Counters[MetricCertifyPass] + s.Counters[MetricCertifyFail] +
		s.Counters[MetricPanics] + s.Counters[MetricErrors]
	if attempts == 0 || attempts != outcomes {
		t.Errorf("attempts %d != outcome buckets %d (%+v)", attempts, outcomes, s.Counters)
	}
	// panicking + failing stubs exhaust retries and hit the breaker.
	if got := s.Counters[MetricQuarantined]; got != 2 {
		t.Errorf("quarantined counter = %d, want 2", got)
	}
	if got := s.Gauges[MetricPending]; got != 0 {
		t.Errorf("pending gauge = %d after run, want 0", got)
	}
	if got := s.Histograms[MetricOptimizerCostEvals("greedy-min-size")].Count; got != 1 {
		t.Errorf("greedy cost-evals histogram count = %d, want 1", got)
	}
}

// Concurrent engine runs sharing one tracer and one registry — the
// race/soak shape the extended verify runs under -race: no span loses
// its parent and histogram totals equal counter totals afterwards.
func TestConcurrentRunsSharedObservability(t *testing.T) {
	const concurrentRuns = 6
	tr := trace.New()
	reg := trace.NewRegistry()
	e := New(WithTracer(tr), WithMetrics(reg), WithoutEarlyExit())

	var wg sync.WaitGroup
	for i := 0; i < concurrentRuns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := randomInstance(6, 0.7, int64(20+i))
			if _, err := e.Run(context.Background(), in,
				opt.NewDP(), opt.NewGreedy(opt.GreedyMinCost)); err != nil {
				t.Errorf("run %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	infos := tr.Snapshot()
	byID, _ := spanIndex(infos)
	for _, s := range infos {
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; !ok {
				t.Errorf("span %d (%s) lost its parent %d", s.ID, s.Name, s.Parent)
			}
		}
	}
	s := reg.Snapshot()
	wantRuns := int64(concurrentRuns * 2)
	if got := s.Counters[MetricRuns]; got != wantRuns {
		t.Errorf("runs counter = %d, want %d", got, wantRuns)
	}
	if got := s.Histograms[MetricRunWallUS].Count; got != wantRuns {
		t.Errorf("wall histogram count %d != %d", got, wantRuns)
	}
	if got := s.Counters[MetricCertifyPass]; got != wantRuns {
		t.Errorf("certify.pass = %d, want %d (all runs honest)", got, wantRuns)
	}
	if got := s.Gauges[MetricPending]; got != 0 {
		t.Errorf("pending gauge = %d, want 0", got)
	}
}

// stallingEvaluator ignores cancellation and keeps evaluating costs
// until released — the abandonment case where the engine must salvage
// instrumentation counters from a still-running optimizer.
type stallingEvaluator struct{ release chan struct{} }

func (stallingEvaluator) Name() string { return "stalling-evaluator" }

func (s stallingEvaluator) Optimize(ctx context.Context, in *qon.Instance) (*opt.Result, error) {
	seq := make(qon.Sequence, in.N())
	for i := range seq {
		seq[i] = i
	}
	for {
		select {
		case <-s.release:
			return &opt.Result{Sequence: seq, Cost: in.Cost(seq)}, nil
		default:
			in.Cost(seq) // hammer the instrumented cost model, ignoring ctx
		}
	}
}

// Regression for the torn-read audit: abandon a stalling optimizer
// while concurrently sampling the metrics registry and the trace. The
// stats sink is written by the stalled goroutine the whole time; the
// salvage in the grace path and the samplers must stay race-clean
// (run under -race in extended verify) and the aggregates consistent.
func TestAbandonStallingOptimizerWhileSamplingMetrics(t *testing.T) {
	in := randomInstance(6, 0.7, 13)
	release := make(chan struct{})
	defer close(release)
	tr := trace.New()
	reg := trace.NewRegistry()

	stop := make(chan struct{})
	var samplers sync.WaitGroup
	for i := 0; i < 3; i++ {
		samplers.Add(1)
		go func() {
			defer samplers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = reg.Snapshot()
					_ = tr.Snapshot()
				}
			}
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	report, err := New(WithTracer(tr), WithMetrics(reg), WithGrace(40*time.Millisecond)).Run(ctx, in,
		stallingEvaluator{release: release}, opt.NewGreedy(opt.GreedyMinSize))
	close(stop)
	samplers.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var rec *RunRecord
	for i := range report.Runs {
		if report.Runs[i].Name == "stalling-evaluator" {
			rec = &report.Runs[i]
		}
	}
	if rec == nil || !rec.Abandoned || !rec.Quarantined {
		t.Fatalf("stalling run not abandoned+quarantined: %+v", rec)
	}
	if rec.Stats.CostEvals == 0 {
		t.Error("abandonment salvaged no cost-evaluation counters")
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricAbandoned]; got != 1 {
		t.Errorf("abandoned counter = %d, want 1", got)
	}
	if got := s.Counters[MetricRuns]; got != 2 {
		t.Errorf("runs counter = %d, want 2 (one finished, one abandoned)", got)
	}
	if got := s.Histograms[MetricRunWallUS].Count; got != 2 {
		t.Errorf("wall histogram count = %d, want 2", got)
	}
	byID, _ := spanIndex(tr.Snapshot())
	span, ok := byID[rec.SpanID]
	if !ok {
		t.Fatalf("abandoned run has no span")
	}
	if span.Ended {
		t.Error("abandoned optimizer span should be left unfinished (stall visible in the timeline)")
	}
	if span.Fields["abandoned"] != true {
		t.Errorf("abandoned span fields = %v", span.Fields)
	}
}
