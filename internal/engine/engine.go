// Package engine is a supervised ensemble runner for the repo's query
// optimizers. It executes any set of opt.Optimizer values (or QO_H plan
// searchers — see RunQOH) concurrently over one instance, with:
//
//   - context cancellation threaded into every run,
//   - an optional per-run deadline on top of the caller's context,
//   - early termination of the remaining runs once an exact
//     (certified-optimal) result arrives,
//   - panic isolation — a crashing optimizer becomes a RunRecord with
//     Panicked set, never a crashed process,
//   - a grace period after cancellation, after which unresponsive runs
//     are abandoned (their goroutines drain into a buffered channel;
//     their counters are still snapshotted safely), and
//   - a first-cheapest-wins merge of the results.
//
// Every run gets a fresh Stats sink attached to the instance, so the
// cost model itself counts evaluations whether or not the optimizer
// cooperates; the counts come back in a structured, JSON-serializable
// Report.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
	"approxqo/internal/stats"
)

// Stats is the per-run instrumentation collector threaded through the
// cost models (an alias of the leaf stats package's type, re-exported
// here as part of the engine API).
type Stats = stats.Stats

// DefaultGrace is how long the engine waits, after the governing
// context ends, for runs to deliver their best-so-far results before
// abandoning them.
const DefaultGrace = 250 * time.Millisecond

// Engine supervises ensemble runs. The zero value is usable: no
// per-run deadline, DefaultGrace, early exit enabled.
type Engine struct {
	runTimeout time.Duration
	grace      time.Duration
	noEarly    bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithRunTimeout puts a deadline on each optimizer run, layered under
// the caller's context (whichever ends first wins). Zero means no
// per-run deadline.
func WithRunTimeout(d time.Duration) Option { return func(e *Engine) { e.runTimeout = d } }

// WithGrace sets how long the engine waits for best-so-far results
// after cancellation before abandoning stragglers (default
// DefaultGrace).
func WithGrace(d time.Duration) Option { return func(e *Engine) { e.grace = d } }

// WithoutEarlyExit keeps all runs going even after an exact result
// arrives — useful when the point is the per-optimizer comparison, not
// the answer.
func WithoutEarlyExit() Option { return func(e *Engine) { e.noEarly = true } }

// New builds an Engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, apply := range opts {
		apply(e)
	}
	return e
}

// jobResult is the model-independent slice of an optimizer's result
// that the supervisor needs for merging and reporting.
type jobResult struct {
	seq    []int
	breaks []int
	cost   num.Num
	exact  bool
}

// job is one supervised unit of work.
type job struct {
	name string
	// run executes with the per-run context; the instance it closes
	// over already carries a fresh stats sink.
	run func(ctx context.Context) (*jobResult, error)
	// sink is snapshotted into the RunRecord even when run never
	// returns (abandonment) — it is written with atomics only.
	sink *stats.Stats
}

// Run executes the optimizers concurrently over in and merges their
// results. It returns a Report whenever the ensemble is non-empty; the
// error is non-nil only when no optimizer produced a result (all
// failed, panicked, or were abandoned resultless) — mirroring
// opt.BestOf's skip-errors semantics. The Report is returned alongside
// the error so failed runs can still be inspected.
func (e *Engine) Run(ctx context.Context, in *qon.Instance, optimizers ...opt.Optimizer) (*Report, error) {
	if len(optimizers) == 0 {
		return nil, errors.New("engine: no optimizers given")
	}
	jobs := make([]*job, len(optimizers))
	for i, o := range optimizers {
		o := o
		sink := &stats.Stats{}
		instrumented := in.WithStats(sink)
		jobs[i] = &job{
			name: o.Name(),
			sink: sink,
			run: func(ctx context.Context) (*jobResult, error) {
				r, err := o.Optimize(ctx, instrumented)
				if err != nil || r == nil {
					if err == nil {
						err = errors.New("optimizer returned no result")
					}
					return nil, err
				}
				return &jobResult{seq: []int(r.Sequence), cost: r.Cost, exact: r.Exact}, nil
			},
		}
	}
	report, best := e.supervise(ctx, jobs)
	report.Model = "qon"
	report.N = in.N()
	report.Best = best
	if best == nil {
		return report, fmt.Errorf("engine: every optimizer failed: %s", firstFailure(report.Runs))
	}
	return report, nil
}

// outcome is what a run goroutine delivers back to the supervisor.
type outcome struct {
	idx      int
	res      *jobResult
	err      error
	panicked bool
	timedOut bool
	dur      time.Duration
}

// supervise runs the jobs concurrently and collects them into records,
// merging the cheapest successful result (first arrival wins ties).
func (e *Engine) supervise(ctx context.Context, jobs []*job) (*Report, *BestRecord) {
	started := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Buffered so abandoned goroutines can deliver late and exit
	// instead of leaking blocked forever.
	results := make(chan outcome, len(jobs))
	for i, j := range jobs {
		i, j := i, j
		go func() {
			oc := outcome{idx: i}
			start := time.Now()
			defer func() {
				if p := recover(); p != nil {
					oc.res, oc.err, oc.panicked = nil, fmt.Errorf("%v", p), true
				}
				oc.dur = time.Since(start)
				results <- oc
			}()
			jctx := runCtx
			if e.runTimeout > 0 {
				var jcancel context.CancelFunc
				jctx, jcancel = context.WithTimeout(runCtx, e.runTimeout)
				defer jcancel()
			}
			oc.res, oc.err = j.run(jctx)
			// A deadline that expired marks the run timed out even when an
			// anytime algorithm still salvaged a best-so-far result.
			oc.timedOut = errors.Is(jctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil
		}()
	}

	records := make([]RunRecord, len(jobs))
	finished := make([]bool, len(jobs))
	for i, j := range jobs {
		records[i].Name = j.name
	}
	var best *BestRecord
	var bestCost num.Num
	grace := e.grace
	if grace <= 0 {
		grace = DefaultGrace
	}
	done := runCtx.Done()
	var graceC <-chan time.Time
	pending := len(jobs)
	for pending > 0 {
		select {
		case oc := <-results:
			pending--
			finished[oc.idx] = true
			rec := &records[oc.idx]
			rec.WallMS = float64(oc.dur.Microseconds()) / 1000
			rec.Stats = jobs[oc.idx].sink.Snapshot()
			rec.Panicked = oc.panicked
			rec.TimedOut = oc.timedOut
			if oc.err != nil {
				rec.Err = oc.err.Error()
			}
			if oc.res != nil {
				cost := oc.res.cost
				rec.Cost = &cost
				rec.CostLog2 = cost.Log2()
				rec.Exact = oc.res.exact
				if best == nil || cost.Less(bestCost) {
					best = &BestRecord{
						Winner:   jobs[oc.idx].name,
						Sequence: oc.res.seq,
						Breaks:   oc.res.breaks,
						Cost:     cost,
						CostLog2: cost.Log2(),
						Exact:    oc.res.exact,
					}
					bestCost = cost
				}
				if oc.res.exact && !e.noEarly {
					cancel() // remaining runs can only tie at best
				}
			}
		case <-done:
			// Context over (caller cancellation, deadline, or early exit):
			// give cooperative runs a grace window to deliver best-so-far.
			done = nil
			t := time.NewTimer(grace)
			defer t.Stop()
			graceC = t.C
		case <-graceC:
			// Whatever is still running is abandoned: salvage counters
			// (atomics stay coherent mid-run), record the abandonment.
			for i := range jobs {
				if finished[i] {
					continue
				}
				rec := &records[i]
				rec.WallMS = float64(time.Since(started).Microseconds()) / 1000
				rec.Stats = jobs[i].sink.Snapshot()
				rec.Abandoned = true
				rec.Err = "abandoned: no result within the cancellation grace period"
			}
			pending = 0
		}
	}
	return &Report{
		Runs:   records,
		WallMS: float64(time.Since(started).Microseconds()) / 1000,
	}, best
}

// firstFailure summarizes the first failed run for the all-failed error.
func firstFailure(runs []RunRecord) string {
	for _, r := range runs {
		if r.Err != "" {
			return r.Name + ": " + r.Err
		}
	}
	return "no runs"
}
