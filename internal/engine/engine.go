// Package engine is a supervised ensemble runner for the repo's query
// optimizers. It executes any set of opt.Optimizer values (or QO_H plan
// searchers — see RunQOH) concurrently over one instance, with:
//
//   - context cancellation threaded into every run,
//   - an optional per-run deadline on top of the caller's context,
//   - early termination of the remaining runs once an exact
//     (certified-optimal) result arrives,
//   - panic isolation — a crashing optimizer becomes a RunRecord
//     carrying the recovered panic value and a stack summary, never a
//     crashed process,
//   - a mandatory certification gate — every result is audited by the
//     independent certify package (permutation bijection, exact-
//     arithmetic cost recomputation, exactness cross-check) before it
//     may enter the merge,
//   - a quarantine circuit-breaker — an optimizer that panics or fails
//     certification QuarantineAfter times in a run is benched, its
//     contributions discarded, and the benching recorded in the Report,
//   - bounded retry-with-reseed for transient failures (spurious
//     errors, one-off bad results from randomized searches),
//   - a grace period after cancellation, after which unresponsive runs
//     are abandoned and quarantined (their goroutines drain into a
//     buffered channel; their counters are still snapshotted safely),
//   - a cheapest-wins merge over certified results only; on a cost
//     tie an exact result beats a heuristic one, otherwise the first
//     arrival keeps the slot.
//
// Every run gets a fresh Stats sink attached to the instance, so the
// cost model itself counts evaluations whether or not the optimizer
// cooperates; the counts come back in a structured, JSON-serializable
// Report.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"approxqo/internal/certify"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
	"approxqo/internal/stats"
	"approxqo/internal/trace"
)

// Stats is the per-run instrumentation collector threaded through the
// cost models (an alias of the leaf stats package's type, re-exported
// here as part of the engine API).
type Stats = stats.Stats

// DefaultGrace is how long the engine waits, after the governing
// context ends, for runs to deliver their best-so-far results before
// abandoning them.
const DefaultGrace = 250 * time.Millisecond

// DefaultRetries is how many extra attempts a run gets after a
// transient failure (error, panic, failed certification) before the
// engine gives up on it.
const DefaultRetries = 2

// DefaultQuarantineAfter is how many failures within one run bench an
// optimizer (see WithQuarantineAfter). With DefaultRetries it means an
// optimizer that fails every attempt is quarantined.
const DefaultQuarantineAfter = 3

// The engine's structured error taxonomy. Errors returned by Run and
// RunQOH, and the per-run errors folded into the all-failed error, wrap
// these sentinels so callers can classify failures with errors.Is.
var (
	// ErrNoOptimizers is returned when Run is called with an empty
	// ensemble.
	ErrNoOptimizers = errors.New("engine: no optimizers registered")
	// ErrNilInstance is returned when Run is called with a nil
	// instance.
	ErrNilInstance = errors.New("engine: nil instance")
	// ErrUncertified marks a result the certification gate rejected;
	// it always wraps the certify package's classification
	// (ErrInvalidPlan, ErrCostMismatch, ErrBoundViolated).
	ErrUncertified = errors.New("engine: result failed certification")
	// ErrQuarantined marks an optimizer benched by the circuit-breaker
	// after repeated failures; its results are discarded from the merge.
	ErrQuarantined = errors.New("engine: optimizer quarantined")
	// ErrAllFailed is returned when no optimizer produced a certified
	// result.
	ErrAllFailed = errors.New("engine: every optimizer failed")
)

// ErrInvalidPlan is the certify package's structural-violation
// sentinel, re-exported so engine callers can classify certification
// failures without importing certify.
var ErrInvalidPlan = certify.ErrInvalidPlan

// Metric names published into a WithMetrics registry. The counters and
// histograms obey two invariants the soak tests assert: MetricRuns
// equals the observation count of MetricRunWallUS (every run — finished
// or abandoned — is measured exactly once), and MetricAttempts equals
// MetricCertifyPass + MetricCertifyFail + MetricPanics + MetricErrors
// (every attempt ends in exactly one of those outcomes).
const (
	MetricRuns        = "engine.runs"           // counter: runs accounted (incl. abandoned)
	MetricAttempts    = "engine.attempts"       // counter: optimization attempts started
	MetricRetries     = "engine.retries"        // counter: attempts beyond each run's first
	MetricCertifyPass = "engine.certify.pass"   // counter: results the audit accepted
	MetricCertifyFail = "engine.certify.fail"   // counter: results the audit rejected
	MetricPanics      = "engine.panics"         // counter: attempts that panicked
	MetricErrors      = "engine.errors"         // counter: attempts that returned an error
	MetricQuarantined = "engine.quarantined"    // counter: optimizers benched
	MetricAbandoned   = "engine.abandoned"      // counter: runs abandoned past the grace window
	MetricTimeouts    = "engine.timeouts"       // counter: runs whose per-run deadline expired
	MetricPending     = "engine.pending"        // gauge: runs not yet accounted (queue depth)
	MetricRunWallUS   = "engine.run.wall_us"    // histogram: per-run wall time (µs)
	MetricMergeSize   = "engine.merge.arrivals" // histogram: certified arrivals per engine run

	// Cost-kernel tier split (see DESIGN.md § Cost-kernel tiers): how
	// much work the float64 fast path absorbed versus exact arithmetic,
	// and how often the guard band forced an exact re-decision.
	MetricCostFastPath  = "cost.fast_path"   // counter: float64 log₂ evaluations
	MetricCostExactPath = "cost.exact_path"  // counter: exact num.Num evaluations
	MetricCostFallbacks = "cost.fallbacks"   // counter: guard-band exact fallbacks
	MetricScratchGets   = "num.scratch.gets" // gauge: pooled scratch checkouts (process-wide)
	MetricScratchNews   = "num.scratch.news" // gauge: pool misses that allocated (process-wide)
)

// MetricOptimizerWallUS names the per-optimizer wall-time histogram.
func MetricOptimizerWallUS(name string) string { return "opt." + name + ".wall_us" }

// MetricOptimizerCostEvals names the per-optimizer cost-evaluation
// histogram (one observation per run, of the run's total count).
func MetricOptimizerCostEvals(name string) string { return "opt." + name + ".cost_evals" }

// Engine supervises ensemble runs. The zero value is usable: no
// per-run deadline, DefaultGrace, early exit enabled, DefaultRetries,
// DefaultQuarantineAfter.
type Engine struct {
	runTimeout time.Duration
	grace      time.Duration
	noEarly    bool

	retries       int
	retriesSet    bool
	quarantine    int
	quarantineSet bool

	tracer  *trace.Tracer
	metrics *trace.Registry

	healthMu sync.Mutex
	health   Health
}

// Health is a cheap probe of the engine's run history, for serving
// layers that need a readiness signal or a circuit-breaker input
// without parsing full Reports. It is maintained across Run/RunQOH
// calls and safe to read concurrently with in-flight runs.
type Health struct {
	// Runs counts completed ensemble runs (successful or not).
	Runs int64 `json:"runs"`
	// Failed counts runs that produced no certified winner.
	Failed int64 `json:"failed"`
	// LastOK reports whether the most recent run produced a certified
	// winner (false before any run).
	LastOK bool `json:"last_ok"`
	// Quarantined is the number of optimizers benched in the most
	// recent run.
	Quarantined int `json:"quarantined"`
	// ErrKinds are the distinct failure kinds of the most recent run's
	// failed optimizers, in record order: "panic", "abandoned",
	// "uncertified", "quarantined", "timeout" or "error".
	ErrKinds []string `json:"err_kinds,omitempty"`
}

// Health returns a snapshot of the engine's run history. It is a few
// atomic loads under a mutex — cheap enough for a /readyz handler or a
// per-request breaker check.
func (e *Engine) Health() Health {
	e.healthMu.Lock()
	defer e.healthMu.Unlock()
	h := e.health
	h.ErrKinds = append([]string(nil), e.health.ErrKinds...)
	return h
}

// errKind classifies one failed run record for the health probe.
func errKind(rec *RunRecord) string {
	switch {
	case rec.Abandoned:
		return "abandoned"
	case rec.Panicked:
		return "panic"
	case rec.CertError != "":
		return "uncertified"
	case rec.Quarantined:
		return "quarantined"
	case rec.TimedOut && !rec.Certified:
		return "timeout"
	default:
		return "error"
	}
}

// recordHealth folds one completed run into the health probe.
func (e *Engine) recordHealth(records []RunRecord, ok bool) {
	var kinds []string
	var quarantined int
	for i := range records {
		rec := &records[i]
		if rec.Quarantined {
			quarantined++
		}
		if rec.Err == "" {
			continue
		}
		kind := errKind(rec)
		seen := false
		for _, k := range kinds {
			if k == kind {
				seen = true
				break
			}
		}
		if !seen {
			kinds = append(kinds, kind)
		}
	}
	e.healthMu.Lock()
	defer e.healthMu.Unlock()
	e.health.Runs++
	if !ok {
		e.health.Failed++
	}
	e.health.LastOK = ok
	e.health.Quarantined = quarantined
	e.health.ErrKinds = kinds
}

// Option configures an Engine.
type Option func(*Engine)

// WithRunTimeout puts a deadline on each optimizer run, layered under
// the caller's context (whichever ends first wins). Zero means no
// per-run deadline.
func WithRunTimeout(d time.Duration) Option { return func(e *Engine) { e.runTimeout = d } }

// WithGrace sets how long the engine waits for best-so-far results
// after cancellation before abandoning stragglers (default
// DefaultGrace).
func WithGrace(d time.Duration) Option { return func(e *Engine) { e.grace = d } }

// WithoutEarlyExit keeps all runs going even after an exact result
// arrives — useful when the point is the per-optimizer comparison, not
// the answer.
func WithoutEarlyExit() Option { return func(e *Engine) { e.noEarly = true } }

// WithRetries sets how many extra attempts a run gets after a
// transient failure — an error, a panic, or a result the certification
// gate rejected (default DefaultRetries; 0 disables retries). Before
// each retry the optimizer is re-seeded when it implements
// opt.Reseedable, so randomized searches do not deterministically
// repeat the failed attempt.
func WithRetries(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.retries, e.retriesSet = n, true
	}
}

// WithQuarantineAfter sets the circuit-breaker threshold: an optimizer
// accumulating n failures (panics, errors, certification rejections)
// within one run is benched — no further retries, its results
// discarded, Quarantined set in its RunRecord (default
// DefaultQuarantineAfter; minimum 1).
func WithQuarantineAfter(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.quarantine, e.quarantineSet = n, true
	}
}

// WithTracer records hierarchical spans for every run into t: the
// engine run, each optimizer (one trace track each), each attempt and
// its optimize/certify phases, and the final merge. Abandoned runs
// leave their spans unfinished, which the exporter marks explicitly —
// a stalled optimizer is visible as an open span in the timeline. A
// nil tracer disables tracing (the default).
func WithTracer(t *trace.Tracer) Option { return func(e *Engine) { e.tracer = t } }

// WithMetrics aggregates every run into r: attempt/retry/certification/
// quarantine/abandonment counters, an engine.pending queue-depth gauge,
// and per-optimizer wall-time and cost-evaluation histograms (see the
// Metric* constants). The per-run stats sinks remain attached to each
// instance; the supervisor alone absorbs their snapshots into the
// registry at run completion or abandonment, so the registry is the
// single synchronized aggregation point. A nil registry disables
// metrics (the default).
func WithMetrics(r *trace.Registry) Option { return func(e *Engine) { e.metrics = r } }

// New builds an Engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, apply := range opts {
		apply(e)
	}
	return e
}

func (e *Engine) effRetries() int {
	if e.retriesSet {
		return e.retries
	}
	return DefaultRetries
}

func (e *Engine) effQuarantine() int {
	if e.quarantineSet {
		return e.quarantine
	}
	return DefaultQuarantineAfter
}

// jobResult is the model-independent slice of an optimizer's result
// that the supervisor needs for auditing, merging and reporting.
type jobResult struct {
	seq    []int
	breaks []int
	cost   num.Num
	exact  bool
}

// job is one supervised unit of work.
type job struct {
	name string
	// run executes with the per-run context; the instance it closes
	// over already carries a fresh stats sink.
	run func(ctx context.Context) (*jobResult, error)
	// audit is the certification gate: a non-nil error rejects the
	// result before it can reach the merge. It closes over the
	// original (uninstrumented) instance so the auditor's recomputation
	// never pollutes the run's counters.
	audit func(*jobResult) error
	// reseed re-seeds the optimizer before a retry attempt; nil when
	// the optimizer is not reseedable.
	reseed func(seed int64)
	// sink is snapshotted into the RunRecord even when run never
	// returns (abandonment) — it is written with atomics only.
	sink *stats.Stats
}

// runState is the per-run supervision state the engine pools across
// requests: the job slab with its stats sinks, the outcome channel, the
// per-optimizer spans, the finished bitmap and the merge arrivals. One
// runState is owned by exactly one supervise call; it is returned to
// the pool only when every run goroutine has delivered its outcome. A
// run that abandons a straggler retains the state instead — the
// abandoned goroutine still writes its sink and may yet send on the
// results channel, and handing either to the next request would be a
// cross-request bleed (see DESIGN § Pooled request lifecycle).
type runState struct {
	jobs     []*job
	jobSlab  []job
	sinks    []stats.Stats
	results  chan outcome
	optSpans []*trace.Span
	finished []bool
	arrivals []arrival
}

var runStatePool = sync.Pool{New: func() any { return &runState{} }}

// getRunState returns a runState sized for n jobs with sinks reset and
// job slots zeroed.
func getRunState(n int) *runState {
	st := runStatePool.Get().(*runState)
	if cap(st.jobs) < n {
		st.jobs = make([]*job, n)
		st.jobSlab = make([]job, n)
		st.sinks = make([]stats.Stats, n)
		st.optSpans = make([]*trace.Span, n)
		st.finished = make([]bool, n)
	}
	st.jobs = st.jobs[:n]
	st.jobSlab = st.jobSlab[:n]
	st.sinks = st.sinks[:n]
	st.optSpans = st.optSpans[:n]
	st.finished = st.finished[:n]
	for i := 0; i < n; i++ {
		st.jobSlab[i] = job{}
		st.sinks[i].Reset()
		st.jobs[i] = &st.jobSlab[i]
		st.optSpans[i] = nil
		st.finished[i] = false
	}
	// The channel is reused only when the previous run drained it
	// completely; an abandoned run retains its whole state, channel
	// included, so a late send can never reach a later request.
	if st.results == nil || cap(st.results) < n {
		st.results = make(chan outcome, n)
	}
	st.arrivals = st.arrivals[:0]
	return st
}

// putRunState drops the closures (so pooled state never pins an
// instance past its request) and returns the state to the pool.
func putRunState(st *runState) {
	for i := range st.jobSlab {
		st.jobSlab[i] = job{}
	}
	runStatePool.Put(st)
}

// Run executes the optimizers concurrently over in, audits every
// result through the certification gate, and merges the surviving
// results cheapest-first. It returns a Report whenever the ensemble is
// non-empty; the error is non-nil only when no optimizer produced a
// certified result (all failed, panicked, were quarantined, or were
// abandoned resultless). The Report is returned alongside the error so
// failed runs can still be inspected.
//
// The Report's buffers are pooled: callers that are done with it may
// call Report.Release to recycle them, and must Detach before storing
// it anywhere that outlives the request. Callers that do neither are
// still correct — an unreleased Report is ordinary garbage.
func (e *Engine) Run(ctx context.Context, in *qon.Instance, optimizers ...opt.Optimizer) (*Report, error) {
	if in == nil {
		return nil, ErrNilInstance
	}
	if len(optimizers) == 0 {
		return nil, ErrNoOptimizers
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: context done before any run started: %w", err)
	}
	st := getRunState(len(optimizers))
	for i, o := range optimizers {
		o := o
		sink := &st.sinks[i]
		instrumented := in.WithStats(sink)
		j := st.jobs[i]
		j.name = o.Name()
		j.sink = sink
		j.run = func(ctx context.Context) (*jobResult, error) {
			r, err := o.Optimize(ctx, instrumented)
			if err != nil || r == nil {
				if err == nil {
					err = errors.New("optimizer returned no result")
				}
				return nil, err
			}
			return &jobResult{seq: []int(r.Sequence), cost: r.Cost, exact: r.Exact}, nil
		}
		j.audit = func(r *jobResult) error {
			_, err := certify.QON(in, r.seq, r.cost, r.exact)
			return err
		}
		if rs, ok := o.(opt.Reseedable); ok {
			j.reseed = rs.Reseed
		}
	}
	report, best := e.supervise(ctx, "qon", st)
	report.Model = "qon"
	report.N = in.N()
	report.Best = best
	if best == nil {
		return report, fmt.Errorf("%w: %s", ErrAllFailed, firstFailure(report.Runs))
	}
	return report, nil
}

// outcome is what a run goroutine delivers back to the supervisor.
type outcome struct {
	idx         int
	res         *jobResult
	err         error
	panicked    bool
	panicValue  string
	panicStack  string
	timedOut    bool
	certified   bool
	quarantined bool
	attempts    int
	failures    int
	certFails   int
	panics      int
	errs        int
	certErr     string
	dur         time.Duration
}

// runShielded executes one attempt with panic isolation, returning the
// recovered panic value and a stack summary when the attempt crashed.
func runShielded(ctx context.Context, j *job) (res *jobResult, err error, panicValue, panicStack string) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, nil
			panicValue = fmt.Sprintf("%v", p)
			panicStack = stackSummary(debug.Stack())
		}
	}()
	res, err = j.run(ctx)
	if err == nil && res == nil {
		err = errors.New("optimizer returned no result")
	}
	return res, err, "", ""
}

// stackSummary compresses a debug.Stack dump to the first few
// non-runtime frames ("func (file:line)"), enough to locate a panic in
// a report without shipping the whole trace.
func stackSummary(stack []byte) string {
	lines := strings.Split(string(stack), "\n")
	var frames []string
	for i := 0; i+1 < len(lines) && len(frames) < 4; i++ {
		fn := strings.TrimSpace(lines[i])
		loc := strings.TrimSpace(lines[i+1])
		// A frame is a "pkg.Func(...)" line followed by a tab-indented
		// "file.go:N +0x..." line.
		if fn == "" || !strings.Contains(fn, "(") || !strings.Contains(loc, ".go:") {
			continue
		}
		if strings.HasPrefix(fn, "runtime") || strings.HasPrefix(fn, "panic(") ||
			strings.Contains(fn, "runShielded") || strings.Contains(fn, "debug.Stack") {
			i++
			continue
		}
		name := fn
		if cut := strings.LastIndex(name, "("); cut > 0 {
			name = name[:cut]
		}
		file := loc
		if cut := strings.LastIndex(file, " +0x"); cut > 0 {
			file = file[:cut]
		}
		if cut := strings.LastIndex(file, "/"); cut >= 0 {
			file = file[cut+1:]
		}
		frames = append(frames, name+" ("+file+")")
		i++
	}
	return strings.Join(frames, " <- ")
}

// arrival is one certified result, kept for the final merge so a
// later quarantine can discard an optimizer's prior contributions.
type arrival struct {
	idx int
	res *jobResult
}

// supervise runs the jobs concurrently — each with retry, certification
// and quarantine handling — and collects them into records, merging the
// cheapest certified result from a non-quarantined optimizer (on a
// cost tie an exact result beats a heuristic one; otherwise the first
// arrival wins). When the engine carries a tracer it records the
// span taxonomy documented in DESIGN.md (engine.run → optimizer:<name>
// → attempt → optimize/certify → merge); when it carries a metrics
// registry, the supervisor — and only the supervisor — absorbs each
// run's stats snapshot and outcome tallies into it, so aggregate reads
// never race the optimizer goroutines.
func (e *Engine) supervise(ctx context.Context, model string, st *runState) (*Report, *BestRecord) {
	started := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := st.jobs
	retries := e.effRetries()
	benchAt := e.effQuarantine()

	rootSpan := e.tracer.Start("engine.run")
	rootSpan.SetField("model", model)
	rootSpan.SetField("optimizers", len(jobs))
	e.metrics.Gauge(MetricPending).Add(int64(len(jobs)))

	// Per-optimizer spans are opened by the supervisor (not the run
	// goroutines) so abandoned runs still have a span to report in the
	// record; the goroutine only adds children to it.
	optSpans := st.optSpans
	for i, j := range jobs {
		optSpans[i] = rootSpan.ChildTrack("optimizer:"+j.name, i+1)
	}

	// Buffered so abandoned goroutines can deliver late and exit
	// instead of leaking blocked forever.
	results := st.results
	for i, j := range jobs {
		i, j := i, j
		optSpan := optSpans[i]
		go func() {
			oc := outcome{idx: i}
			start := time.Now()
			defer func() {
				if p := recover(); p != nil {
					// Backstop for panics outside the shielded attempt
					// (supervision bug, audit panic): still a record,
					// never a crashed process.
					oc.res, oc.certified = nil, false
					oc.panicked = true
					oc.panicValue = fmt.Sprintf("%v", p)
					oc.panicStack = stackSummary(debug.Stack())
					oc.err = fmt.Errorf("panic: %s", oc.panicValue)
				}
				oc.dur = time.Since(start)
				results <- oc
			}()
			// The pprof label makes CPU/heap profile samples attributable
			// per optimizer (`go tool pprof`, tags view).
			trace.Do(runCtx, "optimizer", j.name, func(lctx context.Context) {
				jctx := lctx
				if e.runTimeout > 0 {
					var jcancel context.CancelFunc
					jctx, jcancel = context.WithTimeout(lctx, e.runTimeout)
					defer jcancel()
				}
				for attempt := 0; ; attempt++ {
					oc.attempts = attempt + 1
					attemptSpan := optSpan.Child("attempt")
					attemptSpan.SetField("attempt", attempt+1)
					if attempt > 0 {
						attemptSpan.SetField("retry", true)
					}
					optimizeSpan := attemptSpan.Child("optimize")
					res, err, panicValue, panicStack := runShielded(jctx, j)
					optimizeSpan.End()
					switch {
					case panicValue != "":
						oc.failures++
						oc.panics++
						oc.panicked = true
						oc.panicValue, oc.panicStack = panicValue, panicStack
						oc.err = fmt.Errorf("panic: %s", panicValue)
						attemptSpan.SetField("outcome", "panic")
					case err != nil:
						oc.failures++
						oc.errs++
						oc.panicked = false
						oc.err = err
						attemptSpan.SetField("outcome", "error")
					default:
						certifySpan := attemptSpan.Child("certify")
						aerr := j.audit(res)
						certifySpan.SetField("pass", aerr == nil)
						certifySpan.End()
						if aerr != nil {
							oc.failures++
							oc.certFails++
							oc.panicked = false
							oc.certErr = aerr.Error()
							oc.err = fmt.Errorf("%w: %v", ErrUncertified, aerr)
							attemptSpan.SetField("outcome", "uncertified")
						} else {
							oc.res, oc.err, oc.certified = res, nil, true
							oc.panicked = false
							attemptSpan.SetField("outcome", "certified")
						}
					}
					attemptSpan.End()
					if oc.certified {
						break
					}
					if oc.failures >= benchAt {
						oc.quarantined = true
						oc.err = fmt.Errorf("%w after %d failures: %v", ErrQuarantined, oc.failures, oc.err)
						break
					}
					if attempt >= retries || jctx.Err() != nil {
						break
					}
					if j.reseed != nil {
						j.reseed(int64(attempt + 1))
					}
				}
				// A deadline that expired marks the run timed out even when an
				// anytime algorithm still salvaged a best-so-far result.
				oc.timedOut = errors.Is(jctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil
			})
		}()
	}

	report := newReport(len(jobs))
	records := report.Runs
	finished := st.finished
	for i, j := range jobs {
		records[i].Name = j.name
	}
	arrivals := st.arrivals
	abandoned := false
	var best *BestRecord // provisional, for early exit only
	var bestCost num.Num
	grace := e.grace
	if grace <= 0 {
		grace = DefaultGrace
	}
	done := runCtx.Done()
	var graceC <-chan time.Time
	pending := len(jobs)
	// publish absorbs one accounted run into the metrics registry. It is
	// called only from this (supervising) goroutine — the registry is the
	// single synchronized sink for aggregates, so a concurrent metrics
	// reader can never observe a half-published run racing an optimizer.
	publish := func(rec *RunRecord, oc *outcome) {
		m := e.metrics
		if m == nil {
			return
		}
		m.Counter(MetricRuns).Inc()
		m.Gauge(MetricPending).Add(-1)
		wallUS := int64(rec.WallMS * 1000)
		m.Histogram(MetricRunWallUS).Observe(wallUS)
		m.Histogram(MetricOptimizerWallUS(rec.Name)).Observe(wallUS)
		m.Histogram(MetricOptimizerCostEvals(rec.Name)).Observe(rec.Stats.CostEvals)
		m.Counter(MetricCostFastPath).Add(rec.Stats.FastEvals)
		m.Counter(MetricCostExactPath).Add(rec.Stats.CostEvals)
		m.Counter(MetricCostFallbacks).Add(rec.Stats.Fallbacks)
		if rec.Quarantined {
			m.Counter(MetricQuarantined).Inc()
		}
		if rec.Abandoned {
			m.Counter(MetricAbandoned).Inc()
			return // no outcome: the attempt tallies never arrived
		}
		m.Counter(MetricAttempts).Add(int64(oc.attempts))
		m.Counter(MetricRetries).Add(int64(oc.attempts - 1))
		if oc.certified {
			m.Counter(MetricCertifyPass).Inc()
		}
		m.Counter(MetricCertifyFail).Add(int64(oc.certFails))
		m.Counter(MetricPanics).Add(int64(oc.panics))
		m.Counter(MetricErrors).Add(int64(oc.errs))
		if oc.timedOut {
			m.Counter(MetricTimeouts).Inc()
		}
	}

	for pending > 0 {
		select {
		case oc := <-results:
			pending--
			finished[oc.idx] = true
			rec := &records[oc.idx]
			rec.SpanID = optSpans[oc.idx].ID()
			rec.WallMS = float64(oc.dur.Microseconds()) / 1000
			rec.Stats = jobs[oc.idx].sink.Snapshot()
			rec.Panicked = oc.panicked
			rec.PanicValue = oc.panicValue
			rec.PanicStack = oc.panicStack
			rec.TimedOut = oc.timedOut
			rec.Certified = oc.certified
			rec.Quarantined = oc.quarantined
			rec.Attempts = oc.attempts
			rec.Failures = oc.failures
			rec.CertError = oc.certErr
			if oc.err != nil {
				rec.Err = oc.err.Error()
			}
			optSpans[oc.idx].SetField("certified", oc.certified)
			optSpans[oc.idx].End()
			publish(rec, &oc)
			if oc.res != nil && oc.certified && !oc.quarantined {
				cost := oc.res.cost
				rec.Cost = &cost
				rec.CostLog2 = cost.Log2()
				rec.Exact = oc.res.exact
				arrivals = append(arrivals, arrival{idx: oc.idx, res: oc.res})
				if best == nil || cost.Less(bestCost) {
					best, bestCost = e.bestRecord(jobs, oc.idx, oc.res), cost
				}
				if oc.res.exact && !e.noEarly {
					cancel() // remaining runs can only tie at best
				}
			}
		case <-done:
			// Context over (caller cancellation, deadline, or early exit):
			// give cooperative runs a grace window to deliver best-so-far.
			done = nil
			t := time.NewTimer(grace)
			defer t.Stop()
			graceC = t.C
		case <-graceC:
			// Whatever is still running is abandoned: salvage counters
			// (atomics stay coherent mid-run), record the abandonment and
			// bench the optimizer — a component that ignores cancellation
			// is quarantined like one that fails certification. The
			// optimizer's span is left open on purpose: the exporter marks
			// it unfinished, so the stall is visible in the timeline.
			for i := range jobs {
				if finished[i] {
					continue
				}
				abandoned = true
				rec := &records[i]
				rec.SpanID = optSpans[i].ID()
				rec.WallMS = float64(time.Since(started).Microseconds()) / 1000
				rec.Stats = jobs[i].sink.Snapshot()
				rec.Abandoned = true
				rec.Quarantined = true
				rec.Err = ErrQuarantined.Error() + ": no result within the cancellation grace period"
				optSpans[i].SetField("abandoned", true)
				publish(rec, nil)
			}
			pending = 0
		}
	}

	// Final merge over certified arrivals from non-quarantined
	// optimizers. A quarantined job cannot have delivered a certified
	// result under the current retry loop, but the filter keeps the
	// discard-prior-contributions guarantee independent of that detail.
	mergeSpan := rootSpan.Child("merge")
	mergeSpan.SetField("arrivals", len(arrivals))
	best = nil
	for _, a := range arrivals {
		if records[a.idx].Quarantined {
			continue
		}
		switch {
		case best == nil || a.res.cost.Less(bestCost):
			best, bestCost = e.bestRecord(jobs, a.idx, a.res), a.res.cost
		case a.res.exact && !best.Exact && !bestCost.Less(a.res.cost):
			// Equal cost: an exact result is strictly more informative
			// than a heuristic one, so it displaces a tying heuristic
			// regardless of arrival order.
			best, bestCost = e.bestRecord(jobs, a.idx, a.res), a.res.cost
		}
	}
	mergeSpan.End()
	e.metrics.Histogram(MetricMergeSize).Observe(int64(len(arrivals)))
	gets, news := num.ScratchPoolStats()
	e.metrics.Gauge(MetricScratchGets).Set(gets)
	e.metrics.Gauge(MetricScratchNews).Set(news)
	report.WallMS = float64(time.Since(started).Microseconds()) / 1000
	report.SpanID = rootSpan.ID()
	for _, rec := range records {
		if rec.Quarantined {
			report.Quarantined = append(report.Quarantined, rec.Name)
		}
	}
	if best != nil {
		rootSpan.SetField("winner", best.Winner)
	}
	rootSpan.SetField("quarantined", len(report.Quarantined))
	rootSpan.End()
	e.recordHealth(records, best != nil)
	// Recycle the supervision state — but only when every goroutine has
	// delivered. An abandoned run keeps writing its sink and may still
	// send on the results channel; its state is forfeited to the GC, so
	// a later request can never observe this run's leftovers.
	st.arrivals = arrivals[:0]
	if !abandoned {
		putRunState(st)
	}
	return report, best
}

// bestRecord builds the winning-plan record for a certified result.
func (e *Engine) bestRecord(jobs []*job, idx int, res *jobResult) *BestRecord {
	return &BestRecord{
		Winner:    jobs[idx].name,
		Sequence:  res.seq,
		Breaks:    res.breaks,
		Cost:      res.cost,
		CostLog2:  res.cost.Log2(),
		Exact:     res.exact,
		Certified: true,
	}
}

// firstFailure summarizes the first failed run for the all-failed error.
func firstFailure(runs []RunRecord) string {
	for _, r := range runs {
		if r.Err != "" {
			return r.Name + ": " + r.Err
		}
	}
	return "no runs"
}
