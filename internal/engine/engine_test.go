package engine

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
)

// randomInstance builds a random valid QO_N instance (edge access costs
// at their lower bound t·s, as in the reductions).
func randomInstance(n int, p float64, seed int64) *qon.Instance {
	rng := rand.New(rand.NewSource(seed))
	q := graph.Random(n, p, seed)
	in := &qon.Instance{Q: q, T: make([]num.Num, n)}
	for i := range in.T {
		in.T[i] = num.FromInt64(int64(rng.Intn(500) + 2))
	}
	in.S = make([][]num.Num, n)
	in.W = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
		in.W[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		in.S[i][i] = num.One()
		in.W[i][i] = in.T[i]
		for j := 0; j < i; j++ {
			if q.HasEdge(i, j) {
				s := num.FromFloat64(float64(rng.Intn(15)+1) / 16)
				in.S[i][j], in.S[j][i] = s, s
				in.W[i][j] = in.T[i].Mul(s)
				in.W[j][i] = in.T[j].Mul(s)
			} else {
				in.S[i][j], in.S[j][i] = num.One(), num.One()
				in.W[i][j], in.W[j][i] = in.T[i], in.T[j]
			}
		}
	}
	return in
}

// slowOptimizer cooperates with cancellation but would otherwise run
// for a very long time, improving as it goes — a stand-in for any
// anytime search. It returns its best-so-far on ctx.Done.
type slowOptimizer struct {
	delay time.Duration
}

func (slowOptimizer) Name() string { return "slow-stub" }

func (s slowOptimizer) Optimize(ctx context.Context, in *qon.Instance) (*opt.Result, error) {
	n := in.N()
	seq := make(qon.Sequence, n)
	for i := range seq {
		seq[i] = i
	}
	best := &opt.Result{Sequence: seq, Cost: in.Cost(seq)}
	for {
		select {
		case <-ctx.Done():
			return best, nil
		case <-time.After(s.delay):
		}
	}
}

// hangingOptimizer ignores its context entirely — the worst-behaved
// citizen the engine must survive.
type hangingOptimizer struct{ release chan struct{} }

func (hangingOptimizer) Name() string { return "hanging-stub" }

func (h hangingOptimizer) Optimize(ctx context.Context, in *qon.Instance) (*opt.Result, error) {
	<-h.release
	return nil, context.Canceled
}

// panickingOptimizer crashes mid-run.
type panickingOptimizer struct{}

func (panickingOptimizer) Name() string { return "panicking-stub" }

func (panickingOptimizer) Optimize(ctx context.Context, in *qon.Instance) (*opt.Result, error) {
	panic("deliberate test panic")
}

// failingOptimizer always errors (out-of-range style).
type failingOptimizer struct{}

func (failingOptimizer) Name() string { return "failing-stub" }

func (failingOptimizer) Optimize(ctx context.Context, in *qon.Instance) (*opt.Result, error) {
	return nil, context.DeadlineExceeded
}

// The tentpole guarantee: a deadline run over a slow anytime optimizer
// still produces its best-so-far result, not an error.
func TestRunReturnsBestSoFarOnTimeout(t *testing.T) {
	in := randomInstance(8, 0.7, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	report, err := New().Run(ctx, in, slowOptimizer{delay: time.Millisecond})
	if err != nil {
		t.Fatalf("expected best-so-far result, got error: %v", err)
	}
	if report.Best == nil || len(report.Best.Sequence) != 8 {
		t.Fatal("no usable best result in report")
	}
	if report.Best.Winner != "slow-stub" {
		t.Fatalf("unexpected winner %q", report.Best.Winner)
	}
}

// Acceptance criterion from the issue: 50ms deadline, 24-relation
// clique, heuristic ensemble — a non-nil result, not an error.
func TestAcceptanceCliqueUnderDeadline(t *testing.T) {
	in := randomInstance(24, 1.0, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	report, err := New().Run(ctx, in, opt.Heuristics(opt.WithSeed(7))...)
	if err != nil {
		t.Fatalf("clique under deadline errored: %v", err)
	}
	if report.Best == nil || len(report.Best.Sequence) != 24 {
		t.Fatal("expected a complete 24-relation sequence")
	}
	if !in.ValidSequence(report.Best.Sequence) {
		t.Fatal("best sequence invalid")
	}
}

// BestOf semantics must survive the engine: erroring optimizers are
// skipped, the ensemble errors only when all fail.
func TestRunSkipsErroringOptimizers(t *testing.T) {
	in := randomInstance(6, 0.7, 3)
	report, err := New().Run(context.Background(), in,
		failingOptimizer{}, opt.NewGreedy(opt.GreedyMinSize))
	if err != nil {
		t.Fatalf("one healthy optimizer should carry the run: %v", err)
	}
	if report.Best.Winner != "greedy-min-size" {
		t.Fatalf("winner %q, want greedy-min-size", report.Best.Winner)
	}
	var failRec *RunRecord
	for i := range report.Runs {
		if report.Runs[i].Name == "failing-stub" {
			failRec = &report.Runs[i]
		}
	}
	if failRec == nil || failRec.Err == "" {
		t.Fatal("failing run not recorded with its error")
	}

	report, err = New().Run(context.Background(), in, failingOptimizer{}, failingOptimizer{})
	if err == nil {
		t.Fatal("all-failing ensemble must error")
	}
	if report == nil {
		t.Fatal("report should still be returned for inspection")
	}
}

func TestRunIsolatesPanics(t *testing.T) {
	in := randomInstance(6, 0.7, 4)
	report, err := New().Run(context.Background(), in,
		panickingOptimizer{}, opt.NewGreedy(opt.GreedyMinCost))
	if err != nil {
		t.Fatalf("panic leaked into the ensemble result: %v", err)
	}
	var rec *RunRecord
	for i := range report.Runs {
		if report.Runs[i].Name == "panicking-stub" {
			rec = &report.Runs[i]
		}
	}
	if rec == nil || !rec.Panicked || !strings.Contains(rec.Err, "deliberate test panic") {
		t.Fatalf("panic not recorded: %+v", rec)
	}
}

// An exact result should cancel the stragglers (early exit), and the
// slow anytime run should still deliver its best-so-far inside the
// grace window.
func TestRunEarlyExitOnExactResult(t *testing.T) {
	in := randomInstance(8, 0.7, 5)
	start := time.Now()
	report, err := New(WithGrace(time.Second)).Run(context.Background(), in,
		opt.NewDP(), slowOptimizer{delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Best.Exact || report.Best.Winner != "subset-dp" {
		t.Fatalf("exact DP should win, got %q (exact=%v)", report.Best.Winner, report.Best.Exact)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("early exit did not fire, run took %v", elapsed)
	}
	for _, rec := range report.Runs {
		if rec.Name == "slow-stub" && rec.Cost == nil && !rec.Abandoned {
			t.Fatal("slow run neither delivered a result nor was abandoned")
		}
	}
}

// A run that ignores cancellation entirely must be abandoned after the
// grace period without wedging the engine, and its counters salvaged.
func TestRunAbandonsHangingOptimizer(t *testing.T) {
	in := randomInstance(6, 0.7, 6)
	release := make(chan struct{})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	report, err := New(WithGrace(50*time.Millisecond)).Run(ctx, in,
		hangingOptimizer{release: release}, opt.NewGreedy(opt.GreedyMinSize))
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("engine wedged on a hanging optimizer")
	}
	var rec *RunRecord
	for i := range report.Runs {
		if report.Runs[i].Name == "hanging-stub" {
			rec = &report.Runs[i]
		}
	}
	if rec == nil || !rec.Abandoned {
		t.Fatalf("hanging run not marked abandoned: %+v", rec)
	}
}

// Per-run deadlines apply even when the caller's context is unbounded.
func TestRunPerRunTimeout(t *testing.T) {
	in := randomInstance(8, 0.7, 7)
	report, err := New(WithRunTimeout(30*time.Millisecond)).Run(context.Background(), in,
		slowOptimizer{delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Runs[0].TimedOut {
		t.Fatalf("run not marked timed out: %+v", report.Runs[0])
	}
	if report.Best == nil {
		t.Fatal("anytime run under per-run deadline should still produce a result")
	}
}

// The report must carry wall time and non-zero cost-evaluation counts
// for every optimizer that ran, and survive a JSON round trip.
func TestReportInstrumentationAndJSON(t *testing.T) {
	in := randomInstance(9, 0.7, 8)
	ensemble := append(opt.Heuristics(opt.WithSeed(3)), opt.NewDP(), opt.NewIterativeImprovement(opt.WithSeed(3)))
	report, err := New(WithoutEarlyExit()).Run(context.Background(), in, ensemble...)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range report.Runs {
		if rec.Err != "" {
			continue
		}
		if rec.Stats.CostEvals == 0 {
			t.Errorf("%s: zero cost evaluations recorded", rec.Name)
		}
		if rec.WallMS < 0 {
			t.Errorf("%s: negative wall time", rec.Name)
		}
	}
	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Best == nil || back.Best.Winner != report.Best.Winner {
		t.Fatal("report did not survive JSON round trip")
	}
	if !back.Best.Cost.Equal(report.Best.Cost) {
		t.Fatal("cost did not survive JSON round trip")
	}
	var sb strings.Builder
	report.WriteText(&sb)
	if !strings.Contains(sb.String(), "winner") {
		t.Fatal("text rendering missing winner line")
	}
}

// The engine's result must agree with sequential BestOf on the same
// ensemble (modulo equal-cost ties).
func TestRunMatchesBestOf(t *testing.T) {
	in := randomInstance(8, 0.7, 9)
	ensemble := func() []opt.Optimizer {
		return append(opt.Heuristics(opt.WithSeed(5)), opt.NewDP())
	}
	seq, _, err := opt.BestOf(context.Background(), in, ensemble()...)
	if err != nil {
		t.Fatal(err)
	}
	report, err := New(WithoutEarlyExit()).Run(context.Background(), in, ensemble()...)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Best.Cost.Equal(seq.Cost) {
		t.Fatalf("engine best 2^%.3f, BestOf 2^%.3f", report.Best.CostLog2, seq.Cost.Log2())
	}
}

// cannedOptimizer returns a fixed pre-computed result, optionally
// waiting for a release channel first — a deterministic way to stage
// equal-cost arrivals in a chosen order.
type cannedOptimizer struct {
	name    string
	res     *opt.Result
	release <-chan struct{}
}

func (c cannedOptimizer) Name() string { return c.name }

func (c cannedOptimizer) Optimize(ctx context.Context, in *qon.Instance) (*opt.Result, error) {
	if c.release != nil {
		select {
		case <-c.release:
		case <-ctx.Done():
		}
	}
	return &opt.Result{Sequence: c.res.Sequence, Cost: c.res.Cost, Exact: c.res.Exact}, nil
}

// On an equal-cost tie the exact result must win the merge even when a
// heuristic with the same plan arrives first — otherwise the report's
// winner claims a merely-certified cost for what is in fact the proven
// optimum, and downstream exactness checks flake on scheduling order.
func TestMergePrefersExactOnCostTie(t *testing.T) {
	in := randomInstance(7, 0.8, 11)
	optimum, err := opt.NewDP().Optimize(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	heuristic := cannedOptimizer{
		name: "tie-heuristic-stub",
		res:  &opt.Result{Sequence: optimum.Sequence, Cost: optimum.Cost, Exact: false},
	}
	exact := cannedOptimizer{
		name:    "tie-exact-stub",
		res:     &opt.Result{Sequence: optimum.Sequence, Cost: optimum.Cost, Exact: true},
		release: release,
	}
	// Release the exact stub only after a beat, so the heuristic's
	// arrival is (with overwhelming likelihood) merged first; the
	// assertion holds in either order, but this order exercises the
	// displacement path.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	report, err := New(WithoutEarlyExit()).Run(context.Background(), in, heuristic, exact)
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil {
		t.Fatal("no best result")
	}
	if !report.Best.Exact || report.Best.Winner != "tie-exact-stub" {
		t.Fatalf("tie went to %q (exact=%v); want the exact result to displace the tying heuristic",
			report.Best.Winner, report.Best.Exact)
	}
	if !report.Best.Cost.Equal(optimum.Cost) {
		t.Fatal("winner cost drifted from the computed optimum")
	}
}
