package engine

import (
	"context"
	"errors"
	"fmt"

	"approxqo/internal/certify"
	"approxqo/internal/opt"
	"approxqo/internal/qoh"
)

// QOHSearcher is one QO_H plan-search strategy the engine can
// supervise. Search must honour context cancellation like an
// opt.Optimizer: anytime strategies return their best feasible plan so
// far.
type QOHSearcher struct {
	Name   string
	Search func(ctx context.Context, in *qoh.Instance) (*qoh.Plan, error)
}

// QOHSearchers returns the standard QO_H ensemble: greedy, annealing,
// and — within its cap — exhaustive sequence enumeration. Options are
// forwarded to the opt searchers (WithSeed, WithIterations).
func QOHSearchers(opts ...opt.Option) []QOHSearcher {
	return []QOHSearcher{
		{Name: "qoh-greedy", Search: func(ctx context.Context, in *qoh.Instance) (*qoh.Plan, error) {
			return opt.QOHGreedy(ctx, in, opts...)
		}},
		{Name: "qoh-annealing", Search: func(ctx context.Context, in *qoh.Instance) (*qoh.Plan, error) {
			return opt.QOHAnnealing(ctx, in, opts...)
		}},
		{Name: "qoh-exhaustive", Search: func(ctx context.Context, in *qoh.Instance) (*qoh.Plan, error) {
			if in.N() > qoh.MaxExhaustiveN {
				return nil, fmt.Errorf("engine: QO_H exhaustive capped at n ≤ %d, got %d", qoh.MaxExhaustiveN, in.N())
			}
			return in.ExactBest()
		}},
	}
}

// RunQOH is Run for the QO_H plan search: it supervises the searchers
// concurrently over in with the same cancellation, deadline, panic
// isolation, certification, quarantine, retry, grace and merge
// semantics, and the same per-run instrumentation (QO_H counts a cost
// evaluation per candidate sequence costed end to end and a DP subset
// per pipeline interval). The exhaustive searcher's winning plan is
// marked exact, triggering early exit like an exact QO_N result.
func (e *Engine) RunQOH(ctx context.Context, in *qoh.Instance, searchers ...QOHSearcher) (*Report, error) {
	if in == nil {
		return nil, ErrNilInstance
	}
	if len(searchers) == 0 {
		return nil, fmt.Errorf("%w (QO_H searchers)", ErrNoOptimizers)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: context done before any run started: %w", err)
	}
	st := getRunState(len(searchers))
	for i, s := range searchers {
		s := s
		sink := &st.sinks[i]
		instrumented := in.WithStats(sink)
		exact := s.Name == "qoh-exhaustive"
		j := st.jobs[i]
		j.name = s.Name
		j.sink = sink
		j.run = func(ctx context.Context) (*jobResult, error) {
			p, err := s.Search(ctx, instrumented)
			if err != nil || p == nil {
				if err == nil {
					err = errors.New("searcher returned no plan")
				}
				return nil, err
			}
			return &jobResult{seq: p.Z, breaks: p.Breaks, cost: p.Cost, exact: exact}, nil
		}
		j.audit = func(r *jobResult) error {
			_, err := certify.QOH(in, r.seq, r.breaks, r.cost, r.exact)
			return err
		}
	}
	report, best := e.supervise(ctx, "qoh", st)
	report.Model = "qoh"
	report.N = in.N()
	report.Best = best
	if best == nil {
		return report, fmt.Errorf("%w: %s", ErrAllFailed, firstFailure(report.Runs))
	}
	return report, nil
}
