package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/engine"
	"approxqo/internal/trace"
)

// A repeated identical request must be served from the cache: marked
// cached, full rung, not degraded, with the exact same certified cost,
// and counted as one miss plus one hit.
func TestCacheHitServesCertifiedResult(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, QueueDepth: 4, Metrics: reg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"workload":{"shape":"chain","n":7,"seed":11}}`
	resp, data := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp.StatusCode, data)
	}
	first := decodeResult(t, data)
	if first.Cached {
		t.Fatal("first request cannot be a cache hit")
	}
	if first.Report.Best == nil || !first.Report.Best.Certified {
		t.Fatalf("first request not certified: %s", data)
	}

	resp, data = postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp.StatusCode, data)
	}
	second := decodeResult(t, data)
	if !second.Cached {
		t.Fatalf("identical request not served from cache: %s", data)
	}
	if second.Degraded || second.Rung != "full" {
		t.Fatalf("cache hit served rung %q degraded=%v", second.Rung, second.Degraded)
	}
	if !second.Report.Best.Cost.Equal(first.Report.Best.Cost) {
		t.Fatalf("cached cost %v differs from computed %v", second.Report.Best.Cost, first.Report.Best.Cost)
	}
	if h, m := reg.Counter(MetricCacheHits).Value(), reg.Counter(MetricCacheMisses).Value(); h != 1 || m != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", h, m)
	}

	// A different instance (new seed) must miss.
	resp, data = postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":7,"seed":12}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("third request: %d %s", resp.StatusCode, data)
	}
	if third := decodeResult(t, data); third.Cached {
		t.Fatal("distinct instance served from cache")
	}
}

// timeout_ms must not split the cache key: a certified result is valid
// for any later budget.
func TestCacheKeyIgnoresTimeout(t *testing.T) {
	a, err := DecodeRequest([]byte(`{"workload":{"shape":"star","n":6,"seed":3},"timeout_ms":100}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeRequest([]byte(`{"workload":{"shape":"star","n":6,"seed":3},"timeout_ms":9000}`))
	if err != nil {
		t.Fatal(err)
	}
	if cacheKey(a) == "" || cacheKey(a) != cacheKey(b) {
		t.Fatalf("keys differ across budgets: %q vs %q", cacheKey(a), cacheKey(b))
	}
	c, err := DecodeRequest([]byte(`{"workload":{"shape":"star","n":6,"seed":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cacheKey(a) == cacheKey(c) {
		t.Fatal("distinct instances share a cache key")
	}
}

// CacheSize < 0 disables caching entirely; chaos injection bypasses an
// enabled cache — fault behaviour must stay per-request.
func TestCacheDisabledAndChaosBypass(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, CacheSize: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if s.cache != nil {
		t.Fatal("CacheSize < 0 left the cache enabled")
	}
	ts := httptest.NewServer(s.Handler())
	body := `{"workload":{"shape":"chain","n":6,"seed":1}}`
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, data)
		}
		if decodeResult(t, data).Cached {
			t.Fatal("disabled cache served a hit")
		}
	}
	ts.Close()
	if h, m := reg.Counter(MetricCacheHits).Value(), reg.Counter(MetricCacheMisses).Value(); h != 0 || m != 0 {
		t.Fatalf("disabled cache touched metrics: hits=%d misses=%d", h, m)
	}

	reg = trace.NewRegistry()
	s, err = New(Config{
		MaxConcurrent: 2, Metrics: reg,
		ChaosSpec:    "stall:kbz",
		ChaosOptions: []chaos.Option{chaos.WithStall(time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts = httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chaos request %d: %d %s", i, resp.StatusCode, data)
		}
		if decodeResult(t, data).Cached {
			t.Fatal("chaos-mode request served from cache")
		}
	}
	if h, m := reg.Counter(MetricCacheHits).Value(), reg.Counter(MetricCacheMisses).Value(); h != 0 || m != 0 {
		t.Fatalf("chaos bypass touched cache metrics: hits=%d misses=%d", h, m)
	}
}

// LRU behaviour of the raw cache: capacity bound, eviction order,
// refresh on get.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	rep := func(n int) *engine.Report { return &engine.Report{N: n} }
	c.put("a", "raw-a", rep(1))
	c.put("b", "raw-b", rep(2))
	if _, _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a evicted below capacity")
	}
	c.put("c", "raw-c", rep(3))
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.len())
	}
	if _, _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("refreshed entry a was evicted")
	}
	if got, raw, ok := c.get("c"); !ok || got.N != 3 || raw != "raw-c" {
		t.Fatalf("c lookup = %+v, %q, %v", got, raw, ok)
	}
	c.put("c", "raw-c2", rep(30)) // overwrite in place
	if got, raw, _ := c.get("c"); got.N != 30 || raw != "raw-c2" {
		t.Fatalf("overwrite kept stale report N=%d rawKey=%q", got.N, raw)
	}
}

// Exactly one concurrent joiner per key leads; everyone else unblocks
// when the leader leaves.
func TestFlightGroupSingleLeader(t *testing.T) {
	g := newFlightGroup()
	const workers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	leaders := 0
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			call, leader := g.join("k")
			if leader {
				mu.Lock()
				leaders++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				g.leave("k", call)
				return
			}
			<-call.done
		}()
	}
	wg.Wait()
	if leaders == 0 {
		t.Fatal("no leader elected")
	}
	// Distinct keys never share a flight.
	c1, l1 := g.join("x")
	_, l2 := g.join("y")
	if !l1 || !l2 {
		t.Fatal("distinct keys shared a flight")
	}
	g.leave("x", c1)
}

// Concurrency smoke under -race: identical requests hammered in
// parallel are each answered 200, every one accounted as exactly one
// cache hit or miss, and at most a handful of misses (duplicates are
// suppressed or served from cache — never lost).
func TestCacheConcurrentIdenticalRequests(t *testing.T) {
	reg := trace.NewRegistry()
	// DegradeAt above the client count keeps every request at the full
	// rung, so whichever request leads the flight stores its result.
	s, err := New(Config{MaxConcurrent: 4, QueueDepth: 64, DegradeAt: 64, Metrics: reg, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 12
	body := `{"workload":{"shape":"star","n":7,"seed":21},"timeout_ms":20000}`
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	h := reg.Counter(MetricCacheHits).Value()
	m := reg.Counter(MetricCacheMisses).Value()
	if h+m != clients {
		t.Fatalf("hits+misses = %d+%d, want %d (every request exactly one lookup outcome)", h, m, clients)
	}
	if m < 1 || h < 1 {
		t.Fatalf("hits/misses = %d/%d: want at least one of each", h, m)
	}
}
