package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/engine"
	"approxqo/internal/trace"
)

// A routed request must come back with the router's decision attached
// and the pruned optimizers accounted for in Report.Skipped with
// structured reasons — the "which subset ran and why" contract.
func TestRoutedRequestRecordsDecisionAndSkips(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{Route: true, Metrics: reg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"job":{"workload":{"shape":"chain-selective","n":12,"seed":4},"timeout_ms":20000}}`
	resp, data := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed request: %d %s", resp.StatusCode, data)
	}
	res := decodeResult(t, data)
	r := res.Routing
	if r == nil {
		t.Fatalf("routed result carries no routing decision: %s", data)
	}
	if string(r.Class) != "chain-selective" || !r.Recognized {
		t.Errorf("decision %+v, want recognized chain-selective", r)
	}
	if res.Report.Best == nil || !res.Report.Best.Certified {
		t.Fatal("routed result not certified")
	}
	if len(res.Report.Skipped) == 0 {
		t.Fatal("recognized family ran the full ensemble; expected skipped optimizers")
	}
	skippedNames := map[string]string{}
	for _, sk := range res.Report.Skipped {
		if sk.Reason != engine.SkipRouting && sk.Reason != engine.SkipOutOfRange {
			t.Errorf("unexpected skip reason %q for %s", sk.Reason, sk.Name)
		}
		skippedNames[sk.Name] = sk.Reason
	}
	if skippedNames["subset-dp"] != engine.SkipRouting {
		t.Errorf("subset-dp skip = %q, want %q (skipped: %v)", skippedNames["subset-dp"], engine.SkipRouting, skippedNames)
	}
	for _, run := range res.Report.Runs {
		if _, dup := skippedNames[run.Name]; dup {
			t.Errorf("%s both ran and was recorded skipped", run.Name)
		}
	}
	if v := reg.Counter(MetricRouted).Value(); v != 1 {
		t.Errorf("%s = %d, want 1", MetricRouted, v)
	}
	if v := reg.Counter(MetricRouteSkips).Value(); v == 0 {
		t.Errorf("%s = 0, want the pruned optimizers counted", MetricRouteSkips)
	}

	// A reduced (greedy-only, non-exact) routed result must never enter
	// the certified-result cache: the identical request runs fresh.
	resp, data = postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second routed request: %d %s", resp.StatusCode, data)
	}
	if decodeResult(t, data).Cached {
		t.Fatal("reduced routed result was served from the cache")
	}

	// The job-level override wins over the server default: route:false
	// forces the historical full ensemble, no decision attached.
	full := `{"job":{"workload":{"shape":"chain-selective","n":12,"seed":4},"timeout_ms":20000,"route":false}}`
	resp, data = postJSON(t, ts.URL, full)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route:false request: %d %s", resp.StatusCode, data)
	}
	res = decodeResult(t, data)
	if res.Routing != nil {
		t.Errorf("route:false result still carries a decision: %+v", res.Routing)
	}
	if len(res.Report.Skipped) != 0 {
		t.Errorf("full ensemble reports skipped optimizers: %+v", res.Report.Skipped)
	}
}

// An adversarial (statistics-free) instance routed on a degraded rung
// must still be served by the certified exact tier: degradation sheds
// the heuristics the classifier ranks least valuable, never the exact
// tier the hardness family requires. A stalled request on a one-worker
// server degrades the next admission, as in TestDegradedUnderLoad.
func TestRoutedAdversarialSurvivesDegradedRung(t *testing.T) {
	s, err := New(Config{
		Route: true, Seed: 3,
		MaxConcurrent: 1, QueueDepth: 4, DegradeAt: 1,
		ChaosSpec:    "stall:kbz",
		ChaosOptions: []chaos.Option{chaos.WithStall(300 * time.Millisecond)},
		EngineGrace:  30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":6},"timeout_ms":5000}`)
		first <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.InFlight() >= 1 })

	body := `{"job":{"workload":{"shape":"cliquered-yes","n":10,"seed":0},"timeout_ms":20000}}`
	resp, data := postJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded adversarial request: %d %s", resp.StatusCode, data)
	}
	res := decodeResult(t, data)
	if !res.Degraded {
		t.Skip("second request was not admitted on the degraded rung")
	}
	if res.Routing == nil || string(res.Routing.Class) != "adversarial" {
		t.Fatalf("routing decision %+v, want adversarial", res.Routing)
	}
	if len(res.Routing.Degraded) == 0 {
		t.Error("degraded routed decision records no shed tier")
	}
	if res.Report.Best == nil || !res.Report.Best.Exact || !res.Report.Best.Certified {
		t.Fatalf("degraded adversarial result not certified exact: %s", data)
	}
	if <-first != http.StatusOK {
		t.Fatal("stalled first request failed")
	}
}
