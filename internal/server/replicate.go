package server

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"approxqo/internal/cluster/replica"
)

// Cache replication endpoints and the write fan-out. The worker is the
// owning end of the cluster's replicated certified-result cache: when
// the coordinator's X-Replicate-To header names ring successors, every
// cache store fans the entry out to them asynchronously (off the
// request path, bounded concurrency, best effort — anti-entropy repairs
// what a partition drops). The /cache/* endpoints are the receiving
// half plus the introspection surface handoff and anti-entropy pull
// from:
//
//	POST /cache/offer  — accept entries, re-validated at the trust
//	                     boundary exactly like coordinator-side worker
//	                     200s (certified, cost present, permutation-valid)
//	POST /cache/digest — per-range key digests (anti-entropy compare)
//	POST /cache/keys   — keys on given ring ranges (handoff/repair diff)
//	POST /cache/export — full entries by key (handoff/repair source)
//
// The whole surface is authenticated: every /cache/* request must carry
// the cluster's shared secret (replica.AuthHeader), and the fan-out
// hint is honored only on requests that do. A worker with no configured
// secret keeps the surface closed.

// ReplicateToHeader carries the comma-separated worker base URLs that
// should receive a copy of any certified result this request stores —
// set by the cluster coordinator, which knows the ring and proves
// itself with the cluster secret; the header is ignored on requests
// that don't. The server itself never derives peers: an empty header
// means no fan-out.
const ReplicateToHeader = "X-Replicate-To"

// maxReplicaPeers caps how many peers one request may name: a hostile
// header must not turn one store into an amplification attack.
const maxReplicaPeers = 4

// Replication metric names. Offers partition into accepted/rejected at
// the trust boundary; sent/errors/dropped account the async fan-out
// (dropped = the bounded worker pool was saturated, the entry is left
// to anti-entropy).
const (
	MetricCacheOffers        = "server.cache.offers"         // counter: POST /cache/offer bodies decoded
	MetricCacheOfferAccepted = "server.cache.offer.accepted" // counter: entries stored
	MetricCacheOfferRejected = "server.cache.offer.rejected" // counter: entries refused validation
	MetricCacheExported      = "server.cache.exported"       // counter: entries served to /cache/export
	MetricReplicateSent      = "server.replicate.sent"       // counter: fan-out offers delivered
	MetricReplicateErrors    = "server.replicate.errors"     // counter: fan-out offers that failed
	MetricReplicateDropped   = "server.replicate.dropped"    // counter: fan-outs dropped, pool saturated
)

// replicateWorkers bounds concurrent fan-out goroutines; fan-out past
// it is dropped (and counted), never queued unboundedly.
const replicateWorkers = 4

// DefaultReplicaTimeout bounds one fan-out offer POST.
const DefaultReplicaTimeout = 2 * time.Second

// peerAuthed reports whether the request proved cluster membership: it
// carries the configured shared secret in replica.AuthHeader. With no
// secret configured nothing authenticates — the replication surface is
// closed, not open.
func (s *Server) peerAuthed(r *http.Request) bool {
	secret := s.cfg.ClusterSecret
	if secret == "" {
		return false
	}
	got := r.Header.Get(replica.AuthHeader)
	return subtle.ConstantTimeCompare([]byte(got), []byte(secret)) == 1
}

// parseReplicaTo splits the X-Replicate-To header into peer base URLs,
// dropping empties and capping the count.
func parseReplicaTo(hdr string) []string {
	if hdr == "" {
		return nil
	}
	var peers []string
	for _, p := range strings.Split(hdr, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
		if len(peers) == maxReplicaPeers {
			break
		}
	}
	return peers
}

// replicate fans one stored entry out to the named peers on a bounded
// worker pool. It never blocks the request path: when every pool slot
// is busy the fan-out is dropped and counted, and the copy waits for
// anti-entropy. The entry's report is the cache's immutable canonical
// copy, safe to marshal concurrently.
func (s *Server) replicate(peers []string, ent *replica.Entry) {
	if len(peers) == 0 || s.replicaSem == nil {
		return
	}
	select {
	case s.replicaSem <- struct{}{}:
	default:
		s.cfg.Metrics.Counter(MetricReplicateDropped).Inc()
		return
	}
	go func() {
		defer func() { <-s.replicaSem }()
		body, err := json.Marshal(&replica.OfferRequest{Entries: []*replica.Entry{ent}})
		if err != nil {
			s.cfg.Metrics.Counter(MetricReplicateErrors).Inc()
			return
		}
		for _, peer := range peers {
			if s.offerPeer(peer, body) {
				s.cfg.Metrics.Counter(MetricReplicateSent).Inc()
			} else {
				s.cfg.Metrics.Counter(MetricReplicateErrors).Inc()
			}
		}
	}()
}

// offerPeer POSTs one offer body to a peer's /cache/offer.
func (s *Server) offerPeer(peer string, body []byte) bool {
	ctx, cancel := context.WithTimeout(context.Background(), s.replicaTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/cache/offer", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(replica.AuthHeader, s.cfg.ClusterSecret)
	resp, err := s.replicaClient.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (s *Server) replicaTimeout() time.Duration {
	if s.cfg.ReplicaTimeout > 0 {
		return s.cfg.ReplicaTimeout
	}
	return DefaultReplicaTimeout
}

// cacheEndpointGate applies the shared preconditions of every /cache/*
// endpoint: POST only, caching enabled, authenticated peer, body within
// bounds. It returns the body and true, or writes the error and
// returns false.
func (s *Server) cacheEndpointGate(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusMethodNotAllowed, "method_not_allowed",
			"use POST with a JSON request body", 0)
		return nil, false
	}
	if s.cache == nil {
		writeErrorDocID(w, requestID(r), http.StatusServiceUnavailable, "cache_disabled",
			"certified-result cache is disabled on this worker", 0)
		return nil, false
	}
	if !s.peerAuthed(r) {
		// The replication surface writes into (and enumerates) the
		// certified-result cache; only cluster members may touch it.
		writeErrorDocID(w, requestID(r), http.StatusForbidden, "unauthorized",
			"cache replication requires the cluster secret", 0)
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusRequestEntityTooLarge, "too_large",
			"request body exceeds the configured bound", 0)
		return nil, false
	}
	return body, true
}

// handleCacheOffer is POST /cache/offer: decode, re-validate each
// entry at the trust boundary, store the survivors. Per-entry
// rejection (not body-level) so one corrupted entry cannot void a
// handoff chunk.
func (s *Server) handleCacheOffer(w http.ResponseWriter, r *http.Request) {
	body, ok := s.cacheEndpointGate(w, r)
	if !ok {
		return
	}
	off, err := replica.DecodeOffer(body, replica.DefaultMaxOfferEntries)
	if err != nil {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	s.cfg.Metrics.Counter(MetricCacheOffers).Inc()
	var resp replica.OfferResponse
	for _, ent := range off.Entries {
		if ent.Validate() != nil {
			resp.Rejected++
			continue
		}
		s.cache.put(ent.Key, ent.RawKey, ent.Report)
		resp.Accepted++
	}
	s.cfg.Metrics.Counter(MetricCacheOfferAccepted).Add(int64(resp.Accepted))
	s.cfg.Metrics.Counter(MetricCacheOfferRejected).Add(int64(resp.Rejected))
	writeJSON(w, http.StatusOK, &resp)
}

// handleCacheDigest is POST /cache/digest: per-range digests of the
// cache's current key set, one per requested range in order.
func (s *Server) handleCacheDigest(w http.ResponseWriter, r *http.Request) {
	body, ok := s.cacheEndpointGate(w, r)
	if !ok {
		return
	}
	var dreq replica.DigestRequest
	if err := json.Unmarshal(body, &dreq); err != nil {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	if len(dreq.Ranges) == 0 || len(dreq.Ranges) > replica.MaxDigestRanges {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusBadRequest, "bad_request",
			"digest request needs 1..4096 ranges", 0)
		return
	}
	writeJSON(w, http.StatusOK, &replica.DigestResponse{
		Digests: replica.DigestRanges(s.cache.keys(), dreq.Ranges),
	})
}

// handleCacheKeys is POST /cache/keys: the cache keys falling on the
// given ring ranges, up to the requested limit.
func (s *Server) handleCacheKeys(w http.ResponseWriter, r *http.Request) {
	body, ok := s.cacheEndpointGate(w, r)
	if !ok {
		return
	}
	var kreq replica.KeysRequest
	if err := json.Unmarshal(body, &kreq); err != nil {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	if len(kreq.Ranges) == 0 || len(kreq.Ranges) > replica.MaxDigestRanges {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusBadRequest, "bad_request",
			"keys request needs 1..4096 ranges", 0)
		return
	}
	limit := kreq.Limit
	if limit <= 0 || limit > replica.DefaultMaxOfferEntries {
		limit = replica.DefaultMaxOfferEntries
	}
	var out replica.KeysResponse
	for _, k := range s.cache.keys() {
		h := replica.KeyHash(k)
		for _, rg := range kreq.Ranges {
			if rg.Contains(h) {
				out.Keys = append(out.Keys, k)
				break
			}
		}
		if len(out.Keys) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, &out)
}

// handleCacheExport is POST /cache/export: full entries by key for
// handoff and read repair. Absent keys are omitted, not errors.
func (s *Server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	body, ok := s.cacheEndpointGate(w, r)
	if !ok {
		return
	}
	var ereq replica.ExportRequest
	if err := json.Unmarshal(body, &ereq); err != nil {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	if len(ereq.Keys) == 0 || len(ereq.Keys) > replica.DefaultMaxOfferEntries {
		s.cfg.Metrics.Counter(MetricBadRequest).Inc()
		writeErrorDocID(w, requestID(r), http.StatusBadRequest, "bad_request",
			"export request needs 1..256 keys", 0)
		return
	}
	entries := s.cache.export(ereq.Keys)
	s.cfg.Metrics.Counter(MetricCacheExported).Add(int64(len(entries)))
	writeJSON(w, http.StatusOK, &replica.ExportResponse{Entries: entries})
}
