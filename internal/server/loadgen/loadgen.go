// Package loadgen is a seeded, well-behaved client for the
// optimization daemon: it retries backpressure responses (429/503) and
// transient gateway failures (502/504, which a cluster coordinator
// emits when its upstream attempts are exhausted) with capped
// exponential backoff plus jitter, honouring the server's
// retry_after_ms hint as a floor — in single and batch mode alike. The
// soak tests drive fleets of these against an in-process server; qod
// operators can use it as a reference client. Every request carries a
// generated X-Request-ID, echoed by servers and coordinators into
// error documents and spans, so one failure is traceable end to end.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"approxqo/internal/server"
)

// Client issues optimization requests against one server. A Client is
// deterministic given its seed but NOT safe for concurrent use (each
// goroutine of a fleet gets its own — see New's seed parameter).
type Client struct {
	// Base is the server's base URL (httptest.Server.URL, or
	// http://host:port for a real qod).
	Base string
	// HTTP is the transport; http.DefaultClient when nil.
	HTTP *http.Client
	// Retries is the maximum number of retry attempts after the first
	// try (default 8). Retried statuses: 429 and 503 (backpressure) plus
	// 502 and 504 (a coordinator's upstream-exhausted and
	// deadline-on-the-hop documents) — all four promise the condition is
	// transient. Other statuses are terminal.
	Retries int
	// BaseBackoff and MaxBackoff shape the exponential backoff (defaults
	// 10ms and 1s). The sleep before retry k is
	// jitter(min(BaseBackoff·2^k, MaxBackoff)), with jitter drawing
	// uniformly from [d/2, d) so a synchronized fleet decorrelates, and
	// the server's retry_after_ms taken as a floor when present.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	rng    *rand.Rand
	ridTag string
	ridSeq int64
}

// New builds a client for the server at base with a seeded jitter
// source and a seed-derived request-ID tag.
func New(base string, seed int64) *Client {
	return &Client{
		Base:   base,
		rng:    rand.New(rand.NewSource(seed)),
		ridTag: fmt.Sprintf("lg-%08x", uint64(seed)*0x9e3779b97f4a7c15>>32&0xffffffff),
	}
}

// nextRequestID mints the X-Request-ID for one logical request. All
// attempts of one retried request share the ID — that is what makes the
// retry chain traceable in server spans and error documents.
func (c *Client) nextRequestID() string {
	if c.ridTag == "" { // zero-value Client (no New): stay headerless
		return ""
	}
	c.ridSeq++
	return fmt.Sprintf("%s-%x", c.ridTag, c.ridSeq)
}

// Outcome is the terminal result of one Optimize call: the last
// response received, plus the retry account.
type Outcome struct {
	// Status is the final HTTP status.
	Status int
	// Attempts counts tries including the first; Backoffs how many
	// 429/503 responses were absorbed along the way.
	Attempts int
	Backoffs int
	// Result is set on 200; ErrDoc on any structured error response.
	Result *server.Result
	ErrDoc *server.ErrorDoc
	// RequestID is the X-Request-ID the client attached (empty for a
	// zero-value Client).
	RequestID string
}

// OK reports whether the final response was a 200.
func (o *Outcome) OK() bool { return o.Status == http.StatusOK }

// Optimize POSTs req to /optimize, retrying backpressure with
// exponential backoff + jitter until a terminal response, exhausted
// retries (the last 429/503 outcome is returned, error nil) or context
// expiry. A non-nil error means transport-level failure only — every
// HTTP response, error documents included, is a successful Outcome.
func (c *Client) Optimize(ctx context.Context, req *server.Request) (*Outcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	w, err := c.do(ctx, "/optimize", body)
	if w == nil {
		return nil, err
	}
	out := &Outcome{Status: w.status, Attempts: w.attempts, Backoffs: w.backoffs, ErrDoc: w.doc, RequestID: w.rid}
	if err != nil {
		return out, err
	}
	if w.status == http.StatusOK {
		var res server.Result
		if err := json.Unmarshal(w.data, &res); err != nil {
			return nil, fmt.Errorf("loadgen: undecodable 200 body: %w", err)
		}
		out.Result = &res
	}
	return out, nil
}

// wire is the transport-level outcome of one retried POST: the final
// status, body and decoded error document, plus the retry account.
type wire struct {
	status   int
	attempts int
	backoffs int
	data     []byte
	doc      *server.ErrorDoc
	rid      string
}

// do POSTs body to path with the client's backpressure retry policy.
// Transport failures return (nil, err); a backoff sleep cut short by
// ctx returns the partial wire state alongside the error; every HTTP
// response — error documents included — is a nil-error wire.
func (c *Client) do(ctx context.Context, path string, body []byte) (*wire, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 8
	}
	w := &wire{rid: c.nextRequestID()}
	for attempt := 0; ; attempt++ {
		w.attempts++
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		if w.rid != "" {
			hreq.Header.Set(server.RequestIDHeader, w.rid)
		}
		resp, err := hc.Do(hreq)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		w.status = resp.StatusCode
		w.data, w.doc = data, nil
		if resp.StatusCode == http.StatusOK {
			return w, nil
		}
		var doc server.ErrorDoc
		if err := json.Unmarshal(data, &doc); err != nil || doc.Error.Kind == "" {
			return nil, fmt.Errorf("loadgen: status %d with unstructured body %q", resp.StatusCode, data)
		}
		w.doc = &doc
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusBadGateway ||
			resp.StatusCode == http.StatusGatewayTimeout
		if !retryable || attempt >= retries {
			return w, nil
		}
		w.backoffs++
		if err := c.sleep(ctx, c.backoff(attempt, &doc)); err != nil {
			return w, err
		}
	}
}

// backoff computes the sleep before retry attempt (0-based): capped
// exponential with jitter, floored at the server's hint.
func (c *Client) backoff(attempt int, doc *server.ErrorDoc) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := c.MaxBackoff
	if max <= 0 {
		max = time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max { // <<= overflow guards too
		d = max
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	if hint := time.Duration(doc.Error.RetryAfterMS) * time.Millisecond; d < hint {
		d = hint
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
