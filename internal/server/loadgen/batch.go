package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"

	"approxqo/internal/qon"
	"approxqo/internal/server"
	"approxqo/internal/workload"
)

// BatchOutcome is the terminal result of one OptimizeBatch call.
// Batch-level rejections (the whole request turned away at admission)
// surface as ErrDoc; per-job failures live inside Response, which is a
// 200 even when some jobs carry error documents.
type BatchOutcome struct {
	Status   int
	Attempts int
	Backoffs int
	Response *server.BatchResponse
	ErrDoc   *server.ErrorDoc
	// RequestID is the X-Request-ID the client attached (empty for a
	// zero-value Client).
	RequestID string
}

// OK reports whether the final response was a 200. Inspect the per-job
// Response.Results for job-level errors.
func (o *BatchOutcome) OK() bool { return o.Status == http.StatusOK }

// OptimizeBatch POSTs req to /optimize/batch with the same retry
// policy as Optimize: batch-level 429/503/502/504 documents are
// retried with capped exponential backoff + jitter, floored at the
// document's retry_after_ms hint; everything else is terminal.
func (c *Client) OptimizeBatch(ctx context.Context, req *server.BatchRequest) (*BatchOutcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	w, err := c.do(ctx, "/optimize/batch", body)
	if w == nil {
		return nil, err
	}
	out := &BatchOutcome{Status: w.status, Attempts: w.attempts, Backoffs: w.backoffs, ErrDoc: w.doc, RequestID: w.rid}
	if err != nil {
		return out, err
	}
	if w.status == http.StatusOK {
		var br server.BatchResponse
		if err := json.Unmarshal(w.data, &br); err != nil {
			return nil, fmt.Errorf("loadgen: undecodable 200 batch body: %w", err)
		}
		out.Response = &br
	}
	return out, nil
}

// PlantedBatch builds a seeded batch of n jobs for dedup soaking: a mix
// of distinct workload instances where most are planted again as
// relabeled duplicates (fresh random permutation per copy), then the
// whole batch is shuffled so duplicates are not adjacent. It returns
// the jobs and the number of distinct instances planted — the exact
// shape count the server must report for the batch when canonical
// dedup works (distinct instances cannot collide, duplicates must).
func PlantedBatch(seed int64, n int) ([]*server.Job, int, error) {
	rng := rand.New(rand.NewSource(seed))
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Cycle}
	var jobs []*server.Job
	distinct := 0
	for len(jobs) < n {
		size := 5 + rng.Intn(3)
		base, err := workload.Generate(workload.Params{
			N:     size,
			Shape: shapes[distinct%len(shapes)],
			Seed:  rng.Int63(),
		})
		if err != nil {
			return nil, 0, fmt.Errorf("loadgen: generating planted instance: %w", err)
		}
		distinct++
		jobs = append(jobs, &server.Job{Instance: base, TimeoutMS: 20_000})
		for copies := rng.Intn(3); copies > 0 && len(jobs) < n; copies-- {
			jobs = append(jobs, &server.Job{
				Instance:  qon.Relabel(base, rng.Perm(size)),
				TimeoutMS: 20_000,
			})
		}
	}
	rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	return jobs, distinct, nil
}
