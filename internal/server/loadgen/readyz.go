package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ReadyState is the decoded /readyz of a worker or coordinator: the
// common readiness fields both shapes share, plus the raw document for
// callers that want the rest (engine health, per-worker states). The
// replica_warm field is coordinator-only; workers leave it false.
type ReadyState struct {
	Status      int             `json:"-"`
	Ready       bool            `json:"ready"`
	Draining    bool            `json:"draining"`
	ReplicaWarm bool            `json:"replica_warm"`
	Raw         json.RawMessage `json:"-"`
}

// Readyz GETs the target's /readyz once — no retries: readiness is a
// point-in-time question, and soaks poll it themselves. A non-200 with
// a decodable body is still a successful ReadyState (a draining
// coordinator answers 503 with the same document).
func (c *Client) Readyz(ctx context.Context) (*ReadyState, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("loadgen: reading /readyz body: %w", err)
	}
	st := &ReadyState{Status: resp.StatusCode, Raw: data}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("loadgen: undecodable /readyz body %q: %w", data, err)
	}
	return st, nil
}
