package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"approxqo/internal/server"
)

func TestBackoffBoundsAndGrowth(t *testing.T) {
	c := New("http://unused", 1)
	c.BaseBackoff = 10 * time.Millisecond
	c.MaxBackoff = 200 * time.Millisecond
	doc := &server.ErrorDoc{}
	for attempt := 0; attempt < 12; attempt++ {
		want := c.BaseBackoff << uint(attempt)
		if want <= 0 || want > c.MaxBackoff {
			want = c.MaxBackoff
		}
		d := c.backoff(attempt, doc)
		if d < want/2 || d > want {
			t.Fatalf("attempt %d: backoff %v outside jitter window [%v, %v]", attempt, d, want/2, want)
		}
	}
}

func TestBackoffHonorsRetryAfterHint(t *testing.T) {
	c := New("http://unused", 1)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	var doc server.ErrorDoc
	doc.Error.RetryAfterMS = 500
	if d := c.backoff(0, &doc); d < 500*time.Millisecond {
		t.Fatalf("backoff %v ignores the server's 500ms retry hint", d)
	}
}

func TestOptimizeRetriesBackpressureThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"kind":"overloaded","message":"queue full","retry_after_ms":1}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"model":"qon","n":3,"rung":"full","degraded":false,` +
			`"report":{"model":"qon","n":3,"runs":[]}}`))
	}))
	defer ts.Close()

	c := New(ts.URL, 7)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	out, err := c.Optimize(context.Background(), &server.Request{
		Workload: &server.WorkloadSpec{Shape: "chain", N: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() || out.Attempts != 3 || out.Backoffs != 2 {
		t.Fatalf("outcome %+v, want 200 after 3 attempts / 2 backoffs", out)
	}
	if out.Result == nil || out.Result.Model != "qon" {
		t.Fatalf("result not decoded: %+v", out.Result)
	}
}

func TestOptimizeDoesNotRetryTerminalErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"kind":"bad_request","message":"nope"}}`))
	}))
	defer ts.Close()

	c := New(ts.URL, 7)
	out, err := c.Optimize(context.Background(), &server.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusBadRequest || out.Attempts != 1 || out.Backoffs != 0 {
		t.Fatalf("outcome %+v, want a single non-retried 400", out)
	}
	if out.ErrDoc == nil || out.ErrDoc.Error.Kind != "bad_request" {
		t.Fatalf("error document not decoded: %+v", out.ErrDoc)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hit %d times, want 1", hits.Load())
	}
}

func TestOptimizeRejectsUnstructuredErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "oops", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL, 7)
	if _, err := c.Optimize(context.Background(), &server.Request{}); err == nil {
		t.Fatal("unstructured 503 body must surface as an error")
	}
}

func TestOptimizeExhaustsRetriesAndReturnsLastOutcome(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"kind":"draining","message":"bye"}}`))
	}))
	defer ts.Close()

	c := New(ts.URL, 7)
	c.Retries = 2
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	out, err := c.Optimize(context.Background(), &server.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusServiceUnavailable || out.Attempts != 3 || out.Backoffs != 2 {
		t.Fatalf("outcome %+v, want 503 after 3 attempts / 2 backoffs", out)
	}
	if out.ErrDoc == nil || out.ErrDoc.Error.Kind != "draining" {
		t.Fatalf("last error document not kept: %+v", out.ErrDoc)
	}
}

func TestOptimizeBatchRetriesBackpressureThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/optimize/batch" {
			t.Errorf("batch client hit %q", r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"kind":"shed","message":"later","retry_after_ms":1}}`))
			return
		}
		w.Write([]byte(`{"jobs":2,"shapes":1,"results":[` +
			`{"index":0,"result":{"model":"qon","n":3,"rung":"full"}},` +
			`{"index":1,"error":{"kind":"bad_request","message":"nope"}}]}`))
	}))
	defer ts.Close()

	c := New(ts.URL, 11)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	out, err := c.OptimizeBatch(context.Background(), &server.BatchRequest{
		Jobs: []*server.Job{{Workload: &server.WorkloadSpec{Shape: "chain", N: 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() || out.Attempts != 2 || out.Backoffs != 1 {
		t.Fatalf("outcome %+v, want 200 after 2 attempts / 1 backoff", out)
	}
	br := out.Response
	if br == nil || br.Jobs != 2 || br.Shapes != 1 || len(br.Results) != 2 {
		t.Fatalf("batch response not decoded: %+v", br)
	}
	if br.Results[0].Result == nil || br.Results[1].Error == nil {
		t.Fatalf("per-job outcomes lost in decoding: %+v", br.Results)
	}
}

func TestPlantedBatchIsSeededAndPlantsDuplicates(t *testing.T) {
	jobs, distinct, err := PlantedBatch(3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 24 {
		t.Fatalf("got %d jobs, want 24", len(jobs))
	}
	if distinct <= 0 || distinct >= len(jobs) {
		t.Fatalf("distinct = %d of %d jobs: want some planted duplicates", distinct, len(jobs))
	}
	for i, j := range jobs {
		if j.Instance == nil {
			t.Fatalf("job %d has no inline instance", i)
		}
	}
	again, distinct2, err := PlantedBatch(3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if distinct2 != distinct {
		t.Fatalf("same seed planted %d then %d distinct instances", distinct, distinct2)
	}
	a, _ := json.Marshal(jobs)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatal("same seed produced different batches")
	}
	other, _, err := PlantedBatch(4, 24)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := json.Marshal(other)
	if string(a) == string(o) {
		t.Fatal("different seeds produced identical batches")
	}
}
