package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"approxqo/internal/server"
)

func TestBackoffBoundsAndGrowth(t *testing.T) {
	c := New("http://unused", 1)
	c.BaseBackoff = 10 * time.Millisecond
	c.MaxBackoff = 200 * time.Millisecond
	doc := &server.ErrorDoc{}
	for attempt := 0; attempt < 12; attempt++ {
		want := c.BaseBackoff << uint(attempt)
		if want <= 0 || want > c.MaxBackoff {
			want = c.MaxBackoff
		}
		d := c.backoff(attempt, doc)
		if d < want/2 || d > want {
			t.Fatalf("attempt %d: backoff %v outside jitter window [%v, %v]", attempt, d, want/2, want)
		}
	}
}

func TestBackoffHonorsRetryAfterHint(t *testing.T) {
	c := New("http://unused", 1)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	var doc server.ErrorDoc
	doc.Error.RetryAfterMS = 500
	if d := c.backoff(0, &doc); d < 500*time.Millisecond {
		t.Fatalf("backoff %v ignores the server's 500ms retry hint", d)
	}
}

func TestOptimizeRetriesBackpressureThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"kind":"overloaded","message":"queue full","retry_after_ms":1}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"model":"qon","n":3,"rung":"full","degraded":false,` +
			`"report":{"model":"qon","n":3,"runs":[]}}`))
	}))
	defer ts.Close()

	c := New(ts.URL, 7)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	out, err := c.Optimize(context.Background(), &server.Request{
		Workload: &server.WorkloadSpec{Shape: "chain", N: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() || out.Attempts != 3 || out.Backoffs != 2 {
		t.Fatalf("outcome %+v, want 200 after 3 attempts / 2 backoffs", out)
	}
	if out.Result == nil || out.Result.Model != "qon" {
		t.Fatalf("result not decoded: %+v", out.Result)
	}
}

func TestOptimizeDoesNotRetryTerminalErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"kind":"bad_request","message":"nope"}}`))
	}))
	defer ts.Close()

	c := New(ts.URL, 7)
	out, err := c.Optimize(context.Background(), &server.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusBadRequest || out.Attempts != 1 || out.Backoffs != 0 {
		t.Fatalf("outcome %+v, want a single non-retried 400", out)
	}
	if out.ErrDoc == nil || out.ErrDoc.Error.Kind != "bad_request" {
		t.Fatalf("error document not decoded: %+v", out.ErrDoc)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hit %d times, want 1", hits.Load())
	}
}

func TestOptimizeRejectsUnstructuredErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "oops", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL, 7)
	if _, err := c.Optimize(context.Background(), &server.Request{}); err == nil {
		t.Fatal("unstructured 503 body must surface as an error")
	}
}

func TestOptimizeExhaustsRetriesAndReturnsLastOutcome(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"kind":"draining","message":"bye"}}`))
	}))
	defer ts.Close()

	c := New(ts.URL, 7)
	c.Retries = 2
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	out, err := c.Optimize(context.Background(), &server.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusServiceUnavailable || out.Attempts != 3 || out.Backoffs != 2 {
		t.Fatalf("outcome %+v, want 503 after 3 attempts / 2 backoffs", out)
	}
	if out.ErrDoc == nil || out.ErrDoc.Error.Kind != "draining" {
		t.Fatalf("last error document not kept: %+v", out.ErrDoc)
	}
}
