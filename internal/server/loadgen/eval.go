package loadgen

import (
	"context"
	"fmt"
	"sort"

	"approxqo/internal/server"
	"approxqo/internal/workload"
)

// EvalConfig parameterizes EvalFamilies. Zero fields take the defaults
// of the competitive-ratio harness (internal/classify): the routed
// workload families at n=12, five seeds each.
type EvalConfig struct {
	// Families are workload family names (workload.Families grammar).
	Families []string `json:"families,omitempty"`
	// N is the instance size (default 12).
	N int `json:"n,omitempty"`
	// Seeds is how many seeded instances to measure per family
	// (default 5; the cliquered promise pair is deterministic in n, so
	// its families are always measured once).
	Seeds int `json:"seeds,omitempty"`
	// TimeoutMS is the per-request budget forwarded to the server
	// (default: server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// FamilyEval aggregates one family's routed-vs-full comparison as
// measured through the server's HTTP API.
type FamilyEval struct {
	Family     string `json:"family"`
	Class      string `json:"class"`
	Recognized bool   `json:"recognized"`
	Seeds      int    `json:"seeds"`
	// WorstRatioL2 is the maximum over seeds of
	// log₂(routed best cost) − log₂(full best cost): 0 means routing
	// never cost anything on this family.
	WorstRatioL2 float64 `json:"worst_ratio_log2"`
	// RoutedP50MS and FullP50MS are median server-side wall times.
	// Full-ensemble requests served from the certified-result cache are
	// excluded from FullP50MS (their wall time measures the cache, not
	// the ensemble); FullP50MS is 0 when every full request hit.
	RoutedP50MS float64 `json:"routed_p50_ms"`
	FullP50MS   float64 `json:"full_p50_ms"`
	// RoutedOptimizers is the routed ensemble size observed on the last
	// seed; ExactReached whether every routed result was certified
	// exact.
	RoutedOptimizers int  `json:"routed_optimizers"`
	ExactReached     bool `json:"exact_reached"`
}

// EvalReport is the full eval-mode output: one row per family.
type EvalReport struct {
	N        int          `json:"n"`
	Families []FamilyEval `json:"families"`
}

// DefaultEvalFamilies is the population the eval mode measures when
// none is given: the same families the competitive-ratio harness pins.
func DefaultEvalFamilies() []string {
	return []string{
		string(workload.SkewedStar),
		string(workload.ChainSelective),
		string(workload.SparseEM),
		string(workload.CliqueredYes),
		string(workload.CliqueredNo),
	}
}

// EvalFamilies measures the adaptive router end to end through the
// server's HTTP API: for each family and seed it requests the same
// generated instance twice — once with the job-level route override on,
// once forced to the historical full ensemble — and aggregates the
// cost ratio and wall-time medians per family.
//
// The routed request is issued first: a full-ensemble result is
// certified and cacheable, and issuing it first would let the routed
// request be served from the cache, measuring nothing.
func (c *Client) EvalFamilies(ctx context.Context, cfg EvalConfig) (*EvalReport, error) {
	families := cfg.Families
	if len(families) == 0 {
		families = DefaultEvalFamilies()
	}
	n := cfg.N
	if n == 0 {
		n = 12
	}
	seeds := cfg.Seeds
	if seeds == 0 {
		seeds = 5
	}
	routed, full := true, false
	report := &EvalReport{N: n}
	for _, family := range families {
		fe := FamilyEval{Family: family, ExactReached: true}
		var routedWalls, fullWalls []float64
		famSeeds := seeds
		if family == string(workload.CliqueredYes) || family == string(workload.CliqueredNo) {
			famSeeds = 1 // deterministic in n
		}
		for seed := 0; seed < famSeeds; seed++ {
			spec := &server.WorkloadSpec{Shape: family, N: n, Seed: int64(seed)}
			routedRes, err := c.evalOne(ctx, spec, cfg.TimeoutMS, &routed)
			if err != nil {
				return nil, fmt.Errorf("loadgen: eval %s seed %d routed: %w", family, seed, err)
			}
			fullRes, err := c.evalOne(ctx, spec, cfg.TimeoutMS, &full)
			if err != nil {
				return nil, fmt.Errorf("loadgen: eval %s seed %d full: %w", family, seed, err)
			}
			fe.Seeds++
			if r := routedRes.Routing; r != nil {
				fe.Class, fe.Recognized = string(r.Class), r.Recognized
			}
			if excess := routedRes.Report.Best.CostLog2 - fullRes.Report.Best.CostLog2; excess > fe.WorstRatioL2 {
				fe.WorstRatioL2 = excess
			}
			fe.RoutedOptimizers = len(routedRes.Report.Runs)
			fe.ExactReached = fe.ExactReached && routedRes.Report.Best.Exact
			routedWalls = append(routedWalls, routedRes.WallMS)
			if !fullRes.Cached {
				fullWalls = append(fullWalls, fullRes.WallMS)
			}
		}
		fe.RoutedP50MS = medianMS(routedWalls)
		fe.FullP50MS = medianMS(fullWalls)
		report.Families = append(report.Families, fe)
	}
	return report, nil
}

// evalOne issues one routed-or-full request and insists on a certified
// result document.
func (c *Client) evalOne(ctx context.Context, spec *server.WorkloadSpec, timeoutMS int64, route *bool) (*server.Result, error) {
	out, err := c.Optimize(ctx, &server.Request{
		Job: &server.Job{Workload: spec, TimeoutMS: timeoutMS, Route: route},
	})
	if err != nil {
		return nil, err
	}
	if !out.OK() {
		if out.ErrDoc != nil {
			return nil, fmt.Errorf("status %d: %s: %s", out.Status, out.ErrDoc.Error.Kind, out.ErrDoc.Error.Message)
		}
		return nil, fmt.Errorf("status %d", out.Status)
	}
	if out.Result.Report == nil || out.Result.Report.Best == nil {
		return nil, fmt.Errorf("result carries no certified best")
	}
	return out.Result, nil
}

func medianMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return ys[len(ys)/2]
}
