package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"

	"approxqo/internal/server"
)

// TestEvalFamiliesEndToEnd drives the routed-vs-full eval mode through
// a real in-process server: the HTTP-level counterpart of the
// competitive-ratio harness in internal/classify.
func TestEvalFamiliesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e")
	}
	s, err := server.New(server.Config{Seed: 1, DrainTimeout: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := New(ts.URL, 5)
	rep, err := c.EvalFamilies(context.Background(), EvalConfig{
		Families:  []string{"skewed-star", "cliquered-yes"},
		N:         10,
		Seeds:     2,
		TimeoutMS: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 10 || len(rep.Families) != 2 {
		t.Fatalf("report %+v, want 2 families at n=10", rep)
	}
	byName := map[string]FamilyEval{}
	for _, fe := range rep.Families {
		byName[fe.Family] = fe
	}
	star := byName["skewed-star"]
	if star.Class != "star-skewed" || !star.Recognized || star.Seeds != 2 {
		t.Errorf("skewed-star eval %+v: want recognized star-skewed over 2 seeds", star)
	}
	if star.WorstRatioL2 > 0.03 { // log₂(1+ε) for the harness ε=0.02
		t.Errorf("skewed-star worst ratio 2^%.4f exceeds the harness ε", star.WorstRatioL2)
	}
	adv := byName["cliquered-yes"]
	if adv.Class != "adversarial" || adv.Recognized || adv.Seeds != 1 {
		t.Errorf("cliquered-yes eval %+v: want unrecognized adversarial, 1 seed", adv)
	}
	if !adv.ExactReached {
		t.Error("cliquered-yes routed request did not reach the certified exact tier")
	}
	if adv.WorstRatioL2 != 0 {
		t.Errorf("cliquered-yes routed cost differs from full by 2^%.4f", adv.WorstRatioL2)
	}
}
