// Package server is the optimization daemon's serving layer: it exposes
// the supervised ensemble engine over HTTP (JSON in/out, reusing the
// qon/qoh instance decoders) and protects the expensive exact
// optimizers from overload with explicit, per-request policy instead of
// timeouts and tipping over:
//
//   - a bounded admission queue with backpressure — requests beyond the
//     worker slots wait in a bounded queue, and requests beyond the
//     queue are rejected with 429 + Retry-After;
//   - per-request deadline budgets, propagated through context into
//     engine.Run so anytime heuristics degrade to certified best-so-far
//     results instead of erroring;
//   - a load-aware graceful-degradation ladder (see Rung): full
//     certified ensemble at low load, heuristics-only (marked
//     degraded: true) under pressure, outright load shedding at the top;
//   - a per-optimizer circuit breaker (see Breaker) layered over the
//     engine's per-run quarantine;
//   - panic-isolated request handlers, /healthz and /readyz endpoints,
//     and graceful shutdown that drains in-flight requests within a
//     configurable deadline;
//   - request spans and server.* metrics wired into internal/trace.
//
// Every accepted request yields either a certified result document or a
// structured error document — nothing is silently dropped, which the
// chaos soak tests assert under injected faults.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/classify"
	"approxqo/internal/cliutil"
	"approxqo/internal/cluster/replica"
	"approxqo/internal/engine"
	"approxqo/internal/opt"
	"approxqo/internal/qoh"
	"approxqo/internal/trace"
)

// Metric names published into the configured registry. The soak tests
// assert the admission invariant: every POST /optimize hit is either
// accepted or rejected at admission (MetricRequests = MetricAccepted +
// MetricRejected + non-POST hits), and every accepted request is
// answered (200, a 400/413 decode failure, a queue-deadline 503, or an
// engine-error document). MetricBadRequest counts response documents —
// pre-admission 405s plus post-admission decode failures — so it
// overlaps MetricAccepted rather than partitioning MetricRequests.
const (
	MetricRequests      = "server.requests"        // counter: POST /optimize hits
	MetricAccepted      = "server.accepted"        // counter: requests admitted
	MetricRejected      = "server.rejected"        // counter: 429/503 at admission
	MetricShed          = "server.shed"            // counter: shed-rung rejections (⊆ rejected)
	MetricDegraded      = "server.degraded"        // counter: requests served heuristics-only
	MetricBadRequest    = "server.bad_request"     // counter: 400/405 responses
	MetricQueueDeadline = "server.queue.deadline"  // counter: budgets expired while queued
	MetricPanics        = "server.panics"          // counter: handler panics converted to 500s
	MetricBreakerSkips  = "server.breaker.skips"   // counter: optimizers left out, circuit open
	MetricRouted        = "server.routed"          // counter: requests served through the adaptive router
	MetricRouteSkips    = "server.route.skips"     // counter: optimizers the router left out (routing+degraded skips)
	MetricInFlight      = "server.inflight"        // gauge: admitted, not yet answered
	MetricQueueDepth    = "server.queue.depth"     // gauge: admitted, waiting for a worker slot
	MetricRung          = "server.rung"            // histogram: ladder rung per accepted request
	MetricQueueWaitUS   = "server.queue.wait_us"   // histogram: time queued before a slot (µs)
	MetricRequestWallUS = "server.request.wall_us" // histogram: accepted-request wall time (µs)
)

// Batch metric names. POST /optimize/batch deliberately keeps its own
// counters so the single-request admission invariant above stays exact;
// the admission ladder itself is shared (each distinct shape takes one
// in-flight slot through admit/release, so MetricInFlight and the
// ladder thresholds see batch load).
const (
	MetricBatchRequests = "server.batch.requests" // counter: POST /optimize/batch hits
	MetricBatchJobs     = "server.batch.jobs"     // counter: jobs across all decoded batches
	MetricBatchShapes   = "server.batch.shapes"   // counter: distinct shapes admitted (engine runs charged)
	MetricBatchRejected = "server.batch.rejected" // counter: shape groups refused admission
)

// SpanRequest names the per-request span (fields: model, n, rung,
// status, kind). SpanBatch names the per-batch span (fields: jobs,
// shapes, status).
const (
	SpanRequest = "server.request"
	SpanBatch   = "server.batch"
)

// Config configures a Server. The zero value is usable: every field
// has a production-shaped default.
type Config struct {
	// MaxConcurrent is the number of worker slots running the engine at
	// once (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth is the admission queue beyond the worker slots;
	// requests past MaxConcurrent+QueueDepth are rejected with 429
	// (default 4×MaxConcurrent).
	QueueDepth int
	// DegradeAt is the load (admitted requests not yet answered) at
	// which the ladder sheds the exact optimizers (default
	// MaxConcurrent: degrade as soon as requests start queueing).
	DegradeAt int
	// ShedAt is the load at which requests are rejected outright with
	// 503; zero disables the shed rung and leaves backpressure to the
	// queue bound alone. Must be > DegradeAt when set.
	ShedAt int

	// DefaultTimeout is the per-request budget when the request does
	// not carry timeout_ms (default 2s). MaxTimeout clamps requested
	// budgets (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds graceful shutdown's drain of in-flight
	// requests (default 5s).
	DrainTimeout time.Duration
	// RetryAfter is the hint attached to 429/503 rejections (default
	// 250ms).
	RetryAfter time.Duration
	// MaxBodyBytes bounds the request body (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxBatchJobs caps the jobs array of POST /optimize/batch (default
	// DefaultMaxBatchJobs).
	MaxBatchJobs int

	// CacheSize is the capacity of the certified-result cache keyed by
	// canonical instance hash: zero means DefaultCacheSize, negative
	// disables caching. Only full-rung certified reports are stored, so
	// a cache hit is always served with degraded: false. The cache is
	// bypassed entirely when chaos injection is active — fault behaviour
	// must stay per-request.
	CacheSize int

	// Route enables adaptive optimizer routing: the structural
	// classifier (internal/classify) picks the ensemble tiers and
	// budget split per QO_N instance, and the degradation ladder sheds
	// the tier the classifier ranks least important instead of always
	// shedding the exact optimizers. Per-job `route` overrides it
	// either way. Routed reduced-ensemble results are cached only when
	// certified exact (a greedy-only answer must never be served to a
	// later full-ensemble request).
	Route bool

	// Seed seeds the randomized heuristics; each request derives its
	// own seed from it.
	Seed int64
	// ChaosSpec injects deterministic faults into every request's
	// ensemble (the qopt -chaos grammar) — the soak tests and qod
	// -chaos use it; empty disables. ChaosOptions configure the
	// injectors (stall duration, transient-failure counts).
	ChaosSpec    string
	ChaosOptions []chaos.Option

	// ReplicaTransport is the HTTP transport used for cache-replication
	// fan-out to ring peers (nil means http.DefaultTransport). The chaos
	// soak injects a partitioning transport here. ReplicaTimeout bounds
	// one fan-out offer POST (default DefaultReplicaTimeout).
	ReplicaTransport http.RoundTripper
	ReplicaTimeout   time.Duration
	// ClusterSecret authenticates replication traffic: the /cache/*
	// endpoints refuse requests that do not carry it in
	// replica.AuthHeader, and the X-Replicate-To fan-out hint is honored
	// only on requests that do. Empty (the default) closes the surface
	// entirely — every /cache/* request is refused and every
	// X-Replicate-To header ignored — so a standalone worker exposes no
	// cache-write or fan-out primitive.
	ClusterSecret string

	// BreakerThreshold / BreakerCooldown configure the per-optimizer
	// circuit breaker (defaults DefaultBreakerThreshold /
	// DefaultBreakerCooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// EngineGrace overrides the engine's post-cancellation grace window
	// (default engine.DefaultGrace).
	EngineGrace time.Duration

	// Tracer / Metrics wire the server and its engine into the
	// observability layer; nil disables either.
	Tracer  *trace.Tracer
	Metrics *trace.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.DegradeAt <= 0 {
		c.DegradeAt = c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = DefaultMaxBatchJobs
	}
	return c
}

// DefaultMaxBatchJobs is the jobs-array cap of POST /optimize/batch
// when Config.MaxBatchJobs is zero.
const DefaultMaxBatchJobs = 64

// Server serves optimization requests. Build with New; serve via
// Handler (in-process, tests) or ListenAndServe (qod).
type Server struct {
	cfg        Config
	eng        *engine.Engine
	breaker    *Breaker
	chaosRules []chaos.Rule
	cache      *resultCache // nil when disabled (CacheSize < 0)
	flights    *flightGroup

	replicaSem    chan struct{} // bounded fan-out pool (nil when cache disabled)
	replicaClient *http.Client  // fan-out offers to ring peers

	slots  chan struct{} // worker tokens
	reqSeq atomic.Int64  // per-request seed derivation
	queued atomic.Int64  // waiting for a slot (healthz, gauge mirror)

	mu          sync.Mutex
	inflight    int // admitted, not yet answered
	draining    bool
	drainClosed bool
	drained     chan struct{}

	started time.Time
	mux     *http.ServeMux
}

// New builds a Server. It fails only on an invalid configuration (bad
// chaos spec, inconsistent ladder thresholds).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.ShedAt > 0 && cfg.ShedAt <= cfg.DegradeAt {
		return nil, fmt.Errorf("server: ShedAt (%d) must exceed DegradeAt (%d)", cfg.ShedAt, cfg.DegradeAt)
	}
	rules, err := chaos.ParseSpec(cfg.ChaosSpec)
	if err != nil {
		return nil, err
	}
	engOpts := []engine.Option{
		engine.WithTracer(cfg.Tracer),
		engine.WithMetrics(cfg.Metrics),
	}
	if cfg.EngineGrace > 0 {
		engOpts = append(engOpts, engine.WithGrace(cfg.EngineGrace))
	}
	s := &Server{
		cfg:        cfg,
		eng:        engine.New(engOpts...),
		breaker:    NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		chaosRules: rules,
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		flights:    newFlightGroup(),
		drained:    make(chan struct{}),
		started:    time.Now(),
	}
	if size := cfg.CacheSize; size >= 0 {
		if size == 0 {
			size = DefaultCacheSize
		}
		s.cache = newResultCache(size)
		s.replicaSem = make(chan struct{}, replicateWorkers)
		rt := cfg.ReplicaTransport
		if rt == nil {
			rt = http.DefaultTransport
		}
		s.replicaClient = &http.Client{Transport: rt}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/optimize", s.handleOptimize)
	s.mux.HandleFunc("/optimize/batch", s.handleBatch)
	s.mux.HandleFunc("/cache/offer", s.handleCacheOffer)
	s.mux.HandleFunc("/cache/digest", s.handleCacheDigest)
	s.mux.HandleFunc("/cache/keys", s.handleCacheKeys)
	s.mux.HandleFunc("/cache/export", s.handleCacheExport)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s, nil
}

// Engine exposes the server's supervised engine (its Health feeds
// /readyz; tests reach it too).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the server's panic-isolated HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.cfg.Metrics.Counter(MetricPanics).Inc()
				writeErrorDocID(w, requestID(r), http.StatusInternalServerError, "panic",
					fmt.Sprintf("internal error: %v", p), 0)
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// ListenAndServe serves on addr until ctx is cancelled, then performs a
// graceful shutdown: admission stops, in-flight requests drain within
// DrainTimeout, and only then do the listeners close.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errC := make(chan error, 1)
	go func() { errC <- hs.ListenAndServe() }()
	select {
	case err := <-errC:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.Shutdown(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// Shutdown stops admitting requests (new ones get a structured 503
// "draining" document) and blocks until every in-flight request has
// been answered or ctx expires. It returns nil exactly when the drain
// completed with zero dropped requests.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 && !s.drainClosed {
		close(s.drained)
		s.drainClosed = true
	}
	s.mu.Unlock()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("server: drain incomplete, %d request(s) still in flight: %w", n, ctx.Err())
	}
}

// InFlight reports the number of admitted, unanswered requests.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// rejection is a refused admission: a status, a taxonomy kind and a
// message, rendered as a structured error document with Retry-After.
type rejection struct {
	status int
	kind   string
	msg    string
}

// admit applies admission control and the degradation ladder. On
// success the caller holds one in-flight slot (pair with release) and
// the rung to serve at; otherwise the rejection says why.
func (s *Server) admit() (Rung, *rejection) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, &rejection{http.StatusServiceUnavailable, "draining", "server is draining; request not admitted"}
	}
	load := s.inflight
	capacity := s.cfg.MaxConcurrent + s.cfg.QueueDepth
	if load >= capacity {
		return 0, &rejection{http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("admission queue full (%d in flight, capacity %d)", load, capacity)}
	}
	rung := ladder(load, s.cfg.DegradeAt, s.cfg.ShedAt)
	if rung == RungShed {
		s.cfg.Metrics.Counter(MetricShed).Inc()
		return 0, &rejection{http.StatusServiceUnavailable, "shed",
			fmt.Sprintf("load shed at rung %q (%d in flight, shed threshold %d)", rung, load, s.cfg.ShedAt)}
	}
	s.inflight++
	s.cfg.Metrics.Gauge(MetricInFlight).Add(1)
	return rung, nil
}

// precheck reports the rejection admit would return right now, without
// taking a slot: the batch endpoint's cheap pre-decode gate — a
// draining or saturated server refuses the whole batch before paying
// for a JSON decode. It never touches metrics; real admission attempts
// account themselves.
func (s *Server) precheck() *rejection {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return &rejection{http.StatusServiceUnavailable, "draining", "server is draining; request not admitted"}
	}
	load := s.inflight
	capacity := s.cfg.MaxConcurrent + s.cfg.QueueDepth
	if load >= capacity {
		return &rejection{http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("admission queue full (%d in flight, capacity %d)", load, capacity)}
	}
	if ladder(load, s.cfg.DegradeAt, s.cfg.ShedAt) == RungShed {
		return &rejection{http.StatusServiceUnavailable, "shed",
			fmt.Sprintf("load shed (%d in flight, shed threshold %d)", load, s.cfg.ShedAt)}
	}
	return nil
}

// release returns an in-flight slot; the last release during a drain
// completes Shutdown.
func (s *Server) release() {
	s.mu.Lock()
	s.inflight--
	s.cfg.Metrics.Gauge(MetricInFlight).Add(-1)
	if s.draining && s.inflight == 0 && !s.drainClosed {
		close(s.drained)
		s.drainClosed = true
	}
	s.mu.Unlock()
}

// handleOptimize is POST /optimize: admission, decode, queue for a
// worker slot, run the (possibly degraded) ensemble under the request's
// deadline budget, respond with a certified result or a structured
// error document.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	m := s.cfg.Metrics
	m.Counter(MetricRequests).Inc()
	span := s.cfg.Tracer.Start(SpanRequest)
	defer span.End()
	rid := echoRequestID(w, r, span)
	if r.Method != http.MethodPost {
		m.Counter(MetricBadRequest).Inc()
		span.SetField("kind", "method_not_allowed")
		writeErrorDocID(w, rid, http.StatusMethodNotAllowed, "method_not_allowed",
			"use POST with a JSON request body", 0)
		return
	}

	// Admission before body parsing: under overload, rejects cost a few
	// atomic ops, not a JSON decode.
	rung, rej := s.admit()
	if rej != nil {
		m.Counter(MetricRejected).Inc()
		span.SetField("kind", rej.kind)
		writeErrorDocID(w, rid, rej.status, rej.kind, rej.msg, s.cfg.RetryAfter)
		return
	}
	accepted := time.Now()
	defer s.release()
	m.Counter(MetricAccepted).Inc()
	m.Histogram(MetricRung).Observe(int64(rung))
	span.SetField("rung", rung.String())
	if rung.Degraded() {
		m.Counter(MetricDegraded).Inc()
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		m.Counter(MetricBadRequest).Inc()
		span.SetField("kind", "too_large")
		writeErrorDocID(w, rid, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes), 0)
		return
	}
	req, err := DecodeRequest(body)
	if err != nil {
		m.Counter(MetricBadRequest).Inc()
		span.SetField("kind", "bad_request")
		writeErrorDocID(w, rid, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	span.SetField("model", req.model())
	if s.peerAuthed(r) {
		// The fan-out hint is only honored from authenticated cluster
		// peers: an arbitrary client must not be able to direct this
		// worker to POST cache offers at URLs of its choosing.
		req.replicaTo = parseReplicaTo(r.Header.Get(ReplicateToHeader))
	}

	// The budget covers queueing, deduplication and optimization, so a
	// request cannot occupy the queue longer than its caller is willing
	// to wait.
	ctx, cancel := context.WithTimeout(r.Context(), req.budget(s.cfg.DefaultTimeout, s.cfg.MaxTimeout))
	defer cancel()

	out := s.serveAdmitted(ctx, req, rung, accepted)
	if !out.ok {
		span.SetField("kind", out.kind)
		writeErrorDocID(w, rid, out.status, out.kind, out.msg, out.retryAfter)
		return
	}
	if out.cached {
		span.SetField("kind", "cache_hit")
	}
	span.SetField("status", http.StatusOK)
	writeJSON(w, http.StatusOK, out.result(req.model()))
	// The response bytes are written: the pooled report and remap view
	// (if any) can go back to their pools.
	out.close()
}

// jobOutcome is the result of serving one admitted, decoded job — the
// shared core of /optimize and /optimize/batch. Either ok with a
// report, or an error triple (status, kind, msg).
type jobOutcome struct {
	ok         bool
	status     int
	kind, msg  string
	retryAfter time.Duration

	rep     *engine.Report // in the requester's label space
	view    *reportView    // pooled remap state backing rep on cache hits
	rung    Rung           // rung the result was served at (full for cache hits)
	cached  bool
	routing *classify.Decision // non-nil when the adaptive router picked the ensemble
	fp      string             // instance fingerprint when canonical identity resolved
	queueMS float64
	wallMS  float64
}

// close releases the outcome's pooled state — the engine report (a
// no-op unless pool-born) and the remap view, if any. It must be
// called only after the response document referencing out.rep has been
// fully written; afterwards the outcome's report must not be touched.
func (o *jobOutcome) close() {
	if o.view != nil {
		// out.rep aliases the view's Report shell (never pool-born), so
		// releasing the view covers it — and rep must not be touched
		// after the view returns to its pool.
		o.view.release()
		o.view, o.rep = nil, nil
		return
	}
	if o.rep != nil {
		o.rep.Release()
		o.rep = nil
	}
}

// result renders the outcome as the success document.
func (o *jobOutcome) result(model string) *Result {
	return &Result{
		Model:       model,
		N:           o.rep.N,
		Rung:        o.rung.String(),
		Degraded:    o.rung.Degraded(),
		Cached:      o.cached,
		Routing:     o.routing,
		Fingerprint: o.fp,
		QueueMS:     o.queueMS,
		WallMS:      o.wallMS,
		Report:      o.rep,
	}
}

// serveAdmitted runs one admitted, decoded request end to end: the
// certified-result cache (keyed by model + canonical fingerprint, so
// relabeled duplicates hit) with singleflight duplicate suppression,
// the worker-slot queue, the ensemble run, and the cache store. The
// caller holds the in-flight slot and owns the HTTP (or batch-item)
// rendering of the outcome.
func (s *Server) serveAdmitted(ctx context.Context, req *Request, rung Rung, accepted time.Time) (out jobOutcome) {
	m := s.cfg.Metrics
	out.rung = rung

	// Cache and singleflight are bypassed under chaos injection: fault
	// behaviour must stay per-request, never served from memory. Stored
	// reports live in canonical label space; hits remap them into the
	// requester's labels through the inverse canonical permutation.
	var key, rawKey string
	if s.cache != nil && len(s.chaosRules) == 0 {
		key = cacheKey(req)
		rawKey = rawSourceKey(req)
		out.fp, _, _ = req.canonicalID()
	}
	for key != "" {
		if rep, storedRaw, ok := s.cache.get(key); ok {
			// A stored report is always a certified full-rung result, so
			// the hit is served at the full rung regardless of the rung
			// this request was admitted at.
			_, perm, _ := req.canonicalID()
			if rep == nil || rep.N != len(perm) || rep.Best == nil || len(rep.Best.Sequence) != rep.N {
				// The stored report disagrees with the requesting
				// instance's size: serving it would remap out of bounds.
				// Key↔report binding at the replication trust boundary
				// makes this unreachable, but the cache is also fed by
				// local stores and must never crash on its own contents —
				// evict the corrupt entry and run for real.
				m.Counter(MetricCacheMismatch).Inc()
				s.cache.evict(key)
			} else {
				m.Counter(MetricCacheHits).Inc()
				if storedRaw != rawKey {
					// The stored entry came from a different raw source —
					// this hit exists only because of canonical keying.
					m.Counter(MetricCanonicalHits).Inc()
				}
				wall := time.Since(accepted)
				m.Histogram(MetricRequestWallUS).Observe(wall.Microseconds())
				out.ok = true
				out.status = http.StatusOK
				out.rung = RungFull
				out.cached = true
				out.rep, out.view = viewRemapped(rep, invertPerm(perm))
				out.wallMS = float64(wall.Microseconds()) / 1000
				return out
			}
		}
		call, leader := s.flights.join(key)
		if leader {
			m.Counter(MetricCacheMisses).Inc()
			defer s.flights.leave(key, call)
			break // run below; a cacheable outcome is stored before leave
		}
		// Follower: an identical request is already in flight. Wait it
		// out, then re-check the cache — if the leader's outcome was not
		// cacheable (degraded rung, error), the next round promotes this
		// request to leader instead of losing it.
		select {
		case <-call.done:
		case <-ctx.Done():
			// Budget exhausted while deduplicating: fall through to the
			// normal path, whose slot wait accounts the queue deadline.
			key = ""
		}
	}

	s.queued.Add(1)
	s.cfg.Metrics.Gauge(MetricQueueDepth).Add(1)
	select {
	case s.slots <- struct{}{}:
		s.queued.Add(-1)
		s.cfg.Metrics.Gauge(MetricQueueDepth).Add(-1)
	case <-ctx.Done():
		s.queued.Add(-1)
		s.cfg.Metrics.Gauge(MetricQueueDepth).Add(-1)
		m.Counter(MetricQueueDeadline).Inc()
		out.status = http.StatusServiceUnavailable
		out.kind = "queue_deadline"
		out.msg = "deadline budget expired while queued"
		out.retryAfter = s.cfg.RetryAfter
		return out
	}
	defer func() { <-s.slots }()
	queueWait := time.Since(accepted)
	m.Histogram(MetricQueueWaitUS).Observe(queueWait.Microseconds())

	rep, dec, err := s.run(ctx, req, rung)
	out.routing = dec
	wall := time.Since(accepted)
	m.Histogram(MetricRequestWallUS).Observe(wall.Microseconds())
	if key != "" && err == nil && rung == RungFull &&
		rep != nil && rep.Best != nil && rep.Best.Certified &&
		(dec == nil || !dec.Reduced() || rep.Best.Exact) {
		// Only full-rung certified reports are stored: a hit must never
		// downgrade a future request to a heuristics-only answer. For
		// the same reason a routed reduced-ensemble report qualifies
		// only when its winner is certified exact — optimal is optimal
		// no matter how few optimizers ran. The stored copy is remapped
		// into canonical label space so any relabeling of this instance
		// can be served from it, and detached so it survives the pooled
		// report's release.
		if _, perm, cerr := req.canonicalID(); cerr == nil {
			canon := detachRemapped(rep, perm)
			s.cache.put(key, rawKey, canon)
			// Replicate the canonical copy to the ring successors the
			// coordinator named, asynchronously — the response below never
			// waits on a peer.
			s.replicate(req.replicaTo, &replica.Entry{Key: key, RawKey: rawKey, Report: canon})
		}
	}
	if err != nil {
		// The failed run's report (possibly partial, e.g. all-failed) is
		// never served: release its pooled buffers here.
		rep.Release()
		out.kind = cliutil.Classify(err)
		out.status = http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			out.status = http.StatusGatewayTimeout
		}
		out.msg = err.Error()
		return out
	}
	out.ok = true
	out.status = http.StatusOK
	out.rep = rep
	out.queueMS = float64(queueWait.Microseconds()) / 1000
	out.wallMS = float64(wall.Microseconds()) / 1000
	return out
}

// reportView is the pooled per-response state of a label remap: a
// Report shell, a BestRecord and a sequence backing array, recycled
// across requests so a cache hit allocates nothing for its remapped
// view. The view shares the source report's record buffers (they are
// label-invariant and read-only while served); it must be released
// only after the response referencing it has been written, and never
// outlive the source report's own lifetime (cached reports are
// detached, so that is automatic).
type reportView struct {
	rep  engine.Report
	best engine.BestRecord
	seq  []int
}

var reportViewPool = sync.Pool{New: func() any { return new(reportView) }}

// release returns the view's buffers to the pool, dropping every
// reference into the source report so a pooled view never pins a
// cached report in memory. Nil-safe.
func (v *reportView) release() {
	if v == nil {
		return
	}
	v.rep = engine.Report{}
	v.best = engine.BestRecord{}
	reportViewPool.Put(v)
}

// viewRemapped returns rep viewed with every entry of Best.Sequence
// mapped through perm (perm[v] = new label of v), built in pooled
// state instead of fresh allocations. Every other report field is
// label-invariant — Breaks are sequence positions, run records carry
// no sequences — and is shared with the original. A nil perm
// (identity) or sequence-free report is returned unchanged with a nil
// view. Constructing the shell field-by-field (rather than copying
// *rep) also guarantees the view never inherits the engine's pool
// ownership flags: Release on a view is always a no-op.
func viewRemapped(rep *engine.Report, perm []int) (*engine.Report, *reportView) {
	if rep == nil || rep.Best == nil || perm == nil {
		return rep, nil
	}
	v := reportViewPool.Get().(*reportView)
	n := len(rep.Best.Sequence)
	if cap(v.seq) < n {
		v.seq = make([]int, n)
	}
	seq := v.seq[:n]
	for k, val := range rep.Best.Sequence {
		seq[k] = perm[val]
	}
	v.best = *rep.Best
	v.best.Sequence = seq
	v.rep = engine.Report{
		Model:       rep.Model,
		N:           rep.N,
		Best:        &v.best,
		Runs:        rep.Runs,
		Quarantined: rep.Quarantined,
		Skipped:     rep.Skipped,
		WallMS:      rep.WallMS,
		SpanID:      rep.SpanID,
	}
	return &v.rep, v
}

// detachRemapped returns a detached deep copy of rep with
// Best.Sequence mapped through perm — the canonical-label copy handed
// to the cache and the replication fan-out, safe to retain and serve
// indefinitely after the pooled original is released.
func detachRemapped(rep *engine.Report, perm []int) *engine.Report {
	d := rep.Detach()
	if d != nil && d.Best != nil && perm != nil {
		for k, v := range d.Best.Sequence {
			d.Best.Sequence[k] = perm[v]
		}
	}
	return d
}

// invertPerm returns perm⁻¹, or nil for nil.
func invertPerm(perm []int) []int {
	if perm == nil {
		return nil
	}
	inv := make([]int, len(perm))
	for v, p := range perm {
		inv[p] = v
	}
	return inv
}

// run executes the request's ensemble at the given rung under ctx and
// feeds the outcome into the circuit breaker. When adaptive routing is
// active for the request (Config.Route, overridable per job) the
// returned Decision documents the classifier's choice; nil otherwise.
func (s *Server) run(ctx context.Context, req *Request, rung Rung) (*engine.Report, *classify.Decision, error) {
	seed := s.cfg.Seed + s.reqSeq.Add(1)
	var rep *engine.Report
	var dec *classify.Decision
	var err error
	if req.model() == "qoh" {
		rep, err = s.eng.RunQOH(ctx, req.QOHInstance, s.qohEnsemble(req.QOHInstance, rung, seed)...)
	} else {
		in, ierr := req.qonInstance()
		if ierr != nil {
			return nil, nil, ierr
		}
		var optimizers []opt.Optimizer
		var skips []engine.SkipRecord
		if req.routeEnabled(s.cfg.Route) {
			d := classify.Route(classify.Extract(in))
			if rung.Degraded() {
				// The ladder sheds the tier the classifier ranks least
				// important — for adversarial instances that keeps the
				// certified exact tier and sheds heuristics instead.
				d = d.Degrade()
			}
			dec = &d
			optimizers, skips = classify.Ensemble(d, in.N(), seed)
			var brSkips []engine.SkipRecord
			optimizers, brSkips = s.filterOpenSkips(optimizers)
			skips = append(skips, brSkips...)
			if len(s.chaosRules) > 0 {
				optimizers = chaos.Apply(s.chaosRules, optimizers,
					append(append([]chaos.Option(nil), s.cfg.ChaosOptions...), chaos.WithSeed(seed))...)
			}
			s.cfg.Metrics.Counter(MetricRouted).Inc()
			s.cfg.Metrics.Counter(MetricRouteSkips).Add(int64(len(skips)))
			// A reduced ensemble deserves a reduced slice of the budget:
			// the wall-time headroom is the point of routing.
			if frac := d.BudgetFrac; frac > 0 && frac < 1 {
				if dl, ok := ctx.Deadline(); ok {
					scaled := time.Now().Add(time.Duration(float64(time.Until(dl)) * frac))
					var cancel context.CancelFunc
					ctx, cancel = context.WithDeadline(ctx, scaled)
					defer cancel()
				}
			}
		} else {
			optimizers = s.qonEnsemble(in.N(), rung, seed)
		}
		rep, err = s.eng.Run(ctx, in, optimizers...)
		if rep != nil {
			rep.Skipped = skips
		}
	}
	if rep != nil {
		for i := range rep.Runs {
			rec := &rep.Runs[i]
			if rec.Certified {
				s.breaker.Record(rec.Name, true)
			} else if rec.Quarantined {
				// Only quarantine trips the breaker: errors alone include
				// benign cancellations from the engine's early exit.
				s.breaker.Record(rec.Name, false)
			}
		}
	}
	return rep, dec, err
}

// qonEnsemble builds the request's optimizer set: sized to the
// instance, degraded to heuristics-only above the degrade rung,
// filtered by the circuit breaker, and wrapped with the configured
// chaos faults.
func (s *Server) qonEnsemble(n int, rung Rung, seed int64) []opt.Optimizer {
	var optimizers []opt.Optimizer
	if rung == RungFull {
		// Exact optimizers, each within its applicable range so a
		// too-large instance does not burn retries on out-of-range errors.
		if n <= opt.MaxExhaustiveN {
			optimizers = append(optimizers, opt.NewExhaustive())
		}
		if n <= opt.DefaultMaxDPN {
			optimizers = append(optimizers, opt.NewDP(), opt.NewDPNoCross())
		}
		if n <= opt.DefaultMaxDPN+2 {
			optimizers = append(optimizers, opt.NewDPParallel())
		}
		optimizers = append(optimizers, opt.NewIterativeImprovement(opt.WithSeed(seed), opt.WithRestarts(5)))
	}
	optimizers = append(optimizers, opt.Heuristics(opt.WithSeed(seed))...)
	optimizers = s.filterOpen(optimizers)
	if len(s.chaosRules) > 0 {
		optimizers = chaos.Apply(s.chaosRules, optimizers,
			append(append([]chaos.Option(nil), s.cfg.ChaosOptions...), chaos.WithSeed(seed))...)
	}
	return optimizers
}

// qohEnsemble is qonEnsemble for the QO_H plan search. Chaos wrapping
// does not apply (the injectors target opt.Optimizer).
func (s *Server) qohEnsemble(in *qoh.Instance, rung Rung, seed int64) []engine.QOHSearcher {
	searchers := engine.QOHSearchers(opt.WithSeed(seed))
	keep := searchers[:0]
	for _, sr := range searchers {
		if sr.Name == "qoh-exhaustive" && (rung != RungFull || in.N() > qoh.MaxExhaustiveN) {
			continue
		}
		if !s.breaker.Allow(sr.Name) {
			s.cfg.Metrics.Counter(MetricBreakerSkips).Inc()
			continue
		}
		keep = append(keep, sr)
	}
	if len(keep) == 0 {
		// Never serve an empty ensemble: a fully open breaker half-opens
		// here, probing every searcher again.
		return engine.QOHSearchers(opt.WithSeed(seed))
	}
	return keep
}

// filterOpen drops optimizers whose breaker circuit is open, keeping at
// least one: an ensemble emptied by the breaker half-opens instead.
func (s *Server) filterOpen(optimizers []opt.Optimizer) []opt.Optimizer {
	kept, _ := s.filterOpenSkips(optimizers)
	return kept
}

// filterOpenSkips is filterOpen plus a SkipRecord per dropped
// optimizer, so routed reports account for breaker skips alongside
// routing skips.
func (s *Server) filterOpenSkips(optimizers []opt.Optimizer) ([]opt.Optimizer, []engine.SkipRecord) {
	keep := optimizers[:0]
	var skips []engine.SkipRecord
	for _, o := range optimizers {
		if s.breaker.Allow(o.Name()) {
			keep = append(keep, o)
		} else {
			s.cfg.Metrics.Counter(MetricBreakerSkips).Inc()
			skips = append(skips, engine.SkipRecord{
				Name: o.Name(), Reason: engine.SkipBreaker,
				Detail: "circuit open after repeated quarantine",
			})
		}
	}
	if len(keep) == 0 {
		return optimizers[:cap(keep)], nil
	}
	return keep, skips
}

// Result is the success document of POST /optimize.
type Result struct {
	Model string `json:"model"`
	N     int    `json:"n"`
	// Rung is the degradation-ladder rung the request was served at;
	// Degraded marks a heuristics-only (exact-optimizers-shed) result.
	Rung     string `json:"rung"`
	Degraded bool   `json:"degraded"`
	// Cached marks a result served from the certified-result cache —
	// always a full-rung, non-degraded report. In a batch response it
	// also marks group mates served from their leader's single engine
	// run.
	Cached bool `json:"cached,omitempty"`
	// Routing is the adaptive router's decision (class, tiers, reason,
	// features) when it picked this request's ensemble; nil for
	// unrouted requests and cache hits. Report.Skipped lists the
	// optimizers the decision left out.
	Routing *classify.Decision `json:"routing,omitempty"`
	// Fingerprint is the graph-invariant canonical identity of the
	// resolved instance (the bare fingerprint — the cache key prefixes
	// it with model and instance size, see replica.Key); empty when
	// caching is disabled or bypassed.
	Fingerprint string `json:"fingerprint,omitempty"`
	// QueueMS is time spent waiting for a worker slot; WallMS the full
	// accepted-to-answered wall time.
	QueueMS float64 `json:"queue_ms"`
	WallMS  float64 `json:"wall_ms"`
	// Report is the engine's full per-optimizer account; Report.Best is
	// the certified winning plan.
	Report *engine.Report `json:"report"`
}

// ErrorDoc is the structured error document every non-200 response
// carries: the same {"error":{"kind","message"}} shape as the CLI's
// -json fatal errors, plus a retry hint on 429/503.
type ErrorDoc struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the payload of an ErrorDoc.
type ErrorBody struct {
	// Kind is a stable taxonomy tag: the CLI kinds (all_failed,
	// deadline, …) plus the server's own (bad_request, overloaded,
	// shed, draining, queue_deadline, too_large, method_not_allowed,
	// panic).
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// RetryAfterMS mirrors the Retry-After header on 429/503: the
	// backoff hint for well-behaved clients (see loadgen).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// RequestID echoes the request's X-Request-ID header (generated by
	// the client or the cluster coordinator), so a failure can be traced
	// across the coordinator→worker hop. Empty when the caller sent
	// none.
	RequestID string `json:"request_id,omitempty"`
}

// RequestIDHeader carries the end-to-end request correlation ID
// (client → coordinator → worker). The server never generates one: it
// echoes whatever the caller sent, on the response header, on the
// server.request span (field request_id) and in error documents.
const RequestIDHeader = "X-Request-ID"

func requestID(r *http.Request) string { return r.Header.Get(RequestIDHeader) }

// echoRequestID reflects the caller's request ID onto the response and
// the span, returning it for the error-document path.
func echoRequestID(w http.ResponseWriter, r *http.Request, span *trace.Span) string {
	rid := requestID(r)
	if rid != "" {
		w.Header().Set(RequestIDHeader, rid)
		span.SetField("request_id", rid)
	}
	return rid
}

// encState is the pooled JSON response encoder: one buffer plus one
// indent-configured encoder, recycled across responses so serving a
// request re-allocates neither the encoder machinery nor (once warm)
// the response buffer. Buffering the whole document before writing
// also lets every response carry Content-Length.
type encState struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &encState{}
	e.enc = json.NewEncoder(&e.buf)
	e.enc.SetIndent("", "  ")
	return e
}}

// maxPooledEncBytes caps the buffer capacity retained by the encoder
// pool: a one-off giant batch response must not pin its buffer forever.
const maxPooledEncBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*encState)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// Encode failed mid-buffer (unmarshalable value — none of our
		// documents are). The encoder's error state is sticky, so the
		// state is dropped rather than pooled.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(e.buf.Bytes())
	if e.buf.Cap() <= maxPooledEncBytes {
		encPool.Put(e)
	}
}

func writeErrorDoc(w http.ResponseWriter, status int, kind, msg string, retryAfter time.Duration) {
	writeErrorDocID(w, "", status, kind, msg, retryAfter)
}

func writeErrorDocID(w http.ResponseWriter, rid string, status int, kind, msg string, retryAfter time.Duration) {
	var doc ErrorDoc
	doc.Error.Kind = kind
	doc.Error.Message = msg
	doc.Error.RequestID = rid
	if retryAfter > 0 {
		doc.Error.RetryAfterMS = retryAfter.Milliseconds()
		// Retry-After is whole seconds; round up so the header never
		// promises an earlier retry than the document.
		w.Header().Set("Retry-After", strconv.FormatInt(int64((retryAfter+time.Second-1)/time.Second), 10))
	}
	writeJSON(w, status, &doc)
}

// HealthDoc is the /healthz payload: liveness plus the load gauges.
type HealthDoc struct {
	Status   string  `json:"status"`
	UptimeMS float64 `json:"uptime_ms"`
	InFlight int     `json:"inflight"`
	Queued   int     `json:"queued"`
	Draining bool    `json:"draining"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	inflight, draining := s.inflight, s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, &HealthDoc{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.started).Microseconds()) / 1000,
		InFlight: inflight,
		Queued:   int(s.queued.Load()),
		Draining: draining,
	})
}

// ReadyDoc is the /readyz payload: whether the server should receive
// traffic, with the engine health probe and open breaker circuits as
// the evidence.
type ReadyDoc struct {
	Ready       bool          `json:"ready"`
	Draining    bool          `json:"draining"`
	Engine      engine.Health `json:"engine"`
	BreakerOpen []string      `json:"breaker_open,omitempty"`
	InFlight    int           `json:"inflight"`
	Queued      int           `json:"queued"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	inflight, draining := s.inflight, s.draining
	s.mu.Unlock()
	health := s.eng.Health()
	doc := &ReadyDoc{
		Draining:    draining,
		Engine:      health,
		BreakerOpen: s.breaker.Open(),
		InFlight:    inflight,
		Queued:      int(s.queued.Load()),
	}
	// Ready means: accepting requests, and the engine's most recent run
	// (if any) produced a certified winner.
	doc.Ready = !draining && (health.Runs == 0 || health.LastOK)
	status := http.StatusOK
	if !doc.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, doc)
}
