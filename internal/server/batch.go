package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// POST /optimize/batch: many jobs, one request. The handler groups the
// jobs by canonical fingerprint and serves each distinct instance shape
// exactly once — the admission ladder is charged per shape, not per
// job, so a batch of k relabeled duplicates costs one in-flight slot
// and one engine run. Results fan back out in job order; each job
// carries its own result or error document, so one invalid job never
// fails the batch.

// BatchResponse is the success document of POST /optimize/batch.
type BatchResponse struct {
	// Jobs echoes the number of jobs received; Shapes is the number of
	// distinct admission groups they collapsed to (the engine-run charge
	// of the batch before caching).
	Jobs   int `json:"jobs"`
	Shapes int `json:"shapes"`
	// Results has one entry per job, in job order.
	Results []BatchJobResult `json:"results"`
}

// BatchJobResult is one job's outcome: exactly one of Result or Error
// is set.
type BatchJobResult struct {
	Index  int        `json:"index"`
	Result *Result    `json:"result,omitempty"`
	Error  *ErrorBody `json:"error,omitempty"`
}

// batchGroup is one admission group: jobs sharing a canonical cache
// key, served by a single serveAdmitted call on the leader (the first
// member).
type batchGroup struct {
	key  string
	idxs []int
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	m := s.cfg.Metrics
	m.Counter(MetricBatchRequests).Inc()
	span := s.cfg.Tracer.Start(SpanBatch)
	defer span.End()
	rid := echoRequestID(w, r, span)
	if r.Method != http.MethodPost {
		m.Counter(MetricBadRequest).Inc()
		span.SetField("kind", "method_not_allowed")
		writeErrorDocID(w, rid, http.StatusMethodNotAllowed, "method_not_allowed",
			"use POST with a JSON request body", 0)
		return
	}
	// Batch-level admission gate before the decode: when the server
	// would reject every group anyway (draining, queue full, shed rung),
	// refuse the whole batch for the price of a mutex, not a JSON parse.
	if rej := s.precheck(); rej != nil {
		span.SetField("kind", rej.kind)
		writeErrorDocID(w, rid, rej.status, rej.kind, rej.msg, s.cfg.RetryAfter)
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		m.Counter(MetricBadRequest).Inc()
		span.SetField("kind", "too_large")
		writeErrorDocID(w, rid, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes), 0)
		return
	}
	br, err := DecodeBatchRequest(body, s.cfg.MaxBatchJobs)
	if err != nil {
		m.Counter(MetricBadRequest).Inc()
		span.SetField("kind", "bad_request")
		writeErrorDocID(w, rid, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	n := len(br.Jobs)
	m.Counter(MetricBatchJobs).Add(int64(n))
	span.SetField("jobs", n)

	// Validate each job and group by canonical cache key. Canonical
	// identity (fingerprint + permutation) is resolved here, before any
	// goroutine shares a Request. Jobs without a usable key — cache
	// disabled, chaos injection active, ungenerable workload — form
	// singleton groups under a synthetic key ("\x00" never prefixes a
	// real model:n:fingerprint key), so they run per-job like /optimize.
	reqs := make([]*Request, n)
	var replicaTo []string
	if s.peerAuthed(r) {
		// Same rule as /optimize: fan-out destinations are honored only
		// from authenticated cluster peers.
		replicaTo = parseReplicaTo(r.Header.Get(ReplicateToHeader))
	}
	errDocs := make([]*ErrorBody, n)
	groupOf := make(map[string]int)
	var groups []*batchGroup
	for i, job := range br.Jobs {
		req := requestForJob(job)
		if err := req.Validate(); err != nil {
			errDocs[i] = &ErrorBody{Kind: "bad_request", Message: err.Error(), RequestID: rid}
			continue
		}
		req.replicaTo = replicaTo
		reqs[i] = req
		key := ""
		if s.cache != nil && len(s.chaosRules) == 0 {
			key = cacheKey(req)
		}
		if key == "" {
			key = fmt.Sprintf("\x00job\x00%d", i)
		}
		if gi, ok := groupOf[key]; ok {
			groups[gi].idxs = append(groups[gi].idxs, i)
			continue
		}
		groupOf[key] = len(groups)
		groups = append(groups, &batchGroup{key: key, idxs: []int{i}})
	}
	span.SetField("shapes", len(groups))

	results := make([]*Result, n)
	rel := &releaseSet{}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *batchGroup) {
			defer wg.Done()
			s.serveBatchGroup(r.Context(), rid, g, reqs, results, errDocs, rel)
		}(g)
	}
	wg.Wait()

	doc := &BatchResponse{Jobs: n, Shapes: len(groups), Results: make([]BatchJobResult, n)}
	for i := range doc.Results {
		doc.Results[i] = BatchJobResult{Index: i, Result: results[i], Error: errDocs[i]}
	}
	span.SetField("status", http.StatusOK)
	writeJSON(w, http.StatusOK, doc)
	// Pooled reports and remap views stay alive until the whole batch
	// document is written — mates reference their leader's pooled
	// record buffers, so no group may release early.
	rel.release()
}

// releaseSet collects the pooled state (engine reports, remap views)
// that the batch response document references, so it can all be
// released in one sweep after the document is written. Group
// goroutines add concurrently; release runs on the handler goroutine
// after wg.Wait and the response write.
type releaseSet struct {
	mu  sync.Mutex
	fns []func()
}

func (rs *releaseSet) add(fn func()) {
	rs.mu.Lock()
	rs.fns = append(rs.fns, fn)
	rs.mu.Unlock()
}

func (rs *releaseSet) release() {
	for _, fn := range rs.fns {
		fn()
	}
	rs.fns = nil
}

// serveBatchGroup admits and serves one shape group: the leader (first
// member) runs through the shared serveAdmitted path, and every other
// member receives the leader's report remapped into its own label
// space — members of one group are relabelings of the same instance,
// so a join sequence transfers through canonical space exactly.
func (s *Server) serveBatchGroup(ctx context.Context, rid string, g *batchGroup, reqs []*Request, results []*Result, errDocs []*ErrorBody, rel *releaseSet) {
	m := s.cfg.Metrics
	rung, rej := s.admit()
	if rej != nil {
		m.Counter(MetricBatchRejected).Inc()
		for _, i := range g.idxs {
			errDocs[i] = &ErrorBody{Kind: rej.kind, Message: rej.msg, RetryAfterMS: s.cfg.RetryAfter.Milliseconds(), RequestID: rid}
		}
		return
	}
	accepted := time.Now()
	defer s.release()
	m.Counter(MetricBatchShapes).Inc()

	// The group's budget is the largest member budget: the slowest
	// caller's patience bounds the shared run.
	leader := reqs[g.idxs[0]]
	budget := leader.budget(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	for _, i := range g.idxs[1:] {
		if b := reqs[i].budget(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); b > budget {
			budget = b
		}
	}
	runCtx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	out := s.serveAdmitted(runCtx, leader, rung, accepted)
	if !out.ok {
		for _, i := range g.idxs {
			errDocs[i] = &ErrorBody{Kind: out.kind, Message: out.msg, RetryAfterMS: out.retryAfter.Milliseconds(), RequestID: rid}
		}
		return
	}
	rel.add(out.close)
	results[g.idxs[0]] = out.result(leader.model())
	if len(g.idxs) == 1 {
		return
	}
	// Fan out to group mates: leader labels → canonical labels → mate
	// labels. Multi-member groups only form on a real fingerprint key,
	// so every member's canonical permutation is resolved. The views
	// share the leader's record buffers and are released with the set
	// after the batch document is written.
	_, leaderPerm, _ := leader.canonicalID()
	canonical, cv := viewRemapped(out.rep, leaderPerm)
	if cv != nil {
		rel.add(cv.release)
	}
	for _, i := range g.idxs[1:] {
		req := reqs[i]
		_, perm, _ := req.canonicalID()
		mate := out.result(req.model())
		mate.Cached = true
		mate.QueueMS = 0
		mateRep, mv := viewRemapped(canonical, invertPerm(perm))
		mate.Report = mateRep
		if mv != nil {
			rel.add(mv.release)
		}
		results[i] = mate
	}
}
