package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"approxqo/internal/num"
	"approxqo/internal/qon"
	"approxqo/internal/trace"
	"approxqo/internal/workload"
)

// costClose compares costs up to a 2^-200 relative error: remapping a
// join sequence between label spaces reassociates the same 256-bit
// products, which can shift the final rounding by an ulp.
func costClose(a, b num.Num) bool {
	if a.Equal(b) {
		return true
	}
	hi, lo := a.Max(b), a.Min(b)
	return hi.Sub(lo).Mul(num.Pow2(200)).LessEq(hi)
}

func testInstance(t *testing.T, n int, seed int64) *qon.Instance {
	t.Helper()
	in, err := workload.Generate(workload.Params{N: n, Shape: workload.Chain, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func batchBody(t *testing.T, jobs ...map[string]any) string {
	t.Helper()
	data, err := json.Marshal(map[string]any{"jobs": jobs})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func postBatch(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/optimize/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeBatch(t *testing.T, data []byte) *BatchResponse {
	t.Helper()
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, data)
	}
	return &br
}

// The acceptance case of the batch API: k relabeled copies of one
// instance are one admission group, one engine run, and k certified
// results in job order — each with a join sequence that is
// permutation-valid for its own copy and costs the same.
func TestBatchDedupRelabeledCopies(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 4, DegradeAt: 16, Metrics: reg, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const k = 5
	base := testInstance(t, 7, 31)
	rng := rand.New(rand.NewSource(77))
	copies := make([]*qon.Instance, k)
	copies[0] = base
	jobs := make([]map[string]any, k)
	jobs[0] = map[string]any{"instance": base, "timeout_ms": 20000}
	for i := 1; i < k; i++ {
		copies[i] = qon.Relabel(base, rng.Perm(base.N()))
		jobs[i] = map[string]any{"instance": copies[i], "timeout_ms": 20000}
	}

	resp, data := postBatch(t, ts.URL, batchBody(t, jobs...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	br := decodeBatch(t, data)
	if br.Jobs != k || br.Shapes != 1 {
		t.Fatalf("jobs/shapes = %d/%d, want %d/1", br.Jobs, br.Shapes, k)
	}
	if runs := s.Engine().Health().Runs; runs != 1 {
		t.Fatalf("engine ran %d times for %d relabeled copies, want 1", runs, k)
	}
	if len(br.Results) != k {
		t.Fatalf("got %d results, want %d", len(br.Results), k)
	}
	var leaderCost num.Num
	for i, item := range br.Results {
		if item.Index != i {
			t.Fatalf("result %d carries index %d", i, item.Index)
		}
		if item.Error != nil {
			t.Fatalf("job %d failed: %+v", i, item.Error)
		}
		res := item.Result
		if res == nil || res.Report == nil || res.Report.Best == nil {
			t.Fatalf("job %d has no report", i)
		}
		if !res.Report.Best.Certified {
			t.Fatalf("job %d result not certified", i)
		}
		if res.Fingerprint == "" || res.Fingerprint != br.Results[0].Result.Fingerprint {
			t.Fatalf("job %d fingerprint %q differs from leader's", i, res.Fingerprint)
		}
		if (i == 0) == res.Cached {
			t.Fatalf("job %d cached=%v; want leader fresh, mates cached", i, res.Cached)
		}
		seq := qon.Sequence(res.Report.Best.Sequence)
		if !copies[i].ValidSequence(seq) {
			t.Fatalf("job %d sequence %v not a valid permutation for its copy", i, seq)
		}
		cost := copies[i].Cost(seq)
		if !costClose(cost, res.Report.Best.Cost) {
			t.Fatalf("job %d: sequence cost %v does not match reported %v", i, cost, res.Report.Best.Cost)
		}
		if i == 0 {
			leaderCost = cost
		} else if !costClose(cost, leaderCost) {
			t.Fatalf("job %d cost %v differs from leader cost %v", i, cost, leaderCost)
		}
	}
	if shapes := reg.Counter(MetricBatchShapes).Value(); shapes != 1 {
		t.Fatalf("batch shapes counter = %d, want 1", shapes)
	}
	if jobsN := reg.Counter(MetricBatchJobs).Value(); jobsN != k {
		t.Fatalf("batch jobs counter = %d, want %d", jobsN, k)
	}
}

// One invalid job yields a per-job error document; the rest of the
// batch is served normally.
func TestBatchIsolatesInvalidJobs(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := batchBody(t,
		map[string]any{"workload": map[string]any{"shape": "chain", "n": 6, "seed": 1}},
		map[string]any{"model": "nonsense"},
		map[string]any{"workload": map[string]any{"shape": "star", "n": 6, "seed": 2}},
	)
	resp, data := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	br := decodeBatch(t, data)
	if br.Jobs != 3 {
		t.Fatalf("jobs = %d, want 3", br.Jobs)
	}
	if br.Results[0].Error != nil || br.Results[0].Result == nil {
		t.Fatalf("job 0 should have succeeded: %+v", br.Results[0].Error)
	}
	if br.Results[1].Error == nil || br.Results[1].Error.Kind != "bad_request" {
		t.Fatalf("job 1 should carry a bad_request error, got %+v", br.Results[1])
	}
	if br.Results[2].Error != nil || br.Results[2].Result == nil {
		t.Fatalf("job 2 should have succeeded: %+v", br.Results[2].Error)
	}
}

// Batch-level failures: wrong method, malformed JSON, empty and
// oversized job arrays.
func TestBatchLevelErrors(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2, MaxBatchJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/optimize/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d, want 405", resp.StatusCode)
	}
	for _, bad := range []string{
		`{"jobs": []}`,
		`{"jobs": "nope"}`,
		`{}`,
		batchBody(t,
			map[string]any{"workload": map[string]any{"shape": "chain", "n": 6}},
			map[string]any{"workload": map[string]any{"shape": "chain", "n": 7}},
			map[string]any{"workload": map[string]any{"shape": "chain", "n": 8}},
		),
	} {
		resp, data := postBatch(t, ts.URL, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400 (%s)", bad, resp.StatusCode, data)
		}
	}
}

// A relabeled duplicate of a previously optimized instance is a
// canonical cache hit on /optimize: served cached, counted in
// server.cache.canonical_hits, with the sequence remapped into the
// requester's label space.
func TestCanonicalCacheHitOnRelabeledRequest(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, Metrics: reg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := testInstance(t, 7, 41)
	body := func(in *qon.Instance) string {
		data, err := json.Marshal(map[string]any{"job": map[string]any{"instance": in, "timeout_ms": 20000}})
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	resp, data := postJSON(t, ts.URL, body(base))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp.StatusCode, data)
	}
	first := decodeResult(t, data)
	if first.Cached || first.Fingerprint == "" {
		t.Fatalf("first request: cached=%v fingerprint=%q", first.Cached, first.Fingerprint)
	}

	rel := qon.Relabel(base, rand.New(rand.NewSource(42)).Perm(base.N()))
	resp, data = postJSON(t, ts.URL, body(rel))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("relabeled: %d %s", resp.StatusCode, data)
	}
	second := decodeResult(t, data)
	if !second.Cached {
		t.Fatalf("relabeled duplicate missed the cache: %s", data)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatalf("fingerprints differ across relabeling: %q vs %q", second.Fingerprint, first.Fingerprint)
	}
	if ch := reg.Counter(MetricCanonicalHits).Value(); ch != 1 {
		t.Fatalf("canonical_hits = %d, want 1", ch)
	}
	seq := qon.Sequence(second.Report.Best.Sequence)
	if !rel.ValidSequence(seq) {
		t.Fatalf("cached sequence %v invalid for the relabeled instance", seq)
	}
	if !costClose(rel.Cost(seq), second.Report.Best.Cost) {
		t.Fatalf("remapped sequence cost %v does not match reported %v", rel.Cost(seq), second.Report.Best.Cost)
	}
	if !costClose(rel.Cost(seq), first.Report.Best.Cost) {
		t.Fatalf("relabeled optimum %v differs from original %v", rel.Cost(seq), first.Report.Best.Cost)
	}

	// Byte-identical replays, by contrast, are plain hits: the
	// canonical counter must not move.
	resp, data = postJSON(t, ts.URL, body(base))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d %s", resp.StatusCode, data)
	}
	if !decodeResult(t, data).Cached {
		t.Fatal("byte-identical replay missed the cache")
	}
	if ch := reg.Counter(MetricCanonicalHits).Value(); ch != 1 {
		t.Fatalf("canonical_hits moved on a byte-identical replay: %d", ch)
	}
}

// Regression for the byte-identity key: the same request with JSON keys
// in a different order (and different whitespace) must hit.
func TestCacheHitIgnoresJSONKeyOrder(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, Metrics: reg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":6,"seed":9},"model":"qon","timeout_ms":20000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL, `{
		"timeout_ms": 20000,
		"model":      "qon",
		"workload":   {"seed": 9, "n": 6, "shape": "chain"}
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reordered: %d %s", resp.StatusCode, data)
	}
	if !decodeResult(t, data).Cached {
		t.Fatalf("reordered-key request missed the cache: %s", data)
	}
	if h, m := reg.Counter(MetricCacheHits).Value(), reg.Counter(MetricCacheMisses).Value(); h != 1 || m != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", h, m)
	}
}

// The unified job schema: {"job": {...}} is accepted on /optimize,
// mixing it with legacy top-level fields is rejected with a structured
// error document, and the legacy form keeps decoding.
func TestJobFormAndMixedFormRejection(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL, `{"job":{"workload":{"shape":"chain","n":6,"seed":5}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job form: %d %s", resp.StatusCode, data)
	}
	if res := decodeResult(t, data); res.Model != "qon" || res.Report == nil {
		t.Fatalf("job form served %s", data)
	}

	resp, data = postJSON(t, ts.URL, `{"job":{"workload":{"shape":"chain","n":6,"seed":5}},"model":"qon"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed form: %d, want 400 (%s)", resp.StatusCode, data)
	}
	var doc ErrorDoc
	if err := json.Unmarshal(data, &doc); err != nil || doc.Error.Kind != "bad_request" {
		t.Fatalf("mixed form error doc: %s", data)
	}

	resp, data = postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":6,"seed":5}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy form: %d %s", resp.StatusCode, data)
	}
}

// A batch whose jobs time out while queued yields per-job queue_deadline
// errors, not a hung or failed batch.
func TestBatchQueueDeadlinePerJob(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 1, QueueDepth: 8, DegradeAt: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only worker slot so batch groups queue.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := batchBody(t,
		map[string]any{"workload": map[string]any{"shape": "chain", "n": 6, "seed": 1}, "timeout_ms": 30},
	)
	resp, data := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	br := decodeBatch(t, data)
	if br.Results[0].Error == nil || br.Results[0].Error.Kind != "queue_deadline" {
		t.Fatalf("want per-job queue_deadline error, got %s", data)
	}
	if br.Results[0].Error.RetryAfterMS <= 0 {
		t.Fatalf("queue_deadline error carries no retry hint: %+v", br.Results[0].Error)
	}
}
