package server

// Rung is one step of the server's graceful-degradation ladder. The
// exact optimizers are super-polynomially expensive in the worst case
// while the paper guarantees the heuristics are sometimes badly
// suboptimal, so the exact-vs-heuristic trade-off is made explicitly,
// per request, from the load observed at admission:
//
//	RungFull      → full certified ensemble (exact DPs + heuristics)
//	RungHeuristic → exact optimizers shed; certified heuristic result,
//	                marked degraded in the response
//	RungShed      → request rejected outright with a structured
//	                503 + Retry-After document
//
// Requests arriving once the admission queue itself is full are not on
// the ladder at all: they get 429 + Retry-After (backpressure), the
// only rejection that promises the queue will have drained by then.
type Rung int

// The ladder's rungs, bottom to top.
const (
	RungFull Rung = iota
	RungHeuristic
	RungShed
)

// String names the rung for responses, spans and metrics.
func (r Rung) String() string {
	switch r {
	case RungFull:
		return "full"
	case RungHeuristic:
		return "heuristic"
	default:
		return "shed"
	}
}

// Degraded reports whether results served at this rung must carry
// degraded: true.
func (r Rung) Degraded() bool { return r == RungHeuristic }

// ladder places a load level (requests admitted and not yet answered,
// observed before this request joins) onto a rung. degradeAt and
// shedAt are the configured thresholds; shedAt ≤ 0 disables the shed
// rung (the queue bound alone backpressures).
func ladder(load, degradeAt, shedAt int) Rung {
	if shedAt > 0 && load >= shedAt {
		return RungShed
	}
	if load >= degradeAt {
		return RungHeuristic
	}
	return RungFull
}
