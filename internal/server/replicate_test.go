package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"approxqo/internal/cluster/replica"
	"approxqo/internal/engine"
	"approxqo/internal/num"
	"approxqo/internal/trace"
)

// replicaEntry builds a distinct valid certified entry (i varies the
// fingerprint and cost).
func replicaEntry(i int) *replica.Entry {
	n := 3
	seq := make([]int, n)
	for k := range seq {
		seq[k] = (k + 1) % n
	}
	return &replica.Entry{
		Key:    fmt.Sprintf("qon:%04x", i),
		RawKey: fmt.Sprintf("raw-%d", i),
		Report: &engine.Report{
			Model: "qon",
			N:     n,
			Best: &engine.BestRecord{
				Winner:    "dp",
				Sequence:  seq,
				Cost:      num.FromInt64(int64(100 + i)),
				Certified: true,
			},
		},
	}
}

func postCacheJSON(t *testing.T, url string, in, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return resp
}

// POST /cache/offer re-validates every entry at the trust boundary:
// certified entries are stored, tampered ones rejected per entry
// without voiding the rest of the chunk.
func TestCacheOfferValidatesAtTrustBoundary(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	good := replicaEntry(1)
	uncertified := replicaEntry(2)
	uncertified.Report.Best.Certified = false
	badPerm := replicaEntry(3)
	badPerm.Report.Best.Sequence = []int{0, 0, 2}

	var or replica.OfferResponse
	resp := postCacheJSON(t, ts.URL+"/cache/offer",
		&replica.OfferRequest{Entries: []*replica.Entry{good, uncertified, badPerm}}, &or)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offer status %d", resp.StatusCode)
	}
	if or.Accepted != 1 || or.Rejected != 2 {
		t.Fatalf("accepted/rejected = %d/%d, want 1/2", or.Accepted, or.Rejected)
	}
	if s.cache.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", s.cache.len())
	}
	if rep, raw, ok := s.cache.get(good.Key); !ok || raw != good.RawKey || !rep.Best.Certified {
		t.Fatalf("stored entry lookup = %v/%q/%v", rep, raw, ok)
	}
	if a, r := reg.Counter(MetricCacheOfferAccepted).Value(), reg.Counter(MetricCacheOfferRejected).Value(); a != 1 || r != 2 {
		t.Fatalf("offer metrics accepted/rejected = %d/%d", a, r)
	}

	// Malformed body → 400; GET → 405.
	resp, err = http.Post(ts.URL+"/cache/offer", "application/json", bytes.NewReader([]byte(`{"entries":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty offer status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/cache/offer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET offer status %d, want 405", resp.StatusCode)
	}
}

// The /cache/* surface is gated on the cache being enabled.
func TestCacheEndpointsDisabledCache(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/cache/offer", "/cache/digest", "/cache/keys", "/cache/export"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(`{}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s with disabled cache: status %d, want 503", path, resp.StatusCode)
		}
	}
}

// digest/keys/export round trip: digests over the full ring reflect
// the stored key set, keys enumerate it, export returns entries that
// re-validate — the handoff/repair pull path end to end.
func TestCacheDigestKeysExportRoundTrip(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var want []string
	for i := 0; i < 5; i++ {
		ent := replicaEntry(i)
		s.cache.put(ent.Key, ent.RawKey, ent.Report)
		want = append(want, ent.Key)
	}

	full := []replica.Range{{Lo: 0, Hi: 0}} // full circle
	var dr replica.DigestResponse
	if resp := postCacheJSON(t, ts.URL+"/cache/digest", &replica.DigestRequest{Ranges: full}, &dr); resp.StatusCode != http.StatusOK {
		t.Fatalf("digest status %d", resp.StatusCode)
	}
	if len(dr.Digests) != 1 || dr.Digests[0].Count != 5 {
		t.Fatalf("digest = %+v, want one range counting 5", dr.Digests)
	}
	if local := replica.DigestRanges(want, full); dr.Digests[0].Digest != local[0].Digest {
		t.Fatalf("endpoint digest %q != local digest %q", dr.Digests[0].Digest, local[0].Digest)
	}

	var kr replica.KeysResponse
	if resp := postCacheJSON(t, ts.URL+"/cache/keys", &replica.KeysRequest{Ranges: full}, &kr); resp.StatusCode != http.StatusOK {
		t.Fatalf("keys status %d", resp.StatusCode)
	}
	if len(kr.Keys) != 5 {
		t.Fatalf("keys returned %d, want 5", len(kr.Keys))
	}

	var er replica.ExportResponse
	if resp := postCacheJSON(t, ts.URL+"/cache/export", &replica.ExportRequest{Keys: kr.Keys}, &er); resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if len(er.Entries) != 5 {
		t.Fatalf("export returned %d entries, want 5", len(er.Entries))
	}
	for _, ent := range er.Entries {
		if err := ent.Validate(); err != nil {
			t.Fatalf("exported entry %q fails validation: %v", ent.Key, err)
		}
	}

	// Absent keys are omitted, not errors.
	var er2 replica.ExportResponse
	if resp := postCacheJSON(t, ts.URL+"/cache/export", &replica.ExportRequest{Keys: []string{"qon:missing", want[0]}}, &er2); resp.StatusCode != http.StatusOK {
		t.Fatalf("partial export status %d", resp.StatusCode)
	}
	if len(er2.Entries) != 1 || er2.Entries[0].Key != want[0] {
		t.Fatalf("partial export = %+v, want just %q", er2.Entries, want[0])
	}
}

// A certified /optimize store fans out to every peer named in
// X-Replicate-To — asynchronously, with the canonical-space copy that
// re-validates at the receiving trust boundary.
func TestReplicateFanOutOnStore(t *testing.T) {
	var mu sync.Mutex
	var got []*replica.Entry
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		off, err := replica.DecodeOffer(body, 0)
		if err != nil {
			t.Errorf("peer received undecodable offer: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		mu.Lock()
		got = append(got, off.Entries...)
		mu.Unlock()
		json.NewEncoder(w).Encode(&replica.OfferResponse{Accepted: len(off.Entries)})
	}))
	defer peer.Close()

	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, Metrics: reg, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize",
		bytes.NewReader([]byte(`{"workload":{"shape":"chain","n":6,"seed":3}}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ReplicateToHeader, peer.URL)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %s", resp.StatusCode, data)
	}
	res := decodeResult(t, data)
	if res.Report.Best == nil || !res.Report.Best.Certified {
		t.Fatalf("result not certified: %s", data)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never received the replicated entry (sent=%d errors=%d dropped=%d)",
				reg.Counter(MetricReplicateSent).Value(),
				reg.Counter(MetricReplicateErrors).Value(),
				reg.Counter(MetricReplicateDropped).Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	ent := got[0]
	mu.Unlock()
	if err := ent.Validate(); err != nil {
		t.Fatalf("replicated entry fails trust-boundary validation: %v", err)
	}
	if wantKey := "qon:" + res.Fingerprint; ent.Key != wantKey {
		t.Fatalf("replicated key %q, want %q", ent.Key, wantKey)
	}
	if reg.Counter(MetricReplicateSent).Value() < 1 {
		t.Fatal("replicate.sent not counted")
	}
}

// parseReplicaTo trims, drops empties and caps the peer count — a
// hostile header must not fan out unboundedly.
func TestParseReplicaTo(t *testing.T) {
	if got := parseReplicaTo(""); got != nil {
		t.Fatalf("empty header parsed to %v", got)
	}
	got := parseReplicaTo(" http://a:1/ ,, http://b:2 ")
	if want := []string{"http://a:1", "http://b:2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	many := "http://a,http://b,http://c,http://d,http://e,http://f"
	if got := parseReplicaTo(many); len(got) != maxReplicaPeers {
		t.Fatalf("hostile header parsed to %d peers, want cap %d", len(got), maxReplicaPeers)
	}
}
