package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxqo/internal/cluster/replica"
	"approxqo/internal/engine"
	"approxqo/internal/num"
	"approxqo/internal/trace"
)

// testClusterSecret authenticates test replication traffic.
const testClusterSecret = "test-secret"

// replicaEntry builds a distinct valid certified entry (i varies the
// fingerprint and cost).
func replicaEntry(i int) *replica.Entry {
	n := 3
	seq := make([]int, n)
	for k := range seq {
		seq[k] = (k + 1) % n
	}
	return &replica.Entry{
		Key:    fmt.Sprintf("qon:3:%04x", i),
		RawKey: fmt.Sprintf("raw-%d", i),
		Report: &engine.Report{
			Model: "qon",
			N:     n,
			Best: &engine.BestRecord{
				Winner:    "dp",
				Sequence:  seq,
				Cost:      num.FromInt64(int64(100 + i)),
				Certified: true,
			},
		},
	}
}

func postCacheJSON(t *testing.T, url string, in, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(replica.AuthHeader, testClusterSecret)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return resp
}

// POST /cache/offer re-validates every entry at the trust boundary:
// certified entries are stored, tampered ones rejected per entry
// without voiding the rest of the chunk.
func TestCacheOfferValidatesAtTrustBoundary(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, Metrics: reg, ClusterSecret: testClusterSecret})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	good := replicaEntry(1)
	uncertified := replicaEntry(2)
	uncertified.Report.Best.Certified = false
	badPerm := replicaEntry(3)
	badPerm.Report.Best.Sequence = []int{0, 0, 2}

	var or replica.OfferResponse
	resp := postCacheJSON(t, ts.URL+"/cache/offer",
		&replica.OfferRequest{Entries: []*replica.Entry{good, uncertified, badPerm}}, &or)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offer status %d", resp.StatusCode)
	}
	if or.Accepted != 1 || or.Rejected != 2 {
		t.Fatalf("accepted/rejected = %d/%d, want 1/2", or.Accepted, or.Rejected)
	}
	if s.cache.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", s.cache.len())
	}
	if rep, raw, ok := s.cache.get(good.Key); !ok || raw != good.RawKey || !rep.Best.Certified {
		t.Fatalf("stored entry lookup = %v/%q/%v", rep, raw, ok)
	}
	if a, r := reg.Counter(MetricCacheOfferAccepted).Value(), reg.Counter(MetricCacheOfferRejected).Value(); a != 1 || r != 2 {
		t.Fatalf("offer metrics accepted/rejected = %d/%d", a, r)
	}

	// Malformed body → 400; GET → 405.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/cache/offer", bytes.NewReader([]byte(`{"entries":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(replica.AuthHeader, testClusterSecret)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty offer status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/cache/offer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET offer status %d, want 405", resp.StatusCode)
	}
}

// The /cache/* surface is gated on the cache being enabled.
func TestCacheEndpointsDisabledCache(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/cache/offer", "/cache/digest", "/cache/keys", "/cache/export"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(`{}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s with disabled cache: status %d, want 503", path, resp.StatusCode)
		}
	}
}

// digest/keys/export round trip: digests over the full ring reflect
// the stored key set, keys enumerate it, export returns entries that
// re-validate — the handoff/repair pull path end to end.
func TestCacheDigestKeysExportRoundTrip(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2, ClusterSecret: testClusterSecret})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var want []string
	for i := 0; i < 5; i++ {
		ent := replicaEntry(i)
		s.cache.put(ent.Key, ent.RawKey, ent.Report)
		want = append(want, ent.Key)
	}

	full := []replica.Range{{Lo: 0, Hi: 0}} // full circle
	var dr replica.DigestResponse
	if resp := postCacheJSON(t, ts.URL+"/cache/digest", &replica.DigestRequest{Ranges: full}, &dr); resp.StatusCode != http.StatusOK {
		t.Fatalf("digest status %d", resp.StatusCode)
	}
	if len(dr.Digests) != 1 || dr.Digests[0].Count != 5 {
		t.Fatalf("digest = %+v, want one range counting 5", dr.Digests)
	}
	if local := replica.DigestRanges(want, full); dr.Digests[0].Digest != local[0].Digest {
		t.Fatalf("endpoint digest %q != local digest %q", dr.Digests[0].Digest, local[0].Digest)
	}

	var kr replica.KeysResponse
	if resp := postCacheJSON(t, ts.URL+"/cache/keys", &replica.KeysRequest{Ranges: full}, &kr); resp.StatusCode != http.StatusOK {
		t.Fatalf("keys status %d", resp.StatusCode)
	}
	if len(kr.Keys) != 5 {
		t.Fatalf("keys returned %d, want 5", len(kr.Keys))
	}

	var er replica.ExportResponse
	if resp := postCacheJSON(t, ts.URL+"/cache/export", &replica.ExportRequest{Keys: kr.Keys}, &er); resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if len(er.Entries) != 5 {
		t.Fatalf("export returned %d entries, want 5", len(er.Entries))
	}
	for _, ent := range er.Entries {
		if err := ent.Validate(); err != nil {
			t.Fatalf("exported entry %q fails validation: %v", ent.Key, err)
		}
	}

	// Absent keys are omitted, not errors.
	var er2 replica.ExportResponse
	if resp := postCacheJSON(t, ts.URL+"/cache/export", &replica.ExportRequest{Keys: []string{"qon:missing", want[0]}}, &er2); resp.StatusCode != http.StatusOK {
		t.Fatalf("partial export status %d", resp.StatusCode)
	}
	if len(er2.Entries) != 1 || er2.Entries[0].Key != want[0] {
		t.Fatalf("partial export = %+v, want just %q", er2.Entries, want[0])
	}
}

// A certified /optimize store fans out to every peer named in
// X-Replicate-To — asynchronously, with the canonical-space copy that
// re-validates at the receiving trust boundary.
func TestReplicateFanOutOnStore(t *testing.T) {
	var mu sync.Mutex
	var got []*replica.Entry
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		off, err := replica.DecodeOffer(body, 0)
		if err != nil {
			t.Errorf("peer received undecodable offer: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		mu.Lock()
		got = append(got, off.Entries...)
		mu.Unlock()
		json.NewEncoder(w).Encode(&replica.OfferResponse{Accepted: len(off.Entries)})
	}))
	defer peer.Close()

	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, Metrics: reg, Seed: 7, ClusterSecret: testClusterSecret})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize",
		bytes.NewReader([]byte(`{"workload":{"shape":"chain","n":6,"seed":3}}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ReplicateToHeader, peer.URL)
	req.Header.Set(replica.AuthHeader, testClusterSecret)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %s", resp.StatusCode, data)
	}
	res := decodeResult(t, data)
	if res.Report.Best == nil || !res.Report.Best.Certified {
		t.Fatalf("result not certified: %s", data)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never received the replicated entry (sent=%d errors=%d dropped=%d)",
				reg.Counter(MetricReplicateSent).Value(),
				reg.Counter(MetricReplicateErrors).Value(),
				reg.Counter(MetricReplicateDropped).Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	ent := got[0]
	mu.Unlock()
	if err := ent.Validate(); err != nil {
		t.Fatalf("replicated entry fails trust-boundary validation: %v", err)
	}
	if wantKey := "qon:6:" + res.Fingerprint; ent.Key != wantKey {
		t.Fatalf("replicated key %q, want %q", ent.Key, wantKey)
	}
	if reg.Counter(MetricReplicateSent).Value() < 1 {
		t.Fatal("replicate.sent not counted")
	}
}

// The /cache/* surface refuses unauthenticated requests: no secret,
// a wrong secret, and a server with no configured secret all yield
// 403 — the replication surface is never open to arbitrary clients.
func TestCacheEndpointsRequireClusterSecret(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2, ClusterSecret: testClusterSecret})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	paths := []string{"/cache/offer", "/cache/digest", "/cache/keys", "/cache/export"}
	for _, path := range paths {
		for _, secret := range []string{"", "wrong-secret"} {
			req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader([]byte(`{}`)))
			if err != nil {
				t.Fatal(err)
			}
			if secret != "" {
				req.Header.Set(replica.AuthHeader, secret)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusForbidden {
				t.Fatalf("%s with secret %q: status %d, want 403", path, secret, resp.StatusCode)
			}
		}
	}

	// A worker with no secret configured keeps the surface closed even
	// for requests that carry one — nothing can authenticate.
	open, err := New(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(open.Handler())
	defer ts2.Close()
	req, err := http.NewRequest(http.MethodPost, ts2.URL+"/cache/offer", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(replica.AuthHeader, "anything")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("secretless worker /cache/offer: status %d, want 403", resp.StatusCode)
	}
}

// X-Replicate-To from an unauthenticated client is ignored: the worker
// must not POST cache offers at URLs an arbitrary request names (the
// SSRF primitive the cluster secret closes).
func TestReplicateToIgnoredWithoutSecret(t *testing.T) {
	var hits atomic.Int32
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		json.NewEncoder(w).Encode(&replica.OfferResponse{})
	}))
	defer peer.Close()

	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, Metrics: reg, Seed: 7, ClusterSecret: testClusterSecret})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, secret := range []string{"", "wrong-secret"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize",
			bytes.NewReader([]byte(`{"workload":{"shape":"chain","n":6,"seed":3}}`)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ReplicateToHeader, peer.URL)
		if secret != "" {
			req.Header.Set(replica.AuthHeader, secret)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize with secret %q: status %d", secret, resp.StatusCode)
		}
	}
	// The request itself succeeded (and stored), so any fan-out would
	// have launched by now; give the async pool a moment to prove it
	// stays quiet.
	time.Sleep(50 * time.Millisecond)
	if n := hits.Load(); n != 0 {
		t.Fatalf("unauthenticated X-Replicate-To reached the peer %d times", n)
	}
	if sent := reg.Counter(MetricReplicateSent).Value(); sent != 0 {
		t.Fatalf("replicate.sent = %d, want 0", sent)
	}
}

// A poisoned cache entry — a certified report stored under a key whose
// instance is a different size — must be served as a miss, evicted and
// re-run, never panicking the hit path's label remap.
func TestCacheHitMismatchedEntryEvictedNotServed(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, Metrics: reg, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Resolve the real cache key of a 6-relation request, then plant a
	// self-consistent 3-relation certified report under it (what a
	// malicious offer would have stored before key↔report binding).
	body := []byte(`{"workload":{"shape":"chain","n":6,"seed":3}}`)
	req, err := DecodeRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey(req)
	if key == "" {
		t.Fatal("no cache key resolved")
	}
	poison := replicaEntry(1).Report // n=3, certified
	s.cache.put(key, "poison-raw", poison)

	resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %s", resp.StatusCode, data)
	}
	res := decodeResult(t, data)
	if res.Cached {
		t.Fatal("poisoned entry was served as a cache hit")
	}
	if res.N != 6 || res.Report.Best == nil || !res.Report.Best.Certified || len(res.Report.Best.Sequence) != 6 {
		t.Fatalf("re-run result wrong: %s", data)
	}
	if v := reg.Counter(MetricCacheMismatch).Value(); v != 1 {
		t.Fatalf("cache.mismatch = %d, want 1", v)
	}
	// The corrupt entry is gone; the re-run's real result replaced it.
	if rep, _, ok := s.cache.get(key); !ok || rep.N != 6 {
		t.Fatalf("cache after mismatch: ok=%v n=%d, want the 6-relation re-run", ok, rep.N)
	}
}

// parseReplicaTo trims, drops empties and caps the peer count — a
// hostile header must not fan out unboundedly.
func TestParseReplicaTo(t *testing.T) {
	if got := parseReplicaTo(""); got != nil {
		t.Fatalf("empty header parsed to %v", got)
	}
	got := parseReplicaTo(" http://a:1/ ,, http://b:2 ")
	if want := []string{"http://a:1", "http://b:2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	many := "http://a,http://b,http://c,http://d,http://e,http://f"
	if got := parseReplicaTo(many); len(got) != maxReplicaPeers {
		t.Fatalf("hostile header parsed to %d peers, want cap %d", len(got), maxReplicaPeers)
	}
}
