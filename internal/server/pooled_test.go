package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"approxqo/internal/workload"
)

// optimizeBody marshals an inline-instance /optimize request for a
// generated workload, the same shape the RegServe benchmarks use.
func optimizeBody(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	in, err := workload.Generate(workload.Params{N: n, Shape: workload.Random, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"job": map[string]any{"instance": in}})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func serveOptimize(h http.Handler, body []byte) (*httptest.ResponseRecorder, error) {
	req := httptest.NewRequest(http.MethodPost, "/optimize", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return w, fmt.Errorf("/optimize status %d: %s", w.Code, w.Body.Bytes())
	}
	return w, nil
}

// TestServeHitAllocBudget pins the allocation budget of the cache-hit
// serve path — the win the pooled request lifecycle and the dyadic
// renderer bought. Before PR 10 a warmed n=12 hit cost ~4215 allocs
// (deep-copied remap, big.Float JSON round-trip); the pooled path
// measures ~1260. The ceiling of 2000 keeps the full ≥2x headroom:
// anything above it means a pool stopped being used or the dyadic
// fast path stopped firing. benchdiff (BENCH_serve.json) gates the
// same number at 20%; this test is the in-`go test` tripwire that
// does not need a pinned baseline file.
func TestServeHitAllocBudget(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 4, DegradeAt: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	body := optimizeBody(t, 12, 11)
	if _, err := serveOptimize(h, body); err != nil {
		t.Fatal(err) // warm the certified-result cache
	}
	var failed atomic.Int64
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := serveOptimize(h, body); err != nil {
			failed.Add(1)
		}
	})
	if n := failed.Load(); n > 0 {
		t.Fatalf("%d cache-hit requests failed", n)
	}
	const budget = 2000
	if allocs > budget {
		t.Fatalf("cache-hit serve allocated %.0f objects/request, budget %d", allocs, budget)
	}
	t.Logf("cache-hit serve: %.0f allocs/request (budget %d)", allocs, budget)
}

// TestPooledServeNoBleed hammers the pooled serve path with concurrent
// requests over distinct instances and asserts every response carries
// its own request's identity. The pinned failure mode is pool bleed: a
// pooled Report shell or encoder buffer released too early and handed
// to another in-flight request, so client A reads client B's plan.
// Sizes differ across the working set, so a bled report is caught by
// the n/fingerprint/sequence-length checks even before the cost
// comparison. Run under -race this also exercises the release
// lifecycle (view release vs Report.Release aliasing) for ordering
// bugs.
func TestPooledServeNoBleed(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 4, QueueDepth: 256, DegradeAt: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Working set of distinct shapes and sizes: repeats hit the cache
	// (pooled view remap), first-seen run the engine (pooled report).
	type want struct {
		body        []byte
		n           int
		fingerprint string
		cost        string
		sequence    []int
	}
	ws := make([]*want, 6)
	for i := range ws {
		n := 7 + i
		w := &want{body: optimizeBody(t, n, int64(31+i)), n: n}
		rec, err := serveOptimize(h, w.body)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if res.Report == nil || res.Report.Best == nil || res.Fingerprint == "" {
			t.Fatalf("warm response missing report/fingerprint: %s", rec.Body.Bytes())
		}
		w.fingerprint = res.Fingerprint
		w.cost = res.Report.Best.Cost.String()
		w.sequence = append([]int(nil), res.Report.Best.Sequence...)
		ws[i] = w
	}

	const (
		workers = 8
		iters   = 120
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				w := ws[(g*iters+i)%len(ws)]
				rec, err := serveOptimize(h, w.body)
				if err != nil {
					errs <- err
					return
				}
				var res Result
				if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
					errs <- fmt.Errorf("worker %d: undecodable response: %v", g, err)
					return
				}
				if res.N != w.n || res.Fingerprint != w.fingerprint {
					errs <- fmt.Errorf("worker %d: got n=%d fp=%q, want n=%d fp=%q — pooled report bled across requests",
						g, res.N, res.Fingerprint, w.n, w.fingerprint)
					return
				}
				best := res.Report.Best
				if best == nil || len(best.Sequence) != w.n {
					errs <- fmt.Errorf("worker %d: n=%d response carries sequence %v", g, w.n, best)
					return
				}
				if got := best.Cost.String(); got != w.cost {
					errs <- fmt.Errorf("worker %d: n=%d cost %s, want %s", g, w.n, got, w.cost)
					return
				}
				seen := make([]bool, w.n)
				for _, v := range best.Sequence {
					if v < 0 || v >= w.n || seen[v] {
						errs <- fmt.Errorf("worker %d: sequence %v is not a permutation of 0..%d", g, best.Sequence, w.n-1)
						return
					}
					seen[v] = true
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
