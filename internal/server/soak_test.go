// Chaos soak: a fleet of ≥64 seeded loadgen clients hammers an
// in-process server whose every ensemble is wrapped with panic, stall
// and wrongcost faults, while the server is drained mid-load. The
// contract under test is the serving layer's core promise: every 200 is
// a certified, valid plan; every rejection is a structured 429/503
// document; graceful shutdown drains with zero dropped in-flight
// requests. The test is race-clean (go test -race ./internal/server).
package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/server"
	"approxqo/internal/server/loadgen"
	"approxqo/internal/trace"
)

const (
	soakClients     = 64
	soakReqsPerC    = 4
	soakChaosSpec   = "panic:greedy-min-cost,stall:kbz,wrongcost:annealing"
	soakDrainAfter  = (soakClients * soakReqsPerC) / 2 // responses before Shutdown fires
	soakMaxParallel = 4
)

// exactNames are the optimizers the heuristic rung must never run.
var exactNames = map[string]bool{
	"exhaustive":            true,
	"subset-dp":             true,
	"subset-dp-no-cross":    true,
	"subset-dp-parallel":    true,
	"iterative-improvement": true,
}

// soakRequest picks the j-th request of client i: mostly workload
// specs across shapes and sizes, with inline QO_H and deliberately
// invalid requests mixed in.
func soakRequest(t *testing.T, i, j int) (*server.Request, bool) {
	t.Helper()
	k := i*soakReqsPerC + j
	switch {
	case k%16 == 7: // invalid: two instance sources → 400
		var req server.Request
		body := `{"workload":{"shape":"chain","n":5},` +
			`"qoh_instance":{"query_graph":{"n":3,"edges":[[0,1],[1,2]]},` +
			`"sizes":["8","8","8"],"selectivities":[["1","0.5","1"],["0.5","1","0.5"],["1","0.5","1"]],"memory":"6"}}`
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("building invalid request: %v", err)
		}
		return &req, false
	case k%16 == 3: // inline QO_H
		var req server.Request
		body := `{"model":"qoh","qoh_instance":{"query_graph":{"n":3,"edges":[[0,1],[1,2]]},` +
			`"sizes":["8","8","8"],"selectivities":[["1","0.5","1"],["0.5","1","0.5"],["1","0.5","1"]],"memory":"6"}}`
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("building qoh request: %v", err)
		}
		return &req, true
	default:
		shapes := []string{"chain", "star", "cycle", "random"}
		return &server.Request{
			Workload: &server.WorkloadSpec{
				Shape:    shapes[k%len(shapes)],
				N:        4 + k%4,
				Seed:     int64(k),
				EdgeProb: 0.5,
			},
			TimeoutMS: 10_000,
		}, true
	}
}

// checkSuccess asserts the serving contract on one 200 response.
func checkSuccess(res *server.Result, wantQOH bool) error {
	if res == nil || res.Report == nil {
		return fmt.Errorf("200 without a result document")
	}
	best := res.Report.Best
	if best == nil {
		return fmt.Errorf("200 without a winning plan")
	}
	if !best.Certified {
		return fmt.Errorf("uncertified winner %q served as 200", best.Winner)
	}
	// The permanently faulted optimizers can never produce a certified
	// winner: greedy-min-cost always panics, annealing always lies about
	// its cost and fails the audit.
	if best.Winner == "greedy-min-cost" || best.Winner == "annealing" {
		if !wantQOH {
			return fmt.Errorf("chaos-wrapped optimizer %q won", best.Winner)
		}
	}
	if got := len(best.Sequence); got != res.N {
		return fmt.Errorf("winning sequence has %d relations, instance has %d", got, res.N)
	}
	seen := make([]bool, res.N)
	for _, r := range best.Sequence {
		if r < 0 || r >= res.N || seen[r] {
			return fmt.Errorf("winning sequence %v is not a permutation of 0..%d", best.Sequence, res.N-1)
		}
		seen[r] = true
	}
	if res.Degraded != (res.Rung == "heuristic") {
		return fmt.Errorf("degraded=%v disagrees with rung %q", res.Degraded, res.Rung)
	}
	if res.Degraded && !wantQOH {
		for _, run := range res.Report.Runs {
			if exactNames[run.Name] {
				return fmt.Errorf("degraded response ran exact optimizer %q", run.Name)
			}
		}
	}
	return nil
}

// checkCertifiedPlan asserts the chaos-free serving contract on one 200
// response: a certified winner whose sequence is a valid permutation,
// with degraded/rung agreement. It does not restrict the winner —
// that check belongs to the chaos soak, where specific optimizers are
// permanently faulted.
func checkCertifiedPlan(res *server.Result) error {
	if res == nil || res.Report == nil {
		return fmt.Errorf("200 without a result document")
	}
	best := res.Report.Best
	if best == nil {
		return fmt.Errorf("200 without a winning plan")
	}
	if !best.Certified {
		return fmt.Errorf("uncertified winner %q served as 200", best.Winner)
	}
	if got := len(best.Sequence); got != res.N {
		return fmt.Errorf("winning sequence has %d relations, instance has %d", got, res.N)
	}
	seen := make([]bool, res.N)
	for _, r := range best.Sequence {
		if r < 0 || r >= res.N || seen[r] {
			return fmt.Errorf("winning sequence %v is not a permutation of 0..%d", best.Sequence, res.N-1)
		}
		seen[r] = true
	}
	if res.Degraded != (res.Rung == "heuristic") {
		return fmt.Errorf("degraded=%v disagrees with rung %q", res.Degraded, res.Rung)
	}
	return nil
}

// checkRejection asserts the serving contract on one non-200 response.
func checkRejection(out *loadgen.Outcome, wantOK bool) error {
	if out.ErrDoc == nil || out.ErrDoc.Error.Kind == "" {
		return fmt.Errorf("status %d without a structured error document", out.Status)
	}
	kind := out.ErrDoc.Error.Kind
	switch out.Status {
	case http.StatusBadRequest:
		if wantOK {
			return fmt.Errorf("valid request rejected as %q: %s", kind, out.ErrDoc.Error.Message)
		}
		if kind != "bad_request" {
			return fmt.Errorf("400 with kind %q", kind)
		}
	case http.StatusTooManyRequests:
		if kind != "overloaded" {
			return fmt.Errorf("429 with kind %q", kind)
		}
	case http.StatusServiceUnavailable:
		if kind != "shed" && kind != "draining" && kind != "queue_deadline" {
			return fmt.Errorf("503 with kind %q", kind)
		}
	default:
		return fmt.Errorf("unexpected status %d (kind %q: %s)", out.Status, kind, out.ErrDoc.Error.Message)
	}
	return nil
}

func TestSoakChaosFleetWithMidLoadDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	reg := trace.NewRegistry()
	s, err := server.New(server.Config{
		MaxConcurrent:  soakMaxParallel,
		QueueDepth:     3 * soakMaxParallel,
		DegradeAt:      soakMaxParallel,
		DefaultTimeout: 10 * time.Second,
		DrainTimeout:   10 * time.Second,
		RetryAfter:     2 * time.Millisecond,
		Seed:           42,
		ChaosSpec:      soakChaosSpec,
		ChaosOptions:   []chaos.Option{chaos.WithStall(3 * time.Millisecond)},
		EngineGrace:    25 * time.Millisecond,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		answered  atomic.Int64 // responses observed fleet-wide
		oks       atomic.Int64
		degraded  atomic.Int64
		rejected  atomic.Int64
		drainGate = make(chan struct{}) // closed once, at the half-way mark
		gateOnce  sync.Once
		wg        sync.WaitGroup
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	errC := make(chan error, soakClients*soakReqsPerC)
	for i := 0; i < soakClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := loadgen.New(ts.URL, int64(1000+i))
			c.Retries = 5
			c.BaseBackoff = time.Millisecond
			c.MaxBackoff = 20 * time.Millisecond
			for j := 0; j < soakReqsPerC; j++ {
				req, wantOK := soakRequest(t, i, j)
				out, err := c.Optimize(ctx, req)
				if err != nil {
					errC <- fmt.Errorf("client %d request %d: %v", i, j, err)
					return
				}
				if answered.Add(1) == soakDrainAfter {
					gateOnce.Do(func() { close(drainGate) })
				}
				if out.OK() {
					oks.Add(1)
					if out.Result.Degraded {
						degraded.Add(1)
					}
					if err := checkSuccess(out.Result, req.QOHInstance != nil && wantOK); err != nil {
						errC <- fmt.Errorf("client %d request %d: %v", i, j, err)
					}
					continue
				}
				rejected.Add(1)
				if err := checkRejection(out, wantOK); err != nil {
					errC <- fmt.Errorf("client %d request %d: %v", i, j, err)
				}
			}
		}(i)
	}

	// Drain mid-load: half the fleet's responses are in, the other half
	// of the traffic is still arriving or in flight.
	select {
	case <-drainGate:
	case <-ctx.Done():
		t.Fatal("soak stalled before reaching the drain point")
	}
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer drainCancel()
	if err := s.Shutdown(drainCtx); err != nil {
		t.Fatalf("graceful shutdown dropped in-flight requests: %v", err)
	}
	if n := s.InFlight(); n != 0 {
		t.Fatalf("drain completed with %d request(s) still in flight", n)
	}

	wg.Wait()
	close(errC)
	failures := 0
	for err := range errC {
		failures++
		if failures <= 20 {
			t.Error(err)
		}
	}
	if failures > 20 {
		t.Errorf("... and %d more failures", failures-20)
	}

	total := answered.Load()
	if total != soakClients*soakReqsPerC {
		t.Fatalf("fleet sent %d requests but observed %d responses: requests were dropped",
			soakClients*soakReqsPerC, total)
	}
	if oks.Load() == 0 {
		t.Fatal("soak produced zero successful responses")
	}
	t.Logf("soak: %d responses (%d ok, %d degraded, %d rejected)",
		total, oks.Load(), degraded.Load(), rejected.Load())

	// Server-side accounting must balance: the fleet only POSTs, so
	// every hit was either admitted or rejected at admission (decode
	// failures are a subset of accepted), and the load gauges returned
	// to zero.
	requests := reg.Counter(server.MetricRequests).Value()
	accepted := reg.Counter(server.MetricAccepted).Value()
	rej := reg.Counter(server.MetricRejected).Value()
	bad := reg.Counter(server.MetricBadRequest).Value()
	if requests != accepted+rej {
		t.Errorf("admission invariant broken: requests=%d != accepted=%d + rejected=%d",
			requests, accepted, rej)
	}
	if bad > accepted {
		t.Errorf("bad_request=%d exceeds accepted=%d: decode failures counted outside admission", bad, accepted)
	}
	if v := reg.Gauge(server.MetricInFlight).Value(); v != 0 {
		t.Errorf("inflight gauge %d after drain, want 0", v)
	}
	if v := reg.Gauge(server.MetricQueueDepth).Value(); v != 0 {
		t.Errorf("queue depth gauge %d after drain, want 0", v)
	}
	if reg.Counter(server.MetricPanics).Value() != 0 {
		t.Error("handler panics escaped the engine's panic isolation")
	}
}

// Batch dedup under load: a fleet of batch clients, each carrying a
// seeded job mix with planted relabeled duplicates, hammers one server.
// Every job must come back certified and permutation-valid, every batch
// must report exactly its planted distinct-instance count as shapes
// (canonical dedup collapses the duplicates, nothing else collides),
// and the engine must run at most once per distinct shape fleet-wide.
func TestSoakBatchFleetDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		batchClients = 8
		batchJobs    = 12
	)
	reg := trace.NewRegistry()
	s, err := server.New(server.Config{
		MaxConcurrent:  soakMaxParallel,
		QueueDepth:     batchClients * batchJobs, // admit every group; dedup, not shedding, is under test
		DegradeAt:      batchClients * batchJobs,
		DefaultTimeout: 10 * time.Second,
		MaxBatchJobs:   batchJobs,
		Seed:           17,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var (
		wg            sync.WaitGroup
		totalDistinct atomic.Int64
	)
	errC := make(chan error, batchClients*batchJobs)
	for i := 0; i < batchClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs, distinct, err := loadgen.PlantedBatch(int64(500+i), batchJobs)
			if err != nil {
				errC <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			totalDistinct.Add(int64(distinct))
			c := loadgen.New(ts.URL, int64(2000+i))
			c.BaseBackoff = time.Millisecond
			c.MaxBackoff = 20 * time.Millisecond
			out, err := c.OptimizeBatch(ctx, &server.BatchRequest{Jobs: jobs})
			if err != nil {
				errC <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			if !out.OK() {
				errC <- fmt.Errorf("client %d: batch status %d (%+v)", i, out.Status, out.ErrDoc)
				return
			}
			br := out.Response
			if br.Jobs != batchJobs || br.Shapes != distinct {
				errC <- fmt.Errorf("client %d: jobs/shapes = %d/%d, want %d/%d",
					i, br.Jobs, br.Shapes, batchJobs, distinct)
			}
			for j, item := range br.Results {
				if item.Error != nil {
					errC <- fmt.Errorf("client %d job %d: %+v", i, j, item.Error)
					continue
				}
				// Unlike the chaos soak, no optimizer is faulted here, so
				// any certified winner is legitimate — check the certified
				// permutation contract, not the winner identity.
				if err := checkCertifiedPlan(item.Result); err != nil {
					errC <- fmt.Errorf("client %d job %d: %v", i, j, err)
					continue
				}
				if item.Result.Fingerprint == "" {
					errC <- fmt.Errorf("client %d job %d: no fingerprint on a batch result", i, j)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errC)
	failures := 0
	for err := range errC {
		failures++
		if failures <= 20 {
			t.Error(err)
		}
	}
	if failures > 20 {
		t.Errorf("... and %d more failures", failures-20)
	}

	// The engine-run bound is the batch API's whole point: planted
	// duplicates never reach the engine, and cross-batch repeats are
	// absorbed by the canonical cache.
	if runs, distinct := s.Engine().Health().Runs, totalDistinct.Load(); runs > distinct {
		t.Errorf("engine ran %d times for %d distinct shapes", runs, distinct)
	}
	if jobs := reg.Counter(server.MetricBatchJobs).Value(); jobs != batchClients*batchJobs {
		t.Errorf("batch jobs counter = %d, want %d", jobs, batchClients*batchJobs)
	}
	if v := reg.Gauge(server.MetricInFlight).Value(); v != 0 {
		t.Errorf("inflight gauge %d after the fleet drained, want 0", v)
	}
}
