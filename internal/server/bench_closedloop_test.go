package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxqo/internal/workload"
)

// BenchmarkServeClosedLoop64 drives the serving hot path the way a
// deployment sees it: 64 closed-loop clients over real loopback HTTP,
// each issuing its next request the moment the previous answer lands,
// against a warmed certified-result cache. One benchmark op is one
// request; the reported extras are the capacity headlines —
//
//	rps        completed requests per wall-clock second
//	p50_ms     median request latency
//	p99_ms     99th-percentile request latency (the soak tail)
//	B/req      heap bytes allocated per request, whole process
//	allocs/req heap objects allocated per request, whole process
//
// B/req and allocs/req come from runtime/metrics (/gc/heap/allocs:*),
// so they include the HTTP client side of the loop — a deliberate
// superset of -benchmem's view that catches transport-layer garbage
// too. The benchmark is deliberately NOT named BenchmarkReg*: its
// latency numbers depend on machine load, so it informs rather than
// gates; the allocation gate lives in BenchmarkRegServe* (benchdiff)
// and TestServeHitAllocBudget.
func BenchmarkServeClosedLoop64(b *testing.B) {
	const clients = 64
	s, err := New(Config{
		MaxConcurrent: runtime.GOMAXPROCS(0),
		QueueDepth:    4 * clients,
		DegradeAt:     4 * clients, // never degrade: every op is the full-rung hit path
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A small working set of distinct instances, all warmed into the
	// cache so the steady state measures the cache-hit serve path.
	bodies := make([][]byte, 4)
	for i := range bodies {
		in, err := workload.Generate(workload.Params{N: 12, Shape: workload.Random, Seed: int64(11 + i)})
		if err != nil {
			b.Fatal(err)
		}
		body, err := json.Marshal(map[string]any{"job": map[string]any{"instance": in}})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	post := func(body []byte) error {
		resp, err := client.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	for _, body := range bodies {
		if err := post(body); err != nil {
			b.Fatal(err)
		}
	}

	samples := []metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
	metrics.Read(samples)
	bytesBefore, objsBefore := samples[0].Value.Uint64(), samples[1].Value.Uint64()

	lat := make([]time.Duration, b.N)
	var next atomic.Int64
	var failed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				t0 := time.Now()
				if err := post(bodies[int(i)%len(bodies)]); err != nil {
					failed.Add(1)
					return
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d requests failed", n)
	}

	metrics.Read(samples)
	reqs := float64(b.N)
	b.ReportMetric(reqs/elapsed.Seconds(), "rps")
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return float64(lat[idx].Microseconds()) / 1000
	}
	b.ReportMetric(quantile(0.50), "p50_ms")
	b.ReportMetric(quantile(0.99), "p99_ms")
	b.ReportMetric(float64(samples[0].Value.Uint64()-bytesBefore)/reqs, "B/req")
	b.ReportMetric(float64(samples[1].Value.Uint64()-objsBefore)/reqs, "allocs/req")
}
