package server

import (
	"encoding/json"
	"fmt"
	"time"

	"approxqo/internal/qoh"
	"approxqo/internal/qon"
	"approxqo/internal/workload"
)

// Request size caps. The daemon is a shared resource: an instance too
// large to optimize within any sane deadline is rejected at the door
// with a 400 instead of burning a worker slot until the budget expires.
const (
	// MaxRequestN caps inline and generated QO_N instances.
	MaxRequestN = 32
	// MaxRequestQOHN caps inline QO_H instances (the pipeline DP is a
	// heavier cost model; qoh.MaxExhaustiveN bounds the exact searcher
	// separately).
	MaxRequestQOHN = 16
	// DefaultMaxBodyBytes bounds the request body the decoder will read.
	DefaultMaxBodyBytes = 1 << 20
)

// WorkloadSpec asks the server to generate a seeded random instance
// instead of shipping one inline — the full family grammar of the
// workload package: the basic topologies
// (chain|cycle|star|grid|clique|random) plus the paper-grounded
// families (skewed-star|chain-selective|sparse-em|cliquered-yes|
// cliquered-no). It is the server-side alias of workload.Spec.
type WorkloadSpec = workload.Spec

// Job is the unified tagged job object shared by POST /optimize
// (`{"job": {...}}`) and POST /optimize/batch (`{"jobs": [{...}, ...]}`).
// Exactly one instance source must be set: an inline QO_N instance (the
// qon decoder validates it), an inline QO_H instance, or a workload
// spec to generate from.
type Job struct {
	// Model is "qon" (default) or "qoh"; it must agree with the
	// instance source.
	Model string `json:"model,omitempty"`
	// Instance is an inline QO_N instance (qohard -out / qopt -file
	// format).
	Instance *qon.Instance `json:"instance,omitempty"`
	// QOHInstance is an inline QO_H instance.
	QOHInstance *qoh.Instance `json:"qoh_instance,omitempty"`
	// Workload generates a QO_N instance server-side (qoh generation is
	// not supported).
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// TimeoutMS is the per-request deadline budget in milliseconds,
	// clamped to the server's MaxTimeout; zero means the server's
	// DefaultTimeout. The budget covers queueing and optimization: when
	// it expires mid-run, anytime heuristics still deliver a certified
	// best-so-far result.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Route overrides the server's adaptive-routing default for this
	// job: true forces the structural classifier to pick the ensemble
	// subset, false forces the historical full ensemble. Nil inherits
	// the server configuration. QO_H jobs ignore it (the classifier is
	// a QO_N feature).
	Route *bool `json:"route,omitempty"`
}

// Request is the JSON body of POST /optimize: either a tagged job
// object under the "job" key, or — deprecated, kept decoding for one
// release — the same fields at the top level. Mixing the two forms is
// rejected with a structured error document.
type Request struct {
	// Job is the tagged form. When set, no legacy top-level field may
	// be present.
	Job *Job `json:"job,omitempty"`

	// Legacy top-level fields.
	//
	// Deprecated: send the same fields inside the "job" object instead;
	// the top-level form will stop decoding one release after the batch
	// API's introduction.
	Model       string        `json:"model,omitempty"`
	Instance    *qon.Instance `json:"instance,omitempty"`
	QOHInstance *qoh.Instance `json:"qoh_instance,omitempty"`
	Workload    *WorkloadSpec `json:"workload,omitempty"`
	TimeoutMS   int64         `json:"timeout_ms,omitempty"`
	Route       *bool         `json:"route,omitempty"`

	// Resolved state, computed at most once per request: the generated
	// workload instance and the canonical identity (fingerprint plus the
	// permutation into canonical label space).
	genQON *qon.Instance
	// replicaTo holds the coordinator-named ring successors that should
	// receive a copy of any certified result this request stores
	// (X-Replicate-To header; empty means no fan-out).
	replicaTo []string
	fpDone    bool
	fp        string
	perm      []int
	fpErr     error
}

// DecodeRequest parses and validates one request body. Errors are
// safe to echo to clients.
func DecodeRequest(data []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	if err := req.normalize(); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// normalize folds the tagged job form into the legacy working fields,
// rejecting bodies that mix the two forms (an ambiguous request is more
// likely a client bug than an intent).
func (r *Request) normalize() error {
	if r.Job == nil {
		return nil
	}
	if r.Model != "" || r.Instance != nil || r.QOHInstance != nil || r.Workload != nil || r.TimeoutMS != 0 || r.Route != nil {
		return fmt.Errorf("request mixes the job object with legacy top-level fields; send one form only (the top-level form is deprecated)")
	}
	r.Model, r.Instance, r.QOHInstance, r.Workload, r.TimeoutMS, r.Route =
		r.Job.Model, r.Job.Instance, r.Job.QOHInstance, r.Job.Workload, r.Job.TimeoutMS, r.Job.Route
	r.Job = nil
	return nil
}

// requestForJob wraps one batch job as a Request so the two endpoints
// share validation, budget resolution and canonical identity.
func requestForJob(j *Job) *Request {
	return &Request{
		Model:       j.Model,
		Instance:    j.Instance,
		QOHInstance: j.QOHInstance,
		Workload:    j.Workload,
		TimeoutMS:   j.TimeoutMS,
		Route:       j.Route,
	}
}

// Validate checks the cross-field constraints the per-instance decoders
// cannot see: exactly one instance source, model agreement, size caps,
// and a sane budget.
func (r *Request) Validate() error {
	sources := 0
	for _, set := range []bool{r.Instance != nil, r.QOHInstance != nil, r.Workload != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("request needs exactly one of instance, qoh_instance or workload (got %d)", sources)
	}
	switch r.Model {
	case "", "qon":
		if r.QOHInstance != nil {
			return fmt.Errorf("qoh_instance requires model %q", "qoh")
		}
	case "qoh":
		if r.QOHInstance == nil {
			return fmt.Errorf("model %q requires qoh_instance", "qoh")
		}
	default:
		return fmt.Errorf("unknown model %q (want qon or qoh)", r.Model)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be non-negative, got %d", r.TimeoutMS)
	}
	if in := r.Instance; in != nil {
		if err := in.Validate(); err != nil {
			return err
		}
		// The n ≥ 1 floor matters: an empty query_graph decodes to a
		// valid zero-relation instance (and JSON key matching is
		// case-insensitive, so "instAnCe" reaches this field too).
		if in.N() < 1 {
			return fmt.Errorf("instance has no relations")
		}
		if in.N() > MaxRequestN {
			return fmt.Errorf("instance has %d relations, cap is %d", in.N(), MaxRequestN)
		}
	}
	if in := r.QOHInstance; in != nil {
		if err := in.Validate(); err != nil {
			return err
		}
		if in.N() < 1 {
			return fmt.Errorf("qoh instance has no relations")
		}
		if in.N() > MaxRequestQOHN {
			return fmt.Errorf("qoh instance has %d relations, cap is %d", in.N(), MaxRequestQOHN)
		}
	}
	if w := r.Workload; w != nil {
		// The serving-layer size cap first, then the family grammar's
		// own semantic constraints (shape, edge_prob, tau, skew, …).
		if w.N > MaxRequestN {
			return fmt.Errorf("workload n=%d out of range [2, %d]", w.N, MaxRequestN)
		}
		if err := w.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// routeEnabled resolves the request's adaptive-routing switch: the
// job-level override when present, otherwise the server default. QO_H
// requests are never routed (the classifier is a QO_N feature).
func (r *Request) routeEnabled(def bool) bool {
	if r.model() == "qoh" {
		return false
	}
	if r.Route != nil {
		return *r.Route
	}
	return def
}

// model returns the effective model after validation.
func (r *Request) model() string {
	if r.QOHInstance != nil {
		return "qoh"
	}
	return "qon"
}

// ResolvedModel reports the effective model ("qon" or "qoh") after
// validation — the exported accessor the cluster coordinator routes by.
// (The Model field itself may be empty: it defaults to qon.)
func (r *Request) ResolvedModel() string { return r.model() }

// ResolveBudget resolves the request's deadline budget from timeout_ms
// and the given defaults, exactly as the serving layer does — exported
// so the coordinator propagates the same budget across the hop.
func (r *Request) ResolveBudget(def, max time.Duration) time.Duration {
	return r.budget(def, max)
}

// CanonicalID exposes the request's canonical identity (fingerprint,
// permutation into canonical label space, resolution error) to the
// cluster coordinator, which keys its consistent-hash routing on the
// fingerprint so relabeled duplicates land on the same shard. Like
// canonicalID, it is resolved at most once and is not safe for
// concurrent use on one Request.
func (r *Request) CanonicalID() (string, []int, error) { return r.canonicalID() }

// budget resolves the request's deadline from its timeout_ms and the
// server's defaults.
func (r *Request) budget(def, max time.Duration) time.Duration {
	d := time.Duration(r.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// qonInstance resolves the QO_N instance to optimize — inline or
// generated from the workload spec. Generation happens at most once
// per request; the canonical-identity path and the engine run share
// the same instance.
func (r *Request) qonInstance() (*qon.Instance, error) {
	if r.Instance != nil {
		return r.Instance, nil
	}
	if r.genQON != nil {
		return r.genQON, nil
	}
	in, err := r.Workload.Generate()
	if err != nil {
		return nil, err
	}
	r.genQON = in
	return in, nil
}

// canonicalID resolves the request's canonical identity: the
// graph-invariant instance fingerprint and the permutation pi mapping
// the request's relation labels into canonical space (pi[v] = canonical
// label of request label v). Both are computed at most once per
// request. Not safe for concurrent use on one Request — resolve before
// sharing across goroutines.
func (r *Request) canonicalID() (string, []int, error) {
	if r.fpDone {
		return r.fp, r.perm, r.fpErr
	}
	r.fpDone = true
	if r.model() == "qoh" {
		r.fp, r.perm = qoh.CanonicalID(r.QOHInstance)
		return r.fp, r.perm, nil
	}
	in, err := r.qonInstance()
	if err != nil {
		r.fpErr = err
		return "", nil, err
	}
	r.fp, r.perm = qon.CanonicalID(in)
	return r.fp, r.perm, nil
}

// BatchRequest is the JSON body of POST /optimize/batch.
type BatchRequest struct {
	// Jobs are processed as one admission group per distinct instance
	// shape; results come back in job order.
	Jobs []*Job `json:"jobs"`
}

// DecodeBatchRequest parses one batch body and applies the batch-level
// constraints (well-formed JSON, 1..maxJobs jobs). Per-job validation
// is the handler's job — one invalid job yields a per-job error
// document, not a batch-level failure.
func DecodeBatchRequest(data []byte, maxJobs int) (*BatchRequest, error) {
	var br BatchRequest
	if err := json.Unmarshal(data, &br); err != nil {
		return nil, fmt.Errorf("decoding batch request: %w", err)
	}
	if len(br.Jobs) == 0 {
		return nil, fmt.Errorf("batch request needs a non-empty jobs array")
	}
	if maxJobs > 0 && len(br.Jobs) > maxJobs {
		return nil, fmt.Errorf("batch has %d jobs, cap is %d", len(br.Jobs), maxJobs)
	}
	for i, j := range br.Jobs {
		if j == nil {
			return nil, fmt.Errorf("job %d is null", i)
		}
	}
	return &br, nil
}
