package server

import (
	"encoding/json"
	"fmt"
	"time"

	"approxqo/internal/qoh"
	"approxqo/internal/qon"
	"approxqo/internal/workload"
)

// Request size caps. The daemon is a shared resource: an instance too
// large to optimize within any sane deadline is rejected at the door
// with a 400 instead of burning a worker slot until the budget expires.
const (
	// MaxRequestN caps inline and generated QO_N instances.
	MaxRequestN = 32
	// MaxRequestQOHN caps inline QO_H instances (the pipeline DP is a
	// heavier cost model; qoh.MaxExhaustiveN bounds the exact searcher
	// separately).
	MaxRequestQOHN = 16
	// DefaultMaxBodyBytes bounds the request body the decoder will read.
	DefaultMaxBodyBytes = 1 << 20
)

// WorkloadSpec asks the server to generate a seeded random instance
// instead of shipping one inline — the shape grammar of the workload
// package (chain|cycle|star|grid|clique|random).
type WorkloadSpec struct {
	Shape    string  `json:"shape"`
	N        int     `json:"n"`
	Seed     int64   `json:"seed,omitempty"`
	EdgeProb float64 `json:"edge_prob,omitempty"`
}

// Request is the JSON body of POST /optimize. Exactly one instance
// source must be set: an inline QO_N instance (the qon decoder
// validates it), an inline QO_H instance, or a workload spec to
// generate from.
type Request struct {
	// Model is "qon" (default) or "qoh"; it must agree with the
	// instance source.
	Model string `json:"model,omitempty"`
	// Instance is an inline QO_N instance (qohard -out / qopt -file
	// format).
	Instance *qon.Instance `json:"instance,omitempty"`
	// QOHInstance is an inline QO_H instance.
	QOHInstance *qoh.Instance `json:"qoh_instance,omitempty"`
	// Workload generates a QO_N instance server-side (qoh generation is
	// not supported).
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// TimeoutMS is the per-request deadline budget in milliseconds,
	// clamped to the server's MaxTimeout; zero means the server's
	// DefaultTimeout. The budget covers queueing and optimization: when
	// it expires mid-run, anytime heuristics still deliver a certified
	// best-so-far result.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DecodeRequest parses and validates one request body. Errors are
// safe to echo to clients.
func DecodeRequest(data []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate checks the cross-field constraints the per-instance decoders
// cannot see: exactly one instance source, model agreement, size caps,
// and a sane budget.
func (r *Request) Validate() error {
	sources := 0
	for _, set := range []bool{r.Instance != nil, r.QOHInstance != nil, r.Workload != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("request needs exactly one of instance, qoh_instance or workload (got %d)", sources)
	}
	switch r.Model {
	case "", "qon":
		if r.QOHInstance != nil {
			return fmt.Errorf("qoh_instance requires model %q", "qoh")
		}
	case "qoh":
		if r.QOHInstance == nil {
			return fmt.Errorf("model %q requires qoh_instance", "qoh")
		}
	default:
		return fmt.Errorf("unknown model %q (want qon or qoh)", r.Model)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be non-negative, got %d", r.TimeoutMS)
	}
	if in := r.Instance; in != nil {
		if err := in.Validate(); err != nil {
			return err
		}
		// The n ≥ 1 floor matters: an empty query_graph decodes to a
		// valid zero-relation instance (and JSON key matching is
		// case-insensitive, so "instAnCe" reaches this field too).
		if in.N() < 1 {
			return fmt.Errorf("instance has no relations")
		}
		if in.N() > MaxRequestN {
			return fmt.Errorf("instance has %d relations, cap is %d", in.N(), MaxRequestN)
		}
	}
	if in := r.QOHInstance; in != nil {
		if err := in.Validate(); err != nil {
			return err
		}
		if in.N() < 1 {
			return fmt.Errorf("qoh instance has no relations")
		}
		if in.N() > MaxRequestQOHN {
			return fmt.Errorf("qoh instance has %d relations, cap is %d", in.N(), MaxRequestQOHN)
		}
	}
	if w := r.Workload; w != nil {
		if w.N < 2 || w.N > MaxRequestN {
			return fmt.Errorf("workload n=%d out of range [2, %d]", w.N, MaxRequestN)
		}
		if w.EdgeProb < 0 || w.EdgeProb > 1 {
			return fmt.Errorf("workload edge_prob=%g out of range [0, 1]", w.EdgeProb)
		}
		valid := false
		for _, s := range workload.Shapes() {
			if workload.Shape(w.Shape) == s {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("unknown workload shape %q (have %v)", w.Shape, workload.Shapes())
		}
	}
	return nil
}

// model returns the effective model after validation.
func (r *Request) model() string {
	if r.QOHInstance != nil {
		return "qoh"
	}
	return "qon"
}

// budget resolves the request's deadline from its timeout_ms and the
// server's defaults.
func (r *Request) budget(def, max time.Duration) time.Duration {
	d := time.Duration(r.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// qonInstance resolves the QO_N instance to optimize — inline or
// generated from the workload spec.
func (r *Request) qonInstance() (*qon.Instance, error) {
	if r.Instance != nil {
		return r.Instance, nil
	}
	w := r.Workload
	return workload.Generate(workload.Params{
		N:        w.N,
		Shape:    workload.Shape(w.Shape),
		Seed:     w.Seed,
		EdgeProb: w.EdgeProb,
	})
}
