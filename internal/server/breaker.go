package server

import (
	"sort"
	"sync"
	"time"
)

// Breaker is a per-optimizer circuit breaker layered over the engine's
// per-run quarantine. Quarantine benches a misbehaving optimizer for
// the remainder of one run; the breaker remembers across requests — an
// optimizer that keeps getting quarantined (or keeps failing without a
// certified result) is left out of subsequent ensembles entirely until
// a cooldown lapses, so a wedged or compromised component stops
// costing every request its retries and grace windows.
type Breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // how long an open circuit stays open
	now       func() time.Time

	mu    sync.Mutex
	state map[string]*breakerState
}

type breakerState struct {
	consecutive int
	openUntil   time.Time
}

// DefaultBreakerThreshold and DefaultBreakerCooldown are the breaker's
// defaults: three consecutive failed requests open the circuit for
// five seconds.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

// NewBreaker builds a breaker; non-positive arguments take the
// defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     make(map[string]*breakerState),
	}
}

// Allow reports whether the named optimizer may join the next
// ensemble. An open circuit whose cooldown has lapsed half-opens: the
// optimizer is admitted again, and the next Record decides whether the
// circuit closes or re-opens.
func (b *Breaker) Allow(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state[name]
	if st == nil {
		return true
	}
	return !st.openUntil.After(b.now())
}

// Record folds one request's outcome for the named optimizer into the
// breaker: ok resets the consecutive-failure count and closes the
// circuit; a failure increments it and opens the circuit at the
// threshold.
func (b *Breaker) Record(name string, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state[name]
	if st == nil {
		st = &breakerState{}
		b.state[name] = st
	}
	if ok {
		st.consecutive = 0
		st.openUntil = time.Time{}
		return
	}
	st.consecutive++
	if st.consecutive >= b.threshold {
		st.openUntil = b.now().Add(b.cooldown)
	}
}

// Open lists the optimizers whose circuits are currently open, sorted
// by name — the /readyz payload.
func (b *Breaker) Open() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	var open []string
	for name, st := range b.state {
		if st.openUntil.After(now) {
			open = append(open, name)
		}
	}
	sort.Strings(open)
	return open
}
