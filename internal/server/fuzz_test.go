package server

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzServerRequestJSON mirrors qon's FuzzInstanceJSON for the daemon's
// request decoder: arbitrary JSON must never panic DecodeRequest, and
// every accepted request must be internally consistent — it validates,
// resolves a budget within the configured bounds, produces a valid
// instance, and survives a marshal/decode round trip.
func FuzzServerRequestJSON(f *testing.F) {
	f.Add(`{"workload":{"shape":"chain","n":5}}`)
	f.Add(`{"workload":{"shape":"random","n":8,"seed":7,"edge_prob":0.5},"timeout_ms":250}`)
	f.Add(`{"model":"qon","instance":{"query_graph":{"n":2,"edges":[[0,1]]},"sizes":["2","2"],` +
		`"selectivities":[["1","2"],["2","1"]],"access_costs":[["2","2"],["2","2"]]}}`)
	f.Add(`{"model":"qoh","qoh_instance":{"query_graph":{"n":3,"edges":[[0,1],[1,2]]},` +
		`"sizes":["8","8","8"],"selectivities":[["1","0.5","1"],["0.5","1","0.5"],["1","0.5","1"]],"memory":"6"}}`)
	f.Add(`{"workload":{"shape":"chain","n":5},"instance":{"query_graph":{"n":2,"edges":[[0,1]]}}}`)
	f.Add(`{"workload":{"shape":"pentagon","n":5}}`)
	f.Add(`{"workload":{"shape":"chain","n":5},"timeout_ms":-1}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		req, err := DecodeRequest([]byte(input))
		if err != nil {
			return
		}
		// Accepted requests were validated on decode; Validate must agree
		// with itself on a second pass.
		if err := req.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid request: %v", err)
		}
		if m := req.model(); m != "qon" && m != "qoh" {
			t.Fatalf("accepted request resolves to unknown model %q", m)
		}
		def, max := 2*time.Second, 30*time.Second
		if d := req.budget(def, max); d <= 0 || d > max {
			t.Fatalf("budget %v out of range (0, %v]", d, max)
		}
		if req.model() == "qon" {
			in, err := req.qonInstance()
			if err != nil {
				t.Fatalf("accepted qon request failed to resolve an instance: %v", err)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("accepted request produced an invalid instance: %v", err)
			}
			if n := in.N(); n < 1 || n > MaxRequestN {
				t.Fatalf("accepted request produced instance with n=%d, cap %d", n, MaxRequestN)
			}
		}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal of accepted request: %v", err)
		}
		back, err := DecodeRequest(data)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if back.model() != req.model() {
			t.Fatalf("round trip changed model: %q -> %q", req.model(), back.model())
		}
		if back.budget(def, max) != req.budget(def, max) {
			t.Fatal("round trip changed the deadline budget")
		}
	})
}
