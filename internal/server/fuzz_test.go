package server

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzServerRequestJSON mirrors qon's FuzzInstanceJSON for the daemon's
// request decoder: arbitrary JSON must never panic DecodeRequest, and
// every accepted request must be internally consistent — it validates,
// resolves a budget within the configured bounds, produces a valid
// instance, and survives a marshal/decode round trip.
func FuzzServerRequestJSON(f *testing.F) {
	f.Add(`{"workload":{"shape":"chain","n":5}}`)
	f.Add(`{"workload":{"shape":"random","n":8,"seed":7,"edge_prob":0.5},"timeout_ms":250}`)
	f.Add(`{"model":"qon","instance":{"query_graph":{"n":2,"edges":[[0,1]]},"sizes":["2","2"],` +
		`"selectivities":[["1","2"],["2","1"]],"access_costs":[["2","2"],["2","2"]]}}`)
	f.Add(`{"model":"qoh","qoh_instance":{"query_graph":{"n":3,"edges":[[0,1],[1,2]]},` +
		`"sizes":["8","8","8"],"selectivities":[["1","0.5","1"],["0.5","1","0.5"],["1","0.5","1"]],"memory":"6"}}`)
	f.Add(`{"workload":{"shape":"chain","n":5},"instance":{"query_graph":{"n":2,"edges":[[0,1]]}}}`)
	f.Add(`{"workload":{"shape":"pentagon","n":5}}`)
	f.Add(`{"workload":{"shape":"chain","n":5},"timeout_ms":-1}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		req, err := DecodeRequest([]byte(input))
		if err != nil {
			return
		}
		// Accepted requests were validated on decode; Validate must agree
		// with itself on a second pass.
		if err := req.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid request: %v", err)
		}
		if m := req.model(); m != "qon" && m != "qoh" {
			t.Fatalf("accepted request resolves to unknown model %q", m)
		}
		def, max := 2*time.Second, 30*time.Second
		if d := req.budget(def, max); d <= 0 || d > max {
			t.Fatalf("budget %v out of range (0, %v]", d, max)
		}
		if req.model() == "qon" {
			in, err := req.qonInstance()
			if err != nil {
				t.Fatalf("accepted qon request failed to resolve an instance: %v", err)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("accepted request produced an invalid instance: %v", err)
			}
			if n := in.N(); n < 1 || n > MaxRequestN {
				t.Fatalf("accepted request produced instance with n=%d, cap %d", n, MaxRequestN)
			}
		}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal of accepted request: %v", err)
		}
		back, err := DecodeRequest(data)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if back.model() != req.model() {
			t.Fatalf("round trip changed model: %q -> %q", req.model(), back.model())
		}
		if back.budget(def, max) != req.budget(def, max) {
			t.Fatal("round trip changed the deadline budget")
		}
	})
}

// FuzzBatchRequestJSON covers the batch decoder: arbitrary JSON must
// never panic DecodeBatchRequest, and every accepted batch must honour
// the batch-level contract — 1..maxJobs non-null jobs, a marshal/decode
// round trip that preserves the job count, and, for each job that
// validates, a resolvable model, an in-range budget, and a canonical
// identity that is deterministic across calls.
func FuzzBatchRequestJSON(f *testing.F) {
	f.Add(`{"jobs":[{"workload":{"shape":"chain","n":5}}]}`)
	f.Add(`{"jobs":[{"workload":{"shape":"star","n":6,"seed":3},"timeout_ms":250},` +
		`{"workload":{"shape":"star","n":6,"seed":3}}]}`)
	f.Add(`{"jobs":[{"model":"qon","instance":{"query_graph":{"n":2,"edges":[[0,1]]},"sizes":["2","2"],` +
		`"selectivities":[["1","2"],["2","1"]],"access_costs":[["2","2"],["2","2"]]}}]}`)
	f.Add(`{"jobs":[{"model":"qoh","qoh_instance":{"query_graph":{"n":3,"edges":[[0,1],[1,2]]},` +
		`"sizes":["8","8","8"],"selectivities":[["1","0.5","1"],["0.5","1","0.5"],["1","0.5","1"]],"memory":"6"}}]}`)
	f.Add(`{"jobs":[{"workload":{"shape":"chain","n":5}},{"model":"nonsense"}]}`)
	f.Add(`{"jobs":[]}`)
	f.Add(`{"jobs":[null]}`)
	f.Add(`{"jobs":"nope"}`)
	f.Add(`{}`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		const maxJobs = 8
		br, err := DecodeBatchRequest([]byte(input), maxJobs)
		if err != nil {
			return
		}
		if len(br.Jobs) == 0 || len(br.Jobs) > maxJobs {
			t.Fatalf("decoder accepted %d jobs outside [1, %d]", len(br.Jobs), maxJobs)
		}
		def, max := 2*time.Second, 30*time.Second
		for i, job := range br.Jobs {
			if job == nil {
				t.Fatalf("decoder accepted a null job at index %d", i)
			}
			req := requestForJob(job)
			if err := req.Validate(); err != nil {
				continue // per-job failure: the handler answers it with an error doc
			}
			if m := req.model(); m != "qon" && m != "qoh" {
				t.Fatalf("job %d resolves to unknown model %q", i, m)
			}
			if d := req.budget(def, max); d <= 0 || d > max {
				t.Fatalf("job %d budget %v out of range (0, %v]", i, d, max)
			}
			// Canonicalization cost grows with instance size; bound the
			// per-input work so the fuzzer keeps its throughput.
			if req.model() == "qon" {
				if in, err := req.qonInstance(); err != nil || in.N() > 12 {
					continue
				}
			} else if job.QOHInstance.N() > 12 {
				continue
			}
			fp, perm, err := req.canonicalID()
			if err != nil {
				continue // ungenerable workload: the handler skips caching
			}
			if fp == "" {
				t.Fatalf("job %d canonicalized to an empty fingerprint", i)
			}
			fp2, _, _ := requestForJob(job).canonicalID()
			if fp2 != fp {
				t.Fatalf("job %d fingerprint not deterministic: %q vs %q", i, fp, fp2)
			}
			if req.model() == "qon" {
				in, _ := req.qonInstance()
				if len(perm) != in.N() {
					t.Fatalf("job %d permutation has %d entries for n=%d", i, len(perm), in.N())
				}
			}
		}
		data, err := json.Marshal(br)
		if err != nil {
			t.Fatalf("marshal of accepted batch: %v", err)
		}
		back, err := DecodeBatchRequest(data, maxJobs)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if len(back.Jobs) != len(br.Jobs) {
			t.Fatalf("round trip changed job count: %d -> %d", len(br.Jobs), len(back.Jobs))
		}
	})
}
