package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"approxqo/internal/cluster/replica"
	"approxqo/internal/engine"
	"approxqo/internal/qoh"
	"approxqo/internal/qon"
)

// DefaultCacheSize is the result-cache capacity when Config.CacheSize
// is zero. Each entry is one engine report — a few KB — so the default
// is sized for memory headroom, not hit rate.
const DefaultCacheSize = 256

// Cache metric names. Hits and misses partition the cache lookups of
// accepted, well-formed requests when caching is enabled; neither is
// touched when the cache is disabled or bypassed (chaos injection).
// Canonical hits are the subset of hits the fingerprint keying earned:
// the stored entry was produced by a request whose raw JSON source
// differed (a relabeling, reordered keys, different whitespace), so a
// byte-identity cache would have missed.
const (
	MetricCacheHits     = "server.cache.hits"
	MetricCacheMisses   = "server.cache.misses"
	MetricCanonicalHits = "server.cache.canonical_hits"
	// MetricCacheMismatch counts hits whose stored report disagreed with
	// the requesting instance's size — a corrupt or poisoned entry that
	// key↔report binding should make impossible. The entry is evicted
	// and the request falls through to a real run; a nonzero counter is
	// an integrity alarm, not a performance signal.
	MetricCacheMismatch = "server.cache.mismatch"
)

// cacheKey keys the request's instance identity: the model, the
// instance size, and the graph-invariant canonical fingerprint of the
// resolved instance (replica.Key), deliberately excluding timeout_ms —
// a certified full-rung result is a pure function of the instance (up
// to heuristic seeds, which only certified winners survive), so it is
// valid for any later budget. Because the fingerprint is
// relabel-invariant, cosmetically different and relabeled duplicates
// map to the same key; stored reports live in canonical label space
// and are remapped per requester (see serveAdmitted). Encoding the
// size in the key lets the replication trust boundary bind an offered
// key to its report (replica.Entry.Validate).
func cacheKey(req *Request) string {
	fp, perm, err := req.canonicalID()
	if err != nil {
		return "" // ungenerable workload: skip caching, never fail the request
	}
	return replica.Key(req.model(), len(perm), fp)
}

// rawSourceKey hashes the decoded request's literal instance source —
// the pre-canonicalization identity. The cache stores it alongside each
// entry purely for attribution: a hit whose stored rawSourceKey differs
// from the requester's is a canonical hit.
func rawSourceKey(req *Request) string {
	src := struct {
		Model    string        `json:"model"`
		Instance *qon.Instance `json:"instance,omitempty"`
		QOH      *qoh.Instance `json:"qoh,omitempty"`
		Workload *WorkloadSpec `json:"workload,omitempty"`
	}{Model: req.model(), Instance: req.Instance, QOH: req.QOHInstance, Workload: req.Workload}
	data, err := json.Marshal(&src)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// cacheEntry is one stored result: the full engine report of a
// certified, full-rung run, with Best.Sequence remapped into the
// instance's canonical label space, plus the raw source key of the
// request that produced it (canonical-hit attribution).
type cacheEntry struct {
	key    string
	rawKey string
	rep    *engine.Report
}

// resultCache is a mutex-guarded LRU over canonical instance keys.
// Stored reports are treated as immutable by all readers (handlers only
// marshal them), so one *engine.Report may be served concurrently.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key → element holding *cacheEntry
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*engine.Report, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.rep, ent.rawKey, true
}

func (c *resultCache) put(key, rawKey string, rep *engine.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.rep, ent.rawKey = rep, rawKey
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, rawKey: rawKey, rep: rep})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
}

// evict drops one entry by key, if present. The serving layer calls it
// when a hit fails the size-binding check — a stored report that
// disagrees with its own key is corrupt and must not be served again.
func (c *resultCache) evict(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// len reports the number of cached entries (tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// keys snapshots every cached key, MRU first. The replication
// endpoints digest and enumerate over this snapshot; entries evicted
// between the snapshot and a later export are simply omitted.
func (c *resultCache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// export looks entries up by key for replication, skipping absentees.
// The returned reports are the cache's own immutable values — callers
// marshal them, never mutate. Lookups do not touch LRU order: a repair
// sweep reading the whole cache must not launder cold entries into
// looking hot.
func (c *resultCache) export(keys []string) []*replica.Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*replica.Entry, 0, len(keys))
	for _, k := range keys {
		if el, ok := c.items[k]; ok {
			ent := el.Value.(*cacheEntry)
			out = append(out, &replica.Entry{Key: ent.key, RawKey: ent.rawKey, Report: ent.rep})
		}
	}
	return out
}

// flightGroup deduplicates concurrent identical requests: the first
// caller for a key becomes the leader and runs the ensemble; followers
// block on the leader's completion and then re-check the result cache.
// If the leader's result was not cacheable (degraded rung, error, chaos)
// the next waiter is promoted to leader and runs itself, so dedup can
// delay a duplicate but never lose one. Hand-rolled because the module
// carries no external singleflight dependency.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join registers interest in key. It returns the call to wait on and
// whether the caller is the leader (and therefore must call leave when
// its run — successful or not — is over).
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// leave ends the leader's flight, releasing every follower.
func (g *flightGroup) leave(key string, c *flightCall) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}
