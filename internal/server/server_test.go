package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"approxqo/internal/chaos"
	"approxqo/internal/trace"
)

func TestLadderRungs(t *testing.T) {
	cases := []struct {
		load, degradeAt, shedAt int
		want                    Rung
	}{
		{0, 2, 0, RungFull},
		{1, 2, 0, RungFull},
		{2, 2, 0, RungHeuristic},
		{99, 2, 0, RungHeuristic}, // shed disabled: queue bound backpressures
		{2, 2, 4, RungHeuristic},
		{4, 2, 4, RungShed},
		{9, 2, 4, RungShed},
	}
	for _, c := range cases {
		if got := ladder(c.load, c.degradeAt, c.shedAt); got != c.want {
			t.Errorf("ladder(%d,%d,%d) = %v, want %v", c.load, c.degradeAt, c.shedAt, got, c.want)
		}
	}
	if RungFull.Degraded() || !RungHeuristic.Degraded() || RungShed.Degraded() {
		t.Error("Degraded() must mark exactly the heuristic rung")
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	if !b.Allow("kbz") {
		t.Fatal("unknown optimizer must be allowed")
	}
	b.Record("kbz", false)
	if !b.Allow("kbz") {
		t.Fatal("one failure below threshold must not open the circuit")
	}
	b.Record("kbz", false)
	if b.Allow("kbz") {
		t.Fatal("threshold failures must open the circuit")
	}
	if open := b.Open(); len(open) != 1 || open[0] != "kbz" {
		t.Fatalf("Open() = %v, want [kbz]", open)
	}

	// Cooldown lapses → half-open: allowed again, next outcome decides.
	now = now.Add(2 * time.Minute)
	if !b.Allow("kbz") {
		t.Fatal("lapsed cooldown must half-open the circuit")
	}
	b.Record("kbz", false) // still failing: re-open... but only after threshold from the last open
	b.Record("kbz", false)
	if b.Allow("kbz") {
		t.Fatal("continued failures must re-open the circuit")
	}
	now = now.Add(2 * time.Minute)
	b.Record("kbz", true)
	if !b.Allow("kbz") || len(b.Open()) != 0 {
		t.Fatal("a success must close the circuit")
	}
}

func TestDecodeRequestValidation(t *testing.T) {
	reject := []struct{ name, body string }{
		{"empty", `{}`},
		{"not json", `}{`},
		{"two sources", `{"workload":{"shape":"chain","n":5},"instance":{"query_graph":{"n":1,"edges":[]},"sizes":["2"],"selectivities":[["1"]],"access_costs":[["2"]]}}`},
		{"bad model", `{"model":"bushy","workload":{"shape":"chain","n":5}}`},
		{"model mismatch", `{"model":"qoh","workload":{"shape":"chain","n":5}}`},
		{"bad shape", `{"workload":{"shape":"pentagram","n":5}}`},
		{"n too small", `{"workload":{"shape":"chain","n":1}}`},
		{"n too large", fmt.Sprintf(`{"workload":{"shape":"chain","n":%d}}`, MaxRequestN+1)},
		{"bad edge prob", `{"workload":{"shape":"random","n":5,"edge_prob":1.5}}`},
		{"negative timeout", `{"timeout_ms":-1,"workload":{"shape":"chain","n":5}}`},
		{"invalid instance", `{"instance":{"query_graph":{"n":1,"edges":[]},"sizes":["0"],"selectivities":[["1"]],"access_costs":[["1"]]}}`},
	}
	for _, c := range reject {
		if _, err := DecodeRequest([]byte(c.body)); err == nil {
			t.Errorf("%s: decoder accepted %s", c.name, c.body)
		}
	}
	req, err := DecodeRequest([]byte(`{"workload":{"shape":"star","n":6,"seed":3},"timeout_ms":500}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.model() != "qon" {
		t.Fatalf("model = %q, want qon", req.model())
	}
	if got := req.budget(2*time.Second, 30*time.Second); got != 500*time.Millisecond {
		t.Fatalf("budget = %v, want 500ms", got)
	}
	if got := req.budget(2*time.Second, 100*time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("budget must clamp to max, got %v", got)
	}
	in, err := req.qonInstance()
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 6 {
		t.Fatalf("generated instance has n=%d, want 6", in.N())
	}
}

func TestAdmissionStateMachine(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2, QueueDepth: 2, DegradeAt: 3, ShedAt: 0})
	if err != nil {
		t.Fatal(err)
	}
	wantRungs := []Rung{RungFull, RungFull, RungFull, RungHeuristic} // loads 0..3; capacity 4
	for i, want := range wantRungs {
		rung, rej := s.admit()
		if rej != nil {
			t.Fatalf("admit %d rejected: %+v", i, rej)
		}
		if rung != want {
			t.Fatalf("admit %d: rung %v, want %v", i, rung, want)
		}
	}
	if _, rej := s.admit(); rej == nil || rej.status != http.StatusTooManyRequests || rej.kind != "overloaded" {
		t.Fatalf("admit past capacity: want 429 overloaded, got %+v", rej)
	}
	s.release()
	if _, rej := s.admit(); rej != nil {
		t.Fatalf("admit after release rejected: %+v", rej)
	}
	for i := 0; i < 4; i++ {
		s.release()
	}

	shedding, err := New(Config{MaxConcurrent: 2, QueueDepth: 4, DegradeAt: 1, ShedAt: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rung, rej := shedding.admit(); rej != nil || rung != RungFull {
		t.Fatalf("load 0: want full, got %v/%+v", rung, rej)
	}
	if rung, rej := shedding.admit(); rej != nil || rung != RungHeuristic {
		t.Fatalf("load 1: want heuristic, got %v/%+v", rung, rej)
	}
	if _, rej := shedding.admit(); rej == nil || rej.status != http.StatusServiceUnavailable || rej.kind != "shed" {
		t.Fatalf("load 2: want 503 shed, got %+v", rej)
	}
}

func TestShedAtMustExceedDegradeAt(t *testing.T) {
	if _, err := New(Config{DegradeAt: 4, ShedAt: 4}); err == nil {
		t.Fatal("New accepted ShedAt == DegradeAt")
	}
	if _, err := New(Config{ChaosSpec: "explode:*"}); err == nil {
		t.Fatal("New accepted an invalid chaos spec")
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeResult(t *testing.T, data []byte) *Result {
	t.Helper()
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("undecodable result %s: %v", data, err)
	}
	return &res
}

func decodeErrorDoc(t *testing.T, data []byte) *ErrorDoc {
	t.Helper()
	var doc ErrorDoc
	if err := json.Unmarshal(data, &doc); err != nil || doc.Error.Kind == "" {
		t.Fatalf("unstructured error body %s (err %v)", data, err)
	}
	return &doc
}

func TestOptimizeEndToEnd(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{MaxConcurrent: 2, QueueDepth: 4, Metrics: reg, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Full-rung QO_N request over a generated workload.
	resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":7,"seed":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	res := decodeResult(t, data)
	if res.Rung != "full" || res.Degraded {
		t.Fatalf("low-load request served at %q degraded=%v", res.Rung, res.Degraded)
	}
	if res.Report == nil || res.Report.Best == nil || !res.Report.Best.Certified || !res.Report.Best.Exact {
		t.Fatalf("full rung must yield a certified exact winner: %s", data)
	}

	// QO_H request with an inline instance.
	qohBody := `{"model":"qoh","qoh_instance":{"query_graph":{"n":3,"edges":[[0,1],[1,2]]},` +
		`"sizes":["8","8","8"],"selectivities":[["1","0.5","1"],["0.5","1","0.5"],["1","0.5","1"]],"memory":"6"}}`
	resp, data = postJSON(t, ts.URL, qohBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("qoh status %d: %s", resp.StatusCode, data)
	}
	if res := decodeResult(t, data); res.Model != "qoh" || res.Report.Best == nil {
		t.Fatalf("qoh response: %s", data)
	}

	// Structured errors: bad method, bad body, bad request.
	getResp, err := http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", getResp.StatusCode)
	}
	decodeErrorDoc(t, buf.Bytes())

	resp, data = postJSON(t, ts.URL, `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
	if doc := decodeErrorDoc(t, data); doc.Error.Kind != "bad_request" {
		t.Fatalf("kind %q, want bad_request", doc.Error.Kind)
	}

	snap := reg.Snapshot()
	if snap.Counters[MetricRequests] != 4 || snap.Counters[MetricAccepted] != 3 ||
		snap.Counters[MetricBadRequest] != 2 {
		t.Fatalf("metric invariant broken: %+v", snap.Counters)
	}
	if g := snap.Gauges[MetricInFlight]; g != 0 {
		t.Fatalf("inflight gauge %d after all responses", g)
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthDoc
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Draining {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyDoc
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !ready.Ready {
		t.Fatalf("fresh server not ready: %d %+v", resp.StatusCode, ready)
	}
}

// TestReadyzReflectsEngineFailure: a server whose every ensemble member
// fails (error chaos on all) stops reporting ready after its first
// failed run — the engine health probe feeds /readyz.
func TestReadyzReflectsEngineFailure(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 1, ChaosSpec: "error:*", EngineGrace: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":5},"timeout_ms":3000}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("all-failed request: status %d body %s", resp.StatusCode, data)
	}
	if doc := decodeErrorDoc(t, data); doc.Error.Kind != "all_failed" {
		t.Fatalf("kind %q, want all_failed", doc.Error.Kind)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyDoc
	json.NewDecoder(rresp.Body).Decode(&ready)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("readyz after all-failed run: %d %+v", rresp.StatusCode, ready)
	}
	if ready.Engine.Runs != 1 || ready.Engine.LastOK {
		t.Fatalf("engine health not surfaced: %+v", ready.Engine)
	}
}

func TestPanicIsolation(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("handler bug") })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if doc := decodeErrorDoc(t, buf.Bytes()); doc.Error.Kind != "panic" {
		t.Fatalf("kind %q, want panic", doc.Error.Kind)
	}
	if reg.Snapshot().Counters[MetricPanics] != 1 {
		t.Fatal("panic not counted")
	}
	// The server survives: a normal request still works.
	if resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":5}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request failed: %d %s", resp.StatusCode, data)
	}
}

// TestDegradedUnderLoad exercises the ladder through real HTTP: with
// one worker, a stalled request in flight degrades the next admission,
// and the degraded response carries no exact-optimizer runs.
func TestDegradedUnderLoad(t *testing.T) {
	s, err := New(Config{
		MaxConcurrent: 1, QueueDepth: 4, DegradeAt: 1,
		ChaosSpec:    "stall:kbz",
		ChaosOptions: []chaos.Option{chaos.WithStall(300 * time.Millisecond)},
		EngineGrace:  30 * time.Millisecond,
		RetryAfter:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan *Result, 1)
	go func() {
		resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":6},"timeout_ms":5000}`)
		if resp.StatusCode == http.StatusOK {
			first <- decodeResult(t, data)
		} else {
			first <- nil
		}
	}()
	waitFor(t, func() bool { return s.InFlight() >= 1 })

	resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":6},"timeout_ms":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp.StatusCode, data)
	}
	second := decodeResult(t, data)
	if !second.Degraded || second.Rung != "heuristic" {
		t.Fatalf("second request not degraded: %+v", second)
	}
	if second.Report.Best == nil || !second.Report.Best.Certified {
		t.Fatal("degraded result must still be certified")
	}
	for _, run := range second.Report.Runs {
		if strings.HasPrefix(run.Name, "subset-dp") || run.Name == "exhaustive" {
			t.Fatalf("degraded rung ran exact optimizer %q", run.Name)
		}
	}
	if second.Report.Best.Exact {
		t.Fatal("heuristics-only rung cannot certify exactness")
	}
	if res := <-first; res == nil {
		t.Fatal("first request failed")
	} else if res.Degraded {
		t.Fatal("first request (admitted at load 0) must not be degraded")
	}
}

// TestBackpressure429 fills the admission queue and checks the
// structured 429 + Retry-After.
func TestBackpressure429(t *testing.T) {
	s, err := New(Config{
		MaxConcurrent: 1, QueueDepth: 1, DegradeAt: 1,
		ChaosSpec:    "stall:*",
		ChaosOptions: []chaos.Option{chaos.WithStall(400 * time.Millisecond)},
		EngineGrace:  30 * time.Millisecond,
		RetryAfter:   700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":5},"timeout_ms":5000}`)
			results <- resp.StatusCode
		}()
	}
	waitFor(t, func() bool { return s.InFlight() == 2 })

	resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":5}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: status %d body %s", resp.StatusCode, data)
	}
	doc := decodeErrorDoc(t, data)
	if doc.Error.Kind != "overloaded" || doc.Error.RetryAfterMS != 700 {
		t.Fatalf("429 doc: %+v", doc.Error)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" { // 700ms rounds up to 1s
		t.Fatalf("Retry-After header %q, want 1", ra)
	}
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("queued request finished with %d", code)
		}
	}
}

// TestQueueDeadline: a request whose budget expires while queued gets a
// structured 503 queue_deadline document, not a hang.
func TestQueueDeadline(t *testing.T) {
	s, err := New(Config{
		MaxConcurrent: 1, QueueDepth: 2, DegradeAt: 1,
		ChaosSpec:    "stall:*",
		ChaosOptions: []chaos.Option{chaos.WithStall(500 * time.Millisecond)},
		EngineGrace:  30 * time.Millisecond,
		RetryAfter:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":5},"timeout_ms":5000}`)
		close(done)
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 })

	resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":5},"timeout_ms":60}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-budget request: %d %s", resp.StatusCode, data)
	}
	if doc := decodeErrorDoc(t, data); doc.Error.Kind != "queue_deadline" {
		t.Fatalf("kind %q, want queue_deadline", doc.Error.Kind)
	}
	<-done
}

// TestGracefulShutdownDrains: Shutdown answers every in-flight request,
// rejects new ones with a structured draining document, and returns nil
// exactly when nothing was dropped.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Config{
		MaxConcurrent: 2, QueueDepth: 4,
		ChaosSpec:    "stall:kbz",
		ChaosOptions: []chaos.Option{chaos.WithStall(250 * time.Millisecond)},
		EngineGrace:  30 * time.Millisecond,
		RetryAfter:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	statuses := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			resp, _ := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":6},"timeout_ms":5000}`)
			statuses <- resp.StatusCode
		}()
	}
	waitFor(t, func() bool { return s.InFlight() == 3 })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	// New work is refused while draining…
	resp, data := postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":5}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d", resp.StatusCode)
	}
	if doc := decodeErrorDoc(t, data); doc.Error.Kind != "draining" {
		t.Fatalf("kind %q, want draining", doc.Error.Kind)
	}
	// …but the in-flight requests all complete.
	for i := 0; i < 3; i++ {
		if code := <-statuses; code != http.StatusOK {
			t.Fatalf("in-flight request dropped with status %d", code)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	if n := s.InFlight(); n != 0 {
		t.Fatalf("%d requests still in flight after drain", n)
	}
}

// TestShutdownDeadlineExceeded: an over-slow request makes Shutdown
// report the incomplete drain instead of hanging.
func TestShutdownDeadlineExceeded(t *testing.T) {
	s, err := New(Config{
		MaxConcurrent: 1,
		ChaosSpec:     "stall:*",
		ChaosOptions:  []chaos.Option{chaos.WithStall(2 * time.Second)},
		EngineGrace:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	done := make(chan struct{})
	go func() {
		postJSON(t, ts.URL, `{"workload":{"shape":"chain","n":5},"timeout_ms":10000}`)
		close(done)
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown must report an incomplete drain")
	}
	<-done // let the request finish so the test server can close
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
