package sqocp

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func TestSPPCSObjective(t *testing.T) {
	s := &SPPCS{
		P: []*big.Int{bi(2), bi(3), bi(5)},
		C: []*big.Int{bi(10), bi(20), bi(30)},
		L: bi(0),
	}
	cases := []struct {
		mask uint64
		want int64
	}{
		{0b000, 1 + 60}, // empty product is 1
		{0b111, 30},
		{0b001, 2 + 50},
		{0b110, 15 + 10},
	}
	for _, tc := range cases {
		if got := s.Objective(tc.mask); got.Cmp(bi(tc.want)) != 0 {
			t.Errorf("Objective(%b) = %v, want %d", tc.mask, got, tc.want)
		}
	}
}

func TestSPPCSDecide(t *testing.T) {
	s := &SPPCS{
		P: []*big.Int{bi(2), bi(3), bi(5)},
		C: []*big.Int{bi(10), bi(20), bi(30)},
		L: bi(25),
	}
	yes, mask, best, err := s.Decide()
	if err != nil {
		t.Fatal(err)
	}
	// Minimum over masks: {1,2} → 6+30=36? {0,1}→6+30... enumerate:
	// best is mask 0b110 → 15+10 = 25.
	if !yes || best.Cmp(bi(25)) != 0 || mask != 0b110 {
		t.Errorf("Decide = %v mask=%b best=%v, want yes, 110, 25", yes, mask, best)
	}
	s.L = bi(24)
	if yes, _, _, _ := s.Decide(); yes {
		t.Error("L = 24 should be NO")
	}
	bad := &SPPCS{P: []*big.Int{bi(1)}, C: []*big.Int{bi(-1)}, L: bi(1)}
	if _, _, _, err := bad.Decide(); err == nil {
		t.Error("negative c accepted")
	}
}

func TestPartitionDecide(t *testing.T) {
	cases := []struct {
		items []int64
		want  bool
	}{
		{nil, true}, // empty: both halves zero
		{[]int64{2}, false},
		{[]int64{1, 1}, true},
		{[]int64{1, 2, 3}, true},
		{[]int64{2, 3, 7}, false},
		{[]int64{1, 5, 11, 5}, true},
		{[]int64{1, 2, 5}, true}, // 1+2... = 3 ≠ 4: {1,2,5}: total 8, half 4 — no subset sums 4 → false
	}
	// Fix the last expectation: subsets of {1,2,5}: sums 0,1,2,3,5,6,7,8 — no 4.
	cases[len(cases)-1].want = false
	for _, tc := range cases {
		p := &Partition{Items: tc.items}
		got, err := p.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Partition%v = %v, want %v", tc.items, got, tc.want)
		}
	}
	if _, err := (&Partition{Items: []int64{-1}}).Decide(); err == nil {
		t.Error("negative item accepted")
	}
}

// The headline property of the PARTITION → SPPCS reduction: answers
// coincide on exhaustively checked instances.
func TestQuickPartitionToSPPCS(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) > 6 {
			raw = raw[:6]
		}
		items := make([]int64, len(raw))
		for i, r := range raw {
			items[i] = int64(r % 7)
		}
		p := &Partition{Items: items}
		want, err := p.Decide()
		if err != nil {
			return false
		}
		s, err := p.ToSPPCS()
		if err != nil {
			return false
		}
		got, _, _, err := s.Decide()
		return err == nil && got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// starFixture: R_0 with 4 tuples/pages, two satellites.
func starFixture() *Star {
	return &Star{
		Ks:   4,
		N:    []*big.Int{bi(4), bi(12), bi(8)},
		B:    []*big.Int{bi(4), bi(6), bi(4)},
		Mult: []*big.Int{nil, bi(3), bi(2)},
		W:    []*big.Int{nil, bi(5), bi(7)},
		W0:   []*big.Int{nil, bi(4), bi(4)},
	}
}

func TestStarValidate(t *testing.T) {
	if err := starFixture().Validate(); err != nil {
		t.Fatalf("valid star rejected: %v", err)
	}
	bad := starFixture()
	bad.Ks = 1
	if err := bad.Validate(); err == nil {
		t.Error("k_s = 1 accepted")
	}
	bad2 := starFixture()
	bad2.W = bad2.W[:2]
	if err := bad2.Validate(); err == nil {
		t.Error("short W accepted")
	}
}

func TestStarFeasibleOrder(t *testing.T) {
	st := starFixture()
	for _, tc := range []struct {
		order []int
		want  bool
	}{
		{[]int{0, 1, 2}, true},
		{[]int{0, 2, 1}, true},
		{[]int{1, 0, 2}, true},
		{[]int{1, 2, 0}, false}, // cartesian product R_1 × R_2
		{[]int{0, 1}, false},    // wrong length
		{[]int{0, 1, 1}, false}, // duplicate
	} {
		if got := st.FeasibleOrder(tc.order); got != tc.want {
			t.Errorf("FeasibleOrder(%v) = %v, want %v", tc.order, got, tc.want)
		}
	}
}

func TestStarCostHandComputed(t *testing.T) {
	st := starFixture()
	// Plan: R_0, NL R_1, SM R_2.
	// First join NL: b_0 + w_1·n_0 = 4 + 5·4 = 24; size = 4·3 = 12.
	// Second join SM: b(W)(ks−1) + A_2 = 12·3 + 4·4 = 52; total 76.
	cost, err := st.Cost(&Plan{Order: []int{0, 1, 2}, Methods: []Method{NL, SM}})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Cmp(bi(76)) != 0 {
		t.Errorf("cost = %v, want 76", cost)
	}
	// Plan: R_1, R_0 via SM, then NL R_2.
	// First join SM: (b_1 + b_0)·ks = 10·4 = 40; size = n_0·Mult_1 = 12.
	// Second join NL: 12·7 = 84; total 124.
	cost, err = st.Cost(&Plan{Order: []int{1, 0, 2}, Methods: []Method{SM, NL}})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Cmp(bi(124)) != 0 {
		t.Errorf("cost = %v, want 124", cost)
	}
	// Satellite-first NL: b_1 + w0_1·n_1 = 6 + 4·12 = 54, then NL R_2:
	// 12·7 = 84 → 138.
	cost, err = st.Cost(&Plan{Order: []int{1, 0, 2}, Methods: []Method{NL, NL}})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Cmp(bi(138)) != 0 {
		t.Errorf("cost = %v, want 138", cost)
	}
	if _, err := st.Cost(&Plan{Order: []int{1, 2, 0}, Methods: []Method{NL, NL}}); err == nil {
		t.Error("infeasible order accepted")
	}
	if _, err := st.Cost(&Plan{Order: []int{0, 1, 2}, Methods: []Method{NL}}); err == nil {
		t.Error("short method vector accepted")
	}
}

func TestStarOptimalMatchesScan(t *testing.T) {
	st := starFixture()
	plan, cost, err := st.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if !st.FeasibleOrder(plan.Order) {
		t.Fatal("optimal plan infeasible")
	}
	re, err := st.Cost(plan)
	if err != nil || re.Cmp(cost) != 0 {
		t.Fatal("optimal plan does not reproduce its cost")
	}
	// Spot-check that a handful of explicit plans cannot beat it.
	for _, p := range []*Plan{
		{Order: []int{0, 1, 2}, Methods: []Method{NL, NL}},
		{Order: []int{0, 2, 1}, Methods: []Method{SM, SM}},
		{Order: []int{2, 0, 1}, Methods: []Method{NL, SM}},
	} {
		c, err := st.Cost(p)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cmp(cost) < 0 {
			t.Errorf("plan %+v beats the 'optimal' plan", p)
		}
	}
}

// The headline property of the SPPCS → SQO−CP reduction: decisions
// coincide, across random small instances and thresholds straddling the
// SPPCS optimum.
func TestQuickSPPCSToStar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		m := rng.Intn(3) + 1
		s := &SPPCS{}
		for i := 0; i < m; i++ {
			s.P = append(s.P, bi(int64(rng.Intn(4)+2))) // 2..5
			s.C = append(s.C, bi(int64(rng.Intn(6)+1))) // 1..6
		}
		// Find the true SPPCS optimum.
		s.L = bi(0)
		_, _, best, err := s.Decide()
		if err != nil {
			t.Fatal(err)
		}
		// Straddle it: L = best (YES) and L = best−1 (NO).
		for _, delta := range []int64{0, -1, 1} {
			l := new(big.Int).Add(best, bi(delta))
			if l.Sign() < 0 {
				continue
			}
			s.L = l
			want, _, _, err := s.Decide()
			if err != nil {
				t.Fatal(err)
			}
			red, err := FromSPPCS(s, l)
			if err != nil {
				// L ≥ U is legitimately rejected; it implies YES.
				u := new(big.Int).Add(big.NewInt(1), best)
				_ = u
				if want {
					continue
				}
				t.Fatalf("trial %d delta %d: reduction rejected a NO-relevant instance: %v", trial, delta, err)
			}
			got, plan, cost, err := red.Decide()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d delta %d: SPPCS=%v but SQO−CP=%v\nP=%v C=%v L=%v\nplan=%+v cost=%v threshold=%v",
					trial, delta, want, got, s.P, s.C, s.L, plan, cost, red.Threshold)
			}
		}
	}
}

// End to end: PARTITION → SPPCS → SQO−CP on instances with positive
// items (the appendix's WLOG p ≥ 2, c ≥ 1 regime).
func TestEndToEndPartitionToStar(t *testing.T) {
	cases := []struct {
		items []int64
		want  bool
	}{
		{[]int64{1, 1}, true},
		{[]int64{1, 2}, false},
		{[]int64{1, 2, 3}, true},
		{[]int64{1, 1, 3}, false},
	}
	for _, tc := range cases {
		p := &Partition{Items: tc.items}
		if got, _ := p.Decide(); got != tc.want {
			t.Fatalf("partition oracle disagrees on %v", tc.items)
		}
		s, err := p.ToSPPCS()
		if err != nil {
			t.Fatal(err)
		}
		red, err := FromSPPCS(s, s.L)
		if err != nil {
			t.Fatalf("items %v: %v", tc.items, err)
		}
		got, _, _, err := red.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("items %v: end-to-end answer %v, want %v", tc.items, got, tc.want)
		}
	}
}

func TestFromSPPCSRejects(t *testing.T) {
	s := &SPPCS{P: []*big.Int{bi(1)}, C: []*big.Int{bi(1)}, L: bi(1)}
	if _, err := FromSPPCS(s, s.L); err == nil {
		t.Error("p < 2 accepted")
	}
	s2 := &SPPCS{P: []*big.Int{bi(2)}, C: []*big.Int{bi(0)}, L: bi(1)}
	if _, err := FromSPPCS(s2, s2.L); err == nil {
		t.Error("c < 1 accepted")
	}
	s3 := &SPPCS{P: []*big.Int{bi(2)}, C: []*big.Int{bi(1)}, L: bi(1000)}
	if _, err := FromSPPCS(s3, s3.L); err == nil {
		t.Error("L ≥ U accepted")
	}
}

// The appendix requires every relation (base and intermediate) to need
// a 2-pass sort: mem < b ≤ mem² with mem = n₀/2. Verify the constructed
// instance satisfies it for the base relations.
func TestReductionTwoPassSortRange(t *testing.T) {
	p := &Partition{Items: []int64{1, 2}}
	s, err := p.ToSPPCS()
	if err != nil {
		t.Fatal(err)
	}
	red, err := FromSPPCS(s, s.L)
	if err != nil {
		t.Fatal(err)
	}
	mem := new(big.Int).Rsh(red.Star.N[0], 1) // n₀/2
	memSq := new(big.Int).Mul(mem, mem)
	for i, b := range red.Star.B {
		if b.Cmp(mem) <= 0 {
			t.Errorf("relation %d: b = %v fits in memory %v (no 2-pass sort)", i, b, mem)
		}
		if b.Cmp(memSq) > 0 {
			t.Errorf("relation %d: b = %v exceeds mem² = %v (needs >2 passes)", i, b, memSq)
		}
	}
}

// Property: the SPPCS objective is invariant under pair reordering (a
// sanity property of the encoding), and the optimum never increases
// when L grows.
func TestQuickSPPCSBasics(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(4) + 1
		s := &SPPCS{L: bi(0)}
		for i := 0; i < m; i++ {
			s.P = append(s.P, bi(int64(rng.Intn(5)+1)))
			s.C = append(s.C, bi(int64(rng.Intn(8))))
		}
		_, _, best, err := s.Decide()
		if err != nil {
			return false
		}
		// Reverse the pairs: the minimum objective is unchanged.
		rev := &SPPCS{L: bi(0)}
		for i := m - 1; i >= 0; i-- {
			rev.P = append(rev.P, s.P[i])
			rev.C = append(rev.C, s.C[i])
		}
		_, _, best2, err := rev.Decide()
		if err != nil {
			return false
		}
		if best.Cmp(best2) != 0 {
			return false
		}
		// Decision thresholds exactly at the optimum: YES at L = best,
		// NO at L = best − 1.
		s.L = new(big.Int).Set(best)
		yesAt, _, _, err := s.Decide()
		if err != nil || !yesAt {
			return false
		}
		below := new(big.Int).Sub(best, bi(1))
		if below.Sign() >= 0 {
			s.L = below
			noBelow, _, _, err := s.Decide()
			if err != nil || noBelow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
