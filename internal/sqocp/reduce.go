package sqocp

import (
	"fmt"
	"math/big"
)

// Reduction is the SQO−CP instance constructed from an SPPCS instance
// (Appendix B), together with the cost threshold M.
type Reduction struct {
	Star *Star
	// Threshold is the appendix's M: the SPPCS instance is a YES
	// instance iff some feasible plan costs at most Threshold.
	Threshold *big.Int
	// J and U echo the construction's blow-up constants.
	J, U *big.Int
}

// FromSPPCS builds the Appendix-B SQO−CP instance for an SPPCS instance
// with m pairs (p_i, c_i) and bound L. Following the appendix (with the
// two OCR-ambiguous exponents fixed to the values that make the
// accounting close — see the package comment):
//
//	k_s = 4
//	J   = (4·k_s·∏p_i)²
//	U   = Σc_i + ∏p_i + 1
//	n_0 = b_0 = 5·J³·U                       (R_0 tuples span one page)
//	b_i = n_0·J²·c_i,  b_{m+1} = n_0·J²·U     (satellite pages)
//	s_i = p_i/n_i  ⇒  Mult[i] = p_i;  s_{m+1} ⇒ Mult[m+1] = J
//	w_i = J·k_s·p_i,  w_{m+1} = J²·k_s,  w_{0,i} = n_0
//	M   = n_0·J²·k_s·(L+1) − 1
//
// Intuition: every satellite joined by nested loops before R_{m+1}
// costs only Θ(n_0·J^{3/2}), the forced nested-loops join of R_{m+1}
// costs n_0·J²·k_s·∏_{A} p_i where A is the set of satellites joined
// before it, and every satellite joined afterwards is cheapest by
// sort-merge at A_i = n_0·J²·k_s·c_i — so the dominant cost is
// n_0·J²·k_s·(∏_A p + Σ_{∉A} c), and the threshold M separates
// objective ≤ L from objective ≥ L+1.
//
// The construction requires p_i ≥ 2 and c_i ≥ 1 (the appendix assumes
// this WLOG) and L < U (otherwise the SPPCS instance is trivially YES
// via A = ∅ or all-in, and callers should special-case it).
func FromSPPCS(s *SPPCS, l *big.Int) (*Reduction, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := len(s.P)
	two := big.NewInt(2)
	one := big.NewInt(1)
	prodP := big.NewInt(1)
	sumC := big.NewInt(0)
	for i := range s.P {
		if s.P[i].Cmp(two) < 0 {
			return nil, fmt.Errorf("sqocp: need p_%d ≥ 2, got %v", i, s.P[i])
		}
		if s.C[i].Cmp(one) < 0 {
			return nil, fmt.Errorf("sqocp: need c_%d ≥ 1, got %v", i, s.C[i])
		}
		prodP.Mul(prodP, s.P[i])
		sumC.Add(sumC, s.C[i])
	}
	const ks = 4
	// J = (4·k_s·∏p)².
	j := new(big.Int).Mul(big.NewInt(4*ks), prodP)
	j.Mul(j, j)
	// U = Σc + ∏p + 1.
	u := new(big.Int).Add(sumC, prodP)
	u.Add(u, one)
	if l.Cmp(u) >= 0 {
		return nil, fmt.Errorf("sqocp: need L < U (L = %v, U = %v); larger L is trivially YES", l, u)
	}

	j2 := new(big.Int).Mul(j, j)
	j3 := new(big.Int).Mul(j2, j)
	// n_0 = b_0 = 5·J³·U.
	n0 := new(big.Int).Mul(big.NewInt(5), j3)
	n0.Mul(n0, u)
	n0j2 := new(big.Int).Mul(n0, j2)

	st := &Star{
		Ks:   ks,
		N:    make([]*big.Int, m+2),
		B:    make([]*big.Int, m+2),
		Mult: make([]*big.Int, m+2),
		W:    make([]*big.Int, m+2),
		W0:   make([]*big.Int, m+2),
	}
	st.N[0] = n0
	st.B[0] = n0
	mPlus1 := big.NewInt(int64(m) + 2) // the appendix's m+1 with its m = our m+1 satellites
	for i := 1; i <= m; i++ {
		// b_i = n_0·J²·c_i; n_i = (m+1)·b_i (tuple width d = P/(m+1)).
		st.B[i] = new(big.Int).Mul(n0j2, s.C[i-1])
		st.N[i] = new(big.Int).Mul(mPlus1, st.B[i])
		st.Mult[i] = new(big.Int).Set(s.P[i-1])
		// w_i = J·k_s·p_i.
		st.W[i] = new(big.Int).Mul(new(big.Int).Mul(j, big.NewInt(ks)), s.P[i-1])
		st.W0[i] = new(big.Int).Set(n0)
	}
	// R_{m+1}: the closing relation that reads off ∏_A p.
	last := m + 1
	st.B[last] = new(big.Int).Mul(n0j2, u)
	st.N[last] = new(big.Int).Mul(mPlus1, st.B[last])
	st.Mult[last] = new(big.Int).Set(j)
	st.W[last] = new(big.Int).Mul(j2, big.NewInt(ks))
	st.W0[last] = new(big.Int).Set(n0)

	// M = n_0·J²·k_s·(L+1) − 1.
	threshold := new(big.Int).Add(l, one)
	threshold.Mul(threshold, n0j2)
	threshold.Mul(threshold, big.NewInt(ks))
	threshold.Sub(threshold, one)

	return &Reduction{Star: st, Threshold: threshold, J: j, U: u}, nil
}

// Decide answers the SQO−CP decision question for the reduction's
// instance by exhaustive optimization (small instances only).
func (r *Reduction) Decide() (bool, *Plan, *big.Int, error) {
	plan, cost, err := r.Star.Optimal()
	if err != nil {
		return false, nil, nil, err
	}
	return cost.Cmp(r.Threshold) <= 0, plan, cost, nil
}
