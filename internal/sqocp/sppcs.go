// Package sqocp implements Appendices A and B of the paper: the
// SQO−CP problem (star-query optimization without cartesian products,
// with nested-loops and sort-merge operators), the SPPCS problem
// (Subset Product Plus Complement Sum), and the reduction chain
// PARTITION → SPPCS → SQO−CP that proves SQO−CP NP-complete.
//
// The extended abstract specifies the constructed instances but defers
// both correctness proofs to an unavailable internal technical report,
// and the PARTITION→SPPCS constants are OCR-damaged in the available
// text; DESIGN.md's substitution table records how this package fills
// those gaps (a clean provably-correct PARTITION→SPPCS reduction, and
// the Appendix-B SQO−CP construction verified empirically by double
// brute force).
package sqocp

import (
	"fmt"
	"math/big"
)

// SPPCS is an instance of the Subset Product Plus Complement Sum
// problem: does some index set A ⊆ {0..m−1} satisfy
// ∏_{i∈A} P[i] + Σ_{j∉A} C[j] ≤ L?
type SPPCS struct {
	P []*big.Int // pair components p_i ≥ 0
	C []*big.Int // pair components c_i ≥ 0
	L *big.Int
}

// Validate checks dimensions and non-negativity.
func (s *SPPCS) Validate() error {
	if len(s.P) != len(s.C) {
		return fmt.Errorf("sqocp: %d products vs %d sums", len(s.P), len(s.C))
	}
	if s.L == nil || s.L.Sign() < 0 {
		return fmt.Errorf("sqocp: missing or negative L")
	}
	for i := range s.P {
		if s.P[i] == nil || s.P[i].Sign() < 0 || s.C[i] == nil || s.C[i].Sign() < 0 {
			return fmt.Errorf("sqocp: negative or missing pair %d", i)
		}
	}
	return nil
}

// Objective returns ∏_{i∈A} p_i + Σ_{j∉A} c_j for the subset encoded in
// the bitmask a (bit i set ⟺ i ∈ A).
func (s *SPPCS) Objective(a uint64) *big.Int {
	prod := big.NewInt(1)
	sum := big.NewInt(0)
	for i := range s.P {
		if a&(1<<uint(i)) != 0 {
			prod.Mul(prod, s.P[i])
		} else {
			sum.Add(sum, s.C[i])
		}
	}
	return prod.Add(prod, sum)
}

// MaxBruteForceItems caps exhaustive SPPCS decision (2^m subsets).
const MaxBruteForceItems = 24

// Decide answers the SPPCS question exactly by enumerating all subsets,
// returning the best subset mask and its objective value alongside.
func (s *SPPCS) Decide() (yes bool, bestMask uint64, bestValue *big.Int, err error) {
	if err := s.Validate(); err != nil {
		return false, 0, nil, err
	}
	m := len(s.P)
	if m > MaxBruteForceItems {
		return false, 0, nil, fmt.Errorf("sqocp: brute force capped at %d items, got %d", MaxBruteForceItems, m)
	}
	for a := uint64(0); a < 1<<uint(m); a++ {
		v := s.Objective(a)
		if bestValue == nil || v.Cmp(bestValue) < 0 {
			bestValue, bestMask = v, a
		}
	}
	return bestValue.Cmp(s.L) <= 0, bestMask, bestValue, nil
}
