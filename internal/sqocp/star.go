package sqocp

import (
	"fmt"
	"math/big"
)

// Star is an SQO−CP instance (Appendix A): a star query over relations
// R_0..R_m with R_0 central, optimized over cartesian-product-free
// sequences in which every join is either nested-loops or sort-merge.
//
// All quantities are exact big.Int values. Selectivities are carried as
// integer tuple-count multipliers: joining satellite R_i multiplies the
// intermediate tuple count by Mult[i] = n_i·s_i (the Appendix-B
// construction makes these the SPPCS integers p_i).
type Star struct {
	// Ks is the 2-pass sort constant k_s (times a relation is read and
	// written; the paper's reduction uses 4).
	Ks int64
	// N[i] is the tuple count of R_i; B[i] its size in pages
	// (B[0] = N[0]: R_0 tuples are one page wide; satellite pages are
	// n_i·d/P as in the appendix).
	N, B []*big.Int
	// Mult[i] = n_i·s_i for satellites 1..m (index 0 unused).
	Mult []*big.Int
	// W[i] is the least per-outer-tuple nested-loops access cost of
	// satellite R_i (index 0 unused); W0[i] the cost of accessing R_0 to
	// match a tuple of R_i.
	W, W0 []*big.Int
}

// M returns the satellite count m (relations are 0..m).
func (st *Star) M() int { return len(st.N) - 1 }

// Validate checks dimensions and positivity.
func (st *Star) Validate() error {
	m := st.M()
	if m < 1 {
		return fmt.Errorf("sqocp: star needs at least one satellite")
	}
	if st.Ks < 2 {
		return fmt.Errorf("sqocp: k_s must be ≥ 2, got %d", st.Ks)
	}
	for _, dim := range []struct {
		name string
		n    int
	}{
		{"N", len(st.N)}, {"B", len(st.B)}, {"Mult", len(st.Mult)},
		{"W", len(st.W)}, {"W0", len(st.W0)},
	} {
		if dim.n != m+1 {
			return fmt.Errorf("sqocp: %s has length %d, want %d", dim.name, dim.n, m+1)
		}
	}
	for i := 0; i <= m; i++ {
		if st.N[i] == nil || st.N[i].Sign() <= 0 || st.B[i] == nil || st.B[i].Sign() <= 0 {
			return fmt.Errorf("sqocp: relation %d has non-positive size", i)
		}
		if i == 0 {
			continue
		}
		if st.Mult[i] == nil || st.Mult[i].Sign() < 0 {
			return fmt.Errorf("sqocp: satellite %d has negative multiplier", i)
		}
		if st.W[i] == nil || st.W[i].Sign() <= 0 || st.W0[i] == nil || st.W0[i].Sign() <= 0 {
			return fmt.Errorf("sqocp: satellite %d has non-positive access cost", i)
		}
	}
	return nil
}

// Method selects a join operator.
type Method int

const (
	// NL is the nested-loops join method.
	NL Method = iota
	// SM is the sort-merge join method.
	SM
)

// Plan is a fully annotated SQO−CP execution: the relation order and
// the method of each of the m joins (Methods[j] drives the join that
// brings in Order[j+1]).
type Plan struct {
	Order   []int
	Methods []Method
}

// FeasibleOrder reports whether the order avoids cartesian products on
// a star: it must start with R_0, or start with a satellite immediately
// followed by R_0.
func (st *Star) FeasibleOrder(order []int) bool {
	m := st.M()
	if len(order) != m+1 {
		return false
	}
	seen := make([]bool, m+1)
	for _, r := range order {
		if r < 0 || r > m || seen[r] {
			return false
		}
		seen[r] = true
	}
	return order[0] == 0 || order[1] == 0
}

// Cost evaluates a plan exactly via the appendix's cost recursion D.
func (st *Star) Cost(p *Plan) (*big.Int, error) {
	m := st.M()
	if !st.FeasibleOrder(p.Order) {
		return nil, fmt.Errorf("sqocp: infeasible order %v", p.Order)
	}
	if len(p.Methods) != m {
		return nil, fmt.Errorf("sqocp: %d methods for %d joins", len(p.Methods), m)
	}
	total := new(big.Int)
	ks := big.NewInt(st.Ks)
	ksMinus1 := big.NewInt(st.Ks - 1)

	first, second := p.Order[0], p.Order[1]
	// First join: both inputs are base relations.
	switch p.Methods[0] {
	case NL:
		if first == 0 {
			// b_0 + w_second·n_0.
			total.Add(st.B[0], new(big.Int).Mul(st.W[second], st.N[0]))
		} else {
			// b_first + w0_first·n_first.
			total.Add(st.B[first], new(big.Int).Mul(st.W0[first], st.N[first]))
		}
	case SM:
		// Csm(R_first, R_second) = (b_first + b_second)·k_s.
		total.Add(st.B[first], st.B[second])
		total.Mul(total, ks)
	default:
		return nil, fmt.Errorf("sqocp: unknown method %v", p.Methods[0])
	}
	// Intermediate tuple count after {R_0, R_i} is n_0·Mult[i] either way.
	sat := second
	if first != 0 {
		sat = first
	}
	size := new(big.Int).Mul(st.N[0], st.Mult[sat])

	for j := 1; j < m; j++ {
		ri := p.Order[j+1]
		switch p.Methods[j] {
		case NL:
			// n(W)·w_i.
			total.Add(total, new(big.Int).Mul(size, st.W[ri]))
		case SM:
			// b(W)·(k_s−1) + A_i, with b(W) = n(W) and A_i = b_i·k_s.
			step := new(big.Int).Mul(size, ksMinus1)
			step.Add(step, new(big.Int).Mul(st.B[ri], ks))
			total.Add(total, step)
		default:
			return nil, fmt.Errorf("sqocp: unknown method %v", p.Methods[j])
		}
		size.Mul(size, st.Mult[ri])
	}
	return total, nil
}

// MaxExhaustiveSatellites caps exhaustive SQO−CP optimization.
const MaxExhaustiveSatellites = 7

// Optimal exhaustively finds the cheapest feasible plan (orders ×
// method vectors).
func (st *Star) Optimal() (*Plan, *big.Int, error) {
	if err := st.Validate(); err != nil {
		return nil, nil, err
	}
	m := st.M()
	if m > MaxExhaustiveSatellites {
		return nil, nil, fmt.Errorf("sqocp: exhaustive search capped at %d satellites, got %d", MaxExhaustiveSatellites, m)
	}
	var bestPlan *Plan
	var bestCost *big.Int

	try := func(order []int) {
		methods := make([]Method, m)
		for mask := 0; mask < 1<<uint(m); mask++ {
			for j := 0; j < m; j++ {
				if mask&(1<<uint(j)) != 0 {
					methods[j] = SM
				} else {
					methods[j] = NL
				}
			}
			p := &Plan{Order: order, Methods: methods}
			c, err := st.Cost(p)
			if err != nil {
				continue
			}
			if bestCost == nil || c.Cmp(bestCost) < 0 {
				bestCost = c
				bestPlan = &Plan{
					Order:   append([]int(nil), order...),
					Methods: append([]Method(nil), methods...),
				}
			}
		}
	}

	sats := make([]int, m)
	for i := range sats {
		sats[i] = i + 1
	}
	// R_0 first.
	permuteInts(sats, 0, func(rest []int) {
		try(append([]int{0}, rest...))
	})
	// Satellite first, R_0 second.
	for lead := 1; lead <= m; lead++ {
		others := make([]int, 0, m-1)
		for i := 1; i <= m; i++ {
			if i != lead {
				others = append(others, i)
			}
		}
		permuteInts(others, 0, func(rest []int) {
			try(append([]int{lead, 0}, rest...))
		})
	}
	if bestPlan == nil {
		return nil, nil, fmt.Errorf("sqocp: no feasible plan")
	}
	return bestPlan, bestCost, nil
}

func permuteInts(p []int, k int, fn func([]int)) {
	if k == len(p) {
		fn(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permuteInts(p, k+1, fn)
		p[k], p[i] = p[i], p[k]
	}
}
