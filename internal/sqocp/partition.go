package sqocp

import (
	"fmt"
	"math/big"
)

// Partition is an instance of the PARTITION problem: does a subset of
// the items sum to exactly half the total?
type Partition struct {
	Items []int64 // non-negative
}

// Decide answers PARTITION exactly by subset-sum DP (pseudo-polynomial).
func (p *Partition) Decide() (bool, error) {
	var total int64
	for _, b := range p.Items {
		if b < 0 {
			return false, fmt.Errorf("sqocp: negative item %d", b)
		}
		total += b
	}
	if total%2 != 0 {
		return false, nil
	}
	half := total / 2
	reachable := make([]bool, half+1)
	reachable[0] = true
	for _, b := range p.Items {
		for s := half; s >= b; s-- {
			if reachable[s-b] {
				reachable[s] = true
			}
		}
	}
	return reachable[half], nil
}

// ToSPPCS reduces a PARTITION instance to SPPCS.
//
// Construction (see DESIGN.md — this replaces the paper's OCR-damaged
// constants with a provably correct variant; the proof is below).
// Scale every item by four, so the total K = 4·Σ items is a multiple of
// four — in particular K ≥ 4 — whenever any item is nonzero. Set
//
//	p_i = 2^{b'_i},   c_i = C·b'_i,   C = 2^{K/2−1} + 1,
//	L   = 2^{K/2} + C·(K/2).
//
// For any subset A with s = Σ_{i∈A} b'_i the SPPCS objective is exactly
// ψ(s) = 2^s + C·(K−s). The forward difference Δ(s) = ψ(s+1) − ψ(s) =
// 2^s − C is strictly increasing with Δ(K/2−1) = −1 < 0 < Δ(K/2) =
// 2^{K/2−1} − 1 (positive for K ≥ 4), so ψ over the integers is
// uniquely minimized at s = K/2 with ψ(K/2) = L and ψ(s) ≥ L+1 for
// every s ≠ K/2. Hence some subset achieves objective ≤ L iff some
// subset of the scaled items sums to exactly K/2 = 2·Σ items, i.e. iff
// Σ items is even and a subset of the originals sums to half of it —
// exactly the PARTITION question. (K = 0 degenerates to L = 1 = ψ(0),
// again YES, matching the trivially-YES all-zero partition.)
//
// The reduction is pseudo-polynomial (2^{K/2} has K/2 bits); the
// paper's full version achieves polynomial size with q-bit rounding of
// exponentials, which big.Int arithmetic makes unnecessary here.
func (p *Partition) ToSPPCS() (*SPPCS, error) {
	var k int64
	for _, b := range p.Items {
		if b < 0 {
			return nil, fmt.Errorf("sqocp: negative item %d", b)
		}
		k += 4 * b
	}
	half := k / 2
	c := new(big.Int).Lsh(big.NewInt(1), uint(maxInt64(half-1, 0)))
	if half == 0 {
		c = big.NewInt(0) // K = 0: C is irrelevant, all c_i are zero anyway
	} else {
		c.Add(c, big.NewInt(1))
	}
	out := &SPPCS{L: new(big.Int).Lsh(big.NewInt(1), uint(half))}
	out.L.Add(out.L, new(big.Int).Mul(c, big.NewInt(half)))
	for _, b := range p.Items {
		scaled := 4 * b
		out.P = append(out.P, new(big.Int).Lsh(big.NewInt(1), uint(scaled)))
		out.C = append(out.C, new(big.Int).Mul(c, big.NewInt(scaled)))
	}
	return out, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
