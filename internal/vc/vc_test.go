package vc

import (
	"testing"
	"testing/quick"

	"approxqo/internal/graph"
	"approxqo/internal/sat"
)

func TestFromFormulaShape(t *testing.T) {
	f := sat.New(3)
	f.AddClause(1, 2, 3)
	f.AddClause(-1, -2, 3)
	r, err := FromFormula(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.G.N() != 2*3+3*2 {
		t.Fatalf("graph has %d vertices, want 12", r.G.N())
	}
	// Variable edges.
	for v := 1; v <= 3; v++ {
		if !r.G.HasEdge(r.PosVertex[v], r.NegVertex[v]) {
			t.Errorf("missing variable edge for x%d", v)
		}
	}
	// Triangles.
	for ci := range f.Clauses {
		tri := r.ClauseVertex[ci]
		if !r.G.IsClique(tri[:]) {
			t.Errorf("clause %d gadget is not a triangle", ci)
		}
	}
	// Crossing edge: first corner of clause 0 wired to x1's positive vertex.
	if !r.G.HasEdge(r.ClauseVertex[0][0], r.PosVertex[1]) {
		t.Error("missing crossing edge for clause 0 literal x1")
	}
	if !r.G.HasEdge(r.ClauseVertex[1][0], r.NegVertex[1]) {
		t.Error("missing crossing edge for clause 1 literal ¬x1")
	}
	if r.CoverIfSat != 3+2*2 {
		t.Errorf("CoverIfSat = %d, want 7", r.CoverIfSat)
	}
}

func TestFromFormulaRejects(t *testing.T) {
	f := sat.New(4)
	f.AddClause(1, 2, 3, 4)
	if _, err := FromFormula(f); err == nil {
		t.Error("4-literal clause accepted")
	}
	g := sat.New(1)
	g.Clauses = append(g.Clauses, sat.Clause{}) // empty clause
	if _, err := FromFormula(g); err == nil {
		t.Error("empty clause accepted")
	}
}

func TestCoverFromAssignment(t *testing.T) {
	f := sat.New(3)
	f.AddClause(1, 2, 3)
	f.AddClause(-1, 2) // short clause exercises padding
	r, err := FromFormula(f)
	if err != nil {
		t.Fatal(err)
	}
	ok, model := sat.Solve(f)
	if !ok {
		t.Fatal("formula should be satisfiable")
	}
	cover := r.CoverFromAssignment(f, model)
	if len(cover) != r.CoverIfSat {
		t.Fatalf("cover size %d, want %d", len(cover), r.CoverIfSat)
	}
	if !IsCover(r.G, cover) {
		t.Fatal("constructed set is not a cover")
	}
}

func TestMinCoverKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"edgeless", graph.New(4), 0},
		{"single edge", graph.Path(2), 1},
		{"path5", graph.Path(5), 2},
		{"cycle5", graph.Cycle(5), 3},
		{"K5", graph.Complete(5), 4},
		{"star6", graph.Star(6), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cover := MinCover(tc.g)
			if len(cover) != tc.want {
				t.Fatalf("MinCover size = %d, want %d (%v)", len(cover), tc.want, cover)
			}
			if !IsCover(tc.g, cover) {
				t.Fatal("MinCover returned a non-cover")
			}
		})
	}
}

// Property: MinCover matches the complement-clique identity
// |minVC| = n − ω(complement) on random graphs.
func TestQuickMinCoverMatchesCliqueDuality(t *testing.T) {
	prop := func(seed int64, pRaw uint8) bool {
		p := float64(pRaw) / 255
		g := graph.Random(9, p, seed)
		cover := MinCover(g)
		if !IsCover(g, cover) {
			return false
		}
		want := g.N() - g.Complement().CliqueNumber()
		return len(cover) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The headline property of the reduction: minVC = v + 2m iff satisfiable,
// strictly larger otherwise — checked exactly on small formulas.
func TestReductionCorrectness(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := sat.Random3SAT(4, 6+int(seed%5), seed)
		r, err := FromFormula(f)
		if err != nil {
			t.Fatal(err)
		}
		min := len(MinCover(r.G))
		if sat.Satisfiable(f) {
			if min != r.CoverIfSat {
				t.Errorf("seed %d: SAT formula has minVC %d, want %d", seed, min, r.CoverIfSat)
			}
		} else {
			if min <= r.CoverIfSat {
				t.Errorf("seed %d: UNSAT formula has minVC %d, want > %d", seed, min, r.CoverIfSat)
			}
			// Quantitative form: minVC = v + 2m + (m − MaxSat).
			best, _ := sat.MaxSat(f)
			want := r.CoverIfSat + (f.NumClauses() - best)
			if min != want {
				t.Errorf("seed %d: minVC = %d, want v+2m+(m−maxsat) = %d", seed, min, want)
			}
		}
	}
}

func TestReductionUnsatCore(t *testing.T) {
	f := sat.Unsatisfiable3SAT(0, 0, 0)
	r, err := FromFormula(f)
	if err != nil {
		t.Fatal(err)
	}
	min := len(MinCover(r.G))
	if min != r.CoverIfSat+1 {
		t.Errorf("unsat core minVC = %d, want %d", min, r.CoverIfSat+1)
	}
}
