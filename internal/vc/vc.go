// Package vc implements the classical Garey–Johnson reduction from 3SAT
// to VERTEX COVER and an exact minimum-vertex-cover solver. It is the
// first structural link of the paper's hardness chain
// (3SAT → VC → CLIQUE → QO_N / QO_H): a formula with v variables and m
// clauses maps to a graph whose minimum vertex cover is v + 2m exactly
// when the formula is satisfiable, and v + 2m + (number of clauses no
// assignment can satisfy) otherwise.
package vc

import (
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/sat"
)

// Reduction carries the constructed graph together with the bookkeeping
// needed to interpret vertex indices and the promised cover sizes.
type Reduction struct {
	G *graph.Graph
	// NumVars and NumClauses describe the source formula.
	NumVars, NumClauses int
	// PosVertex[v] / NegVertex[v] are the vertex indices of the literal
	// gadget for variable v (1-based; index 0 unused).
	PosVertex, NegVertex []int
	// ClauseVertex[ci][j] is the triangle vertex for the j-th literal of
	// clause ci (clauses padded to exactly three literals).
	ClauseVertex [][3]int
	// CoverIfSat is the minimum vertex-cover size of G when the formula
	// is satisfiable: v + 2m.
	CoverIfSat int
}

// FromFormula applies the Garey–Johnson construction to a 3-CNF formula.
// Clauses with fewer than three literals are padded by repeating their
// last literal (which preserves satisfiability); empty clauses and
// non-3-CNF formulas are rejected.
func FromFormula(f *sat.Formula) (*Reduction, error) {
	if !f.Is3CNF() {
		return nil, fmt.Errorf("vc: formula is not 3-CNF")
	}
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return nil, fmt.Errorf("vc: clause %d is empty", i)
		}
	}
	v, m := f.NumVars, f.NumClauses()
	g := graph.New(2*v + 3*m)
	r := &Reduction{
		G:            g,
		NumVars:      v,
		NumClauses:   m,
		PosVertex:    make([]int, v+1),
		NegVertex:    make([]int, v+1),
		ClauseVertex: make([][3]int, m),
		CoverIfSat:   v + 2*m,
	}
	// Variable gadgets: an edge per variable.
	for i := 1; i <= v; i++ {
		r.PosVertex[i] = 2 * (i - 1)
		r.NegVertex[i] = 2*(i-1) + 1
		g.AddEdge(r.PosVertex[i], r.NegVertex[i])
	}
	// Clause gadgets: a triangle per clause, each corner wired to the
	// vertex of the literal it stands for.
	for ci, c := range f.Clauses {
		lits := padTo3(c)
		base := 2*v + 3*ci
		for j := 0; j < 3; j++ {
			r.ClauseVertex[ci][j] = base + j
		}
		g.AddEdge(base, base+1)
		g.AddEdge(base+1, base+2)
		g.AddEdge(base, base+2)
		for j, l := range lits {
			g.AddEdge(base+j, r.literalVertex(l))
		}
	}
	return r, nil
}

func (r *Reduction) literalVertex(l sat.Literal) int {
	if l.Positive() {
		return r.PosVertex[l.Var()]
	}
	return r.NegVertex[l.Var()]
}

// padTo3 repeats the final literal so the clause has exactly three
// entries; repetition does not change which assignments satisfy it.
func padTo3(c sat.Clause) [3]sat.Literal {
	var out [3]sat.Literal
	for j := 0; j < 3; j++ {
		if j < len(c) {
			out[j] = c[j]
		} else {
			out[j] = c[len(c)-1]
		}
	}
	return out
}

// CoverFromAssignment builds a vertex cover of size v + 2m from a
// satisfying assignment: per variable take the true literal's vertex;
// per clause take the two triangle corners that are not the (first)
// satisfied literal. It panics if the assignment does not satisfy the
// source clause structure embedded in the reduction.
func (r *Reduction) CoverFromAssignment(f *sat.Formula, a sat.Assignment) []int {
	var cover []int
	for v := 1; v <= r.NumVars; v++ {
		if a[v] {
			cover = append(cover, r.PosVertex[v])
		} else {
			cover = append(cover, r.NegVertex[v])
		}
	}
	for ci, c := range f.Clauses {
		lits := padTo3(c)
		satisfied := -1
		for j, l := range lits {
			if a[l.Var()] == l.Positive() {
				satisfied = j
				break
			}
		}
		if satisfied < 0 {
			panic(fmt.Sprintf("vc: assignment does not satisfy clause %d", ci))
		}
		for j := 0; j < 3; j++ {
			if j != satisfied {
				cover = append(cover, r.ClauseVertex[ci][j])
			}
		}
	}
	return cover
}

// IsCover reports whether the vertex set covers every edge of g.
func IsCover(g *graph.Graph, cover []int) bool {
	in := graph.NewBitset(g.N())
	for _, v := range cover {
		in.Add(v)
	}
	for _, e := range g.Edges() {
		if !in.Has(e[0]) && !in.Has(e[1]) {
			return false
		}
	}
	return true
}

// MinCover returns an exact minimum vertex cover of g via branch and
// bound (branch on a max-degree vertex: either it or its whole
// neighbourhood is in the cover). Exponential worst case; intended for
// the small certification instances.
func MinCover(g *graph.Graph) []int {
	s := &vcSearch{g: g.Clone()}
	s.best = allVertices(g.N())
	s.search(nil)
	return s.best
}

func allVertices(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	return vs
}

type vcSearch struct {
	g    *graph.Graph
	best []int
}

// search explores covers extending cur on the current residual graph
// s.g (edges already covered are removed).
func (s *vcSearch) search(cur []int) {
	if len(cur) >= len(s.best) {
		return
	}
	// Lower bound: a greedy maximal matching needs one endpoint per edge.
	lb := s.matchingBound()
	if len(cur)+lb >= len(s.best) {
		return
	}
	// Pick a max-degree vertex; if none, the residual graph is edgeless.
	pick, deg := -1, 0
	for v := 0; v < s.g.N(); v++ {
		if d := s.g.Degree(v); d > deg {
			pick, deg = v, d
		}
	}
	if pick < 0 {
		s.best = append([]int(nil), cur...)
		return
	}
	// Degree-1 chains: taking the neighbour is always at least as good.
	nbrs := s.g.Neighbors(pick).Elems()

	// Branch 1: pick is in the cover.
	removed := s.removeVertex(pick)
	s.search(append(cur, pick))
	s.restore(removed)

	// Branch 2: pick is not in the cover ⇒ all its neighbours are.
	var undo [][2]int
	next := cur
	for _, u := range nbrs {
		undo = append(undo, s.removeVertex(u)...)
		next = append(next, u)
	}
	s.search(next)
	s.restore(undo)
}

// removeVertex deletes all edges at v and returns them for restoration.
func (s *vcSearch) removeVertex(v int) [][2]int {
	var removed [][2]int
	for _, u := range s.g.Neighbors(v).Elems() {
		s.g.RemoveEdge(v, u)
		removed = append(removed, [2]int{v, u})
	}
	return removed
}

func (s *vcSearch) restore(edges [][2]int) {
	for _, e := range edges {
		s.g.AddEdge(e[0], e[1])
	}
}

// matchingBound returns the size of a greedy maximal matching of the
// residual graph — a lower bound on any vertex cover of it.
func (s *vcSearch) matchingBound() int {
	used := graph.NewBitset(s.g.N())
	size := 0
	for v := 0; v < s.g.N(); v++ {
		if used.Has(v) {
			continue
		}
		for _, u := range s.g.Neighbors(v).Elems() {
			if !used.Has(u) {
				used.Add(v)
				used.Add(u)
				size++
				break
			}
		}
	}
	return size
}
