// Package report renders the experiment harness's tables: aligned text
// for terminals and CSV for downstream tooling, with log₂-domain
// formatting for the astronomically large costs the reductions produce.
package report

import (
	"fmt"
	"io"
	"strings"

	"approxqo/internal/num"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics if the arity does not match.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if l := len([]rune(cell)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(t.Columns)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (naive quoting: cells containing
// commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				quoted[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			} else {
				quoted[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if l := len([]rune(s)); l < w {
		return s + strings.Repeat(" ", w-l)
	}
	return s
}

// Log2 formats a cost as "2^x" with one decimal — the only readable
// rendering for values like α^{n²}.
func Log2(v num.Num) string {
	if v.IsZero() {
		return "0"
	}
	return fmt.Sprintf("2^%.1f", v.Log2())
}

// Ratio formats the log₂ of a cost ratio a/b as "2^x".
func Ratio(a, b num.Num) string {
	return fmt.Sprintf("2^%.1f", a.Log2()-b.Log2())
}
