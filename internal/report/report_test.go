package report

import (
	"strings"
	"testing"

	"approxqo/internal/num"
)

func TestTableText(t *testing.T) {
	tb := New("T1 — demo", "n", "cost")
	tb.AddRow("12", "2^176.0")
	tb.AddRow("24", "2^700.5")
	var b strings.Builder
	if err := tb.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T1 — demo", "n   cost", "12  2^176.0", "24  2^700.5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
}

func TestAddRowArity(t *testing.T) {
	tb := New("", "one")
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	tb.AddRow("a", "b")
}

func TestLog2Formatting(t *testing.T) {
	if got := Log2(num.Zero()); got != "0" {
		t.Errorf("Log2(0) = %q", got)
	}
	if got := Log2(num.Pow2(100)); got != "2^100.0" {
		t.Errorf("Log2(2^100) = %q", got)
	}
	if got := Ratio(num.Pow2(150), num.Pow2(100)); got != "2^50.0" {
		t.Errorf("Ratio = %q", got)
	}
}
