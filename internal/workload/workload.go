// Package workload generates realistic random QO_N instances for the
// baseline experiments: chain, cycle, star, grid, clique and random
// query-graph topologies with log-uniform relation cardinalities and
// random per-edge selectivities, all deterministically seeded.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// Shape names a query-graph topology.
type Shape string

// The supported query shapes.
const (
	Chain  Shape = "chain"
	Cycle  Shape = "cycle"
	Star   Shape = "star"
	Grid   Shape = "grid"
	Clique Shape = "clique"
	Random Shape = "random"
)

// Shapes lists every supported topology.
func Shapes() []Shape { return []Shape{Chain, Cycle, Star, Grid, Clique, Random} }

// Params controls instance generation.
type Params struct {
	N     int
	Shape Shape
	// MinCard and MaxCard bound relation cardinalities (log-uniform).
	// Zero values default to 10 and 1e6.
	MinCard, MaxCard float64
	// EdgeProb is the edge probability for Shape == Random (default ½).
	EdgeProb float64
	Seed     int64
}

func (p Params) withDefaults() Params {
	if p.MinCard == 0 {
		p.MinCard = 10
	}
	if p.MaxCard == 0 {
		p.MaxCard = 1e6
	}
	if p.EdgeProb == 0 {
		p.EdgeProb = 0.5
	}
	return p
}

// Generate builds a QO_N instance for the given parameters. Access
// costs on edges are drawn uniformly between the model's lower bound
// t·s (index access) and upper bound t (full scan).
func Generate(p Params) (*qon.Instance, error) {
	p = p.withDefaults()
	if p.N < 2 {
		return nil, fmt.Errorf("workload: need at least 2 relations, got %d", p.N)
	}
	q, err := buildGraph(p)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	in := &qon.Instance{Q: q, T: make([]num.Num, n)}
	for i := range in.T {
		// Log-uniform cardinalities.
		lg := math.Log(p.MinCard) + rng.Float64()*(math.Log(p.MaxCard)-math.Log(p.MinCard))
		in.T[i] = num.FromFloat64(math.Ceil(math.Exp(lg)))
	}
	in.S = make([][]num.Num, n)
	in.W = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
		in.W[i] = make([]num.Num, n)
	}
	one := num.One()
	for i := 0; i < n; i++ {
		in.S[i][i] = one
		in.W[i][i] = in.T[i]
		for j := 0; j < i; j++ {
			if !q.HasEdge(i, j) {
				in.S[i][j], in.S[j][i] = one, one
				in.W[i][j], in.W[j][i] = in.T[i], in.T[j]
				continue
			}
			// Selectivities in [1e-4, 0.5], log-uniform.
			lg := math.Log(1e-4) + rng.Float64()*(math.Log(0.5)-math.Log(1e-4))
			s := num.FromFloat64(math.Exp(lg))
			in.S[i][j], in.S[j][i] = s, s
			in.W[i][j] = between(in.T[i].Mul(s), in.T[i], rng.Float64())
			in.W[j][i] = between(in.T[j].Mul(s), in.T[j], rng.Float64())
		}
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid instance: %w", err)
	}
	return in, nil
}

func between(lo, hi num.Num, f float64) num.Num {
	return lo.Add(hi.Sub(lo).Mul(num.FromFloat64(f)))
}

func buildGraph(p Params) (*graph.Graph, error) {
	switch p.Shape {
	case Chain:
		return graph.Path(p.N), nil
	case Cycle:
		if p.N < 3 {
			return nil, fmt.Errorf("workload: cycle needs n ≥ 3")
		}
		return graph.Cycle(p.N), nil
	case Star:
		return graph.Star(p.N), nil
	case Grid:
		return gridGraph(p.N), nil
	case Clique:
		return graph.Complete(p.N), nil
	case Random:
		g := graph.Random(p.N, p.EdgeProb, p.Seed)
		ensureConnected(g, p.Seed+1)
		return g, nil
	default:
		return nil, fmt.Errorf("workload: unknown shape %q", p.Shape)
	}
}

// gridGraph builds a near-square grid with exactly n vertices (the last
// row may be short).
func gridGraph(n int) *graph.Graph {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	g := graph.New(n)
	for v := 0; v < n; v++ {
		if (v+1)%cols != 0 && v+1 < n {
			g.AddEdge(v, v+1)
		}
		if v+cols < n {
			g.AddEdge(v, v+cols)
		}
	}
	return g
}

// ensureConnected links stray components to vertex 0 so every workload
// instance admits cartesian-product-free plans.
func ensureConnected(g *graph.Graph, seed int64) {
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	for {
		seen := graph.NewBitset(n)
		stack := []int{0}
		seen.Add(0)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.Neighbors(v).ForEach(func(u int) {
				if !seen.Has(u) {
					seen.Add(u)
					stack = append(stack, u)
				}
			})
		}
		if seen.Count() == n {
			return
		}
		// Attach the first unreached vertex to a random reached one.
		for v := 0; v < n; v++ {
			if !seen.Has(v) {
				attach := rng.Intn(n)
				for !seen.Has(attach) {
					attach = rng.Intn(n)
				}
				g.AddEdge(v, attach)
				break
			}
		}
	}
}
