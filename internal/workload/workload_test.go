package workload

import (
	"testing"
	"testing/quick"
)

func TestGenerateAllShapes(t *testing.T) {
	for _, shape := range Shapes() {
		t.Run(string(shape), func(t *testing.T) {
			in, err := Generate(Params{N: 8, Shape: shape, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if in.N() != 8 {
				t.Fatalf("n = %d, want 8", in.N())
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("invalid instance: %v", err)
			}
			if !in.Q.IsConnected() {
				t.Error("query graph disconnected")
			}
		})
	}
}

func TestShapeEdgeCounts(t *testing.T) {
	cases := []struct {
		shape Shape
		n     int
		edges int
	}{
		{Chain, 6, 5},
		{Cycle, 6, 6},
		{Star, 6, 5},
		{Clique, 6, 15},
		{Grid, 9, 12}, // 3×3 grid
	}
	for _, tc := range cases {
		in, err := Generate(Params{N: tc.n, Shape: tc.shape, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := in.Q.EdgeCount(); got != tc.edges {
			t.Errorf("%s(%d): %d edges, want %d", tc.shape, tc.n, got, tc.edges)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Params{N: 7, Shape: Random, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{N: 7, Shape: Random, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Q.Equal(b.Q) {
		t.Error("same seed produced different graphs")
	}
	for i := 0; i < 7; i++ {
		if !a.T[i].Equal(b.T[i]) {
			t.Error("same seed produced different cardinalities")
		}
	}
	c, err := Generate(Params{N: 7, Shape: Random, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 7; i++ {
		if !a.T[i].Equal(c.T[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical cardinalities")
	}
}

func TestGenerateRejects(t *testing.T) {
	if _, err := Generate(Params{N: 1, Shape: Chain}); err == nil {
		t.Error("n = 1 accepted")
	}
	if _, err := Generate(Params{N: 2, Shape: Cycle}); err == nil {
		t.Error("2-cycle accepted")
	}
	if _, err := Generate(Params{N: 5, Shape: Shape("mystery")}); err == nil {
		t.Error("unknown shape accepted")
	}
}

// Property: every random workload validates and respects cardinality
// bounds.
func TestQuickGeneratedValid(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%8) + 3
		in, err := Generate(Params{
			N:        n,
			Shape:    Random,
			EdgeProb: float64(pRaw%90+10) / 100,
			Seed:     seed,
		})
		if err != nil || in.Validate() != nil {
			return false
		}
		for i := 0; i < n; i++ {
			card := in.T[i].Float64()
			if card < 10 || card > 1e6+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
