package workload

import (
	"context"

	"testing"

	"approxqo/internal/opt"
)

var ctx = context.Background()

func TestCatalogAllValid(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog has %d queries, want 4", len(cat))
	}
	for _, c := range cat {
		t.Run(c.Name, func(t *testing.T) {
			if err := c.Instance.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if !c.Instance.Q.IsConnected() {
				t.Error("query graph disconnected")
			}
			names := c.RelationNames()
			if len(names) != c.Instance.N() {
				t.Errorf("%d relation names for %d relations", len(names), c.Instance.N())
			}
		})
	}
}

func TestCatalogShapes(t *testing.T) {
	q3, err := CatalogQueryByName("tpch-q3-like")
	if err != nil {
		t.Fatal(err)
	}
	if q3.Instance.N() != 3 || q3.Instance.Q.EdgeCount() != 2 {
		t.Errorf("q3 shape wrong: n=%d m=%d", q3.Instance.N(), q3.Instance.Q.EdgeCount())
	}
	ssb, err := CatalogQueryByName("ssb-q41-like")
	if err != nil {
		t.Fatal(err)
	}
	// A star: the fact table has degree 4, dimensions degree 1.
	if ssb.Instance.Q.Degree(0) != 4 {
		t.Errorf("ssb fact degree = %d, want 4", ssb.Instance.Q.Degree(0))
	}
	q5, err := CatalogQueryByName("tpch-q5-like")
	if err != nil {
		t.Fatal(err)
	}
	// The supplier–nation edge closes a cycle: edges = vertices.
	if q5.Instance.Q.EdgeCount() != q5.Instance.N() {
		t.Errorf("q5 edges = %d, want %d (cycle)", q5.Instance.Q.EdgeCount(), q5.Instance.N())
	}
	if _, err := CatalogQueryByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// Optimizing the catalog queries must work and show the classic result:
// dimension-first orders beat fact-first orders by orders of magnitude.
func TestCatalogOptimization(t *testing.T) {
	for _, c := range Catalog() {
		best, err := opt.NewDP().Optimize(ctx, c.Instance)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if !best.Exact {
			t.Fatalf("%s: DP not exact", c.Name)
		}
		// The optimum must strictly beat starting from the biggest fact
		// table and joining in index order.
		naive := make([]int, c.Instance.N())
		for i := range naive {
			naive[i] = i
		}
		// Compare in the log domain with a tiny tolerance: the naive and
		// optimal orders can be mathematically equal while differing in
		// the last ulp of 256-bit rounding (association order).
		naiveCost := c.Instance.Cost(naive)
		if best.Cost.Log2() > naiveCost.Log2()+1e-6 {
			t.Fatalf("%s: naive order beats 'optimal'", c.Name)
		}
		// KBZ handles the acyclic ones exactly.
		if c.Instance.Q.EdgeCount() == c.Instance.N()-1 {
			kbz, err := opt.NewKBZ().Optimize(ctx, c.Instance)
			if err != nil {
				t.Fatalf("%s: kbz: %v", c.Name, err)
			}
			noCross, err := opt.NewDPNoCross().Optimize(ctx, c.Instance)
			if err != nil {
				t.Fatal(err)
			}
			if diff := kbz.Cost.Log2() - noCross.Cost.Log2(); diff > 1e-6 || diff < -1e-6 {
				t.Errorf("%s: KBZ 2^%.2f vs no-cross optimum 2^%.2f",
					c.Name, kbz.Cost.Log2(), noCross.Cost.Log2())
			}
		}
	}
}
