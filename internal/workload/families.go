// Paper-grounded workload families beyond the basic topologies: the
// instance populations the adaptive router (internal/classify) is
// judged against. Each family realizes one of the regimes the paper's
// analysis distinguishes:
//
//   - skewed-star — a star query whose hub is a fact relation orders of
//     magnitude larger than the dimensions, with key–foreign-key-style
//     selectivities: the SNIPPETS.md "When Greedy Beats Optimal" regime
//     where selectivity is visible in the query structure.
//   - chain-selective — a chain with a few planted strongly selective
//     edges (s ≈ 2^−20) separated by a wide gap from the mild rest, and
//     index-access costs at the model's t·s lower bound on the planted
//     edges: a greedy-sufficient family by construction.
//   - sparse-em — the e(m)-constrained sparse query graphs of §6
//     (Theorems 16/17): exactly m + ⌈m^τ⌉ edges on m vertices, the
//     sparse end of the admissible range, with workload-style random
//     weights.
//   - cliquered-yes / cliquered-no — the f_N hardness instances over
//     the certified CLIQUE promise pair (uniform sizes, uniform 1/α
//     selectivities): the adversarial population where every heuristic
//     can be off by α^Θ(n) and only the certified exact tier is safe.
package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// The named families beyond the Shape topologies.
const (
	SkewedStar     Shape = "skewed-star"
	ChainSelective Shape = "chain-selective"
	SparseEM       Shape = "sparse-em"
	CliqueredYes   Shape = "cliquered-yes"
	CliqueredNo    Shape = "cliquered-no"
)

// Families lists every generatable population name: the basic
// topologies plus the paper-grounded families.
func Families() []Shape {
	return append(Shapes(), SkewedStar, ChainSelective, SparseEM, CliqueredYes, CliqueredNo)
}

// IsFamily reports whether name is a known shape or family.
func IsFamily(name Shape) bool {
	for _, f := range Families() {
		if f == name {
			return true
		}
	}
	return false
}

// Spec is the JSON workload-family specification shared by the server's
// request decoder (POST /optimize {"workload": {...}}), loadgen and the
// competitive-ratio harness. Zero optional fields take family defaults.
type Spec struct {
	// Shape is a topology (chain|cycle|star|grid|clique|random) or a
	// family (skewed-star|chain-selective|sparse-em|cliquered-yes|
	// cliquered-no).
	Shape string `json:"shape"`
	N     int    `json:"n"`
	Seed  int64  `json:"seed,omitempty"`
	// EdgeProb is the edge probability for shape "random" (default ½).
	EdgeProb float64 `json:"edge_prob,omitempty"`
	// Tau is the sparse-em edge-budget exponent: e(m) = m + ⌈m^τ⌉,
	// 0 < τ < 1 (default 0.5).
	Tau float64 `json:"tau,omitempty"`
	// Skew is the skewed-star hub factor: the hub relation is Skew times
	// the largest dimension (default 1024; must be ≥ 2).
	Skew float64 `json:"skew,omitempty"`
	// SelectiveEdges is how many strongly selective edges
	// chain-selective plants (default 2; capped at n−1).
	SelectiveEdges int `json:"selective_edges,omitempty"`
}

// DecodeSpec parses one JSON family spec and validates it. Errors are
// safe to echo to clients.
func DecodeSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workload: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's semantic constraints (the caller owns any
// stricter serving-layer size cap).
func (s *Spec) Validate() error {
	if !IsFamily(Shape(s.Shape)) {
		return fmt.Errorf("workload: unknown shape %q (have %v)", s.Shape, Families())
	}
	if s.N < 2 {
		return fmt.Errorf("workload: n=%d below the 2-relation floor", s.N)
	}
	if s.EdgeProb < 0 || s.EdgeProb > 1 {
		return fmt.Errorf("workload: edge_prob=%g out of range [0, 1]", s.EdgeProb)
	}
	if s.Tau != 0 && (s.Tau <= 0 || s.Tau >= 1) {
		return fmt.Errorf("workload: tau=%g out of range (0, 1)", s.Tau)
	}
	if s.Skew != 0 && s.Skew < 2 {
		return fmt.Errorf("workload: skew=%g below the 2x floor", s.Skew)
	}
	if s.SelectiveEdges < 0 {
		return fmt.Errorf("workload: selective_edges=%d negative", s.SelectiveEdges)
	}
	switch Shape(s.Shape) {
	case Cycle:
		if s.N < 3 {
			return fmt.Errorf("workload: cycle needs n ≥ 3")
		}
	case SkewedStar, ChainSelective:
		if s.N < 3 {
			return fmt.Errorf("workload: %s needs n ≥ 3", s.Shape)
		}
	case SparseEM:
		if s.N < 4 {
			return fmt.Errorf("workload: sparse-em needs n ≥ 4")
		}
	case CliqueredYes, CliqueredNo:
		// ω_No = ⌊n/4⌋ must stay below ω_Yes = ⌈3n/4⌉ with both positive.
		if s.N < 4 {
			return fmt.Errorf("workload: cliquered promise pair needs n ≥ 4")
		}
	}
	return nil
}

// Generate builds the spec's instance. The result is deterministic in
// (Shape, N, Seed, family parameters).
func (s *Spec) Generate() (*qon.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch Shape(s.Shape) {
	case SkewedStar:
		return generateSkewedStar(s)
	case ChainSelective:
		return generateChainSelective(s)
	case SparseEM:
		return generateSparseEM(s)
	case CliqueredYes:
		return generateCliquered(s, true)
	case CliqueredNo:
		return generateCliquered(s, false)
	default:
		return Generate(Params{N: s.N, Shape: Shape(s.Shape), Seed: s.Seed, EdgeProb: s.EdgeProb})
	}
}

// fillUniformRows initializes S and W to the non-edge conventions
// (selectivity 1, access cost t_i) for an instance whose T is set.
func fillUniformRows(in *qon.Instance) {
	n := in.N()
	one := num.One()
	in.S = make([][]num.Num, n)
	in.W = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
		in.W[i] = make([]num.Num, n)
		for j := 0; j < n; j++ {
			in.S[i][j] = one
			in.W[i][j] = in.T[i]
		}
	}
}

// generateSkewedStar builds a star whose hub (vertex 0) is a fact
// relation Skew times the largest dimension, joined to every dimension
// with a key–foreign-key selectivity filter/|dim| and index access at
// the t·s lower bound — pattern-visible selectivity in the SSB mold.
func generateSkewedStar(s *Spec) (*qon.Instance, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	skew := s.Skew
	if skew == 0 {
		skew = 1024
	}
	n := s.N
	in := &qon.Instance{Q: graph.Star(n), T: make([]num.Num, n)}
	maxDim := 0.0
	for i := 1; i < n; i++ {
		// Dimension cardinalities, log-uniform in [100, 1e5].
		lg := math.Log(100) + rng.Float64()*(math.Log(1e5)-math.Log(100))
		card := math.Ceil(math.Exp(lg))
		in.T[i] = num.FromFloat64(card)
		if card > maxDim {
			maxDim = card
		}
	}
	in.T[0] = num.FromFloat64(math.Ceil(maxDim * skew))
	fillUniformRows(in)
	for i := 1; i < n; i++ {
		// Key–foreign-key probe with a local filter in [0.05, 1].
		filter := 0.05 + 0.95*rng.Float64()
		sel := num.FromFloat64(filter).Div(in.T[i])
		in.S[0][i], in.S[i][0] = sel, sel
		in.W[0][i] = in.T[0].Mul(sel) // index access at the t·s bound
		in.W[i][0] = in.T[i].Mul(sel)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: skewed-star invalid: %w", err)
	}
	return in, nil
}

// generateChainSelective builds a chain with SelectiveEdges planted
// strongly selective edges (s = 2^−20) whose access costs sit at the
// t·s lower bound, against a mild background (s ∈ [¼, ½], full-scan
// access): the selectivity signal is wide enough (≥ 2^18 separation)
// that a structural classifier can see it without statistics.
func generateChainSelective(s *Spec) (*qon.Instance, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	n := s.N
	planted := s.SelectiveEdges
	if planted == 0 {
		planted = 2
	}
	if planted > n-1 {
		planted = n - 1
	}
	in := &qon.Instance{Q: graph.Path(n), T: make([]num.Num, n)}
	for i := range in.T {
		// Cardinalities log-uniform in [1e3, 1e6].
		lg := math.Log(1e3) + rng.Float64()*(math.Log(1e6)-math.Log(1e3))
		in.T[i] = num.FromFloat64(math.Ceil(math.Exp(lg)))
	}
	fillUniformRows(in)
	selective := rng.Perm(n - 1)[:planted]
	isPlanted := make([]bool, n-1)
	for _, e := range selective {
		isPlanted[e] = true
	}
	strong := num.Pow2(-20)
	for i := 0; i+1 < n; i++ {
		j := i + 1
		var sel num.Num
		if isPlanted[i] {
			sel = strong
		} else {
			sel = num.FromFloat64(0.25 + 0.25*rng.Float64())
		}
		in.S[i][j], in.S[j][i] = sel, sel
		if isPlanted[i] {
			in.W[i][j] = in.T[i].Mul(sel)
			in.W[j][i] = in.T[j].Mul(sel)
		} // mild edges keep the full-scan default W = t
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: chain-selective invalid: %w", err)
	}
	return in, nil
}

// generateSparseEM builds a connected random query graph on n vertices
// with exactly e(n) = n + ⌈n^τ⌉ edges — the sparse end of the §6
// admissible range — carrying workload-style random weights.
func generateSparseEM(s *Spec) (*qon.Instance, error) {
	tau := s.Tau
	if tau == 0 {
		tau = 0.5
	}
	n := s.N
	edges := core.SparseBudget(tau)(n)
	if max := n * (n - 1) / 2; edges > max {
		edges = max
	}
	q := graph.ConnectedRandom(n, edges, s.Seed)
	rng := rand.New(rand.NewSource(s.Seed + 1))
	in := &qon.Instance{Q: q, T: make([]num.Num, n)}
	for i := range in.T {
		lg := math.Log(10) + rng.Float64()*(math.Log(1e6)-math.Log(10))
		in.T[i] = num.FromFloat64(math.Ceil(math.Exp(lg)))
	}
	fillUniformRows(in)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if !q.HasEdge(i, j) {
				continue
			}
			lg := math.Log(1e-4) + rng.Float64()*(math.Log(0.5)-math.Log(1e-4))
			sel := num.FromFloat64(math.Exp(lg))
			in.S[i][j], in.S[j][i] = sel, sel
			in.W[i][j] = between(in.T[i].Mul(sel), in.T[i], rng.Float64())
			in.W[j][i] = between(in.T[j].Mul(sel), in.T[j], rng.Float64())
		}
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: sparse-em invalid: %w", err)
	}
	return in, nil
}

// generateCliquered builds the f_N hardness instance over the certified
// CLIQUE promise pair on n vertices (c = 3/4, d = 1/2): uniform
// relation sizes α^Peak, uniform edge selectivity 1/α, uniform edge
// access cost — the adversarial population where the optimal cost
// separates the YES and NO sides by α^Θ(n) and heuristics carry no
// guarantee. Deterministic in n (Seed only perturbs nothing: the
// promise pair is a fixed complete multipartite construction).
func generateCliquered(s *Spec, yesSide bool) (*qon.Instance, error) {
	n := s.N
	yes, no := cliquered.YesNoPair(n, 0.75, 0.5)
	if yes.Omega <= no.Omega {
		return nil, fmt.Errorf("workload: degenerate promise pair at n=%d (ωYes=%d, ωNo=%d)", n, yes.Omega, no.Omega)
	}
	g := yes.G
	if !yesSide {
		g = no.G
	}
	fn, err := core.FN(g, core.FNParams{A: 4, OmegaYes: yes.Omega, OmegaNo: no.Omega})
	if err != nil {
		return nil, fmt.Errorf("workload: cliquered reduction: %w", err)
	}
	return fn.QON, nil
}
