package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"approxqo/internal/num"
)

func TestGenerateFamilies(t *testing.T) {
	for _, family := range Families() {
		t.Run(string(family), func(t *testing.T) {
			spec := &Spec{Shape: string(family), N: 8, Seed: 3}
			in, err := spec.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if in.N() != 8 {
				t.Fatalf("n = %d, want 8", in.N())
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("invalid instance: %v", err)
			}
			if !in.Q.IsConnected() {
				t.Error("query graph disconnected")
			}
		})
	}
}

func TestFamilyGenerateDeterministic(t *testing.T) {
	for _, family := range []Shape{SkewedStar, ChainSelective, SparseEM} {
		t.Run(string(family), func(t *testing.T) {
			gen := func(seed int64) [][]num.Num {
				in, err := (&Spec{Shape: string(family), N: 9, Seed: seed}).Generate()
				if err != nil {
					t.Fatal(err)
				}
				return append([][]num.Num{in.T}, in.S...)
			}
			a, b, c := gen(7), gen(7), gen(8)
			differs := false
			for i := range a {
				for j := range a[i] {
					if !a[i][j].Equal(b[i][j]) {
						t.Fatalf("same seed produced different statistics at [%d][%d]", i, j)
					}
					if !a[i][j].Equal(c[i][j]) {
						differs = true
					}
				}
			}
			if !differs {
				t.Error("different seeds produced identical statistics")
			}
		})
	}
}

func TestSparseEMEdgeBudget(t *testing.T) {
	for _, tc := range []struct {
		n   int
		tau float64
	}{{8, 0}, {12, 0}, {16, 0.5}, {10, 0.75}, {20, 0.25}} {
		spec := &Spec{Shape: string(SparseEM), N: tc.n, Seed: 1, Tau: tc.tau}
		in, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		tau := tc.tau
		if tau == 0 {
			tau = 0.5
		}
		want := tc.n + int(math.Ceil(math.Pow(float64(tc.n), tau)))
		if max := tc.n * (tc.n - 1) / 2; want > max {
			want = max
		}
		if got := in.Q.EdgeCount(); got != want {
			t.Errorf("sparse-em(n=%d, tau=%g): %d edges, want exactly %d", tc.n, tc.tau, got, want)
		}
	}
}

func TestChainSelectivePlantedEdges(t *testing.T) {
	strong := num.Pow2(-20)
	for _, planted := range []int{0, 1, 3, 50} {
		spec := &Spec{Shape: string(ChainSelective), N: 10, Seed: 4, SelectiveEdges: planted}
		in, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		want := planted
		if want == 0 {
			want = 2 // family default
		}
		if want > 9 {
			want = 9 // capped at n−1
		}
		got := 0
		for i := 0; i+1 < 10; i++ {
			if in.S[i][i+1].Equal(strong) {
				got++
				// Planted edges must sit at the W = t·s lower bound.
				if !in.W[i][i+1].Equal(in.T[i].Mul(strong)) {
					t.Errorf("planted edge (%d,%d) not at the t·s access bound", i, i+1)
				}
			}
		}
		if got != want {
			t.Errorf("selective_edges=%d: %d planted edges, want %d", planted, got, want)
		}
	}
}

func TestSkewedStarHubDominates(t *testing.T) {
	for _, skew := range []float64{0, 16, 4096} {
		spec := &Spec{Shape: string(SkewedStar), N: 9, Seed: 2, Skew: skew}
		in, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		want := skew
		if want == 0 {
			want = 1024 // family default
		}
		hub := in.T[0].Float64()
		for i := 1; i < 9; i++ {
			if dim := in.T[i].Float64(); hub < want*dim {
				t.Errorf("skew=%g: hub %g below %g× dimension %d (%g)", skew, hub, want, i, dim)
			}
		}
	}
}

func TestCliqueredSidesDiffer(t *testing.T) {
	yes, err := (&Spec{Shape: string(CliqueredYes), N: 12}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	no, err := (&Spec{Shape: string(CliqueredNo), N: 12}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if yes.Q.Equal(no.Q) {
		t.Error("YES and NO promise-pair query graphs are identical")
	}
	// Statistics-free signature: both sides are uniform in T, S and W.
	for _, in := range []*struct {
		name string
		t    []num.Num
	}{{"yes", yes.T}, {"no", no.T}} {
		for i := 1; i < len(in.t); i++ {
			if !in.t[i].Equal(in.t[0]) {
				t.Errorf("%s side: non-uniform relation sizes", in.name)
			}
		}
	}
	// Deterministic in n: seed must not perturb the construction.
	again, err := (&Spec{Shape: string(CliqueredYes), N: 12, Seed: 99}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Q.Equal(yes.Q) {
		t.Error("cliquered-yes depends on seed; should be deterministic in n")
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []Spec{
		{Shape: "mystery", N: 8},
		{Shape: string(SkewedStar), N: 1},
		{Shape: string(SkewedStar), N: 2},     // needs n ≥ 3
		{Shape: string(ChainSelective), N: 2}, // needs n ≥ 3
		{Shape: string(SparseEM), N: 3},       // needs n ≥ 4
		{Shape: string(CliqueredYes), N: 3},   // promise pair needs n ≥ 4
		{Shape: string(CliqueredNo), N: 2},
		{Shape: "cycle", N: 2},
		{Shape: "random", N: 8, EdgeProb: 1.5},
		{Shape: "random", N: 8, EdgeProb: -0.1},
		{Shape: string(SparseEM), N: 8, Tau: 1},
		{Shape: string(SparseEM), N: 8, Tau: -0.5},
		{Shape: string(SkewedStar), N: 8, Skew: 1.5},
		{Shape: string(ChainSelective), N: 8, SelectiveEdges: -1},
	}
	for _, tc := range cases {
		if err := tc.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", tc)
		}
	}
}

func TestDecodeSpec(t *testing.T) {
	spec, err := DecodeSpec([]byte(`{"shape":"chain-selective","n":10,"seed":3,"selective_edges":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shape != string(ChainSelective) || spec.N != 10 || spec.Seed != 3 || spec.SelectiveEdges != 1 {
		t.Errorf("decoded %+v", spec)
	}
	for _, bad := range []string{
		`{"shape":"chain-selective","n":10`, // malformed JSON
		`{"shape":"nope","n":10}`,           // unknown family
		`{"shape":"star","n":1}`,            // below floor
	} {
		if _, err := DecodeSpec([]byte(bad)); err == nil {
			t.Errorf("DecodeSpec accepted %s", bad)
		}
	}
}

// FuzzWorkloadSpecJSON drives the JSON spec decoder — the server's
// attack surface for workload requests — with arbitrary bytes. The
// invariants: DecodeSpec never panics; anything it accepts survives a
// marshal round-trip and (at fuzz-sized n) generates a valid instance.
func FuzzWorkloadSpecJSON(f *testing.F) {
	f.Add([]byte(`{"shape":"chain","n":6}`))
	f.Add([]byte(`{"shape":"skewed-star","n":8,"seed":1,"skew":64}`))
	f.Add([]byte(`{"shape":"chain-selective","n":9,"selective_edges":3}`))
	f.Add([]byte(`{"shape":"sparse-em","n":10,"tau":0.75}`))
	f.Add([]byte(`{"shape":"cliquered-yes","n":8}`))
	f.Add([]byte(`{"shape":"random","n":7,"edge_prob":0.4}`))
	f.Add([]byte(`{"shape":"","n":-1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("DecodeSpec accepted a spec Validate rejects: %v", verr)
		}
		round, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := DecodeSpec(round); err != nil {
			t.Fatalf("round-trip rejected: %v (from %s)", err, round)
		}
		if spec.N > 10 {
			return // keep fuzz iterations cheap; generation is size-exponential downstream
		}
		in, err := spec.Generate()
		if err != nil {
			t.Fatalf("validated spec failed to generate: %v", err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("generated instance invalid: %v", err)
		}
	})
}

func ExampleDecodeSpec() {
	spec, _ := DecodeSpec([]byte(`{"shape":"sparse-em","n":12}`))
	in, _ := spec.Generate()
	fmt.Println(in.N(), in.Q.EdgeCount())
	// Output: 12 16
}
