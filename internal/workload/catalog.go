package workload

import (
	"fmt"
	"sort"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// CatalogQuery is a named, fixed QO_N instance modelled on a well-known
// benchmark join shape. Cardinalities follow the TPC-H scale-factor-1 /
// SSB profiles; selectivities encode the usual key–foreign-key
// relationships (1/|dimension| per probe) plus the query's local
// filters. These are synthetic stand-ins ("-like"), not trace replays —
// the repository is offline — but they exercise the cost models on the
// cardinality skews real optimizers face.
type CatalogQuery struct {
	Name     string
	Comment  string
	Instance *qon.Instance
}

// relation is a builder entry.
type relation struct {
	name string
	card int64
}

// catalogBuilder assembles a QO_N instance from named relations and
// key–foreign-key edges.
type catalogBuilder struct {
	rels  []relation
	index map[string]int
	edges []catalogEdge
}

type catalogEdge struct {
	a, b string
	sel  float64
}

func newCatalogBuilder() *catalogBuilder {
	return &catalogBuilder{index: map[string]int{}}
}

func (b *catalogBuilder) rel(name string, card int64) *catalogBuilder {
	if _, dup := b.index[name]; dup {
		panic(fmt.Sprintf("workload: duplicate relation %q", name))
	}
	b.index[name] = len(b.rels)
	b.rels = append(b.rels, relation{name: name, card: card})
	return b
}

// fk adds a key–foreign-key predicate: each tuple of the fact side
// matches 1/|dim| of the dimension (times an optional extra filter
// factor f ≤ 1).
func (b *catalogBuilder) fk(fact, dim string, filter float64) *catalogBuilder {
	dimCard := b.rels[b.mustIndex(dim)].card
	b.edges = append(b.edges, catalogEdge{a: fact, b: dim, sel: filter / float64(dimCard)})
	return b
}

func (b *catalogBuilder) mustIndex(name string) int {
	i, ok := b.index[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown relation %q", name))
	}
	return i
}

func (b *catalogBuilder) build() *qon.Instance {
	n := len(b.rels)
	q := graph.New(n)
	in := &qon.Instance{Q: q, T: make([]num.Num, n)}
	for i, r := range b.rels {
		in.T[i] = num.FromInt64(r.card)
	}
	in.S = make([][]num.Num, n)
	in.W = make([][]num.Num, n)
	one := num.One()
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
		in.W[i] = make([]num.Num, n)
		for j := 0; j < n; j++ {
			in.S[i][j] = one
			in.W[i][j] = in.T[i]
		}
	}
	for _, e := range b.edges {
		i, j := b.mustIndex(e.a), b.mustIndex(e.b)
		q.AddEdge(i, j)
		s := num.FromFloat64(e.sel)
		in.S[i][j], in.S[j][i] = s, s
		// Index access at the model's lower bound t·s.
		in.W[i][j] = in.T[i].Mul(s)
		in.W[j][i] = in.T[j].Mul(s)
	}
	if err := in.Validate(); err != nil {
		panic(fmt.Sprintf("workload: catalog instance invalid: %v", err))
	}
	return in
}

// RelationNames returns the builder ordering for a catalog query (for
// rendering plans with names instead of indices).
func (c CatalogQuery) RelationNames() []string {
	// Names are not stored on the instance; rebuild deterministically.
	for _, entry := range catalogSpecs() {
		if entry.name == c.Name {
			return entry.relNames
		}
	}
	return nil
}

type catalogSpec struct {
	name     string
	comment  string
	relNames []string
	build    func() *qon.Instance
}

func catalogSpecs() []catalogSpec {
	return []catalogSpec{
		{
			name:     "tpch-q3-like",
			comment:  "customer ⋈ orders ⋈ lineitem chain with segment/date filters",
			relNames: []string{"customer", "orders", "lineitem"},
			build: func() *qon.Instance {
				return newCatalogBuilder().
					rel("customer", 150_000).
					rel("orders", 1_500_000).
					rel("lineitem", 6_000_000).
					fk("orders", "customer", 0.2). // BUILDING segment
					fk("lineitem", "orders", 0.5). // date filter
					build()
			},
		},
		{
			name:     "tpch-q5-like",
			comment:  "region–nation–customer–orders–lineitem–supplier cycle (supplier closes the loop)",
			relNames: []string{"region", "nation", "customer", "orders", "lineitem", "supplier"},
			build: func() *qon.Instance {
				return newCatalogBuilder().
					rel("region", 5).
					rel("nation", 25).
					rel("customer", 150_000).
					rel("orders", 1_500_000).
					rel("lineitem", 6_000_000).
					rel("supplier", 10_000).
					fk("nation", "region", 0.2). // one region
					fk("customer", "nation", 1).
					fk("orders", "customer", 0.15). // date range
					fk("lineitem", "orders", 1).
					fk("lineitem", "supplier", 1).
					fk("supplier", "nation", 1).
					build()
			},
		},
		{
			name:     "ssb-q41-like",
			comment:  "star-schema benchmark: lineorder fact with date/customer/supplier/part dimensions",
			relNames: []string{"lineorder", "date", "customer", "supplier", "part"},
			build: func() *qon.Instance {
				return newCatalogBuilder().
					rel("lineorder", 6_000_000).
					rel("date", 2_556).
					rel("customer", 30_000).
					rel("supplier", 2_000).
					rel("part", 200_000).
					fk("lineorder", "date", 1).
					fk("lineorder", "customer", 0.2). // region filter
					fk("lineorder", "supplier", 0.2). // region filter
					fk("lineorder", "part", 0.4).     // mfgr filter
					build()
			},
		},
		{
			name:     "tpch-q8-like",
			comment:  "eight-relation snowflake: part–lineitem–orders–customer–nation–region plus supplier–nation2",
			relNames: []string{"part", "lineitem", "orders", "customer", "nation1", "region", "supplier", "nation2"},
			build: func() *qon.Instance {
				return newCatalogBuilder().
					rel("part", 200_000).
					rel("lineitem", 6_000_000).
					rel("orders", 1_500_000).
					rel("customer", 150_000).
					rel("nation1", 25).
					rel("region", 5).
					rel("supplier", 10_000).
					rel("nation2", 25).
					fk("lineitem", "part", 0.001). // one part type
					fk("lineitem", "orders", 1).
					fk("orders", "customer", 0.3). // date window
					fk("customer", "nation1", 1).
					fk("nation1", "region", 0.2).
					fk("lineitem", "supplier", 1).
					fk("supplier", "nation2", 1).
					build()
			},
		},
	}
}

// Catalog returns the named benchmark-shaped queries.
func Catalog() []CatalogQuery {
	specs := catalogSpecs()
	out := make([]CatalogQuery, 0, len(specs))
	for _, s := range specs {
		out = append(out, CatalogQuery{Name: s.name, Comment: s.comment, Instance: s.build()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CatalogQueryByName returns one catalog query.
func CatalogQueryByName(name string) (CatalogQuery, error) {
	for _, c := range Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	return CatalogQuery{}, fmt.Errorf("workload: no catalog query %q", name)
}
