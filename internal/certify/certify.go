// Package certify is the independent result auditor of the ensemble
// engine: before any optimizer's result is allowed into the merge, the
// auditor re-derives everything the result claims and rejects it on the
// first discrepancy. The engine runs untrusted components — third-party
// optimizers, chaos-wrapped ones, future remote workers — and a single
// understated cost or corrupted permutation winning the merge would
// silently poison the competitive-ratio experiments, so nothing an
// optimizer says about its own plan is taken on faith.
//
// The audit of a QO_N result checks, in order:
//
//  1. the claimed quantities are well-formed (constructed Num values,
//     non-nil sequence),
//  2. the sequence is a bijection over the instance's relations,
//  3. the claimed cost equals an independently recomputed C(Z) under
//     exact num arithmetic (the recomputation walks the S/T/W matrices
//     directly rather than calling the cost model the optimizer used),
//  4. a result flagged Exact is cross-checked against an independently
//     constructed upper bound: a greedy witness sequence whose cost no
//     true optimum can exceed.
//
// Failures are classified by three sentinel errors — ErrInvalidPlan,
// ErrCostMismatch, ErrBoundViolated — so callers can build structured
// taxonomies on top (see engine.ErrUncertified).
package certify

import (
	"errors"
	"fmt"

	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// Sentinel errors classifying audit failures. Every error returned by
// QON and QOH wraps exactly one of them.
var (
	// ErrInvalidPlan marks a structurally broken result: a sequence
	// that is not a permutation of the instance's relations, malformed
	// pipeline boundaries, or unconstructed Num values.
	ErrInvalidPlan = errors.New("certify: invalid plan")
	// ErrCostMismatch marks a result whose claimed cost differs from
	// the independently recomputed cost of its own plan.
	ErrCostMismatch = errors.New("certify: claimed cost does not match recomputed cost")
	// ErrBoundViolated marks a result flagged exact whose cost exceeds
	// an independently computed upper bound — the "optimal" claim is
	// refuted by a witness plan the auditor found itself.
	ErrBoundViolated = errors.New("certify: exact-flagged cost violates independent bound")
)

// Certificate records a passed audit: what was claimed, what the
// auditor recomputed, and the bound the exactness claim was checked
// against (unset when the result was not flagged exact).
type Certificate struct {
	Claimed    num.Num `json:"claimed"`
	Recomputed num.Num `json:"recomputed"`
	// Bound is the independent upper bound used for the exactness
	// cross-check; only valid when Exact is true.
	Bound num.Num `json:"bound,omitempty"`
	Exact bool    `json:"exact"`
}

// QON audits one QO_N optimizer result: seq must be a permutation of
// the instance's relations, claimed must equal the independently
// recomputed C(seq), and an exact-flagged claim must not exceed the
// auditor's greedy upper bound. A nil error means the result is
// certified and safe to merge.
func QON(in *qon.Instance, seq []int, claimed num.Num, exact bool) (*Certificate, error) {
	if in == nil {
		return nil, fmt.Errorf("%w: nil instance", ErrInvalidPlan)
	}
	if !claimed.IsValid() {
		return nil, fmt.Errorf("%w: claimed cost is not a constructed value", ErrInvalidPlan)
	}
	if !in.ValidSequence(seq) {
		return nil, fmt.Errorf("%w: sequence %v is not a permutation of 0..%d", ErrInvalidPlan, seq, in.N()-1)
	}
	recomputed := qonCost(in, seq)
	if !recomputed.Equal(claimed) {
		return nil, fmt.Errorf("%w: claimed 2^%.6f, recomputed 2^%.6f",
			ErrCostMismatch, safeLog2(claimed), safeLog2(recomputed))
	}
	cert := &Certificate{Claimed: claimed, Recomputed: recomputed, Exact: exact}
	if exact {
		bound := qonCost(in, greedyWitness(in))
		cert.Bound = bound
		if bound.Less(recomputed) {
			return nil, fmt.Errorf("%w: claims optimality at 2^%.6f but a greedy witness costs 2^%.6f",
				ErrBoundViolated, safeLog2(recomputed), safeLog2(bound))
		}
	}
	return cert, nil
}

// qonCost recomputes C(Z) directly from the S/T/W matrices, mirroring
// the canonical evaluation order (ascending prefix vertices, factor
// assembled before the size multiply) so the 256-bit arithmetic is
// bit-identical to an honest cost model's — any difference from a
// claimed cost is a real discrepancy, not rounding.
func qonCost(in *qon.Instance, z []int) num.Num {
	n := in.N()
	inPrefix := make([]bool, n)
	size := num.One()
	total := num.Zero()
	for i, v := range z {
		if i > 0 {
			var w num.Num
			first := true
			for u := 0; u < n; u++ {
				if !inPrefix[u] {
					continue
				}
				if first {
					w, first = in.W[v][u], false
				} else {
					w = w.Min(in.W[v][u])
				}
			}
			total = total.Add(size.Mul(w))
		}
		f := in.T[v]
		for u := 0; u < n; u++ {
			if inPrefix[u] {
				f = f.Mul(in.S[v][u])
			}
		}
		size = size.Mul(f)
		inPrefix[v] = true
	}
	return total
}

// greedyWitness builds the auditor's own upper-bound sequence: start at
// the smallest relation and repeatedly append the vertex with the
// smallest extend factor (smallest index on ties). Any valid sequence
// upper-bounds the optimum; greedy keeps the bound tight enough to
// catch optimizers claiming exactness for visibly bad plans.
func greedyWitness(in *qon.Instance) []int {
	n := in.N()
	seq := make([]int, 0, n)
	used := make([]bool, n)
	first := 0
	for v := 1; v < n; v++ {
		if in.T[v].Less(in.T[first]) {
			first = v
		}
	}
	seq = append(seq, first)
	used[first] = true
	for len(seq) < n {
		best, haveBest := -1, false
		var bestF num.Num
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			f := in.T[v]
			for _, u := range seq {
				f = f.Mul(in.S[v][u])
			}
			if !haveBest || f.Less(bestF) {
				best, bestF, haveBest = v, f, true
			}
		}
		seq = append(seq, best)
		used[best] = true
	}
	return seq
}

// safeLog2 renders a cost for error messages without panicking on zero.
func safeLog2(n num.Num) float64 {
	if !n.IsValid() || n.IsZero() {
		return 0
	}
	return n.Log2()
}
