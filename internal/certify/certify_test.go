package certify

import (
	"errors"
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qoh"
	"approxqo/internal/qon"
)

// testInstance builds a 3-relation clique with sizes 2, 4, 8, all
// selectivities ½, and access costs at the t·s lower bound — small
// enough to reason about every sequence cost by hand:
//
//	cost([0,1,2]) = 2·2 + 4·4  = 20   (the cheapest order)
//	cost([2,1,0]) = 8·2 + 16·1 = 32   (the dearest order)
func testInstance(t *testing.T) *qon.Instance {
	t.Helper()
	n := 3
	q := graph.Complete(n)
	in := &qon.Instance{Q: q, T: []num.Num{num.FromInt64(2), num.FromInt64(4), num.FromInt64(8)}}
	half := num.Pow2(-1)
	in.S = make([][]num.Num, n)
	in.W = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
		in.W[i] = make([]num.Num, n)
		for j := 0; j < n; j++ {
			if i == j {
				in.S[i][j], in.W[i][j] = num.One(), in.T[i]
			} else {
				in.S[i][j], in.W[i][j] = half, in.T[i].Mul(half)
			}
		}
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("test instance invalid: %v", err)
	}
	return in
}

func TestQONCertifiesHonestResult(t *testing.T) {
	in := testInstance(t)
	seq := []int{0, 1, 2}
	cost := in.Cost(seq)
	cert, err := QON(in, seq, cost, false)
	if err != nil {
		t.Fatalf("honest result rejected: %v", err)
	}
	if !cert.Recomputed.Equal(cost) || !cert.Claimed.Equal(cost) {
		t.Fatalf("certificate costs disagree: %+v", cert)
	}
	if cert.Exact {
		t.Fatal("non-exact result certified as exact")
	}
}

// The recomputation must be bit-identical to the canonical cost model
// on every permutation, not just the cheap one.
func TestQONRecomputationMatchesCostModel(t *testing.T) {
	in := testInstance(t)
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, seq := range perms {
		if _, err := QON(in, seq, in.Cost(seq), false); err != nil {
			t.Errorf("sequence %v: %v", seq, err)
		}
	}
}

func TestQONRejectsInvalidPlans(t *testing.T) {
	in := testInstance(t)
	cost := in.Cost([]int{0, 1, 2})
	cases := []struct {
		name string
		seq  []int
	}{
		{"duplicate vertex", []int{0, 0, 2}},
		{"short", []int{0, 1}},
		{"out of range", []int{0, 1, 3}},
		{"nil", nil},
	}
	for _, c := range cases {
		if _, err := QON(in, c.seq, cost, false); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("%s: err = %v, want ErrInvalidPlan", c.name, err)
		}
	}
	// Unconstructed claimed cost.
	if _, err := QON(in, []int{0, 1, 2}, num.Num{}, false); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("zero-value cost: err = %v, want ErrInvalidPlan", err)
	}
	// Nil instance.
	if _, err := QON(nil, []int{0}, cost, false); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("nil instance: err = %v, want ErrInvalidPlan", err)
	}
}

func TestQONRejectsUnderstatedCost(t *testing.T) {
	in := testInstance(t)
	seq := []int{0, 1, 2}
	lied := in.Cost(seq).Mul(num.Pow2(-1))
	if _, err := QON(in, seq, lied, false); !errors.Is(err, ErrCostMismatch) {
		t.Fatalf("err = %v, want ErrCostMismatch", err)
	}
}

func TestQONRejectsFalseExactnessClaim(t *testing.T) {
	in := testInstance(t)
	worst := []int{2, 1, 0}
	cost := in.Cost(worst)
	// The same result is fine when it does not claim optimality...
	if _, err := QON(in, worst, cost, false); err != nil {
		t.Fatalf("non-exact worst order rejected: %v", err)
	}
	// ...but claiming exactness at 2^5 when a greedy witness costs 2^~4.3
	// is refuted by the bound.
	if _, err := QON(in, worst, cost, true); !errors.Is(err, ErrBoundViolated) {
		t.Fatalf("err = %v, want ErrBoundViolated", err)
	}
}

func TestQONAcceptsTrueExactnessClaim(t *testing.T) {
	in := testInstance(t)
	best := []int{0, 1, 2}
	cert, err := QON(in, best, in.Cost(best), true)
	if err != nil {
		t.Fatalf("true optimum rejected: %v", err)
	}
	if !cert.Exact || !cert.Bound.IsValid() {
		t.Fatalf("exact certificate missing bound: %+v", cert)
	}
	if cert.Bound.Less(cert.Recomputed) {
		t.Fatal("certificate bound below certified cost")
	}
}

// qohInstance: 3-clique, all sizes 8, selectivity ½, memory 64.
func qohInstance(t *testing.T) *qoh.Instance {
	t.Helper()
	n := 3
	in := &qoh.Instance{Q: graph.Complete(n), T: make([]num.Num, n), M: num.FromInt64(64)}
	in.S = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.T[i] = num.FromInt64(8)
		in.S[i] = make([]num.Num, n)
		for j := 0; j < n; j++ {
			if i == j {
				in.S[i][j] = num.One()
			} else {
				in.S[i][j] = num.Pow2(-1)
			}
		}
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("test instance invalid: %v", err)
	}
	return in
}

func TestQOHCertifiesHonestPlan(t *testing.T) {
	in := qohInstance(t)
	z := []int{0, 1, 2}
	plan, err := in.BestDecomposition(z)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := QOH(in, z, plan.Breaks, plan.Cost, false)
	if err != nil {
		t.Fatalf("honest plan rejected: %v", err)
	}
	if !cert.Recomputed.Equal(plan.Cost) {
		t.Fatal("recomputed cost disagrees with the plan's")
	}
}

func TestQOHRejectsCorruptedPlans(t *testing.T) {
	in := qohInstance(t)
	z := []int{0, 1, 2}
	plan, err := in.BestDecomposition(z)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QOH(in, []int{0, 0, 2}, plan.Breaks, plan.Cost, false); !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("duplicate vertex: err = %v, want ErrInvalidPlan", err)
	}
	for _, breaks := range [][]int{nil, {1}, {2, 1}, {1, 1, 2}, {3}} {
		if _, err := QOH(in, z, breaks, plan.Cost, false); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("breaks %v: err = %v, want ErrInvalidPlan", breaks, err)
		}
	}
	lied := plan.Cost.Mul(num.Pow2(-1))
	if _, err := QOH(in, z, plan.Breaks, lied, false); !errors.Is(err, ErrCostMismatch) {
		t.Errorf("understated cost: err = %v, want ErrCostMismatch", err)
	}
}

func TestQOHRejectsFalseExactnessClaim(t *testing.T) {
	in := qohInstance(t)
	best, err := in.ExactBest()
	if err != nil {
		t.Fatal(err)
	}
	// The true optimum certifies with its bound.
	if _, err := QOH(in, best.Z, best.Breaks, best.Cost, true); err != nil {
		t.Fatalf("true optimum rejected: %v", err)
	}
	// Find any strictly worse feasible decomposition and claim it exact.
	z := []int{0, 1, 2}
	for _, breaks := range [][]int{{2}, {1, 2}} {
		plan, err := in.CostDecomposition(z, breaks)
		if err != nil || !best.Cost.Less(plan.Cost) {
			continue
		}
		if _, err := QOH(in, z, breaks, plan.Cost, true); !errors.Is(err, ErrBoundViolated) {
			t.Fatalf("breaks %v: err = %v, want ErrBoundViolated", breaks, err)
		}
		return
	}
	t.Skip("no strictly suboptimal feasible decomposition on this instance")
}
