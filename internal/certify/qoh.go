package certify

import (
	"fmt"

	"approxqo/internal/num"
	"approxqo/internal/qoh"
)

// QOH audits one QO_H plan-search result: z must be a permutation,
// breaks must be strictly increasing pipeline boundaries ending at join
// n−1, the claimed cost must equal the recomputed cost of that exact
// decomposition under optimal per-pipeline memory allocation, and an
// exact-flagged claim must not exceed the auditor's own feasible
// witness decomposition.
//
// Unlike the QO_N audit, the cost recomputation goes through the
// instance's canonical CostDecomposition: the optimal allocation is a
// continuous knapsack whose equal-rate ties admit several allocations
// of identical exact cost, so an order-independent reimplementation
// cannot promise bit-identical arithmetic. The structural checks and
// the bound are fully independent; the recomputation is an independent
// *call* (fresh, uninstrumented walk over the claimed plan), which
// still rejects any corrupted cost or infeasible decomposition.
func QOH(in *qoh.Instance, z []int, breaks []int, claimed num.Num, exact bool) (*Certificate, error) {
	if in == nil {
		return nil, fmt.Errorf("%w: nil instance", ErrInvalidPlan)
	}
	if !claimed.IsValid() {
		return nil, fmt.Errorf("%w: claimed cost is not a constructed value", ErrInvalidPlan)
	}
	if !validPermutation(z, in.N()) {
		return nil, fmt.Errorf("%w: sequence %v is not a permutation of 0..%d", ErrInvalidPlan, z, in.N()-1)
	}
	if err := validBreaks(breaks, in.N()); err != nil {
		return nil, err
	}
	plan, err := in.CostDecomposition(z, breaks)
	if err != nil {
		return nil, fmt.Errorf("%w: decomposition infeasible: %v", ErrInvalidPlan, err)
	}
	if !plan.Cost.Equal(claimed) {
		return nil, fmt.Errorf("%w: claimed 2^%.6f, recomputed 2^%.6f",
			ErrCostMismatch, safeLog2(claimed), safeLog2(plan.Cost))
	}
	cert := &Certificate{Claimed: claimed, Recomputed: plan.Cost, Exact: exact}
	if exact {
		bound, ok := qohWitnessBound(in)
		if ok {
			cert.Bound = bound
			if bound.Less(plan.Cost) {
				return nil, fmt.Errorf("%w: claims optimality at 2^%.6f but a witness plan costs 2^%.6f",
					ErrBoundViolated, safeLog2(plan.Cost), safeLog2(bound))
			}
		}
	}
	return cert, nil
}

func validPermutation(z []int, n int) bool {
	if len(z) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range z {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// validBreaks checks pipeline boundaries: non-empty, strictly
// increasing join indices in 1..n−1 with the last equal to n−1.
func validBreaks(breaks []int, n int) error {
	if len(breaks) == 0 || breaks[len(breaks)-1] != n-1 {
		return fmt.Errorf("%w: decomposition %v must end at join %d", ErrInvalidPlan, breaks, n-1)
	}
	prev := 0
	for _, b := range breaks {
		if b <= prev || b > n-1 {
			return fmt.Errorf("%w: pipeline boundary %d out of order in %v", ErrInvalidPlan, b, breaks)
		}
		prev = b
	}
	return nil
}

// qohWitnessBound builds the auditor's own feasible plan — the greedy
// size-ordered sequence under its best decomposition — as an upper
// bound for exactness claims. It reports ok=false when no feasible
// witness exists (then the exactness claim is left unchecked: with no
// feasible plan of our own we cannot refute it).
func qohWitnessBound(in *qoh.Instance) (num.Num, bool) {
	n := in.N()
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	// Smallest relation first, then ascending by size (stable on ties):
	// pipelines stream small intermediates into later hash tables.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && in.T[seq[j]].Less(in.T[seq[j-1]]); j-- {
			seq[j], seq[j-1] = seq[j-1], seq[j]
		}
	}
	plan, err := in.BestDecomposition(seq)
	if err != nil {
		return num.Num{}, false
	}
	return plan.Cost, true
}
