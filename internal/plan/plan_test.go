package plan

import (
	"strings"
	"testing"

	"approxqo/internal/bushy"
	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/qon"
	"approxqo/internal/workload"
)

func TestExplainQON(t *testing.T) {
	in, err := workload.Generate(workload.Params{N: 4, Shape: workload.Chain, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := ExplainQON(in, qon.Sequence{0, 1, 2, 3})
	for _, want := range []string{"QO_N plan  cost=", "NestedLoopJoin R3", "NestedLoopJoin R1", "Scan R0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "CartesianProduct") {
		t.Error("chain order flagged as cartesian")
	}
	// A cartesian step must be labelled.
	out = ExplainQON(in, qon.Sequence{0, 2, 1, 3})
	if !strings.Contains(out, "CartesianProduct R2") {
		t.Errorf("cartesian step not labelled:\n%s", out)
	}
}

func TestExplainBushy(t *testing.T) {
	in, err := workload.Generate(workload.Params{N: 4, Shape: workload.Clique, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tree := bushy.Join(bushy.Join(bushy.Leaf(0), bushy.Leaf(1)), bushy.Join(bushy.Leaf(2), bushy.Leaf(3)))
	out := ExplainBushy(in, tree)
	for _, want := range []string{"bushy plan  cost=", "materialized inner", "NestedLoopJoin R1", "Scan R2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExplainQOH(t *testing.T) {
	yes := cliquered.CertifiedCliqueGraph(6, 4)
	fh, err := core.FH(yes.G, core.FHParams{A: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, err := fh.YesWitnessPlan(yes.G.MaxClique())
	if err != nil {
		t.Fatal(err)
	}
	out := ExplainQOH(fh.QOH, p)
	for _, want := range []string{"QO_H plan  cost=2^", "Pipeline 1:", "probe hash(R", "outermost: Scan R0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "Pipeline"); got != len(p.Breaks) {
		t.Errorf("rendered %d pipelines, want %d", got, len(p.Breaks))
	}
}

func TestFmtCostSwitchesToLog2(t *testing.T) {
	in, err := workload.Generate(workload.Params{
		N: 3, Shape: workload.Chain, Seed: 3, MinCard: 10, MaxCard: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := ExplainQON(in, qon.Sequence{0, 1, 2})
	if strings.Contains(out, "2^") {
		t.Errorf("small workload rendered in log form:\n%s", out)
	}
}
