// Package plan renders query plans in an EXPLAIN-style tree form with
// per-operator cost and cardinality annotations: left-deep and bushy
// QO_N plans (nested-loops model) and pipelined QO_H plans (hash-join
// model, with pipeline boundaries and memory allocations).
package plan

import (
	"fmt"
	"strings"

	"approxqo/internal/bushy"
	"approxqo/internal/num"
	"approxqo/internal/qoh"
	"approxqo/internal/qon"
)

// fmtCost renders magnitudes readably: plain decimals while small,
// log₂ form when astronomical.
func fmtCost(v num.Num) string {
	if v.IsZero() {
		return "0"
	}
	if lg := v.Log2(); lg > 40 {
		return fmt.Sprintf("2^%.1f", lg)
	}
	return fmt.Sprintf("%.4g", v.Float64())
}

// ExplainQON renders a left-deep join sequence as an operator tree.
// The deepest operator appears last; each join line reports the output
// cardinality, the per-join cost H_i, and whether the step is a
// cartesian product.
func ExplainQON(in *qon.Instance, z qon.Sequence) string {
	bd := in.Evaluate(z)
	var b strings.Builder
	fmt.Fprintf(&b, "QO_N plan  cost=%s\n", fmtCost(bd.C))
	for i := len(z) - 1; i >= 1; i-- {
		indent := strings.Repeat("  ", len(z)-1-i)
		kind := "NestedLoopJoin"
		if bd.B[i] == 0 {
			kind = "CartesianProduct"
		}
		fmt.Fprintf(&b, "%s%s R%d  (rows=%s, cost=%s, back-edges=%d)\n",
			indent, kind, z[i], fmtCost(bd.N[i]), fmtCost(bd.H[i-1]), bd.B[i])
	}
	fmt.Fprintf(&b, "%sScan R%d  (rows=%s)\n",
		strings.Repeat("  ", len(z)-1), z[0], fmtCost(in.T[z[0]]))
	return b.String()
}

// ExplainBushy renders a bushy join tree with per-node annotations.
func ExplainBushy(in *qon.Instance, t *bushy.Tree) string {
	var b strings.Builder
	total, _ := bushy.Cost(in, t)
	fmt.Fprintf(&b, "bushy plan  cost=%s\n", fmtCost(total))
	explainNode(in, t, &b, "")
	return b.String()
}

func explainNode(in *qon.Instance, t *bushy.Tree, b *strings.Builder, indent string) {
	if t.IsLeaf() {
		fmt.Fprintf(b, "%sScan R%d  (rows=%s)\n", indent, t.Relation, fmtCost(in.T[t.Relation]))
		return
	}
	cost, size := bushy.Cost(in, t)
	kind := "NestedLoopJoin (materialized inner)"
	if t.Right.IsLeaf() {
		kind = fmt.Sprintf("NestedLoopJoin R%d", t.Right.Relation)
	}
	fmt.Fprintf(b, "%s%s  (rows=%s, subtree-cost=%s)\n", indent, kind, fmtCost(size), fmtCost(cost))
	explainNode(in, t.Left, b, indent+"  ")
	explainNode(in, t.Right, b, indent+"  ")
}

// ExplainQOH renders a pipelined hash-join plan: one block per
// pipeline with its boundary joins, memory allocation, read/write
// materialization sizes and cost.
func ExplainQOH(in *qoh.Instance, p *qoh.Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "QO_H plan  cost=%s  memory=%s\n", fmtCost(p.Cost), fmtCost(in.M))
	sizes := in.Sizes(p.Z)
	start := 1
	for pi, end := range p.Breaks {
		fmt.Fprintf(&b, "Pipeline %d: joins J%d..J%d  (read=%s, write=%s, cost=%s)\n",
			pi+1, start, end, fmtCost(sizes[start-1]), fmtCost(sizes[end]), fmtCost(p.Costs[pi]))
		for idx, j := 0, start; j <= end; idx, j = idx+1, j+1 {
			fmt.Fprintf(&b, "  J%d: probe hash(R%d)  (inner=%s, mem=%s, outer=%s)\n",
				j, p.Z[j], fmtCost(in.T[p.Z[j]]), fmtCost(p.Allocs[pi][idx]), fmtCost(sizes[j-1]))
		}
		start = end + 1
	}
	fmt.Fprintf(&b, "outermost: Scan R%d  (rows=%s)\n", p.Z[0], fmtCost(in.T[p.Z[0]]))
	return b.String()
}
