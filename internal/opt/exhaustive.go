package opt

import (
	"context"
	"fmt"
	"math"

	"approxqo/internal/qon"
)

// MaxExhaustiveN caps exhaustive enumeration (n! sequences).
const MaxExhaustiveN = 10

// ctxCheckPermStride is how many permutations exhaustive search costs
// between context polls.
const ctxCheckPermStride = 256

// Exhaustive enumerates every join sequence. Exact when it completes;
// if the context is cancelled mid-enumeration it returns the best
// sequence seen so far with Exact left false. n ≤ MaxExhaustiveN.
//
// Permutations are screened in the log₂ domain: a candidate clearly
// above the incumbent (beyond qon.DefaultLogGuard) is discarded on
// float64 evidence alone, which the guard-band bound makes safe;
// candidates at or below the band are decided in exact arithmetic, so
// the enumerated optimum — and the Exact flag — are identical to a
// purely exact sweep.
type Exhaustive struct {
	cfg options
}

// NewExhaustive returns the exhaustive optimizer. Relevant options:
// WithStats.
func NewExhaustive(opts ...Option) Exhaustive {
	return Exhaustive{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (Exhaustive) Name() string { return "exhaustive" }

// Optimize implements Optimizer by trying all n! permutations.
func (e Exhaustive) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n > MaxExhaustiveN {
		return nil, fmt.Errorf("opt: exhaustive capped at n ≤ %d, got %d", MaxExhaustiveN, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = e.cfg.instrument(in)
	perm := make(qon.Sequence, n)
	for i := range perm {
		perm[i] = i
	}
	st := in.Stats()
	lc := qon.NewLogCoster(in)
	var best *Result
	bestE := math.Inf(1)
	tried := 0
	complete := permute(perm, 0, func(z qon.Sequence) bool {
		d := lc.CostLog2(z) - bestE
		switch {
		case best != nil && d > qon.DefaultLogGuard:
			// Certainly worse — float64 screening is decisive.
		case best != nil && d >= -qon.DefaultLogGuard:
			// Near-tie: re-decide exactly.
			st.Fallback()
			if c := in.Cost(z); c.Less(best.Cost) {
				best = &Result{Sequence: append(qon.Sequence(nil), z...), Cost: c}
				bestE = safeLog2(c)
			}
		default:
			// First candidate, or clearly better: confirm exactly.
			c := in.Cost(z)
			best = &Result{Sequence: append(qon.Sequence(nil), z...), Cost: c}
			bestE = safeLog2(c)
		}
		tried++
		return tried%ctxCheckPermStride != 0 || !cancelled(ctx)
	})
	if best == nil {
		return nil, ctx.Err()
	}
	best.Exact = complete
	return best, nil
}

// permute generates all permutations of p[k:] in place (Heap-style
// recursive swap), invoking fn on the full slice for each. It stops
// early — returning false — as soon as fn returns false.
func permute(p qon.Sequence, k int, fn func(qon.Sequence) bool) bool {
	if k == len(p) {
		return fn(p)
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		ok := permute(p, k+1, fn)
		p[k], p[i] = p[i], p[k]
		if !ok {
			return false
		}
	}
	return true
}
