package opt

import (
	"context"
	"fmt"

	"approxqo/internal/qon"
)

// MaxExhaustiveN caps exhaustive enumeration (n! sequences).
const MaxExhaustiveN = 10

// ctxCheckPermStride is how many permutations exhaustive search costs
// between context polls.
const ctxCheckPermStride = 256

// Exhaustive enumerates every join sequence. Exact when it completes;
// if the context is cancelled mid-enumeration it returns the best
// sequence seen so far with Exact left false. n ≤ MaxExhaustiveN.
type Exhaustive struct {
	cfg options
}

// NewExhaustive returns the exhaustive optimizer. Relevant options:
// WithStats.
func NewExhaustive(opts ...Option) Exhaustive {
	return Exhaustive{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (Exhaustive) Name() string { return "exhaustive" }

// Optimize implements Optimizer by trying all n! permutations.
func (e Exhaustive) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n > MaxExhaustiveN {
		return nil, fmt.Errorf("opt: exhaustive capped at n ≤ %d, got %d", MaxExhaustiveN, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = e.cfg.instrument(in)
	perm := make(qon.Sequence, n)
	for i := range perm {
		perm[i] = i
	}
	var best *Result
	tried := 0
	complete := permute(perm, 0, func(z qon.Sequence) bool {
		c := in.Cost(z)
		if best == nil || c.Less(best.Cost) {
			best = &Result{Sequence: append(qon.Sequence(nil), z...), Cost: c}
		}
		tried++
		return tried%ctxCheckPermStride != 0 || !cancelled(ctx)
	})
	if best == nil {
		return nil, ctx.Err()
	}
	best.Exact = complete
	return best, nil
}

// permute generates all permutations of p[k:] in place (Heap-style
// recursive swap), invoking fn on the full slice for each. It stops
// early — returning false — as soon as fn returns false.
func permute(p qon.Sequence, k int, fn func(qon.Sequence) bool) bool {
	if k == len(p) {
		return fn(p)
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		ok := permute(p, k+1, fn)
		p[k], p[i] = p[i], p[k]
		if !ok {
			return false
		}
	}
	return true
}
