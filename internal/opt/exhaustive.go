package opt

import (
	"fmt"

	"approxqo/internal/qon"
)

// MaxExhaustiveN caps exhaustive enumeration (n! sequences).
const MaxExhaustiveN = 10

// Exhaustive enumerates every join sequence. Exact; n ≤ MaxExhaustiveN.
type Exhaustive struct{}

// NewExhaustive returns the exhaustive optimizer.
func NewExhaustive() Exhaustive { return Exhaustive{} }

// Name implements Optimizer.
func (Exhaustive) Name() string { return "exhaustive" }

// Optimize implements Optimizer by trying all n! permutations.
func (Exhaustive) Optimize(in *qon.Instance) (*Result, error) {
	n := in.N()
	if n > MaxExhaustiveN {
		return nil, fmt.Errorf("opt: exhaustive capped at n ≤ %d, got %d", MaxExhaustiveN, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	perm := make(qon.Sequence, n)
	for i := range perm {
		perm[i] = i
	}
	var best *Result
	permute(perm, 0, func(z qon.Sequence) {
		c := in.Cost(z)
		if best == nil || c.Less(best.Cost) {
			best = &Result{Sequence: append(qon.Sequence(nil), z...), Cost: c, Exact: true}
		}
	})
	return best, nil
}

// permute generates all permutations of p[k:] in place (Heap-style
// recursive swap), invoking fn on the full slice for each.
func permute(p qon.Sequence, k int, fn func(qon.Sequence)) {
	if k == len(p) {
		fn(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, fn)
		p[k], p[i] = p[i], p[k]
	}
}
