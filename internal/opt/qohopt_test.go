package opt

import (
	"math/rand"
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qoh"
)

// randomQOH builds a random valid QO_H instance with power-of-two-ish
// sizes and a memory budget generous enough to be feasible.
func randomQOH(n int, seed int64) *qoh.Instance {
	rng := rand.New(rand.NewSource(seed))
	q := graph.Random(n, 0.5, seed)
	in := &qoh.Instance{
		Q: q,
		T: make([]num.Num, n),
		M: num.FromInt64(256),
	}
	for i := range in.T {
		in.T[i] = num.FromInt64(int64(rng.Intn(120) + 4))
	}
	in.S = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		in.S[i][i] = num.One()
		for j := 0; j < i; j++ {
			s := num.One()
			if q.HasEdge(i, j) {
				s = num.FromFloat64(float64(rng.Intn(7)+1) / 8)
			}
			in.S[i][j], in.S[j][i] = s, s
		}
	}
	return in
}

func TestQOHGreedyFeasible(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := randomQOH(6, seed)
		plan, err := QOHGreedy(ctx, in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Plan must be reproducible through CostDecomposition.
		re, err := in.CostDecomposition(plan.Z, plan.Breaks)
		if err != nil {
			t.Fatalf("seed %d: plan not reproducible: %v", seed, err)
		}
		if !re.Cost.Equal(plan.Cost) {
			t.Errorf("seed %d: cost mismatch", seed)
		}
	}
}

// Heuristics never beat the exhaustive optimum and annealing never
// loses to its greedy seed.
func TestQOHHeuristicsSound(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := randomQOH(5, seed)
		exact, err := in.ExactBest()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		greedy, err := QOHGreedy(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Cost.Less(exact.Cost) {
			t.Errorf("seed %d: greedy beat exhaustive", seed)
		}
		sa, err := QOHAnnealing(ctx, in, WithSeed(seed), WithIterations(200))
		if err != nil {
			t.Fatal(err)
		}
		if sa.Cost.Less(exact.Cost) {
			t.Errorf("seed %d: annealing beat exhaustive", seed)
		}
		if greedy.Cost.Less(sa.Cost) {
			t.Errorf("seed %d: annealing lost to its greedy seed", seed)
		}
	}
}

func TestQOHBestUsesExhaustiveWhenSmall(t *testing.T) {
	in := randomQOH(5, 3)
	best, err := QOHBest(ctx, in, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := in.ExactBest()
	if err != nil {
		t.Fatal(err)
	}
	if !best.Cost.Equal(exact.Cost) {
		t.Error("QOHBest on a small instance should be exact")
	}
}

func TestQOHBestLargerInstance(t *testing.T) {
	in := randomQOH(10, 4)
	best, err := QOHBest(ctx, in, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Z) != 10 {
		t.Fatalf("plan has %d relations, want 10", len(best.Z))
	}
	greedy, err := QOHGreedy(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Cost.Less(best.Cost) {
		t.Error("ensemble lost to plain greedy")
	}
}
