package opt

import (
	"context"
	"testing"

	"approxqo/internal/stats"
)

// Anytime algorithms must return a usable best-so-far result — not an
// error — when the context is already cancelled at entry.
func TestAnytimeOptimizersReturnBestSoFarWhenCancelled(t *testing.T) {
	in := randomInstance(8, 0.6, 5)
	done, cancel := context.WithCancel(context.Background())
	cancel()
	for _, o := range []Optimizer{
		NewGreedy(GreedyMinSize),
		NewGreedy(GreedyMinCost),
		NewKBZ(),
		NewAnnealing(WithSeed(1)),
		NewRandomSampler(WithSeed(1)),
		NewIterativeImprovement(WithSeed(1)),
	} {
		r, err := o.Optimize(done, in)
		if err != nil {
			t.Fatalf("%s: anytime optimizer errored on cancelled context: %v", o.Name(), err)
		}
		if r == nil || !in.ValidSequence(r.Sequence) {
			t.Fatalf("%s: no valid best-so-far sequence", o.Name())
		}
		if !in.Cost(r.Sequence).Equal(r.Cost) {
			t.Fatalf("%s: reported cost does not match sequence", o.Name())
		}
	}
}

// The exact DPs have no partial plan, so a cancelled context must
// surface as the context's error.
func TestExactDPsErrorWhenCancelled(t *testing.T) {
	in := randomInstance(14, 0.6, 6)
	done, cancel := context.WithCancel(context.Background())
	cancel()
	for _, o := range []Optimizer{NewDP(), NewDPParallel()} {
		if _, err := o.Optimize(done, in); err == nil {
			t.Errorf("%s: expected error on cancelled context", o.Name())
		}
	}
}

// Exhaustive search keeps its partial best but must not claim exactness
// after an interrupted enumeration.
func TestExhaustiveCancelledIsNotExact(t *testing.T) {
	in := randomInstance(9, 0.6, 7)
	done, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NewExhaustive().Optimize(done, in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact {
		t.Error("interrupted exhaustive search claims exactness")
	}
	if !in.ValidSequence(r.Sequence) {
		t.Error("interrupted exhaustive search returned invalid sequence")
	}
}

// WithStats must observe cost evaluations for both cooperative
// (cost-calling) and batch-counting (DP) optimizers.
func TestWithStatsCountsEvaluations(t *testing.T) {
	in := randomInstance(7, 0.7, 8)
	for _, o := range []Optimizer{
		NewAnnealing(WithSeed(2), WithIterations(50)),
		NewDP(),
		NewDPNoCross(),
		NewDPParallel(),
		NewExhaustive(),
		NewGreedy(GreedyMinCost),
		NewKBZ(),
	} {
		st := &stats.Stats{}
		var wrapped Optimizer
		switch v := o.(type) {
		case Annealing:
			wrapped = NewAnnealing(WithSeed(2), WithIterations(50), WithStats(st))
		case DP:
			wrapped = NewDP(WithStats(st))
		case DPNoCross:
			wrapped = NewDPNoCross(WithStats(st))
		case DPParallel:
			wrapped = NewDPParallel(WithStats(st))
		case Exhaustive:
			wrapped = NewExhaustive(WithStats(st))
		case Greedy:
			wrapped = NewGreedy(v.rule, WithStats(st))
		case KBZ:
			wrapped = NewKBZ(WithStats(st))
		}
		if _, err := wrapped.Optimize(context.Background(), in); err != nil {
			t.Fatalf("%s: %v", wrapped.Name(), err)
		}
		if snap := st.Snapshot(); snap.CostEvals == 0 {
			t.Errorf("%s: no cost evaluations recorded", wrapped.Name())
		}
	}
}

// An engine-attached (instance-level) sink must win over a
// constructor-level one, keeping per-run counts per-run.
func TestInstanceStatsWinOverOption(t *testing.T) {
	in := randomInstance(6, 0.7, 9)
	ctor := &stats.Stats{}
	run := &stats.Stats{}
	o := NewGreedy(GreedyMinSize, WithStats(ctor))
	if _, err := o.Optimize(context.Background(), in.WithStats(run)); err != nil {
		t.Fatal(err)
	}
	if run.Snapshot().CostEvals == 0 {
		t.Error("instance-level sink saw no evaluations")
	}
	if ctor.Snapshot().CostEvals != 0 {
		t.Error("constructor sink counted despite instance-level sink")
	}
}
