package opt

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// DPParallel is the exact subset DP parallelized across cores. Masks
// with k set bits depend only on masks with k−1 set bits, so the DP
// (and the size table it needs) proceeds in popcount layers, each layer
// sharded across workers. Results are identical to DP — the tests
// assert bit-equality — but the 2^n·n² big.Float work spreads over
// GOMAXPROCS cores, pushing the practical exact frontier outward.
//
// Cancellation is polled inside every worker; a cancelled run returns
// the context's error (there is no partial plan to salvage).
type DPParallel struct {
	// MaxN caps the instance size; zero means DefaultMaxDPN + 2 (the
	// parallel version exists to go a little further).
	MaxN int
	// Workers overrides the worker count; zero means GOMAXPROCS.
	Workers int

	cfg options
}

// dpScratch is one worker's private mutable state for a layer sweep.
type dpScratch struct {
	x                       *graph.Bitset
	acc, factor, cand, best *num.Scratch
}

// NewDPParallel returns the parallel subset DP. Relevant options:
// WithMaxRelations, WithWorkers, WithStats.
func NewDPParallel(opts ...Option) DPParallel {
	o := buildOptions(opts)
	return DPParallel{MaxN: o.maxN, Workers: o.workers, cfg: o}
}

// Name implements Optimizer.
func (DPParallel) Name() string { return "subset-dp-parallel" }

// Optimize implements Optimizer.
func (d DPParallel) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	max := d.MaxN
	if max == 0 {
		max = DefaultMaxDPN + 2
	}
	if n > max {
		return nil, fmt.Errorf("opt: parallel subset DP capped at n ≤ %d, got %d", max, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = d.cfg.instrument(in)
	if n == 1 {
		return &Result{Sequence: qon.Sequence{0}, Cost: num.Zero(), Exact: true}, nil
	}
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	total := 1 << n
	// Masks grouped by popcount.
	layers := make([][]int, n+1)
	for mask := 1; mask < total; mask++ {
		pc := bits.OnesCount(uint(mask))
		layers[pc] = append(layers[pc], mask)
	}

	size := make([]num.Num, total)
	size[0] = num.One()
	dp := make([]num.Num, total)
	parent := make([]int8, total)

	// Per-worker scratch state: a bitset (ExtendInto/MinW take bitsets)
	// plus pooled accumulators, each owned by exactly one worker
	// goroutine per layer. The arithmetic rounds identically to the
	// immutable ops, so the table stays bit-equal to DP's.
	scratches := make([]*dpScratch, workers)
	for i := range scratches {
		scratches[i] = &dpScratch{
			x:      graph.NewBitset(n),
			acc:    num.NewScratch(),
			factor: num.NewScratch(),
			cand:   num.NewScratch(),
			best:   num.NewScratch(),
		}
	}
	defer func() {
		for _, ws := range scratches {
			ws.acc.Release()
			ws.factor.Release()
			ws.cand.Release()
			ws.best.Release()
		}
	}()
	fill := func(scratch *graph.Bitset, mask int) *graph.Bitset {
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				scratch.Add(v)
			} else {
				scratch.Remove(v)
			}
		}
		return scratch
	}

	runLayer := func(masks []int, work func(ws *dpScratch, mask int)) {
		var wg sync.WaitGroup
		chunk := (len(masks) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(masks) {
				break
			}
			hi := lo + chunk
			if hi > len(masks) {
				hi = len(masks)
			}
			wg.Add(1)
			go func(ws *dpScratch, part []int) {
				defer wg.Done()
				for i, mask := range part {
					if i%ctxCheckMaskStride == 0 && cancelled(ctx) {
						return
					}
					work(ws, mask)
				}
			}(scratches[w], masks[lo:hi])
		}
		wg.Wait()
	}

	st := in.Stats()
	minw := newMinWIndex(in)
	for pc := 1; pc <= n; pc++ {
		if cancelled(ctx) {
			return nil, ctx.Err()
		}
		// Sizes for this layer (reads only the previous layer).
		runLayer(layers[pc], func(ws *dpScratch, mask int) {
			low := bits.TrailingZeros(uint(mask))
			rest := mask &^ (1 << low)
			in.ExtendInto(ws.factor, low, fill(ws.x, rest))
			ws.acc.Set(size[rest]).MulScratch(ws.factor)
			size[mask] = ws.acc.Num()
		})
		// DP for this layer.
		runLayer(layers[pc], func(ws *dpScratch, mask int) {
			if pc < 2 {
				dp[mask] = num.Zero()
				parent[mask] = int8(bits.TrailingZeros(uint(mask)))
				return
			}
			st.DPSubset()
			candidates := int64(0)
			cand, bestAcc := ws.cand, ws.best
			bestV := -1
			for v := 0; v < n; v++ {
				if mask&(1<<v) == 0 {
					continue
				}
				rest := mask &^ (1 << v)
				cand.Set(dp[rest]).MulAdd(size[rest], minw.min(in, v, rest))
				candidates++
				if bestV < 0 || cand.CmpScratch(bestAcc) < 0 {
					cand, bestAcc = bestAcc, cand
					bestV = v
				}
			}
			st.AddCostEvals(candidates)
			dp[mask], parent[mask] = bestAcc.Num(), int8(bestV)
		})
	}
	if cancelled(ctx) {
		return nil, ctx.Err()
	}

	seq := make(qon.Sequence, 0, n)
	for mask := total - 1; mask != 0; {
		v := int(parent[mask])
		seq = append(seq, v)
		mask &^= 1 << v
	}
	for l, r := 0, len(seq)-1; l < r; l, r = l+1, r-1 {
		seq[l], seq[r] = seq[r], seq[l]
	}
	// Canonical-order recomputation, for the same reason as DP: the
	// table's rounding sequence differs from Evaluate's on non-dyadic
	// workloads, and certification demands bit-equality.
	return &Result{Sequence: seq, Cost: in.Cost(seq), Exact: true}, nil
}
