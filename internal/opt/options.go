package opt

import (
	"approxqo/internal/qon"
	"approxqo/internal/stats"
)

// Option configures an optimizer constructor. The same option set is
// shared by every constructor; options an algorithm has no use for are
// ignored (WithWorkers on greedy, say), so one options slice can
// configure a whole ensemble — see Heuristics.
type Option func(*options)

// options is the resolved configuration. Zero values mean "use the
// algorithm's default".
type options struct {
	seed     int64
	maxN     int
	iters    int
	samples  int
	restarts int
	workers  int
	stats    *stats.Stats
}

func buildOptions(opts []Option) options {
	var o options
	for _, apply := range opts {
		apply(&o)
	}
	return o
}

// WithSeed sets the random seed for the randomized optimizers
// (annealing, random sampling, iterative improvement). The default
// seed is 0.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithMaxRelations caps the instance size an exact algorithm accepts
// (the subset DPs default to DefaultMaxDPN; the parallel DP to
// DefaultMaxDPN+2). Larger instances make Optimize return an error
// instead of an exponential blow-up.
func WithMaxRelations(n int) Option { return func(o *options) { o.maxN = n } }

// WithStats attaches an instrumentation sink: at Optimize time the
// instance is instrumented with s (unless the caller already attached
// one via qon.Instance.WithStats), so cost evaluations, DP subsets and
// moves are counted. The engine package attaches per-run sinks itself;
// this option serves standalone optimizer use.
func WithStats(s *stats.Stats) Option { return func(o *options) { o.stats = s } }

// WithIterations sets the iteration budget of simulated annealing
// (default DefaultAnnealingIters).
func WithIterations(n int) Option { return func(o *options) { o.iters = n } }

// WithSamples sets the number of permutations random sampling draws
// (default DefaultSamples).
func WithSamples(n int) Option { return func(o *options) { o.samples = n } }

// WithRestarts sets the restart count of iterative improvement
// (default DefaultRestarts).
func WithRestarts(n int) Option { return func(o *options) { o.restarts = n } }

// WithWorkers sets the worker count of the parallel subset DP
// (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// instrument attaches s to the instance unless the caller already
// instrumented it (an engine-attached sink wins over a constructor
// option, so per-run counts stay per-run).
func (o options) instrument(in *qon.Instance) *qon.Instance {
	if o.stats != nil && in.Stats() == nil {
		return in.WithStats(o.stats)
	}
	return in
}
