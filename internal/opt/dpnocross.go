package opt

import (
	"context"
	"fmt"
	"math/bits"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// DPNoCross is the exact subset DP restricted to sequences without
// cartesian products: every join after the first must add a relation
// adjacent (in the query graph) to the already-joined set. This is the
// search space of Cluet–Moerkotte ([2] in the paper); §4 remarks that
// the Theorem 9 gap is unchanged under this restriction — the A2
// ablation experiment verifies exactly that, using this optimizer.
//
// On disconnected query graphs no such sequence exists and Optimize
// returns an error. Like DP, cancellation mid-table returns the
// context's error.
type DPNoCross struct {
	// MaxN caps the instance size; zero means DefaultMaxDPN.
	MaxN int

	cfg options
}

// NewDPNoCross returns the cartesian-product-free subset DP. Relevant
// options: WithMaxRelations, WithStats.
func NewDPNoCross(opts ...Option) DPNoCross {
	o := buildOptions(opts)
	return DPNoCross{MaxN: o.maxN, cfg: o}
}

// Name implements Optimizer.
func (DPNoCross) Name() string { return "subset-dp-no-cross" }

// Optimize implements Optimizer. The returned result is exact *within
// the cross-product-free space* (Result.Exact is set accordingly).
func (d DPNoCross) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	max := d.MaxN
	if max == 0 {
		max = DefaultMaxDPN
	}
	if n > max {
		return nil, fmt.Errorf("opt: no-cross DP capped at n ≤ %d, got %d", max, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = d.cfg.instrument(in)
	if n == 1 {
		return &Result{Sequence: qon.Sequence{0}, Cost: num.Zero(), Exact: true}, nil
	}

	total := 1 << n
	// adjacency[v] = bitmask of v's neighbours.
	adjacency := make([]int, n)
	for v := 0; v < n; v++ {
		in.Q.Neighbors(v).ForEach(func(u int) { adjacency[v] |= 1 << u })
	}

	size := make([]num.Num, total)
	size[0] = num.One()
	scratch := graph.NewBitset(n)
	toBitset := func(mask int) *graph.Bitset {
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				scratch.Add(v)
			} else {
				scratch.Remove(v)
			}
		}
		return scratch
	}
	// Scratch accumulators keep the table construction allocation-free
	// (bit-identical to the immutable ops — see dp.go).
	acc := num.NewScratch()
	factor := num.NewScratch()
	defer acc.Release()
	defer factor.Release()
	for mask := 1; mask < total; mask++ {
		low := bits.TrailingZeros(uint(mask))
		rest := mask &^ (1 << low)
		in.ExtendInto(factor, low, toBitset(rest))
		acc.Set(size[rest]).MulScratch(factor)
		size[mask] = acc.Num()
	}

	st := in.Stats()
	minw := newMinWIndex(in)
	cand := num.NewScratch()
	bestAcc := num.NewScratch()
	defer cand.Release()
	defer bestAcc.Release()
	dp := make([]num.Num, total)
	reachable := make([]bool, total)
	parent := make([]int8, total)
	for v := 0; v < n; v++ {
		m := 1 << v
		dp[m] = num.Zero()
		reachable[m] = true
		parent[m] = int8(v)
	}
	for mask := 1; mask < total; mask++ {
		if mask%ctxCheckMaskStride == 0 && cancelled(ctx) {
			return nil, ctx.Err()
		}
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		st.DPSubset()
		candidates := int64(0)
		bestV := -1
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 {
				continue
			}
			rest := mask &^ (1 << v)
			if !reachable[rest] || adjacency[v]&rest == 0 {
				continue // unreachable prefix, or v would be a cartesian product
			}
			cand.Set(dp[rest]).MulAdd(size[rest], minw.min(in, v, rest))
			candidates++
			if bestV < 0 || cand.CmpScratch(bestAcc) < 0 {
				cand, bestAcc = bestAcc, cand
				bestV = v
			}
		}
		st.AddCostEvals(candidates)
		if bestV >= 0 {
			dp[mask], parent[mask], reachable[mask] = bestAcc.Num(), int8(bestV), true
		}
	}
	if !reachable[total-1] {
		return nil, fmt.Errorf("opt: no cartesian-product-free sequence (disconnected query graph)")
	}

	seq := make(qon.Sequence, 0, n)
	for mask := total - 1; mask != 0; {
		v := int(parent[mask])
		seq = append(seq, v)
		mask &^= 1 << v
	}
	for l, r := 0, len(seq)-1; l < r; l, r = l+1, r-1 {
		seq[l], seq[r] = seq[r], seq[l]
	}
	// Canonical-order recomputation, for the same reason as DP: the
	// table's rounding sequence differs from Evaluate's on non-dyadic
	// workloads, and certification demands bit-equality.
	return &Result{Sequence: seq, Cost: in.Cost(seq), Exact: true}, nil
}
