package opt

import (
	"context"
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// GreedyRule selects what a greedy step minimizes.
type GreedyRule int

const (
	// GreedyMinSize appends the vertex minimizing the resulting
	// intermediate size N(Xv) — the classic "minimum intermediate
	// result" heuristic.
	GreedyMinSize GreedyRule = iota
	// GreedyMinCost appends the vertex minimizing the immediate join
	// cost H = N(X)·min W.
	GreedyMinCost
)

// Greedy builds a sequence one vertex at a time, trying every possible
// first relation and keeping the best complete sequence. Vertices
// connected to the prefix are preferred over cartesian products.
// Anytime: cancellation between start vertices returns the best
// complete sequence built so far.
type Greedy struct {
	rule GreedyRule
	cfg  options
}

// NewGreedy returns a greedy optimizer with the given step rule.
// Relevant options: WithStats.
func NewGreedy(rule GreedyRule, opts ...Option) Greedy {
	return Greedy{rule: rule, cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (g Greedy) Name() string {
	if g.rule == GreedyMinSize {
		return "greedy-min-size"
	}
	return "greedy-min-cost"
}

// Optimize implements Optimizer.
func (g Greedy) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = g.cfg.instrument(in)
	var best *Result
	for first := 0; first < n; first++ {
		if best != nil && cancelled(ctx) {
			break
		}
		z := g.buildFrom(in, first)
		c := in.Cost(z)
		if best == nil || c.Less(best.Cost) {
			best = &Result{Sequence: z, Cost: c}
		}
	}
	return best, nil
}

func (g Greedy) buildFrom(in *qon.Instance, first int) qon.Sequence {
	n := in.N()
	z := make(qon.Sequence, 0, n)
	x := graph.NewBitset(n)
	z = append(z, first)
	x.Add(first)
	size := in.Size([]int{first})
	for len(z) < n {
		pick, pickConnected := -1, false
		var pickKey num.Num
		for v := 0; v < n; v++ {
			if x.Has(v) {
				continue
			}
			connected := in.Q.Neighbors(v).IntersectCount(x) > 0
			// Prefer connected extensions over cartesian products.
			if pick >= 0 && pickConnected && !connected {
				continue
			}
			var key num.Num
			if g.rule == GreedyMinSize {
				key = size.Mul(in.ExtendFactor(v, x))
			} else {
				key = size.Mul(in.MinW(v, x))
			}
			if pick < 0 || (connected && !pickConnected) || key.Less(pickKey) {
				pick, pickConnected, pickKey = v, connected, key
			}
		}
		size = size.Mul(in.ExtendFactor(pick, x))
		z = append(z, pick)
		x.Add(pick)
	}
	return z
}
