package opt

import (
	"context"
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// GreedyRule selects what a greedy step minimizes.
type GreedyRule int

const (
	// GreedyMinSize appends the vertex minimizing the resulting
	// intermediate size N(Xv) — the classic "minimum intermediate
	// result" heuristic.
	GreedyMinSize GreedyRule = iota
	// GreedyMinCost appends the vertex minimizing the immediate join
	// cost H = N(X)·min W.
	GreedyMinCost
)

// Greedy builds a sequence one vertex at a time, trying every possible
// first relation and keeping the best complete sequence. Vertices
// connected to the prefix are preferred over cartesian products.
// Anytime: cancellation between start vertices returns the best
// complete sequence built so far.
type Greedy struct {
	rule GreedyRule
	cfg  options
}

// NewGreedy returns a greedy optimizer with the given step rule.
// Relevant options: WithStats.
func NewGreedy(rule GreedyRule, opts ...Option) Greedy {
	return Greedy{rule: rule, cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (g Greedy) Name() string {
	if g.rule == GreedyMinSize {
		return "greedy-min-size"
	}
	return "greedy-min-cost"
}

// Optimize implements Optimizer.
func (g Greedy) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = g.cfg.instrument(in)
	// One shared index serves every start vertex: W is read-only, and
	// min_{u∈X} W[v][u] over the sorted order is the same value in.MinW
	// would compute per candidate, without the per-call comparisons.
	ix := newMinWIndex(in)
	var best *Result
	for first := 0; first < n; first++ {
		if best != nil && cancelled(ctx) {
			break
		}
		z := g.buildFrom(in, ix, first)
		c := in.Cost(z)
		if best == nil || c.Less(best.Cost) {
			best = &Result{Sequence: z, Cost: c}
		}
	}
	return best, nil
}

func (g Greedy) buildFrom(in *qon.Instance, ix *minWIndex, first int) qon.Sequence {
	n := in.N()
	z := make(qon.Sequence, 0, n)
	x := graph.NewBitset(n)
	size := num.NewScratch()
	factor := num.NewScratch()
	key := num.NewScratch()
	pickKey := num.NewScratch()
	defer size.Release()
	defer factor.Release()
	defer key.Release()
	defer pickKey.Release()
	in.ExtendInto(factor, first, x)
	size.SetInt64(1).MulScratch(factor)
	z = append(z, first)
	x.Add(first)
	for len(z) < n {
		pick, pickConnected := -1, false
		for v := 0; v < n; v++ {
			if x.Has(v) {
				continue
			}
			connected := in.Q.Neighbors(v).IntersectCount(x) > 0
			// Prefer connected extensions over cartesian products.
			if pick >= 0 && pickConnected && !connected {
				continue
			}
			key.SetScratch(size)
			if g.rule == GreedyMinSize {
				in.ExtendInto(factor, v, x)
				key.MulScratch(factor)
			} else {
				key.Mul(ix.minBitset(in, v, x))
			}
			if pick < 0 || (connected && !pickConnected) || key.CmpScratch(pickKey) < 0 {
				pick, pickConnected = v, connected
				pickKey.SetScratch(key)
			}
		}
		in.ExtendInto(factor, pick, x)
		size.MulScratch(factor)
		z = append(z, pick)
		x.Add(pick)
	}
	return z
}
