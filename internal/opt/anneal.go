package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// DefaultAnnealingIters is the default iteration budget for simulated
// annealing.
const DefaultAnnealingIters = 20000

// DefaultSamples is the default draw count for random sampling.
const DefaultSamples = 1000

// DefaultRestarts is the default restart count for iterative
// improvement.
const DefaultRestarts = 10

// safeLog2 is Log2 extended to the zero cost of single-relation
// sequences (log₂ 0 = −Inf).
func safeLog2(c num.Num) float64 {
	if c.IsZero() {
		return math.Inf(-1)
	}
	return c.Log2()
}

// moveFrom applies a random swap or reinsert move to next (a copy of
// the current sequence) and returns the first position whose prefix
// changed — the anchor the incremental evaluator re-derives from. An
// identity draw (i == j) returns n: nothing changed, so the caller can
// skip the evaluation entirely instead of burning an exact fallback on
// a guaranteed tie.
func moveFrom(rng *rand.Rand, next qon.Sequence) int {
	n := len(next)
	i, j := rng.Intn(n), rng.Intn(n)
	if i == j {
		return n
	}
	if rng.Intn(2) == 0 {
		// Swap move.
		next[i], next[j] = next[j], next[i]
	} else {
		// Reinsert move: remove position i, insert before position j.
		v := next[i]
		copy(next[i:], next[i+1:])
		copy(next[j+1:], next[j:n-1])
		next[j] = v
	}
	if j < i {
		return j
	}
	return i
}

// Annealing is simulated annealing over permutations with swap and
// reinsert moves. Energy is log₂-cost, so acceptance probabilities stay
// meaningful despite astronomically large absolute costs. It is an
// anytime algorithm: on context cancellation it returns the best
// sequence visited so far.
//
// Moves are ranked by the tiered cost kernel: a float64 log-domain
// suffix evaluation per candidate (qon.IncEval), with exact num.Num
// confirmation for every accepted move and an exact fallback whenever
// the log-domain margin falls inside qon.DefaultLogGuard. The returned
// Result.Cost is always an exact cost, bit-identical to in.Cost of the
// returned sequence.
type Annealing struct {
	cfg options
}

// NewAnnealing returns a simulated-annealing optimizer. Relevant
// options: WithSeed, WithIterations, WithStats.
func NewAnnealing(opts ...Option) Annealing {
	return Annealing{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (Annealing) Name() string { return "annealing" }

// Optimize implements Optimizer.
func (a Annealing) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = a.cfg.instrument(in)
	if n == 1 {
		return &Result{Sequence: qon.Sequence{0}, Cost: in.Cost(qon.Sequence{0})}, nil
	}
	iters := a.cfg.iters
	if iters <= 0 {
		iters = DefaultAnnealingIters
	}
	st := in.Stats()
	rng := rand.New(rand.NewSource(a.cfg.seed))
	cur := qon.Sequence(rng.Perm(n))
	inc := qon.NewIncEval(in, cur)
	curE := inc.CostLog2()
	curC := inc.Cost()
	best := append(qon.Sequence(nil), cur...)
	bestC := curC

	// Geometric cooling from an energy scale proportional to n·log t.
	temp := math.Max(1, curE/4)
	cooling := math.Pow(0.001/temp, 1/float64(iters))
	next := make(qon.Sequence, n)
	for it := 0; it < iters && !cancelled(ctx); it++ {
		copy(next, cur)
		from := moveFrom(rng, next)
		st.Move()
		if from == n {
			// Identity move: accepting it would change nothing.
			temp *= cooling
			continue
		}
		e := inc.MoveLog2(next, from)
		d := e - curE
		better := d < 0
		if math.Abs(d) <= qon.DefaultLogGuard {
			// Precision collapse: the float64 margin cannot be trusted,
			// so the downhill test reruns in exact arithmetic.
			st.Fallback()
			better = inc.MoveExact(next, from).LessEq(curC)
		}
		if better || rng.Float64() < math.Exp(-d/temp) {
			inc.Apply(next, from) // exact confirmation of the accepted move
			cur, next = next, cur
			curE = inc.CostLog2()
			curC = inc.Cost()
			if curC.Less(bestC) {
				bestC = curC
				best = append(best[:0], cur...)
			}
		}
		temp *= cooling
	}
	return &Result{Sequence: best, Cost: bestC}, nil
}

// RandomSampler evaluates k uniform random permutations and keeps the
// best — the weakest baseline, useful as a calibration floor. Anytime:
// cancellation returns the best of the samples drawn so far.
//
// Samples are screened in the log domain: only candidates within the
// guard band of (or clearly below) the incumbent pay for an exact
// evaluation, and the kept Result.Cost is always exact.
type RandomSampler struct {
	cfg options
}

// NewRandomSampler returns a random-sampling optimizer. Relevant
// options: WithSeed, WithSamples, WithStats.
func NewRandomSampler(opts ...Option) RandomSampler {
	return RandomSampler{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (RandomSampler) Name() string { return "random-sampler" }

// Optimize implements Optimizer.
func (r RandomSampler) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = r.cfg.instrument(in)
	samples := r.cfg.samples
	if samples <= 0 {
		samples = DefaultSamples
	}
	st := in.Stats()
	rng := rand.New(rand.NewSource(r.cfg.seed))
	lc := qon.NewLogCoster(in)
	var best *Result
	bestE := math.Inf(1)
	for i := 0; i < samples; i++ {
		if best != nil && cancelled(ctx) {
			break
		}
		z := qon.Sequence(rng.Perm(n))
		e := lc.CostLog2(z)
		d := e - bestE
		if best != nil && d > qon.DefaultLogGuard {
			continue // certainly worse than the incumbent
		}
		if best != nil && d >= -qon.DefaultLogGuard {
			// Near-tie with the incumbent: decide exactly.
			st.Fallback()
			if c := in.Cost(z); c.Less(best.Cost) {
				best = &Result{Sequence: z, Cost: c}
				bestE = safeLog2(c)
			}
			continue
		}
		// First sample, or clearly better: confirm exactly and adopt.
		c := in.Cost(z)
		best = &Result{Sequence: z, Cost: c}
		bestE = safeLog2(c)
	}
	return best, nil
}

// IterativeImprovement is repeated random-restart hill climbing with
// pairwise-swap moves to local optimality. Anytime: cancellation
// returns the best local optimum (or partial climb) reached so far.
//
// Candidate swaps are ranked via the tiered kernel exactly like
// Annealing: decisive log-domain margins decide directly, in-band
// margins fall back to exact arithmetic, and accepted swaps are
// confirmed exactly — so the climb trajectory is identical to one
// computed purely in num.Num.
type IterativeImprovement struct {
	cfg options
}

// NewIterativeImprovement returns an II optimizer. Relevant options:
// WithSeed, WithRestarts, WithStats.
func NewIterativeImprovement(opts ...Option) IterativeImprovement {
	return IterativeImprovement{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (IterativeImprovement) Name() string { return "iterative-improvement" }

// Optimize implements Optimizer.
func (ii IterativeImprovement) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = ii.cfg.instrument(in)
	restarts := ii.cfg.restarts
	if restarts <= 0 {
		restarts = DefaultRestarts
	}
	st := in.Stats()
	rng := rand.New(rand.NewSource(ii.cfg.seed))
	var best *Result
	var inc *qon.IncEval
	next := make(qon.Sequence, n)
	for r := 0; r < restarts; r++ {
		cur := qon.Sequence(rng.Perm(n))
		if inc == nil {
			inc = qon.NewIncEval(in, cur)
		} else {
			inc.Reset(cur)
		}
		curC := inc.Cost()
		curE := inc.CostLog2()
		improved := true
		for improved && !cancelled(ctx) {
			improved = false
			for i := 0; i < n && !improved; i++ {
				for j := i + 1; j < n && !improved; j++ {
					copy(next, cur)
					next[i], next[j] = next[j], next[i]
					st.Move()
					d := inc.MoveLog2(next, i) - curE
					better := d < -qon.DefaultLogGuard
					if !better && d <= qon.DefaultLogGuard {
						st.Fallback()
						better = inc.MoveExact(next, i).Less(curC)
					}
					if better {
						inc.Apply(next, i)
						cur, next = next, cur
						curC = inc.Cost()
						curE = inc.CostLog2()
						improved = true
					}
				}
			}
		}
		if best == nil || curC.Less(best.Cost) {
			best = &Result{Sequence: append(qon.Sequence(nil), cur...), Cost: curC}
		}
		if cancelled(ctx) {
			break
		}
	}
	return best, nil
}
