package opt

import (
	"fmt"
	"math"
	"math/rand"

	"approxqo/internal/qon"
)

// DefaultAnnealingIters is the default iteration budget for simulated
// annealing and iterative improvement.
const DefaultAnnealingIters = 20000

// Annealing is simulated annealing over permutations with swap and
// reinsert moves. Energy is log₂-cost, so acceptance probabilities stay
// meaningful despite astronomically large absolute costs.
type Annealing struct {
	seed  int64
	iters int
}

// NewAnnealing returns a simulated-annealing optimizer; iters ≤ 0 means
// DefaultAnnealingIters.
func NewAnnealing(seed int64, iters int) Annealing {
	if iters <= 0 {
		iters = DefaultAnnealingIters
	}
	return Annealing{seed: seed, iters: iters}
}

// Name implements Optimizer.
func (Annealing) Name() string { return "annealing" }

// Optimize implements Optimizer.
func (a Annealing) Optimize(in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	if n == 1 {
		return &Result{Sequence: qon.Sequence{0}, Cost: in.Cost(qon.Sequence{0})}, nil
	}
	rng := rand.New(rand.NewSource(a.seed))
	cur := qon.Sequence(rng.Perm(n))
	curE := in.Cost(cur).Log2()
	best := append(qon.Sequence(nil), cur...)
	bestE := curE

	// Geometric cooling from an energy scale proportional to n·log t.
	temp := math.Max(1, curE/4)
	cooling := math.Pow(0.001/temp, 1/float64(a.iters))
	next := make(qon.Sequence, n)
	for it := 0; it < a.iters; it++ {
		copy(next, cur)
		if rng.Intn(2) == 0 {
			// Swap move.
			i, j := rng.Intn(n), rng.Intn(n)
			next[i], next[j] = next[j], next[i]
		} else {
			// Reinsert move: remove position i, insert before position j.
			i, j := rng.Intn(n), rng.Intn(n)
			v := next[i]
			copy(next[i:], next[i+1:])
			copy(next[j+1:], next[j:n-1])
			next[j] = v
		}
		e := in.Cost(next).Log2()
		if e <= curE || rng.Float64() < math.Exp((curE-e)/temp) {
			cur, next = next, cur
			curE = e
			if curE < bestE {
				bestE = curE
				best = append(best[:0], cur...)
			}
		}
		temp *= cooling
	}
	return &Result{Sequence: best, Cost: in.Cost(best)}, nil
}

// RandomSampler evaluates k uniform random permutations and keeps the
// best — the weakest baseline, useful as a calibration floor.
type RandomSampler struct {
	seed    int64
	samples int
}

// NewRandomSampler returns a random-sampling optimizer; samples ≤ 0
// means 1000.
func NewRandomSampler(seed int64, samples int) RandomSampler {
	if samples <= 0 {
		samples = 1000
	}
	return RandomSampler{seed: seed, samples: samples}
}

// Name implements Optimizer.
func (RandomSampler) Name() string { return "random-sampler" }

// Optimize implements Optimizer.
func (r RandomSampler) Optimize(in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	rng := rand.New(rand.NewSource(r.seed))
	var best *Result
	for i := 0; i < r.samples; i++ {
		z := qon.Sequence(rng.Perm(n))
		c := in.Cost(z)
		if best == nil || c.Less(best.Cost) {
			best = &Result{Sequence: z, Cost: c}
		}
	}
	return best, nil
}

// IterativeImprovement is repeated random-restart hill climbing with
// pairwise-swap moves to local optimality.
type IterativeImprovement struct {
	seed     int64
	restarts int
}

// NewIterativeImprovement returns an II optimizer; restarts ≤ 0 means 10.
func NewIterativeImprovement(seed int64, restarts int) IterativeImprovement {
	if restarts <= 0 {
		restarts = 10
	}
	return IterativeImprovement{seed: seed, restarts: restarts}
}

// Name implements Optimizer.
func (IterativeImprovement) Name() string { return "iterative-improvement" }

// Optimize implements Optimizer.
func (ii IterativeImprovement) Optimize(in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	rng := rand.New(rand.NewSource(ii.seed))
	var best *Result
	for r := 0; r < ii.restarts; r++ {
		cur := qon.Sequence(rng.Perm(n))
		curC := in.Cost(cur)
		improved := true
		for improved {
			improved = false
			for i := 0; i < n && !improved; i++ {
				for j := i + 1; j < n && !improved; j++ {
					cur[i], cur[j] = cur[j], cur[i]
					if c := in.Cost(cur); c.Less(curC) {
						curC = c
						improved = true
					} else {
						cur[i], cur[j] = cur[j], cur[i]
					}
				}
			}
		}
		if best == nil || curC.Less(best.Cost) {
			best = &Result{Sequence: append(qon.Sequence(nil), cur...), Cost: curC}
		}
	}
	return best, nil
}
