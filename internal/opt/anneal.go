package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"approxqo/internal/qon"
)

// DefaultAnnealingIters is the default iteration budget for simulated
// annealing.
const DefaultAnnealingIters = 20000

// DefaultSamples is the default draw count for random sampling.
const DefaultSamples = 1000

// DefaultRestarts is the default restart count for iterative
// improvement.
const DefaultRestarts = 10

// Annealing is simulated annealing over permutations with swap and
// reinsert moves. Energy is log₂-cost, so acceptance probabilities stay
// meaningful despite astronomically large absolute costs. It is an
// anytime algorithm: on context cancellation it returns the best
// sequence visited so far.
type Annealing struct {
	cfg options
}

// NewAnnealing returns a simulated-annealing optimizer. Relevant
// options: WithSeed, WithIterations, WithStats.
func NewAnnealing(opts ...Option) Annealing {
	return Annealing{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (Annealing) Name() string { return "annealing" }

// Optimize implements Optimizer.
func (a Annealing) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = a.cfg.instrument(in)
	if n == 1 {
		return &Result{Sequence: qon.Sequence{0}, Cost: in.Cost(qon.Sequence{0})}, nil
	}
	iters := a.cfg.iters
	if iters <= 0 {
		iters = DefaultAnnealingIters
	}
	st := in.Stats()
	rng := rand.New(rand.NewSource(a.cfg.seed))
	cur := qon.Sequence(rng.Perm(n))
	curE := in.Cost(cur).Log2()
	best := append(qon.Sequence(nil), cur...)
	bestE := curE

	// Geometric cooling from an energy scale proportional to n·log t.
	temp := math.Max(1, curE/4)
	cooling := math.Pow(0.001/temp, 1/float64(iters))
	next := make(qon.Sequence, n)
	for it := 0; it < iters && !cancelled(ctx); it++ {
		copy(next, cur)
		if rng.Intn(2) == 0 {
			// Swap move.
			i, j := rng.Intn(n), rng.Intn(n)
			next[i], next[j] = next[j], next[i]
		} else {
			// Reinsert move: remove position i, insert before position j.
			i, j := rng.Intn(n), rng.Intn(n)
			v := next[i]
			copy(next[i:], next[i+1:])
			copy(next[j+1:], next[j:n-1])
			next[j] = v
		}
		st.Move()
		e := in.Cost(next).Log2()
		if e <= curE || rng.Float64() < math.Exp((curE-e)/temp) {
			cur, next = next, cur
			curE = e
			if curE < bestE {
				bestE = curE
				best = append(best[:0], cur...)
			}
		}
		temp *= cooling
	}
	return &Result{Sequence: best, Cost: in.Cost(best)}, nil
}

// RandomSampler evaluates k uniform random permutations and keeps the
// best — the weakest baseline, useful as a calibration floor. Anytime:
// cancellation returns the best of the samples drawn so far.
type RandomSampler struct {
	cfg options
}

// NewRandomSampler returns a random-sampling optimizer. Relevant
// options: WithSeed, WithSamples, WithStats.
func NewRandomSampler(opts ...Option) RandomSampler {
	return RandomSampler{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (RandomSampler) Name() string { return "random-sampler" }

// Optimize implements Optimizer.
func (r RandomSampler) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = r.cfg.instrument(in)
	samples := r.cfg.samples
	if samples <= 0 {
		samples = DefaultSamples
	}
	rng := rand.New(rand.NewSource(r.cfg.seed))
	var best *Result
	for i := 0; i < samples; i++ {
		if best != nil && cancelled(ctx) {
			break
		}
		z := qon.Sequence(rng.Perm(n))
		c := in.Cost(z)
		if best == nil || c.Less(best.Cost) {
			best = &Result{Sequence: z, Cost: c}
		}
	}
	return best, nil
}

// IterativeImprovement is repeated random-restart hill climbing with
// pairwise-swap moves to local optimality. Anytime: cancellation
// returns the best local optimum (or partial climb) reached so far.
type IterativeImprovement struct {
	cfg options
}

// NewIterativeImprovement returns an II optimizer. Relevant options:
// WithSeed, WithRestarts, WithStats.
func NewIterativeImprovement(opts ...Option) IterativeImprovement {
	return IterativeImprovement{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (IterativeImprovement) Name() string { return "iterative-improvement" }

// Optimize implements Optimizer.
func (ii IterativeImprovement) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = ii.cfg.instrument(in)
	restarts := ii.cfg.restarts
	if restarts <= 0 {
		restarts = DefaultRestarts
	}
	st := in.Stats()
	rng := rand.New(rand.NewSource(ii.cfg.seed))
	var best *Result
	for r := 0; r < restarts; r++ {
		cur := qon.Sequence(rng.Perm(n))
		curC := in.Cost(cur)
		improved := true
		for improved && !cancelled(ctx) {
			improved = false
			for i := 0; i < n && !improved; i++ {
				for j := i + 1; j < n && !improved; j++ {
					cur[i], cur[j] = cur[j], cur[i]
					st.Move()
					if c := in.Cost(cur); c.Less(curC) {
						curC = c
						improved = true
					} else {
						cur[i], cur[j] = cur[j], cur[i]
					}
				}
			}
		}
		if best == nil || curC.Less(best.Cost) {
			best = &Result{Sequence: append(qon.Sequence(nil), cur...), Cost: curC}
		}
		if cancelled(ctx) {
			break
		}
	}
	return best, nil
}
