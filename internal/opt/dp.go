package opt

import (
	"context"
	"fmt"
	"math/bits"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// DefaultMaxDPN caps the subset DP (2^n states).
const DefaultMaxDPN = 20

// ctxCheckMaskStride is how many DP masks the subset DPs expand between
// context polls: frequent enough that cancellation lands within
// milliseconds, rare enough that the poll is free next to the big.Float
// arithmetic per mask.
const ctxCheckMaskStride = 1024

// DP is the exact subset dynamic program for left-deep QO_N plans.
//
// Correctness rests on a structural fact of the paper's cost model: the
// intermediate size N(X) and the access cost min_{u∈X} W[v][u] depend
// only on the *set* X, not on the order it was joined in. Hence the
// cheapest way to have joined exactly the set X is
//
//	dp[X] = min over v∈X, |X|≥2 of dp[X\{v}] + N(X\{v})·min_{u} W[v][u]
//
// — a Held–Karp-style recurrence over 2^n subsets, exact in
// O(2^n·n²) operations. This is what certifies optima for the
// competitive-ratio experiments.
//
// The DP has no complete plan until the final subset, so on context
// cancellation Optimize returns the context's error rather than a
// partial result.
type DP struct {
	// MaxN caps the instance size; zero means DefaultMaxDPN.
	MaxN int

	cfg options
}

// NewDP returns the subset-DP optimizer. Relevant options:
// WithMaxRelations, WithStats.
func NewDP(opts ...Option) DP {
	o := buildOptions(opts)
	return DP{MaxN: o.maxN, cfg: o}
}

// Name implements Optimizer.
func (DP) Name() string { return "subset-dp" }

// Optimize implements Optimizer.
func (d DP) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	max := d.MaxN
	if max == 0 {
		max = DefaultMaxDPN
	}
	if n > max {
		return nil, fmt.Errorf("opt: subset DP capped at n ≤ %d, got %d", max, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = d.cfg.instrument(in)
	if n == 1 {
		return &Result{Sequence: qon.Sequence{0}, Cost: num.Zero(), Exact: true}, nil
	}

	total := 1 << n
	// size[mask] = N(mask); dp[mask] = best cost to join exactly mask;
	// parent[mask] = last vertex joined in the best plan for mask.
	size := make([]num.Num, total)
	dp := make([]num.Num, total)
	parent := make([]int8, total)
	size[0] = num.One()

	// Precompute sizes: N(mask) = N(mask\{low}) · factor(low, mask\{low}).
	scratch := graph.NewBitset(n)
	maskToBitset := func(mask int) *graph.Bitset {
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				scratch.Add(v)
			} else {
				scratch.Remove(v)
			}
		}
		return scratch
	}
	// All per-candidate arithmetic runs on pooled scratch accumulators;
	// only the size/dp table entries materialize immutable Nums. The
	// rounding sequence matches the immutable operations exactly, so the
	// table (and the certified optimum) is bit-identical either way.
	acc := num.NewScratch()
	factor := num.NewScratch()
	defer acc.Release()
	defer factor.Release()
	for mask := 1; mask < total; mask++ {
		low := bits.TrailingZeros(uint(mask))
		rest := mask &^ (1 << low)
		in.ExtendInto(factor, low, maskToBitset(rest))
		acc.Set(size[rest]).MulScratch(factor)
		size[mask] = acc.Num()
	}

	st := in.Stats()
	minw := newMinWIndex(in)
	cand := num.NewScratch()
	bestAcc := num.NewScratch()
	defer cand.Release()
	defer bestAcc.Release()
	for mask := 1; mask < total; mask++ {
		if mask%ctxCheckMaskStride == 0 && cancelled(ctx) {
			return nil, ctx.Err()
		}
		if bits.OnesCount(uint(mask)) < 2 {
			dp[mask] = num.Zero()
			parent[mask] = int8(bits.TrailingZeros(uint(mask)))
			continue
		}
		st.DPSubset()
		candidates := int64(0)
		bestV := -1
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 {
				continue
			}
			rest := mask &^ (1 << v)
			cand.Set(dp[rest]).MulAdd(size[rest], minw.min(in, v, rest))
			candidates++
			if bestV < 0 || cand.CmpScratch(bestAcc) < 0 {
				cand, bestAcc = bestAcc, cand
				bestV = v
			}
		}
		st.AddCostEvals(candidates)
		dp[mask], parent[mask] = bestAcc.Num(), int8(bestV)
	}

	// Reconstruct the sequence.
	seq := make(qon.Sequence, 0, n)
	for mask := total - 1; mask != 0; {
		v := int(parent[mask])
		seq = append(seq, v)
		mask &^= 1 << v
	}
	for l, r := 0, len(seq)-1; l < r; l, r = l+1, r-1 {
		seq[l], seq[r] = seq[r], seq[l]
	}
	// Report the winning sequence's cost re-derived along the canonical
	// evaluation order rather than the DP table's value: the table
	// accumulates N(mask) by peeling the lowest set bit, which rounds
	// differently in the last ulps than Evaluate's sequence-order walk
	// on non-dyadic workloads — and certification demands bit-equality
	// with the canonical recomputation.
	return &Result{Sequence: seq, Cost: in.Cost(seq), Exact: true}, nil
}
