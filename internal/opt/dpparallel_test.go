package opt

import (
	"testing"
	"testing/quick"
)

// Property: the parallel DP returns exactly the serial DP's cost (the
// sequences may differ when ties exist, but costs must be bit-equal
// since both evaluate the same products in the same association).
func TestQuickDPParallelMatchesSerial(t *testing.T) {
	prop := func(seed int64, pRaw uint8) bool {
		p := float64(pRaw) / 255
		in := randomInstance(7, p, seed)
		serial, err1 := NewDP().Optimize(ctx, in)
		par, err2 := NewDPParallel().Optimize(ctx, in)
		if err1 != nil || err2 != nil {
			return false
		}
		return serial.Cost.Equal(par.Cost) &&
			in.Cost(par.Sequence).Equal(par.Cost) &&
			par.Exact
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDPParallelWorkerCounts(t *testing.T) {
	in := randomInstance(8, 0.6, 11)
	want, err := NewDP().Optimize(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		d := DPParallel{Workers: workers}
		got, err := d.Optimize(ctx, in)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !got.Cost.Equal(want.Cost) {
			t.Errorf("workers=%d: cost mismatch", workers)
		}
	}
}

func TestDPParallelEdgeCases(t *testing.T) {
	if _, err := NewDPParallel().Optimize(ctx, randomInstance(1, 0, 1)); err != nil {
		t.Errorf("single relation: %v", err)
	}
	d := DPParallel{MaxN: 5}
	if _, err := d.Optimize(ctx, randomInstance(6, 0.5, 2)); err == nil {
		t.Error("cap not enforced")
	}
}
