package opt

import (
	"testing"
	"testing/quick"
)

// Property: the no-cross DP matches brute-force enumeration restricted
// to cartesian-product-free sequences, and is never below the
// unrestricted DP optimum.
func TestQuickDPNoCrossMatchesBruteForce(t *testing.T) {
	prop := func(seed int64, pRaw uint8) bool {
		p := 0.3 + 0.7*float64(pRaw)/255
		in := randomInstance(6, p, seed)
		restricted, errR := NewDPNoCross().Optimize(ctx, in)
		if !in.Q.IsConnected() {
			return errR != nil
		}
		if errR != nil {
			return false
		}
		if in.HasCartesianProduct(restricted.Sequence) {
			return false
		}
		if !in.Cost(restricted.Sequence).Equal(restricted.Cost) {
			return false
		}
		want := bruteConnectedOptimum(in)
		if !restricted.Cost.Equal(want) {
			return false
		}
		full, err := NewDP().Optimize(ctx, in)
		if err != nil {
			return false
		}
		return !restricted.Cost.Less(full.Cost)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDPNoCrossDisconnected(t *testing.T) {
	in := randomInstance(5, 0, 9) // edgeless
	if _, err := NewDPNoCross().Optimize(ctx, in); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestDPNoCrossSingle(t *testing.T) {
	in := randomInstance(1, 0, 2)
	r, err := NewDPNoCross().Optimize(ctx, in)
	if err != nil || !r.Cost.IsZero() {
		t.Fatalf("single relation mishandled: %v %v", r, err)
	}
}

func TestDPNoCrossCap(t *testing.T) {
	d := DPNoCross{MaxN: 4}
	if _, err := d.Optimize(ctx, randomInstance(5, 0.9, 3)); err == nil {
		t.Error("cap not enforced")
	}
}

// KBZ (tree-exact among connected orders) must agree with the no-cross
// DP on tree query graphs.
func TestDPNoCrossAgreesWithKBZOnTrees(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := treeInstance(7, seed)
		kbz, err := NewKBZ().Optimize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := NewDPNoCross().Optimize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if !kbz.Cost.Equal(dp.Cost) {
			t.Errorf("seed %d: KBZ 2^%.3f vs no-cross DP 2^%.3f",
				seed, kbz.Cost.Log2(), dp.Cost.Log2())
		}
	}
}
