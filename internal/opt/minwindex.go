package opt

import (
	"sort"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// minWIndex accelerates min_{u∈X} W[v][u] lookups for the subset DPs:
// for each v the candidate inners u are pre-sorted by W[v][u], so the
// minimum over a bitmask is the first sorted entry whose bit is set —
// O(1) expected instead of a big.Float comparison per member. Read-only
// after construction, hence safe to share across DP workers.
type minWIndex struct {
	order [][]int32 // order[v] = u's sorted ascending by W[v][u]
}

func newMinWIndex(in *qon.Instance) *minWIndex {
	n := in.N()
	ix := &minWIndex{order: make([][]int32, n)}
	for v := 0; v < n; v++ {
		us := make([]int32, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				us = append(us, int32(u))
			}
		}
		sort.SliceStable(us, func(a, b int) bool {
			return in.W[v][us[a]].Less(in.W[v][us[b]])
		})
		ix.order[v] = us
	}
	return ix
}

// min returns min_{u ∈ mask} W[v][u]. mask must be non-empty and must
// not contain v.
func (ix *minWIndex) min(in *qon.Instance, v int, mask int) num.Num {
	for _, u := range ix.order[v] {
		if mask&(1<<uint(u)) != 0 {
			return in.W[v][u]
		}
	}
	panic("opt: minWIndex over empty mask")
}

// minBitset is min for bitset-shaped prefixes (greedy's representation,
// which is not bounded by the machine word the DPs' masks live in). x
// must be non-empty and must not contain v. Ties sort stably, so the
// value returned always equals in.MinW(v, x).
func (ix *minWIndex) minBitset(in *qon.Instance, v int, x *graph.Bitset) num.Num {
	for _, u := range ix.order[v] {
		if x.Has(int(u)) {
			return in.W[v][u]
		}
	}
	panic("opt: minWIndex over empty bitset")
}
