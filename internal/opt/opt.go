// Package opt implements join-order optimizers over the QO_N cost
// model: two exact algorithms (exhaustive enumeration and a subset
// dynamic program that exploits the fact that N(X) is a set function)
// and the polynomial-time heuristics whose competitive ratios the
// paper's theorems bound from below — greedy, the Ibaraki–Kameda/KBZ
// rank algorithm for tree queries (with a spanning-tree fallback for
// cyclic graphs), simulated annealing, iterative improvement and random
// sampling.
package opt

import (
	"fmt"

	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// Result is the outcome of one optimization run.
type Result struct {
	Sequence qon.Sequence
	Cost     num.Num
	// Exact reports whether Cost is certified optimal.
	Exact bool
}

// Optimizer finds a join sequence for a QO_N instance.
type Optimizer interface {
	// Name identifies the algorithm for reports.
	Name() string
	// Optimize returns the best sequence found. Implementations return
	// an error when the instance is outside their applicable range
	// (size caps for the exact algorithms, tree-shape requirements…).
	Optimize(in *qon.Instance) (*Result, error)
}

// Heuristics returns the polynomial-time optimizer ensemble used by the
// competitive-ratio experiments, seeded deterministically.
func Heuristics(seed int64) []Optimizer {
	return []Optimizer{
		NewGreedy(GreedyMinSize),
		NewGreedy(GreedyMinCost),
		NewKBZ(),
		NewAnnealing(seed, 0),
		NewRandomSampler(seed+1, 0),
	}
}

// BestOf runs every optimizer and returns the cheapest result along
// with the name of the winning algorithm. Optimizers that error (e.g.
// out of range) are skipped; an error is returned only if all fail.
func BestOf(in *qon.Instance, optimizers ...Optimizer) (*Result, string, error) {
	var best *Result
	var winner string
	var firstErr error
	for _, o := range optimizers {
		r, err := o.Optimize(in)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", o.Name(), err)
			}
			continue
		}
		if best == nil || r.Cost.Less(best.Cost) {
			best, winner = r, o.Name()
		}
	}
	if best == nil {
		return nil, "", fmt.Errorf("opt: every optimizer failed: %w", firstErr)
	}
	return best, winner, nil
}
