// Package opt implements join-order optimizers over the QO_N cost
// model: two exact algorithms (exhaustive enumeration and a subset
// dynamic program that exploits the fact that N(X) is a set function)
// and the polynomial-time heuristics whose competitive ratios the
// paper's theorems bound from below — greedy, the Ibaraki–Kameda/KBZ
// rank algorithm for tree queries (with a spanning-tree fallback for
// cyclic graphs), simulated annealing, iterative improvement and random
// sampling.
//
// Every optimizer takes a context and honours cancellation: the anytime
// algorithms (greedy, KBZ, annealing, iterative improvement, random
// sampling, exhaustive) return the best complete sequence found so far
// when the context expires, while the exact DPs — which have no plan
// until the final subset — return the context's error. Constructors are
// configured with functional options (WithSeed, WithMaxRelations,
// WithStats, …); instrumentation counters ride on the instance (see
// qon.Instance.WithStats) so the cost model itself counts evaluations.
package opt

import (
	"context"
	"fmt"

	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// Result is the outcome of one optimization run.
type Result struct {
	Sequence qon.Sequence
	Cost     num.Num
	// Exact reports whether Cost is certified optimal.
	Exact bool
}

// Optimizer finds a join sequence for a QO_N instance.
type Optimizer interface {
	// Name identifies the algorithm for reports.
	Name() string
	// Optimize returns the best sequence found. Implementations return
	// an error when the instance is outside their applicable range
	// (size caps for the exact algorithms, tree-shape requirements…) or
	// when the context is cancelled before any complete sequence
	// exists; anytime algorithms return their best-so-far result (with
	// a nil error) on cancellation.
	Optimize(ctx context.Context, in *qon.Instance) (*Result, error)
}

// Reseedable is implemented by optimizers whose randomized state can be
// re-seeded between runs. The ensemble engine re-seeds a reseedable
// optimizer before each retry attempt, so a retry explores a different
// part of the search space instead of deterministically repeating the
// failure (see engine.WithRetries). Implementations must be safe for
// concurrent use with Optimize.
type Reseedable interface {
	Reseed(seed int64)
}

// cancelled reports whether ctx is done, without blocking.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Heuristics returns the polynomial-time optimizer ensemble used by the
// competitive-ratio experiments. Options apply to every member; the
// random sampler's seed is offset by one so it never mirrors the
// annealer's walk.
func Heuristics(opts ...Option) []Optimizer {
	o := buildOptions(opts)
	sampler := append(append([]Option(nil), opts...), WithSeed(o.seed+1))
	return []Optimizer{
		NewGreedy(GreedyMinSize, opts...),
		NewGreedy(GreedyMinCost, opts...),
		NewKBZ(opts...),
		NewAnnealing(opts...),
		NewRandomSampler(sampler...),
	}
}

// BestOf runs every optimizer in turn and returns the cheapest result
// along with the name of the winning algorithm. Optimizers that error
// (e.g. out of range) are skipped; an error is returned only if all
// fail. For concurrent execution with deadlines, panic isolation and a
// structured report, use the engine package instead.
func BestOf(ctx context.Context, in *qon.Instance, optimizers ...Optimizer) (*Result, string, error) {
	var best *Result
	var winner string
	var firstErr error
	for _, o := range optimizers {
		r, err := o.Optimize(ctx, in)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", o.Name(), err)
			}
			continue
		}
		if best == nil || r.Cost.Less(best.Cost) {
			best, winner = r, o.Name()
		}
	}
	if best == nil {
		return nil, "", fmt.Errorf("opt: every optimizer failed: %w", firstErr)
	}
	return best, winner, nil
}
