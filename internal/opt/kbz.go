package opt

import (
	"context"
	"fmt"
	"math/big"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// KBZ implements the Ibaraki–Kameda rank algorithm ([1] in the paper;
// popularized as KBZ by Krishnamurthy–Boral–Zaniolo [6]) for tree query
// graphs under the QO_N cost model, which satisfies the adjacent
// sequence interchange (ASI) property: for a fixed first relation,
// appending relation v with parent p costs C_v = W[v][p] per outer tuple
// and multiplies the intermediate size by T_v = t_v·s_vp, so sequences
// are ordered optimally by the rank (T_v − 1)/C_v subject to tree
// precedence — solvable in polynomial time by chain normalization and
// rank merging, trying each relation as the root.
//
// On cyclic query graphs it falls back to a maximum-selectivity spanning
// tree (the classic heuristic): ranks are computed on the tree, but the
// final sequence is costed on the true instance.
type KBZ struct {
	cfg options
}

// NewKBZ returns the KBZ optimizer. Relevant options: WithStats.
func NewKBZ(opts ...Option) KBZ {
	return KBZ{cfg: buildOptions(opts)}
}

// Name implements Optimizer.
func (KBZ) Name() string { return "kbz" }

// Optimize implements Optimizer. It errors on disconnected query
// graphs. Anytime: cancellation between roots returns the best
// sequence found so far.
func (k KBZ) Optimize(ctx context.Context, in *qon.Instance) (*Result, error) {
	n := in.N()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty instance")
	}
	in = k.cfg.instrument(in)
	if n == 1 {
		return &Result{Sequence: qon.Sequence{0}, Cost: num.Zero()}, nil
	}
	if !in.Q.IsConnected() {
		return nil, fmt.Errorf("opt: kbz requires a connected query graph")
	}
	tree := in.Q
	if in.Q.EdgeCount() != n-1 {
		tree = maxSelectivitySpanningTree(in)
	}
	var best *Result
	for root := 0; root < n; root++ {
		if best != nil && cancelled(ctx) {
			break
		}
		z := kbzSequence(in, tree, root)
		c := in.Cost(z)
		if best == nil || c.Less(best.Cost) {
			best = &Result{Sequence: z, Cost: c}
		}
	}
	return best, nil
}

// module is a compound element of an ASI chain.
type module struct {
	c, t  *big.Float // ASI cost and size factor
	verts []int
}

func newModule(c, t num.Num, v int) *module {
	return &module{c: c.Float(), t: t.Float(), verts: []int{v}}
}

// fuse absorbs m2 after m1: C = C1 + T1·C2, T = T1·T2.
func fuse(m1, m2 *module) *module {
	c := new(big.Float).SetPrec(num.Prec).Mul(m1.t, m2.c)
	c.Add(c, m1.c)
	t := new(big.Float).SetPrec(num.Prec).Mul(m1.t, m2.t)
	return &module{c: c, t: t, verts: append(append([]int(nil), m1.verts...), m2.verts...)}
}

// rankLess reports rank(m1) < rank(m2), with rank = (T−1)/C, C > 0.
// Cross-multiplied to avoid division: (T1−1)·C2 < (T2−1)·C1.
func rankLess(m1, m2 *module) bool {
	one := new(big.Float).SetPrec(num.Prec).SetInt64(1)
	l := new(big.Float).SetPrec(num.Prec).Sub(m1.t, one)
	l.Mul(l, m2.c)
	r := new(big.Float).SetPrec(num.Prec).Sub(m2.t, one)
	r.Mul(r, m1.c)
	return l.Cmp(r) < 0
}

// kbzSequence computes the IK-optimal topological order of the tree
// rooted at root (parent precedes child) and returns it as a sequence
// starting with root.
func kbzSequence(in *qon.Instance, tree *graph.Graph, root int) qon.Sequence {
	n := in.N()
	parent := make([]int, n)
	children := make([][]int, n)
	for i := range parent {
		parent[i] = -1
	}
	// BFS orientation.
	queue := []int{root}
	visited := make([]bool, n)
	visited[root] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		tree.Neighbors(v).ForEach(func(u int) {
			if !visited[u] {
				visited[u] = true
				parent[u] = v
				children[v] = append(children[v], u)
				queue = append(queue, u)
			}
		})
	}

	var chainOf func(v int) []*module
	chainOf = func(v int) []*module {
		var merged []*module
		for _, ch := range children[v] {
			merged = mergeByRank(merged, chainOf(ch))
		}
		if v == root {
			return merged // the root itself is not a join operation
		}
		head := newModule(in.W[v][parent[v]], in.T[v].Mul(in.S[v][parent[v]]), v)
		chain := append([]*module{head}, merged...)
		// Normalize: a parent module whose rank exceeds its successor's
		// must be fused with it (ASI's sequencing argument).
		for len(chain) >= 2 && !rankLess(chain[0], chain[1]) {
			chain = append([]*module{fuse(chain[0], chain[1])}, chain[2:]...)
		}
		return chain
	}

	seq := make(qon.Sequence, 0, n)
	seq = append(seq, root)
	for _, m := range chainOf(root) {
		seq = append(seq, m.verts...)
	}
	return seq
}

// mergeByRank merges two rank-ascending module chains.
func mergeByRank(a, b []*module) []*module {
	out := make([]*module, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if rankLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// maxSelectivitySpanningTree builds a spanning tree of the query graph
// preferring the most selective edges (smallest s) — Prim's algorithm
// on log₂ s weights.
func maxSelectivitySpanningTree(in *qon.Instance) *graph.Graph {
	n := in.N()
	tree := graph.New(n)
	inTree := make([]bool, n)
	inTree[0] = true
	for count := 1; count < n; count++ {
		bestU, bestV := -1, -1
		bestW := 0.0
		for u := 0; u < n; u++ {
			if !inTree[u] {
				continue
			}
			for v := 0; v < n; v++ {
				if inTree[v] || !in.Q.HasEdge(u, v) {
					continue
				}
				w := in.S[u][v].Log2()
				if bestU < 0 || w < bestW {
					bestU, bestV, bestW = u, v, w
				}
			}
		}
		if bestU < 0 {
			panic("opt: spanning tree on disconnected graph")
		}
		tree.AddEdge(bestU, bestV)
		inTree[bestV] = true
	}
	return tree
}
