package opt

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// ctx is the background context shared by tests that don't exercise
// cancellation.
var ctx = context.Background()

// randomInstance builds a random valid QO_N instance with edge access
// costs at their lower bound t·s (the regime the reductions use).
func randomInstance(n int, p float64, seed int64) *qon.Instance {
	rng := rand.New(rand.NewSource(seed))
	q := graph.Random(n, p, seed)
	in := &qon.Instance{Q: q, T: make([]num.Num, n)}
	for i := range in.T {
		in.T[i] = num.FromInt64(int64(rng.Intn(500) + 2))
	}
	in.S = make([][]num.Num, n)
	in.W = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
		in.W[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		in.S[i][i] = num.One()
		in.W[i][i] = in.T[i]
		for j := 0; j < i; j++ {
			if q.HasEdge(i, j) {
				s := num.FromFloat64(float64(rng.Intn(15)+1) / 16)
				in.S[i][j], in.S[j][i] = s, s
				in.W[i][j] = in.T[i].Mul(s)
				in.W[j][i] = in.T[j].Mul(s)
			} else {
				in.S[i][j], in.S[j][i] = num.One(), num.One()
				in.W[i][j], in.W[j][i] = in.T[i], in.T[j]
			}
		}
	}
	return in
}

// treeInstance builds a random instance whose query graph is a tree.
func treeInstance(n int, seed int64) *qon.Instance {
	in := randomInstance(n, 0, seed) // start edgeless
	rng := rand.New(rand.NewSource(seed + 1))
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		in.Q.AddEdge(u, v)
		s := num.FromFloat64(float64(rng.Intn(15)+1) / 16)
		in.S[u][v], in.S[v][u] = s, s
		in.W[u][v] = in.T[u].Mul(s)
		in.W[v][u] = in.T[v].Mul(s)
	}
	return in
}

func TestExhaustiveSmall(t *testing.T) {
	in := randomInstance(4, 0.7, 1)
	r, err := NewExhaustive().Optimize(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact || !in.ValidSequence(r.Sequence) {
		t.Fatal("exhaustive result malformed")
	}
	// No permutation is cheaper.
	perm := qon.Sequence{0, 1, 2, 3}
	permute(perm, 0, func(z qon.Sequence) bool {
		if in.Cost(z).Less(r.Cost) {
			t.Fatalf("sequence %v beats exhaustive optimum", z)
		}
		return true
	})
}

func TestExhaustiveCap(t *testing.T) {
	if _, err := NewExhaustive().Optimize(ctx, randomInstance(MaxExhaustiveN+1, 0.5, 2)); err == nil {
		t.Error("oversize instance accepted")
	}
}

// Property: the subset DP matches exhaustive enumeration exactly.
func TestQuickDPMatchesExhaustive(t *testing.T) {
	prop := func(seed int64, pRaw uint8) bool {
		n := 3 + int(seed%4&3) // 3..6
		if n < 3 {
			n = 3
		}
		in := randomInstance(n, float64(pRaw)/255, seed)
		ex, err1 := NewExhaustive().Optimize(ctx, in)
		dp, err2 := NewDP().Optimize(ctx, in)
		if err1 != nil || err2 != nil {
			return false
		}
		return ex.Cost.Equal(dp.Cost) && in.Cost(dp.Sequence).Equal(dp.Cost)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDPSingleRelation(t *testing.T) {
	in := randomInstance(1, 0, 3)
	r, err := NewDP().Optimize(ctx, in)
	if err != nil || !r.Cost.IsZero() {
		t.Fatalf("single relation: %v, %v", r, err)
	}
}

func TestDPCap(t *testing.T) {
	d := DP{MaxN: 5}
	if _, err := d.Optimize(ctx, randomInstance(6, 0.5, 4)); err == nil {
		t.Error("cap not enforced")
	}
}

// Property: every heuristic returns a valid sequence costing at least
// the DP optimum, and BestOf picks the cheapest.
func TestQuickHeuristicsSound(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInstance(6, 0.8, seed)
		dp, err := NewDP().Optimize(ctx, in)
		if err != nil {
			return false
		}
		for _, o := range []Optimizer{
			NewGreedy(GreedyMinSize),
			NewGreedy(GreedyMinCost),
			NewAnnealing(WithSeed(seed), WithIterations(2000)),
			NewRandomSampler(WithSeed(seed), WithSamples(200)),
			NewIterativeImprovement(WithSeed(seed), WithRestarts(3)),
		} {
			r, err := o.Optimize(ctx, in)
			if err != nil {
				return false
			}
			if !in.ValidSequence(r.Sequence) || !in.Cost(r.Sequence).Equal(r.Cost) {
				return false
			}
			if r.Cost.Less(dp.Cost) {
				return false // heuristic beating a certified optimum is a bug
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// bruteConnectedOptimum finds the cheapest sequence without cartesian
// products by enumeration (reference for KBZ).
func bruteConnectedOptimum(in *qon.Instance) num.Num {
	n := in.N()
	perm := make(qon.Sequence, n)
	for i := range perm {
		perm[i] = i
	}
	var best num.Num
	found := false
	permute(perm, 0, func(z qon.Sequence) bool {
		if in.HasCartesianProduct(z) {
			return true
		}
		c := in.Cost(z)
		if !found || c.Less(best) {
			best, found = c, true
		}
		return true
	})
	return best
}

// KBZ must be exact among connected (no cartesian product) orders on
// tree query graphs — the classic Ibaraki–Kameda guarantee.
func TestKBZOptimalOnTrees(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := treeInstance(6, seed)
		r, err := NewKBZ().Optimize(ctx, in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.HasCartesianProduct(r.Sequence) {
			t.Fatalf("seed %d: KBZ sequence has a cartesian product", seed)
		}
		want := bruteConnectedOptimum(in)
		if !r.Cost.Equal(want) {
			t.Errorf("seed %d: KBZ cost 2^%.3f, connected optimum 2^%.3f",
				seed, r.Cost.Log2(), want.Log2())
		}
	}
}

func TestKBZOnCyclicGraphs(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		in := randomInstance(7, 0.9, seed)
		if !in.Q.IsConnected() {
			continue
		}
		r, err := NewKBZ().Optimize(ctx, in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !in.ValidSequence(r.Sequence) {
			t.Fatalf("seed %d: invalid sequence", seed)
		}
		dp, err := NewDP().Optimize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost.Less(dp.Cost) {
			t.Errorf("seed %d: heuristic beats certified optimum", seed)
		}
	}
}

func TestKBZDisconnectedErrors(t *testing.T) {
	in := randomInstance(6, 0, 30) // edgeless: disconnected
	if _, err := NewKBZ().Optimize(ctx, in); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestBestOf(t *testing.T) {
	in := randomInstance(6, 0.8, 42)
	r, winner, err := BestOf(ctx, in, append(Heuristics(WithSeed(7)), NewDP())...)
	if err != nil {
		t.Fatal(err)
	}
	if winner == "" || !in.ValidSequence(r.Sequence) {
		t.Fatal("BestOf malformed result")
	}
	dp, _ := NewDP().Optimize(ctx, in)
	if !r.Cost.Equal(dp.Cost) {
		t.Error("BestOf including DP should achieve the optimum")
	}
	// All failing: empty optimizer achieving nothing.
	if _, _, err := BestOf(ctx, in, DP{MaxN: 2}); err == nil {
		t.Error("BestOf with only failing optimizers should error")
	}
}

func TestDecide(t *testing.T) {
	in := randomInstance(6, 0.7, 77)
	optR, err := NewDP().Optimize(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	yes, witness, err := Decide(ctx, in, optR.Cost)
	if err != nil || !yes {
		t.Fatalf("Decide at the optimum should be YES (err=%v)", err)
	}
	if !in.Cost(witness).LessEq(optR.Cost) {
		t.Error("witness exceeds the bound")
	}
	below := optR.Cost.Mul(num.FromFloat64(0.5))
	if yes, _, _ := Decide(ctx, in, below); yes {
		t.Error("Decide below the optimum should be NO")
	}
	if _, _, err := Decide(ctx, randomInstance(DefaultMaxDPN+1, 0.5, 1), optR.Cost); err == nil {
		t.Error("oversize instance accepted")
	}
}
