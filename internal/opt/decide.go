package opt

import (
	"context"

	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// Decide answers the paper's QO_N decision problem exactly: does a join
// sequence Z with C(Z) ≤ bound exist? On YES it returns an optimal
// witness sequence. It is limited to instances the exact subset DP can
// certify (n ≤ DefaultMaxDPN) — the problem is NP-complete, after all.
func Decide(ctx context.Context, in *qon.Instance, bound num.Num) (bool, qon.Sequence, error) {
	r, err := NewDP().Optimize(ctx, in)
	if err != nil {
		return false, nil, err
	}
	if r.Cost.LessEq(bound) {
		return true, r.Sequence, nil
	}
	return false, nil, nil
}
