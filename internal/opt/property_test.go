package opt

import (
	"math/rand"
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// propertyInstances is the generated-instance budget per invariant.
// The suites below are tier-1: they must stay well under 30s combined,
// so the randomized optimizers run with reduced search effort — the
// invariants hold regardless of how hard the search tries.
const propertyInstances = 200

// Property: every optimizer's claimed cost equals an independent
// qon.Cost recomputation of the sequence it returned, and the sequence
// is a valid permutation. This is the certification audit's core check,
// asserted here directly against every registered algorithm family.
func TestPropertyCostMatchesRecomputation(t *testing.T) {
	for i := 0; i < propertyInstances; i++ {
		seed := int64(i)
		n := 4 + i%5 // 4..8 relations
		in := randomInstance(n, 0.6, seed)
		optimizers := []Optimizer{
			NewDP(),
			NewGreedy(GreedyMinSize),
			NewGreedy(GreedyMinCost),
			NewAnnealing(WithSeed(seed), WithIterations(100)),
			NewIterativeImprovement(WithSeed(seed), WithRestarts(1)),
		}
		if in.Q.IsConnected() {
			// Cartesian-product-free orders only exist on connected graphs.
			optimizers = append(optimizers, NewDPNoCross())
		}
		for _, o := range optimizers {
			res, err := o.Optimize(ctx, in)
			if err != nil {
				t.Fatalf("instance %d: %s: %v", i, o.Name(), err)
			}
			if !in.ValidSequence(res.Sequence) {
				t.Fatalf("instance %d: %s returned invalid sequence %v", i, o.Name(), res.Sequence)
			}
			if recomputed := in.Cost(res.Sequence); !res.Cost.Equal(recomputed) {
				t.Fatalf("instance %d: %s claimed cost %v, recomputation gives %v",
					i, o.Name(), res.Cost, recomputed)
			}
		}
	}
}

// Property: the three exact optimizers agree on every instance small
// enough for full enumeration — the subset DP and its parallel variant
// are exhaustive search in disguise.
func TestPropertyExactOptimizersAgree(t *testing.T) {
	for i := 0; i < propertyInstances; i++ {
		n := 4 + i%4 // 4..7: exhaustive stays at ≤ 5040 permutations
		in := randomInstance(n, 0.55, int64(1000+i))
		ex, err := NewExhaustive().Optimize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := NewDP().Optimize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewDPParallel().Optimize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if !dp.Cost.Equal(ex.Cost) {
			t.Fatalf("instance %d (n=%d): DP %v != exhaustive %v", i, n, dp.Cost, ex.Cost)
		}
		if !par.Cost.Equal(ex.Cost) {
			t.Fatalf("instance %d (n=%d): DPParallel %v != exhaustive %v", i, n, par.Cost, ex.Cost)
		}
		if !dp.Exact || !par.Exact || !ex.Exact {
			t.Fatalf("instance %d: exact optimizer did not flag its result exact", i)
		}
	}
}

// approxEqual compares costs up to a 2^-200 relative error: num works
// at 256-bit precision, and recomputing the same product across a
// relabeled instance can shift the final rounding by an ulp.
func approxEqual(a, b num.Num) bool {
	if a.Equal(b) {
		return true
	}
	hi, lo := a.Max(b), a.Min(b)
	return hi.Sub(lo).Mul(num.Pow2(200)).LessEq(hi)
}

// relabel returns the instance with relation i renamed to pi[i]: the
// same optimization problem under a different vertex numbering.
func relabel(in *qon.Instance, pi []int) *qon.Instance {
	n := in.N()
	q := graph.New(n)
	for _, e := range in.Q.Edges() {
		q.AddEdge(pi[e[0]], pi[e[1]])
	}
	out := &qon.Instance{Q: q, T: make([]num.Num, n), S: make([][]num.Num, n), W: make([][]num.Num, n)}
	for i := 0; i < n; i++ {
		out.S[i] = make([]num.Num, n)
		out.W[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		out.T[pi[i]] = in.T[i]
		for j := 0; j < n; j++ {
			out.S[pi[i]][pi[j]] = in.S[i][j]
			out.W[pi[i]][pi[j]] = in.W[i][j]
		}
	}
	return out
}

// Metamorphic: relabeling the relations by a random permutation leaves
// the optimal cost invariant — the optimum is a property of the
// instance, not of the vertex numbering the search happens to follow.
func TestPropertyRelabelOptimumInvariant(t *testing.T) {
	for i := 0; i < propertyInstances; i++ {
		n := 5 + i%3 // 5..7
		in := randomInstance(n, 0.6, int64(2000+i))
		if err := in.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v", i, err)
		}
		rng := rand.New(rand.NewSource(int64(3000 + i)))
		pi := rng.Perm(n)
		rel := relabel(in, pi)
		if err := rel.Validate(); err != nil {
			t.Fatalf("instance %d: relabeled instance invalid: %v", i, err)
		}
		orig, err := NewDP().Optimize(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := NewDP().Optimize(ctx, rel)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqual(orig.Cost, perm.Cost) {
			t.Fatalf("instance %d: optimum changed under relabeling %v: %v -> %v",
				i, pi, orig.Cost, perm.Cost)
		}
		// The witness sequences map onto each other: relabeling the
		// original optimum must cost exactly the relabeled optimum.
		mapped := make(qon.Sequence, n)
		for k, v := range orig.Sequence {
			mapped[k] = pi[v]
		}
		if got := rel.Cost(mapped); !approxEqual(got, perm.Cost) {
			t.Fatalf("instance %d: mapped witness costs %v, optimum is %v", i, got, perm.Cost)
		}
	}
}
