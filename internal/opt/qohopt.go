package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qoh"
	"approxqo/internal/qon"
)

// QO_H plan search. A QO_H plan is a join sequence plus a pipeline
// decomposition plus memory allocations; the inner two layers are
// solved exactly by qoh.Instance.BestDecomposition, so the optimizers
// here search the sequence space only. Like their QO_N counterparts,
// they are anytime: cancellation returns the best feasible plan found
// so far (or an error if none exists yet).

// DefaultQOHAnnealingIters is the default iteration budget for QO_H
// annealing (each iteration costs an O(n³) decomposition DP).
const DefaultQOHAnnealingIters = 500

// instrumentQOH mirrors options.instrument for QO_H instances.
func (o options) instrumentQOH(in *qoh.Instance) *qoh.Instance {
	if o.stats != nil && in.Stats() == nil {
		return in.WithStats(o.stats)
	}
	return in
}

// QOHGreedy builds a sequence greedily — from each feasible start,
// repeatedly append the relation minimizing the next intermediate size
// — and returns the best optimally-decomposed plan among them.
// Relevant options: WithStats.
func QOHGreedy(ctx context.Context, in *qoh.Instance, opts ...Option) (*qoh.Plan, error) {
	n := in.N()
	if n < 2 {
		return nil, fmt.Errorf("opt: QO_H greedy needs at least two relations")
	}
	in = buildOptions(opts).instrumentQOH(in)
	ls := qoh.NewLogSizer(in)
	var best *qoh.Plan
	for first := 0; first < n; first++ {
		if best != nil && cancelled(ctx) {
			break
		}
		if !in.FeasibleStart(first) {
			continue
		}
		z := greedySizeSequence(in, ls, first)
		plan, err := in.BestDecomposition(z)
		if err != nil {
			continue
		}
		if best == nil || plan.Cost.Less(best.Cost) {
			best = plan
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no feasible QO_H plan found")
	}
	return best, nil
}

// qohExtendInto writes N(X ∪ {v}) into s using the exact operation order
// qoh.Sizes performs (multiply by t_v, then each s_vu in ascending u), so
// the chained sizes below stay bit-identical to a from-scratch Sizes
// walk of the finished sequence.
func qohExtendInto(s *num.Scratch, in *qoh.Instance, size num.Num, v int, x *graph.Bitset) {
	s.Set(size)
	s.Mul(in.T[v])
	x.ForEach(func(u int) { s.Mul(in.S[v][u]) })
}

// greedySizeSequence ranks candidate extensions through the tiered
// kernel: the float64 log₂ size (qoh.LogSizer) decides clear margins,
// and near-ties within qon.DefaultLogGuard are re-decided in exact
// arithmetic — so the chosen sequence is identical to the one the old
// fully-exact loop produced, at one big.Float op chain per *step*
// instead of per candidate.
func greedySizeSequence(in *qoh.Instance, ls *qoh.LogSizer, first int) []int {
	n := in.N()
	st := in.Stats()
	z := make([]int, 0, n)
	z = append(z, first)
	used := graph.NewBitset(n)
	used.Add(first)
	size := in.T[first]
	logSize := ls.LogT(first)
	cand := num.NewScratch()
	pickCand := num.NewScratch()
	defer cand.Release()
	defer pickCand.Release()
	for len(z) < n {
		pick := -1
		pickLog := math.Inf(1)
		pickExact := false // pickCand holds pick's exact next size
		for v := 0; v < n; v++ {
			if used.Has(v) {
				continue
			}
			st.FastEval()
			lnext := ls.ExtendLog2(logSize, v, used)
			d := lnext - pickLog
			if pick >= 0 && d > qon.DefaultLogGuard {
				continue // certainly not smaller than the incumbent
			}
			if pick >= 0 && d >= -qon.DefaultLogGuard {
				// Near-tie: the float64 margin cannot be trusted, so the
				// comparison reruns in exact arithmetic. Strict Less keeps
				// the incumbent on exact ties, matching the old loop.
				st.Fallback()
				if !pickExact {
					qohExtendInto(pickCand, in, size, pick, used)
					pickExact = true
				}
				qohExtendInto(cand, in, size, v, used)
				if cand.CmpScratch(pickCand) < 0 {
					pick, pickLog = v, lnext
					cand, pickCand = pickCand, cand
				}
				continue
			}
			pick, pickLog, pickExact = v, lnext, false
		}
		qohExtendInto(cand, in, size, pick, used)
		size = cand.Num()
		logSize = cand.Log2() // re-anchor the shadow from the exact value
		z = append(z, pick)
		used.Add(pick)
	}
	return z
}

// QOHAnnealing runs simulated annealing over join sequences, solving
// the decomposition and memory layers exactly per candidate. Relevant
// options: WithSeed, WithIterations (default DefaultQOHAnnealingIters),
// WithStats.
func QOHAnnealing(ctx context.Context, in *qoh.Instance, opts ...Option) (*qoh.Plan, error) {
	o := buildOptions(opts)
	iters := o.iters
	if iters <= 0 {
		iters = DefaultQOHAnnealingIters
	}
	n := in.N()
	if n < 2 {
		return nil, fmt.Errorf("opt: QO_H annealing needs at least two relations")
	}
	in = o.instrumentQOH(in)
	// Seed with the greedy plan; fall back to any feasible start.
	cur, err := QOHGreedy(ctx, in)
	if err != nil {
		return nil, err
	}
	st := in.Stats()
	rng := rand.New(rand.NewSource(o.seed))
	curZ := append([]int(nil), cur.Z...)
	curE := cur.Cost.Log2()
	best := cur
	temp := math.Max(1, curE/8)
	cooling := math.Pow(0.01/temp, 1/float64(iters))
	for it := 0; it < iters && !cancelled(ctx); it++ {
		nextZ := append([]int(nil), curZ...)
		i, j := rng.Intn(n), rng.Intn(n)
		nextZ[i], nextZ[j] = nextZ[j], nextZ[i]
		st.Move()
		// Feasibility pre-screen, exact: a decomposition exists iff the
		// all-singletons one does (singleton pipelines minimize each
		// join's mandatory memory), and that in turn holds iff every
		// non-first relation's hjmin fits M — which is FeasibleStart of
		// the leading relation. Screening here skips the O(n³)
		// decomposition DP for neighbours it would only reject.
		if !in.FeasibleStart(nextZ[0]) {
			temp *= cooling
			continue // infeasible neighbour
		}
		plan, err := in.BestDecomposition(nextZ)
		if err != nil {
			temp *= cooling
			continue // infeasible neighbour
		}
		e := plan.Cost.Log2()
		if e <= curE || rng.Float64() < math.Exp((curE-e)/temp) {
			curZ, curE = nextZ, e
			if plan.Cost.Less(best.Cost) {
				best = plan
			}
		}
		temp *= cooling
	}
	return best, nil
}

// QOHBest runs the QO_H ensemble: exhaustive when tiny, otherwise
// greedy plus annealing. Relevant options: WithSeed, WithIterations,
// WithStats.
func QOHBest(ctx context.Context, in *qoh.Instance, opts ...Option) (*qoh.Plan, error) {
	in = buildOptions(opts).instrumentQOH(in)
	if in.N() <= qoh.MaxExhaustiveN {
		return in.ExactBest()
	}
	best, err := QOHGreedy(ctx, in)
	if err != nil {
		return nil, err
	}
	if sa, err := QOHAnnealing(ctx, in, opts...); err == nil && sa.Cost.Less(best.Cost) {
		best = sa
	}
	return best, nil
}
