package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qoh"
)

// QO_H plan search. A QO_H plan is a join sequence plus a pipeline
// decomposition plus memory allocations; the inner two layers are
// solved exactly by qoh.Instance.BestDecomposition, so the optimizers
// here search the sequence space only. Like their QO_N counterparts,
// they are anytime: cancellation returns the best feasible plan found
// so far (or an error if none exists yet).

// DefaultQOHAnnealingIters is the default iteration budget for QO_H
// annealing (each iteration costs an O(n³) decomposition DP).
const DefaultQOHAnnealingIters = 500

// instrumentQOH mirrors options.instrument for QO_H instances.
func (o options) instrumentQOH(in *qoh.Instance) *qoh.Instance {
	if o.stats != nil && in.Stats() == nil {
		return in.WithStats(o.stats)
	}
	return in
}

// QOHGreedy builds a sequence greedily — from each feasible start,
// repeatedly append the relation minimizing the next intermediate size
// — and returns the best optimally-decomposed plan among them.
// Relevant options: WithStats.
func QOHGreedy(ctx context.Context, in *qoh.Instance, opts ...Option) (*qoh.Plan, error) {
	n := in.N()
	if n < 2 {
		return nil, fmt.Errorf("opt: QO_H greedy needs at least two relations")
	}
	in = buildOptions(opts).instrumentQOH(in)
	var best *qoh.Plan
	for first := 0; first < n; first++ {
		if best != nil && cancelled(ctx) {
			break
		}
		if !in.FeasibleStart(first) {
			continue
		}
		z := greedySizeSequence(in, first)
		plan, err := in.BestDecomposition(z)
		if err != nil {
			continue
		}
		if best == nil || plan.Cost.Less(best.Cost) {
			best = plan
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no feasible QO_H plan found")
	}
	return best, nil
}

func greedySizeSequence(in *qoh.Instance, first int) []int {
	n := in.N()
	z := make([]int, 0, n)
	z = append(z, first)
	used := graph.NewBitset(n)
	used.Add(first)
	size := in.T[first]
	for len(z) < n {
		pick := -1
		var pickSize num.Num
		for v := 0; v < n; v++ {
			if used.Has(v) {
				continue
			}
			next := size.Mul(in.T[v])
			used.ForEach(func(u int) { next = next.Mul(in.S[v][u]) })
			if pick < 0 || next.Less(pickSize) {
				pick, pickSize = v, next
			}
		}
		z = append(z, pick)
		used.Add(pick)
		size = pickSize
	}
	return z
}

// QOHAnnealing runs simulated annealing over join sequences, solving
// the decomposition and memory layers exactly per candidate. Relevant
// options: WithSeed, WithIterations (default DefaultQOHAnnealingIters),
// WithStats.
func QOHAnnealing(ctx context.Context, in *qoh.Instance, opts ...Option) (*qoh.Plan, error) {
	o := buildOptions(opts)
	iters := o.iters
	if iters <= 0 {
		iters = DefaultQOHAnnealingIters
	}
	n := in.N()
	if n < 2 {
		return nil, fmt.Errorf("opt: QO_H annealing needs at least two relations")
	}
	in = o.instrumentQOH(in)
	// Seed with the greedy plan; fall back to any feasible start.
	cur, err := QOHGreedy(ctx, in)
	if err != nil {
		return nil, err
	}
	st := in.Stats()
	rng := rand.New(rand.NewSource(o.seed))
	curZ := append([]int(nil), cur.Z...)
	curE := cur.Cost.Log2()
	best := cur
	temp := math.Max(1, curE/8)
	cooling := math.Pow(0.01/temp, 1/float64(iters))
	for it := 0; it < iters && !cancelled(ctx); it++ {
		nextZ := append([]int(nil), curZ...)
		i, j := rng.Intn(n), rng.Intn(n)
		nextZ[i], nextZ[j] = nextZ[j], nextZ[i]
		st.Move()
		plan, err := in.BestDecomposition(nextZ)
		if err != nil {
			temp *= cooling
			continue // infeasible neighbour
		}
		e := plan.Cost.Log2()
		if e <= curE || rng.Float64() < math.Exp((curE-e)/temp) {
			curZ, curE = nextZ, e
			if plan.Cost.Less(best.Cost) {
				best = plan
			}
		}
		temp *= cooling
	}
	return best, nil
}

// QOHBest runs the QO_H ensemble: exhaustive when tiny, otherwise
// greedy plus annealing. Relevant options: WithSeed, WithIterations,
// WithStats.
func QOHBest(ctx context.Context, in *qoh.Instance, opts ...Option) (*qoh.Plan, error) {
	in = buildOptions(opts).instrumentQOH(in)
	if in.N() <= qoh.MaxExhaustiveN {
		return in.ExactBest()
	}
	best, err := QOHGreedy(ctx, in)
	if err != nil {
		return nil, err
	}
	if sa, err := QOHAnnealing(ctx, in, opts...); err == nil && sa.Cost.Less(best.Cost) {
		best = sa
	}
	return best, nil
}
