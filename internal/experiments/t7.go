package experiments

import (
	"fmt"
	"math/rand"

	"approxqo/internal/report"
	"approxqo/internal/sqocp"
)

// T7 regenerates the Appendix A/B table: PARTITION instances carried
// through PARTITION → SPPCS → SQO−CP, with each stage decided exactly
// and the answers compared — the NP-completeness chain made executable.
func T7(opts Options) ([]*report.Table, error) {
	instances := [][]int64{
		{1, 1},
		{1, 2},
		{1, 2, 3},
		{1, 1, 3},
		{2, 3, 5},
	}
	count := 3
	if opts.Quick {
		count = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < count; i++ {
		items := make([]int64, rng.Intn(2)+2)
		for j := range items {
			items[j] = int64(rng.Intn(4) + 1)
		}
		instances = append(instances, items)
	}

	tb := report.New(
		"Appendix A/B: PARTITION → SPPCS → SQO−CP (star query, NL+sort-merge)",
		"items", "PARTITION", "SPPCS best", "L", "SPPCS", "star cost", "threshold M", "SQO−CP", "agree",
	)
	for _, items := range instances {
		p := &sqocp.Partition{Items: items}
		want, err := p.Decide()
		if err != nil {
			return nil, err
		}
		s, err := p.ToSPPCS()
		if err != nil {
			return nil, err
		}
		sYes, _, best, err := s.Decide()
		if err != nil {
			return nil, err
		}
		red, err := sqocp.FromSPPCS(s, s.L)
		if err != nil {
			return nil, err
		}
		qYes, _, cost, err := red.Decide()
		if err != nil {
			return nil, err
		}
		agree := "OK"
		if want != sYes || sYes != qYes {
			agree = "MISMATCH"
		}
		tb.AddRow(
			fmt.Sprint(items),
			fmt.Sprint(want),
			best.String(),
			s.L.String(),
			fmt.Sprint(sYes),
			fmt.Sprintf("≈2^%d", cost.BitLen()-1),
			fmt.Sprintf("≈2^%d", red.Threshold.BitLen()-1),
			fmt.Sprint(qYes),
			agree,
		)
	}
	return []*report.Table{tb}, nil
}
