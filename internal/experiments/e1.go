package experiments

import (
	"fmt"

	"approxqo/internal/engine"
	"approxqo/internal/opt"
	"approxqo/internal/report"
	"approxqo/internal/workload"
)

// E1 exercises the supervised ensemble engine on representative
// workload shapes and renders its per-run instrumentation: cost
// evaluations, DP subsets, annealing/II moves and wall time per
// optimizer, plus the first-cheapest-wins winner. This is the tabular
// rendering of engine.Report (cmd/qopt -json emits the same data as
// JSON).
func E1(opts Options) ([]*report.Table, error) {
	shapes := []workload.Shape{workload.Chain, workload.Star, workload.Clique}
	n := 14
	if opts.Quick {
		n = 10
	}
	var tables []*report.Table
	for _, shape := range shapes {
		in, err := workload.Generate(workload.Params{N: n, Shape: shape, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		ensemble := append(opt.Heuristics(opt.WithSeed(opts.Seed)),
			opt.NewDP(), opt.NewIterativeImprovement(opt.WithSeed(opts.Seed)))
		rep, err := engine.New(engine.WithoutEarlyExit()).Run(opts.ctx(), in, ensemble...)
		if err != nil {
			return nil, err
		}
		tb := report.New(
			fmt.Sprintf("Engine ensemble on %s (n=%d): per-run instrumentation, winner %s",
				shape, n, rep.Best.Winner),
			"optimizer", "cost", "exact", "wall ms", "cost evals", "dp subsets", "moves",
		)
		for _, run := range rep.Runs {
			cost := "—"
			if run.Cost != nil {
				cost = report.Log2(*run.Cost)
			}
			tb.AddRow(
				run.Name, cost, fmt.Sprint(run.Exact),
				fmt.Sprintf("%.1f", run.WallMS),
				fmt.Sprint(run.Stats.CostEvals),
				fmt.Sprint(run.Stats.DPSubsets),
				fmt.Sprint(run.Stats.Moves),
			)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}
