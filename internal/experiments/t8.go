package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"approxqo/internal/opt"
	"approxqo/internal/qon"
	"approxqo/internal/report"
	"approxqo/internal/workload"
)

// T8 regenerates the baseline table: optimizer quality and runtime on
// realistic random workloads across query shapes — the contrast to
// T6's hard instances. KBZ is exactly optimal on trees (chain, star);
// all heuristics stay within small factors of the certified optimum on
// benign instances.
func T8(opts Options) ([]*report.Table, error) {
	n := 12
	if opts.Quick {
		n = 9
	}
	tb := report.New(
		fmt.Sprintf("Baseline: optimizer quality on random workloads (n=%d)", n),
		"shape", "optimizer", "log₂ cost", "ratio to optimum", "time",
	)
	for _, shape := range workload.Shapes() {
		in, err := workload.Generate(workload.Params{N: n, Shape: shape, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		dpStart := time.Now()
		best, err := opt.NewDP().Optimize(context.Background(), in)
		if err != nil {
			return nil, err
		}
		tb.AddRow(string(shape), "subset-dp (exact)", report.Log2(best.Cost), "2^0.0",
			time.Since(dpStart).Round(time.Millisecond).String())
		for _, o := range append(opt.Heuristics(opt.WithSeed(opts.Seed)), opt.NewIterativeImprovement(opt.WithSeed(opts.Seed), opt.WithRestarts(5))) {
			start := time.Now()
			r, err := o.Optimize(context.Background(), in)
			if err != nil {
				tb.AddRow(string(shape), o.Name(), "—", "n/a: "+err.Error(), "")
				continue
			}
			tb.AddRow(string(shape), o.Name(),
				report.Log2(r.Cost),
				report.Ratio(r.Cost, best.Cost),
				time.Since(start).Round(time.Millisecond).String())
		}
	}

	cat := report.New(
		"Benchmark-shaped catalog queries (TPC-H/SSB profiles): certified optimum vs fact-first order",
		"query", "relations", "edges", "optimum", "fact-first", "optimizer win",
	)
	for _, c := range workload.Catalog() {
		best, err := opt.NewDP().Optimize(context.Background(), c.Instance)
		if err != nil {
			return nil, err
		}
		factFirst := descendingCardinality(c.Instance)
		factCost := c.Instance.Cost(factFirst)
		cat.AddRow(c.Name,
			fmt.Sprint(c.Instance.N()),
			fmt.Sprint(c.Instance.Q.EdgeCount()),
			report.Log2(best.Cost),
			report.Log2(factCost),
			report.Ratio(factCost, best.Cost))
	}
	return []*report.Table{tb, cat}, nil
}

// descendingCardinality orders relations biggest first — the classic
// bad plan that scans the fact table as the outermost loop.
func descendingCardinality(in *qon.Instance) qon.Sequence {
	z := make(qon.Sequence, in.N())
	for i := range z {
		z[i] = i
	}
	sort.Slice(z, func(a, b int) bool { return in.T[z[b]].Less(in.T[z[a]]) })
	return z
}
