package experiments

import (
	"context"

	"approxqo/internal/core"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
)

// bestCostQON returns the best cost found for a QO_N reduction
// instance: the exact subset-DP optimum when exact is true, otherwise
// the cheapest of the clique-first witness sequence and a reduced
// polynomial-time ensemble (greedy both rules plus a short annealing
// run — enough to make the NO side a serious search, cheap enough for
// the harness).
func bestCostQON(in *qon.Instance, clique []int, exact bool, seed int64) (num.Num, error) {
	if exact {
		r, err := opt.NewDP().Optimize(context.Background(), in)
		if err != nil {
			return num.Num{}, err
		}
		return r.Cost, nil
	}
	best := in.Cost(core.CliqueFirst(in.Q, clique))
	ensemble := []opt.Optimizer{
		opt.NewGreedy(opt.GreedyMinSize),
		opt.NewGreedy(opt.GreedyMinCost),
		opt.NewAnnealing(opt.WithSeed(seed), opt.WithIterations(4000)),
	}
	if r, _, err := opt.BestOf(context.Background(), in, ensemble...); err == nil && r.Cost.Less(best) {
		best = r.Cost
	}
	return best, nil
}
