package experiments

import (
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/report"
	"approxqo/internal/sat"
)

// T5 regenerates the Lemma 3/4 table: the clique reductions applied to
// a mix of exhaustively solved formulas, comparing the promised clique
// sizes with exact maximum-clique search on the constructed graphs.
func T5(opts Options) ([]*report.Table, error) {
	formulas := t5Formulas(opts)
	l3 := report.New(
		"Lemma 3: 3SAT → CLIQUE (predicted ω = 5v+4m − unsatisfied-clause deficit)",
		"formula", "v", "m", "sat", "n", "ω predicted", "ω exact", "c", "status",
	)
	l4 := report.New(
		"Lemma 4: 3SAT → ⅔CLIQUE (n = 3(v+2m); SAT ⟺ ω = 2n/3)",
		"formula", "v", "m", "sat", "n", "2n/3", "ω exact", "status",
	)
	for name, f := range formulas {
		satisfiable := sat.Satisfiable(f)
		deficit := 0
		if !satisfiable {
			best, _ := sat.MaxSat(f)
			deficit = f.NumClauses() - best
		}

		i3, err := cliquered.Lemma3(f)
		if err != nil {
			return nil, err
		}
		predicted := i3.CliqueIfSat - deficit
		omega3 := i3.G.CliqueNumber()
		status3 := "OK"
		if omega3 != predicted {
			status3 = "MISMATCH"
		}
		l3.AddRow(name, fmt.Sprint(f.NumVars), fmt.Sprint(f.NumClauses()),
			fmt.Sprint(satisfiable), fmt.Sprint(i3.G.N()),
			fmt.Sprint(predicted), fmt.Sprint(omega3),
			fmt.Sprintf("%.3f", i3.C), status3)

		i4, err := cliquered.Lemma4(f)
		if err != nil {
			return nil, err
		}
		omega4 := i4.G.CliqueNumber()
		status4 := "OK"
		if satisfiable && omega4 != i4.CliqueIfSat {
			status4 = "MISMATCH"
		}
		if !satisfiable && omega4 >= i4.CliqueIfSat {
			status4 = "MISMATCH"
		}
		l4.AddRow(name, fmt.Sprint(f.NumVars), fmt.Sprint(f.NumClauses()),
			fmt.Sprint(satisfiable), fmt.Sprint(i4.G.N()),
			fmt.Sprint(i4.CliqueIfSat), fmt.Sprint(omega4), status4)
	}
	return []*report.Table{l3, l4}, nil
}

func t5Formulas(opts Options) map[string]*sat.Formula {
	out := map[string]*sat.Formula{}
	simple := sat.New(3)
	simple.AddClause(1, 2, 3)
	simple.AddClause(-1, 2)
	out["hand-sat"] = simple

	contra := sat.New(2)
	contra.AddClause(1)
	contra.AddClause(-1)
	contra.AddClause(2)
	out["hand-unsat"] = contra

	out["unsat-core"] = sat.Unsatisfiable3SAT(0, 0, 0)

	count := 3
	if opts.Quick {
		count = 1
	}
	for i := 0; i < count; i++ {
		out[fmt.Sprintf("random-%d", i)] = sat.Random3SAT(3, 5, opts.Seed+int64(i))
	}
	planted, _ := sat.PlantedSatisfiable3SAT(4, 6, opts.Seed)
	out["planted-sat"] = planted
	return out
}
