package experiments

import (
	"context"
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/opt"
	"approxqo/internal/report"
)

// T6 regenerates the competitive-ratio table behind the paper's
// headline claim: each polynomial-time optimizer's cost ratio to the
// certified subset-DP optimum on hard f_N instances, and the hardness
// curve itself — log₂ of the YES/NO separation against log₂ K, whose
// ratio exponent η (gap = 2^{(log₂K)^η}) the theorem drives to 1.
func T6(opts Options) ([]*report.Table, error) {
	ns := []int{10, 12, 14, 16}
	if opts.Quick {
		ns = []int{10, 12}
	}
	ratio := report.New(
		"Competitive ratios vs certified optimum on YES instances (c=3/4, d=1/4, α=4^n)",
		"n", "optimizer", "cost", "optimum", "ratio",
	)
	curve := report.New(
		"Hardness curve: certified YES/NO separation (the ratio no poly algorithm can beat)",
		"n", "log2 K", "YES opt", "NO opt", "separation", "η = log log gap / log log K",
	)
	for _, n := range ns {
		yes, no := cliquered.YesNoPair(n, t1C, t1D)
		params := core.FNParams{A: 2 * int64(n), OmegaYes: yes.Omega, OmegaNo: no.Omega}
		fnYes, err := core.FN(yes.G, params)
		if err != nil {
			return nil, err
		}
		fnNo, err := core.FN(no.G, params)
		if err != nil {
			return nil, err
		}
		dp := opt.DP{MaxN: 16}
		yesOpt, err := dp.Optimize(context.Background(), fnYes.QON)
		if err != nil {
			return nil, err
		}
		noOpt, err := dp.Optimize(context.Background(), fnNo.QON)
		if err != nil {
			return nil, err
		}
		for _, o := range opt.Heuristics(opt.WithSeed(opts.Seed)) {
			r, err := o.Optimize(context.Background(), fnYes.QON)
			if err != nil {
				continue
			}
			ratio.AddRow(
				fmt.Sprint(n), o.Name(),
				report.Log2(r.Cost), report.Log2(yesOpt.Cost),
				report.Ratio(r.Cost, yesOpt.Cost),
			)
		}
		cert := &core.GapCertificate{
			Name:        fmt.Sprintf("T6 n=%d", n),
			YesBound:    fnYes.K,
			NoBound:     fnNo.NoLowerBound,
			YesMeasured: yesOpt.Cost,
			NoMeasured:  noOpt.Cost,
			NoExact:     true,
		}
		curve.AddRow(
			fmt.Sprint(n),
			report.Log2(fnYes.K),
			report.Log2(yesOpt.Cost),
			report.Log2(noOpt.Cost),
			fmt.Sprintf("2^%.1f", cert.GapLog2()),
			fmt.Sprintf("%.3f", cert.CompetitiveRatioExponent()),
		)
	}

	// The δ-sweep: the theorem's 2^{log^{1−δ}K} form comes from letting
	// α = 4^{n^{1/δ}} grow; at fixed n, increasing log α drives the gap
	// exponent η toward 1 (δ → 0).
	alphaSweep := report.New(
		"δ-sweep at n = 12: growing α drives the gap exponent η toward 1 (Theorem 9's δ → 0)",
		"log2α", "log2 K", "YES opt", "NO opt", "separation", "η",
	)
	{
		const n = 12
		yes, no := cliquered.YesNoPair(n, t1C, t1D)
		for _, a := range []int64{6, 12, 24, 96, 384} {
			params := core.FNParams{A: a, OmegaYes: yes.Omega, OmegaNo: no.Omega}
			fnYes, err := core.FN(yes.G, params)
			if err != nil {
				return nil, err
			}
			fnNo, err := core.FN(no.G, params)
			if err != nil {
				return nil, err
			}
			dp := opt.NewDP()
			yesOpt, err := dp.Optimize(context.Background(), fnYes.QON)
			if err != nil {
				return nil, err
			}
			noOpt, err := dp.Optimize(context.Background(), fnNo.QON)
			if err != nil {
				return nil, err
			}
			cert := &core.GapCertificate{
				YesMeasured: yesOpt.Cost,
				NoMeasured:  noOpt.Cost,
				YesBound:    fnYes.K,
				NoBound:     fnNo.NoLowerBound,
				NoExact:     true,
			}
			alphaSweep.AddRow(
				fmt.Sprint(a),
				report.Log2(fnYes.K),
				report.Log2(yesOpt.Cost),
				report.Log2(noOpt.Cost),
				fmt.Sprintf("2^%.1f", cert.GapLog2()),
				fmt.Sprintf("%.3f", cert.CompetitiveRatioExponent()),
			)
		}
	}
	return []*report.Table{ratio, curve, alphaSweep}, nil
}
