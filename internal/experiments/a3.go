package experiments

import (
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/report"
)

// A3 probes the f_H construction's one free modelling knob: the hjmin
// exponent ψ (the paper only requires hjmin(b) = Θ(b^ψ) for some
// 0 < ψ < 1). The Theorem 15 gap must persist for every ψ — if it
// didn't, the reproduction's concrete g/hjmin instantiation would be
// doing load-bearing work the paper's abstract model does not license.
func A3(opts Options) ([]*report.Table, error) {
	psis := []float64{0.3, 0.5, 0.7}
	if opts.Quick {
		psis = []float64{0.3, 0.7}
	}
	const n = 6 // exhaustively exact
	tb := report.New(
		fmt.Sprintf("Ablation: hjmin exponent ψ sensitivity (n=%d, exhaustive QO_H optima)", n),
		"ψ", "M", "YES opt", "NO opt", "gap", "certificate",
	)
	yes := cliquered.CertifiedCliqueGraph(n, 2*n/3)
	no := cliquered.CertifiedCliqueGraph(n, 2*n/3-1)
	for _, psi := range psis {
		fhYes, err := core.FH(yes.G, core.FHParams{A: 12, Psi: psi})
		if err != nil {
			return nil, err
		}
		fhNo, err := core.FH(no.G, core.FHParams{A: 12, Psi: psi})
		if err != nil {
			return nil, err
		}
		yesBest, err := fhYes.QOH.ExactBest()
		if err != nil {
			return nil, err
		}
		noBest, err := fhNo.QOH.ExactBest()
		if err != nil {
			return nil, err
		}
		status := "OK"
		if noBest.Cost.LessEq(yesBest.Cost) {
			status = "VIOLATED: no gap"
		}
		tb.AddRow(
			fmt.Sprint(psi),
			report.Log2(fhYes.M),
			report.Log2(yesBest.Cost),
			report.Log2(noBest.Cost),
			report.Ratio(noBest.Cost, yesBest.Cost),
			status,
		)
	}
	return []*report.Table{tb}, nil
}
