package experiments

import (
	"context"
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/opt"
	"approxqo/internal/report"
)

// A2 verifies §4's closing remark: "even if we had restricted the join
// sequences in the problem definition of QO_N to have no cartesian
// products, the same complexity gap would be obtained." It compares the
// exact optimum over all sequences with the exact optimum over
// cartesian-product-free sequences ([2]'s search space) on matched
// YES/NO pairs.
func A2(opts Options) ([]*report.Table, error) {
	ns := []int{10, 12, 14}
	if opts.Quick {
		ns = []int{10, 12}
	}
	tb := report.New(
		"Ablation: cartesian products allowed vs forbidden on hard f_N instances (§4 remark)",
		"n", "side", "optimum (all Z)", "optimum (no ×)", "penalty of forbidding ×", "gap preserved",
	)
	for _, n := range ns {
		yes, no := cliquered.YesNoPair(n, t1C, t1D)
		params := core.FNParams{A: 2 * int64(n), OmegaYes: yes.Omega, OmegaNo: no.Omega}
		type row struct {
			name             string
			free, restricted string
		}
		var gaps [2]float64
		for i, side := range []struct {
			name string
			g    cliquered.Certified
		}{{"YES", yes}, {"NO", no}} {
			fn, err := core.FN(side.g.G, params)
			if err != nil {
				return nil, err
			}
			full, err := opt.NewDP().Optimize(context.Background(), fn.QON)
			if err != nil {
				return nil, err
			}
			restricted, err := opt.NewDPNoCross().Optimize(context.Background(), fn.QON)
			if err != nil {
				return nil, err
			}
			if restricted.Cost.Less(full.Cost) {
				return nil, fmt.Errorf("experiments: restricted optimum below unrestricted at n=%d", n)
			}
			gaps[i] = restricted.Cost.Log2()
			status := ""
			if i == 1 {
				if gaps[1] > gaps[0] {
					status = "OK"
				} else {
					status = "VIOLATED"
				}
			}
			tb.AddRow(fmt.Sprint(n), side.name,
				report.Log2(full.Cost), report.Log2(restricted.Cost),
				report.Ratio(restricted.Cost, full.Cost), status)
		}
	}
	return []*report.Table{tb}, nil
}
