package experiments

import (
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/report"
)

// T4 regenerates the Theorem 17 table: the f_{H,e} gap on sparse query
// graphs. The source ⅔CLIQUE pair is blown up to m = n² relations with
// exactly e(m) edges; witness plans (YES) and sampled adversarial plans
// (NO) are optimally decomposed and compared against L and G.
func T4(opts Options) ([]*report.Table, error) {
	taus := []float64{0.75, 0.9}
	n := 6
	if opts.Quick {
		taus = []float64{0.75}
	}
	tb := report.New(
		fmt.Sprintf("Theorem 17: sparse QO_H gap (source n=%d, m=n², ωYes=%d, ωNo=%d)", n, 2*n/3, 2*n/3-1),
		"τ", "m", "e(m)", "L", "YES found", "G bound", "NO found", "gap", "certificate",
	)
	for _, tau := range taus {
		row, err := t4Row(n, tau, opts)
		if err != nil {
			return nil, err
		}
		tb.AddRow(row...)
	}
	return []*report.Table{tb}, nil
}

func t4Row(n int, tau float64, opts Options) ([]string, error) {
	yes := cliquered.CertifiedCliqueGraph(n, 2*n/3)
	no := cliquered.CertifiedCliqueGraph(n, 2*n/3-1)
	m := n * n
	a := int64(n) * int64(m) // negligibility threshold n·m
	if a*int64(n-1)%2 != 0 {
		a++
	}
	mk := func(g cliquered.Certified) (*core.SparseFHInstance, error) {
		return core.SparseFH(g.G, core.SparseFHParams{
			FHParams: core.FHParams{A: a},
			K:        2,
			Budget:   core.SparseBudget(tau),
			Seed:     opts.Seed,
		})
	}
	sy, err := mk(yes)
	if err != nil {
		return nil, err
	}
	sn, err := mk(no)
	if err != nil {
		return nil, err
	}

	yesPlan, err := sy.QOH.BestDecomposition(sy.WitnessSequenceSparse(yes.G.MaxClique()))
	if err != nil {
		return nil, err
	}
	// NO side: the adversary's clique-first orders through the blow-up.
	noPlan, err := sn.QOH.BestDecomposition(sn.WitnessSequenceSparse(no.G.MaxClique()))
	if err != nil {
		return nil, err
	}
	gb := sn.GBound(no.Omega)
	status := "OK"
	if noPlan.Cost.LessEq(yesPlan.Cost) {
		status = "VIOLATED: no gap"
	}
	return []string{
		fmt.Sprint(tau),
		fmt.Sprint(sy.M),
		fmt.Sprint(sy.QOH.Q.EdgeCount()),
		report.Log2(sy.L),
		report.Log2(yesPlan.Cost),
		report.Log2(gb),
		report.Log2(noPlan.Cost),
		report.Ratio(noPlan.Cost, yesPlan.Cost),
		status,
	}, nil
}
