package experiments

import (
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/report"
)

// F1 regenerates the Lemma 5/6 figure as a series table: the per-join
// cost profile H_i along a clique-first sequence of a YES instance —
// a geometric rise to the peak at i = (c−d/2)n, then decay — plus the
// running total against K.
func F1(opts Options) ([]*report.Table, error) {
	n := 20
	if opts.Quick {
		n = 12
	}
	yes, no := cliquered.YesNoPair(n, t1C, t1D)
	fn, err := core.FN(yes.G, core.FNParams{A: 2 * int64(n), OmegaYes: yes.Omega, OmegaNo: no.Omega})
	if err != nil {
		return nil, err
	}
	z := core.CliqueFirst(yes.G, yes.G.MaxClique())
	bd := fn.QON.Evaluate(z)

	tb := report.New(
		fmt.Sprintf("Lemmas 5/6: H_i profile, clique-first sequence (n=%d, peak=%d, K=%s)",
			n, fn.Peak, report.Log2(fn.K)),
		"i", "B_i", "D_i", "H_i", "running ΣH", "marker",
	)
	running := bd.H[0]
	for i := range bd.H {
		marker := ""
		if i+1 == fn.Peak {
			marker = "← peak (c−d/2)n"
		}
		if i > 0 {
			running = running.Add(bd.H[i])
		}
		tb.AddRow(
			fmt.Sprint(i+1),
			fmt.Sprint(bd.B[i+1]),
			fmt.Sprint(bd.D[i+1]),
			report.Log2(bd.H[i]),
			report.Log2(running),
			marker,
		)
	}
	status := report.New("", "check", "value")
	verdict := "OK: total ≤ K"
	if fn.K.Less(bd.C) {
		verdict = "VIOLATED: total > K"
	}
	status.AddRow("C(Z) vs K", fmt.Sprintf("%s vs %s — %s", report.Log2(bd.C), report.Log2(fn.K), verdict))
	return []*report.Table{tb, status}, nil
}
