package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// Every experiment must run in quick mode, produce at least one table
// with rows, and report no violated certificate.
func TestAllExperimentsQuick(t *testing.T) {
	opts := Options{Quick: true, Seed: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(opts)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			rows := 0
			for _, tb := range tables {
				rows += len(tb.Rows)
				for _, row := range tb.Rows {
					for _, cell := range row {
						if strings.Contains(cell, "VIOLATED") || strings.Contains(cell, "MISMATCH") {
							t.Errorf("%s: %v", e.ID, row)
						}
					}
				}
			}
			if rows == 0 {
				t.Fatalf("%s produced empty tables", e.ID)
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("T1"); err != nil {
		t.Error(err)
	}
	if _, err := Find("T99"); err == nil {
		t.Error("unknown experiment found")
	}
}

func TestWriteOne(t *testing.T) {
	e, err := Find("T5")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteOne(&b, e, Options{Quick: true, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "== T5:") || !strings.Contains(b.String(), "Lemma 3") {
		t.Errorf("unexpected output:\n%s", b.String())
	}
}

// parseGapLog2 extracts x from a "2^x" cell.
func parseGapLog2(t *testing.T, cell string) float64 {
	t.Helper()
	var x float64
	if _, err := fmt.Sscanf(cell, "2^%f", &x); err != nil {
		t.Fatalf("cannot parse gap cell %q: %v", cell, err)
	}
	return x
}

// The Theorem 9 gap must grow strictly with n — the quantitative heart
// of the reproduction, asserted, not just printed.
func TestT1GapGrowsWithN(t *testing.T) {
	tables, err := T1(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) < 2 {
		t.Fatal("need at least two sizes")
	}
	prev := -1.0
	for _, row := range rows {
		gap := parseGapLog2(t, row[8]) // "gap" column
		if gap <= prev {
			t.Errorf("gap not increasing: %v after %v", gap, prev)
		}
		prev = gap
	}
}

// The δ-sweep's gap exponent η must increase monotonically with α.
func TestT6EtaMonotoneInAlpha(t *testing.T) {
	tables, err := T6(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sweep := tables[2]
	prev := -1.0
	for _, row := range sweep.Rows {
		var eta float64
		if _, err := fmt.Sscanf(row[5], "%f", &eta); err != nil {
			t.Fatal(err)
		}
		if eta <= prev {
			t.Errorf("η not increasing: %v after %v", eta, prev)
		}
		prev = eta
	}
}

// Golden regression for the T1 quick table: the quantities are exact
// powers of two computed from the reduction formulas, so any change is
// a behaviour change, not noise.
func TestT1GoldenQuick(t *testing.T) {
	tables, err := T1(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	row := tables[0].Rows[0] // n = 12
	want := []string{"12", "9", "6", "24", "2^1056.0", "2^1033.6", "2^1080.0", "2^1105.0", "2^71.4", "2^24.0", "true", "OK"}
	if len(row) != len(want) {
		t.Fatalf("row has %d cells, want %d", len(row), len(want))
	}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("cell %d (%s): got %q, want %q", i, tables[0].Columns[i], row[i], want[i])
		}
	}
}
