package experiments

import (
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/report"
)

// t1C and t1D are the promise constants used throughout the f_N
// scaling experiments: ωYes = ¾n, ωNo = ½n.
const (
	t1C = 0.75
	t1D = 0.25
)

// T1 regenerates the Theorem 9 table: for a matched YES/NO certified
// pair at each n, the promised bounds K and K·α^{(d/2)n−1} versus the
// measured best costs. Sizes where the subset DP applies are certified
// exact; larger sizes report the best of the heuristic ensemble (an
// upper bound for YES, and for NO a value the theorem lower-bounds).
func T1(opts Options) ([]*report.Table, error) {
	ns := []int{12, 16, 20, 24}
	if opts.Quick {
		ns = []int{12, 16}
	}
	tb := report.New(
		"Theorem 9: QO_N gap on certified YES/NO pairs (c=3/4, d=1/4, α=4^n)",
		"n", "ωYes", "ωNo", "log2α", "K", "YES found", "NO bound", "NO found", "gap", "promised", "exact", "certificate",
	)
	for _, n := range ns {
		row, err := t1Row(n, opts)
		if err != nil {
			return nil, err
		}
		tb.AddRow(row...)
	}
	return []*report.Table{tb}, nil
}

func t1Row(n int, opts Options) ([]string, error) {
	yes, no := cliquered.YesNoPair(n, t1C, t1D)
	params := core.FNParams{A: 2 * int64(n), OmegaYes: yes.Omega, OmegaNo: no.Omega}
	fnYes, err := core.FN(yes.G, params)
	if err != nil {
		return nil, err
	}
	fnNo, err := core.FN(no.G, params)
	if err != nil {
		return nil, err
	}

	exact := n <= 16
	yesCost, err := bestCostQON(fnYes.QON, yes.G.MaxClique(), exact, opts.Seed)
	if err != nil {
		return nil, err
	}
	noCost, err := bestCostQON(fnNo.QON, no.G.MaxClique(), exact, opts.Seed+1)
	if err != nil {
		return nil, err
	}

	cert := &core.GapCertificate{
		Name:        fmt.Sprintf("T1 n=%d", n),
		YesBound:    fnYes.K,
		NoBound:     fnNo.NoLowerBound,
		YesMeasured: yesCost,
		NoMeasured:  noCost,
		NoExact:     exact,
	}
	status := "OK"
	if err := cert.Check(); err != nil {
		status = "VIOLATED: " + err.Error()
	}
	return []string{
		fmt.Sprint(n),
		fmt.Sprint(yes.Omega),
		fmt.Sprint(no.Omega),
		fmt.Sprint(2 * n),
		report.Log2(fnYes.K),
		report.Log2(yesCost),
		report.Log2(fnNo.NoLowerBound),
		report.Log2(noCost),
		fmt.Sprintf("2^%.1f", cert.GapLog2()),
		fmt.Sprintf("2^%.1f", cert.PromisedGapLog2()),
		fmt.Sprint(exact),
		status,
	}, nil
}
