package experiments

import (
	"context"
	"fmt"

	"approxqo/internal/bushy"
	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/opt"
	"approxqo/internal/report"
	"approxqo/internal/workload"
)

// A1 is the ablation DESIGN.md §3 calls out: does allowing bushy join
// trees (intermediates as hash/scan inners) change the picture? On the
// hard f_N instances the bushy optimum tracks the left-deep optimum —
// the hardness is not an artifact of the left-deep restriction — while
// on realistic workloads bushy plans win modest factors.
func A1(opts Options) ([]*report.Table, error) {
	hard := report.New(
		"Ablation: left-deep vs bushy optima on hard f_N instances (c=3/4, d=1/4)",
		"n", "side", "left-deep opt", "bushy opt", "bushy advantage",
	)
	ns := []int{10, 12, 14}
	if opts.Quick {
		ns = []int{10, 12}
	}
	for _, n := range ns {
		yes, no := cliquered.YesNoPair(n, t1C, t1D)
		params := core.FNParams{A: 2 * int64(n), OmegaYes: yes.Omega, OmegaNo: no.Omega}
		for _, side := range []struct {
			name string
			g    cliquered.Certified
		}{{"YES", yes}, {"NO", no}} {
			fn, err := core.FN(side.g.G, params)
			if err != nil {
				return nil, err
			}
			ld, err := opt.NewDP().Optimize(context.Background(), fn.QON)
			if err != nil {
				return nil, err
			}
			_, bc, err := bushy.Optimize(fn.QON)
			if err != nil {
				return nil, err
			}
			if ld.Cost.Less(bc) {
				return nil, fmt.Errorf("experiments: bushy optimum above left-deep at n=%d (%s)", n, side.name)
			}
			hard.AddRow(fmt.Sprint(n), side.name,
				report.Log2(ld.Cost), report.Log2(bc), report.Ratio(ld.Cost, bc))
		}
	}

	bench := report.New(
		"Ablation: left-deep vs bushy optima on realistic workloads (n=10)",
		"shape", "left-deep opt", "bushy opt", "bushy advantage",
	)
	for _, shape := range workload.Shapes() {
		in, err := workload.Generate(workload.Params{N: 10, Shape: shape, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		ld, err := opt.NewDP().Optimize(context.Background(), in)
		if err != nil {
			return nil, err
		}
		_, bc, err := bushy.Optimize(in)
		if err != nil {
			return nil, err
		}
		bench.AddRow(string(shape), report.Log2(ld.Cost), report.Log2(bc), report.Ratio(ld.Cost, bc))
	}
	return []*report.Table{hard, bench}, nil
}
