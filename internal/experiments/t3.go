package experiments

import (
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/report"
)

// T3 regenerates the Theorem 16 table: the f_{N,e} gap across edge
// budgets. For each τ the query graph is blown up to m = n² vertices
// with exactly e(m) edges (both the sparse budget m+⌈m^τ⌉ and the
// densest budget the construction realizes), and the clique-first
// witness costs of a matched YES/NO source pair are compared against K.
func T3(opts Options) ([]*report.Table, error) {
	taus := []float64{0.25, 0.5, 0.75}
	n := 5
	if opts.Quick {
		taus = []float64{0.5}
		n = 4
	}
	tb := report.New(
		fmt.Sprintf("Theorem 16: sparse QO_N gap (source n=%d, m=n², ωYes=%d, ωNo=%d)", n, n-1, n-2),
		"τ", "budget", "m", "e(m)", "K", "YES found", "NO bound", "NO found", "gap", "certificate",
	)
	for _, tau := range taus {
		for _, budget := range []struct {
			name string
			e    core.EdgeBudget
		}{
			{"sparse", core.SparseBudget(tau)},
			{"dense", denseBudgetFor(tau, n)},
		} {
			row, err := t3Row(n, tau, budget.name, budget.e, opts)
			if err != nil {
				return nil, err
			}
			tb.AddRow(row...)
		}
	}
	return []*report.Table{tb}, nil
}

// denseBudgetFor builds the densest feasible budget for a source graph
// on n vertices with the YES pair's edge count (the construction caps
// out below m(m−1)/2; see core.DenseBudget).
func denseBudgetFor(tau float64, n int) core.EdgeBudget {
	yes := cliquered.CertifiedCliqueGraph(n, n-1)
	return core.DenseBudget(tau, n, yes.G.EdgeCount())
}

func t3Row(n int, tau float64, budgetName string, budget core.EdgeBudget, opts Options) ([]string, error) {
	yes := cliquered.CertifiedCliqueGraph(n, n-1)
	no := cliquered.CertifiedCliqueGraph(n, n-2)
	mk := func(g cliquered.Certified, k int, seed int64) (*core.SparseFNInstance, error) {
		m := intPow(n, k)
		return core.SparseFN(g.G, core.SparseFNParams{
			FNParams: core.FNParams{
				A:        2 * int64(n) * int64(m), // negligibility threshold B·n·m
				OmegaYes: n - 1,
				OmegaNo:  n - 2,
			},
			K:      k,
			Budget: budget,
			Seed:   seed,
		})
	}
	// The paper scales the blow-up exponent as k = Θ(2/τ): small τ needs
	// a larger vertex blow-up before the sparse budget becomes feasible.
	// Pick the smallest workable k.
	var sy, sn *core.SparseFNInstance
	var err error
	for k := 2; k <= 4; k++ {
		sy, err = mk(yes, k, opts.Seed)
		if err != nil {
			continue
		}
		sn, err = mk(no, k, opts.Seed)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	// NO source edge count differs from YES; rebuild the NO instance so
	// its budget stays exact for its own |E₁| (the harness quietly uses
	// the same budget function, which is e(m) on the *total* graph).
	yesCost := sy.QON.Cost(core.CliqueFirst(sy.QON.Q, yes.G.MaxClique()))
	noCost := sn.QON.Cost(core.CliqueFirst(sn.QON.Q, no.G.MaxClique()))
	status := "OK"
	if noCost.LessEq(yesCost) {
		status = "VIOLATED: no gap"
	}
	if sy.K.Mul(sy.Alpha).Less(yesCost) {
		status = "VIOLATED: YES above padded K"
	}
	if noCost.Less(sn.NoLowerBound) {
		status = "VIOLATED: NO below bound"
	}
	return []string{
		fmt.Sprint(tau),
		budgetName,
		fmt.Sprint(sy.M),
		fmt.Sprint(sy.QON.Q.EdgeCount()),
		report.Log2(sy.K),
		report.Log2(yesCost),
		report.Log2(sn.NoLowerBound),
		report.Log2(noCost),
		report.Ratio(noCost, yesCost),
		status,
	}, nil
}

func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
