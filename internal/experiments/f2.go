package experiments

import (
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/report"
)

// F2 regenerates the Lemma 11/13 figure as a series table: the
// intermediate sizes N_j along the witness order of a YES instance
// versus a clique-first order of a NO instance. Lemma 11 keeps the five
// pipeline cut points of the YES side at O(L); Lemma 13 forces every
// mid-zone N_{n/3+j} of the NO side up to Ω(G).
func F2(opts Options) ([]*report.Table, error) {
	n := 12
	if opts.Quick {
		n = 9
	}
	a := 2 * int64(n)
	if a*int64(n-1)%2 != 0 {
		a++
	}
	yes := cliquered.CertifiedCliqueGraph(n, 2*n/3)
	no := cliquered.CertifiedCliqueGraph(n, 2*n/3-1)
	fhYes, err := core.FH(yes.G, core.FHParams{A: a})
	if err != nil {
		return nil, err
	}
	fhNo, err := core.FH(no.G, core.FHParams{A: a})
	if err != nil {
		return nil, err
	}
	yesSizes := fhYes.QOH.Sizes(fhYes.WitnessSequence(yes.G.MaxClique()))
	noSizes := fhNo.QOH.Sizes(fhNo.WitnessSequence(no.G.MaxClique()))
	gb := fhNo.GBound(no.Omega)

	cuts := map[int]string{1: "cut", n / 3: "cut", 2 * n / 3: "cut", n - 1: "cut", n: "cut"}
	tb := report.New(
		fmt.Sprintf("Lemmas 11/13: N_j series (n=%d, L=%s, G=%s)",
			n, report.Log2(fhYes.L), report.Log2(gb)),
		"j", "N_j YES", "N_j NO", "zone",
	)
	for j := 1; j <= n; j++ {
		zone := cuts[j]
		if j > n/3 && j <= 2*n/3 {
			if zone != "" {
				zone += ", "
			}
			zone += "mid (Lemma 13)"
		}
		tb.AddRow(
			fmt.Sprint(j),
			report.Log2(yesSizes[j]),
			report.Log2(noSizes[j]),
			zone,
		)
	}

	status := report.New("", "check", "result")
	lBound := fhYes.L.MulInt64(4)
	okYes := true
	for _, cut := range []int{1, n / 3, 2 * n / 3, n - 1, n} {
		if lBound.Less(yesSizes[cut]) {
			okYes = false
		}
	}
	if okYes {
		status.AddRow("YES cuts ≤ O(L)", "OK")
	} else {
		status.AddRow("YES cuts ≤ O(L)", "VIOLATED")
	}
	okNo := true
	for j := 1; j <= n/3; j++ {
		if noSizes[n/3+j].Mul(fhNo.Alpha).Less(gb) {
			okNo = false
		}
	}
	if okNo {
		status.AddRow("NO mid-zone ≥ Ω(G)", "OK")
	} else {
		status.AddRow("NO mid-zone ≥ Ω(G)", "VIOLATED")
	}
	return []*report.Table{tb, status}, nil
}
