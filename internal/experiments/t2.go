package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/report"
)

// T2 regenerates the Theorem 15 table: for matched ⅔CLIQUE YES/NO
// pairs across n, the YES witness-plan cost against L(α,n) and the
// best NO plan found against G(α,n). n = 6 is exhaustively exact; the
// larger sizes sample the adversary's strongest orders (clique-first
// rotations plus random feasible sequences), each with its optimal
// decomposition and memory allocation.
func T2(opts Options) ([]*report.Table, error) {
	ns := []int{6, 9, 12}
	if opts.Quick {
		ns = []int{6, 9}
	}
	tb := report.New(
		"Theorem 15: QO_H gap on certified YES/NO pairs (ωYes=2n/3, ωNo=2n/3−1, α=4^n)",
		"n", "log2α", "L", "YES found", "G bound", "NO found", "gap", "exact", "certificate",
	)
	for _, n := range ns {
		row, err := t2Row(n, opts)
		if err != nil {
			return nil, err
		}
		tb.AddRow(row...)
	}
	return []*report.Table{tb}, nil
}

func t2Row(n int, opts Options) ([]string, error) {
	a := 2 * int64(n)
	if a*int64(n-1)%2 != 0 {
		a++ // keep A·(n−1) even
	}
	yes := cliquered.CertifiedCliqueGraph(n, 2*n/3)
	no := cliquered.CertifiedCliqueGraph(n, 2*n/3-1)
	fhYes, err := core.FH(yes.G, core.FHParams{A: a})
	if err != nil {
		return nil, err
	}
	fhNo, err := core.FH(no.G, core.FHParams{A: a})
	if err != nil {
		return nil, err
	}

	exact := n <= 6
	yesCost, err := bestCostQOH(fhYes, yes.G.MaxClique(), exact, opts.Seed)
	if err != nil {
		return nil, err
	}
	noCost, err := bestCostQOH(fhNo, no.G.MaxClique(), exact, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	gb := fhNo.GBound(no.Omega)
	status := "OK"
	if noCost.LessEq(yesCost) {
		status = "VIOLATED: no gap"
	}
	return []string{
		fmt.Sprint(n),
		fmt.Sprint(a),
		report.Log2(fhYes.L),
		report.Log2(yesCost),
		report.Log2(gb),
		report.Log2(noCost),
		report.Ratio(noCost, yesCost),
		fmt.Sprint(exact),
		status,
	}, nil
}

// bestCostQOH returns the cheapest QO_H plan cost found: exhaustive
// when exact, otherwise the minimum over the witness plan, clique-first
// rotations and random feasible sequences, each optimally decomposed.
func bestCostQOH(fh *core.FHInstance, clique []int, exact bool, seed int64) (num.Num, error) {
	if exact {
		plan, err := fh.QOH.ExactBest()
		if err != nil {
			return num.Num{}, err
		}
		return plan.Cost, nil
	}
	var best num.Num
	found := false
	consider := func(z []int) {
		plan, err := fh.QOH.BestDecomposition(z)
		if err != nil {
			return
		}
		if !found || plan.Cost.Less(best) {
			best, found = plan.Cost, true
		}
	}
	// Clique-first rotations.
	for shift := 0; shift < len(clique) && shift < 4; shift++ {
		rotated := append(append([]int(nil), clique[shift:]...), clique[:shift]...)
		consider(fh.WitnessSequence(rotated))
	}
	// Random feasible sequences (R₀ forced first).
	rng := rand.New(rand.NewSource(seed))
	n := fh.QOH.N()
	for trial := 0; trial < 40; trial++ {
		z := make([]int, 0, n)
		z = append(z, 0)
		for _, v := range rng.Perm(n - 1) {
			z = append(z, v+1)
		}
		consider(z)
	}
	// The QO_H heuristic ensemble (greedy + annealing over sequences).
	if plan, err := opt.QOHBest(context.Background(), fh.QOH, opt.WithSeed(seed)); err == nil {
		if !found || plan.Cost.Less(best) {
			best, found = plan.Cost, true
		}
	}
	if !found {
		return num.Num{}, fmt.Errorf("experiments: no feasible QO_H plan found")
	}
	return best, nil
}
