package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"approxqo/internal/certify"
	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
)

func testInstance(t *testing.T) *qon.Instance {
	t.Helper()
	in := qon.NewUniform(graph.Complete(4), num.FromInt64(8), num.Pow2(-1), num.FromInt64(4))
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestWrapIsTransparent(t *testing.T) {
	inner := opt.NewGreedy(opt.GreedyMinSize)
	j := Wrap(inner, FaultLeak, WithLeakHold(time.Millisecond))
	if j.Name() != inner.Name() {
		t.Fatalf("injector name %q, want the wrapped %q", j.Name(), inner.Name())
	}
	if j.Fault() != FaultLeak {
		t.Fatalf("fault = %q", j.Fault())
	}
	// A leak fault still answers honestly.
	r, err := j.Optimize(context.Background(), testInstance(t))
	if err != nil || r == nil {
		t.Fatalf("leak fault must not corrupt results: %v", err)
	}
	if _, err := certify.QON(testInstance(t), r.Sequence, r.Cost, r.Exact); err != nil {
		t.Fatalf("leaked-but-honest result failed audit: %v", err)
	}
}

func TestWrapPanicsOnUnknownFault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap accepted an unknown fault")
		}
	}()
	Wrap(opt.NewGreedy(opt.GreedyMinSize), Fault("meltdown"))
}

func TestPanicFaultIsDeterministic(t *testing.T) {
	in := testInstance(t)
	capture := func(seed int64) (msg string) {
		defer func() { msg, _ = recover().(string) }()
		j := Wrap(opt.NewGreedy(opt.GreedyMinSize), FaultPanic, WithSeed(seed))
		j.Optimize(context.Background(), in)
		return ""
	}
	a, b := capture(7), capture(7)
	if a == "" || a != b {
		t.Fatalf("panic not deterministic: %q vs %q", a, b)
	}
	if !strings.Contains(a, "seed 7") || !strings.Contains(a, "injected panic") {
		t.Fatalf("panic value does not identify the injection: %q", a)
	}
	if c := capture(8); c == a {
		t.Fatal("different seeds produced identical panic values")
	}
}

func TestWrongCostFaultUnderstatesExactly(t *testing.T) {
	in := testInstance(t)
	inner := opt.NewGreedy(opt.GreedyMinSize)
	honest, err := inner.Optimize(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	j := Wrap(opt.NewGreedy(opt.GreedyMinSize), FaultWrongCost)
	lied, err := j.Optimize(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !lied.Cost.Equal(honest.Cost.Mul(num.Pow2(-1))) {
		t.Fatal("wrongcost fault did not halve the cost")
	}
	// The corruption must be exactly what the auditor catches.
	if _, err := certify.QON(in, lied.Sequence, lied.Cost, lied.Exact); !errors.Is(err, certify.ErrCostMismatch) {
		t.Fatalf("audit err = %v, want ErrCostMismatch", err)
	}
}

func TestInvalidPlanFaultBreaksBijection(t *testing.T) {
	in := testInstance(t)
	j := Wrap(opt.NewGreedy(opt.GreedyMinSize), FaultInvalidPlan)
	r, err := j.Optimize(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if in.ValidSequence(r.Sequence) {
		t.Fatal("invalidplan fault returned a valid permutation")
	}
	if _, err := certify.QON(in, r.Sequence, r.Cost, r.Exact); !errors.Is(err, certify.ErrInvalidPlan) {
		t.Fatalf("audit err = %v, want ErrInvalidPlan", err)
	}
}

func TestErrorFaultAndFailureBudget(t *testing.T) {
	in := testInstance(t)
	j := Wrap(opt.NewGreedy(opt.GreedyMinSize), FaultError, WithFailures(2))
	for call := 1; call <= 2; call++ {
		if _, err := j.Optimize(context.Background(), in); err == nil {
			t.Fatalf("call %d: expected injected error", call)
		}
	}
	r, err := j.Optimize(context.Background(), in)
	if err != nil || r == nil {
		t.Fatalf("call 3 should pass through after the failure budget: %v", err)
	}
}

func TestStallFaultIgnoresContext(t *testing.T) {
	in := testInstance(t)
	j := Wrap(opt.NewGreedy(opt.GreedyMinSize), FaultStall, WithStall(50*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: a cooperative optimizer would return at once
	start := time.Now()
	j.Optimize(ctx, in)
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("stall fault honoured cancellation after %v", elapsed)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec(" wrongcost:greedy-min-size, panic , stall:* ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Fault: FaultWrongCost, Target: "greedy-min-size"},
		{Fault: FaultPanic, Target: ""},
		{Fault: FaultStall, Target: "*"},
	}
	if len(rules) != len(want) {
		t.Fatalf("rules = %v", rules)
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %v, want %v", i, rules[i], want[i])
		}
	}
	if !rules[0].Matches("greedy-min-size") || rules[0].Matches("kbz") {
		t.Fatal("targeted rule match broken")
	}
	if !rules[1].Matches("anything") || !rules[2].Matches("anything") {
		t.Fatal("wildcard rules must match every optimizer")
	}
	if _, err := ParseSpec("meltdown:dp"); err == nil {
		t.Fatal("unknown fault accepted")
	}
	if rules, err := ParseSpec(""); err != nil || rules != nil {
		t.Fatalf("empty spec: %v, %v", rules, err)
	}
}

func TestApplyWrapsFirstMatchOnly(t *testing.T) {
	optimizers := []opt.Optimizer{
		opt.NewGreedy(opt.GreedyMinSize),
		opt.NewGreedy(opt.GreedyMinCost),
	}
	wrapped, err := ApplySpec("error:greedy-min-size,panic:greedy-min-size", optimizers)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := wrapped[0].(*Injector)
	if !ok || j.Fault() != FaultError {
		t.Fatalf("first matching rule should win, got %T", wrapped[0])
	}
	if _, ok := wrapped[1].(*Injector); ok {
		t.Fatal("unmatched optimizer was wrapped")
	}
}

func TestReseedForwardsToInner(t *testing.T) {
	j := Wrap(opt.NewIterativeImprovement(opt.WithSeed(1)), FaultError, WithFailures(1), WithSeed(3))
	var _ opt.Reseedable = j
	j.Reseed(11)
	if got := j.seed.Load(); got != 11 {
		t.Fatalf("seed = %d after Reseed(11)", got)
	}
}
