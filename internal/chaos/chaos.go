// Package chaos provides injectable fault wrappers around any
// opt.Optimizer, so the ensemble engine's certification gate,
// quarantine circuit-breaker and abandonment paths can be exercised
// end-to-end — in tests, and from the command line via qopt -chaos.
//
// Every wrapper is deterministic given its seed: the same seed and call
// sequence produce the same panics, the same corrupted costs and the
// same error text, so a chaos run that exposes a bug is replayable.
// Faults model the ways a real component misbehaves:
//
//   - FaultPanic — the optimizer crashes mid-run;
//   - FaultStall — it ignores cancellation and blocks past any deadline;
//   - FaultWrongCost — it returns a valid plan with an understated cost
//     (the adversarial case: a lie that would win the merge);
//   - FaultInvalidPlan — it returns a sequence that is not a
//     permutation;
//   - FaultError — it fails with a spurious transient error;
//   - FaultLeak — it answers correctly but leaks a slow goroutine per
//     call.
//
// WithFailures(k) limits a fault to the first k calls, after which the
// wrapper behaves honestly — the shape of a transient failure, used to
// exercise the engine's retry-with-reseed path.
package chaos

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
)

// Fault names one injectable failure mode.
type Fault string

// The supported failure modes (see the package comment).
const (
	FaultPanic       Fault = "panic"
	FaultStall       Fault = "stall"
	FaultWrongCost   Fault = "wrongcost"
	FaultInvalidPlan Fault = "invalidplan"
	FaultError       Fault = "error"
	FaultLeak        Fault = "leak"
)

// Faults lists every supported fault, in the order used by docs and
// the -chaos spec grammar.
func Faults() []Fault {
	return []Fault{FaultPanic, FaultStall, FaultWrongCost, FaultInvalidPlan, FaultError, FaultLeak}
}

func validFault(f Fault) bool {
	for _, v := range Faults() {
		if v == f {
			return true
		}
	}
	return false
}

// DefaultStall is how long a FaultStall wrapper blocks while ignoring
// its context — far past any per-run deadline plus grace window, so the
// engine's abandonment path fires.
const DefaultStall = 30 * time.Second

// DefaultLeakHold is how long a FaultLeak goroutine lingers.
const DefaultLeakHold = 5 * time.Second

// Option configures an Injector.
type Option func(*Injector)

// WithSeed seeds the injector's deterministic behavior (panic values
// embed it, so a crash identifies its injection).
func WithSeed(seed int64) Option { return func(j *Injector) { j.seed.Store(seed) } }

// WithFailures makes the fault fire only on the first k Optimize calls;
// later calls pass through to the wrapped optimizer. k ≤ 0 (the
// default) means the fault fires on every call.
func WithFailures(k int) Option { return func(j *Injector) { j.failures = k } }

// WithStall sets how long FaultStall blocks (default DefaultStall).
func WithStall(d time.Duration) Option { return func(j *Injector) { j.stall = d } }

// WithLeakHold sets how long each FaultLeak goroutine lingers (default
// DefaultLeakHold).
func WithLeakHold(d time.Duration) Option { return func(j *Injector) { j.leakHold = d } }

// Injector wraps an optimizer with one fault. It is transparent to the
// engine — Name reports the wrapped optimizer's name, so reports and
// quarantine records identify the real component that (apparently)
// misbehaved.
type Injector struct {
	inner    opt.Optimizer
	fault    Fault
	failures int
	stall    time.Duration
	leakHold time.Duration

	seed  atomic.Int64
	calls atomic.Int64
}

// Wrap returns inner with the given fault injected. It panics on an
// unknown fault — misconfigured chaos is a programming error, not a
// runtime condition.
func Wrap(inner opt.Optimizer, fault Fault, opts ...Option) *Injector {
	if !validFault(fault) {
		panic(fmt.Sprintf("chaos: unknown fault %q", fault))
	}
	j := &Injector{inner: inner, fault: fault, stall: DefaultStall, leakHold: DefaultLeakHold}
	for _, apply := range opts {
		apply(j)
	}
	return j
}

// Name reports the wrapped optimizer's name.
func (j *Injector) Name() string { return j.inner.Name() }

// Fault reports the injected failure mode.
func (j *Injector) Fault() Fault { return j.fault }

// Reseed implements opt.Reseedable: the engine calls it between retry
// attempts. The new seed is folded into subsequent deterministic fault
// values and forwarded to the wrapped optimizer when it is reseedable
// itself.
func (j *Injector) Reseed(seed int64) {
	j.seed.Store(seed)
	if r, ok := j.inner.(opt.Reseedable); ok {
		r.Reseed(seed)
	}
}

// Optimize injects the configured fault, then (where the fault permits)
// delegates to the wrapped optimizer.
func (j *Injector) Optimize(ctx context.Context, in *qon.Instance) (*opt.Result, error) {
	call := j.calls.Add(1)
	if j.failures > 0 && call > int64(j.failures) {
		return j.inner.Optimize(ctx, in)
	}
	switch j.fault {
	case FaultPanic:
		panic(fmt.Sprintf("chaos: injected panic in %s (seed %d, call %d)", j.Name(), j.seed.Load(), call))
	case FaultStall:
		// Deliberately ignore ctx: this is the uncooperative component
		// the engine must abandon rather than wait for.
		time.Sleep(j.stall)
		return j.inner.Optimize(ctx, in)
	case FaultError:
		return nil, fmt.Errorf("chaos: injected spurious error from %s (seed %d, call %d)", j.Name(), j.seed.Load(), call)
	case FaultWrongCost:
		r, err := j.inner.Optimize(ctx, in)
		if err != nil || r == nil {
			return r, err
		}
		// Understate by exactly half: dyadic, so the corruption is exact
		// and never masked by rounding — the lie that would win a
		// cheapest-first merge without a certification gate.
		return &opt.Result{Sequence: r.Sequence, Cost: r.Cost.Mul(num.Pow2(-1)), Exact: r.Exact}, nil
	case FaultInvalidPlan:
		r, err := j.inner.Optimize(ctx, in)
		if err != nil || r == nil {
			return r, err
		}
		seq := append(qon.Sequence(nil), r.Sequence...)
		if len(seq) >= 2 {
			seq[0] = seq[1] // duplicate a vertex: no longer a bijection
		} else {
			seq = append(seq, seq...)
		}
		return &opt.Result{Sequence: seq, Cost: r.Cost, Exact: r.Exact}, nil
	case FaultLeak:
		hold := j.leakHold
		go func() { time.Sleep(hold) }()
		return j.inner.Optimize(ctx, in)
	}
	panic(fmt.Sprintf("chaos: unknown fault %q", j.fault)) // unreachable: Wrap validates
}
