package chaos

// Network fault injection: a deterministic http.RoundTripper wrapper
// that misbehaves the way a real network path does, so the cluster
// coordinator's routing, health state machine, retry budget and hedging
// can be proven under attack the same way the engine was (see
// Injector for the optimizer-level counterpart). The spec grammar is
// the same fault[:target],... form, with targets matching the upstream
// host instead of an optimizer name.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// NetFault names one injectable network failure mode.
type NetFault string

// The supported network faults:
//
//   - NetDrop — the connection fails before the request is sent (the
//     worker never sees it; retrying is always safe);
//   - NetDelay — the request is held in the network for a fixed delay
//     before being forwarded (tail latency: the hedging trigger);
//   - Net5xx — the path answers 502 Bad Gateway itself, as a broken
//     intermediary would, without consulting the worker;
//   - NetReset — the request IS delivered and processed, but the
//     connection resets before the response arrives (the dangerous
//     half: work happened, the caller cannot know);
//   - NetTruncate — the response body is cut in half mid-stream, so the
//     caller reads a syntactically broken document.
const (
	NetDrop     NetFault = "drop"
	NetDelay    NetFault = "delay"
	Net5xx      NetFault = "5xx"
	NetReset    NetFault = "reset"
	NetTruncate NetFault = "truncate"
)

// NetFaults lists every supported network fault, in the order used by
// docs and the spec grammar.
func NetFaults() []NetFault {
	return []NetFault{NetDrop, NetDelay, Net5xx, NetReset, NetTruncate}
}

func validNetFault(f NetFault) bool {
	for _, v := range NetFaults() {
		if v == f {
			return true
		}
	}
	return false
}

// NetRule targets one network fault at the upstream hosts matching
// Target. A Target of "*" (or empty) matches every host; otherwise the
// rule fires when Target equals the request URL's host (host:port) or
// is a substring of the full URL, so tests can target one worker of an
// httptest fleet by its port.
type NetRule struct {
	Fault  NetFault
	Target string
}

// Matches reports whether the rule applies to a request URL.
func (r NetRule) Matches(host, url string) bool {
	return r.Target == "" || r.Target == "*" || r.Target == host || strings.Contains(url, r.Target)
}

func (r NetRule) String() string {
	target := r.Target
	if target == "" {
		target = "*"
	}
	return string(r.Fault) + ":" + target
}

// ParseNetSpec parses the network-chaos grammar — the same
// fault[:target],... clause form as ParseSpec, with network faults and
// host targets:
//
//	drop:127.0.0.1:41234,delay:*,5xx
//
// An empty spec yields no rules.
func ParseNetSpec(spec string) ([]NetRule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []NetRule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		fault, target, _ := strings.Cut(clause, ":")
		f := NetFault(strings.TrimSpace(fault))
		if !validNetFault(f) {
			return nil, fmt.Errorf("chaos: unknown network fault %q in clause %q (have %v)", fault, clause, NetFaults())
		}
		rules = append(rules, NetRule{Fault: f, Target: strings.TrimSpace(target)})
	}
	return rules, nil
}

// DefaultNetDelay is how long a NetDelay fault holds a request.
const DefaultNetDelay = 50 * time.Millisecond

// NetOption configures a Transport.
type NetOption func(*Transport)

// WithNetSeed seeds the transport's deterministic fault decisions
// (injected error text embeds it, so a failure identifies its
// injection).
func WithNetSeed(seed int64) NetOption { return func(t *Transport) { t.seed = seed } }

// WithNetRate makes each matching request fault with probability p
// (drawn from the seeded source) instead of always — the soak shape,
// where most traffic must still succeed. p ≥ 1 (the default) always
// fires.
func WithNetRate(p float64) NetOption { return func(t *Transport) { t.rate = p } }

// WithNetFailures limits each rule to its first k matching requests,
// after which the rule stops firing — the transient-outage shape. k ≤ 0
// (the default) means the rule fires forever.
func WithNetFailures(k int) NetOption { return func(t *Transport) { t.failures = k } }

// WithNetDelay sets how long NetDelay holds a request (default
// DefaultNetDelay).
func WithNetDelay(d time.Duration) NetOption { return func(t *Transport) { t.delay = d } }

// Transport is a fault-injecting http.RoundTripper. Each request is
// matched against the rules in order; the first matching rule decides
// the fault (gated by the rate and per-rule failure budget), and
// unmatched requests pass straight through to the inner transport. It
// is safe for concurrent use; fault decisions are deterministic given
// the seed and the arrival order of matching requests.
type Transport struct {
	inner    http.RoundTripper
	rules    []NetRule
	seed     int64
	rate     float64
	failures int
	delay    time.Duration

	calls []atomic.Int64 // per-rule matching-request count
	mu    sync.Mutex
	rng   *rand.Rand
}

// NewTransport wraps inner (nil means http.DefaultTransport) with the
// given fault rules.
func NewTransport(inner http.RoundTripper, rules []NetRule, opts ...NetOption) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	t := &Transport{inner: inner, rules: rules, rate: 1, delay: DefaultNetDelay}
	for _, apply := range opts {
		apply(t)
	}
	t.calls = make([]atomic.Int64, len(rules))
	t.rng = rand.New(rand.NewSource(t.seed))
	return t
}

// NewTransportSpec parses spec and wraps inner in one step.
func NewTransportSpec(inner http.RoundTripper, spec string, opts ...NetOption) (*Transport, error) {
	rules, err := ParseNetSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewTransport(inner, rules, opts...), nil
}

// fires decides whether rule i fires for this matching request:
// the per-rule failure budget first, then the seeded rate gate.
func (t *Transport) fires(i int) bool {
	if t.failures > 0 && t.calls[i].Add(1) > int64(t.failures) {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64() < t.rate
}

// RoundTrip applies the first matching, firing rule to the request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	for i, r := range t.rules {
		if !r.Matches(req.URL.Host, req.URL.String()) || !t.fires(i) {
			continue
		}
		switch r.Fault {
		case NetDrop:
			// Fail before the request leaves: the request body is unread,
			// the worker untouched.
			return nil, fmt.Errorf("chaos: injected connection drop to %s (seed %d)", req.URL.Host, t.seed)
		case NetDelay:
			timer := time.NewTimer(t.delay)
			select {
			case <-timer.C:
			case <-req.Context().Done():
				timer.Stop()
				return nil, req.Context().Err()
			}
			return t.inner.RoundTrip(req)
		case Net5xx:
			body := fmt.Sprintf(`{"error":{"kind":"injected_5xx","message":"chaos: injected 502 on the path to %s (seed %d)"}}`,
				req.URL.Host, t.seed)
			return &http.Response{
				StatusCode: http.StatusBadGateway,
				Status:     "502 Bad Gateway",
				Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
				Header:        http.Header{"Content-Type": []string{"application/json"}},
				Body:          io.NopCloser(strings.NewReader(body)),
				ContentLength: int64(len(body)),
				Request:       req,
			}, nil
		case NetReset:
			// Deliver the request — the worker does the work — then lose
			// the response: the at-most-once hazard retries must tolerate.
			resp, err := t.inner.RoundTrip(req)
			if err != nil {
				return nil, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("chaos: injected connection reset from %s after delivery (seed %d)", req.URL.Host, t.seed)
		case NetTruncate:
			resp, err := t.inner.RoundTrip(req)
			if err != nil {
				return nil, err
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			cut := data[:len(data)/2]
			resp.Body = io.NopCloser(bytes.NewReader(cut))
			resp.ContentLength = int64(len(cut))
			resp.Header.Del("Content-Length")
			return resp, nil
		}
	}
	return t.inner.RoundTrip(req)
}
