package chaos

import (
	"fmt"
	"strings"

	"approxqo/internal/opt"
)

// Rule targets one fault at the optimizers matching Target. A Target of
// "*" (or empty) matches every optimizer.
type Rule struct {
	Fault  Fault
	Target string
}

// Matches reports whether the rule applies to an optimizer name.
func (r Rule) Matches(name string) bool {
	return r.Target == "" || r.Target == "*" || r.Target == name
}

func (r Rule) String() string {
	target := r.Target
	if target == "" {
		target = "*"
	}
	return string(r.Fault) + ":" + target
}

// ParseSpec parses the qopt -chaos grammar: a comma-separated list of
// fault[:optimizer] clauses, e.g.
//
//	wrongcost:greedy-min-size,panic:kbz,stall:*
//
// A clause without a target applies to every optimizer. Faults are the
// Fault constants' names. An empty spec yields no rules.
func ParseSpec(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		fault, target, _ := strings.Cut(clause, ":")
		f := Fault(strings.TrimSpace(fault))
		if !validFault(f) {
			return nil, fmt.Errorf("chaos: unknown fault %q in clause %q (have %v)", fault, clause, Faults())
		}
		rules = append(rules, Rule{Fault: f, Target: strings.TrimSpace(target)})
	}
	return rules, nil
}

// Apply wraps each optimizer with the first rule matching its name;
// optimizers no rule matches are returned unwrapped. Options apply to
// every injector created.
func Apply(rules []Rule, optimizers []opt.Optimizer, opts ...Option) []opt.Optimizer {
	out := make([]opt.Optimizer, len(optimizers))
	for i, o := range optimizers {
		out[i] = o
		for _, r := range rules {
			if r.Matches(o.Name()) {
				out[i] = Wrap(o, r.Fault, opts...)
				break
			}
		}
	}
	return out
}

// ApplySpec parses spec and applies it in one step.
func ApplySpec(spec string, optimizers []opt.Optimizer, opts ...Option) ([]opt.Optimizer, error) {
	rules, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return Apply(rules, optimizers, opts...), nil
}
