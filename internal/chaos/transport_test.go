package chaos

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fakeRT is an inner transport answering 200 {"ok":true} and counting
// deliveries — NetReset/NetTruncate must reach it, NetDrop/Net5xx must
// not.
type fakeRT struct {
	delivered int
	body      string
}

func (f *fakeRT) RoundTrip(req *http.Request) (*http.Response, error) {
	f.delivered++
	body := f.body
	if body == "" {
		body = `{"ok":true}`
	}
	return &http.Response{
		StatusCode:    http.StatusOK,
		Status:        "200 OK",
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}, nil
}

func get(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestParseNetSpec(t *testing.T) {
	rules, err := ParseNetSpec(" drop:127.0.0.1:9999 , delay:* ,5xx, reset:w2, truncate ")
	if err != nil {
		t.Fatal(err)
	}
	want := []NetRule{
		{NetDrop, "127.0.0.1:9999"},
		{NetDelay, "*"},
		{Net5xx, ""},
		{NetReset, "w2"},
		{NetTruncate, ""},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	if _, err := ParseNetSpec("explode:w1"); err == nil {
		t.Error("unknown fault accepted")
	}
	if rules, err := ParseNetSpec(""); err != nil || rules != nil {
		t.Errorf("empty spec: rules=%v err=%v, want nil/nil", rules, err)
	}
}

func TestTransportDropNeverDelivers(t *testing.T) {
	inner := &fakeRT{}
	tr := NewTransport(inner, []NetRule{{Fault: NetDrop}})
	if _, err := get(t, tr, "http://w1/optimize"); err == nil {
		t.Fatal("drop fault returned no error")
	}
	if inner.delivered != 0 {
		t.Errorf("drop delivered %d request(s) to the worker", inner.delivered)
	}
}

func TestTransport5xxSynthesizesStructured502(t *testing.T) {
	inner := &fakeRT{}
	tr := NewTransport(inner, []NetRule{{Fault: Net5xx}})
	resp, err := get(t, tr, "http://w1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	data, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(data), `"kind":"injected_5xx"`) {
		t.Errorf("502 body %q is not a structured error document", data)
	}
	if inner.delivered != 0 {
		t.Errorf("5xx consulted the worker %d time(s)", inner.delivered)
	}
}

func TestTransportResetDeliversThenLosesResponse(t *testing.T) {
	inner := &fakeRT{}
	tr := NewTransport(inner, []NetRule{{Fault: NetReset}})
	if _, err := get(t, tr, "http://w1/optimize"); err == nil {
		t.Fatal("reset fault returned no error")
	}
	if inner.delivered != 1 {
		t.Errorf("reset delivered %d request(s), want exactly 1 (the at-most-once hazard)", inner.delivered)
	}
}

func TestTransportTruncateCutsBody(t *testing.T) {
	inner := &fakeRT{body: `{"jobs":4,"shapes":2,"results":[{"index":0}]}`}
	tr := NewTransport(inner, []NetRule{{Fault: NetTruncate}})
	resp, err := get(t, tr, "http://w1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if len(data) != len(inner.body)/2 {
		t.Errorf("truncated body has %d bytes, want %d", len(data), len(inner.body)/2)
	}
	if resp.Header.Get("Content-Length") != "" {
		t.Error("truncate left a Content-Length header on the cut body")
	}
}

func TestTransportDelayHoldsAndHonorsContext(t *testing.T) {
	inner := &fakeRT{}
	tr := NewTransport(inner, []NetRule{{Fault: NetDelay}}, WithNetDelay(20*time.Millisecond))
	start := time.Now()
	resp, err := get(t, tr, "http://w1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if held := time.Since(start); held < 20*time.Millisecond {
		t.Errorf("delay held the request %v, want ≥ 20ms", held)
	}

	// A cancelled context frees the held request without delivery.
	inner2 := &fakeRT{}
	tr2 := NewTransport(inner2, []NetRule{{Fault: NetDelay}}, WithNetDelay(10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://w1/optimize", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.RoundTrip(req); err == nil {
		t.Fatal("delayed request outlived its context")
	}
	if inner2.delivered != 0 {
		t.Error("cancelled delayed request was still delivered")
	}
}

func TestTransportTargeting(t *testing.T) {
	inner := &fakeRT{}
	tr := NewTransport(inner, []NetRule{{Fault: NetDrop, Target: "w2:80"}})
	resp, err := get(t, tr, "http://w1:80/optimize")
	if err != nil {
		t.Fatalf("untargeted host faulted: %v", err)
	}
	resp.Body.Close()
	if _, err := get(t, tr, "http://w2:80/optimize"); err == nil {
		t.Error("targeted host did not fault")
	}
	// URL-substring targeting: an httptest worker is addressable by its
	// port alone.
	tr2 := NewTransport(&fakeRT{}, []NetRule{{Fault: NetDrop, Target: ":41234"}})
	if _, err := get(t, tr2, "http://127.0.0.1:41234/optimize"); err == nil {
		t.Error("substring target did not fault")
	}
}

func TestTransportFailureBudgetExpires(t *testing.T) {
	inner := &fakeRT{}
	tr := NewTransport(inner, []NetRule{{Fault: NetDrop}}, WithNetFailures(2))
	for i := 0; i < 2; i++ {
		if _, err := get(t, tr, "http://w1/optimize"); err == nil {
			t.Fatalf("request %d: transient outage ended early", i)
		}
	}
	resp, err := get(t, tr, "http://w1/optimize")
	if err != nil {
		t.Fatalf("outage outlived its %d-failure budget: %v", 2, err)
	}
	resp.Body.Close()
	if inner.delivered != 1 {
		t.Errorf("post-outage deliveries = %d, want 1", inner.delivered)
	}
}

func TestTransportRateIsSeededAndPartial(t *testing.T) {
	countFaults := func(seed int64) (faults int) {
		inner := &fakeRT{}
		tr := NewTransport(inner, []NetRule{{Fault: NetDrop}}, WithNetSeed(seed), WithNetRate(0.3))
		for i := 0; i < 200; i++ {
			resp, err := get(t, tr, "http://w1/optimize")
			if err != nil {
				faults++
				continue
			}
			resp.Body.Close()
		}
		return faults
	}
	a, b := countFaults(7), countFaults(7)
	if a != b {
		t.Errorf("same seed faulted %d then %d of 200", a, b)
	}
	if a == 0 || a == 200 {
		t.Errorf("rate 0.3 faulted %d of 200: gate is not partial", a)
	}
}
