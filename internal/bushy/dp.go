package bushy

import (
	"fmt"
	"math/bits"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// MaxDPN caps the bushy subset DP (the split enumeration is O(3^n)).
const MaxDPN = 15

// Optimize finds an optimal bushy join tree by dynamic programming over
// subsets (DPsub): for each relation set S, the best plan is the best
// split S = S₁ ⊎ S₂ joined with N(S₁)·inner(S₂). Because sizes and
// access costs are set functions (as in the left-deep case), the DP is
// exact. Complexity O(3^n · n²); n ≤ MaxDPN.
func Optimize(in *qon.Instance) (*Tree, num.Num, error) {
	n := in.N()
	if n == 0 {
		return nil, num.Num{}, fmt.Errorf("bushy: empty instance")
	}
	if n > MaxDPN {
		return nil, num.Num{}, fmt.Errorf("bushy: DP capped at n ≤ %d, got %d", MaxDPN, n)
	}
	if n == 1 {
		return Leaf(0), num.Zero(), nil
	}
	total := 1 << n

	// size[mask] = N(mask), via the same incremental trick as the
	// left-deep DP.
	size := make([]num.Num, total)
	size[0] = num.One()
	scratch := graph.NewBitset(n)
	toBitset := func(mask int) *graph.Bitset {
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				scratch.Add(v)
			} else {
				scratch.Remove(v)
			}
		}
		return scratch
	}
	for mask := 1; mask < total; mask++ {
		low := bits.TrailingZeros(uint(mask))
		rest := mask &^ (1 << low)
		size[mask] = size[rest].Mul(in.ExtendFactor(low, toBitset(rest)))
	}

	st := in.Stats()
	dp := make([]num.Num, total)
	split := make([]int32, total) // best left-side mask; 0 for leaves
	for mask := 1; mask < total; mask++ {
		if bits.OnesCount(uint(mask)) == 1 {
			dp[mask] = num.Zero()
			continue
		}
		st.DPSubset()
		candidates := int64(0)
		var best num.Num
		bestSplit := 0
		// Enumerate proper submasks as the left (outer) side.
		for l := (mask - 1) & mask; l > 0; l = (l - 1) & mask {
			r := mask &^ l
			var inner num.Num
			if bits.OnesCount(uint(r)) == 1 {
				v := bits.TrailingZeros(uint(r))
				inner = in.MinW(v, toBitset(l))
			} else {
				inner = size[r]
			}
			cand := dp[l].Add(dp[r]).Add(size[l].Mul(inner))
			candidates++
			if bestSplit == 0 || cand.Less(best) {
				best, bestSplit = cand, l
			}
		}
		st.AddCostEvals(candidates)
		dp[mask], split[mask] = best, int32(bestSplit)
	}

	var build func(mask int) *Tree
	build = func(mask int) *Tree {
		if bits.OnesCount(uint(mask)) == 1 {
			return Leaf(bits.TrailingZeros(uint(mask)))
		}
		l := int(split[mask])
		return Join(build(l), build(mask&^l))
	}
	return build(total - 1), dp[total-1], nil
}
