// Package bushy extends the paper's left-deep QO_N model to bushy join
// trees — the ablation the paper's conclusion invites (its hardness
// already holds for the easier left-deep space; allowing bushy plans
// only enlarges the search space).
//
// Cost model. The paper's nested-loops cost charges, per join, the
// current intermediate's cardinality times the cheapest access path
// into the new base relation (min_{u∈X} W[r][u]). A bushy join may
// instead have an *intermediate* as its inner: intermediates carry no
// access paths, so each outer tuple scans the materialized inner in
// full. Formally, for a join node with children L and R over relation
// sets S_L, S_R:
//
//	inner(R) = min_{u∈S_L} W[r][u]   if R is a leaf for base relation r
//	inner(R) = N(S_R)                otherwise (full scan)
//	cost(node) = cost(L) + cost(R) + N(S_L) · inner(R)
//	N(S_L ∪ S_R) = N(S_L) · N(S_R) · ∏_{i∈S_L, j∈S_R} s_ij
//
// Left-deep trees reproduce the paper's C(Z) exactly, so the bushy
// optimum is never above the left-deep optimum — an invariant the
// tests and the A1 ablation experiment check.
package bushy

import (
	"fmt"
	"strings"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qon"
)

// Tree is a binary join tree: either a leaf (Relation ≥ 0) or an inner
// node with two children.
type Tree struct {
	// Relation is the base relation index for leaves, −1 for joins.
	Relation    int
	Left, Right *Tree
}

// Leaf returns a leaf node for relation r.
func Leaf(r int) *Tree { return &Tree{Relation: r} }

// Join returns an inner node joining l (outer) and r (inner).
func Join(l, r *Tree) *Tree { return &Tree{Relation: -1, Left: l, Right: r} }

// IsLeaf reports whether t is a leaf.
func (t *Tree) IsLeaf() bool { return t.Relation >= 0 }

// Relations returns the set of base relations under t, in-order.
func (t *Tree) Relations() []int {
	var out []int
	t.walk(func(leaf int) { out = append(out, leaf) })
	return out
}

func (t *Tree) walk(fn func(int)) {
	if t.IsLeaf() {
		fn(t.Relation)
		return
	}
	t.Left.walk(fn)
	t.Right.walk(fn)
}

// String renders the tree in the usual infix form, e.g. "((0 ⋈ 1) ⋈ (2 ⋈ 3))".
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b)
	return b.String()
}

func (t *Tree) render(b *strings.Builder) {
	if t.IsLeaf() {
		fmt.Fprintf(b, "%d", t.Relation)
		return
	}
	b.WriteByte('(')
	t.Left.render(b)
	b.WriteString(" ⋈ ")
	t.Right.render(b)
	b.WriteByte(')')
}

// LeftDeep converts a join sequence into its left-deep tree.
func LeftDeep(z qon.Sequence) *Tree {
	if len(z) == 0 {
		panic("bushy: empty sequence")
	}
	t := Leaf(z[0])
	for _, v := range z[1:] {
		t = Join(t, Leaf(v))
	}
	return t
}

// Cost evaluates a bushy tree against a QO_N instance under the model
// in the package comment. It returns the total cost and the root's
// output cardinality, and panics on malformed trees (duplicate or
// out-of-range leaves).
func Cost(in *qon.Instance, t *Tree) (cost, size num.Num) {
	seen := graph.NewBitset(in.N())
	c, s, _ := evaluate(in, t, seen)
	return c, s
}

// evaluate returns (cost, size, relation set) of subtree t.
func evaluate(in *qon.Instance, t *Tree, seen *graph.Bitset) (num.Num, num.Num, *graph.Bitset) {
	if t.IsLeaf() {
		r := t.Relation
		if r >= in.N() {
			panic(fmt.Sprintf("bushy: relation %d out of range", r))
		}
		if seen.Has(r) {
			panic(fmt.Sprintf("bushy: relation %d appears twice", r))
		}
		seen.Add(r)
		set := graph.NewBitset(in.N())
		set.Add(r)
		return num.Zero(), in.T[r], set
	}
	lc, ls, lset := evaluate(in, t.Left, seen)
	rc, rs, rset := evaluate(in, t.Right, seen)

	// Per-outer-tuple access cost into the inner side.
	var inner num.Num
	if t.Right.IsLeaf() {
		inner = in.MinW(t.Right.Relation, lset)
	} else {
		inner = rs // full scan of the materialized intermediate
	}
	cost := lc.Add(rc).Add(ls.Mul(inner))

	// Output size: product of the sides and all crossing selectivities.
	size := ls.Mul(rs)
	lset.ForEach(func(u int) {
		rset.ForEach(func(v int) {
			size = size.Mul(in.S[u][v])
		})
	})
	lset.UnionWith(rset)
	return cost, size, lset
}

// HasCrossProduct reports whether any join node of t lacks a predicate
// between its two sides.
func HasCrossProduct(in *qon.Instance, t *Tree) bool {
	_, cross := crossCheck(in, t)
	return cross
}

func crossCheck(in *qon.Instance, t *Tree) (*graph.Bitset, bool) {
	if t.IsLeaf() {
		set := graph.NewBitset(in.N())
		set.Add(t.Relation)
		return set, false
	}
	lset, lc := crossCheck(in, t.Left)
	rset, rc := crossCheck(in, t.Right)
	connected := false
	lset.ForEach(func(u int) {
		if in.Q.Neighbors(u).IntersectCount(rset) > 0 {
			connected = true
		}
	})
	lset.UnionWith(rset)
	return lset, lc || rc || !connected
}
