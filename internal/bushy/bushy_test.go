package bushy

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
	"approxqo/internal/workload"
)

func instance(n int, seed int64) *qon.Instance {
	in, err := workload.Generate(workload.Params{N: n, Shape: workload.Random, Seed: seed})
	if err != nil {
		panic(err)
	}
	return in
}

// closeEnough reports whether a and b agree up to 2^-200 relative error
// — exact equality modulo 256-bit rounding, which differs across
// multiplication associations (tree-shaped vs sequential products).
// On the reductions' power-of-two instances everything is bit-exact;
// float64-seeded workloads are only rounding-exact.
func closeEnough(a, b num.Num) bool {
	if a.Equal(b) {
		return true
	}
	if a.IsZero() || b.IsZero() {
		return false
	}
	hi, lo := a.Max(b), a.Min(b)
	return hi.Div(lo).Sub(num.One()).Less(num.Pow2(-200))
}

func TestTreeBasics(t *testing.T) {
	tr := Join(Join(Leaf(0), Leaf(1)), Leaf(2))
	if got := tr.String(); got != "((0 ⋈ 1) ⋈ 2)" {
		t.Errorf("String = %q", got)
	}
	rs := tr.Relations()
	if len(rs) != 3 || rs[0] != 0 || rs[1] != 1 || rs[2] != 2 {
		t.Errorf("Relations = %v", rs)
	}
	if !Leaf(4).IsLeaf() || tr.IsLeaf() {
		t.Error("IsLeaf wrong")
	}
}

// Left-deep trees must reproduce the paper's sequence cost exactly.
func TestLeftDeepMatchesSequenceCost(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := instance(6, seed)
		z := qon.Sequence(rand.New(rand.NewSource(seed)).Perm(6))
		want := in.Cost(z)
		got, size := Cost(in, LeftDeep(z))
		if !closeEnough(got, want) {
			t.Errorf("seed %d: left-deep tree cost %v, sequence cost %v", seed, got, want)
		}
		if !closeEnough(size, in.Size(z)) {
			t.Errorf("seed %d: size mismatch", seed)
		}
	}
}

func TestCostPanicsOnMalformedTrees(t *testing.T) {
	in := instance(4, 1)
	for _, tr := range []*Tree{
		Join(Leaf(0), Leaf(0)), // duplicate
		Join(Leaf(0), Leaf(9)), // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tree %v did not panic", tr)
				}
			}()
			Cost(in, tr)
		}()
	}
}

func TestBushyBeatsOrMatchesLeftDeep(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := instance(7, seed)
		leftDeep, err := opt.NewDP().Optimize(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		tree, cost, err := Optimize(in)
		if err != nil {
			t.Fatal(err)
		}
		if leftDeep.Cost.Less(cost) && !closeEnough(leftDeep.Cost, cost) {
			t.Errorf("seed %d: bushy optimum 2^%.2f above left-deep optimum 2^%.2f",
				seed, cost.Log2(), leftDeep.Cost.Log2())
		}
		// The returned tree must reproduce its claimed cost (up to the
		// association-rounding tolerance).
		re, _ := Cost(in, tree)
		if !closeEnough(re, cost) {
			t.Errorf("seed %d: tree does not reproduce DP cost", seed)
		}
		if got := len(tree.Relations()); got != 7 {
			t.Errorf("seed %d: tree covers %d relations", seed, got)
		}
	}
}

// Brute-force reference: enumerate every bushy tree over ≤ 5 relations.
func bruteBushy(in *qon.Instance) num.Num {
	n := in.N()
	full := (1 << n) - 1
	memo := make(map[int]num.Num)
	var best func(mask int) num.Num
	best = func(mask int) num.Num {
		if v, ok := memo[mask]; ok {
			return v
		}
		if mask&(mask-1) == 0 {
			memo[mask] = num.Zero()
			return memo[mask]
		}
		var bv num.Num
		first := true
		for l := (mask - 1) & mask; l > 0; l = (l - 1) & mask {
			r := mask &^ l
			sizeL := maskSize(in, l)
			var inner num.Num
			if r&(r-1) == 0 {
				v := trailingZeros(r)
				lset := graph.NewBitset(in.N())
				for u := 0; u < in.N(); u++ {
					if l&(1<<u) != 0 {
						lset.Add(u)
					}
				}
				inner = in.MinW(v, lset)
			} else {
				inner = maskSize(in, r)
			}
			cand := best(l).Add(best(r)).Add(sizeL.Mul(inner))
			if first || cand.Less(bv) {
				bv, first = cand, false
			}
		}
		memo[mask] = bv
		return bv
	}
	return best(full)
}

func maskSize(in *qon.Instance, mask int) num.Num {
	var vs []int
	for v := 0; v < in.N(); v++ {
		if mask&(1<<v) != 0 {
			vs = append(vs, v)
		}
	}
	return in.Size(vs)
}

func trailingZeros(v int) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// Property: the DP matches an independent brute-force implementation.
func TestQuickDPMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		in := instance(5, seed)
		_, cost, err := Optimize(in)
		if err != nil {
			return false
		}
		return closeEnough(cost, bruteBushy(in))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeCaps(t *testing.T) {
	if _, _, err := Optimize(instance(MaxDPN+1, 2)); err == nil {
		t.Error("oversize instance accepted")
	}
	tr, cost, err := Optimize(&qon.Instance{
		Q: graph.New(1),
		T: []num.Num{num.FromInt64(5)},
		S: [][]num.Num{{num.One()}},
		W: [][]num.Num{{num.FromInt64(5)}},
	})
	if err != nil || !cost.IsZero() || !tr.IsLeaf() {
		t.Error("single relation mishandled")
	}
}

func TestHasCrossProduct(t *testing.T) {
	in, err := workload.Generate(workload.Params{N: 4, Shape: workload.Chain, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// (0 ⋈ 1) ⋈ (2 ⋈ 3): chain 0-1-2-3 — join of {0,1} with {2,3} has
	// the 1–2 edge; 2 ⋈ 3 has an edge; no cross product.
	good := Join(Join(Leaf(0), Leaf(1)), Join(Leaf(2), Leaf(3)))
	if HasCrossProduct(in, good) {
		t.Error("connected tree flagged")
	}
	// (0 ⋈ 2) has no edge on the chain.
	bad := Join(Join(Leaf(0), Leaf(2)), Join(Leaf(1), Leaf(3)))
	if !HasCrossProduct(in, bad) {
		t.Error("cross product not flagged")
	}
}
