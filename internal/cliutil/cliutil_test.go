package cliutil

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"approxqo/internal/certify"
	"approxqo/internal/engine"
)

func TestRegisterParsesUnifiedFlags(t *testing.T) {
	c := Common{Seed: 1}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-seed", "42", "-timeout", "250ms", "-json"}); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 || c.Timeout != 250*time.Millisecond || !c.JSON {
		t.Fatalf("parsed Common: seed=%d timeout=%v json=%v", c.Seed, c.Timeout, c.JSON)
	}
}

func TestContextHonorsTimeout(t *testing.T) {
	c := Common{}
	ctx, cancel := c.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero timeout should not set a deadline")
	}

	c.Timeout = time.Nanosecond
	dctx, dcancel := c.Context()
	defer dcancel()
	select {
	case <-dctx.Done():
	case <-time.After(time.Second):
		t.Fatal("timeout context never expired")
	}
	if dctx.Err() != context.DeadlineExceeded {
		t.Errorf("err = %v", dctx.Err())
	}
}

func TestClassifyMapsTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{engine.ErrQuarantined, "quarantined"},
		{fmt.Errorf("wrapped: %w", engine.ErrQuarantined), "quarantined"},
		{engine.ErrUncertified, "uncertified"},
		{certify.ErrInvalidPlan, "invalid_plan"},
		{certify.ErrCostMismatch, "cost_mismatch"},
		{certify.ErrBoundViolated, "bound_violated"},
		{engine.ErrNoOptimizers, "no_optimizers"},
		{engine.ErrNilInstance, "nil_instance"},
		{engine.ErrAllFailed, "all_failed"},
		{context.DeadlineExceeded, "deadline"},
		{context.Canceled, "cancelled"},
		{errors.New("anything else"), "error"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
	// ErrUncertified wraps certification detail in practice; the engine
	// kind must win over the wrapped certify sentinel order-independently.
	combined := fmt.Errorf("%w: %w", engine.ErrUncertified, certify.ErrCostMismatch)
	if got := Classify(combined); got != "uncertified" {
		t.Errorf("Classify(uncertified+cost_mismatch) = %q, want uncertified", got)
	}
}

func TestErrorDocShape(t *testing.T) {
	var doc ErrorDoc
	doc.Error.Kind = Classify(engine.ErrQuarantined)
	doc.Error.Message = engine.ErrQuarantined.Error()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]map[string]string
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["error"]["kind"] != "quarantined" || decoded["error"]["message"] == "" {
		t.Errorf("unexpected error doc: %s", data)
	}
}

func TestWriteJSONIndents(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]int{"n": 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"n\": 3") || !strings.HasSuffix(out, "}\n") {
		t.Errorf("unexpected JSON: %q", out)
	}
}
