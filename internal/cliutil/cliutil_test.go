package cliutil

import (
	"bytes"
	"context"
	"flag"
	"strings"
	"testing"
	"time"
)

func TestRegisterParsesUnifiedFlags(t *testing.T) {
	c := Common{Seed: 1}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-seed", "42", "-timeout", "250ms", "-json"}); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 || c.Timeout != 250*time.Millisecond || !c.JSON {
		t.Fatalf("parsed Common = %+v", c)
	}
}

func TestContextHonorsTimeout(t *testing.T) {
	c := Common{}
	ctx, cancel := c.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero timeout should not set a deadline")
	}

	c.Timeout = time.Nanosecond
	dctx, dcancel := c.Context()
	defer dcancel()
	select {
	case <-dctx.Done():
	case <-time.After(time.Second):
		t.Fatal("timeout context never expired")
	}
	if dctx.Err() != context.DeadlineExceeded {
		t.Errorf("err = %v", dctx.Err())
	}
}

func TestWriteJSONIndents(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]int{"n": 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"n\": 3") || !strings.HasSuffix(out, "}\n") {
		t.Errorf("unexpected JSON: %q", out)
	}
}
