// Package cliutil unifies the flag surface of the repo's commands:
// every binary accepts -seed, -timeout and -json with the same
// spelling, semantics and defaults, and renders JSON and fatal errors
// the same way.
package cliutil

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Common is the flag set shared by all commands.
type Common struct {
	// Seed seeds every randomized component (workload generation,
	// annealing walks, sampling).
	Seed int64
	// Timeout bounds the whole run; zero means unbounded. Optimizer
	// ensembles receive it through Context, so anytime algorithms
	// degrade to best-so-far results instead of erroring.
	Timeout time.Duration
	// JSON switches the command's primary output to machine-readable
	// JSON (engine reports, experiment tables).
	JSON bool
}

// Register installs the shared flags on fs with the Common's current
// values as defaults; call before fs.Parse.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "seed", c.Seed, "seed for randomized components")
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "overall deadline (e.g. 500ms, 10s); 0 = none")
	fs.BoolVar(&c.JSON, "json", c.JSON, "emit machine-readable JSON instead of text")
}

// Context returns a context honouring c.Timeout. The cancel func must
// be called (defer it) even when Timeout is zero.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(context.Background(), c.Timeout)
	}
	return context.WithCancel(context.Background())
}

// WriteJSON writes v to w indented, with a trailing newline.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Fatal prints "prog: err" to stderr and exits 1.
func Fatal(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(1)
}
