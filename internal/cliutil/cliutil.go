// Package cliutil unifies the flag surface of the repo's commands:
// every binary accepts -seed, -timeout and -json with the same
// spelling, semantics and defaults, and renders JSON and fatal errors
// the same way. Fatal errors are classified against the engine's
// structured error taxonomy (uncertified, quarantined, invalid plan,
// …) so -json consumers can branch on a stable kind instead of
// matching message strings.
package cliutil

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"approxqo/internal/certify"
	"approxqo/internal/engine"
	"approxqo/internal/trace"
)

// DefaultSignalGrace is how long the interrupt handler waits, after
// cancelling the command's context, for the command to wind down and
// flush on its own before force-flushing the observability outputs and
// exiting.
const DefaultSignalGrace = 3 * time.Second

// Common is the flag set shared by all commands.
type Common struct {
	// Seed seeds every randomized component (workload generation,
	// annealing walks, sampling).
	Seed int64
	// Timeout bounds the whole run; zero means unbounded. Optimizer
	// ensembles receive it through Context, so anytime algorithms
	// degrade to best-so-far results instead of erroring.
	Timeout time.Duration
	// JSON switches the command's primary output to machine-readable
	// JSON (engine reports, experiment tables).
	JSON bool

	// TracePath, when non-empty, collects hierarchical spans for the
	// whole command and writes a Chrome trace_event JSON file there on
	// Close (load it in chrome://tracing or ui.perfetto.dev).
	TracePath string
	// Metrics, when set, prints the metrics-registry summary (counters,
	// gauges, latency histograms) to stderr on Close.
	Metrics bool
	// CPUProfile / MemProfile name pprof output files; empty disables.
	CPUProfile string
	MemProfile string

	// SignalGrace overrides how long the SIGINT/SIGTERM handler waits
	// for a graceful wind-down before force-flushing and exiting (zero
	// means DefaultSignalGrace). Long-running servers set this above
	// their drain deadline.
	SignalGrace time.Duration

	mu        sync.Mutex // guards the fields below (Close races the signal handler)
	tracer    *trace.Tracer
	registry  *trace.Registry
	profiler  *trace.Profiler
	cancels   []context.CancelFunc
	signalsOn bool
	exit      func(int) // test hook; os.Exit when nil
}

// Register installs the shared flags on fs with the Common's current
// values as defaults; call before fs.Parse.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "seed", c.Seed, "seed for randomized components")
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "overall deadline (e.g. 500ms, 10s); 0 = none")
	fs.BoolVar(&c.JSON, "json", c.JSON, "emit machine-readable JSON instead of text")
	fs.StringVar(&c.TracePath, "trace", c.TracePath, "write a Chrome trace_event JSON file of the run")
	fs.BoolVar(&c.Metrics, "metrics", c.Metrics, "print the metrics-registry summary to stderr")
	fs.StringVar(&c.CPUProfile, "cpuprofile", c.CPUProfile, "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", c.MemProfile, "write a pprof heap profile to this file on exit")
}

// Observe starts whatever observability the parsed flags requested and
// returns the matching engine options (nil slice when nothing was
// asked for — engine.New tolerates the resulting nil tracer/registry).
// It also installs a SIGINT/SIGTERM handler: the first signal cancels
// every context handed out by Context so the run winds down gracefully
// (anytime optimizers return best-so-far, the normal exit path flushes);
// if the command has not exited within SignalGrace — or a second signal
// arrives — the handler flushes the trace/metrics/profile outputs
// itself and exits, so an interrupted run never loses its trace file.
// Call once after flag parsing; pair with a deferred Close.
func (c *Common) Observe(prog string) []engine.Option {
	var opts []engine.Option
	var profiler *trace.Profiler
	if c.CPUProfile != "" || c.MemProfile != "" {
		p, err := trace.StartProfiles(c.CPUProfile, c.MemProfile)
		if err != nil {
			Fatal(prog, err)
		}
		profiler = p
	}
	c.mu.Lock()
	if c.TracePath != "" {
		c.tracer = trace.New()
		opts = append(opts, engine.WithTracer(c.tracer))
	}
	if c.Metrics {
		c.registry = trace.NewRegistry()
		opts = append(opts, engine.WithMetrics(c.registry))
	}
	c.profiler = profiler
	install := !c.signalsOn
	c.signalsOn = true
	c.mu.Unlock()
	if install {
		sigC := make(chan os.Signal, 2)
		signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
		go c.interruptLoop(prog, sigC)
	}
	return opts
}

// interruptLoop is the body of the signal handler goroutine (split out
// so tests can drive it with a synthetic channel and exit hook).
func (c *Common) interruptLoop(prog string, sigC <-chan os.Signal) {
	sig := <-sigC
	fmt.Fprintf(os.Stderr, "%s: %v: winding down (signal again to force exit)\n", prog, sig)
	c.cancelAll()
	grace := c.SignalGrace
	if grace <= 0 {
		grace = DefaultSignalGrace
	}
	t := time.NewTimer(grace)
	defer t.Stop()
	select {
	case <-sigC:
	case <-t.C:
	}
	// Still alive past the grace window: the command is stuck or slow.
	// Flush observability ourselves so the interrupt does not lose the
	// trace/metrics/profile outputs, then exit with the conventional
	// 128+SIGINT status.
	c.Close(prog)
	exit := os.Exit
	c.mu.Lock()
	if c.exit != nil {
		exit = c.exit
	}
	c.mu.Unlock()
	exit(130)
}

// cancelAll cancels every context handed out by Context.
func (c *Common) cancelAll() {
	c.mu.Lock()
	cancels := c.cancels
	c.cancels = nil
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// Tracer returns the tracer started by Observe, or nil when -trace was
// not given — commands can hang extra spans off it without branching.
func (c *Common) Tracer() *trace.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// Registry returns the metrics registry started by Observe, or nil
// when -metrics was not given.
func (c *Common) Registry() *trace.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registry
}

// Close flushes the observability outputs requested by the flags: the
// trace file, the metrics summary on stderr, and any pprof profiles.
// Idempotent (Fatal flushes before exiting, and commands also defer a
// Close), safe when Observe was never called or requested nothing, and
// safe to race with the interrupt handler's own flush — exactly one of
// them writes each output.
func (c *Common) Close(prog string) {
	c.mu.Lock()
	tracer, registry, profiler := c.tracer, c.registry, c.profiler
	c.tracer, c.registry, c.profiler = nil, nil, nil
	c.mu.Unlock()
	if tracer != nil {
		if err := tracer.WriteFile(c.TracePath); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing trace: %v\n", prog, err)
		}
	}
	if registry != nil {
		fmt.Fprintf(os.Stderr, "\n%s metrics:\n", prog)
		registry.WriteText(os.Stderr)
	}
	if profiler != nil {
		if err := profiler.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing profile: %v\n", prog, err)
		}
	}
}

// Context returns a context honouring c.Timeout. The cancel func must
// be called (defer it) even when Timeout is zero. The context is also
// cancelled by the first SIGINT/SIGTERM once Observe has installed the
// interrupt handler, so a Ctrl-C degrades the run gracefully instead of
// killing it mid-write.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	var ctx context.Context
	var cancel context.CancelFunc
	if c.Timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), c.Timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	c.mu.Lock()
	c.cancels = append(c.cancels, cancel)
	c.mu.Unlock()
	return ctx, cancel
}

// WriteJSON writes v to w indented, with a trailing newline.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Fatal prints "prog: err" to stderr and exits 1.
func Fatal(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(1)
}

// ErrorDoc is the machine-readable rendering of a fatal error in -json
// mode: a stable kind from the engine's error taxonomy plus the full
// message.
type ErrorDoc struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// Classify maps err onto the structured taxonomy shared by all
// commands' -json output. Unrecognized errors classify as "error".
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, engine.ErrQuarantined):
		return "quarantined"
	case errors.Is(err, engine.ErrUncertified):
		return "uncertified"
	case errors.Is(err, certify.ErrInvalidPlan):
		return "invalid_plan"
	case errors.Is(err, certify.ErrCostMismatch):
		return "cost_mismatch"
	case errors.Is(err, certify.ErrBoundViolated):
		return "bound_violated"
	case errors.Is(err, engine.ErrNoOptimizers):
		return "no_optimizers"
	case errors.Is(err, engine.ErrNilInstance):
		return "nil_instance"
	case errors.Is(err, engine.ErrAllFailed):
		return "all_failed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		return "error"
	}
}

// Fatal renders err and exits 1. In -json mode it emits an ErrorDoc on
// stdout — classified against the engine's error taxonomy — so scripted
// consumers always receive valid JSON, even on failure; otherwise it
// prints "prog: err" to stderr like the package-level Fatal. Requested
// observability outputs are flushed first (os.Exit skips defers), so a
// failing run still leaves its trace and metrics behind.
func (c *Common) Fatal(prog string, err error) {
	c.Close(prog)
	if c.JSON {
		var doc ErrorDoc
		doc.Error.Kind = Classify(err)
		doc.Error.Message = err.Error()
		_ = WriteJSON(os.Stdout, doc)
		os.Exit(1)
	}
	Fatal(prog, err)
}
