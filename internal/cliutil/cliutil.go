// Package cliutil unifies the flag surface of the repo's commands:
// every binary accepts -seed, -timeout and -json with the same
// spelling, semantics and defaults, and renders JSON and fatal errors
// the same way. Fatal errors are classified against the engine's
// structured error taxonomy (uncertified, quarantined, invalid plan,
// …) so -json consumers can branch on a stable kind instead of
// matching message strings.
package cliutil

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"approxqo/internal/certify"
	"approxqo/internal/engine"
	"approxqo/internal/trace"
)

// Common is the flag set shared by all commands.
type Common struct {
	// Seed seeds every randomized component (workload generation,
	// annealing walks, sampling).
	Seed int64
	// Timeout bounds the whole run; zero means unbounded. Optimizer
	// ensembles receive it through Context, so anytime algorithms
	// degrade to best-so-far results instead of erroring.
	Timeout time.Duration
	// JSON switches the command's primary output to machine-readable
	// JSON (engine reports, experiment tables).
	JSON bool

	// TracePath, when non-empty, collects hierarchical spans for the
	// whole command and writes a Chrome trace_event JSON file there on
	// Close (load it in chrome://tracing or ui.perfetto.dev).
	TracePath string
	// Metrics, when set, prints the metrics-registry summary (counters,
	// gauges, latency histograms) to stderr on Close.
	Metrics bool
	// CPUProfile / MemProfile name pprof output files; empty disables.
	CPUProfile string
	MemProfile string

	tracer   *trace.Tracer
	registry *trace.Registry
	profiler *trace.Profiler
}

// Register installs the shared flags on fs with the Common's current
// values as defaults; call before fs.Parse.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "seed", c.Seed, "seed for randomized components")
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "overall deadline (e.g. 500ms, 10s); 0 = none")
	fs.BoolVar(&c.JSON, "json", c.JSON, "emit machine-readable JSON instead of text")
	fs.StringVar(&c.TracePath, "trace", c.TracePath, "write a Chrome trace_event JSON file of the run")
	fs.BoolVar(&c.Metrics, "metrics", c.Metrics, "print the metrics-registry summary to stderr")
	fs.StringVar(&c.CPUProfile, "cpuprofile", c.CPUProfile, "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", c.MemProfile, "write a pprof heap profile to this file on exit")
}

// Observe starts whatever observability the parsed flags requested and
// returns the matching engine options (nil slice when nothing was
// asked for — engine.New tolerates the resulting nil tracer/registry).
// Call once after flag parsing; pair with a deferred Close.
func (c *Common) Observe(prog string) []engine.Option {
	var opts []engine.Option
	if c.TracePath != "" {
		c.tracer = trace.New()
		opts = append(opts, engine.WithTracer(c.tracer))
	}
	if c.Metrics {
		c.registry = trace.NewRegistry()
		opts = append(opts, engine.WithMetrics(c.registry))
	}
	if c.CPUProfile != "" || c.MemProfile != "" {
		p, err := trace.StartProfiles(c.CPUProfile, c.MemProfile)
		if err != nil {
			Fatal(prog, err)
		}
		c.profiler = p
	}
	return opts
}

// Tracer returns the tracer started by Observe, or nil when -trace was
// not given — commands can hang extra spans off it without branching.
func (c *Common) Tracer() *trace.Tracer { return c.tracer }

// Registry returns the metrics registry started by Observe, or nil
// when -metrics was not given.
func (c *Common) Registry() *trace.Registry { return c.registry }

// Close flushes the observability outputs requested by the flags: the
// trace file, the metrics summary on stderr, and any pprof profiles.
// Idempotent (Fatal flushes before exiting, and commands also defer a
// Close) and safe when Observe was never called or requested nothing.
func (c *Common) Close(prog string) {
	if c.tracer != nil {
		if err := c.tracer.WriteFile(c.TracePath); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing trace: %v\n", prog, err)
		}
		c.tracer = nil
	}
	if c.registry != nil {
		fmt.Fprintf(os.Stderr, "\n%s metrics:\n", prog)
		c.registry.WriteText(os.Stderr)
		c.registry = nil
	}
	if c.profiler != nil {
		if err := c.profiler.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing profile: %v\n", prog, err)
		}
		c.profiler = nil
	}
}

// Context returns a context honouring c.Timeout. The cancel func must
// be called (defer it) even when Timeout is zero.
func (c *Common) Context() (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(context.Background(), c.Timeout)
	}
	return context.WithCancel(context.Background())
}

// WriteJSON writes v to w indented, with a trailing newline.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Fatal prints "prog: err" to stderr and exits 1.
func Fatal(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(1)
}

// ErrorDoc is the machine-readable rendering of a fatal error in -json
// mode: a stable kind from the engine's error taxonomy plus the full
// message.
type ErrorDoc struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// Classify maps err onto the structured taxonomy shared by all
// commands' -json output. Unrecognized errors classify as "error".
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, engine.ErrQuarantined):
		return "quarantined"
	case errors.Is(err, engine.ErrUncertified):
		return "uncertified"
	case errors.Is(err, certify.ErrInvalidPlan):
		return "invalid_plan"
	case errors.Is(err, certify.ErrCostMismatch):
		return "cost_mismatch"
	case errors.Is(err, certify.ErrBoundViolated):
		return "bound_violated"
	case errors.Is(err, engine.ErrNoOptimizers):
		return "no_optimizers"
	case errors.Is(err, engine.ErrNilInstance):
		return "nil_instance"
	case errors.Is(err, engine.ErrAllFailed):
		return "all_failed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		return "error"
	}
}

// Fatal renders err and exits 1. In -json mode it emits an ErrorDoc on
// stdout — classified against the engine's error taxonomy — so scripted
// consumers always receive valid JSON, even on failure; otherwise it
// prints "prog: err" to stderr like the package-level Fatal. Requested
// observability outputs are flushed first (os.Exit skips defers), so a
// failing run still leaves its trace and metrics behind.
func (c *Common) Fatal(prog string, err error) {
	c.Close(prog)
	if c.JSON {
		var doc ErrorDoc
		doc.Error.Kind = Classify(err)
		doc.Error.Message = err.Error()
		_ = WriteJSON(os.Stdout, doc)
		os.Exit(1)
	}
	Fatal(prog, err)
}
