package cliutil

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestInterruptCancelsContextAndFlushes drives the interrupt loop with
// a synthetic signal: the first signal must cancel every context handed
// out by Context, and once the grace window lapses the handler must
// flush the trace file itself and exit 130 — an interrupted run keeps
// its observability outputs.
func TestInterruptCancelsContextAndFlushes(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	c := &Common{TracePath: tracePath, SignalGrace: 10 * time.Millisecond}
	exited := make(chan int, 1)
	c.mu.Lock()
	c.exit = func(code int) { exited <- code }
	c.mu.Unlock()
	if opts := c.Observe("test"); len(opts) != 1 {
		t.Fatalf("want one engine option for -trace, got %d", len(opts))
	}
	ctx, cancel := c.Context()
	defer cancel()

	sigC := make(chan os.Signal, 1)
	done := make(chan struct{})
	go func() {
		c.interruptLoop("test", sigC)
		close(done)
	}()
	sigC <- os.Interrupt

	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("first signal did not cancel the run context")
	}
	select {
	case code := <-exited:
		if code != 130 {
			t.Fatalf("exit code = %d, want 130", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not exit after the grace window")
	}
	<-done
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("interrupt lost the trace file: %v", err)
	}
}

// TestSecondSignalForcesImmediateFlush checks that a second signal
// preempts the grace window.
func TestSecondSignalForcesImmediateFlush(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	c := &Common{TracePath: tracePath, SignalGrace: time.Hour}
	exited := make(chan int, 1)
	c.mu.Lock()
	c.exit = func(code int) { exited <- code }
	c.tracer = nil
	c.mu.Unlock()
	c.Observe("test")

	sigC := make(chan os.Signal, 2)
	go c.interruptLoop("test", sigC)
	sigC <- os.Interrupt
	sigC <- os.Interrupt
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not force an exit")
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("forced exit lost the trace file: %v", err)
	}
}

// TestCloseConcurrentWithHandlerWritesOnce races Close against the
// handler's own flush; the trace file must be written exactly once and
// without a data race (the detector is the assertion).
func TestCloseConcurrentWithHandlerWritesOnce(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	c := &Common{TracePath: tracePath}
	c.Observe("test")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Close("test")
		}()
	}
	wg.Wait()
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("no trace file after concurrent Close: %v", err)
	}
	c.Close("test") // idempotent
}
