// Package num provides arbitrary-magnitude non-negative arithmetic for
// query-optimization cost models.
//
// The hardness reductions in this repository manufacture costs such as
// α^{n²} with α = 4^n — magnitudes far outside float64's exponent range
// (≈2^1024) but trivially representable by math/big.Float, whose exponent
// is a 32-bit integer. All quantities produced by the reductions are
// (sums of few) powers of two, so a 256-bit mantissa makes the arithmetic
// exact for every comparison the experiments perform; for generic
// workloads it behaves as very wide floating point.
//
// Num values are immutable: every operation returns a fresh value and
// never mutates its operands. The zero Num is not valid; use Zero(),
// FromInt64, or the other constructors.
package num

import (
	"fmt"
	"math"
	"math/big"
)

// Prec is the mantissa precision, in bits, used for all Num arithmetic.
const Prec = 256

// Num is an immutable non-negative number of arbitrary magnitude.
type Num struct {
	f *big.Float
}

func newFloat() *big.Float {
	return new(big.Float).SetPrec(Prec).SetMode(big.ToNearestEven)
}

// Zero returns the number 0.
func Zero() Num { return Num{newFloat()} }

// One returns the number 1.
func One() Num { return FromInt64(1) }

// FromInt64 returns v as a Num. It panics if v is negative.
func FromInt64(v int64) Num {
	if v < 0 {
		panic(fmt.Sprintf("num: FromInt64 called with negative value %d", v))
	}
	return Num{newFloat().SetInt64(v)}
}

// FromFloat64 returns v as a Num. It panics if v is negative, NaN or Inf.
func FromFloat64(v float64) Num {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("num: FromFloat64 called with invalid value %v", v))
	}
	return Num{newFloat().SetFloat64(v)}
}

// FromBigInt returns v as a Num. It panics if v is negative.
func FromBigInt(v *big.Int) Num {
	if v.Sign() < 0 {
		panic("num: FromBigInt called with negative value")
	}
	return Num{newFloat().SetInt(v)}
}

// Pow2 returns 2^exp for any int64 exponent (including negative ones).
func Pow2(exp int64) Num {
	f := newFloat().SetInt64(1)
	f.SetMantExp(f, int(exp))
	return Num{f}
}

// valid reports whether n was produced by a constructor.
func (n Num) valid() bool { return n.f != nil }

// IsValid reports whether n was produced by a constructor (or decoded
// from JSON). Arithmetic on an invalid (zero-value) Num panics, so
// code that receives Num values from untrusted sources — decoded
// instances, optimizer results under audit — should check IsValid
// before computing with them.
func (n Num) IsValid() bool { return n.valid() }

func (n Num) check() {
	if !n.valid() {
		panic("num: use of zero-value Num; construct with Zero/FromInt64/...")
	}
}

// Float returns a copy of the underlying big.Float.
func (n Num) Float() *big.Float {
	n.check()
	return newFloat().Set(n.f)
}

// Add returns n + m.
func (n Num) Add(m Num) Num {
	n.check()
	m.check()
	return Num{newFloat().Add(n.f, m.f)}
}

// Sub returns n − m. It panics if the result would be negative.
func (n Num) Sub(m Num) Num {
	n.check()
	m.check()
	r := newFloat().Sub(n.f, m.f)
	if r.Sign() < 0 {
		panic("num: Sub result is negative")
	}
	return Num{r}
}

// Mul returns n · m.
func (n Num) Mul(m Num) Num {
	n.check()
	m.check()
	return Num{newFloat().Mul(n.f, m.f)}
}

// Div returns n / m. It panics if m is zero.
func (n Num) Div(m Num) Num {
	n.check()
	m.check()
	if m.f.Sign() == 0 {
		panic("num: division by zero")
	}
	return Num{newFloat().Quo(n.f, m.f)}
}

// MulInt64 returns n · v. It panics if v is negative.
func (n Num) MulInt64(v int64) Num { return n.Mul(FromInt64(v)) }

// Pow returns n^k for k ≥ 0 by binary exponentiation. 0^0 is 1.
func (n Num) Pow(k int64) Num {
	n.check()
	if k < 0 {
		panic(fmt.Sprintf("num: Pow called with negative exponent %d", k))
	}
	result := newFloat().SetInt64(1)
	base := newFloat().Set(n.f)
	for k > 0 {
		if k&1 == 1 {
			result.Mul(result, base)
		}
		base.Mul(base, base)
		k >>= 1
	}
	return Num{result}
}

// Inv returns 1/n. It panics if n is zero.
func (n Num) Inv() Num { return One().Div(n) }

// Cmp compares n and m, returning −1, 0 or +1.
func (n Num) Cmp(m Num) int {
	n.check()
	m.check()
	return n.f.Cmp(m.f)
}

// Less reports whether n < m.
func (n Num) Less(m Num) bool { return n.Cmp(m) < 0 }

// LessEq reports whether n ≤ m.
func (n Num) LessEq(m Num) bool { return n.Cmp(m) <= 0 }

// Equal reports whether n == m.
func (n Num) Equal(m Num) bool { return n.Cmp(m) == 0 }

// IsZero reports whether n == 0.
func (n Num) IsZero() bool {
	n.check()
	return n.f.Sign() == 0
}

// Min returns the smaller of n and m.
func (n Num) Min(m Num) Num {
	if n.Cmp(m) <= 0 {
		return n
	}
	return m
}

// Max returns the larger of n and m.
func (n Num) Max(m Num) Num {
	if n.Cmp(m) >= 0 {
		return n
	}
	return m
}

// Log2 returns log₂(n) as a float64. It panics if n is zero.
//
// The result is accurate to well below 1e-9 relative error, which is
// ample: the experiments compare log-domain magnitudes that differ by
// thousands.
func (n Num) Log2() float64 {
	n.check()
	if n.f.Sign() == 0 {
		panic("num: Log2 of zero")
	}
	mant := newFloat()
	exp := n.f.MantExp(mant) // n = mant · 2^exp, mant ∈ [0.5, 1)
	m, _ := mant.Float64()
	return float64(exp) + math.Log2(m)
}

// Float64 returns the nearest float64. Values beyond float64 range
// return ±Inf in the usual big.Float manner (here always +Inf since Num
// is non-negative).
func (n Num) Float64() float64 {
	n.check()
	v, _ := n.f.Float64()
	return v
}

// Int64 returns the value as an int64 when it is an integer in range;
// ok is false otherwise.
func (n Num) Int64() (v int64, ok bool) {
	n.check()
	if !n.f.IsInt() {
		return 0, false
	}
	v, acc := n.f.Int64()
	return v, acc == big.Exact
}

// String renders n compactly: exact integers below 2^63 in decimal,
// everything else in big.Float scientific notation.
func (n Num) String() string {
	if !n.valid() {
		return "<invalid>"
	}
	if v, ok := n.Int64(); ok {
		return fmt.Sprintf("%d", v)
	}
	return n.f.Text('g', 10)
}

// CanonicalAppend appends an exact, injective textual form of n to dst
// and returns the extended slice: two Nums append the same bytes if and
// only if they are numerically equal. It is the value encoding the
// canonical instance fingerprints (qon/qoh Canonicalize) fold into
// their hashes. The bytes are big.Float 'p' format — hex mantissa and
// binary exponent — and never contain a NUL byte, so callers may use
// 0x00 as a separator.
func (n Num) CanonicalAppend(dst []byte) []byte {
	n.check()
	return n.f.Append(dst, 'p', 0)
}

// MarshalJSON encodes n as a JSON string in big.Float parseable form.
func (n Num) MarshalJSON() ([]byte, error) {
	if !n.valid() {
		return nil, fmt.Errorf("num: cannot marshal zero-value Num")
	}
	return []byte(`"` + n.f.Text('p', 0) + `"`), nil
}

// UnmarshalJSON decodes a Num from the representation MarshalJSON emits
// (it also accepts plain decimal strings and bare JSON numbers).
func (n *Num) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	f, _, err := big.ParseFloat(s, 0, Prec, big.ToNearestEven)
	if err != nil {
		return fmt.Errorf("num: parsing %q: %w", s, err)
	}
	if f.Sign() < 0 {
		return fmt.Errorf("num: negative value %q", s)
	}
	// big.ParseFloat turns over-large exponents into +Inf without an
	// error, and infinities poison later arithmetic (Inf−Inf and 0·Inf
	// panic inside math/big). Num is finite by construction; keep it
	// finite on the decode path too.
	if f.IsInf() {
		return fmt.Errorf("num: non-finite value %q", s)
	}
	n.f = f
	return nil
}

// Sum returns the sum of all values, or 0 for an empty slice.
func Sum(values ...Num) Num {
	total := Zero()
	for _, v := range values {
		total = total.Add(v)
	}
	return total
}

// Prod returns the product of all values, or 1 for an empty slice.
func Prod(values ...Num) Num {
	total := One()
	for _, v := range values {
		total = total.Mul(v)
	}
	return total
}

// MulAdd returns a·b + c using a single allocation — the fused
// operation of the subset DPs' inner loops.
func MulAdd(a, b, c Num) Num {
	a.check()
	b.check()
	c.check()
	f := newFloat().Mul(a.f, b.f)
	f.Add(f, c.f)
	return Num{f}
}
