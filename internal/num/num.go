// Package num provides arbitrary-magnitude non-negative arithmetic for
// query-optimization cost models.
//
// The hardness reductions in this repository manufacture costs such as
// α^{n²} with α = 4^n — magnitudes far outside float64's exponent range
// (≈2^1024) but trivially representable by math/big.Float, whose exponent
// is a 32-bit integer. All quantities produced by the reductions are
// (sums of few) powers of two, so a 256-bit mantissa makes the arithmetic
// exact for every comparison the experiments perform; for generic
// workloads it behaves as very wide floating point.
//
// Values whose mantissa fits 128 bits — every power of two, every
// float64-derived workload quantity, and most intermediate products the
// DPs form from them — are carried inline in a dyadic fixed-point form
// (odd uint128 mantissa × 2^int32) and computed on with plain machine
// arithmetic, falling back to big.Float transparently and
// bit-identically when a result outgrows the form (see dyadic.go).
//
// Num values are immutable: every operation returns a fresh value and
// never mutates its operands. The zero Num is not valid; use Zero(),
// FromInt64, or the other constructors.
package num

import (
	"fmt"
	"math"
	"math/big"
)

// Prec is the mantissa precision, in bits, used for all Num arithmetic.
const Prec = 256

// Num is an immutable non-negative number of arbitrary magnitude.
type Num struct {
	f        *big.Float // big representation; nil when dy
	mhi, mlo uint64     // dyadic odd mantissa (mhi:mlo); 0 means the value 0
	exp      int32      // dyadic exponent: value = (mhi:mlo)·2^exp
	dy       bool       // true when the dyadic fields carry the value
}

func newFloat() *big.Float {
	floatAllocs.Add(1)
	return new(big.Float).SetPrec(Prec).SetMode(big.ToNearestEven)
}

// Zero returns the number 0.
func Zero() Num { return Num{dy: true} }

// One returns the number 1.
func One() Num { return Num{mlo: 1, dy: true} }

// FromInt64 returns v as a Num. It panics if v is negative.
func FromInt64(v int64) Num {
	if v < 0 {
		panic(fmt.Sprintf("num: FromInt64 called with negative value %d", v))
	}
	n, _ := dyNum(0, uint64(v), 0)
	return n
}

// FromFloat64 returns v as a Num. It panics if v is negative, NaN or Inf.
func FromFloat64(v float64) Num {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("num: FromFloat64 called with invalid value %v", v))
	}
	if v == 0 {
		return Num{dy: true}
	}
	// Every finite float64 is dyadic: frexp's 53-bit mantissa scaled to an
	// integer is exact.
	fr, e := math.Frexp(v)
	n, _ := dyNum(0, uint64(fr*(1<<53)), int64(e)-53)
	return n
}

// FromBigInt returns v as a Num. It panics if v is negative.
func FromBigInt(v *big.Int) Num {
	if v.Sign() < 0 {
		panic("num: FromBigInt called with negative value")
	}
	if v.Sign() == 0 {
		return Num{dy: true}
	}
	if tz := v.TrailingZeroBits(); int64(v.BitLen())-int64(tz) <= 128 {
		t := new(big.Int).Rsh(v, tz)
		hi, lo := wordsTo128(t.Bits())
		if n, ok := dyNum(hi, lo, int64(tz)); ok {
			return n
		}
	}
	return Num{f: newFloat().SetInt(v)}
}

// Pow2 returns 2^exp for any int64 exponent (including negative ones).
func Pow2(exp int64) Num {
	if exp >= -maxDyExp && exp <= maxDyExp {
		return Num{mlo: 1, exp: int32(exp), dy: true}
	}
	f := newFloat().SetInt64(1)
	f.SetMantExp(f, int(exp))
	return Num{f: f}
}

// valid reports whether n was produced by a constructor.
func (n Num) valid() bool { return n.dy || n.f != nil }

// IsValid reports whether n was produced by a constructor (or decoded
// from JSON). Arithmetic on an invalid (zero-value) Num panics, so
// code that receives Num values from untrusted sources — decoded
// instances, optimizer results under audit — should check IsValid
// before computing with them.
func (n Num) IsValid() bool { return n.valid() }

func (n Num) check() {
	if !n.valid() {
		panic("num: use of zero-value Num; construct with Zero/FromInt64/...")
	}
}

// Float returns a copy of the underlying value as a big.Float.
func (n Num) Float() *big.Float {
	n.check()
	if n.f != nil {
		return newFloat().Set(n.f)
	}
	t := getTemps()
	f := setDy(newFloat(), t.a, t.b, n.mhi, n.mlo, int64(n.exp))
	putTemps(t)
	return f
}

// Add returns n + m.
func (n Num) Add(m Num) Num {
	n.check()
	m.check()
	if n.dy && m.dy {
		if hi, lo, e, ok := addDyRaw(n.mhi, n.mlo, int64(n.exp), m.mhi, m.mlo, int64(m.exp)); ok {
			return Num{mhi: hi, mlo: lo, exp: int32(e), dy: true}
		}
	}
	t := getTemps()
	defer putTemps(t)
	return Num{f: newFloat().Add(n.bigVal(t.a, t.c, t.d), m.bigVal(t.b, t.c, t.d))}
}

// Sub returns n − m. It panics if the result would be negative.
func (n Num) Sub(m Num) Num {
	n.check()
	m.check()
	if n.dy && m.dy {
		switch cmpDyRaw(n.mhi, n.mlo, int64(n.exp), m.mhi, m.mlo, int64(m.exp)) {
		case 0:
			return Num{dy: true}
		case -1:
			panic("num: Sub result is negative")
		}
		if m.mhi|m.mlo == 0 {
			return n
		}
		if hi, lo, e, ok := subDyRaw(n.mhi, n.mlo, int64(n.exp), m.mhi, m.mlo, int64(m.exp)); ok {
			return Num{mhi: hi, mlo: lo, exp: int32(e), dy: true}
		}
	}
	t := getTemps()
	defer putTemps(t)
	r := newFloat().Sub(n.bigVal(t.a, t.c, t.d), m.bigVal(t.b, t.c, t.d))
	if r.Sign() < 0 {
		panic("num: Sub result is negative")
	}
	return Num{f: r}
}

// Mul returns n · m.
func (n Num) Mul(m Num) Num {
	n.check()
	m.check()
	if n.dy && m.dy {
		if hi, lo, e, ok := mulDyRaw(n.mhi, n.mlo, int64(n.exp), m.mhi, m.mlo, int64(m.exp)); ok {
			return Num{mhi: hi, mlo: lo, exp: int32(e), dy: true}
		}
	}
	t := getTemps()
	defer putTemps(t)
	return Num{f: newFloat().Mul(n.bigVal(t.a, t.c, t.d), m.bigVal(t.b, t.c, t.d))}
}

// Div returns n / m. It panics if m is zero.
func (n Num) Div(m Num) Num {
	n.check()
	m.check()
	if m.dy {
		if m.mhi|m.mlo == 0 {
			panic("num: division by zero")
		}
		if n.dy {
			if n.mhi|n.mlo == 0 {
				return Num{dy: true}
			}
			if m.mhi == 0 && m.mlo == 1 {
				// Power-of-two divisor: an exact exponent shift.
				if q, ok := dyNum(n.mhi, n.mlo, int64(n.exp)-int64(m.exp)); ok {
					return q
				}
			}
		}
	} else if m.f.Sign() == 0 {
		panic("num: division by zero")
	}
	t := getTemps()
	defer putTemps(t)
	return Num{f: newFloat().Quo(n.bigVal(t.a, t.c, t.d), m.bigVal(t.b, t.c, t.d))}
}

// MulInt64 returns n · v. It panics if v is negative.
func (n Num) MulInt64(v int64) Num { return n.Mul(FromInt64(v)) }

// Pow returns n^k for k ≥ 0 by binary exponentiation. 0^0 is 1.
// The square-and-multiply chain performs the same sequence of rounded
// operations whichever representation carries the intermediates.
func (n Num) Pow(k int64) Num {
	n.check()
	if k < 0 {
		panic(fmt.Sprintf("num: Pow called with negative exponent %d", k))
	}
	result := One()
	base := n
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return result
}

// Inv returns 1/n. It panics if n is zero.
func (n Num) Inv() Num { return One().Div(n) }

// Cmp compares n and m, returning −1, 0 or +1.
func (n Num) Cmp(m Num) int {
	n.check()
	m.check()
	if n.dy && m.dy {
		return cmpDyRaw(n.mhi, n.mlo, int64(n.exp), m.mhi, m.mlo, int64(m.exp))
	}
	if n.f != nil && m.f != nil {
		return n.f.Cmp(m.f)
	}
	t := getTemps()
	defer putTemps(t)
	return n.bigVal(t.a, t.c, t.d).Cmp(m.bigVal(t.b, t.c, t.d))
}

// Less reports whether n < m.
func (n Num) Less(m Num) bool { return n.Cmp(m) < 0 }

// LessEq reports whether n ≤ m.
func (n Num) LessEq(m Num) bool { return n.Cmp(m) <= 0 }

// Equal reports whether n == m.
func (n Num) Equal(m Num) bool { return n.Cmp(m) == 0 }

// IsZero reports whether n == 0.
func (n Num) IsZero() bool {
	n.check()
	if n.dy {
		return n.mhi|n.mlo == 0
	}
	return n.f.Sign() == 0
}

// Min returns the smaller of n and m.
func (n Num) Min(m Num) Num {
	if n.Cmp(m) <= 0 {
		return n
	}
	return m
}

// Max returns the larger of n and m.
func (n Num) Max(m Num) Num {
	if n.Cmp(m) >= 0 {
		return n
	}
	return m
}

// Log2 returns log₂(n) as a float64. It panics if n is zero.
//
// The result is accurate to well below 1e-9 relative error, which is
// ample: the experiments compare log-domain magnitudes that differ by
// thousands.
func (n Num) Log2() float64 {
	n.check()
	if n.dy {
		if n.mhi|n.mlo == 0 {
			panic("num: Log2 of zero")
		}
		return log2DyRaw(n.mhi, n.mlo, int64(n.exp))
	}
	if n.f.Sign() == 0 {
		panic("num: Log2 of zero")
	}
	mant := newFloat()
	exp := n.f.MantExp(mant) // n = mant · 2^exp, mant ∈ [0.5, 1)
	m, _ := mant.Float64()
	return float64(exp) + math.Log2(m)
}

// Float64 returns the nearest float64. Values beyond float64 range
// return ±Inf in the usual big.Float manner (here always +Inf since Num
// is non-negative).
func (n Num) Float64() float64 {
	n.check()
	if n.dy {
		if n.mhi|n.mlo == 0 {
			return 0
		}
		l := bitLen128(n.mhi, n.mlo)
		if e := int64(n.exp) + int64(l); e >= -1021 && e <= 1023 {
			// Normal range: scaling the correctly rounded mantissa is exact.
			// Subnormal and overflow edges delegate to big.Float below.
			return math.Ldexp(mantFloat(n.mhi, n.mlo, l), int(e))
		}
		t := getTemps()
		defer putTemps(t)
		v, _ := n.bigVal(t.a, t.b, t.c).Float64()
		return v
	}
	v, _ := n.f.Float64()
	return v
}

// Int64 returns the value as an int64 when it is an integer in range;
// ok is false otherwise.
func (n Num) Int64() (v int64, ok bool) {
	n.check()
	if n.dy {
		if n.mhi|n.mlo == 0 {
			return 0, true
		}
		// The mantissa is odd: integers have a non-negative exponent.
		if n.exp < 0 || n.mhi != 0 || n.exp >= 64 {
			return 0, false
		}
		if n.mlo > uint64(math.MaxInt64)>>uint(n.exp) {
			return 0, false
		}
		return int64(n.mlo << uint(n.exp)), true
	}
	if !n.f.IsInt() {
		return 0, false
	}
	v, acc := n.f.Int64()
	return v, acc == big.Exact
}

// String renders n compactly: exact integers below 2^63 in decimal,
// everything else in big.Float scientific notation.
func (n Num) String() string {
	if !n.valid() {
		return "<invalid>"
	}
	if v, ok := n.Int64(); ok {
		return fmt.Sprintf("%d", v)
	}
	if n.f != nil {
		return n.f.Text('g', 10)
	}
	t := getTemps()
	defer putTemps(t)
	return n.bigVal(t.a, t.b, t.c).Text('g', 10)
}

// CanonicalAppend appends an exact, injective textual form of n to dst
// and returns the extended slice: two Nums append the same bytes if and
// only if they are numerically equal. It is the value encoding the
// canonical instance fingerprints (qon/qoh Canonicalize) fold into
// their hashes. The bytes are big.Float 'p' format — hex mantissa and
// binary exponent — and never contain a NUL byte, so callers may use
// 0x00 as a separator. Dyadic values format directly from the uint128
// mantissa (see appendDyP) — byte-identical to the big.Float rendering,
// so the bytes stay representation-independent.
func (n Num) CanonicalAppend(dst []byte) []byte {
	n.check()
	if n.f != nil {
		return n.f.Append(dst, 'p', 0)
	}
	if n.mhi|n.mlo == 0 {
		return append(dst, '0')
	}
	return appendDyP(dst, n.mhi, n.mlo, int64(n.exp))
}

// MarshalJSON encodes n as a JSON string in big.Float parseable form.
func (n Num) MarshalJSON() ([]byte, error) {
	if !n.valid() {
		return nil, fmt.Errorf("num: cannot marshal zero-value Num")
	}
	if n.f != nil {
		return []byte(`"` + n.f.Text('p', 0) + `"`), nil
	}
	buf := make([]byte, 1, 52) // "0x." + ≤32 nibbles + "p±" + ≤10 exp digits + quotes
	buf[0] = '"'
	if n.mhi|n.mlo == 0 {
		buf = append(buf, '0')
	} else {
		buf = appendDyP(buf, n.mhi, n.mlo, int64(n.exp))
	}
	return append(buf, '"'), nil
}

// UnmarshalJSON decodes a Num from the representation MarshalJSON emits
// (it also accepts plain decimal strings and bare JSON numbers). Values
// whose mantissa fits 128 bits decode into the dyadic fast-path form —
// for the common 'p'-notation and small-integer spellings without
// touching math/big at all.
func (n *Num) UnmarshalJSON(data []byte) error {
	b := data
	if len(b) >= 2 && b[0] == '"' && b[len(b)-1] == '"' {
		b = b[1 : len(b)-1]
	}
	if d, ok := parseDyadic(b); ok {
		*n = d
		return nil
	}
	s := string(b)
	f, _, err := big.ParseFloat(s, 0, Prec, big.ToNearestEven)
	if err != nil {
		return fmt.Errorf("num: parsing %q: %w", s, err)
	}
	if f.Sign() < 0 {
		return fmt.Errorf("num: negative value %q", s)
	}
	// big.ParseFloat turns over-large exponents into +Inf without an
	// error, and infinities poison later arithmetic (Inf−Inf and 0·Inf
	// panic inside math/big). Num is finite by construction; keep it
	// finite on the decode path too.
	if f.IsInf() {
		return fmt.Errorf("num: non-finite value %q", s)
	}
	if d, ok := capture(f); ok {
		*n = d
		return nil
	}
	*n = Num{f: f}
	return nil
}

// Sum returns the sum of all values, or 0 for an empty slice.
func Sum(values ...Num) Num {
	total := Zero()
	for _, v := range values {
		total = total.Add(v)
	}
	return total
}

// Prod returns the product of all values, or 1 for an empty slice.
func Prod(values ...Num) Num {
	total := One()
	for _, v := range values {
		total = total.Mul(v)
	}
	return total
}

// MulAdd returns a·b + c — the fused operation of the subset DPs' inner
// loops — rounding the product before the sum like the two-step form.
func MulAdd(a, b, c Num) Num {
	a.check()
	b.check()
	c.check()
	if a.dy && b.dy {
		if phi, plo, pe, ok := mulDyRaw(a.mhi, a.mlo, int64(a.exp), b.mhi, b.mlo, int64(b.exp)); ok {
			if c.dy {
				if hi, lo, e, ok2 := addDyRaw(phi, plo, pe, c.mhi, c.mlo, int64(c.exp)); ok2 {
					return Num{mhi: hi, mlo: lo, exp: int32(e), dy: true}
				}
			}
			// Exact product, wide sum: the big.Float product would have been
			// this same exact value, so only the addition rounds.
			t := getTemps()
			defer putTemps(t)
			f := setDy(newFloat(), t.a, t.b, phi, plo, pe)
			f.Add(f, c.bigVal(t.a, t.b, t.c))
			return Num{f: f}
		}
	}
	t := getTemps()
	defer putTemps(t)
	f := newFloat().Mul(a.bigVal(t.a, t.c, t.d), b.bigVal(t.b, t.c, t.d))
	f.Add(f, c.bigVal(t.a, t.c, t.d))
	return Num{f: f}
}
