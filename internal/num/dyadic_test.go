package num

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// asBig returns n's value carried in the big.Float representation,
// bypassing the dyadic fast path. Float() materializes exactly, so the
// value is unchanged — only the representation differs.
func asBig(n Num) Num { return Num{f: n.Float()} }

// canon renders n's exact canonical bytes.
func canon(t *testing.T, n Num) string {
	t.Helper()
	return string(n.CanonicalAppend(nil))
}

// randNum draws a value mixing the representations and magnitudes the
// serving path actually sees: narrow and wide dyadic mantissas, large
// positive and negative exponents, float64-derived workload values, and
// occasionally a non-dyadic big-backed value (a rounded quotient).
func randNum(rng *rand.Rand) Num {
	switch rng.Intn(8) {
	case 0:
		return Zero()
	case 1:
		return FromInt64(rng.Int63n(1 << 20))
	case 2:
		return FromFloat64(rng.Float64() * math.Ldexp(1, rng.Intn(60)-30))
	case 3:
		return Pow2(int64(rng.Intn(4000) - 2000))
	case 4, 5:
		// Wide dyadic mantissa: odd 1..128-bit value times 2^e.
		hi, lo := rng.Uint64(), rng.Uint64()|1
		w := rng.Intn(128) + 1
		if w <= 64 {
			hi = 0
			lo = (lo | 1<<63) >> (64 - w) // force exact width w
			lo |= 1
		} else {
			hi = (hi | 1<<63) >> (128 - w)
		}
		n, ok := dyNum(hi, lo, int64(rng.Intn(2000)-1000))
		if !ok {
			return One()
		}
		return n
	case 6:
		// Non-dyadic: 1/3-like rounded quotient, kept big by stickiness.
		return FromInt64(int64(rng.Intn(1000) + 1)).Div(FromInt64(3))
	default:
		// Sum of scattered powers of two: dyadic with gaps.
		n := Zero()
		for i := 0; i < 3; i++ {
			n = n.Add(Pow2(int64(rng.Intn(200) - 100)))
		}
		return n
	}
}

// TestDyadicDifferential drives every Num operation with random
// operands through both representations and requires byte-identical
// canonical output — the property certification and the pinned goldens
// depend on.
func TestDyadicDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 5000; iter++ {
		a, b := randNum(rng), randNum(rng)
		c := randNum(rng)
		ba, bb, bc := asBig(a), asBig(b), asBig(c)

		check := func(op string, fast, ref Num) {
			t.Helper()
			if got, want := canon(t, fast), canon(t, ref); got != want {
				t.Fatalf("iter %d %s: fast %s != big %s (a=%s b=%s)", iter, op, got, want, canon(t, a), canon(t, b))
			}
		}
		check("add", a.Add(b), ba.Add(bb))
		check("mul", a.Mul(b), ba.Mul(bb))
		check("muladd", MulAdd(a, b, c), MulAdd(ba, bb, bc))
		if a.Cmp(b) >= 0 {
			check("sub", a.Sub(b), ba.Sub(bb))
		} else {
			check("sub", b.Sub(a), bb.Sub(ba))
		}
		if !b.IsZero() {
			check("div", a.Div(b), ba.Div(bb))
		}
		check("pow", a.Pow(int64(iter%7)), ba.Pow(int64(iter%7)))

		if got, want := a.Cmp(b), ba.Cmp(bb); got != want {
			t.Fatalf("iter %d cmp: fast %d != big %d (a=%s b=%s)", iter, got, want, canon(t, a), canon(t, b))
		}
		if got, want := a.Float64(), ba.Float64(); got != want {
			t.Fatalf("iter %d float64: fast %v != big %v (a=%s)", iter, got, want, canon(t, a))
		}
		if !a.IsZero() {
			if got, want := a.Log2(), ba.Log2(); got != want {
				t.Fatalf("iter %d log2: fast %v != big %v (a=%s)", iter, got, want, canon(t, a))
			}
		}
		gv, gok := a.Int64()
		wv, wok := ba.Int64()
		if gok != wok || (gok && gv != wv) {
			// Only the ok contract and the in-range value are compared:
			// the v returned alongside ok=false is unspecified.
			t.Fatalf("iter %d int64: fast (%d,%v) != big (%d,%v)", iter, gv, gok, wv, wok)
		}
		if got, want := a.String(), ba.String(); got != want {
			t.Fatalf("iter %d string: fast %q != big %q", iter, got, want)
		}
	}
}

// TestDyadicScratchDifferential runs random op chains through a Scratch
// and through the immutable API on big-backed operands, requiring
// bit-identical results — including mid-chain Cmp, Sign and Log2.
func TestDyadicScratchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 2000; iter++ {
		s := NewScratch()
		ref := Zero()
		for step := 0; step < 12; step++ {
			n := randNum(rng)
			bn := asBig(n)
			switch rng.Intn(5) {
			case 0:
				s.Set(n)
				ref = n
			case 1:
				s.Add(n)
				ref = asBig(ref).Add(bn)
			case 2:
				s.Mul(n)
				ref = asBig(ref).Mul(bn)
			case 3:
				m := randNum(rng)
				s.MulAdd(n, m)
				ref = MulAdd(bn, asBig(m), asBig(ref))
			default:
				t2 := NewScratch()
				t2.Set(n)
				if rng.Intn(2) == 0 {
					s.AddScratch(t2)
					ref = asBig(ref).Add(bn)
				} else {
					s.MulScratch(t2)
					ref = asBig(ref).Mul(bn)
				}
				t2.Release()
			}
			if got, want := s.Cmp(ref), 0; got != want {
				t.Fatalf("iter %d step %d: scratch %s != ref %s", iter, step, canon(t, s.Num()), canon(t, ref))
			}
			if got, want := s.Sign(), boolSign(!ref.IsZero()); got != want {
				t.Fatalf("iter %d step %d sign: %d != %d", iter, step, got, want)
			}
			if !ref.IsZero() {
				if got, want := s.Log2(), ref.Log2(); got != want {
					t.Fatalf("iter %d step %d log2: %v != %v", iter, step, got, want)
				}
			}
		}
		if got, want := canon(t, s.Num()), canon(t, asBig(ref)); got != want {
			t.Fatalf("iter %d snapshot: %s != %s", iter, got, want)
		}
		s.Release()
	}
}

func boolSign(nonzero bool) int {
	if nonzero {
		return 1
	}
	return 0
}

// TestDyadicJSONRoundTrip checks that marshaling is
// representation-independent and that decoding lands on the fast path
// without changing a single byte of the re-marshaled form.
func TestDyadicJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 3000; iter++ {
		a := randNum(rng)
		fast, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := json.Marshal(asBig(a))
		if err != nil {
			t.Fatal(err)
		}
		if string(fast) != string(ref) {
			t.Fatalf("iter %d marshal: %s != %s", iter, fast, ref)
		}
		var back Num
		if err := json.Unmarshal(fast, &back); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a) {
			t.Fatalf("iter %d round trip: %s != %s", iter, canon(t, back), canon(t, a))
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(fast) {
			t.Fatalf("iter %d re-marshal: %s != %s", iter, again, fast)
		}
	}
}

// TestParseDyadicForms pins the textual spellings the fast parser must
// accept and the ones it must hand to big.ParseFloat.
func TestParseDyadicForms(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Num
	}{
		{`"0"`, Zero()},
		{`"1"`, One()},
		{`"12345"`, FromInt64(12345)},
		{`"0x.cp+2"`, FromInt64(3)},
		{`"0x.c0e4p+14"`, FromInt64(12345)},
		{`"0x.8p-52"`, Pow2(-53)},
		{`"0.5"`, Pow2(-1)},        // decimal fraction: big.ParseFloat path
		{`"1e3"`, FromInt64(1000)}, // scientific: big.ParseFloat path
		{`3`, FromInt64(3)},        // bare JSON number
	} {
		var n Num
		if err := json.Unmarshal([]byte(tc.in), &n); err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if !n.Equal(tc.want) {
			t.Fatalf("%s: got %s want %s", tc.in, n, tc.want)
		}
	}
	// The integer and 'p'-notation spellings must take the math/big-free
	// fast path itself, not merely decode correctly through the
	// fallback — this is the serve hot path's decode budget.
	for _, fast := range []struct {
		in   string
		want Num
	}{
		{"0", Zero()},
		{"12345", FromInt64(12345)},
		{"0x.cp+2", FromInt64(3)},
		{"0x.c0e4p+14", FromInt64(12345)},
		{"0x.8p-52", Pow2(-53)},
		{"0x.b9e34d41d23268p+0", FromFloat64(0.7261246)},
	} {
		n, ok := parseDyadic([]byte(fast.in))
		if !ok {
			t.Fatalf("parseDyadic(%q): fast path did not fire", fast.in)
		}
		if !n.Equal(fast.want) {
			t.Fatalf("parseDyadic(%q): got %s want %s", fast.in, n, fast.want)
		}
	}
	for _, bad := range []string{`"-1"`, `"0x.cp+2junk"`, `"NaN"`, `""`, `"1e999999999999"`} {
		var n Num
		if err := json.Unmarshal([]byte(bad), &n); err == nil {
			t.Fatalf("%s: expected error, got %s", bad, n)
		}
	}
}

// TestDyadicCapture checks that big values whose mantissa fits 128 bits
// re-enter the fast representation on decode, and that wider ones stay
// big — both producing identical values.
func TestDyadicCapture(t *testing.T) {
	// 2^200 + 1 needs a 201-bit mantissa: must stay big.
	wide := Pow2(200).Add(One())
	if wide.dy {
		t.Fatal("2^200+1 should not be dyadic")
	}
	data, err := json.Marshal(wide)
	if err != nil {
		t.Fatal(err)
	}
	var back Num
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.dy {
		t.Fatal("201-bit mantissa captured dyadically")
	}
	if !back.Equal(wide) {
		t.Fatal("wide round trip changed value")
	}

	// A big-backed value with a narrow mantissa re-captures on decode.
	narrow := asBig(FromInt64(7).Mul(Pow2(500)))
	if narrow.dy {
		t.Fatal("asBig should force the big representation")
	}
	data, err = json.Marshal(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.dy {
		t.Fatal("7·2^500 should decode dyadically")
	}
	if !back.Equal(narrow) {
		t.Fatal("narrow round trip changed value")
	}
}

// TestDyadicZeroBigFloatAllocs asserts the heart of the fast path: a
// warm Scratch computing over power-of-two values allocates no
// big.Float at all.
func TestDyadicZeroBigFloatAllocs(t *testing.T) {
	vals := make([]Num, 16)
	for i := range vals {
		vals[i] = Pow2(int64(i*3 - 8))
	}
	// Retry to ride out sync.Pool eviction by a concurrent GC.
	for attempt := 0; attempt < 3; attempt++ {
		s := NewScratch() // warm the pool slot before measuring
		s.Release()
		before := FloatAllocs()
		s = NewScratch()
		for i, v := range vals {
			s.MulAdd(v, vals[(i+5)%len(vals)])
			s.Cmp(v)
			_ = s.Sign()
		}
		if s.Sign() != 0 {
			_ = s.Log2()
		}
		got := s.Num() // dyadic snapshot: no allocation
		s.Release()
		_ = got
		if FloatAllocs() == before {
			return
		}
	}
	t.Fatal("dyadic scratch chain allocated big.Floats on all attempts")
}

// TestDyadicExtremeExponents exercises the exponent-range fallback:
// products whose exponents leave ±2^30 must transparently become big.
func TestDyadicExtremeExponents(t *testing.T) {
	huge := Pow2(maxDyExp - 1)
	sq := huge.Mul(huge)
	if sq.dy {
		t.Fatal("2^(2^31-2) cannot be dyadic")
	}
	if got := sq.Log2(); got != float64(2*(maxDyExp-1)) {
		t.Fatalf("log2 = %v", got)
	}
	tiny := Pow2(-(maxDyExp - 1))
	if !tiny.Mul(huge).Equal(One()) {
		t.Fatal("2^-k · 2^k != 1")
	}
	back := sq.Mul(asBig(tiny)).Mul(tiny)
	if !back.Equal(One().Mul(One())) || !back.Equal(One()) {
		t.Fatal("extreme exponent round trip broke")
	}
}

// TestDyadicSubPanics pins the Sub/Div/Log2 panic contracts on the fast
// path, matching the big-path messages exactly.
func TestDyadicSubPanics(t *testing.T) {
	expectPanic := func(msg string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("no panic, want %q", msg)
			}
			if s, _ := r.(string); s != msg {
				t.Fatalf("panic %v, want %q", r, msg)
			}
		}()
		fn()
	}
	expectPanic("num: Sub result is negative", func() { One().Sub(FromInt64(2)) })
	expectPanic("num: division by zero", func() { One().Div(Zero()) })
	expectPanic("num: division by zero", func() { One().Div(asBig(Zero())) })
	expectPanic("num: Log2 of zero", func() { Zero().Log2() })
}
