package num

import (
	"encoding/json"
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if got := FromInt64(42).String(); got != "42" {
		t.Errorf("FromInt64(42) = %s, want 42", got)
	}
	if !Zero().IsZero() {
		t.Error("Zero() is not zero")
	}
	if One().IsZero() {
		t.Error("One() is zero")
	}
	if got, ok := FromFloat64(2.5).Mul(FromInt64(2)).Int64(); !ok || got != 5 {
		t.Errorf("2.5*2 = %v (ok=%v), want 5", got, ok)
	}
	if got, ok := FromBigInt(big.NewInt(1 << 40)).Int64(); !ok || got != 1<<40 {
		t.Errorf("FromBigInt(2^40) = %d, want %d", got, int64(1)<<40)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"FromInt64 negative", func() { FromInt64(-1) }},
		{"FromFloat64 negative", func() { FromFloat64(-0.5) }},
		{"FromFloat64 NaN", func() { FromFloat64(math.NaN()) }},
		{"FromFloat64 Inf", func() { FromFloat64(math.Inf(1)) }},
		{"FromBigInt negative", func() { FromBigInt(big.NewInt(-3)) }},
		{"Div by zero", func() { One().Div(Zero()) }},
		{"Inv of zero", func() { Zero().Inv() }},
		{"Sub negative result", func() { One().Sub(FromInt64(2)) }},
		{"Pow negative exponent", func() { FromInt64(2).Pow(-1) }},
		{"Log2 of zero", func() { Zero().Log2() }},
		{"zero-value use", func() { var n Num; n.Add(One()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestPow2(t *testing.T) {
	if got, ok := Pow2(10).Int64(); !ok || got != 1024 {
		t.Errorf("Pow2(10) = %d, want 1024", got)
	}
	if got := Pow2(-2).Float64(); got != 0.25 {
		t.Errorf("Pow2(-2) = %v, want 0.25", got)
	}
	// Far beyond float64 range.
	huge := Pow2(1 << 20)
	if got := huge.Log2(); got != float64(1<<20) {
		t.Errorf("Log2(2^(2^20)) = %v, want %v", got, float64(1<<20))
	}
	if huge.Float64() != math.Inf(1) {
		t.Error("huge value should overflow float64 to +Inf")
	}
}

func TestArithmeticExactness(t *testing.T) {
	// α = 4^30, t = α^25: quantities of the scale the reductions build.
	alpha := FromInt64(4).Pow(30)
	tt := alpha.Pow(25)
	if got, want := tt.Log2(), float64(2*30*25); got != want {
		t.Errorf("log2(4^30^25) = %v, want %v", got, want)
	}
	// Exact division back down.
	if !tt.Div(alpha.Pow(24)).Equal(alpha) {
		t.Error("α^25 / α^24 != α")
	}
	// Addition of distinct powers of two within mantissa range is exact.
	x := Pow2(200).Add(Pow2(10))
	if !x.Sub(Pow2(10)).Equal(Pow2(200)) {
		t.Error("(2^200 + 2^10) − 2^10 != 2^200")
	}
}

func TestCmpAndMinMax(t *testing.T) {
	a, b := FromInt64(3), FromInt64(7)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if !a.Less(b) || a.Less(a) {
		t.Error("Less wrong")
	}
	if !a.LessEq(a) || b.LessEq(a) {
		t.Error("LessEq wrong")
	}
	if !a.Min(b).Equal(a) || !a.Max(b).Equal(b) {
		t.Error("Min/Max wrong")
	}
}

func TestSumProd(t *testing.T) {
	if !Sum().IsZero() {
		t.Error("empty Sum != 0")
	}
	if !Prod().Equal(One()) {
		t.Error("empty Prod != 1")
	}
	vs := []Num{FromInt64(2), FromInt64(3), FromInt64(4)}
	if got, _ := Sum(vs...).Int64(); got != 9 {
		t.Errorf("Sum = %d, want 9", got)
	}
	if got, _ := Prod(vs...).Int64(); got != 24 {
		t.Errorf("Prod = %d, want 24", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, n := range []Num{Zero(), One(), FromInt64(12345), Pow2(5000), FromFloat64(0.125)} {
		data, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("marshal %v: %v", n, err)
		}
		var back Num
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !back.Equal(n) {
			t.Errorf("round trip %v -> %s -> %v", n, data, back)
		}
	}
	var n Num
	if err := json.Unmarshal([]byte(`"-1"`), &n); err == nil {
		t.Error("unmarshal of negative value should fail")
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &n); err == nil {
		t.Error("unmarshal of garbage should fail")
	}
}

func TestImmutability(t *testing.T) {
	a := FromInt64(5)
	_ = a.Add(FromInt64(7))
	_ = a.Mul(FromInt64(7))
	_ = a.Pow(3)
	if got, _ := a.Int64(); got != 5 {
		t.Errorf("operand mutated: a = %d, want 5", got)
	}
	f := a.Float()
	f.SetInt64(99)
	if got, _ := a.Int64(); got != 5 {
		t.Error("Float() exposed internal state")
	}
}

// Property: for uint16 a, b the ring identities hold exactly.
func TestQuickRingIdentities(t *testing.T) {
	prop := func(a, b, c uint16) bool {
		na, nb, nc := FromInt64(int64(a)), FromInt64(int64(b)), FromInt64(int64(c))
		// (a+b)·c == a·c + b·c
		lhs := na.Add(nb).Mul(nc)
		rhs := na.Mul(nc).Add(nb.Mul(nc))
		if !lhs.Equal(rhs) {
			return false
		}
		// a·b == b·a, a+b == b+a
		return na.Mul(nb).Equal(nb.Mul(na)) && na.Add(nb).Equal(nb.Add(na))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pow agrees with repeated multiplication.
func TestQuickPow(t *testing.T) {
	prop := func(base uint8, exp uint8) bool {
		k := int64(exp % 32)
		b := FromInt64(int64(base))
		want := One()
		for i := int64(0); i < k; i++ {
			want = want.Mul(b)
		}
		return b.Pow(k).Equal(want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Log2 of products adds, up to float rounding.
func TestQuickLog2Homomorphism(t *testing.T) {
	prop := func(a, b uint16) bool {
		na, nb := FromInt64(int64(a)+1), FromInt64(int64(b)+1)
		got := na.Mul(nb).Log2()
		want := na.Log2() + nb.Log2()
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: JSON round-trip is the identity on powers of two.
func TestQuickJSONPow2(t *testing.T) {
	prop := func(e int16) bool {
		n := Pow2(int64(e))
		data, err := json.Marshal(n)
		if err != nil {
			return false
		}
		var back Num
		return json.Unmarshal(data, &back) == nil && back.Equal(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: MulAdd(a, b, c) == a·b + c exactly.
func TestQuickMulAdd(t *testing.T) {
	prop := func(a, b, c uint16) bool {
		na, nb, nc := FromInt64(int64(a)), FromInt64(int64(b)), FromInt64(int64(c))
		return MulAdd(na, nb, nc).Equal(na.Mul(nb).Add(nc))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
