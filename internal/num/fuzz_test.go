package num

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalJSON checks that arbitrary input never panics the
// decoder and that accepted values survive a marshal/unmarshal cycle.
func FuzzUnmarshalJSON(f *testing.F) {
	f.Add(`"42"`)
	f.Add(`"0x1p+5000"`)
	f.Add(`"1.5e300"`)
	f.Add(`"-3"`)
	f.Add(`""`)
	f.Add(`"inf"`)
	f.Add(`"0"`)
	f.Add(`12345`)
	f.Fuzz(func(t *testing.T, input string) {
		var n Num
		if err := json.Unmarshal([]byte(input), &n); err != nil {
			return
		}
		data, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("marshal of accepted value: %v", err)
		}
		var back Num
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("reparse of own output %s: %v", data, err)
		}
		if !back.Equal(n) {
			t.Fatalf("round trip changed value: %v -> %v", n, back)
		}
	})
}
