package num

import (
	"math"
	"math/rand"
	"testing"
)

func TestScratchMatchesImmutableOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := FromFloat64(rng.Float64() * 1e6).Pow(int64(1 + rng.Intn(40)))
		b := FromFloat64(rng.Float64() + 0.5)
		c := FromFloat64(rng.Float64() * 1e3)

		s := NewScratch()
		if got := s.Set(a).Mul(b).Num(); !got.Equal(a.Mul(b)) {
			t.Fatalf("Mul mismatch: %v vs %v", got, a.Mul(b))
		}
		if got := s.Set(a).Add(c).Num(); !got.Equal(a.Add(c)) {
			t.Fatalf("Add mismatch")
		}
		if got := s.Set(c).MulAdd(a, b).Num(); !got.Equal(MulAdd(a, b, c)) {
			t.Fatalf("MulAdd mismatch: %v vs %v", got, MulAdd(a, b, c))
		}
		s.Release()
	}
}

func TestScratchChainBitIdentical(t *testing.T) {
	// A long in-place chain must round exactly like the equivalent
	// immutable chain: same ops, same order, same precision.
	rng := rand.New(rand.NewSource(11))
	factors := make([]Num, 64)
	for i := range factors {
		factors[i] = FromFloat64(rng.Float64()*3 + 0.1)
	}
	im := One()
	s := NewScratch()
	defer s.Release()
	s.SetInt64(1)
	for _, f := range factors {
		im = im.Mul(f)
		s.Mul(f)
	}
	if !s.Num().Equal(im) {
		t.Fatalf("chained product diverged: %v vs %v", s.Num(), im)
	}
	if s.Log2() != im.Log2() {
		t.Fatalf("Log2 diverged: %v vs %v", s.Log2(), im.Log2())
	}
}

func TestScratchCmpAndSign(t *testing.T) {
	s := NewScratch()
	defer s.Release()
	if s.Sign() != 0 {
		t.Fatalf("fresh scratch not zero")
	}
	s.Set(FromInt64(5))
	if s.Cmp(FromInt64(7)) >= 0 || s.Cmp(FromInt64(5)) != 0 || s.Cmp(FromInt64(3)) <= 0 {
		t.Fatalf("Cmp wrong")
	}
	u := NewScratch()
	defer u.Release()
	u.Set(FromInt64(7))
	if s.CmpScratch(u) >= 0 || u.CmpScratch(s) <= 0 {
		t.Fatalf("CmpScratch wrong")
	}
	u.SetScratch(s)
	if s.CmpScratch(u) != 0 {
		t.Fatalf("SetScratch did not copy")
	}
}

func TestScratchNumSnapshotIndependent(t *testing.T) {
	s := NewScratch()
	s.Set(FromInt64(42))
	snap := s.Num()
	s.Mul(FromInt64(2)) // mutate after snapshot
	s.Release()
	if !snap.Equal(FromInt64(42)) {
		t.Fatalf("snapshot aliased scratch: %v", snap)
	}
}

func TestScratchExtremeMagnitudes(t *testing.T) {
	// α^{n²} territory: the hardness reductions' magnitudes.
	huge := Pow2(100000)
	s := NewScratch()
	defer s.Release()
	s.Set(huge).Mul(huge)
	if got, want := s.Log2(), 200000.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Log2 of 2^200000 = %v", got)
	}
	if !s.Num().Equal(huge.Mul(huge)) {
		t.Fatalf("huge product mismatch")
	}
}

func TestScratchPoolStatsMonotone(t *testing.T) {
	g0, n0 := ScratchPoolStats()
	for i := 0; i < 32; i++ {
		s := NewScratch()
		s.Release()
	}
	g1, n1 := ScratchPoolStats()
	if g1 < g0+32 {
		t.Fatalf("gets did not advance: %d -> %d", g0, g1)
	}
	if n1 < n0 {
		t.Fatalf("news went backwards")
	}
}
