package num

// The dyadic fast path. The workload generators, the hardness
// reductions and every float64-derived quantity in this repository are
// dyadic rationals — m·2^e with a small odd mantissa — for which the
// 256-bit big.Float machinery is pure overhead: each operation walks
// word slices, allocates, and rounds a value that was exact all along.
//
// A Num (and a Scratch) therefore carries its value in one of two
// representations:
//
//   - dyadic: an odd 128-bit mantissa (mhi:mlo) and an int32 exponent,
//     held inline with no heap state at all (dy == true);
//   - big: the classic *big.Float at Prec/ToNearestEven (f != nil).
//
// Every fast-path operation below fires only when its result is again
// exactly representable with a ≤128-bit mantissa. Such a result is
// exact, and an exact value of ≤128 significant bits is also exactly
// representable at Prec = 256 — so the big.Float computation would
// have produced the same value without rounding. Whenever the result
// would need more than 128 mantissa bits (or leave the exponent
// range), the operands are materialized into big.Floats and the
// operation is performed by math/big itself, which is bit-identical by
// construction. Certification, canonical fingerprints and the pinned
// goldens therefore cannot observe which representation served them.
//
// Fallback results stay big ("sticky"): re-capturing mid-computation
// would pay a MinPrec scan per operation for values that typically
// remain wide. The one deliberate re-capture point is UnmarshalJSON,
// so decoded instances enter the system dyadic whenever they can.

import (
	"math"
	"math/big"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
)

// maxDyExp bounds the dyadic exponent (|exp| ≤ 2^30), leaving int32
// headroom so exponent sums in Mul never overflow and big.Float's own
// 32-bit exponent always covers a materialized value.
const maxDyExp = 1 << 30

// floatAllocs counts every big.Float the package has ever allocated.
// The allocation-regression tests assert a zero delta across all-dyadic
// computations; ScratchPoolStats covers the pooled accumulators.
var floatAllocs atomic.Int64

// FloatAllocs reports the cumulative number of big.Float values the
// package has allocated (constructors, fallback results, pool misses).
// A computation whose FloatAllocs delta is zero ran entirely on the
// dyadic fast path.
func FloatAllocs() int64 { return floatAllocs.Load() }

// dyTemps is a pooled quad of big.Floats used to materialize dyadic
// operands on the fallback path of the immutable Num API. Scratch has
// its own inline temporaries.
type dyTemps struct{ a, b, c, d *big.Float }

var dyTempPool = sync.Pool{New: func() any {
	return &dyTemps{newFloat(), newFloat(), newFloat(), newFloat()}
}}

func getTemps() *dyTemps  { return dyTempPool.Get().(*dyTemps) }
func putTemps(t *dyTemps) { dyTempPool.Put(t) }

// setDy materializes the dyadic value (hi:lo)·2^e into dst exactly and
// returns dst, using h1 and h2 as scratch words for the two mantissa
// halves. All three must already carry Prec/ToNearestEven (every float
// here comes from newFloat) and dst must be distinct from h1 and h2:
// the Add below is deliberately non-aliased, because big.Float.Add
// allocates a temporary mantissa whenever its destination aliases an
// operand — exactly the per-op garbage this fast path exists to avoid.
// A 128-bit integer is exact at Prec = 256 and the exponent shift is
// exact, so no rounding occurs.
func setDy(dst, h1, h2 *big.Float, hi, lo uint64, e int64) *big.Float {
	if hi == 0 {
		dst.SetUint64(lo)
	} else {
		h1.SetUint64(hi)
		h1.SetMantExp(h1, 64)
		h2.SetUint64(lo)
		dst.Add(h1, h2)
	}
	if e != 0 && hi|lo != 0 {
		dst.SetMantExp(dst, int(e))
	}
	return dst
}

// bigVal returns n as a *big.Float: the backing float of a big-backed
// Num, or the dyadic value materialized into dst (h1, h2 as scratch).
func (n Num) bigVal(dst, h1, h2 *big.Float) *big.Float {
	if n.f != nil {
		return n.f
	}
	return setDy(dst, h1, h2, n.mhi, n.mlo, int64(n.exp))
}

// capture re-represents f dyadically when that loses nothing: f needs
// at most 128 mantissa bits and its exponent is in range. Used on the
// decode path only — it allocates big.Int scratch.
func capture(f *big.Float) (Num, bool) {
	if f.Sign() == 0 {
		return Num{dy: true}, true
	}
	if f.Sign() < 0 || f.IsInf() {
		return Num{}, false
	}
	mp := f.MinPrec()
	if mp > 128 {
		return Num{}, false
	}
	var m big.Float
	e := int64(f.MantExp(&m)) - int64(mp)
	if e < -maxDyExp || e > maxDyExp {
		return Num{}, false
	}
	// m ∈ [0.5, 1); m·2^mp is the odd integer mantissa (odd because
	// MinPrec is minimal — a trailing zero bit would shrink it).
	m.SetMantExp(&m, int(mp))
	i, _ := m.Int(nil)
	hi, lo := wordsTo128(i.Bits())
	return Num{mhi: hi, mlo: lo, exp: int32(e), dy: true}, true
}

// wordsTo128 assembles a ≤128-bit big.Int word slice (little-endian,
// as returned by Bits) into a uint128. The caller guarantees the value
// fits.
func wordsTo128(words []big.Word) (hi, lo uint64) {
	if bits.UintSize == 64 {
		if len(words) > 0 {
			lo = uint64(words[0])
		}
		if len(words) > 1 {
			hi = uint64(words[1])
		}
		return hi, lo
	}
	// 32-bit words: fold from the top, one 32-bit shift at a time.
	for idx := len(words) - 1; idx >= 0; idx-- {
		hi = hi<<32 | lo>>32
		lo = lo<<32 | uint64(words[idx])
	}
	return hi, lo
}

// bitLen128 is the bit length of the 128-bit value (hi:lo).
func bitLen128(hi, lo uint64) int {
	if hi != 0 {
		return 64 + bits.Len64(hi)
	}
	return bits.Len64(lo)
}

// shl128 shifts (hi:lo) left by s < 128 bits; the caller guarantees no
// overflow (bitLen128 + s ≤ 128).
func shl128(hi, lo uint64, s uint) (uint64, uint64) {
	if s >= 64 {
		return lo << (s - 64), 0
	}
	return hi<<s | lo>>(64-s), lo << s
}

// normDy strips trailing zero bits (the canonical dyadic mantissa is
// odd) and range-checks the exponent.
func normDy(hi, lo uint64, e int64) (uint64, uint64, int64, bool) {
	if hi|lo == 0 {
		return 0, 0, 0, true
	}
	var tz int
	if lo != 0 {
		tz = bits.TrailingZeros64(lo)
	} else {
		tz = 64 + bits.TrailingZeros64(hi)
	}
	if tz >= 64 {
		lo, hi = hi>>(tz-64), 0
	} else if tz > 0 {
		lo = lo>>uint(tz) | hi<<(64-uint(tz))
		hi >>= uint(tz)
	}
	e += int64(tz)
	if e < -maxDyExp || e > maxDyExp {
		return 0, 0, 0, false
	}
	return hi, lo, e, true
}

// dyNum wraps normDy into a Num.
func dyNum(hi, lo uint64, e int64) (Num, bool) {
	h, l, e2, ok := normDy(hi, lo, e)
	if !ok {
		return Num{}, false
	}
	return Num{mhi: h, mlo: l, exp: int32(e2), dy: true}, true
}

// addDyRaw computes (ahi:alo)·2^ae + (bhi:blo)·2^be when the sum again
// fits a 128-bit mantissa. Addition of positives never cancels, so the
// result's width is predictable up front and the arithmetic stays in
// two words.
func addDyRaw(ahi, alo uint64, ae int64, bhi, blo uint64, be int64) (hi, lo uint64, e int64, ok bool) {
	if ahi|alo == 0 {
		return bhi, blo, be, true
	}
	if bhi|blo == 0 {
		return ahi, alo, ae, true
	}
	if ae < be {
		ahi, alo, ae, bhi, blo, be = bhi, blo, be, ahi, alo, ae
	}
	d := ae - be
	if d > 0 && d+int64(bitLen128(ahi, alo)) > 128 {
		// The aligned sum spans more than 128 bits and its low bit is set
		// (b's mantissa is odd below a's lowest bit) — not representable.
		return 0, 0, 0, false
	}
	ahi, alo = shl128(ahi, alo, uint(d))
	var c uint64
	lo, c = bits.Add64(alo, blo, 0)
	hi, c = bits.Add64(ahi, bhi, c)
	if c != 0 {
		if lo&1 != 0 {
			return 0, 0, 0, false // odd 129-bit sum: needs 129 mantissa bits
		}
		lo = lo>>1 | hi<<63
		hi = hi>>1 | 1<<63
		be++
	}
	return normDy(hi, lo, be)
}

// mulDyRaw computes the product when it fits a 128-bit mantissa. Odd ×
// odd is odd, so the product either fits exactly or needs every one of
// its > 128 bits — there is nothing to renormalize.
func mulDyRaw(ahi, alo uint64, ae int64, bhi, blo uint64, be int64) (hi, lo uint64, e int64, ok bool) {
	if ahi|alo == 0 || bhi|blo == 0 {
		return 0, 0, 0, true
	}
	e = ae + be
	switch {
	case ahi == 0 && bhi == 0:
		hi, lo = bits.Mul64(alo, blo)
	case ahi != 0 && bhi != 0:
		return 0, 0, 0, false // both mantissas ≥ 2^64: product exceeds 128 bits
	default:
		if ahi == 0 {
			ahi, alo, blo = bhi, blo, alo
		}
		c1hi, c0 := bits.Mul64(alo, blo)
		c2, c1lo := bits.Mul64(ahi, blo)
		mid, carry := bits.Add64(c1hi, c1lo, 0)
		if c2+carry != 0 {
			return 0, 0, 0, false
		}
		hi, lo = mid, c0
	}
	return normDy(hi, lo, e)
}

// shl256 widens (hi:lo) << s into four little-endian words. The caller
// guarantees bitLen128 + s ≤ 256.
func shl256(hi, lo uint64, s uint) [4]uint64 {
	var w [4]uint64
	ws, bs := int(s/64), s%64
	var parts [3]uint64
	if bs == 0 {
		parts = [3]uint64{lo, hi, 0}
	} else {
		parts = [3]uint64{lo << bs, hi<<bs | lo>>(64-bs), hi >> (64 - bs)}
	}
	for i, p := range parts {
		if ws+i < 4 {
			w[ws+i] = p
		}
	}
	return w
}

// fit256 renormalizes a 256-bit value at scale 2^e back into the
// 128-bit dyadic form, failing when the odd mantissa is too wide.
func fit256(w [4]uint64, e int64) (uint64, uint64, int64, bool) {
	if w[0]|w[1]|w[2]|w[3] == 0 {
		return 0, 0, 0, true
	}
	tz := 0
	i := 0
	for w[i] == 0 {
		i++
		tz += 64
	}
	tz += bits.TrailingZeros64(w[i])
	ws, bs := tz/64, uint(tz%64)
	var r [4]uint64
	for j := 0; j < 4; j++ {
		k := j + ws
		if k < 4 {
			r[j] = w[k] >> bs
			if bs != 0 && k+1 < 4 {
				r[j] |= w[k+1] << (64 - bs)
			}
		}
	}
	if r[2]|r[3] != 0 {
		return 0, 0, 0, false
	}
	return normDy(r[1], r[0], e+int64(tz))
}

// subDyRaw computes a − b for a > b > 0 when the difference fits.
// Cancellation can shrink the result, so the aligned subtraction runs
// over 256 bits before the fit check.
func subDyRaw(ahi, alo uint64, ae int64, bhi, blo uint64, be int64) (hi, lo uint64, e int64, ok bool) {
	if ae >= be {
		d := ae - be
		if d+int64(bitLen128(ahi, alo)) > 256 {
			return 0, 0, 0, false // low bits of b survive below a's span: > 128 bits
		}
		a := shl256(ahi, alo, uint(d))
		var borrow uint64
		a[0], borrow = bits.Sub64(a[0], blo, 0)
		a[1], borrow = bits.Sub64(a[1], bhi, borrow)
		a[2], borrow = bits.Sub64(a[2], 0, borrow)
		a[3], _ = bits.Sub64(a[3], 0, borrow)
		return fit256(a, be)
	}
	// a > b with a's exponent smaller: b shifts into a's scale and, because
	// a's top bit is at or above b's, the shifted b still fits 128 bits.
	d := be - ae
	if d+int64(bitLen128(bhi, blo)) > 128 {
		return 0, 0, 0, false
	}
	bhi, blo = shl128(bhi, blo, uint(d))
	var borrow uint64
	lo, borrow = bits.Sub64(alo, blo, 0)
	hi, borrow = bits.Sub64(ahi, bhi, borrow)
	if borrow != 0 {
		return 0, 0, 0, false
	}
	return normDy(hi, lo, ae)
}

// cmpDyRaw compares two dyadic values by top-bit position, then by
// msb-aligned mantissas.
func cmpDyRaw(ahi, alo uint64, ae int64, bhi, blo uint64, be int64) int {
	za, zb := ahi|alo == 0, bhi|blo == 0
	switch {
	case za && zb:
		return 0
	case za:
		return -1
	case zb:
		return 1
	}
	la, lb := bitLen128(ahi, alo), bitLen128(bhi, blo)
	ta, tb := ae+int64(la), be+int64(lb)
	if ta != tb {
		if ta < tb {
			return -1
		}
		return 1
	}
	xhi, xlo := shl128(ahi, alo, uint(128-la))
	yhi, ylo := shl128(bhi, blo, uint(128-lb))
	switch {
	case xhi != yhi:
		if xhi < yhi {
			return -1
		}
		return 1
	case xlo != ylo:
		if xlo < ylo {
			return -1
		}
		return 1
	}
	return 0
}

// mantFloat converts the l-bit mantissa (hi:lo) into the correctly
// rounded float64 of its normalized form in [0.5, 1). For mantissas
// wider than 64 bits the dropped low bits collapse into a sticky bit
// below the 53-bit rounding boundary, so the uint64→float64 conversion
// rounds exactly as big.Float's Float64 would — this is what keeps the
// fast Log2/Float64 bit-identical to the MantExp path.
func mantFloat(hi, lo uint64, l int) float64 {
	if l <= 64 {
		return math.Ldexp(float64(lo), -l)
	}
	s := uint(l - 64)
	var top, dropped uint64
	if s == 64 {
		top, dropped = hi, lo
	} else {
		top = hi<<(64-s) | lo>>s
		dropped = lo << (64 - s)
	}
	if dropped != 0 {
		top |= 1
	}
	return math.Ldexp(float64(top), -64)
}

// log2DyRaw is Num.Log2 for a nonzero dyadic value: bit-identical to
// float64(exp) + math.Log2(mant.Float64()) on the materialized value.
func log2DyRaw(hi, lo uint64, e int64) float64 {
	l := bitLen128(hi, lo)
	return float64(e+int64(l)) + math.Log2(mantFloat(hi, lo, l))
}

// appendDyP appends the big.Float 'p'-format rendering of the nonzero
// dyadic value m·2^e — "0x.<hex mantissa>p<±exp>" — to dst,
// byte-identical to materializing and calling Append(dst, 'p', 0) but
// without touching math/big: the mantissa is left-shifted to a nibble
// boundary (so the leading hex digit is ≥ 8, matching big.Float's
// normalized 0.5 ≤ 0x.d… < 1 form) and the printed binary exponent is
// e plus the mantissa bit length. The mantissa being odd guarantees the
// lowest nibble is nonzero, so big.Float's trailing-zero trimming never
// applies.
func appendDyP(dst []byte, hi, lo uint64, e int64) []byte {
	const hex = "0123456789abcdef"
	l := bitLen128(hi, lo)
	pad := uint(-l) & 3
	hi, lo = shl128(hi, lo, pad)
	dst = append(dst, '0', 'x', '.')
	for k := (l+int(pad))/4 - 1; k >= 0; k-- {
		var d uint64
		if k >= 16 {
			d = hi >> uint((k-16)*4)
		} else {
			d = lo >> uint(k*4)
		}
		dst = append(dst, hex[d&0xf])
	}
	dst = append(dst, 'p')
	pe := e + int64(l)
	if pe >= 0 {
		dst = append(dst, '+')
	}
	return strconv.AppendInt(dst, pe, 10)
}

// parseDyadic parses the two textual forms MarshalJSON emits — bare
// decimal integers and big.Float 'p' notation ("0x.c0e4p+14") —
// straight into dyadic form without touching math/big. Anything else
// (decimal fractions, huge mantissas, unusual spellings) reports false
// and takes the big.ParseFloat path.
func parseDyadic(b []byte) (Num, bool) {
	if len(b) == 0 {
		return Num{}, false
	}
	if len(b) == 1 && b[0] == '0' {
		return Num{dy: true}, true
	}
	// The 'p'-notation check must precede the decimal branch: hex forms
	// start with '0' too.
	if len(b) >= 2 && b[0] == '0' && b[1] == 'x' {
		if len(b) < 7 || b[2] != '.' {
			return Num{}, false
		}
		return parseDyadicHex(b)
	}
	if b[0] >= '0' && b[0] <= '9' {
		if len(b) > 19 {
			return Num{}, false // may exceed uint64: let big.ParseFloat decide
		}
		var v uint64
		for _, c := range b {
			if c < '0' || c > '9' {
				return Num{}, false
			}
			v = v*10 + uint64(c-'0')
		}
		n, _ := dyNum(0, v, 0)
		return n, true
	}
	return Num{}, false
}

// parseDyadicHex parses big.Float 'p' notation ("0x.c0e4p+14", already
// prefix-checked) into dyadic form.
func parseDyadicHex(b []byte) (Num, bool) {
	i := 3
	var hi, lo uint64
	digits := 0
	for i < len(b) && b[i] != 'p' {
		var d uint64
		switch c := b[i]; {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return Num{}, false
		}
		if digits == 32 {
			return Num{}, false // mantissa beyond 128 bits
		}
		hi = hi<<4 | lo>>60
		lo = lo<<4 | d
		digits++
		i++
	}
	if digits == 0 || i >= len(b)-1 || b[i] != 'p' {
		return Num{}, false
	}
	i++
	neg := false
	switch b[i] {
	case '+':
	case '-':
		neg = true
	default:
		return Num{}, false
	}
	i++
	if i == len(b) || len(b)-i > 9 {
		return Num{}, false
	}
	var ev int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return Num{}, false
		}
		ev = ev*10 + int64(c-'0')
	}
	if neg {
		ev = -ev
	}
	if hi|lo == 0 {
		return Num{}, false // "0x.0…": big never emits it, don't guess
	}
	return dyNum(hi, lo, ev-int64(digits)*4)
}
