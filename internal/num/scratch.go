package num

import (
	"math"
	"math/big"
	"sync"
	"sync/atomic"
)

// Scratch is a mutable accumulator over the same arithmetic as Num. It
// exists for one reason: the subset DPs and cost evaluators perform
// Θ(2ⁿ·n²) multiply-adds, and the immutable Num API allocates a fresh
// value per operation. A Scratch performs the identical sequence of
// operations in place, so hot loops run allocation-free while producing
// bit-identical values (same precision, same rounding mode, same
// operand order).
//
// Like Num, a Scratch carries its value dyadically (odd uint128
// mantissa × 2^int32) while every result stays exactly representable,
// and spills into its big.Float only when an operation outgrows the
// form — see dyadic.go for why the two representations are
// indistinguishable to callers. On the all-dyadic workloads the
// generators emit, a warm Scratch touches no big.Float at all.
//
// Discipline — scratches are pooled and MUST NOT escape:
//
//   - Obtain with NewScratch, free with Release. Between the two the
//     scratch is owned exclusively by the caller; it is not safe for
//     concurrent use (give each goroutine its own).
//   - Never retain a Scratch, or anything aliasing its internals, past
//     Release. To publish a value, snapshot it with Num() — that copy
//     is immutable and safe forever.
//   - Release at most once. The usual shape is
//     `s := num.NewScratch(); defer s.Release()`.
//
// The pool's hit rate is observable via ScratchPoolStats, which the
// engine exports as gauges.
type Scratch struct {
	f        *big.Float // big representation; authoritative when !dy
	tmp      *big.Float // transient help word and MulAdd intermediary
	t2, t3   *big.Float // operand materialization destinations
	t4       *big.Float // second setDy help word (see setDy on aliasing)
	mhi, mlo uint64     // dyadic odd mantissa, authoritative when dy
	exp      int32
	dy       bool
}

var (
	scratchGets atomic.Int64 // NewScratch calls (pool Gets)
	scratchNews atomic.Int64 // pool misses that allocated a fresh Scratch
)

var scratchPool = sync.Pool{New: func() any {
	scratchNews.Add(1)
	return &Scratch{f: newFloat(), tmp: newFloat(), t2: newFloat(), t3: newFloat(), t4: newFloat()}
}}

// NewScratch returns a pooled scratch accumulator initialized to 0.
func NewScratch() *Scratch {
	scratchGets.Add(1)
	s := scratchPool.Get().(*Scratch)
	s.mhi, s.mlo, s.exp, s.dy = 0, 0, 0, true
	return s
}

// Release returns s to the pool. s must not be used afterwards.
func (s *Scratch) Release() { scratchPool.Put(s) }

// ScratchPoolStats reports cumulative pool traffic: gets is the number
// of NewScratch calls, news the subset that had to allocate because the
// pool was empty. hit rate = (gets − news) / gets.
func ScratchPoolStats() (gets, news int64) {
	return scratchGets.Load(), scratchNews.Load()
}

// spill moves a dyadic value into s.f, making the big representation
// authoritative. The move is exact (≤128 mantissa bits at Prec = 256),
// so the subsequent big.Float operations see the same value the dyadic
// form carried. s.tmp and s.t4 are clobbered.
func (s *Scratch) spill() {
	if s.dy {
		setDy(s.f, s.tmp, s.t4, s.mhi, s.mlo, int64(s.exp))
		s.dy = false
	}
}

// val returns the current value as a *big.Float without changing which
// representation is authoritative: s.f directly, or the dyadic value
// materialized into dst. s.tmp and s.t4 are clobbered.
func (s *Scratch) val(dst *big.Float) *big.Float {
	if !s.dy {
		return s.f
	}
	return setDy(dst, s.tmp, s.t4, s.mhi, s.mlo, int64(s.exp))
}

// setDyVal installs a dyadic result.
func (s *Scratch) setDyVal(hi, lo uint64, e int64) *Scratch {
	s.mhi, s.mlo, s.exp, s.dy = hi, lo, int32(e), true
	return s
}

// Set sets s to n.
func (s *Scratch) Set(n Num) *Scratch {
	n.check()
	if n.dy {
		return s.setDyVal(n.mhi, n.mlo, int64(n.exp))
	}
	s.f.Set(n.f)
	s.dy = false
	return s
}

// SetScratch sets s to the current value of t.
func (s *Scratch) SetScratch(t *Scratch) *Scratch {
	if t.dy {
		return s.setDyVal(t.mhi, t.mlo, int64(t.exp))
	}
	s.f.Set(t.f)
	s.dy = false
	return s
}

// SetInt64 sets s to v. It panics if v is negative.
func (s *Scratch) SetInt64(v int64) *Scratch {
	if v < 0 {
		panic("num: Scratch.SetInt64 called with negative value")
	}
	hi, lo, e, _ := normDy(0, uint64(v), 0)
	return s.setDyVal(hi, lo, e)
}

// Add sets s to s + n.
func (s *Scratch) Add(n Num) *Scratch {
	n.check()
	if s.dy && n.dy {
		if hi, lo, e, ok := addDyRaw(s.mhi, s.mlo, int64(s.exp), n.mhi, n.mlo, int64(n.exp)); ok {
			return s.setDyVal(hi, lo, e)
		}
	}
	s.spill()
	s.f.Add(s.f, n.bigVal(s.t2, s.tmp, s.t4))
	return s
}

// AddScratch sets s to s + t.
func (s *Scratch) AddScratch(t *Scratch) *Scratch {
	if s.dy && t.dy {
		if hi, lo, e, ok := addDyRaw(s.mhi, s.mlo, int64(s.exp), t.mhi, t.mlo, int64(t.exp)); ok {
			return s.setDyVal(hi, lo, e)
		}
	}
	s.spill()
	s.f.Add(s.f, t.val(s.t2))
	return s
}

// Mul sets s to s · n.
func (s *Scratch) Mul(n Num) *Scratch {
	n.check()
	if s.dy && n.dy {
		if hi, lo, e, ok := mulDyRaw(s.mhi, s.mlo, int64(s.exp), n.mhi, n.mlo, int64(n.exp)); ok {
			return s.setDyVal(hi, lo, e)
		}
	}
	s.spill()
	s.f.Mul(s.f, n.bigVal(s.t2, s.tmp, s.t4))
	return s
}

// MulScratch sets s to s · t.
func (s *Scratch) MulScratch(t *Scratch) *Scratch {
	if s.dy && t.dy {
		if hi, lo, e, ok := mulDyRaw(s.mhi, s.mlo, int64(s.exp), t.mhi, t.mlo, int64(t.exp)); ok {
			return s.setDyVal(hi, lo, e)
		}
	}
	s.spill()
	s.f.Mul(s.f, t.val(s.t2))
	return s
}

// MulAdd sets s to s + a·b, rounding the product before the sum exactly
// like the immutable num.MulAdd, so DP candidates computed either way
// are bit-identical.
func (s *Scratch) MulAdd(a, b Num) *Scratch {
	a.check()
	b.check()
	if a.dy && b.dy {
		if phi, plo, pe, ok := mulDyRaw(a.mhi, a.mlo, int64(a.exp), b.mhi, b.mlo, int64(b.exp)); ok {
			if s.dy {
				if hi, lo, e, ok2 := addDyRaw(s.mhi, s.mlo, int64(s.exp), phi, plo, pe); ok2 {
					return s.setDyVal(hi, lo, e)
				}
			}
			// Exact product, wide sum: big.Float would have formed the same
			// exact product, so only the addition rounds.
			s.spill()
			setDy(s.tmp, s.t2, s.t4, phi, plo, pe)
			s.f.Add(s.f, s.tmp)
			return s
		}
	}
	s.spill()
	av := a.bigVal(s.t2, s.tmp, s.t4)
	bv := b.bigVal(s.t3, s.tmp, s.t4)
	s.tmp.Mul(av, bv)
	s.f.Add(s.f, s.tmp)
	return s
}

// Cmp compares s against n, returning −1, 0 or +1.
func (s *Scratch) Cmp(n Num) int {
	n.check()
	if s.dy && n.dy {
		return cmpDyRaw(s.mhi, s.mlo, int64(s.exp), n.mhi, n.mlo, int64(n.exp))
	}
	sv := s.val(s.t2)
	return sv.Cmp(n.bigVal(s.t3, s.tmp, s.t4))
}

// CmpScratch compares s against t, returning −1, 0 or +1.
func (s *Scratch) CmpScratch(t *Scratch) int {
	if s.dy && t.dy {
		return cmpDyRaw(s.mhi, s.mlo, int64(s.exp), t.mhi, t.mlo, int64(t.exp))
	}
	sv := s.val(s.t2)
	return sv.Cmp(t.val(s.t3))
}

// Sign returns 0 when s is zero and +1 otherwise (scratches are
// non-negative like Num).
func (s *Scratch) Sign() int {
	if s.dy {
		if s.mhi|s.mlo == 0 {
			return 0
		}
		return 1
	}
	return s.f.Sign()
}

// Num snapshots the current value as an immutable Num. The snapshot
// does not alias the scratch and survives Release; dyadic snapshots
// allocate nothing.
func (s *Scratch) Num() Num {
	if s.dy {
		return Num{mhi: s.mhi, mlo: s.mlo, exp: s.exp, dy: true}
	}
	return Num{f: newFloat().Set(s.f)}
}

// Log2 returns log₂ of the current value without allocating. It panics
// on zero, like Num.Log2.
func (s *Scratch) Log2() float64 {
	if s.dy {
		if s.mhi|s.mlo == 0 {
			panic("num: Log2 of zero")
		}
		return log2DyRaw(s.mhi, s.mlo, int64(s.exp))
	}
	if s.f.Sign() == 0 {
		panic("num: Log2 of zero")
	}
	exp := s.f.MantExp(s.tmp) // s = tmp · 2^exp, tmp ∈ [0.5, 1)
	m, _ := s.tmp.Float64()
	return float64(exp) + math.Log2(m)
}
