package num

import (
	"math"
	"math/big"
	"sync"
	"sync/atomic"
)

// Scratch is a mutable accumulator over the same 256-bit big.Float
// arithmetic as Num. It exists for one reason: the subset DPs and cost
// evaluators perform Θ(2ⁿ·n²) multiply-adds, and the immutable Num API
// allocates a fresh big.Float per operation. A Scratch performs the
// identical sequence of rounded operations in place, so hot loops run
// allocation-free while producing bit-identical values (same precision,
// same rounding mode, same operand order).
//
// Discipline — scratches are pooled and MUST NOT escape:
//
//   - Obtain with NewScratch, free with Release. Between the two the
//     scratch is owned exclusively by the caller; it is not safe for
//     concurrent use (give each goroutine its own).
//   - Never retain a Scratch, or anything aliasing its internals, past
//     Release. To publish a value, snapshot it with Num() — that copy
//     is immutable and safe forever.
//   - Release at most once. The usual shape is
//     `s := num.NewScratch(); defer s.Release()`.
//
// The pool's hit rate is observable via ScratchPoolStats, which the
// engine exports as gauges.
type Scratch struct {
	f   *big.Float
	tmp *big.Float // MulAdd intermediary, never visible to callers
}

var (
	scratchGets atomic.Int64 // NewScratch calls (pool Gets)
	scratchNews atomic.Int64 // pool misses that allocated a fresh Scratch
)

var scratchPool = sync.Pool{New: func() any {
	scratchNews.Add(1)
	return &Scratch{f: newFloat(), tmp: newFloat()}
}}

// NewScratch returns a pooled scratch accumulator initialized to 0.
func NewScratch() *Scratch {
	scratchGets.Add(1)
	s := scratchPool.Get().(*Scratch)
	s.f.SetInt64(0)
	return s
}

// Release returns s to the pool. s must not be used afterwards.
func (s *Scratch) Release() { scratchPool.Put(s) }

// ScratchPoolStats reports cumulative pool traffic: gets is the number
// of NewScratch calls, news the subset that had to allocate because the
// pool was empty. hit rate = (gets − news) / gets.
func ScratchPoolStats() (gets, news int64) {
	return scratchGets.Load(), scratchNews.Load()
}

// Set sets s to n.
func (s *Scratch) Set(n Num) *Scratch {
	n.check()
	s.f.Set(n.f)
	return s
}

// SetScratch sets s to the current value of t.
func (s *Scratch) SetScratch(t *Scratch) *Scratch {
	s.f.Set(t.f)
	return s
}

// SetInt64 sets s to v. It panics if v is negative.
func (s *Scratch) SetInt64(v int64) *Scratch {
	if v < 0 {
		panic("num: Scratch.SetInt64 called with negative value")
	}
	s.f.SetInt64(v)
	return s
}

// Add sets s to s + n.
func (s *Scratch) Add(n Num) *Scratch {
	n.check()
	s.f.Add(s.f, n.f)
	return s
}

// AddScratch sets s to s + t.
func (s *Scratch) AddScratch(t *Scratch) *Scratch {
	s.f.Add(s.f, t.f)
	return s
}

// Mul sets s to s · n.
func (s *Scratch) Mul(n Num) *Scratch {
	n.check()
	s.f.Mul(s.f, n.f)
	return s
}

// MulScratch sets s to s · t.
func (s *Scratch) MulScratch(t *Scratch) *Scratch {
	s.f.Mul(s.f, t.f)
	return s
}

// MulAdd sets s to s + a·b, rounding the product before the sum exactly
// like the immutable num.MulAdd, so DP candidates computed either way
// are bit-identical.
func (s *Scratch) MulAdd(a, b Num) *Scratch {
	a.check()
	b.check()
	s.tmp.Mul(a.f, b.f)
	s.f.Add(s.f, s.tmp)
	return s
}

// Cmp compares s against n, returning −1, 0 or +1.
func (s *Scratch) Cmp(n Num) int {
	n.check()
	return s.f.Cmp(n.f)
}

// CmpScratch compares s against t, returning −1, 0 or +1.
func (s *Scratch) CmpScratch(t *Scratch) int { return s.f.Cmp(t.f) }

// Sign returns 0 when s is zero and +1 otherwise (scratches are
// non-negative like Num).
func (s *Scratch) Sign() int { return s.f.Sign() }

// Num snapshots the current value as an immutable Num. The snapshot
// does not alias the scratch and survives Release.
func (s *Scratch) Num() Num { return Num{newFloat().Set(s.f)} }

// Log2 returns log₂ of the current value without allocating. It panics
// on zero, like Num.Log2.
func (s *Scratch) Log2() float64 {
	if s.f.Sign() == 0 {
		panic("num: Log2 of zero")
	}
	exp := s.f.MantExp(s.tmp) // s = tmp · 2^exp, tmp ∈ [0.5, 1)
	m, _ := s.tmp.Float64()
	return float64(exp) + math.Log2(m)
}
