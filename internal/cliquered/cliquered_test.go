package cliquered

import (
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/sat"
)

// smallFormulas yields a deterministic mix of satisfiable and
// unsatisfiable 3-CNF formulas small enough for exact clique search on
// the constructed graphs.
func smallFormulas() []*sat.Formula {
	var fs []*sat.Formula
	// Hand-built satisfiable.
	f1 := sat.New(3)
	f1.AddClause(1, 2, 3)
	f1.AddClause(-1, 2)
	fs = append(fs, f1)
	// Hand-built unsatisfiable: (x1)(¬x1).
	f2 := sat.New(2)
	f2.AddClause(1)
	f2.AddClause(-1)
	f2.AddClause(2)
	fs = append(fs, f2)
	// Random small ones.
	for seed := int64(0); seed < 4; seed++ {
		fs = append(fs, sat.Random3SAT(3, 5, seed))
	}
	return fs
}

func TestLemma3Correctness(t *testing.T) {
	for i, f := range smallFormulas() {
		inst, err := Lemma3(f)
		if err != nil {
			t.Fatalf("formula %d: %v", i, err)
		}
		v, m := f.NumVars, f.NumClauses()
		if inst.G.N() != 6*v+6*m {
			t.Fatalf("formula %d: n = %d, want %d", i, inst.G.N(), 6*v+6*m)
		}
		omega := inst.G.CliqueNumber()
		if sat.Satisfiable(f) {
			if omega != inst.CliqueIfSat {
				t.Errorf("formula %d (SAT): ω = %d, want %d", i, omega, inst.CliqueIfSat)
			}
		} else {
			if omega > inst.CliqueIfUnsatMax {
				t.Errorf("formula %d (UNSAT): ω = %d, want ≤ %d", i, omega, inst.CliqueIfUnsatMax)
			}
			// Quantitative form: ω = 5v+4m − (clauses that must fail).
			best, _ := sat.MaxSat(f)
			want := 5*v + 4*m - (m - best)
			if omega != want {
				t.Errorf("formula %d (UNSAT): ω = %d, want %d", i, omega, want)
			}
		}
		if inst.C <= 0.5 {
			t.Errorf("formula %d: c = %v, want > 1/2 (paper Lemma 3 claim)", i, inst.C)
		}
	}
}

func TestLemma4Correctness(t *testing.T) {
	for i, f := range smallFormulas() {
		inst, err := Lemma4(f)
		if err != nil {
			t.Fatalf("formula %d: %v", i, err)
		}
		n := inst.G.N()
		if n%3 != 0 {
			t.Fatalf("formula %d: n = %d not divisible by 3", i, n)
		}
		if inst.CliqueIfSat != 2*n/3 || !inst.TwoThirds {
			t.Fatalf("formula %d: CliqueIfSat = %d, want 2n/3 = %d", i, inst.CliqueIfSat, 2*n/3)
		}
		omega := inst.G.CliqueNumber()
		if sat.Satisfiable(f) {
			if omega != 2*n/3 {
				t.Errorf("formula %d (SAT): ω = %d, want %d", i, omega, 2*n/3)
			}
		} else if omega >= 2*n/3 {
			t.Errorf("formula %d (UNSAT): ω = %d, want < %d", i, omega, 2*n/3)
		}
	}
}

func TestLemma3MinDegreeDense(t *testing.T) {
	// 3SAT(13)-style bounded occurrences keep the constructed graph
	// dense: min degree ≥ n − 15 for 13-bounded source formulas.
	f := sat.Bound13(sat.Random3SAT(4, 20, 2))
	inst, err := Lemma3(f)
	if err != nil {
		t.Fatal(err)
	}
	n := inst.G.N()
	if md := inst.G.MinDegree(); md < n-15 {
		t.Errorf("min degree = %d, want ≥ n−15 = %d", md, n-15)
	}
}

func TestCertifiedCliqueGraph(t *testing.T) {
	for _, tc := range []struct{ n, omega int }{{6, 2}, {9, 3}, {10, 7}, {12, 12}} {
		c := CertifiedCliqueGraph(tc.n, tc.omega)
		if got := c.G.CliqueNumber(); got != tc.omega {
			t.Errorf("CertifiedCliqueGraph(%d, %d): ω = %d", tc.n, tc.omega, got)
		}
		if c.Omega != tc.omega {
			t.Errorf("recorded Omega = %d, want %d", c.Omega, tc.omega)
		}
	}
}

func TestYesNoPair(t *testing.T) {
	yes, no := YesNoPair(12, 0.75, 0.25)
	if yes.Omega != 9 || no.Omega != 6 {
		t.Fatalf("YesNoPair omegas = %d, %d; want 9, 6", yes.Omega, no.Omega)
	}
	if got := yes.G.CliqueNumber(); got != 9 {
		t.Errorf("yes graph ω = %d, want 9", got)
	}
	if got := no.G.CliqueNumber(); got != 6 {
		t.Errorf("no graph ω = %d, want 6", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid constants did not panic")
		}
	}()
	YesNoPair(10, 0.3, 0.5)
}

func TestWitnessClique(t *testing.T) {
	f := sat.New(3)
	f.AddClause(1, 2, 3)
	f.AddClause(-1, 2)
	ok, model := sat.Solve(f)
	if !ok {
		t.Fatal("formula should be satisfiable")
	}
	for _, mk := range []func(*sat.Formula) (*Instance, error){Lemma3, Lemma4} {
		inst, err := mk(f)
		if err != nil {
			t.Fatal(err)
		}
		clique, err := inst.WitnessClique(f, model)
		if err != nil {
			t.Fatal(err)
		}
		if len(clique) != inst.CliqueIfSat {
			t.Errorf("witness clique size %d, want %d", len(clique), inst.CliqueIfSat)
		}
		if !inst.G.IsClique(clique) {
			t.Error("witness set is not a clique")
		}
	}
	// An instance without reduction bookkeeping is rejected.
	bare := &Instance{G: graph.Complete(3)}
	if _, err := bare.WitnessClique(f, model); err == nil {
		t.Error("bare instance accepted")
	}
}
