// Package cliquered implements Lemmas 3 and 4 of the paper: polynomial
// reductions from 3SAT to the dense-graph CLIQUE variants the hardness
// constructions consume.
//
//   - Lemma 3 (→ CLIQUE): take the Garey–Johnson VERTEX-COVER graph of
//     the formula, complement it, then augment with a complete graph on
//     4v+3m fresh vertices connected to everything. A satisfiable
//     formula yields a clique of exactly 5v+4m; if u clauses must fail
//     under every assignment, the maximum clique is exactly 5v+4m−u.
//
//   - Lemma 4 (→ ⅔CLIQUE): same complement, augmented with
//     n₁ = 3·(v+2m) − N fresh vertices so that the total vertex count is
//     n = 3·(v+2m) and a satisfiable formula yields a clique of exactly
//     (2/3)·n.
//
// The paper draws its constants c, d, γ, ε from the PCP machinery
// (Theorems 1–2); here they are *computed per instance* — see DESIGN.md's
// substitution table. Both constructions are structurally exact; the
// quantitative clique claims are verified against exact maximum-clique
// search in the tests.
package cliquered

import (
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/sat"
	"approxqo/internal/vc"
)

// Instance is a CLIQUE-variant instance produced from a formula, with
// the clique sizes the reduction promises.
type Instance struct {
	G *graph.Graph
	// vcRed retains the underlying VERTEX-COVER reduction so that a
	// satisfying assignment can be turned into an explicit clique
	// witness (WitnessClique).
	vcRed *vc.Reduction
	// augStart is the index of the first augmentation vertex.
	augStart int
	// CliqueIfSat is the maximum clique size exactly when the source
	// formula is satisfiable.
	CliqueIfSat int
	// CliqueIfUnsatMax is a strict upper bound on the maximum clique
	// size when the source formula is unsatisfiable (CliqueIfSat − 1; the
	// gap widens by one per clause that must fail).
	CliqueIfUnsatMax int
	// SourceVars and SourceClauses describe the source formula.
	SourceVars, SourceClauses int
	// C is the instance's ratio CliqueIfSat / n — the paper's constant c
	// (Lemma 3) or exactly 2/3 (Lemma 4).
	C float64
	// TwoThirds marks Lemma 4 instances (CliqueIfSat == 2n/3 exactly).
	TwoThirds bool
}

// Lemma3 reduces a 3-CNF formula to a CLIQUE instance.
func Lemma3(f *sat.Formula) (*Instance, error) {
	r, err := vc.FromFormula(f)
	if err != nil {
		return nil, err
	}
	v, m := f.NumVars, f.NumClauses()
	comp := r.G.Complement()
	aug := comp.AugmentWithClique(4*v + 3*m)
	inst := &Instance{
		G:                aug,
		vcRed:            r,
		augStart:         comp.N(),
		CliqueIfSat:      5*v + 4*m,
		CliqueIfUnsatMax: 5*v + 4*m - 1,
		SourceVars:       v,
		SourceClauses:    m,
	}
	inst.C = float64(inst.CliqueIfSat) / float64(aug.N())
	return inst, nil
}

// Lemma4 reduces a 3-CNF formula to a ⅔CLIQUE instance: the constructed
// graph has n = 3(v+2m) vertices and a clique of exactly 2n/3 iff the
// formula is satisfiable.
func Lemma4(f *sat.Formula) (*Instance, error) {
	r, err := vc.FromFormula(f)
	if err != nil {
		return nil, err
	}
	v, m := f.NumVars, f.NumClauses()
	coverIfSat := v + 2*m // γ·N in the paper's notation
	bigN := r.G.N()       // 2v + 3m
	n1 := 3*coverIfSat - bigN
	if n1 < 0 {
		return nil, fmt.Errorf("cliquered: negative augmentation %d (v=%d, m=%d)", n1, v, m)
	}
	comp := r.G.Complement()
	aug := comp.AugmentWithClique(n1)
	n := aug.N()
	if n != 3*coverIfSat {
		return nil, fmt.Errorf("cliquered: internal size mismatch n=%d, want %d", n, 3*coverIfSat)
	}
	inst := &Instance{
		G:                aug,
		vcRed:            r,
		augStart:         comp.N(),
		CliqueIfSat:      2 * n / 3,
		CliqueIfUnsatMax: 2*n/3 - 1,
		SourceVars:       v,
		SourceClauses:    m,
		C:                2.0 / 3.0,
		TwoThirds:        true,
	}
	return inst, nil
}

// WitnessClique turns a satisfying assignment of the source formula
// into an explicit clique of size CliqueIfSat in the constructed graph:
// the complement of the assignment's vertex cover (an independent set
// of the VC graph, hence a clique of the complement) plus every
// augmentation vertex.
func (inst *Instance) WitnessClique(f *sat.Formula, model sat.Assignment) ([]int, error) {
	if inst.vcRed == nil {
		return nil, fmt.Errorf("cliquered: instance lacks reduction bookkeeping")
	}
	cover := inst.vcRed.CoverFromAssignment(f, model)
	inCover := make([]bool, inst.vcRed.G.N())
	for _, v := range cover {
		inCover[v] = true
	}
	var clique []int
	for v := 0; v < inst.vcRed.G.N(); v++ {
		if !inCover[v] {
			clique = append(clique, v)
		}
	}
	for v := inst.augStart; v < inst.G.N(); v++ {
		clique = append(clique, v)
	}
	if len(clique) != inst.CliqueIfSat {
		return nil, fmt.Errorf("cliquered: witness clique has %d vertices, want %d", len(clique), inst.CliqueIfSat)
	}
	if !inst.G.IsClique(clique) {
		return nil, fmt.Errorf("cliquered: witness set is not a clique")
	}
	return clique, nil
}

// Certified is a graph with a clique number known by construction, used
// by the scaling experiments at sizes where exact clique search would be
// the bottleneck (see DESIGN.md §4.3).
type Certified struct {
	G *graph.Graph
	// Omega is the exact clique number, guaranteed by construction
	// (complete multipartite: ω = number of parts).
	Omega int
}

// CertifiedCliqueGraph returns a dense graph on n vertices whose clique
// number is exactly omega: the complete multipartite graph with omega
// balanced parts. Its minimum degree is n − ⌈n/omega⌉, matching the
// paper's dense-CLIQUE regime when omega ≥ n/14.
func CertifiedCliqueGraph(n, omega int) Certified {
	if omega < 1 || omega > n {
		panic(fmt.Sprintf("cliquered: need 1 ≤ omega ≤ n, got omega=%d n=%d", omega, n))
	}
	g := graph.CompleteMultipartite(graph.BalancedParts(n, omega))
	return Certified{G: g, Omega: omega}
}

// YesNoPair returns a matched pair of certified dense graphs on n
// vertices: a YES graph with ω = ⌈c·n⌉ and a NO graph with
// ω = ⌊(c−d)·n⌋, the two sides of the CLIQUE promise problem that f_N
// and f_H translate into a cost gap.
func YesNoPair(n int, c, d float64) (yes, no Certified) {
	if !(c > 0 && d > 0 && c <= 1 && c-d > 0) {
		panic(fmt.Sprintf("cliquered: invalid constants c=%v d=%v", c, d))
	}
	wYes := int(c * float64(n))
	if wYes < 1 {
		wYes = 1
	}
	if wYes > n {
		wYes = n
	}
	wNo := int((c - d) * float64(n))
	if wNo < 1 {
		wNo = 1
	}
	return CertifiedCliqueGraph(n, wYes), CertifiedCliqueGraph(n, wNo)
}
