package qon

import (
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// TestEvaluateZeroBigFloatAllocs pins the dyadic fast path at the cost
// model's level, not just num's: a full Evaluate walk over an
// all-power-of-two uniform instance (the f_N reduction shape) must
// allocate no big.Float at all. Every product of pow2 parameters is a
// pow2, and the cost sums span an exponent range far below the 128-bit
// mantissa budget, so any big.Float allocation here means the fast
// path silently stopped firing — the exact regression the parseDyadic
// ordering bug once caused on the serving path.
func TestEvaluateZeroBigFloatAllocs(t *testing.T) {
	const n = 8
	q := graph.Path(n)
	in := NewUniform(q, num.Pow2(10), num.Pow2(-4), num.Pow2(6))
	z := make(Sequence, n)
	for i := range z {
		z[i] = i
	}
	// One warm pass populates the scratch pool; retry a few times to
	// ride out sync.Pool eviction by a concurrent GC.
	in.Evaluate(z)
	for attempt := 0; attempt < 3; attempt++ {
		before := num.FloatAllocs()
		bd := in.Evaluate(z)
		if bd.C.IsZero() {
			t.Fatalf("degenerate cost %v", bd.C)
		}
		if num.FloatAllocs() == before {
			return
		}
	}
	t.Fatal("Evaluate allocated big.Floats on an all-pow2 instance on every attempt")
}
