package qon

import (
	"math/rand"
	"testing"

	"approxqo/internal/num"
)

// fingerprintRelabelings is the relabeling budget of the invariance
// property test, per instance.
const fingerprintRelabelings = 200

func TestFingerprintInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for _, n := range []int{2, 3, 5, 8, 10} {
		in := randomInstance(n, int64(500+n))
		want := Fingerprint(in)
		for rep := 0; rep < fingerprintRelabelings; rep++ {
			rel := relabeled(in, rng.Perm(n))
			if got := Fingerprint(rel); got != want {
				t.Fatalf("n=%d rep %d: fingerprint changed under relabeling:\n  %s\n  %s",
					n, rep, want, got)
			}
		}
	}
}

func TestFingerprintDistinguishesModifiedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		in := randomInstance(n, int64(600+trial))
		want := Fingerprint(in)

		// Perturb one relation size: a genuinely different instance.
		mod := relabeled(in, identity(n))
		v := rng.Intn(n)
		mod.T[v] = mod.T[v].Add(num.FromInt64(1_000_003))
		// Keep the instance valid: growing t_v moves both W bounds
		// (t_v·s ≤ W[v][k] ≤ t_v, with equality to t_v off the graph), so
		// pin the whole row to the always-valid upper bound.
		for k := 0; k < n; k++ {
			mod.W[v][k] = mod.T[v]
		}
		if err := mod.Validate(); err != nil {
			t.Fatalf("trial %d: perturbed instance invalid: %v", trial, err)
		}
		if got := Fingerprint(mod); got == want {
			t.Fatalf("trial %d: size-perturbed instance has identical fingerprint", trial)
		}
	}
}

func TestRelabelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(9)
		in := randomInstance(n, int64(700+trial))
		pi := rng.Perm(n)
		got, want := Relabel(in, pi), relabeled(in, pi)
		if !got.Q.Equal(want.Q) {
			t.Fatalf("trial %d: Relabel graph mismatch", trial)
		}
		for i := 0; i < n; i++ {
			if !got.T[i].Equal(want.T[i]) {
				t.Fatalf("trial %d: T[%d] mismatch", trial, i)
			}
			for j := 0; j < n; j++ {
				if !got.S[i][j].Equal(want.S[i][j]) || !got.W[i][j].Equal(want.W[i][j]) {
					t.Fatalf("trial %d: matrix mismatch at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// TestCanonicalizeTransfersSequences exercises the property the server
// cache depends on: Canonicalize returns (canonical, pi) with canonical
// = Relabel(in, pi), the canonical form is valid and fingerprints
// identically, and a join sequence costed in canonical space maps back
// through pi⁻¹ to a sequence with the same cost on the original.
func TestCanonicalizeTransfersSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(9)
		in := randomInstance(n, int64(800+trial))
		canon, pi := Canonicalize(in)
		if err := canon.Validate(); err != nil {
			t.Fatalf("trial %d: canonical form invalid: %v", trial, err)
		}
		if Fingerprint(canon) != Fingerprint(in) {
			t.Fatalf("trial %d: canonical form has different fingerprint", trial)
		}
		ref := relabeled(in, pi)
		if !canon.Q.Equal(ref.Q) {
			t.Fatalf("trial %d: canonical ≠ Relabel(in, pi)", trial)
		}
		// Two relabelings of the same instance canonicalize to equal
		// off-diagonal data.
		canon2, _ := Canonicalize(relabeled(in, rng.Perm(n)))
		if !canon.Q.Equal(canon2.Q) {
			t.Fatalf("trial %d: canonical graphs differ across relabelings", trial)
		}
		for i := 0; i < n; i++ {
			if !canon.T[i].Equal(canon2.T[i]) {
				t.Fatalf("trial %d: canonical T differs across relabelings", trial)
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if !canon.S[i][j].Equal(canon2.S[i][j]) || !canon.W[i][j].Equal(canon2.W[i][j]) {
					t.Fatalf("trial %d: canonical matrices differ across relabelings at (%d,%d)", trial, i, j)
				}
			}
		}
		// Sequence transfer: z in canonical labels ↦ piInv∘z in original.
		piInv := make([]int, n)
		for v, p := range pi {
			piInv[p] = v
		}
		z := Sequence(rng.Perm(n))
		back := make(Sequence, n)
		for k, v := range z {
			back[k] = piInv[v]
		}
		if !approxEqual(canon.Cost(z), in.Cost(back)) {
			t.Fatalf("trial %d: cost not preserved through canonical mapping", trial)
		}
	}
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
