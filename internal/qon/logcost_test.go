package qon

import (
	"math"
	"math/rand"
	"testing"

	"approxqo/internal/num"
	"approxqo/internal/stats"
)

// Differential: the float64 log₂ cost tracks the exact cost to far
// inside DefaultLogGuard on random instances — the bound the guard-band
// safety argument rests on.
func TestLogCosterTracksExactCost(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		n := 4 + int(seed)%6 // 4..9
		in := randomInstance(n, seed)
		lc := NewLogCoster(in)
		rng := rand.New(rand.NewSource(seed ^ 0x7e))
		for trial := 0; trial < 5; trial++ {
			z := Sequence(rng.Perm(n))
			want := in.Cost(z).Log2()
			if got := lc.CostLog2(z); math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: CostLog2(%v) = %v, exact log₂ = %v", seed, z, got, want)
			}
		}
	}
}

// Differential: Rank must order sequence pairs exactly as the exact
// costs do, across the metamorphic generator's transforms (relabeling
// permutes the instance, scaling shifts every magnitude) — decisive
// margins via float64, near-ties via the exact fallback.
func TestLogCosterRankMatchesExactOrder(t *testing.T) {
	check := func(in *Instance, rng *rand.Rand, what string) {
		t.Helper()
		lc := NewLogCoster(in)
		n := in.N()
		for trial := 0; trial < 6; trial++ {
			a, b := Sequence(rng.Perm(n)), Sequence(rng.Perm(n))
			want := in.Cost(a).Cmp(in.Cost(b))
			if got := lc.Rank(a, b); got != want {
				t.Fatalf("%s: Rank(%v, %v) = %d, exact order %d", what, a, b, got, want)
			}
		}
	}
	for seed := int64(0); seed < 30; seed++ {
		n := 4 + int(seed)%5 // 4..8
		in := randomInstance(n, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x51))
		check(in, rng, "base")
		check(relabeled(in, rng.Perm(n)), rng, "relabeled")
		check(scaled(in, num.Pow2(64)), rng, "scaled")
	}
}

// Rank on the same sequence is an exact tie: the margin is zero, inside
// the band, and the fallback must report equality.
func TestLogCosterRankExactTie(t *testing.T) {
	st := &stats.Stats{}
	in := randomInstance(6, 3).WithStats(st)
	lc := NewLogCoster(in)
	z := Sequence{3, 1, 5, 0, 2, 4}
	if got := lc.Rank(z, z); got != 0 {
		t.Fatalf("Rank(z, z) = %d, want 0", got)
	}
	if snap := st.Snapshot(); snap.Fallbacks == 0 {
		t.Fatal("exact tie did not take the guard-band fallback")
	}
}

// Property: the Tier-2 incremental evaluator is bit-identical to a
// from-scratch Evaluate across 200 random move sequences per size —
// MoveExact, Apply via the memoized shadow commit, and Apply via a
// fresh walk all land on exactly the cost in.Cost reports.
func TestIncEvalBitIdentical(t *testing.T) {
	for _, n := range []int{2, 5, 9} {
		in := randomInstance(n, int64(n)*31)
		rng := rand.New(rand.NewSource(int64(n) * 17))
		cur := Sequence(rng.Perm(n))
		inc := NewIncEval(in, cur)
		next := make(Sequence, n)
		for it := 0; it < 200; it++ {
			copy(next, cur)
			i := rng.Intn(n)
			j := rng.Intn(n)
			for j == i {
				j = rng.Intn(n)
			}
			if rng.Intn(2) == 0 {
				next[i], next[j] = next[j], next[i]
			} else {
				v := next[i]
				copy(next[i:], next[i+1:])
				copy(next[j+1:], next[j:n-1])
				next[j] = v
			}
			from := i
			if j < i {
				from = j
			}
			want := in.Cost(next)
			if e := inc.MoveLog2(next, from); math.Abs(e-want.Log2()) > 1e-9 {
				t.Fatalf("n=%d it=%d: MoveLog2 = %v, exact log₂ = %v", n, it, e, want.Log2())
			}
			switch rng.Intn(3) {
			case 0:
				// Exact probe only; the current sequence stays put.
				if got := inc.MoveExact(next, from); !got.Equal(want) {
					t.Fatalf("n=%d it=%d: MoveExact = %v, Evaluate = %v", n, it, got, want)
				}
			case 1:
				// Probe then adopt: Apply commits the memoized shadow walk.
				if got := inc.MoveExact(next, from); !got.Equal(want) {
					t.Fatalf("n=%d it=%d: MoveExact = %v, Evaluate = %v", n, it, got, want)
				}
				inc.Apply(next, from)
				cur, next = next, cur
			case 2:
				// Adopt directly: Apply re-walks the suffix itself.
				inc.Apply(next, from)
				cur, next = next, cur
			}
			if !inc.Cost().Equal(in.Cost(cur)) {
				t.Fatalf("n=%d it=%d: incremental cost %v, Evaluate %v for %v",
					n, it, inc.Cost(), in.Cost(cur), cur)
			}
		}
		// Reset re-anchors bit-identically too.
		z := Sequence(rng.Perm(n))
		inc.Reset(z)
		if !inc.Cost().Equal(in.Cost(z)) {
			t.Fatalf("n=%d: Reset cost %v, Evaluate %v", n, inc.Cost(), in.Cost(z))
		}
	}
}
