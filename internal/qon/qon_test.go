package qon

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// chainInstance builds the classic 3-relation chain R0—R1—R2 with small
// integer parameters for hand-checkable costs.
func chainInstance() *Instance {
	q := graph.Path(3)
	in := &Instance{
		Q: q,
		T: []num.Num{num.FromInt64(100), num.FromInt64(10), num.FromInt64(1000)},
	}
	one := num.One()
	// Binary-exact selectivities keep the hand computations exact.
	in.S = [][]num.Num{
		{one, num.FromFloat64(0.125), one},
		{num.FromFloat64(0.125), one, num.FromFloat64(0.5)},
		{one, num.FromFloat64(0.5), one},
	}
	// W[j][k]: cost of accessing R_j given attributes of R_k; set each
	// edge cost to its lower bound t_j·s_jk, non-edges to t_j.
	in.W = make([][]num.Num, 3)
	for j := range in.W {
		in.W[j] = make([]num.Num, 3)
		for k := range in.W[j] {
			if j != k && q.HasEdge(j, k) {
				in.W[j][k] = in.T[j].Mul(in.S[j][k])
			} else {
				in.W[j][k] = in.T[j]
			}
		}
	}
	return in
}

func TestValidateAccepts(t *testing.T) {
	if err := chainInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	u := NewUniform(graph.Complete(4), num.FromInt64(100), num.FromFloat64(0.25), num.FromInt64(25))
	if err := u.Validate(); err != nil {
		t.Fatalf("uniform instance rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Instance)
	}{
		{"asymmetric selectivity", func(in *Instance) { in.S[0][1] = num.FromFloat64(0.2) }},
		{"selectivity > 1", func(in *Instance) {
			in.S[0][1] = num.FromInt64(2)
			in.S[1][0] = num.FromInt64(2)
		}},
		{"zero selectivity", func(in *Instance) {
			in.S[0][1] = num.Zero()
			in.S[1][0] = num.Zero()
		}},
		{"non-edge selectivity", func(in *Instance) {
			in.S[0][2] = num.FromFloat64(0.5)
			in.S[2][0] = num.FromFloat64(0.5)
		}},
		{"zero relation size", func(in *Instance) { in.T[1] = num.Zero() }},
		{"W below lower bound", func(in *Instance) { in.W[0][1] = num.FromInt64(1) }},
		{"W above t_j", func(in *Instance) { in.W[0][1] = num.FromInt64(101) }},
		{"non-edge W wrong", func(in *Instance) { in.W[0][2] = num.FromInt64(5) }},
		{"graph size mismatch", func(in *Instance) { in.Q = graph.Path(4) }},
		{"ragged matrix", func(in *Instance) { in.S[2] = in.S[2][:2] }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			in := chainInstance()
			m.mutate(in)
			if err := in.Validate(); err == nil {
				t.Error("mutated instance accepted")
			}
		})
	}
}

func TestHandComputedCost(t *testing.T) {
	in := chainInstance()
	// Z = (R1, R0, R2): N(R1)=10.
	// H_1 = 10 · W[0][1] = 10 · 100·0.125 = 125; N = 10·100·0.125 = 125.
	// H_2 = 125 · min(W[2][0], W[2][1]) = 125 · min(1000, 500) = 62500.
	bd := in.Evaluate(Sequence{1, 0, 2})
	if !bd.H[0].Equal(num.FromInt64(125)) {
		t.Errorf("H_1 = %v, want 125", bd.H[0])
	}
	if !bd.H[1].Equal(num.FromInt64(62500)) {
		t.Errorf("H_2 = %v, want 62500", bd.H[1])
	}
	if !bd.C.Equal(num.FromInt64(62625)) {
		t.Errorf("C = %v, want 62625", bd.C)
	}
	if !bd.N[2].Equal(num.FromInt64(62500)) {
		t.Errorf("final size = %v, want 125·1000·0.5 = 62500", bd.N[2])
	}
	// Back-edge and prefix-edge counts.
	if bd.B[0] != 0 || bd.B[1] != 1 || bd.B[2] != 1 {
		t.Errorf("B = %v, want [0 1 1]", bd.B)
	}
	if bd.D[2] != 2 {
		t.Errorf("D = %v, want final 2", bd.D)
	}
}

func TestCartesianProductDetection(t *testing.T) {
	in := chainInstance()
	if in.HasCartesianProduct(Sequence{0, 1, 2}) {
		t.Error("connected order flagged as cartesian")
	}
	if !in.HasCartesianProduct(Sequence{0, 2, 1}) {
		t.Error("R0 then R2 (no edge) not flagged as cartesian")
	}
}

func TestInvalidSequencePanics(t *testing.T) {
	in := chainInstance()
	for _, z := range []Sequence{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sequence %v did not panic", z)
				}
			}()
			in.Cost(z)
		}()
	}
}

// randomInstance builds a random valid instance for property tests.
func randomInstance(n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	q := graph.Random(n, 0.6, seed)
	in := &Instance{Q: q, T: make([]num.Num, n)}
	for i := range in.T {
		in.T[i] = num.FromInt64(int64(rng.Intn(1000) + 1))
	}
	in.S = make([][]num.Num, n)
	in.W = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
		in.W[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if i == j {
				in.S[i][j] = num.One()
				in.W[i][j] = in.T[i]
				continue
			}
			if q.HasEdge(i, j) {
				s := num.FromFloat64(float64(rng.Intn(99)+1) / 100)
				in.S[i][j], in.S[j][i] = s, s
				// Random w within [t·s, t] per direction.
				in.W[i][j] = lerp(in.T[i].Mul(s), in.T[i], rng.Float64())
				in.W[j][i] = lerp(in.T[j].Mul(s), in.T[j], rng.Float64())
			} else {
				in.S[i][j], in.S[j][i] = num.One(), num.One()
				in.W[i][j], in.W[j][i] = in.T[i], in.T[j]
			}
		}
	}
	return in
}

func lerp(lo, hi num.Num, f float64) num.Num {
	return lo.Add(hi.Sub(lo).Mul(num.FromFloat64(f)))
}

// Property: generated random instances always validate.
func TestQuickRandomInstanceValid(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		return randomInstance(n, seed).Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: N(X) is a set function — any permutation of the same prefix
// set yields the same intermediate size (the fact that makes subset DP
// exact).
func TestQuickSizeIsSetFunction(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInstance(6, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		xs := rng.Perm(6)[:4]
		ys := append([]int(nil), xs...)
		rng.Shuffle(len(ys), func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
		return in.Size(xs).Equal(in.Size(ys))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Evaluate's running N matches Size on each prefix, and C is
// the sum of H.
func TestQuickEvaluateConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInstance(5, seed)
		z := Sequence(rand.New(rand.NewSource(seed)).Perm(5))
		bd := in.Evaluate(z)
		total := num.Zero()
		for _, h := range bd.H {
			total = total.Add(h)
		}
		if !total.Equal(bd.C) {
			return false
		}
		for i := range z {
			if !bd.N[i].Equal(in.Size(z[:i+1])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: appending a vertex with at least one back-edge costs
// H = N(X)·minW ≤ N(X)·t_v, and cartesian products cost exactly N(X)·t_v.
func TestQuickCartesianIsWorst(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInstance(5, seed)
		z := Sequence(rand.New(rand.NewSource(seed + 1)).Perm(5))
		bd := in.Evaluate(z)
		for i := 1; i < len(z); i++ {
			bound := bd.N[i-1].Mul(in.T[z[i]])
			if bound.Less(bd.H[i-1]) {
				return false
			}
			if bd.B[i] == 0 && !bd.H[i-1].Equal(bound) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNewUniformMatchesReductionShape(t *testing.T) {
	// The f_N parameters at toy scale: α=4, t=α³, w=t/α.
	alpha := num.FromInt64(4)
	tt := alpha.Pow(3)
	in := NewUniform(graph.Cycle(4), tt, alpha.Inv(), tt.Div(alpha))
	if err := in.Validate(); err != nil {
		t.Fatalf("uniform reduction-shaped instance invalid: %v", err)
	}
	// A no-cartesian sequence around the cycle: H_i = w·α^{... } form —
	// check H_1 = t·w exactly.
	bd := in.Evaluate(Sequence{0, 1, 2, 3})
	want := tt.Mul(tt.Div(alpha))
	if !bd.H[0].Equal(want) {
		t.Errorf("H_1 = %v, want t·w = %v", bd.H[0], want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := randomInstance(5, 77)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() || !back.Q.Equal(in.Q) {
		t.Fatal("round trip changed structure")
	}
	z := Sequence{0, 1, 2, 3, 4}
	if !back.Cost(z).Equal(in.Cost(z)) {
		t.Error("round trip changed costs")
	}
	var bad Instance
	if err := json.Unmarshal([]byte(`{"query_graph":{"n":2,"edges":[]},"selectivities":[],"sizes":["1","1"],"access_costs":[]}`), &bad); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestMinWEmptyPrefixPanics(t *testing.T) {
	in := chainInstance()
	defer func() {
		if recover() == nil {
			t.Error("MinW over empty set did not panic")
		}
	}()
	in.MinW(0, graph.NewBitset(3))
}
