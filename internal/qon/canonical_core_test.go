// Fingerprint behaviour on the hardness instances. This file lives in
// the external test package because it drives qon through the core
// reductions (core imports qon, so an in-package test would be an
// import cycle).
package qon_test

import (
	"math/rand"
	"testing"

	"approxqo/internal/cliquered"
	"approxqo/internal/core"
	"approxqo/internal/qon"
)

// TestFingerprintOnHardnessInstances is the adversarial case for the
// canonical labeler: f_N instances are uniform (every relation the same
// size, every edge the same selectivity and cost), so WL refinement
// gets no help from the weights and the fingerprint rests entirely on
// the graph-canonicalization search over highly symmetric complete
// multipartite graphs. The YES and NO sides of the promise pair are
// non-isomorphic (different clique numbers) and must be told apart;
// relabelings of each side must agree.
func TestFingerprintOnHardnessInstances(t *testing.T) {
	const n = 12
	yes, no := cliquered.YesNoPair(n, 0.75, 0.5)
	params := core.FNParams{A: 4, OmegaYes: yes.Omega, OmegaNo: no.Omega}
	fnYes, err := core.FN(yes.G, params)
	if err != nil {
		t.Fatal(err)
	}
	fnNo, err := core.FN(no.G, params)
	if err != nil {
		t.Fatal(err)
	}
	fpYes, fpNo := qon.Fingerprint(fnYes.QON), qon.Fingerprint(fnNo.QON)
	if fpYes == fpNo {
		t.Fatalf("YES (ω=%d) and NO (ω=%d) hardness instances share a fingerprint", yes.Omega, no.Omega)
	}
	rng := rand.New(rand.NewSource(405))
	for rep := 0; rep < 25; rep++ {
		if got := qon.Fingerprint(qon.Relabel(fnYes.QON, rng.Perm(n))); got != fpYes {
			t.Fatalf("rep %d: YES fingerprint not relabel-invariant", rep)
		}
		if got := qon.Fingerprint(qon.Relabel(fnNo.QON, rng.Perm(n))); got != fpNo {
			t.Fatalf("rep %d: NO fingerprint not relabel-invariant", rep)
		}
	}
}
