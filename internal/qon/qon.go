// Package qon implements the QO_N query-optimization problem of the
// paper (§2.1): left-deep join sequences costed under the nested-loops
// join method, following the Ibaraki–Kameda-style model.
//
// An instance is the five-tuple (n, Q, S, T, W):
//
//   - Q — undirected query graph on n vertices (one per relation);
//   - S — symmetric selectivity matrix, s_ij = 1 when {i,j} is not an
//     edge of Q;
//   - T — relation cardinalities (one page per tuple, as in the paper);
//   - W — access-path costs: W[j][k] is the least per-outer-tuple cost
//     of accessing relation R_j given join attributes from R_k,
//     constrained by t_j·s_jk ≤ W[j][k] ≤ t_j, and equal to t_j when
//     {j,k} is not an edge.
//
// A join sequence Z is a permutation of the vertices. With X the prefix
// before position i+1 and v the vertex there:
//
//	N(∅) = 1,  N(Xv) = N(X) · t_v · ∏_{u∈X} s_vu      (intermediate size)
//	H_i(Z) = N(X) · min_{u∈X} W[v][u]                  (join cost)
//	C(Z) = Σ_{i=1}^{n−1} H_i(Z)                        (sequence cost)
//
// All quantities are num.Num values, since the hardness reductions
// manufacture magnitudes like α^{n²}.
package qon

import (
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/stats"
)

// Instance is a QO_N problem instance.
type Instance struct {
	Q *graph.Graph
	S [][]num.Num // selectivities; S[i][j] == S[j][i], 1 off the query graph
	T []num.Num   // relation sizes (tuples = pages)
	W [][]num.Num // access-path costs, see package comment

	stats *stats.Stats // instrumentation sink; nil when uninstrumented
}

// WithStats returns a shallow copy of the instance whose cost
// evaluations are counted into s. The copy shares all matrices with the
// original, so it is cheap enough to create per optimization run.
func (in *Instance) WithStats(s *stats.Stats) *Instance {
	cp := *in
	cp.stats = s
	return &cp
}

// Stats returns the instrumentation sink attached by WithStats, or nil.
// Optimizers use it to record work the cost model cannot see (DP
// subsets expanded, local-search moves).
func (in *Instance) Stats() *stats.Stats { return in.stats }

// N returns the number of relations.
func (in *Instance) N() int { return len(in.T) }

// NewUniform returns an instance over the given query graph where every
// relation has size t, every edge has selectivity s, and every edge's
// access cost is w (non-edge conventions are filled in automatically).
// This is the shape the f_N reduction produces.
func NewUniform(q *graph.Graph, t, s, w num.Num) *Instance {
	n := q.N()
	in := &Instance{Q: q, T: make([]num.Num, n)}
	for i := range in.T {
		in.T[i] = t
	}
	in.S = make([][]num.Num, n)
	in.W = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
		in.W[i] = make([]num.Num, n)
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				in.S[i][j] = num.One()
				in.W[i][j] = t
			case q.HasEdge(i, j):
				in.S[i][j] = s
				in.W[i][j] = w
			default:
				in.S[i][j] = num.One()
				in.W[i][j] = t // no predicate: every inner tuple qualifies
			}
		}
	}
	return in
}

// Validate checks every structural constraint of §2.1.1: dimensions,
// symmetry of S, unit selectivity off the query graph, positive sizes,
// and the access-cost bounds t_j·s_jk ≤ W[j][k] ≤ t_j with W[j][k] = t_j
// off the query graph.
func (in *Instance) Validate() error {
	n := in.N()
	if in.Q == nil || in.Q.N() != n {
		return fmt.Errorf("qon: query graph has %v vertices, want %d", in.Q, n)
	}
	if len(in.S) != n || len(in.W) != n {
		return fmt.Errorf("qon: matrix dimensions S=%d W=%d, want %d", len(in.S), len(in.W), n)
	}
	for i := 0; i < n; i++ {
		if len(in.S[i]) != n || len(in.W[i]) != n {
			return fmt.Errorf("qon: row %d has wrong length", i)
		}
		if !in.T[i].IsValid() {
			return fmt.Errorf("qon: relation %d has no size", i)
		}
		if in.T[i].IsZero() {
			return fmt.Errorf("qon: relation %d has size zero", i)
		}
		for j := 0; j < n; j++ {
			if !in.S[i][j].IsValid() || !in.W[i][j].IsValid() {
				return fmt.Errorf("qon: missing selectivity or access cost at (%d,%d)", i, j)
			}
		}
	}
	one := num.One()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if !in.S[i][j].Equal(in.S[j][i]) {
				return fmt.Errorf("qon: selectivity not symmetric at (%d,%d)", i, j)
			}
			if in.S[i][j].IsZero() || one.Less(in.S[i][j]) {
				return fmt.Errorf("qon: selectivity s[%d][%d]=%v outside (0,1]", i, j, in.S[i][j])
			}
			if !in.Q.HasEdge(i, j) {
				if !in.S[i][j].Equal(one) {
					return fmt.Errorf("qon: non-edge (%d,%d) has selectivity %v ≠ 1", i, j, in.S[i][j])
				}
				if !in.W[i][j].Equal(in.T[i]) {
					return fmt.Errorf("qon: non-edge access cost W[%d][%d]=%v, want t_%d=%v", i, j, in.W[i][j], i, in.T[i])
				}
				continue
			}
			lo := in.T[i].Mul(in.S[i][j])
			if in.W[i][j].Less(lo) {
				return fmt.Errorf("qon: W[%d][%d]=%v below t_i·s_ij=%v", i, j, in.W[i][j], lo)
			}
			if in.T[i].Less(in.W[i][j]) {
				return fmt.Errorf("qon: W[%d][%d]=%v above t_i=%v", i, j, in.W[i][j], in.T[i])
			}
		}
	}
	return nil
}

// Sequence is a join sequence: a permutation of the vertices 0..n-1.
type Sequence []int

// ValidSequence reports whether z is a permutation of 0..n-1.
func (in *Instance) ValidSequence(z Sequence) bool {
	if len(z) != in.N() {
		return false
	}
	seen := make([]bool, in.N())
	for _, v := range z {
		if v < 0 || v >= in.N() || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// ExtendFactor returns t_v · ∏_{u∈X} s_vu — the factor by which joining
// v multiplies the intermediate size of prefix set X.
func (in *Instance) ExtendFactor(v int, x *graph.Bitset) num.Num {
	f := in.T[v]
	x.ForEach(func(u int) {
		f = f.Mul(in.S[v][u])
	})
	return f
}

// ExtendInto sets s to the extend factor t_v · ∏_{u∈X} s_vu without
// allocating. The multiplication order (ascending u) matches
// ExtendFactor, so the two produce bit-identical values.
func (in *Instance) ExtendInto(s *num.Scratch, v int, x *graph.Bitset) {
	s.Set(in.T[v])
	x.ForEach(func(u int) {
		s.Mul(in.S[v][u])
	})
}

// MinW returns min_{u∈X} W[v][u], the best per-outer-tuple access cost
// for joining v against the prefix set X. It panics on an empty X.
func (in *Instance) MinW(v int, x *graph.Bitset) num.Num {
	var best num.Num
	first := true
	x.ForEach(func(u int) {
		if first {
			best, first = in.W[v][u], false
		} else {
			best = best.Min(in.W[v][u])
		}
	})
	if first {
		panic("qon: MinW over empty prefix")
	}
	return best
}

// Size returns N(X) for an arbitrary vertex set, a set function
// independent of join order.
func (in *Instance) Size(xs []int) num.Num {
	x := graph.NewBitset(in.N())
	size := num.One()
	for _, v := range xs {
		size = size.Mul(in.ExtendFactor(v, x))
		x.Add(v)
	}
	return size
}

// Breakdown is the full cost decomposition of a join sequence.
type Breakdown struct {
	H []num.Num // H[i] = cost of join operation J_{i+1..} (len n−1)
	N []num.Num // N[i] = intermediate size after i+1 relations (len n)
	B []int     // B[i] = back-edges of the vertex at position i (len n)
	D []int     // D[i] = edges within the first i+1 positions (len n)
	C num.Num   // total cost Σ H
}

// Cost returns C(Z).
func (in *Instance) Cost(z Sequence) num.Num {
	return in.Evaluate(z).C
}

// Evaluate computes the complete cost breakdown of a join sequence.
// It panics if z is not a permutation.
func (in *Instance) Evaluate(z Sequence) *Breakdown {
	if !in.ValidSequence(z) {
		panic(fmt.Sprintf("qon: invalid join sequence %v", z))
	}
	in.stats.CostEval()
	n := in.N()
	bd := &Breakdown{
		H: make([]num.Num, 0, n-1),
		N: make([]num.Num, 0, n),
		B: make([]int, n),
		D: make([]int, n),
		C: num.Zero(),
	}
	x := graph.NewBitset(n)
	// The whole walk runs on pooled scratch accumulators; only the
	// Breakdown entries materialize immutable Nums. The operation order
	// (factor assembled over ascending u, then the size multiply) is the
	// canonical one certify.QON mirrors — do not reorder.
	size := num.NewScratch()
	factor := num.NewScratch()
	join := num.NewScratch()
	total := num.NewScratch()
	defer size.Release()
	defer factor.Release()
	defer join.Release()
	defer total.Release()
	size.SetInt64(1)
	edges := 0
	for i, v := range z {
		back := in.Q.Neighbors(v).IntersectCount(x)
		bd.B[i] = back
		edges += back
		bd.D[i] = edges
		if i > 0 {
			join.SetScratch(size)
			join.Mul(in.MinW(v, x))
			h := join.Num()
			bd.H = append(bd.H, h)
			total.Add(h)
		}
		in.ExtendInto(factor, v, x)
		size.MulScratch(factor)
		bd.N = append(bd.N, size.Num())
		x.Add(v)
	}
	bd.C = total.Num()
	return bd
}

// HasCartesianProduct reports whether any join after the first position
// adds a vertex with no query-graph edge into the prefix (B_i = 0).
func (in *Instance) HasCartesianProduct(z Sequence) bool {
	if !in.ValidSequence(z) {
		panic(fmt.Sprintf("qon: invalid join sequence %v", z))
	}
	x := graph.NewBitset(in.N())
	for i, v := range z {
		if i > 0 && in.Q.Neighbors(v).IntersectCount(x) == 0 {
			return true
		}
		x.Add(v)
	}
	return false
}
