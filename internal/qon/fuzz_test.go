package qon

import (
	"encoding/json"
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// FuzzInstanceJSON checks that arbitrary JSON never panics the QO_N
// instance decoder (which validates on decode) and that accepted
// instances survive a marshal/unmarshal round trip.
func FuzzInstanceJSON(f *testing.F) {
	valid, err := json.Marshal(NewUniform(graph.Complete(3), num.FromInt64(4), num.Pow2(-1), num.FromInt64(2)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	// Near-tie seed: the two orders of this instance differ in cost by a
	// relative 2^-71 — far inside DefaultLogGuard — so costing it through
	// the tiered kernel forces the Tier-1 exact fallback path.
	tie := &Instance{
		Q: graph.Complete(2),
		T: []num.Num{num.Pow2(30), num.Pow2(30)},
		S: [][]num.Num{
			{num.One(), num.Pow2(-1)},
			{num.Pow2(-1), num.One()},
		},
		W: [][]num.Num{
			{num.Pow2(30), num.Pow2(29).Add(num.Pow2(-71))},
			{num.Pow2(29), num.Pow2(30)},
		},
	}
	if err := tie.Validate(); err != nil {
		f.Fatal(err)
	}
	tieJSON, err := json.Marshal(tie)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(tieJSON))
	f.Add(`{}`)
	f.Add(`{"query_graph":{"n":2,"edges":[[0,1]]}}`)
	f.Add(`{"query_graph":{"n":2,"edges":[]},"sizes":["2","3"],"selectivities":[[null,null],[null,null]],"access_costs":[[null,null],[null,null]]}`)
	f.Add(`{"query_graph":{"n":1,"edges":[]},"sizes":["0"],"selectivities":[["1"]],"access_costs":[["1"]]}`)
	f.Add(`{"query_graph":{"n":2,"edges":[[0,1]]},"sizes":["2","2"],"selectivities":[["1","2"],["2","1"]],"access_costs":[["2","2"],["2","2"]]}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		var in Instance
		if err := json.Unmarshal([]byte(input), &in); err != nil {
			return
		}
		// An accepted instance is validated: it must be safe to cost a
		// trivial sequence and to re-encode.
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid instance: %v", err)
		}
		data, err := json.Marshal(&in)
		if err != nil {
			t.Fatalf("marshal of accepted instance: %v", err)
		}
		var back Instance
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if back.N() != in.N() {
			t.Fatalf("round trip changed n: %d -> %d", in.N(), back.N())
		}
		if n := in.N(); n > 0 && n <= 16 {
			seq := make(Sequence, n)
			rev := make(Sequence, n)
			for i := range seq {
				seq[i] = i
				rev[n-1-i] = i
			}
			cost := in.Cost(seq)
			if !cost.Equal(back.Cost(seq)) {
				t.Fatal("round trip changed the cost model")
			}
			// Differential: the log-domain ranking must agree with the
			// exact ordering on every accepted instance — including the
			// near-tie seed above, whose margin forces the exact fallback.
			lc := NewLogCoster(&in)
			if got, want := lc.Rank(seq, rev), cost.Cmp(in.Cost(rev)); got != want {
				t.Fatalf("Rank = %d, exact order %d", got, want)
			}
		}
	})
}
