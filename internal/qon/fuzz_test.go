package qon

import (
	"encoding/json"
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// FuzzInstanceJSON checks that arbitrary JSON never panics the QO_N
// instance decoder (which validates on decode) and that accepted
// instances survive a marshal/unmarshal round trip.
func FuzzInstanceJSON(f *testing.F) {
	valid, err := json.Marshal(NewUniform(graph.Complete(3), num.FromInt64(4), num.Pow2(-1), num.FromInt64(2)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`{}`)
	f.Add(`{"query_graph":{"n":2,"edges":[[0,1]]}}`)
	f.Add(`{"query_graph":{"n":2,"edges":[]},"sizes":["2","3"],"selectivities":[[null,null],[null,null]],"access_costs":[[null,null],[null,null]]}`)
	f.Add(`{"query_graph":{"n":1,"edges":[]},"sizes":["0"],"selectivities":[["1"]],"access_costs":[["1"]]}`)
	f.Add(`{"query_graph":{"n":2,"edges":[[0,1]]},"sizes":["2","2"],"selectivities":[["1","2"],["2","1"]],"access_costs":[["2","2"],["2","2"]]}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		var in Instance
		if err := json.Unmarshal([]byte(input), &in); err != nil {
			return
		}
		// An accepted instance is validated: it must be safe to cost a
		// trivial sequence and to re-encode.
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid instance: %v", err)
		}
		data, err := json.Marshal(&in)
		if err != nil {
			t.Fatalf("marshal of accepted instance: %v", err)
		}
		var back Instance
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if back.N() != in.N() {
			t.Fatalf("round trip changed n: %d -> %d", in.N(), back.N())
		}
		if n := in.N(); n > 0 && n <= 16 {
			seq := make(Sequence, n)
			for i := range seq {
				seq[i] = i
			}
			cost := in.Cost(seq)
			if !cost.Equal(back.Cost(seq)) {
				t.Fatal("round trip changed the cost model")
			}
		}
	})
}
