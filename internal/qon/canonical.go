package qon

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// Canonical identity for QO_N instances.
//
// Two instances that differ only by a renaming of the relations have
// identical optimal costs, and the metamorphic suites prove every cost
// model in this repository is relabel-equivariant. Fingerprint exploits
// that: it hashes a canonical encoding of the instance — computed by
// graph.CanonicalOrder over the join graph with the exact selectivity,
// size and access-cost values folded in — so any two relabelings of the
// same instance produce the same fingerprint, and instances that are
// not relabelings of each other produce different ones. The serving
// cache keys on it (model + fingerprint) to make cosmetically-varied
// repeats hit.
//
// The diagonal entries S[i][i] and W[i][i] are excluded: no cost model
// reads them (joins only consult pairs with one endpoint inside the
// prefix and one outside), so instances differing only there are
// cost-identical and deliberately share a fingerprint.

// Relabel returns the instance with relation i renamed to pi[i]; pi
// must be a permutation of 0..n-1. The result shares the num.Num values
// (they are immutable) but no slices with the receiver.
func Relabel(in *Instance, pi []int) *Instance {
	n := in.N()
	q := graph.New(n)
	for _, e := range in.Q.Edges() {
		q.AddEdge(pi[e[0]], pi[e[1]])
	}
	out := &Instance{Q: q, T: make([]num.Num, n), S: make([][]num.Num, n), W: make([][]num.Num, n)}
	for i := 0; i < n; i++ {
		out.S[i] = make([]num.Num, n)
		out.W[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		out.T[pi[i]] = in.T[i]
		for j := 0; j < n; j++ {
			out.S[pi[i]][pi[j]] = in.S[i][j]
			out.W[pi[i]][pi[j]] = in.W[i][j]
		}
	}
	return out
}

// canonData adapts the instance for graph.CanonicalOrder. Per the
// CanonData contract the byte encodings are label-invariant and
// NUL-free: num.CanonicalAppend emits big.Float 'p' text, and ';' / 'e'
// markers separate components.
func canonData(in *Instance) graph.CanonData {
	return graph.CanonData{
		N: in.N(),
		VertexBytes: func(v int) []byte {
			return in.T[v].CanonicalAppend(nil)
		},
		PairBytes: func(u, v int) []byte {
			b := make([]byte, 0, 32)
			if in.Q.HasEdge(u, v) {
				b = append(b, 'e', '1', ';')
			} else {
				b = append(b, 'e', '0', ';')
			}
			b = in.S[u][v].CanonicalAppend(b)
			b = append(b, ';')
			b = in.W[u][v].CanonicalAppend(b)
			b = append(b, ';')
			b = in.W[v][u].CanonicalAppend(b)
			return b
		},
	}
}

// Canonicalize returns the canonical form of the instance and the
// permutation pi mapping the original labels into it (canonical =
// Relabel(in, pi)). Any two relabelings of the same instance
// canonicalize to the same form (up to the cost-irrelevant diagonal
// entries), so results computed on the canonical form — in particular
// join sequences — transfer between them: a canonical-space sequence z
// maps back to original labels as z'[k] = piInv[z[k]].
func Canonicalize(in *Instance) (*Instance, []int) {
	_, pi := CanonicalID(in)
	return Relabel(in, pi), pi
}

// Fingerprint returns a hex string identifying the instance up to
// relabeling: equal exactly when two instances are renamings of each
// other (diagonal entries aside). It is deterministic across processes
// and runs.
func Fingerprint(in *Instance) string {
	fp, _ := CanonicalID(in)
	return fp
}

// CanonicalID computes the fingerprint and the canonicalizing
// permutation together — one canonical-order search instead of the two
// that separate Fingerprint and Canonicalize calls would cost. The
// serving cache needs both: the fingerprint as the key and pi to remap
// join sequences between request and canonical label spaces.
func CanonicalID(in *Instance) (string, []int) {
	ord, enc := graph.CanonicalOrder(canonData(in))
	pi := make([]int, len(ord))
	for pos, v := range ord {
		pi[v] = pos
	}
	h := sha256.New()
	h.Write([]byte("qon\x00"))
	h.Write([]byte(strconv.Itoa(in.N())))
	h.Write([]byte{0})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), pi
}
