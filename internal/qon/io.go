package qon

import (
	"encoding/json"
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

type instanceJSON struct {
	Q *graph.Graph `json:"query_graph"`
	S [][]num.Num  `json:"selectivities"`
	T []num.Num    `json:"sizes"`
	W [][]num.Num  `json:"access_costs"`
}

// MarshalJSON encodes the instance with num values as strings.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(instanceJSON{Q: in.Q, S: in.S, T: in.T, W: in.W})
}

// UnmarshalJSON decodes and validates an instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var ij instanceJSON
	if err := json.Unmarshal(data, &ij); err != nil {
		return err
	}
	decoded := &Instance{Q: ij.Q, S: ij.S, T: ij.T, W: ij.W}
	if decoded.Q == nil {
		return fmt.Errorf("qon: missing query graph")
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*in = *decoded
	return nil
}
