package qon

import (
	"math/rand"
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// metamorphicInstances is the generated-instance budget per relation;
// these suites are tier-1 and evaluate only a handful of sequences per
// instance, so they stay far under the 30s budget.
const metamorphicInstances = 200

// approxEqual compares costs up to a 2^-200 relative error: num works
// at 256-bit precision, and reassociating the same product across a
// relabeled instance can shift the final rounding by an ulp.
func approxEqual(a, b num.Num) bool {
	if a.Equal(b) {
		return true
	}
	hi, lo := a.Max(b), a.Min(b)
	return hi.Sub(lo).Mul(num.Pow2(200)).LessEq(hi)
}

// relabeled returns the instance with relation i renamed to pi[i]. It
// is an independent reimplementation of the exported Relabel, kept so
// the metamorphic suites don't assume the code under test is correct.
func relabeled(in *Instance, pi []int) *Instance {
	n := in.N()
	q := graph.New(n)
	for _, e := range in.Q.Edges() {
		q.AddEdge(pi[e[0]], pi[e[1]])
	}
	out := &Instance{Q: q, T: make([]num.Num, n), S: make([][]num.Num, n), W: make([][]num.Num, n)}
	for i := 0; i < n; i++ {
		out.S[i] = make([]num.Num, n)
		out.W[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		out.T[pi[i]] = in.T[i]
		for j := 0; j < n; j++ {
			out.S[pi[i]][pi[j]] = in.S[i][j]
			out.W[pi[i]][pi[j]] = in.W[i][j]
		}
	}
	return out
}

// scaled returns the instance with every relation size — and, to keep
// the t·s ≤ W ≤ t access-cost bounds intact, every access cost —
// multiplied by c. Selectivities are untouched.
func scaled(in *Instance, c num.Num) *Instance {
	n := in.N()
	out := &Instance{Q: in.Q, T: make([]num.Num, n), S: in.S, W: make([][]num.Num, n)}
	for i := 0; i < n; i++ {
		out.T[i] = in.T[i].Mul(c)
		out.W[i] = make([]num.Num, n)
		for j := 0; j < n; j++ {
			out.W[i][j] = in.W[i][j].Mul(c)
		}
	}
	return out
}

// Metamorphic: the cost function is equivariant under relabeling — for
// any sequence z, the relabeled instance charges the relabeled sequence
// exactly what the original charges z.
func TestMetamorphicRelabelCostEquivariant(t *testing.T) {
	for i := 0; i < metamorphicInstances; i++ {
		n := 4 + i%5 // 4..8
		in := randomInstance(n, int64(i))
		rng := rand.New(rand.NewSource(int64(500 + i)))
		pi := rng.Perm(n)
		rel := relabeled(in, pi)
		if err := rel.Validate(); err != nil {
			t.Fatalf("instance %d: relabeled instance invalid: %v", i, err)
		}
		for trial := 0; trial < 3; trial++ {
			z := Sequence(rng.Perm(n))
			mapped := make(Sequence, n)
			for k, v := range z {
				mapped[k] = pi[v]
			}
			want := in.Cost(z)
			if got := rel.Cost(mapped); !approxEqual(got, want) {
				t.Fatalf("instance %d: Cost(%v)=%v but relabeled Cost(%v)=%v under %v",
					i, z, want, mapped, got, pi)
			}
		}
	}
}

// Metamorphic: scaling every relation size (and access cost) by a
// constant c ≥ 1 never makes any sequence cheaper, and larger scale
// factors dominate smaller ones — cost is monotone in the data volume.
func TestMetamorphicSizeScalingMonotone(t *testing.T) {
	for i := 0; i < metamorphicInstances; i++ {
		n := 4 + i%5
		in := randomInstance(n, int64(7000+i))
		rng := rand.New(rand.NewSource(int64(7500 + i)))
		c := num.FromInt64(int64(rng.Intn(9) + 2)) // 2..10
		up := scaled(in, c)
		if err := up.Validate(); err != nil {
			t.Fatalf("instance %d: scaled instance invalid: %v", i, err)
		}
		upAgain := scaled(up, c)
		for trial := 0; trial < 3; trial++ {
			z := Sequence(rng.Perm(n))
			base, mid, high := in.Cost(z), up.Cost(z), upAgain.Cost(z)
			if mid.Less(base) {
				t.Fatalf("instance %d: scaling sizes by %v made %v cheaper: %v -> %v",
					i, c, z, base, mid)
			}
			if high.Less(mid) {
				t.Fatalf("instance %d: scaling further by %v made %v cheaper: %v -> %v",
					i, c, z, mid, high)
			}
		}
	}
}
