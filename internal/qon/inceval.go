package qon

import (
	"fmt"
	"math"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// incTables is one set of per-position prefix tables: exact
// intermediate sizes and cost prefix sums plus their float64 log₂
// shadows.
type incTables struct {
	size    []num.Num // size[i] = N(z[0..i]), exact
	csum    []num.Num // csum[i] = Σ_{k≤i} H_k, exact (csum[0] = 0)
	logSize []float64
	logCsum []float64 // −Inf while the prefix cost is still zero
}

func newIncTables(n int) incTables {
	return incTables{
		size:    make([]num.Num, n),
		csum:    make([]num.Num, n),
		logSize: make([]float64, n),
		logCsum: make([]float64, n),
	}
}

// IncEval is the Tier-2 incremental move evaluator for local search.
// It maintains per-position prefix tables for one current sequence —
// exact intermediate sizes N(X), exact cost prefix sums Σ H, and their
// float64 log₂ shadows — so a candidate move that leaves positions
// [0, from) untouched re-derives only the suffix: O(n·(n−from)) work
// instead of a full O(n²) evaluation.
//
// The exact tables replay the canonical evaluation order of
// qon.Evaluate (extend factor over ascending u, rounded before the size
// multiply), so every cost this evaluator confirms is bit-identical to
// a from-scratch Evaluate of the same sequence — the property the
// certification audit depends on, asserted by TestIncEvalBitIdentical.
//
// MoveExact walks land in a shadow table set; an Apply of the same
// candidate commits the shadow by pointer copy instead of re-walking,
// so a guard-band fallback that then accepts the move costs one exact
// suffix evaluation, not two.
//
// Caller contract: every candidate passed to MoveLog2 / MoveExact /
// Apply must agree with the current sequence on [0, from). IncEval is
// not safe for concurrent use.
type IncEval struct {
	in *Instance
	lc *LogCoster
	n  int

	z   Sequence // current sequence (private copy)
	tab incTables

	shadow     incTables
	shadowSeq  Sequence
	shadowFrom int // anchor of the last MoveExact walk; −1 when stale

	x     *graph.Bitset // scratch prefix set for exact walks
	inSet []bool        // scratch membership for fast walks
}

// NewIncEval builds the evaluator anchored at sequence z (one exact
// evaluation). z is copied.
func NewIncEval(in *Instance, z Sequence) *IncEval {
	if !in.ValidSequence(z) {
		panic(fmt.Sprintf("qon: invalid join sequence %v", z))
	}
	n := in.N()
	e := &IncEval{
		in:         in,
		lc:         NewLogCoster(in),
		n:          n,
		z:          make(Sequence, n),
		tab:        newIncTables(n),
		shadow:     newIncTables(n),
		shadowSeq:  make(Sequence, n),
		shadowFrom: -1,
		x:          graph.NewBitset(n),
		inSet:      make([]bool, n),
	}
	e.walk(z, 0, &e.tab)
	copy(e.z, z)
	return e
}

// Reset re-anchors the evaluator at a brand-new sequence (one exact
// evaluation), reusing the tables — cheaper than NewIncEval for
// restart-style optimizers because the log₂ instance tables survive.
func (e *IncEval) Reset(z Sequence) {
	if !e.in.ValidSequence(z) {
		panic(fmt.Sprintf("qon: invalid join sequence %v", z))
	}
	e.walk(z, 0, &e.tab)
	copy(e.z, z)
	e.shadowFrom = -1
}

// Sequence returns the current sequence (the caller must not mutate it).
func (e *IncEval) Sequence() Sequence { return e.z }

// Cost returns the exact cost of the current sequence.
func (e *IncEval) Cost() num.Num { return e.tab.csum[e.n-1] }

// CostLog2 returns log₂ of the current cost, re-anchored from the
// exact tables (−Inf for the zero cost of a single relation).
func (e *IncEval) CostLog2() float64 { return e.tab.logCsum[e.n-1] }

// MoveLog2 returns log₂ C(next) via the float64 fast path, reusing the
// cached prefix through position from−1. Zero allocations; records one
// FastEval.
func (e *IncEval) MoveLog2(next Sequence, from int) float64 {
	e.in.stats.FastEval()
	lc := e.lc
	inSet := e.inSet
	for i := range inSet {
		inSet[i] = false
	}
	total := math.Inf(-1)
	logSize := 0.0
	if from > 0 {
		total = e.tab.logCsum[from-1]
		logSize = e.tab.logSize[from-1]
		for _, u := range next[:from] {
			inSet[u] = true
		}
	}
	for i := from; i < e.n; i++ {
		v := next[i]
		if i > 0 {
			var hw float64
			for _, u := range lc.wOrder[v] {
				if inSet[u] {
					hw = lc.logW[v][u]
					break
				}
			}
			total = logAdd(total, logSize+hw)
		}
		f := lc.logT[v]
		for _, u := range next[:i] {
			f += lc.logS[v][u]
		}
		logSize += f
		inSet[v] = true
	}
	return total
}

// MoveExact returns the exact cost of next without adopting it,
// resuming from the cached exact prefix at from. The result is
// bit-identical to in.Cost(next). The walk is remembered, so an
// immediately following Apply of the same candidate is free.
func (e *IncEval) MoveExact(next Sequence, from int) num.Num {
	c := e.walk(next, from, &e.shadow)
	copy(e.shadowSeq, next)
	e.shadowFrom = from
	return c
}

// Apply adopts next as the current sequence, re-deriving the exact and
// log tables for positions ≥ from (or committing the memoized
// MoveExact walk when it covered exactly this candidate). The new
// Cost() is bit-identical to in.Cost(next).
func (e *IncEval) Apply(next Sequence, from int) {
	if e.shadowFrom == from && seqSuffixEqual(e.shadowSeq, next, from) {
		t, s := &e.tab, &e.shadow
		for i := from; i < e.n; i++ {
			t.size[i] = s.size[i]
			t.csum[i] = s.csum[i]
			t.logSize[i] = s.logSize[i]
			t.logCsum[i] = s.logCsum[i]
		}
	} else {
		e.walk(next, from, &e.tab)
	}
	copy(e.z[from:], next[from:])
	e.shadowFrom = -1
}

func seqSuffixEqual(a, b Sequence, from int) bool {
	for i := from; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// walk evaluates positions [from, n) of next in exact scratch
// arithmetic, resuming from the primary tables at from−1, writing the
// results into t and returning the total cost. The operation sequence
// is exactly the one Evaluate performs (the minimum access path comes
// from the stable sorted-W order, which selects the same value MinW
// does), so the result is bit-identical to a full evaluation.
func (e *IncEval) walk(next Sequence, from int, t *incTables) num.Num {
	e.in.stats.CostEval()
	size := num.NewScratch()
	factor := num.NewScratch()
	join := num.NewScratch()
	total := num.NewScratch()
	defer size.Release()
	defer factor.Release()
	defer join.Release()
	defer total.Release()

	x := e.x
	x.Clear()
	size.SetInt64(1)
	if from > 0 {
		size.Set(e.tab.size[from-1])
		total.Set(e.tab.csum[from-1])
		for _, u := range next[:from] {
			x.Add(u)
		}
	}
	for i := from; i < e.n; i++ {
		v := next[i]
		if i > 0 {
			var w num.Num
			for _, u := range e.lc.wOrder[v] {
				if x.Has(int(u)) {
					w = e.in.W[v][u]
					break
				}
			}
			join.SetScratch(size)
			join.Mul(w)
			total.AddScratch(join)
		}
		e.in.ExtendInto(factor, v, x)
		size.MulScratch(factor)
		x.Add(v)
		t.size[i] = size.Num()
		t.csum[i] = total.Num()
		t.logSize[i] = size.Log2()
		if total.Sign() == 0 {
			t.logCsum[i] = math.Inf(-1)
		} else {
			t.logCsum[i] = total.Log2()
		}
	}
	return t.csum[e.n-1]
}
