package qon

import (
	"math"
	"sort"
)

// DefaultLogGuard is the guard band, in log₂ units, inside which a
// float64 log-domain cost comparison is considered too close to call
// and is re-decided in exact num.Num arithmetic.
//
// Why 1e-6 is safe: CostLog2 accumulates at most O(n²) float64
// additions of log₂ magnitudes. The instance caps (n ≤ 64 everywhere
// this path runs) and the 256-bit source values bound every
// intermediate log₂ magnitude by ~2³¹ (big.Float's exponent range), but
// in practice the hardness reductions stay below ~10⁵, so each rounded
// operation contributes ≲ 10⁵·2⁻⁵³ ≈ 1.2e-11 absolute error and a full
// evaluation stays below ~1e-7 even adversarially. Margins larger than
// the band are therefore decided correctly by float64 alone; anything
// inside the band — including the exact ties the reductions manufacture
// from powers of two — falls back to exact arithmetic. The differential
// tests (logcost_test.go) check this agreement on metamorphic and
// cliquered hardness instances.
const DefaultLogGuard = 1e-6

// LogCoster evaluates C(Z) in the log₂ domain: pure float64, zero
// allocations, no big.Float traffic. It is the Tier-1 fast path used by
// the local-search optimizers to *rank* candidate sequences; accepted
// candidates are always re-confirmed in exact arithmetic, and
// comparisons within DefaultLogGuard must fall back to exact num.Num
// (see Rank).
//
// A LogCoster reuses internal scratch state and is NOT safe for
// concurrent use; give each goroutine its own.
type LogCoster struct {
	in   *Instance
	logT []float64
	logS [][]float64
	logW [][]float64
	// wOrder[v] lists the candidate inners u sorted ascending by the
	// *exact* W[v][u] (stable), so min_{u∈X} W[v][u] is the first entry
	// present in X — and the fast path picks the same access path the
	// exact evaluator does.
	wOrder [][]int32
	inSet  []bool // scratch membership for one evaluation
}

// NewLogCoster precomputes the log₂ tables for in. Cost: O(n²) exact
// Log2 calls, once per optimization run.
func NewLogCoster(in *Instance) *LogCoster {
	n := in.N()
	lc := &LogCoster{
		in:     in,
		logT:   make([]float64, n),
		logS:   make([][]float64, n),
		logW:   make([][]float64, n),
		wOrder: make([][]int32, n),
		inSet:  make([]bool, n),
	}
	for v := 0; v < n; v++ {
		lc.logT[v] = in.T[v].Log2()
		lc.logS[v] = make([]float64, n)
		lc.logW[v] = make([]float64, n)
		us := make([]int32, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				lc.logS[v][u] = in.S[v][u].Log2()
				lc.logW[v][u] = in.W[v][u].Log2()
				us = append(us, int32(u))
			}
		}
		sort.SliceStable(us, func(a, b int) bool {
			return in.W[v][us[a]].Less(in.W[v][us[b]])
		})
		lc.wOrder[v] = us
	}
	return lc
}

// logAdd returns log₂(2^a + 2^b), the numerically stable way.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log2(1+math.Exp2(b-a))
}

// CostLog2 returns log₂ C(z) (−Inf for the zero cost of a single
// relation). It allocates nothing and records one FastEval.
func (lc *LogCoster) CostLog2(z Sequence) float64 {
	lc.in.stats.FastEval()
	inSet := lc.inSet
	for i := range inSet {
		inSet[i] = false
	}
	total := math.Inf(-1)
	logSize := 0.0
	for i, v := range z {
		if i > 0 {
			var hw float64
			for _, u := range lc.wOrder[v] {
				if inSet[u] {
					hw = lc.logW[v][u]
					break
				}
			}
			total = logAdd(total, logSize+hw)
		}
		f := lc.logT[v]
		for _, u := range z[:i] {
			f += lc.logS[v][u]
		}
		logSize += f
		inSet[v] = true
	}
	return total
}

// Rank compares C(a) against C(b), returning −1, 0 or +1 exactly as
// the exact comparison would. Decisive log-domain margins (beyond
// DefaultLogGuard) are trusted; anything inside the band is re-decided
// with exact num.Num costs, recording a Fallback.
func (lc *LogCoster) Rank(a, b Sequence) int {
	d := lc.CostLog2(a) - lc.CostLog2(b)
	if !math.IsNaN(d) && math.Abs(d) > DefaultLogGuard {
		if d < 0 {
			return -1
		}
		return 1
	}
	lc.in.stats.Fallback()
	return lc.in.Cost(a).Cmp(lc.in.Cost(b))
}
