package classify

// The competitive-ratio harness: the router's quality contract,
// measured, asserted and pinned as a regression baseline.
//
// For every workload family the harness runs each instance twice
// through the supervised engine — once with the routed ensemble, once
// with the full three-tier ensemble — and compares certified best
// costs and wall times. The acceptance criteria it enforces:
//
//	(a) routed cost ≤ (1+ε)·full cost on every recognized family;
//	(b) cliquered adversarial instances always reach the certified
//	    exact tier (the routed run returns a certified-exact result
//	    whose cost equals the full run's);
//	(c) routed p50 wall time strictly below full-ensemble p50 on the
//	    greedy-sufficient families.
//
// Every optimizer in a recognized family's routed ensemble is
// deterministic and the full run's winner is the exact DP optimum, so
// the measured ratios are exactly reproducible; testdata/
// ratio_baseline.json pins them (refresh with -update). Unrecognized
// non-adversarial families (sparse, general) run the identical full
// ensemble on both sides, so their "ratio" is two independent races
// between the same stochastic optimizers — it is recorded in the
// baseline for the record but not pinned, and no ordering between the
// two runs is asserted.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"approxqo/internal/engine"
	"approxqo/internal/num"
	"approxqo/internal/qon"
	"approxqo/internal/workload"
)

var update = flag.Bool("update", false, "rewrite testdata/ratio_baseline.json with measured ratios")

// Epsilon is the competitive-ratio slack asserted on recognized
// families: routed cost ≤ (1+Epsilon)·full cost. The measured worst
// case (chain-selective) is ≈ 1.007.
const Epsilon = 0.02

const (
	ratioN     = 12
	ratioSeeds = 8
)

type familyResult struct {
	Class         string  `json:"class"`
	Recognized    bool    `json:"recognized"`
	WorstRatioL2  float64 `json:"worst_ratio_log2"`
	RoutedP50MS   float64 `json:"-"`
	FullP50MS     float64 `json:"-"`
	RoutedNames   int     `json:"routed_optimizers"`
	ExactReached  bool    `json:"exact_reached"`
	GreedyEnough  bool    `json:"greedy_sufficient"`
	SeedsMeasured int     `json:"seeds"`
}

type ratioBaseline struct {
	Epsilon  float64                 `json:"epsilon"`
	N        int                     `json:"n"`
	Families map[string]familyResult `json:"families"`
}

func runEnsemble(t *testing.T, eng *engine.Engine, in *qon.Instance, d Decision, seed int64) *engine.Report {
	t.Helper()
	optimizers, _ := Ensemble(d, in.N(), seed)
	rep, err := eng.Run(ctx, in, optimizers...)
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if rep.Best == nil {
		t.Fatalf("no certified best for class %s", d.Class)
	}
	return rep
}

func median(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return ys[len(ys)/2]
}

func TestCompetitiveRatio(t *testing.T) {
	families := []string{"skewed-star", "chain-selective", "sparse-em", "cliquered-yes", "cliquered-no"}
	eng := engine.New()
	onePlusEps := num.FromFloat64(1 + Epsilon)
	results := map[string]familyResult{}

	for _, family := range families {
		var routedWalls, fullWalls []float64
		res := familyResult{ExactReached: true, GreedyEnough: true}
		seeds := int64(ratioSeeds)
		if family == "cliquered-yes" || family == "cliquered-no" {
			// The promise pair is deterministic in n; one seed suffices.
			seeds = 1
		}
		for seed := int64(0); seed < seeds; seed++ {
			spec := &workload.Spec{Shape: family, N: ratioN, Seed: seed}
			in, err := spec.Generate()
			if err != nil {
				t.Fatalf("%s seed %d: %v", family, seed, err)
			}
			d := Route(Extract(in))
			res.Class, res.Recognized = string(d.Class), d.Recognized

			full := Decision{Class: d.Class, Tiers: AllTiers(), BudgetFrac: 1}
			routedRep := runEnsemble(t, eng, in, d, 100+seed)
			fullRep := runEnsemble(t, eng, in, full, 100+seed)
			routedWalls = append(routedWalls, routedRep.WallMS)
			fullWalls = append(fullWalls, fullRep.WallMS)
			res.RoutedNames = len(routedRep.Runs)
			res.SeedsMeasured++

			routedCost, fullCost := routedRep.Best.Cost, fullRep.Best.Cost
			deterministic := d.Recognized || d.Class == ClassAdversarial
			if deterministic && routedCost.Less(fullCost) {
				// Only meaningful where the full run's winner is the
				// certified exact optimum: a reduced routed ensemble
				// beating it means the full run lost a certified result.
				// On sparse/general both sides are the same stochastic
				// ensemble and either may win.
				t.Fatalf("%s seed %d: routed cost below the full ensemble's — the full run lost a certified result (routed 2^%.3f, full 2^%.3f)",
					family, seed, routedRep.Best.CostLog2, fullRep.Best.CostLog2)
			}
			// Criterion (a): routed ≤ (1+ε)·full, in exact arithmetic.
			if d.Recognized && !routedCost.LessEq(fullCost.Mul(onePlusEps)) {
				t.Errorf("%s seed %d: routed cost 2^%.4f exceeds (1+ε)·full (full 2^%.4f, ε=%g)",
					family, seed, routedRep.Best.CostLog2, fullRep.Best.CostLog2, Epsilon)
			}
			if excess := routedRep.Best.CostLog2 - fullRep.Best.CostLog2; excess > res.WorstRatioL2 {
				res.WorstRatioL2 = excess
			}
			res.ExactReached = res.ExactReached && routedRep.Best.Exact
			res.GreedyEnough = res.GreedyEnough && routedCost.Equal(fullCost)

			// Criterion (b): adversarial instances reach the certified
			// exact tier through the routed ensemble.
			if d.Class == ClassAdversarial {
				if d.Tiers[0] != TierExact {
					t.Fatalf("%s: routed away from the exact tier: %v", family, d.Tiers)
				}
				if !routedRep.Best.Exact || !routedRep.Best.Certified {
					t.Errorf("%s seed %d: routed adversarial result not certified exact (exact=%v certified=%v)",
						family, seed, routedRep.Best.Exact, routedRep.Best.Certified)
				}
				if !routedCost.Equal(fullCost) {
					t.Errorf("%s seed %d: routed adversarial cost differs from full (2^%.4f vs 2^%.4f)",
						family, seed, routedRep.Best.CostLog2, fullRep.Best.CostLog2)
				}
			}
		}
		res.RoutedP50MS, res.FullP50MS = median(routedWalls), median(fullWalls)
		// Criterion (c): the point of routing — recognized families are
		// served strictly faster than the full ensemble at p50.
		if res.Recognized && res.RoutedP50MS >= res.FullP50MS {
			t.Errorf("%s: routed p50 %.2fms not below full p50 %.2fms", family, res.RoutedP50MS, res.FullP50MS)
		}
		t.Logf("%-16s class=%-15s recognized=%-5v worst_ratio=2^%.4f routed_p50=%.2fms full_p50=%.2fms",
			family, res.Class, res.Recognized, res.WorstRatioL2, res.RoutedP50MS, res.FullP50MS)
		results[family] = res
	}

	checkRatioBaseline(t, results)
}

// checkRatioBaseline pins the measured per-family worst ratios: a
// routing or optimizer change that degrades a family's competitive
// ratio fails here even while it still clears ε. Wall times are
// machine-dependent and are not pinned.
func checkRatioBaseline(t *testing.T, results map[string]familyResult) {
	path := filepath.Join("testdata", "ratio_baseline.json")
	if *update {
		doc := ratioBaseline{Epsilon: Epsilon, N: ratioN, Families: results}
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading ratio baseline (run with -update to pin): %v", err)
	}
	var base ratioBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	// On recognized and adversarial families the measured ratios are
	// deterministic; the slack only absorbs float64 log₂ conversion
	// noise. Unrecognized non-adversarial families race the same
	// stochastic ensemble against itself — their recorded ratio is
	// informational, not a pinned contract.
	const slack = 1e-6
	for family, want := range base.Families {
		got, ok := results[family]
		if !ok {
			t.Errorf("baseline family %q not measured", family)
			continue
		}
		pinned := want.Recognized || want.Class == string(ClassAdversarial)
		if pinned && got.WorstRatioL2 > want.WorstRatioL2+slack {
			t.Errorf("%s: worst ratio regressed: 2^%.6f, baseline 2^%.6f (re-pin intentional changes with -update)",
				family, got.WorstRatioL2, want.WorstRatioL2)
		}
		if got.Recognized != want.Recognized {
			t.Errorf("%s: recognized=%v, baseline %v", family, got.Recognized, want.Recognized)
		}
		if got.Class != want.Class {
			t.Errorf("%s: class=%q, baseline %q", family, got.Class, want.Class)
		}
	}
	for family := range results {
		if _, ok := base.Families[family]; !ok {
			t.Errorf("family %q missing from baseline (re-pin with -update)", family)
		}
	}
}
