// Package classify is the adaptive optimizer router: cheap structural
// feature extraction over a QO_N instance feeding a rule-based decision
// about which ensemble tiers to run and how much of the request budget
// they deserve.
//
// The rules encode the paper's complexity landscape. Its hardness
// constructions (the cliquered f_N reduction, the e(m)-constrained
// sparse graphs of Theorems 16/17) are statistics-free: uniform sizes
// and uniform selectivities carry no signal a heuristic can exploit,
// and every polynomial heuristic can be off by α^Θ(n) — those shapes
// must reach the certified exact tier. Conversely, when selectivity is
// visible in the query structure (a star around a skewed fact table
// with key–foreign-key selectivities, a chain with planted strongly
// selective edges), the greedy tier alone is empirically within ε of
// exact — the "When Greedy Beats Optimal" regime — and running the
// exponential tier is wasted budget. The competitive-ratio harness
// (ratio_test.go) holds the router to those claims per workload family.
//
// Every feature is a function of degree multisets, edge counts and
// value multisets, so features are invariant under vertex relabeling by
// construction (property-tested against qon.Relabel).
package classify

import (
	"fmt"
	"math"
	"sort"

	"approxqo/internal/engine"
	"approxqo/internal/opt"
	"approxqo/internal/qon"
)

// Thresholds of the rule base. Exported so the docs, tests and DESIGN
// record reference the live values.
const (
	// SelectiveGapBits is the minimum log₂ gap between the selective
	// group and the mild rest for the planted-selectivity signal to
	// count as visible (chain-selective plants a ≥ 2^18 separation).
	SelectiveGapBits = 8.0
	// SelectiveFloorLog2 is the ceiling (in log₂) the selective group
	// must sit below: an edge is "strongly selective" only under 2^−10.
	SelectiveFloorLog2 = -10.0
	// SkewBits is the minimum log₂ cardinality spread for a star hub to
	// count as skewed (the skewed-star default hub factor is 2^10).
	SkewBits = 8.0
	// KeyJoinMaxSelLog2 is the log₂ ceiling every star edge must stay
	// under for the star to look key–foreign-key joined.
	KeyJoinMaxSelLog2 = -4.0
	// distinctEps separates two log₂ values when counting distinct
	// cardinalities/selectivities; exact duplicates (planted or uniform
	// values) compare equal, independent random draws never collide.
	distinctEps = 1e-9
)

// Features is the relabel-invariant structural summary the router
// decides on.
type Features struct {
	N     int `json:"n"`
	Edges int `json:"edges"`
	// Density is 2m / n(n−1).
	Density   float64 `json:"density"`
	MinDegree int     `json:"min_degree"`
	MaxDegree int     `json:"max_degree"`

	IsChain  bool `json:"is_chain"`
	IsStar   bool `json:"is_star"`
	IsCycle  bool `json:"is_cycle"`
	IsClique bool `json:"is_clique"`

	// DistinctCards / DistinctSels / DistinctCosts count distinct
	// relation sizes, edge selectivities and edge access costs. All
	// three collapsing to ≤ 1 is the statistics-free signature of the
	// f_N reduction's uniform instances.
	DistinctCards int `json:"distinct_cards"`
	DistinctSels  int `json:"distinct_sels"`
	DistinctCosts int `json:"distinct_costs"`
	// Uniform marks that statistics-free signature.
	Uniform bool `json:"uniform"`

	// CardSpreadLog2 is log₂(max tᵢ / min tᵢ) — the weight-skew signal.
	CardSpreadLog2 float64 `json:"card_spread_log2"`
	// HubSkewLog2, set only for stars, is log₂(t_hub / max other tᵢ):
	// positive when the hub is the fact table, ≥ SkewBits when it
	// dominates every dimension the way skewed-star builds it.
	HubSkewLog2 float64 `json:"hub_skew_log2,omitempty"`
	// MaxSelLog2 is log₂ of the largest edge selectivity (0 when every
	// edge keeps everything, strongly negative when all edges filter).
	MaxSelLog2 float64 `json:"max_sel_log2"`
	// SelGapLog2 is the widest gap between adjacent sorted edge log₂
	// selectivities; SelectiveEdges counts the edges below that gap
	// when the gap is ≥ SelectiveGapBits wide and the group below it
	// sits under SelectiveFloorLog2 — i.e. when the planted-selective-
	// edge signal is visible without statistics.
	SelGapLog2     float64 `json:"sel_gap_log2"`
	SelectiveEdges int     `json:"selective_edges"`
}

// Extract computes the feature vector. It reads only degree counts and
// the S/T/W value multisets — O(n²) scalar work, no cost evaluations —
// so extraction stays far under any request budget (BenchmarkRegClassify
// pins it).
func Extract(in *qon.Instance) Features {
	n := in.N()
	f := Features{N: n, Edges: in.Q.EdgeCount()}
	if n > 1 {
		f.Density = float64(2*f.Edges) / float64(n*(n-1))
	}
	deg1, deg2 := 0, 0
	f.MinDegree = n
	for v := 0; v < n; v++ {
		d := in.Q.Degree(v)
		if d < f.MinDegree {
			f.MinDegree = d
		}
		if d > f.MaxDegree {
			f.MaxDegree = d
		}
		switch d {
		case 1:
			deg1++
		case 2:
			deg2++
		}
	}
	// Topology predicates from degree multisets + edge count: all
	// invariant under relabeling.
	connectedTree := f.Edges == n-1 && in.Q.IsConnected()
	f.IsChain = n >= 2 && connectedTree && (n == 2 || (deg1 == 2 && deg2 == n-2))
	f.IsStar = n >= 3 && connectedTree && deg1 == n-1 && f.MaxDegree == n-1
	f.IsCycle = n >= 3 && f.Edges == n && deg2 == n && in.Q.IsConnected()
	f.IsClique = f.Edges == n*(n-1)/2

	cards := make([]float64, n)
	for i, t := range in.T {
		cards[i] = t.Log2()
	}
	sort.Float64s(cards)
	f.DistinctCards = countDistinct(cards)
	f.CardSpreadLog2 = cards[n-1] - cards[0]
	if f.IsStar {
		// The hub is the unique max-degree vertex (relabel-invariant);
		// its skew over the largest spoke is the fact-table signal.
		maxOther := math.Inf(-1)
		hub := 0.0
		for v := 0; v < n; v++ {
			lg := in.T[v].Log2()
			if in.Q.Degree(v) == n-1 {
				hub = lg
			} else if lg > maxOther {
				maxOther = lg
			}
		}
		f.HubSkewLog2 = hub - maxOther
	}

	sels := make([]float64, 0, f.Edges)
	costs := make([]float64, 0, f.Edges)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if !in.Q.HasEdge(i, j) {
				continue
			}
			sels = append(sels, in.S[i][j].Log2())
			costs = append(costs, in.W[i][j].Log2(), in.W[j][i].Log2())
		}
	}
	sort.Float64s(sels)
	sort.Float64s(costs)
	f.DistinctSels = countDistinct(sels)
	f.DistinctCosts = countDistinct(costs)
	if len(sels) > 0 {
		f.MaxSelLog2 = sels[len(sels)-1]
		gapAt := -1
		for i := 1; i < len(sels); i++ {
			if g := sels[i] - sels[i-1]; g > f.SelGapLog2 {
				f.SelGapLog2, gapAt = g, i
			}
		}
		if f.SelGapLog2 >= SelectiveGapBits && gapAt > 0 && sels[gapAt-1] <= SelectiveFloorLog2 {
			f.SelectiveEdges = gapAt
		}
	}
	f.Uniform = f.DistinctCards <= 1 && f.DistinctSels <= 1 && f.DistinctCosts <= 1
	return f
}

func countDistinct(sorted []float64) int {
	if len(sorted) == 0 {
		return 0
	}
	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] > distinctEps {
			distinct++
		}
	}
	return distinct
}

// Class names the population the router believes the instance belongs
// to.
type Class string

const (
	// ClassAdversarial is the statistics-free uniform signature of the
	// f_N hardness reduction: no heuristic carries a guarantee, only
	// the certified exact tier is safe.
	ClassAdversarial Class = "adversarial"
	// ClassStarSkewed is a star around a skewed hub with key–foreign-
	// key selectivities on every spoke: greedy-sufficient.
	ClassStarSkewed Class = "star-skewed"
	// ClassChainSelective is a chain with a visible planted-selective-
	// edge group: greedy-sufficient.
	ClassChainSelective Class = "chain-selective"
	// ClassSparse is an e(m)-budget sparse graph without a recognized
	// greedy-sufficient pattern — the Theorem 16/17 regime where
	// hardness hides, so the full ensemble runs.
	ClassSparse Class = "sparse"
	// ClassGeneral is everything else: full ensemble.
	ClassGeneral Class = "general"
)

// Tier is one slice of the ensemble, in increasing cost:
// greedy (deterministic polynomial), local (randomized local search),
// exact (exponential certified DP/enumeration).
type Tier string

const (
	TierGreedy Tier = "greedy"
	TierLocal  Tier = "local"
	TierExact  Tier = "exact"
)

// AllTiers is the full-ensemble tier set in default priority order.
func AllTiers() []Tier { return []Tier{TierGreedy, TierLocal, TierExact} }

// Decision is the router's verdict: which tiers run, in priority order
// (the degradation ladder sheds from the end, so the first tier is the
// one the classifier says matters most), and what fraction of the
// request budget the reduced ensemble deserves.
type Decision struct {
	Class Class `json:"class"`
	// Recognized marks a greedy-sufficient claim: the competitive-ratio
	// harness asserts routed cost ≤ (1+ε)·full on recognized classes.
	Recognized bool `json:"recognized"`
	// Tiers run, most-important first.
	Tiers []Tier `json:"tiers"`
	// Degraded lists tiers shed by the load ladder (reported as
	// "degraded" skips, distinct from "routing" skips).
	Degraded []Tier `json:"degraded,omitempty"`
	// BudgetFrac scales the request deadline for reduced ensembles.
	BudgetFrac float64  `json:"budget_frac"`
	Reason     string   `json:"reason"`
	Features   Features `json:"features"`
}

// Route maps a feature vector to a routing decision. It is a pure
// function: equal features always produce equal decisions.
func Route(f Features) Decision {
	d := Decision{BudgetFrac: 1, Features: f}
	switch {
	case f.Uniform && f.N >= 4:
		// Statistics-free instance: the f_N signature. Exact first — it
		// is the only tier with a guarantee here, so under load it is
		// the last thing to shed. Local search spends budget chasing a
		// surface with no exploitable statistics; route it away.
		d.Class = ClassAdversarial
		d.Tiers = []Tier{TierExact, TierGreedy}
		d.Reason = fmt.Sprintf("uniform sizes/selectivities/costs (statistics-free, f_N signature): only the certified exact tier carries a guarantee; %d vertices, density %.2f", f.N, f.Density)
	case f.IsChain && f.SelectiveEdges >= 1:
		d.Class = ClassChainSelective
		d.Recognized = true
		d.Tiers = []Tier{TierGreedy}
		d.BudgetFrac = 0.25
		d.Reason = fmt.Sprintf("chain with %d planted selective edge(s) visible across a %.1f-bit gap: greedy tier sufficient", f.SelectiveEdges, f.SelGapLog2)
	case f.IsStar && f.HubSkewLog2 >= SkewBits && f.MaxSelLog2 <= KeyJoinMaxSelLog2:
		d.Class = ClassStarSkewed
		d.Recognized = true
		d.Tiers = []Tier{TierGreedy}
		d.BudgetFrac = 0.25
		d.Reason = fmt.Sprintf("star whose hub dominates every dimension by %.1f bits with key-join selectivities (max 2^%.1f): greedy tier sufficient", f.HubSkewLog2, f.MaxSelLog2)
	case f.Edges <= sparseEdgeBudget(f.N):
		// Sparse e(m)-budget graphs are where Theorems 16/17 put the
		// hardness — without a recognized pattern, run everything.
		d.Class = ClassSparse
		d.Tiers = AllTiers()
		d.Reason = fmt.Sprintf("sparse graph (%d edges ≤ e(m) budget %d) without a recognized pattern: full ensemble, exact tier sheds first", f.Edges, sparseEdgeBudget(f.N))
	default:
		d.Class = ClassGeneral
		d.Tiers = AllTiers()
		d.Reason = fmt.Sprintf("no recognized pattern (density %.2f): full ensemble, exact tier sheds first", f.Density)
	}
	return d
}

// sparseEdgeBudget is m + ⌈m^¾⌉ — the top of the §6 e(m) range the
// sparse class covers (τ = 0.5 generators sit well inside it).
func sparseEdgeBudget(n int) int {
	return n + int(math.Ceil(math.Pow(float64(n), 0.75)))
}

// Degrade sheds the decision's least-important tier (the last one),
// keeping at least one. The ladder calls this instead of hard-coding
// "drop exact": for adversarial instances the classifier keeps the
// exact tier and sheds the heuristics instead.
func (d Decision) Degrade() Decision {
	if len(d.Tiers) <= 1 {
		return d
	}
	last := d.Tiers[len(d.Tiers)-1]
	nd := d
	nd.Tiers = append([]Tier(nil), d.Tiers[:len(d.Tiers)-1]...)
	nd.Degraded = append(append([]Tier(nil), d.Degraded...), last)
	nd.Reason = d.Reason + fmt.Sprintf("; load ladder shed the %s tier", last)
	return nd
}

// Reduced reports whether the decision runs fewer tiers than the full
// ensemble (by routing or degradation). The server refuses to cache
// reduced results unless they are certified exact.
func (d Decision) Reduced() bool { return len(d.Tiers) < len(AllTiers()) }

func (d Decision) has(t Tier) bool {
	for _, x := range d.Tiers {
		if x == t {
			return true
		}
	}
	return false
}

func (d Decision) shedBy(t Tier) string {
	for _, x := range d.Degraded {
		if x == t {
			return engine.SkipDegraded
		}
	}
	return engine.SkipRouting
}

// Ensemble materializes the decision into optimizers for an n-relation
// instance, plus one SkipRecord per optimizer the decision routed away
// (reason "routing" or "degraded") or that is out of its size range
// (reason "out_of_range"). The union across all three tiers is exactly
// the server's historical full-rung ensemble, so "route with every
// tier" and "no routing" run identical optimizer sets. Deterministic in
// (d, n, seed).
func Ensemble(d Decision, n int, seed int64) ([]opt.Optimizer, []engine.SkipRecord) {
	var optimizers []opt.Optimizer
	var skipped []engine.SkipRecord
	take := func(t Tier, os ...opt.Optimizer) {
		if d.has(t) {
			optimizers = append(optimizers, os...)
			return
		}
		reason := d.shedBy(t)
		for _, o := range os {
			skipped = append(skipped, engine.SkipRecord{
				Name: o.Name(), Reason: reason,
				Detail: fmt.Sprintf("%s tier not routed for class %s", t, d.Class),
			})
		}
	}
	take(TierGreedy,
		opt.NewGreedy(opt.GreedyMinSize, opt.WithSeed(seed)),
		opt.NewGreedy(opt.GreedyMinCost, opt.WithSeed(seed)),
		opt.NewKBZ(opt.WithSeed(seed)))
	take(TierLocal,
		opt.NewAnnealing(opt.WithSeed(seed)),
		opt.NewRandomSampler(opt.WithSeed(seed+1)),
		opt.NewIterativeImprovement(opt.WithSeed(seed), opt.WithRestarts(5)))
	// The exact tier is additionally size-gated: out-of-range members
	// are reported as such only when the tier was routed at all.
	var exact []opt.Optimizer
	var exactSkips []engine.SkipRecord
	gate := func(o opt.Optimizer, max int) {
		if n <= max {
			exact = append(exact, o)
		} else {
			exactSkips = append(exactSkips, engine.SkipRecord{
				Name: o.Name(), Reason: engine.SkipOutOfRange,
				Detail: fmt.Sprintf("n=%d above cap %d", n, max),
			})
		}
	}
	gate(opt.NewExhaustive(), opt.MaxExhaustiveN)
	gate(opt.NewDP(), opt.DefaultMaxDPN)
	gate(opt.NewDPNoCross(), opt.DefaultMaxDPN)
	gate(opt.NewDPParallel(), opt.DefaultMaxDPN+2)
	if d.has(TierExact) {
		optimizers = append(optimizers, exact...)
		skipped = append(skipped, exactSkips...)
	} else {
		reason := d.shedBy(TierExact)
		for _, o := range exact {
			skipped = append(skipped, engine.SkipRecord{
				Name: o.Name(), Reason: reason,
				Detail: fmt.Sprintf("exact tier not routed for class %s", d.Class),
			})
		}
	}
	if len(optimizers) == 0 {
		// An exact-only decision on an instance past every exact cap:
		// fall back to the greedy tier rather than serve nothing.
		optimizers = append(optimizers,
			opt.NewGreedy(opt.GreedyMinSize, opt.WithSeed(seed)),
			opt.NewGreedy(opt.GreedyMinCost, opt.WithSeed(seed)),
			opt.NewKBZ(opt.WithSeed(seed)))
		skipped = append(skipped, exactSkips...)
	}
	return optimizers, skipped
}
