package classify

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"approxqo/internal/engine"
	"approxqo/internal/qon"
	"approxqo/internal/workload"
)

var ctx = context.Background()

func familyInstance(t *testing.T, shape string, n int, seed int64) *qon.Instance {
	t.Helper()
	spec := &workload.Spec{Shape: shape, N: n, Seed: seed}
	in, err := spec.Generate()
	if err != nil {
		t.Fatalf("generate %s: %v", shape, err)
	}
	return in
}

func TestRouteFamilies(t *testing.T) {
	cases := []struct {
		shape      string
		wantClass  Class
		recognized bool
		firstTier  Tier
	}{
		{"skewed-star", ClassStarSkewed, true, TierGreedy},
		{"chain-selective", ClassChainSelective, true, TierGreedy},
		{"sparse-em", ClassSparse, false, TierGreedy},
		{"cliquered-yes", ClassAdversarial, false, TierExact},
		{"cliquered-no", ClassAdversarial, false, TierExact},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 10; seed++ {
			in := familyInstance(t, tc.shape, 12, seed)
			d := Route(Extract(in))
			if d.Class != tc.wantClass {
				t.Errorf("%s seed %d: class %q, want %q (reason %q)", tc.shape, seed, d.Class, tc.wantClass, d.Reason)
			}
			if d.Recognized != tc.recognized {
				t.Errorf("%s seed %d: recognized=%v, want %v", tc.shape, seed, d.Recognized, tc.recognized)
			}
			if len(d.Tiers) == 0 || d.Tiers[0] != tc.firstTier {
				t.Errorf("%s seed %d: tiers %v, want first %q", tc.shape, seed, d.Tiers, tc.firstTier)
			}
		}
	}
}

// TestRouteAdversarialNeverLosesExact is acceptance criterion (b): at
// every promise-pair size, both cliquered sides route with the exact
// tier first — so neither routing nor the degradation ladder can take
// a hardness instance away from the certified exact optimizers.
func TestRouteAdversarialNeverLosesExact(t *testing.T) {
	for _, shape := range []string{"cliquered-yes", "cliquered-no"} {
		for n := 4; n <= 16; n++ {
			in := familyInstance(t, shape, n, 1)
			d := Route(Extract(in))
			if d.Class != ClassAdversarial {
				t.Fatalf("%s n=%d: class %q, want adversarial", shape, n, d.Class)
			}
			if d.Tiers[0] != TierExact {
				t.Fatalf("%s n=%d: first tier %q, want exact", shape, n, d.Tiers[0])
			}
			// Degradation sheds from the end: the exact tier survives
			// every rung.
			deg := d.Degrade()
			if deg.Tiers[0] != TierExact {
				t.Fatalf("%s n=%d: degraded decision lost the exact tier: %v", shape, n, deg.Tiers)
			}
			names := ensembleNames(deg, n, 1)
			if !contains(names, "subset-dp") {
				t.Fatalf("%s n=%d: degraded routed ensemble has no exact DP: %v", shape, n, names)
			}
		}
	}
}

func TestRoutePlainShapesNotRecognized(t *testing.T) {
	// Plain topologies carry no visible selectivity signal: the probe
	// measured greedy up to 2^9.6 off exact on plain chains, so the
	// router must not claim them. (Topology alone is not the signal —
	// selectivity visibility is.)
	for _, shape := range []workload.Shape{workload.Chain, workload.Star, workload.Clique, workload.Random} {
		for seed := int64(0); seed < 10; seed++ {
			in, err := workload.Generate(workload.Params{N: 12, Shape: shape, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			d := Route(Extract(in))
			if d.Recognized {
				t.Errorf("plain %s seed %d recognized as %q: %s", shape, seed, d.Class, d.Reason)
			}
			if !d.has(TierExact) {
				t.Errorf("plain %s seed %d routed away from the exact tier: %v", shape, seed, d.Tiers)
			}
		}
	}
}

func TestDegradeOrder(t *testing.T) {
	d := Route(Extract(familyInstance(t, "sparse-em", 12, 3)))
	if !reflect.DeepEqual(d.Tiers, AllTiers()) {
		t.Fatalf("sparse tiers %v, want all", d.Tiers)
	}
	deg := d.Degrade()
	if !reflect.DeepEqual(deg.Tiers, []Tier{TierGreedy, TierLocal}) {
		t.Fatalf("degraded tiers %v, want [greedy local]", deg.Tiers)
	}
	if !reflect.DeepEqual(deg.Degraded, []Tier{TierExact}) {
		t.Fatalf("degraded record %v, want [exact]", deg.Degraded)
	}
	// Degrading to one tier is a fixed point: a request is never served
	// with an empty ensemble.
	one := deg.Degrade()
	if !reflect.DeepEqual(one.Tiers, []Tier{TierGreedy}) {
		t.Fatalf("twice-degraded tiers %v, want [greedy]", one.Tiers)
	}
	if got := one.Degrade(); !reflect.DeepEqual(got.Tiers, one.Tiers) {
		t.Fatalf("degrade of single tier changed it: %v", got.Tiers)
	}
}

func TestEnsembleSkipRecords(t *testing.T) {
	in := familyInstance(t, "chain-selective", 12, 0)
	d := Route(Extract(in))
	optimizers, skips := Ensemble(d, 12, 7)
	if len(optimizers) != 3 {
		t.Fatalf("greedy tier materialized %d optimizers, want 3", len(optimizers))
	}
	reasons := map[string]string{}
	for _, sk := range skips {
		reasons[sk.Name] = sk.Reason
	}
	// Every non-greedy ensemble member is accounted for: local tier and
	// in-range exact optimizers as routing skips (exhaustive is out of
	// range at n=12 under a non-exact route, so it is absent entirely).
	for _, name := range []string{"annealing", "random-sampler", "iterative-improvement", "subset-dp", "subset-dp-no-cross", "subset-dp-parallel"} {
		if reasons[name] != engine.SkipRouting {
			t.Errorf("%s skip reason %q, want %q (skips %v)", name, reasons[name], engine.SkipRouting, skips)
		}
	}
	if _, ok := reasons["exhaustive"]; ok {
		t.Errorf("exhaustive reported under a route that never considered it")
	}

	// The degraded adversarial decision reports heuristics as degraded
	// skips, not routing skips.
	dAdv := Route(Extract(familyInstance(t, "cliquered-yes", 8, 0))).Degrade()
	_, advSkips := Ensemble(dAdv, 8, 7)
	got := map[string]string{}
	for _, sk := range advSkips {
		got[sk.Name] = sk.Reason
	}
	if got["greedy-min-cost"] != engine.SkipDegraded {
		t.Errorf("degraded adversarial greedy skip reason %q, want %q", got["greedy-min-cost"], engine.SkipDegraded)
	}
	if got["annealing"] != engine.SkipRouting {
		t.Errorf("adversarial local skip reason %q, want %q", got["annealing"], engine.SkipRouting)
	}
}

func TestEnsembleOutOfRangeFallback(t *testing.T) {
	// An exact-only decision past every exact cap must still serve an
	// ensemble: the greedy tier steps in, with out_of_range records.
	d := Decision{Class: ClassAdversarial, Tiers: []Tier{TierExact}}
	optimizers, skips := Ensemble(d, 30, 1)
	if len(optimizers) == 0 {
		t.Fatal("empty ensemble for out-of-range exact-only decision")
	}
	sawRange := false
	for _, sk := range skips {
		if sk.Reason == engine.SkipOutOfRange {
			sawRange = true
		}
	}
	if !sawRange {
		t.Fatalf("no out_of_range skip recorded: %v", skips)
	}
}

// TestFeaturesRelabelInvariant is the satellite property test: 200
// random relabelings per instance leave the feature vector — and hence
// the routing decision — bit-identical.
func TestFeaturesRelabelInvariant(t *testing.T) {
	shapes := []string{"skewed-star", "chain-selective", "sparse-em", "cliquered-yes", "cliquered-no", "chain", "star", "clique", "random"}
	rng := rand.New(rand.NewSource(42))
	for _, shape := range shapes {
		in := familyInstance(t, shape, 10, 5)
		base := Extract(in)
		baseD := Route(base)
		for trial := 0; trial < 200; trial++ {
			pi := rng.Perm(in.N())
			rel := qon.Relabel(in, pi)
			got := Extract(rel)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("%s trial %d: features changed under relabeling %v:\n got %+v\nwant %+v", shape, trial, pi, got, base)
			}
			if d := Route(got); !reflect.DeepEqual(d, baseD) {
				t.Fatalf("%s trial %d: decision changed under relabeling", shape, trial)
			}
		}
	}
}

// TestEnsembleDeterministic: for a fixed seed the materialized ensemble
// (by name, in order) is identical across calls.
func TestEnsembleDeterministic(t *testing.T) {
	in := familyInstance(t, "sparse-em", 12, 9)
	d := Route(Extract(in))
	a := ensembleNames(d, 12, 11)
	b := ensembleNames(d, 12, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("ensemble not deterministic: %v vs %v", a, b)
	}
}

func ensembleNames(d Decision, n int, seed int64) []string {
	optimizers, _ := Ensemble(d, n, seed)
	names := make([]string, len(optimizers))
	for i, o := range optimizers {
		names[i] = o.Name()
	}
	return names
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestTopologyFeatures(t *testing.T) {
	cases := []struct {
		shape workload.Shape
		check func(Features) bool
		desc  string
	}{
		{workload.Chain, func(f Features) bool { return f.IsChain && !f.IsStar && !f.IsCycle && !f.IsClique }, "chain"},
		{workload.Star, func(f Features) bool { return f.IsStar && !f.IsChain }, "star"},
		{workload.Cycle, func(f Features) bool { return f.IsCycle && !f.IsChain }, "cycle"},
		{workload.Clique, func(f Features) bool { return f.IsClique && f.Density == 1 }, "clique"},
	}
	for _, tc := range cases {
		in, err := workload.Generate(workload.Params{N: 9, Shape: tc.shape, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if f := Extract(in); !tc.check(f) {
			t.Errorf("%s: predicate failed: %+v", tc.desc, f)
		}
	}
}
