// Package stats provides the instrumentation counters shared by the
// cost models and optimizers: how many cost-function evaluations, DP
// subset expansions and local-search moves one optimization run
// performed. A *Stats is attached to a qon.Instance or qoh.Instance
// (see their WithStats methods) and incremented by the cost models
// themselves, so every optimizer — including ones written outside this
// repository — is measured without cooperating.
//
// All counters are atomic and every method is safe on a nil receiver,
// so instrumentation points never need to branch: an uninstrumented
// instance simply carries a nil *Stats and the increments are no-ops.
package stats

import "sync/atomic"

// Stats is a set of monotone counters for one optimization run. The
// zero value is ready to use. Safe for concurrent use; methods are
// no-ops on a nil receiver.
type Stats struct {
	costEvals atomic.Int64
	dpSubsets atomic.Int64
	moves     atomic.Int64
	fastEvals atomic.Int64
	fallbacks atomic.Int64
}

// CostEval records one evaluation of the cost function — a full join
// sequence costed, a DP extension candidate costed, or a QO_H
// decomposition solved for one candidate sequence.
func (s *Stats) CostEval() {
	if s != nil {
		s.costEvals.Add(1)
	}
}

// AddCostEvals records n cost-function evaluations at once (used by DP
// inner loops to batch the atomic per expanded state).
func (s *Stats) AddCostEvals(n int64) {
	if s != nil {
		s.costEvals.Add(n)
	}
}

// DPSubset records one dynamic-programming state (subset, split or
// pipeline interval) expanded.
func (s *Stats) DPSubset() {
	if s != nil {
		s.dpSubsets.Add(1)
	}
}

// Move records one local-search move attempted (annealing swap or
// reinsert, iterative-improvement exchange).
func (s *Stats) Move() {
	if s != nil {
		s.moves.Add(1)
	}
}

// FastEval records one log-domain (float64) cost evaluation — the
// Tier-1 fast path that ranks candidates without exact arithmetic.
// Exact evaluations keep going through CostEval, so the tier split is
// fast_evals vs cost_evals.
func (s *Stats) FastEval() {
	if s != nil {
		s.fastEvals.Add(1)
	}
}

// Fallback records one guard-band trigger: a log-domain comparison too
// close to call (|Δlog₂| within the guard band) that was re-decided in
// exact num.Num arithmetic.
func (s *Stats) Fallback() {
	if s != nil {
		s.fallbacks.Add(1)
	}
}

// Reset zeroes the counters in place with atomic stores, so a pooled
// sink can be reused across runs without copying the struct (Stats
// contains atomics and must not be assigned). Reset must not race
// writers: the engine only resets sinks whose runs have fully finished
// — a sink that might still be written by an abandoned goroutine is
// retained, never reset.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.costEvals.Store(0)
	s.dpSubsets.Store(0)
	s.moves.Store(0)
	s.fastEvals.Store(0)
	s.fallbacks.Store(0)
}

// Snapshot is a point-in-time copy of the counters, JSON-serializable
// for engine reports.
type Snapshot struct {
	CostEvals int64 `json:"cost_evals"`
	DPSubsets int64 `json:"dp_subsets,omitempty"`
	Moves     int64 `json:"moves,omitempty"`
	FastEvals int64 `json:"fast_evals,omitempty"`
	Fallbacks int64 `json:"fallbacks,omitempty"`
}

// Snapshot reads the counters. Safe while writers are still running (it
// is used to report on abandoned optimizers); a nil receiver yields a
// zero Snapshot.
//
// Each field is read atomically, but three separate loads are not one
// consistent cut: an optimizer still running during grace-period
// abandonment can increment costEvals between the costEvals and moves
// loads, yielding a snapshot that mixes two instants. Since every
// counter is monotone this can never under-report a finished run, but
// a mid-run snapshot could pair a newer costEvals with an older moves.
// To keep salvaged counters coherent, Snapshot double-reads until two
// consecutive reads agree (bounded, so a hot writer cannot live-lock
// the reporter); engine-level aggregates are additionally funneled
// through the trace.Registry by the supervisor goroutine alone, which
// is the single synchronized sink for cross-run metrics.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	prev := s.read()
	for tries := 0; tries < 3; tries++ {
		cur := s.read()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func (s *Stats) read() Snapshot {
	return Snapshot{
		CostEvals: s.costEvals.Load(),
		DPSubsets: s.dpSubsets.Load(),
		Moves:     s.moves.Load(),
		FastEvals: s.fastEvals.Load(),
		Fallbacks: s.fallbacks.Load(),
	}
}
