package stats

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestNilReceiverSafe(t *testing.T) {
	var s *Stats
	s.CostEval()
	s.AddCostEvals(10)
	s.DPSubset()
	s.Move()
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("nil Stats snapshot = %+v, want zero", snap)
	}
}

func TestConcurrentCounting(t *testing.T) {
	s := &Stats{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.CostEval()
				s.DPSubset()
				s.Move()
			}
			s.AddCostEvals(100)
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.CostEvals != 8*1100 || snap.DPSubsets != 8000 || snap.Moves != 8000 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestSnapshotJSON(t *testing.T) {
	s := &Stats{}
	s.CostEval()
	data, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CostEvals != 1 {
		t.Errorf("round-trip lost counts: %+v", back)
	}
}
