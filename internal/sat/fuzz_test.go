package sat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACS checks that the parser never panics and that whatever
// it accepts round-trips through WriteDIMACS into an equivalent formula.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 3 0\n-1 2 0\n")
	f.Add("c comment\np cnf 1 1\n1 0")
	f.Add("p cnf 0 0\n")
	f.Add("p cnf 2 1\n1 2")
	f.Add("garbage")
	f.Add("p cnf 9999 1\n1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, formula); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		back, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if back.NumVars != formula.NumVars || back.NumClauses() != formula.NumClauses() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				formula.NumVars, formula.NumClauses(), back.NumVars, back.NumClauses())
		}
		for i := range formula.Clauses {
			if len(formula.Clauses[i]) != len(back.Clauses[i]) {
				t.Fatalf("clause %d length changed", i)
			}
			for j := range formula.Clauses[i] {
				if formula.Clauses[i][j] != back.Clauses[i][j] {
					t.Fatalf("clause %d literal %d changed", i, j)
				}
			}
		}
	})
}
