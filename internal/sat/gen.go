package sat

import (
	"fmt"
	"math/rand"
)

// Random3SAT returns a uniform random 3-CNF formula with nv variables
// and nc clauses (three distinct variables per clause, random signs).
func Random3SAT(nv, nc int, seed int64) *Formula {
	if nv < 3 {
		panic("sat: Random3SAT needs at least 3 variables")
	}
	rng := rand.New(rand.NewSource(seed))
	f := New(nv)
	for i := 0; i < nc; i++ {
		f.AddClause(randomClause(nv, rng)...)
	}
	return f
}

// PlantedSatisfiable3SAT returns a random 3-CNF formula guaranteed to be
// satisfied by a hidden planted assignment, plus that assignment. Each
// clause is re-drawn until the planted assignment satisfies it.
func PlantedSatisfiable3SAT(nv, nc int, seed int64) (*Formula, Assignment) {
	if nv < 3 {
		panic("sat: PlantedSatisfiable3SAT needs at least 3 variables")
	}
	rng := rand.New(rand.NewSource(seed))
	planted := make(Assignment, nv+1)
	for v := 1; v <= nv; v++ {
		planted[v] = rng.Intn(2) == 1
	}
	f := New(nv)
	for i := 0; i < nc; i++ {
		for {
			c := randomClause(nv, rng)
			if planted.Satisfies(c) {
				f.AddClause(c...)
				break
			}
		}
	}
	return f, planted
}

// Unsatisfiable3SAT returns a small canonical unsatisfiable 3-CNF core
// (all eight sign patterns over three variables) optionally padded with
// extra random clauses over further variables.
func Unsatisfiable3SAT(extraVars, extraClauses int, seed int64) *Formula {
	nv := 3 + extraVars
	f := New(nv)
	for mask := 0; mask < 8; mask++ {
		c := make(Clause, 3)
		for b := 0; b < 3; b++ {
			v := Literal(b + 1)
			if mask&(1<<b) != 0 {
				v = v.Negate()
			}
			c[b] = v
		}
		f.AddClause(c...)
	}
	if extraClauses > 0 {
		if nv < 3 {
			panic("sat: not enough variables for padding")
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < extraClauses; i++ {
			f.AddClause(randomClause(nv, rng)...)
		}
	}
	return f
}

func randomClause(nv int, rng *rand.Rand) Clause {
	vars := rng.Perm(nv)[:3]
	c := make(Clause, 3)
	for j, v := range vars {
		lit := Literal(v + 1)
		if rng.Intn(2) == 0 {
			lit = lit.Negate()
		}
		c[j] = lit
	}
	return c
}

// Bound13 transforms f into an equisatisfiable 3-CNF formula in which
// every variable occurs in at most 13 clauses — the 3SAT(13) form the
// hardness chain starts from (Theorem 1 of the paper cites Arora's
// amplification; the classical occurrence-bounding construction below
// preserves satisfiability exactly).
//
// Every variable x with k > 3 occurrences is replaced by fresh copies
// x₁..x_k, one per occurrence, chained by the implication cycle
// (¬x₁∨x₂)(¬x₂∨x₃)…(¬x_k∨x₁), which forces all copies equal. Each copy
// then occurs in exactly 3 clauses (its original occurrence plus two
// cycle clauses), so the result is 3-bounded, hence 13-bounded.
func Bound13(f *Formula) *Formula {
	occ := make([][]int, f.NumVars+1) // clause indices touching each var
	for ci, c := range f.Clauses {
		seen := map[int]bool{}
		for _, l := range c {
			if !seen[l.Var()] {
				seen[l.Var()] = true
				occ[l.Var()] = append(occ[l.Var()], ci)
			}
		}
	}
	// Assign replacement variables.
	next := 1
	// replacement[v][ci] = fresh variable standing for v in clause ci.
	replacement := make([]map[int]int, f.NumVars+1)
	var cycles [][]int // each: the ordered fresh copies of one variable
	for v := 1; v <= f.NumVars; v++ {
		if len(occ[v]) <= 3 {
			// Few occurrences: keep a single (renumbered) variable.
			replacement[v] = map[int]int{}
			for _, ci := range occ[v] {
				replacement[v][ci] = next
			}
			if len(occ[v]) == 0 {
				// Unused variable: still reserve a slot to keep counts sane.
				replacement[v][-1] = next
			}
			next++
			continue
		}
		replacement[v] = map[int]int{}
		var copies []int
		for _, ci := range occ[v] {
			replacement[v][ci] = next
			copies = append(copies, next)
			next++
		}
		cycles = append(cycles, copies)
	}
	out := New(next - 1)
	for ci, c := range f.Clauses {
		nc := make(Clause, len(c))
		for j, l := range c {
			nv := Literal(replacement[l.Var()][ci])
			if !l.Positive() {
				nv = nv.Negate()
			}
			nc[j] = nv
		}
		out.AddClause(nc...)
	}
	for _, copies := range cycles {
		k := len(copies)
		for i := 0; i < k; i++ {
			out.AddClause(Literal(-copies[i]), Literal(copies[(i+1)%k]))
		}
	}
	if got := out.MaxOccurrences(); got > 13 {
		panic(fmt.Sprintf("sat: Bound13 produced %d occurrences", got))
	}
	return out
}
