package sat

// DPLL satisfiability solver with unit propagation and pure-literal
// elimination. Intended for the small-to-medium formulas the reduction
// experiments feed it; it is exact, not heuristic.

// Solve decides satisfiability of f. If satisfiable it also returns a
// satisfying assignment (length NumVars+1, index 0 unused).
func Solve(f *Formula) (sat bool, model Assignment) {
	s := &dpll{f: f, val: make([]int8, f.NumVars+1)}
	if !s.solve() {
		return false, nil
	}
	model = make(Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		model[v] = s.val[v] == 1 // unassigned variables default to false
	}
	return true, model
}

// Satisfiable is a convenience wrapper around Solve.
func Satisfiable(f *Formula) bool {
	sat, _ := Solve(f)
	return sat
}

type dpll struct {
	f   *Formula
	val []int8 // 0 unassigned, 1 true, -1 false
}

// litValue returns 1 if l is true, -1 if false, 0 if unassigned.
func (s *dpll) litValue(l Literal) int8 {
	v := s.val[l.Var()]
	if l.Positive() {
		return v
	}
	return -v
}

func (s *dpll) assign(l Literal) {
	if l.Positive() {
		s.val[l.Var()] = 1
	} else {
		s.val[l.Var()] = -1
	}
}

// clauseState classifies a clause under the current partial assignment:
// satisfied; or unsatisfied-with-k-free-literals, returning one free
// literal when k ≥ 1.
func (s *dpll) clauseState(c Clause) (satisfied bool, free int, anyFree Literal) {
	for _, l := range c {
		switch s.litValue(l) {
		case 1:
			return true, 0, 0
		case 0:
			free++
			anyFree = l
		}
	}
	return false, free, anyFree
}

// propagate applies unit propagation. It returns false on conflict and
// records the variables it assigned in trail.
func (s *dpll) propagate(trail *[]int) bool {
	for {
		progressed := false
		for _, c := range s.f.Clauses {
			satisfied, free, unit := s.clauseState(c)
			if satisfied {
				continue
			}
			switch free {
			case 0:
				return false // conflict: clause fully falsified
			case 1:
				s.assign(unit)
				*trail = append(*trail, unit.Var())
				progressed = true
			}
		}
		if !progressed {
			return true
		}
	}
}

// pureLiterals assigns variables that occur with only one polarity among
// not-yet-satisfied clauses.
func (s *dpll) pureLiterals(trail *[]int) {
	pos := make([]bool, s.f.NumVars+1)
	neg := make([]bool, s.f.NumVars+1)
	for _, c := range s.f.Clauses {
		if satisfied, _, _ := s.clauseState(c); satisfied {
			continue
		}
		for _, l := range c {
			if s.litValue(l) == 0 {
				if l.Positive() {
					pos[l.Var()] = true
				} else {
					neg[l.Var()] = true
				}
			}
		}
	}
	for v := 1; v <= s.f.NumVars; v++ {
		if s.val[v] != 0 || pos[v] == neg[v] {
			continue
		}
		if pos[v] {
			s.assign(Literal(v))
		} else {
			s.assign(Literal(-v))
		}
		*trail = append(*trail, v)
	}
}

func (s *dpll) undo(trail []int) {
	for _, v := range trail {
		s.val[v] = 0
	}
}

// chooseBranch picks an unassigned variable from the shortest unresolved
// clause (a simple MOM-style heuristic); 0 means every clause is
// satisfied.
func (s *dpll) chooseBranch() Literal {
	var best Literal
	bestLen := int(^uint(0) >> 1)
	for _, c := range s.f.Clauses {
		satisfied, free, anyFree := s.clauseState(c)
		if satisfied {
			continue
		}
		if free < bestLen {
			bestLen, best = free, anyFree
		}
	}
	return best
}

func (s *dpll) solve() bool {
	var trail []int
	if !s.propagate(&trail) {
		s.undo(trail)
		return false
	}
	s.pureLiterals(&trail)
	branch := s.chooseBranch()
	if branch == 0 {
		return true // all clauses satisfied
	}
	for _, lit := range []Literal{branch, branch.Negate()} {
		s.assign(lit)
		sub := []int{lit.Var()}
		if s.solve() {
			return true
		}
		s.undo(sub)
	}
	s.undo(trail)
	return false
}
