package sat

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestLiteral(t *testing.T) {
	l := Literal(-5)
	if l.Var() != 5 || l.Positive() {
		t.Error("negative literal misread")
	}
	if l.Negate() != Literal(5) || !l.Negate().Positive() {
		t.Error("Negate wrong")
	}
}

func TestFormulaBasics(t *testing.T) {
	f := New(3)
	f.AddClause(1, -2)
	f.AddClause(3)
	if f.NumClauses() != 2 || !f.Is3CNF() {
		t.Error("basic counts wrong")
	}
	a := Assignment{false, true, true, false}
	if !a.Satisfies(f.Clauses[0]) {
		t.Error("clause (x1 ∨ ¬x2) should be satisfied by x1=T")
	}
	if a.Satisfies(f.Clauses[1]) {
		t.Error("clause (x3) should be unsatisfied by x3=F")
	}
	if f.NumSatisfied(a) != 1 {
		t.Errorf("NumSatisfied = %d, want 1", f.NumSatisfied(a))
	}
	c := f.Clone()
	c.AddClause(-1)
	if f.NumClauses() != 2 {
		t.Error("Clone shares clause storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid literal did not panic")
		}
	}()
	f.AddClause(4)
}

func TestMaxOccurrences(t *testing.T) {
	f := New(3)
	f.AddClause(1, 2)
	f.AddClause(1, -2)
	f.AddClause(-1, 3)
	f.AddClause(1, 1, 1) // multiplicity within a clause counts once
	if got := f.MaxOccurrences(); got != 4 {
		t.Errorf("MaxOccurrences = %d, want 4", got)
	}
}

// bruteSat exhaustively decides satisfiability (reference for quick tests).
func bruteSat(f *Formula) bool {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		a := make(Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.NumSatisfied(a) == f.NumClauses() {
			return true
		}
	}
	return f.NumClauses() == 0
}

func bruteMaxSat(f *Formula) int {
	n := f.NumVars
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		a := make(Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if s := f.NumSatisfied(a); s > best {
			best = s
		}
	}
	return best
}

func TestSolveKnownFormulas(t *testing.T) {
	sat1 := New(2)
	sat1.AddClause(1, 2)
	sat1.AddClause(-1, 2)

	unsat := New(1)
	unsat.AddClause(1)
	unsat.AddClause(-1)

	cases := []struct {
		name string
		f    *Formula
		want bool
	}{
		{"empty", New(0), true},
		{"single", sat1, true},
		{"contradiction", unsat, false},
		{"full unsat core", Unsatisfiable3SAT(0, 0, 0), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, model := Solve(tc.f)
			if got != tc.want {
				t.Fatalf("Solve = %v, want %v", got, tc.want)
			}
			if got && tc.f.NumSatisfied(model) != tc.f.NumClauses() {
				t.Error("returned model does not satisfy the formula")
			}
		})
	}
}

// Property: DPLL agrees with brute force on random small formulas, and
// any model it returns actually satisfies the formula.
func TestQuickSolveMatchesBruteForce(t *testing.T) {
	prop := func(seed int64, ncRaw uint8) bool {
		nc := int(ncRaw%30) + 1
		f := Random3SAT(6, nc, seed)
		want := bruteSat(f)
		got, model := Solve(f)
		if got != want {
			return false
		}
		if got && f.NumSatisfied(model) != f.NumClauses() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MaxSat agrees with brute force; fraction is consistent.
func TestQuickMaxSatMatchesBruteForce(t *testing.T) {
	prop := func(seed int64, ncRaw uint8) bool {
		nc := int(ncRaw%20) + 1
		f := Random3SAT(5, nc, seed)
		want := bruteMaxSat(f)
		got, model := MaxSat(f)
		if got != want || f.NumSatisfied(model) != got {
			return false
		}
		return MaxSatFraction(f) == float64(got)/float64(nc)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPlantedSatisfiable(t *testing.T) {
	f, planted := PlantedSatisfiable3SAT(12, 40, 11)
	if f.NumSatisfied(planted) != f.NumClauses() {
		t.Fatal("planted assignment does not satisfy formula")
	}
	if !Satisfiable(f) {
		t.Error("planted-satisfiable formula judged unsatisfiable")
	}
}

func TestUnsatisfiableCore(t *testing.T) {
	f := Unsatisfiable3SAT(0, 0, 0)
	if Satisfiable(f) {
		t.Fatal("full 8-clause core judged satisfiable")
	}
	best, _ := MaxSat(f)
	if best != 7 {
		t.Errorf("MaxSat of 8-clause core = %d, want 7", best)
	}
	padded := Unsatisfiable3SAT(4, 10, 3)
	if Satisfiable(padded) {
		t.Error("padded unsat formula judged satisfiable")
	}
}

func TestBound13PreservesSatisfiability(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		f := Random3SAT(5, 25, seed) // 25 clauses over 5 vars → heavy occurrence counts
		if f.MaxOccurrences() <= 3 {
			continue
		}
		b := Bound13(f)
		if b.MaxOccurrences() > 13 {
			t.Fatalf("Bound13 left %d occurrences", b.MaxOccurrences())
		}
		if !b.Is3CNF() {
			t.Fatal("Bound13 output not 3-CNF")
		}
		if got, want := Satisfiable(b), Satisfiable(f); got != want {
			t.Fatalf("seed %d: Bound13 changed satisfiability %v -> %v", seed, want, got)
		}
	}
}

func TestBound13UnusedVariable(t *testing.T) {
	f := New(4)
	f.AddClause(1, 2, 3) // variable 4 unused
	b := Bound13(f)
	if !Satisfiable(b) {
		t.Error("trivially satisfiable formula became unsatisfiable")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := Random3SAT(8, 20, 4)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != f.NumVars || back.NumClauses() != f.NumClauses() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumVars, back.NumClauses(), f.NumVars, f.NumClauses())
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(back.Clauses[i]) {
			t.Fatalf("clause %d changed", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != back.Clauses[i][j] {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no problem line":  "1 2 0\n",
		"bad problem line": "p sat 3 1\n1 0\n",
		"oversize literal": "p cnf 2 1\n3 0\n",
		"garbage literal":  "p cnf 2 1\nxx 0\n",
		"empty input":      "",
	}
	for name, input := range cases {
		if _, err := ParseDIMACS(strings.NewReader(input)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Comments and trailing clause without explicit 0 are tolerated.
	f, err := ParseDIMACS(strings.NewReader("c hello\np cnf 2 2\n1 -2 0\n2"))
	if err != nil || f.NumClauses() != 2 {
		t.Errorf("lenient parse failed: %v, %v", f, err)
	}
}

func TestString(t *testing.T) {
	f := New(2)
	if New(0).String() != "⊤" {
		t.Error("empty formula should render ⊤")
	}
	f.AddClause(1, -2)
	if got := f.String(); got != "(x1 ∨ ¬x2)" {
		t.Errorf("String = %q", got)
	}
}

func TestNormalizedClause(t *testing.T) {
	c, taut := normalizedClause(Clause{2, 1, 2, -3})
	if taut || len(c) != 3 || c[0] != -3 || c[1] != 1 || c[2] != 2 {
		t.Errorf("normalizedClause = %v, %v", c, taut)
	}
	if _, taut := normalizedClause(Clause{1, -1}); !taut {
		t.Error("tautology not detected")
	}
}
