package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS writes f in the standard DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS CNF formula. Comment lines ("c ...") are
// skipped; the problem line must precede clauses.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var f *Formula
	var cur Clause
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			_, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			f = New(nv)
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("sat: clause before problem line: %q", line)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q: %w", tok, err)
			}
			if v == 0 {
				f.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			if l := Literal(v); l.Var() > f.NumVars {
				return nil, fmt.Errorf("sat: literal %d exceeds declared %d variables", v, f.NumVars)
			}
			cur = append(cur, Literal(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("sat: no problem line found")
	}
	if len(cur) > 0 {
		f.AddClause(cur...)
	}
	return f, nil
}
