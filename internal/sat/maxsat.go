package sat

// MaxSat returns the maximum number of clauses of f that any assignment
// satisfies, together with an optimal assignment. It is an exact branch
// and bound (bound: satisfied + still-resolvable clauses), exponential in
// the worst case and intended for the small instances used to certify
// the reductions.
func MaxSat(f *Formula) (best int, model Assignment) {
	s := &maxsatSearch{f: f, val: make([]int8, f.NumVars+1), best: -1}
	s.search(1)
	return s.best, s.bestModel
}

// MaxSatFraction returns MaxSat(f) / NumClauses(f), or 1 for the empty
// formula — the quantity 3SAT(13) thresholds on.
func MaxSatFraction(f *Formula) float64 {
	if f.NumClauses() == 0 {
		return 1
	}
	best, _ := MaxSat(f)
	return float64(best) / float64(f.NumClauses())
}

type maxsatSearch struct {
	f         *Formula
	val       []int8
	best      int
	bestModel Assignment
}

// bound counts clauses already satisfied and clauses that could still be
// satisfied given variables 1..next-1 are fixed.
func (s *maxsatSearch) bound(next int) (satisfied, possible int) {
	for _, c := range s.f.Clauses {
		sat, open := false, false
		for _, l := range c {
			if l.Var() < next {
				if s.val[l.Var()] == 1 == l.Positive() {
					sat = true
					break
				}
			} else {
				open = true
			}
		}
		switch {
		case sat:
			satisfied++
		case open:
			possible++
		}
	}
	return satisfied, possible
}

func (s *maxsatSearch) search(next int) {
	satisfied, possible := s.bound(next)
	if satisfied+possible <= s.best {
		return
	}
	if next > s.f.NumVars {
		if satisfied > s.best {
			s.best = satisfied
			s.bestModel = make(Assignment, s.f.NumVars+1)
			for v := 1; v <= s.f.NumVars; v++ {
				s.bestModel[v] = s.val[v] == 1
			}
		}
		return
	}
	for _, b := range []int8{1, -1} {
		s.val[next] = b
		s.search(next + 1)
	}
	s.val[next] = 0
}
