// Package sat implements CNF formulas, a DPLL satisfiability solver, an
// exact MaxSAT branch and bound, random formula generators, and the
// occurrence-bounding transform to 3SAT(13) that the hardness chain
// starts from.
//
// Variables are 1-based integers; a literal is +v or −v. A formula is a
// conjunction of clauses, each a disjunction of literals.
package sat

import (
	"fmt"
	"sort"
	"strings"
)

// Literal is a signed variable: +v asserts variable v, −v negates it.
// The zero literal is invalid.
type Literal int

// Var returns the (positive) variable index of l.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether l is a positive literal.
func (l Literal) Positive() bool { return l > 0 }

// Negate returns the complementary literal.
func (l Literal) Negate() Literal { return -l }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// New returns an empty formula over nv variables.
func New(nv int) *Formula {
	if nv < 0 {
		panic("sat: negative variable count")
	}
	return &Formula{NumVars: nv}
}

// AddClause appends a clause, validating its literals.
func (f *Formula) AddClause(lits ...Literal) {
	for _, l := range lits {
		if l == 0 || l.Var() > f.NumVars {
			panic(fmt.Sprintf("sat: invalid literal %d for %d variables", l, f.NumVars))
		}
	}
	c := make(Clause, len(lits))
	copy(c, lits)
	f.Clauses = append(f.Clauses, c)
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Clone returns a deep copy.
func (f *Formula) Clone() *Formula {
	c := New(f.NumVars)
	for _, cl := range f.Clauses {
		c.AddClause(cl...)
	}
	return c
}

// Assignment maps variable index (1-based) to truth value. Index 0 is
// unused.
type Assignment []bool

// Satisfies reports whether the assignment satisfies clause c.
func (a Assignment) Satisfies(c Clause) bool {
	for _, l := range c {
		if a[l.Var()] == l.Positive() {
			return true
		}
	}
	return false
}

// NumSatisfied returns how many clauses of f the assignment satisfies.
func (f *Formula) NumSatisfied(a Assignment) int {
	if len(a) < f.NumVars+1 {
		panic("sat: assignment too short")
	}
	count := 0
	for _, c := range f.Clauses {
		if a.Satisfies(c) {
			count++
		}
	}
	return count
}

// MaxOccurrences returns the largest number of clauses any single
// variable appears in (counting multiplicity within a clause once per
// clause).
func (f *Formula) MaxOccurrences() int {
	occ := make([]int, f.NumVars+1)
	for _, c := range f.Clauses {
		seen := map[int]bool{}
		for _, l := range c {
			if !seen[l.Var()] {
				seen[l.Var()] = true
				occ[l.Var()]++
			}
		}
	}
	max := 0
	for _, o := range occ {
		if o > max {
			max = o
		}
	}
	return max
}

// Is3CNF reports whether every clause has at most three literals.
func (f *Formula) Is3CNF() bool {
	for _, c := range f.Clauses {
		if len(c) > 3 {
			return false
		}
	}
	return true
}

// String renders the formula as e.g. "(x1 ∨ ¬x2) ∧ (x3)".
func (f *Formula) String() string {
	if len(f.Clauses) == 0 {
		return "⊤"
	}
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		lits := make([]string, len(c))
		for j, l := range c {
			if l.Positive() {
				lits[j] = fmt.Sprintf("x%d", l.Var())
			} else {
				lits[j] = fmt.Sprintf("¬x%d", l.Var())
			}
		}
		parts[i] = "(" + strings.Join(lits, " ∨ ") + ")"
	}
	return strings.Join(parts, " ∧ ")
}

// normalizedClause returns a sorted copy of c with duplicate literals
// removed, and reports whether the clause is a tautology (contains both
// a literal and its negation).
func normalizedClause(c Clause) (Clause, bool) {
	seen := map[Literal]bool{}
	var out Clause
	for _, l := range c {
		if seen[l.Negate()] {
			return nil, true
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, false
}
