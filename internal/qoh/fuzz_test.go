package qoh

import (
	"encoding/json"
	"testing"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// fuzzSeedInstance builds a small valid QO_H instance for the corpus.
func fuzzSeedInstance() *Instance {
	n := 3
	q := graph.Complete(n)
	in := &Instance{Q: q, T: make([]num.Num, n), M: num.FromInt64(64)}
	in.S = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.T[i] = num.FromInt64(8)
		in.S[i] = make([]num.Num, n)
		for j := 0; j < n; j++ {
			if i == j {
				in.S[i][j] = num.One()
			} else {
				in.S[i][j] = num.Pow2(-1)
			}
		}
	}
	return in
}

// FuzzInstanceJSON checks that arbitrary JSON never panics the QO_H
// instance decoder (which validates on decode) and that accepted
// instances survive a marshal/unmarshal round trip.
func FuzzInstanceJSON(f *testing.F) {
	valid, err := json.Marshal(fuzzSeedInstance())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(valid))
	f.Add(`{}`)
	f.Add(`{"query_graph":{"n":2,"edges":[[0,1]]},"sizes":["4","4"]}`)
	f.Add(`{"query_graph":{"n":2,"edges":[[0,1]]},"sizes":["4","4"],"selectivities":[[null,null],[null,null]],"memory":"16"}`)
	f.Add(`{"query_graph":{"n":1,"edges":[]},"sizes":["4"],"selectivities":[["1"]],"memory":"0"}`)
	f.Add(`{"query_graph":{"n":2,"edges":[]},"sizes":["4","4"],"selectivities":[["1","1"],["1","1"]],"memory":"16","psi":2}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		var in Instance
		if err := json.Unmarshal([]byte(input), &in); err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid instance: %v", err)
		}
		data, err := json.Marshal(&in)
		if err != nil {
			t.Fatalf("marshal of accepted instance: %v", err)
		}
		var back Instance
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if back.N() != in.N() {
			t.Fatalf("round trip changed n: %d -> %d", in.N(), back.N())
		}
		if n := in.N(); n >= 2 && n <= 8 {
			seq := make([]int, n)
			for i := range seq {
				seq[i] = i
			}
			// Sizes must agree across the round trip; decompositions may
			// legitimately be infeasible (mandatory memory above M).
			s1, s2 := in.Sizes(seq), back.Sizes(seq)
			for i := range s1 {
				if !s1[i].Equal(s2[i]) {
					t.Fatal("round trip changed the size model")
				}
			}
			if _, err := in.BestDecomposition(seq); err == nil {
				if _, err := back.BestDecomposition(seq); err != nil {
					t.Fatalf("round trip lost feasibility: %v", err)
				}
			}
		}
	})
}
