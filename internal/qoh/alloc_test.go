package qoh

import (
	"math/rand"
	"testing"

	"approxqo/internal/num"
)

// bruteAllocCost enumerates every integer memory allocation for the
// given joins (each ≥ its hjmin, total ≤ M) and returns the minimum
// summed h cost. Reference oracle for the greedy LP allocation.
func bruteAllocCost(t *testing.T, in *Instance, js []joinShape) (num.Num, bool) {
	t.Helper()
	mTotal, ok := in.M.Int64()
	if !ok {
		t.Fatal("non-integer memory in brute-force alloc test")
	}
	var best num.Num
	found := false
	var rec func(idx int, remaining int64, acc num.Num)
	rec = func(idx int, remaining int64, acc num.Num) {
		if idx == len(js) {
			if !found || acc.Less(best) {
				best, found = acc, true
			}
			return
		}
		lo, _ := js[idx].hjmin.Int64()
		for m := lo; m <= remaining; m++ {
			h, err := HCost(num.FromInt64(m), js[idx].outer, js[idx].inner, in.psi())
			if err != nil {
				t.Fatal(err)
			}
			rec(idx+1, remaining-m, acc.Add(h))
			// Beyond the inner size more memory cannot help.
			if inner, _ := js[idx].inner.Int64(); m >= inner {
				break
			}
		}
	}
	rec(0, mTotal, num.Zero())
	return best, found
}

// The greedy continuous-knapsack allocation (Lemma 10's structure) must
// match brute-force enumeration over integer allocations.
func TestOptimalAllocMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nJoins := rng.Intn(3) + 1
		js := make([]joinShape, nJoins)
		in := &Instance{M: num.FromInt64(int64(rng.Intn(40) + 8))}
		for i := range js {
			inner := num.FromInt64(int64(rng.Intn(28) + 4))
			js[i] = joinShape{
				outer: num.FromInt64(int64(rng.Intn(200) + 1)),
				inner: inner,
				hjmin: in.hjmin(inner),
			}
		}
		_, got, err := in.optimalAlloc(js)
		want, feasible := bruteAllocCost(t, in, js)
		if err != nil {
			if feasible {
				t.Fatalf("trial %d: greedy infeasible but brute force found %v", trial, want)
			}
			continue
		}
		if !feasible {
			t.Fatalf("trial %d: greedy feasible but brute force found nothing", trial)
		}
		if !got.Equal(want) {
			t.Errorf("trial %d: greedy cost %v, brute force %v (M=%v, joins=%+v)",
				trial, got, want, in.M, js)
		}
	}
}

// Lemma 10's three cases on an f_H-shaped pipeline: uniform inners of
// size t, memory (k₀−1)·t + 2·hjmin(t).
func TestLemma10Cases(t *testing.T) {
	tSize := num.FromInt64(256) // hjmin = 16
	hj := HJMin(tSize, 0.5)
	if got, _ := hj.Int64(); got != 16 {
		t.Fatalf("hjmin(256) = %v, want 16", hj)
	}
	k0 := 4 // the reduction's n/3
	in := &Instance{M: num.FromInt64(int64(k0-1) * 256).Add(hj.MulInt64(2))}

	mkJoins := func(k int) []joinShape {
		js := make([]joinShape, k)
		for i := range js {
			// Distinct outers so "smallest outer" is well defined.
			js[i] = joinShape{outer: num.FromInt64(int64(1000 * (i + 1))), inner: tSize, hjmin: hj}
		}
		return js
	}

	// Case 1: k ≤ k₀−1 joins → everyone gets a full hash table (m = t),
	// so every h cost is exactly b_S = t.
	alloc, total, err := in.optimalAlloc(mkJoins(k0 - 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range alloc {
		if m.Less(tSize) {
			t.Errorf("case 1: join %d got %v < t", i, m)
		}
	}
	if want := tSize.MulInt64(int64(k0 - 1)); !total.Equal(want) {
		t.Errorf("case 1: total h = %v, want %v", total, want)
	}

	// Case 2: k = k₀ joins → exactly one join is starved; the greedy
	// starves the smallest-outer join (index 0), matching Lemma 10.
	alloc, _, err = in.optimalAlloc(mkJoins(k0))
	if err != nil {
		t.Fatal(err)
	}
	starved := 0
	for i, m := range alloc {
		if m.Less(tSize) {
			starved++
			if i != 0 {
				t.Errorf("case 2: starved join %d, want the smallest-outer join 0", i)
			}
		}
	}
	if starved != 1 {
		t.Errorf("case 2: %d starved joins, want 1", starved)
	}

	// Case 3: k = k₀+1 joins → exactly two joins starved to hjmin: the
	// two with the smallest outers.
	alloc, _, err = in.optimalAlloc(mkJoins(k0 + 1))
	if err != nil {
		t.Fatal(err)
	}
	var starvedIdx []int
	for i, m := range alloc {
		if m.Less(tSize) {
			starvedIdx = append(starvedIdx, i)
		}
	}
	if len(starvedIdx) != 2 || starvedIdx[0] != 0 || starvedIdx[1] != 1 {
		t.Errorf("case 3: starved %v, want [0 1] (the two smallest outers)", starvedIdx)
	}
	for _, i := range starvedIdx {
		if !alloc[i].Equal(hj) && i == 0 {
			t.Errorf("case 3: smallest-outer join got %v, want hjmin %v", alloc[i], hj)
		}
	}
}
