package qoh

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// Canonical identity for QO_H instances — the exact analogue of the
// qon package's: the pipelined-hash-join cost model is
// relabel-equivariant (proven by its metamorphic suite), so the serving
// cache keys QO_H jobs on Fingerprint to make relabeled repeats hit.
// The memory budget M and the effective ψ are global scalars, folded
// into the hash header rather than the per-vertex encoding.

// Relabel returns the instance with relation i renamed to pi[i]; pi
// must be a permutation of 0..n-1. M, ψ and the num.Num values are
// shared (immutable); slices are fresh.
func Relabel(in *Instance, pi []int) *Instance {
	n := in.N()
	q := graph.New(n)
	for _, e := range in.Q.Edges() {
		q.AddEdge(pi[e[0]], pi[e[1]])
	}
	out := &Instance{Q: q, T: make([]num.Num, n), S: make([][]num.Num, n), M: in.M, Psi: in.Psi}
	for i := 0; i < n; i++ {
		out.S[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		out.T[pi[i]] = in.T[i]
		for j := 0; j < n; j++ {
			out.S[pi[i]][pi[j]] = in.S[i][j]
		}
	}
	return out
}

// canonData adapts the instance for graph.CanonicalOrder; see the qon
// analogue for the encoding conventions.
func canonData(in *Instance) graph.CanonData {
	return graph.CanonData{
		N: in.N(),
		VertexBytes: func(v int) []byte {
			return in.T[v].CanonicalAppend(nil)
		},
		PairBytes: func(u, v int) []byte {
			b := make([]byte, 0, 16)
			if in.Q.HasEdge(u, v) {
				b = append(b, 'e', '1', ';')
			} else {
				b = append(b, 'e', '0', ';')
			}
			b = in.S[u][v].CanonicalAppend(b)
			return b
		},
	}
}

// Canonicalize returns the canonical form of the instance and the
// permutation pi mapping the original labels into it (canonical =
// Relabel(in, pi)).
func Canonicalize(in *Instance) (*Instance, []int) {
	_, pi := CanonicalID(in)
	return Relabel(in, pi), pi
}

// Fingerprint returns a hex string identifying the instance up to
// relabeling: equal exactly when two instances are renamings of each
// other with the same memory budget and effective ψ (an unset Psi and
// an explicit DefaultPsi fingerprint identically — they denote the
// same instance). Deterministic across processes and runs.
func Fingerprint(in *Instance) string {
	fp, _ := CanonicalID(in)
	return fp
}

// CanonicalID computes the fingerprint and the canonicalizing
// permutation in one canonical-order search; see the qon analogue.
func CanonicalID(in *Instance) (string, []int) {
	ord, enc := graph.CanonicalOrder(canonData(in))
	pi := make([]int, len(ord))
	for pos, v := range ord {
		pi[v] = pos
	}
	h := sha256.New()
	h.Write([]byte("qoh\x00"))
	h.Write([]byte(strconv.Itoa(in.N())))
	h.Write([]byte{0})
	h.Write(in.M.CanonicalAppend(nil))
	h.Write([]byte{0})
	h.Write([]byte(strconv.FormatFloat(in.psi(), 'b', -1, 64)))
	h.Write([]byte{0})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), pi
}
