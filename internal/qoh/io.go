package qoh

import (
	"encoding/json"
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

type instanceJSON struct {
	Q   *graph.Graph `json:"query_graph"`
	S   [][]num.Num  `json:"selectivities"`
	T   []num.Num    `json:"sizes"`
	M   num.Num      `json:"memory"`
	Psi float64      `json:"psi,omitempty"`
}

// MarshalJSON encodes the instance with num values as strings.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(instanceJSON{Q: in.Q, S: in.S, T: in.T, M: in.M, Psi: in.Psi})
}

// UnmarshalJSON decodes and validates an instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var ij instanceJSON
	if err := json.Unmarshal(data, &ij); err != nil {
		return err
	}
	decoded := &Instance{Q: ij.Q, S: ij.S, T: ij.T, M: ij.M, Psi: ij.Psi}
	if decoded.Q == nil {
		return fmt.Errorf("qoh: missing query graph")
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*in = *decoded
	return nil
}
