package qoh

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// chainInstance: R0(8) — R1(16) — R2(4), s01 = 1/2, s12 = 1/4, ψ = 1/2.
// Hand-checkable hjmins: hjmin(8)=4, hjmin(16)=4, hjmin(4)=2.
func chainInstance(m int64) *Instance {
	q := graph.Path(3)
	one := num.One()
	half := num.FromFloat64(0.5)
	quarter := num.FromFloat64(0.25)
	return &Instance{
		Q: q,
		T: []num.Num{num.FromInt64(8), num.FromInt64(16), num.FromInt64(4)},
		S: [][]num.Num{
			{one, half, one},
			{half, one, quarter},
			{one, quarter, one},
		},
		M: num.FromInt64(m),
	}
}

func TestValidate(t *testing.T) {
	if err := chainInstance(10).Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := chainInstance(10)
	bad.S[0][1] = num.FromFloat64(0.75)
	if err := bad.Validate(); err == nil {
		t.Error("asymmetric selectivity accepted")
	}
	bad2 := chainInstance(10)
	bad2.M = num.Zero()
	if err := bad2.Validate(); err == nil {
		t.Error("zero memory accepted")
	}
	bad3 := chainInstance(10)
	bad3.Psi = 1.5
	if err := bad3.Validate(); err == nil {
		t.Error("psi ≥ 1 accepted")
	}
	bad4 := chainInstance(10)
	bad4.S[0][2] = num.FromFloat64(0.5)
	bad4.S[2][0] = num.FromFloat64(0.5)
	if err := bad4.Validate(); err == nil {
		t.Error("non-edge selectivity accepted")
	}
}

func TestHJMin(t *testing.T) {
	cases := []struct {
		b    int64
		psi  float64
		want int64
	}{
		{16, 0.5, 4},
		{8, 0.5, 4}, // ⌈1.5⌉ = 2 → 2² = 4
		{4, 0.5, 2},
		{1024, 0.5, 32},
		{1024, 0.3, 8}, // ⌈3⌉ = 3
	}
	for _, tc := range cases {
		got, ok := HJMin(num.FromInt64(tc.b), tc.psi).Int64()
		if !ok || got != tc.want {
			t.Errorf("HJMin(%d, %v) = %d, want %d", tc.b, tc.psi, got, tc.want)
		}
	}
	// Monotone in b.
	if HJMin(num.Pow2(100), 0.5).Less(HJMin(num.Pow2(50), 0.5)) {
		t.Error("HJMin not monotone")
	}
}

func TestGCostShape(t *testing.T) {
	bs := num.FromInt64(16)
	hj := num.FromInt64(4)
	// At hjmin: g = 1 (the Θ(1) constraint).
	if !GCost(hj, bs, hj).Equal(num.One()) {
		t.Error("g(hjmin) != 1")
	}
	// At bs and above: 0.
	if !GCost(bs, bs, hj).IsZero() || !GCost(num.FromInt64(100), bs, hj).IsZero() {
		t.Error("g(≥bs) != 0")
	}
	// Midpoint: (16−10)/12 = 1/2.
	if !GCost(num.FromInt64(10), bs, hj).Equal(num.FromFloat64(0.5)) {
		t.Error("g(10) != 1/2")
	}
	// Linear decreasing: g(6) > g(10).
	if !GCost(num.FromInt64(10), bs, hj).Less(GCost(num.FromInt64(6), bs, hj)) {
		t.Error("g not decreasing")
	}
	defer func() {
		if recover() == nil {
			t.Error("g below hjmin did not panic")
		}
	}()
	GCost(num.FromInt64(3), bs, hj)
}

func TestHCostEndpoints(t *testing.T) {
	// h(hjmin, br, bs) = (br+bs)·1 + bs = br + 2bs — the Θ(br+bs) endpoint.
	h, err := HCost(num.FromInt64(4), num.FromInt64(8), num.FromInt64(16), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Int64(); got != 8+2*16 {
		t.Errorf("h(hjmin) = %v, want 40", h)
	}
	// h(bs, br, bs) = bs: inner fits fully in memory.
	h, err = HCost(num.FromInt64(16), num.FromInt64(8), num.FromInt64(16), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Int64(); got != 16 {
		t.Errorf("h(bs) = %v, want 16", h)
	}
	// Below hjmin: error.
	if _, err := HCost(num.FromInt64(3), num.FromInt64(8), num.FromInt64(16), 0.5); err == nil {
		t.Error("h below hjmin accepted")
	}
}

func TestSizes(t *testing.T) {
	in := chainInstance(10)
	sizes := in.Sizes([]int{0, 1, 2})
	want := []int64{8, 64, 64}
	for i, w := range want {
		if got, _ := sizes[i].Int64(); got != w {
			t.Errorf("N_%d = %v, want %d", i, sizes[i], w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid sequence did not panic")
		}
	}()
	in.Sizes([]int{0, 0, 1})
}

func TestPipelineCostHandComputed(t *testing.T) {
	in := chainInstance(10)
	z := []int{0, 1, 2}
	// Single pipeline joins 1..2 (worked in the package design notes):
	// mandatory 4+2=6, surplus 4 → J_2 (rate 34) gets its full room 2,
	// J_1 gets 2 more (m=6): h1 = 24·(10/12)+16 = 36, h2 = 4.
	// cost = N_0 + 36 + 4 + N_2 = 8 + 40 + 64 = 112.
	cost, alloc, err := in.PipelineCost(z, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := cost.Int64(); got != 112 {
		t.Errorf("pipeline cost = %v, want 112", cost)
	}
	if got, _ := alloc[0].Int64(); got != 6 {
		t.Errorf("alloc J_1 = %v, want 6", alloc[0])
	}
	if got, _ := alloc[1].Int64(); got != 4 {
		t.Errorf("alloc J_2 = %v, want 4", alloc[1])
	}
	// Split decompositions cost more here: P(1,1)=100, P(2,2)=132.
	p1, _, err := in.PipelineCost(z, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p1.Int64(); got != 100 {
		t.Errorf("P(1,1) = %v, want 100", p1)
	}
	p2, _, err := in.PipelineCost(z, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p2.Int64(); got != 132 {
		t.Errorf("P(2,2) = %v, want 132", p2)
	}
}

func TestBestDecomposition(t *testing.T) {
	in := chainInstance(10)
	plan, err := in.BestDecomposition([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := plan.Cost.Int64(); got != 112 {
		t.Errorf("best cost = %v, want 112 (single pipeline)", plan.Cost)
	}
	if len(plan.Breaks) != 1 || plan.Breaks[0] != 2 {
		t.Errorf("breaks = %v, want [2]", plan.Breaks)
	}
	if pipes := plan.Pipelines(); len(pipes) != 1 || pipes[0] != [2]int{1, 2} {
		t.Errorf("pipelines = %v", pipes)
	}
}

func TestBestDecompositionForcedSplit(t *testing.T) {
	// M = 5 < mandatory 6 for the combined pipeline, but each single-join
	// pipeline fits → the DP must split.
	in := chainInstance(5)
	plan, err := in.BestDecomposition([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Breaks) != 2 {
		t.Errorf("breaks = %v, want two pipelines", plan.Breaks)
	}
}

func TestInfeasible(t *testing.T) {
	// M = 3 < hjmin(16) = 4: relation 1 cannot be an inner anywhere, and
	// starting from 1 still needs hjmin(8) = 4 > 3 for relation 0.
	in := chainInstance(3)
	if _, err := in.BestDecomposition([]int{0, 1, 2}); err == nil {
		t.Error("infeasible sequence accepted")
	}
	if in.FeasibleStart(0) {
		t.Error("FeasibleStart(0) should be false with M=3")
	}
	// With M = 4, starting at 1 is feasible (inners are 8 and 4).
	in4 := chainInstance(4)
	if !in4.FeasibleStart(1) {
		t.Error("FeasibleStart(1) should be true with M=4")
	}
	// With M = 4 every single relation's hjmin fits (hjmin(16) = 4 ≤ 4),
	// so start 0 is relation-feasible; pipelines may still need splitting.
	if !in4.FeasibleStart(0) {
		t.Error("FeasibleStart(0) should be true with M=4")
	}
}

func TestCostDecompositionValidation(t *testing.T) {
	in := chainInstance(10)
	if _, err := in.CostDecomposition([]int{0, 1, 2}, []int{1}); err == nil {
		t.Error("decomposition not ending at n−1 accepted")
	}
	if _, err := in.CostDecomposition([]int{0, 1, 2}, nil); err == nil {
		t.Error("empty decomposition accepted")
	}
	plan, err := in.CostDecomposition([]int{0, 1, 2}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := plan.Cost.Int64(); got != 232 {
		t.Errorf("two-pipeline cost = %v, want 232", plan.Cost)
	}
}

// randomInstance builds a random valid QO_H instance.
func randomInstance(n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	q := graph.Random(n, 0.5, seed)
	in := &Instance{
		Q: q,
		T: make([]num.Num, n),
		M: num.FromInt64(int64(rng.Intn(200) + 20)),
	}
	for i := range in.T {
		in.T[i] = num.FromInt64(int64(rng.Intn(100) + 2))
	}
	in.S = make([][]num.Num, n)
	for i := 0; i < n; i++ {
		in.S[i] = make([]num.Num, n)
	}
	for i := 0; i < n; i++ {
		in.S[i][i] = num.One()
		for j := 0; j < i; j++ {
			s := num.One()
			if q.HasEdge(i, j) {
				s = num.FromFloat64(float64(rng.Intn(9)+1) / 16)
			}
			in.S[i][j], in.S[j][i] = s, s
		}
	}
	return in
}

// Property: the DP's best decomposition never beats any explicitly
// enumerated decomposition but matches the best of them (n = 5 → joins
// 1..4 → 8 decompositions).
func TestQuickBestDecompositionIsOptimal(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInstance(5, seed)
		z := rand.New(rand.NewSource(seed ^ 99)).Perm(5)
		best, bestErr := in.BestDecomposition(z)

		// Enumerate all decompositions of joins 1..4: choose boundaries
		// among joins 1..3 (join 4 always final).
		var bruteBest num.Num
		found := false
		for mask := 0; mask < 8; mask++ {
			var breaks []int
			for j := 1; j <= 3; j++ {
				if mask&(1<<(j-1)) != 0 {
					breaks = append(breaks, j)
				}
			}
			breaks = append(breaks, 4)
			plan, err := in.CostDecomposition(z, breaks)
			if err != nil {
				continue
			}
			if !found || plan.Cost.Less(bruteBest) {
				bruteBest, found = plan.Cost, true
			}
		}
		if !found {
			return bestErr != nil
		}
		return bestErr == nil && best.Cost.Equal(bruteBest)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: per-pipeline memory allocations are feasible — within
// budget, and at least hjmin per join.
func TestQuickAllocFeasible(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInstance(5, seed)
		z := rand.New(rand.NewSource(seed ^ 7)).Perm(5)
		plan, err := in.BestDecomposition(z)
		if err != nil {
			return true // infeasible is acceptable
		}
		start := 1
		sizes := in.Sizes(z)
		_ = sizes
		for pi, end := range plan.Breaks {
			total := num.Zero()
			for idx, j := 0, start; j <= end; idx, j = idx+1, j+1 {
				m := plan.Allocs[pi][idx]
				total = total.Add(m)
				if m.Less(in.hjmin(in.T[z[j]])) {
					return false
				}
			}
			if in.M.Less(total) {
				return false
			}
			start = end + 1
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: more memory never makes the best decomposition of the same
// sequence more expensive.
func TestQuickMonotoneInMemory(t *testing.T) {
	prop := func(seed int64) bool {
		in := randomInstance(5, seed)
		z := rand.New(rand.NewSource(seed ^ 13)).Perm(5)
		small, errSmall := in.BestDecomposition(z)
		richer := *in
		richer.M = in.M.MulInt64(2)
		big, errBig := richer.BestDecomposition(z)
		if errSmall != nil {
			return true // small infeasible says nothing
		}
		if errBig != nil {
			return false // more memory can't lose feasibility
		}
		return big.Cost.LessEq(small.Cost)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := chainInstance(10)
	in.Psi = 0.4
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() || !back.Q.Equal(in.Q) || !back.M.Equal(in.M) || back.Psi != in.Psi {
		t.Fatal("round trip changed structure")
	}
	a, err := in.BestDecomposition([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.BestDecomposition([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cost.Equal(b.Cost) {
		t.Error("round trip changed costs")
	}
	var bad Instance
	if err := json.Unmarshal([]byte(`{"query_graph":{"n":2,"edges":[]},"selectivities":[],"sizes":["1","1"],"memory":"0"}`), &bad); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestExactBestMatchesManualEnumeration(t *testing.T) {
	in := chainInstance(10)
	best, err := in.ExactBest()
	if err != nil {
		t.Fatal(err)
	}
	// Manual enumeration over all 3! sequences.
	var want num.Num
	found := false
	for _, z := range [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		plan, err := in.BestDecomposition(z)
		if err != nil {
			continue
		}
		if !found || plan.Cost.Less(want) {
			want, found = plan.Cost, true
		}
	}
	if !found || !best.Cost.Equal(want) {
		t.Errorf("ExactBest = %v, manual enumeration = %v", best.Cost, want)
	}
	// Caps and degenerate sizes.
	big := randomInstance(MaxExhaustiveN+1, 1)
	if _, err := big.ExactBest(); err == nil {
		t.Error("oversize instance accepted")
	}
	single := &Instance{
		Q: graph.New(1),
		T: []num.Num{num.FromInt64(4)},
		S: [][]num.Num{{num.One()}},
		M: num.FromInt64(8),
	}
	if _, err := single.ExactBest(); err == nil {
		t.Error("single relation accepted")
	}
}

func TestHJMinPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("HJMin(0) did not panic")
		}
	}()
	HJMin(num.Zero(), 0.5)
}

func TestDecide(t *testing.T) {
	in := chainInstance(10)
	best, err := in.ExactBest()
	if err != nil {
		t.Fatal(err)
	}
	yes, plan, err := in.Decide(best.Cost)
	if err != nil || !yes || plan == nil {
		t.Fatalf("Decide at the optimum should be YES (err=%v)", err)
	}
	lower := best.Cost.Sub(num.One())
	if yes, _, _ := in.Decide(lower); yes {
		t.Error("Decide below the optimum should be NO")
	}
}
