// Package qoh implements the QO_H query-optimization problem of the
// paper (§2.2): join sequences executed as pipelined hash joins under a
// shared memory budget.
//
// An instance is the five-tuple (n, Q, S, T, M): query graph,
// selectivities and sizes as in QO_N, plus the total memory M available
// to each pipeline.
//
// A join sequence Z = (z₁, …, z_n) is decomposed into contiguous
// pipelines P(Z, i, k) covering join operations J_i..J_k. Join J_j
// streams the output of J_{j−1} (size N_{j−1}(Z)) against a hash table
// on relation R_{z_{j+1}} (size t). Pipeline memory is divided among the
// joins of the pipeline; each join needs at least hjmin(b_S) pages to be
// feasible, and the I/O cost of one hash join is
//
//	h(m, b_R, b_S) = (b_R + b_S) · g(m, b_S) + b_S,   m ≥ hjmin(b_S)
//
// with the concrete g mandated by the paper's four constraints:
// linear decreasing from g(hjmin, b_S) = 1 down to g(b_S, b_S) = 0, and
// zero beyond (see DESIGN.md's substitution table). hjmin(b) = ⌈b^ψ⌉ in
// the log₂ domain, ψ = ½ by default.
//
// A pipeline P(Z, i, k) costs: read N_{i−1}(Z) from disk, plus the sum
// of its hash-join costs under a memory allocation, plus write N_k(Z).
// The cost of a decomposition is the sum over its pipelines; this
// package computes optimal memory allocations (continuous knapsack on
// the linear g — Lemma 10's structure) and optimal decompositions
// (interval DP over pipeline boundaries).
package qoh

import (
	"fmt"
	"math"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/stats"
)

// DefaultPsi is the default exponent of hjmin(b) = ⌈b^ψ⌉. The paper
// requires hjmin(b_S) = Θ(b_S^ψ) for some 0 < ψ < 1.
const DefaultPsi = 0.5

// Instance is a QO_H problem instance.
type Instance struct {
	Q   *graph.Graph
	S   [][]num.Num // symmetric selectivities, 1 off the query graph
	T   []num.Num   // relation sizes (tuples = pages)
	M   num.Num     // memory available to each pipeline
	Psi float64     // hjmin exponent; zero value means DefaultPsi

	stats *stats.Stats // instrumentation sink; nil when uninstrumented
}

// WithStats returns a shallow copy of the instance whose decomposition
// and pipeline costings are counted into s. The copy shares all
// matrices with the original.
func (in *Instance) WithStats(s *stats.Stats) *Instance {
	cp := *in
	cp.stats = s
	return &cp
}

// Stats returns the instrumentation sink attached by WithStats, or nil.
func (in *Instance) Stats() *stats.Stats { return in.stats }

// N returns the number of relations.
func (in *Instance) N() int { return len(in.T) }

func (in *Instance) psi() float64 {
	if in.Psi == 0 {
		return DefaultPsi
	}
	return in.Psi
}

// Validate checks dimensions, symmetry, selectivity ranges, positive
// sizes and memory, and the ψ range.
func (in *Instance) Validate() error {
	n := in.N()
	if in.Q == nil || in.Q.N() != n {
		return fmt.Errorf("qoh: query graph size mismatch")
	}
	if len(in.S) != n {
		return fmt.Errorf("qoh: selectivity matrix has %d rows, want %d", len(in.S), n)
	}
	if !in.M.IsValid() {
		return fmt.Errorf("qoh: missing memory budget")
	}
	if in.M.IsZero() {
		return fmt.Errorf("qoh: zero memory budget")
	}
	if p := in.psi(); p <= 0 || p >= 1 {
		return fmt.Errorf("qoh: psi = %v outside (0,1)", p)
	}
	one := num.One()
	// First pass: dimensions and value validity, so the pairwise checks
	// below can index any row safely.
	for i := 0; i < n; i++ {
		if len(in.S[i]) != n {
			return fmt.Errorf("qoh: selectivity row %d has wrong length", i)
		}
		if !in.T[i].IsValid() {
			return fmt.Errorf("qoh: relation %d has no size", i)
		}
		if in.T[i].IsZero() {
			return fmt.Errorf("qoh: relation %d has size zero", i)
		}
		for j := 0; j < n; j++ {
			if !in.S[i][j].IsValid() {
				return fmt.Errorf("qoh: missing selectivity at (%d,%d)", i, j)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if !in.S[i][j].Equal(in.S[j][i]) {
				return fmt.Errorf("qoh: selectivity not symmetric at (%d,%d)", i, j)
			}
			if in.S[i][j].IsZero() || one.Less(in.S[i][j]) {
				return fmt.Errorf("qoh: selectivity s[%d][%d] outside (0,1]", i, j)
			}
			if !in.Q.HasEdge(i, j) && !in.S[i][j].Equal(one) {
				return fmt.Errorf("qoh: non-edge (%d,%d) has selectivity ≠ 1", i, j)
			}
		}
	}
	return nil
}

// HJMin returns ⌈b^ψ⌉ computed in the log₂ domain: 2^⌈ψ·log₂ b⌉. It is
// monotone in b and exact on powers of two.
func HJMin(b num.Num, psi float64) num.Num {
	if b.IsZero() {
		panic("qoh: HJMin of zero")
	}
	return num.Pow2(int64(math.Ceil(psi * b.Log2())))
}

// hjmin applies the instance's ψ.
func (in *Instance) hjmin(b num.Num) num.Num { return HJMin(b, in.psi()) }

// GCost returns the paper's g(m, b_S): 0 for m ≥ b_S, otherwise the
// linear ramp (b_S − m)/(b_S − hjmin) in [hjmin, b_S). It panics if
// m < hjmin (infeasible allocations must be rejected by the caller).
func GCost(m, bs, hjmin num.Num) num.Num {
	if m.Less(hjmin) {
		panic("qoh: g evaluated below hjmin")
	}
	if bs.LessEq(m) {
		return num.Zero()
	}
	// Here hjmin ≤ m < bs, so hjmin < bs and the denominator is positive.
	return bs.Sub(m).Div(bs.Sub(hjmin))
}

// HCost returns h(m, b_R, b_S) = (b_R + b_S)·g(m, b_S) + b_S, or an
// error if m < hjmin(b_S).
func HCost(m, br, bs num.Num, psi float64) (num.Num, error) {
	hj := HJMin(bs, psi)
	if m.Less(hj) {
		return num.Num{}, fmt.Errorf("qoh: memory %v below hjmin %v", m, hj)
	}
	return br.Add(bs).Mul(GCost(m, bs, hj)).Add(bs), nil
}

// Sizes returns the intermediate sizes N_0..N_{n-1} along z:
// N_0 = t_{z₁} and N_i = N(first i+1 relations), computed exactly as in
// QO_N (the size model is shared).
func (in *Instance) Sizes(z []int) []num.Num {
	if !in.validSequence(z) {
		panic(fmt.Sprintf("qoh: invalid join sequence %v", z))
	}
	n := in.N()
	sizes := make([]num.Num, 0, n)
	x := graph.NewBitset(n)
	// Scratch accumulation performs the identical rounded-op sequence the
	// immutable chain did (multiply by t_v, then by each s_vu in ascending
	// u order), so every snapshot below is bit-identical to the old code —
	// the allocation-cost oracle in alloc_test.go depends on that.
	size := num.NewScratch()
	defer size.Release()
	size.SetInt64(1)
	for _, v := range z {
		size.Mul(in.T[v])
		x.ForEach(func(u int) { size.Mul(in.S[v][u]) })
		sizes = append(sizes, size.Num())
		x.Add(v)
	}
	return sizes
}

func (in *Instance) validSequence(z []int) bool {
	if len(z) != in.N() {
		return false
	}
	seen := make([]bool, in.N())
	for _, v := range z {
		if v < 0 || v >= in.N() || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
