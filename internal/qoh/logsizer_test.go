package qoh

import (
	"math"
	"math/rand"
	"testing"
)

// Differential: the log₂ shadows track the exact sizes to far inside
// the guard band searchers use (1e-6), across random instances and
// random sequences.
func TestLogSizerTracksExactSizes(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := randomInstance(8, seed)
		ls := NewLogSizer(in)
		z := rand.New(rand.NewSource(seed ^ 0x5a)).Perm(8)
		exact := in.Sizes(z)
		shadow := ls.SizesLog2(z)
		if len(shadow) != len(exact) {
			t.Fatalf("seed %d: %d shadows for %d sizes", seed, len(shadow), len(exact))
		}
		for i := range exact {
			want := exact[i].Log2()
			if d := math.Abs(shadow[i] - want); d > 1e-9 {
				t.Errorf("seed %d pos %d: log2 shadow %v, exact %v (diff %g)",
					seed, i, shadow[i], want, d)
			}
		}
	}
}

// ExtendLog2 must agree with SizesLog2 position by position — greedy
// candidate ranking uses the former, the differential suite the latter.
func TestLogSizerExtendMatchesSizes(t *testing.T) {
	in := randomInstance(7, 42)
	ls := NewLogSizer(in)
	z := rand.New(rand.NewSource(7)).Perm(7)
	shadow := ls.SizesLog2(z)
	if got := ls.LogT(z[0]); math.Abs(got-shadow[0]) > 1e-12 {
		t.Errorf("LogT(%d) = %v, SizesLog2[0] = %v", z[0], got, shadow[0])
	}
}
