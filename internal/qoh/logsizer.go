package qoh

import (
	"fmt"

	"approxqo/internal/graph"
)

// LogSizer is the QO_H analogue of qon.LogCoster: a Tier-1 float64
// log₂-domain evaluator of the intermediate-size model the two problems
// share. Sequence searchers use it to *rank* candidate extensions; any
// comparison whose margin falls inside the guard band must be re-decided
// in exact num.Num arithmetic (see qon.DefaultLogGuard for the error
// budget argument — the size recurrence here is a strict subset of the
// QO_N cost recurrence, so the same bound applies with room to spare).
//
// LogSizer is read-only after construction and safe for concurrent use.
type LogSizer struct {
	n    int
	logT []float64
	logS [][]float64
}

// NewLogSizer precomputes log₂ of every size and selectivity (O(n²)
// exact Log2 calls, done once per instance).
func NewLogSizer(in *Instance) *LogSizer {
	n := in.N()
	ls := &LogSizer{
		n:    n,
		logT: make([]float64, n),
		logS: make([][]float64, n),
	}
	for v := 0; v < n; v++ {
		ls.logT[v] = in.T[v].Log2()
		ls.logS[v] = make([]float64, n)
		for u := 0; u < n; u++ {
			if u != v {
				ls.logS[v][u] = in.S[v][u].Log2()
			}
		}
	}
	return ls
}

// LogT returns log₂ t_v — the log-domain size of the single-relation
// prefix (v).
func (ls *LogSizer) LogT(v int) float64 { return ls.logT[v] }

// ExtendLog2 returns log₂ N(X ∪ {v}) given log₂ N(X) and the prefix set
// x: the log-domain image of the size recurrence
// N(Xv) = N(X) · t_v · ∏_{u∈X} s_vu.
func (ls *LogSizer) ExtendLog2(logSize float64, v int, x *graph.Bitset) float64 {
	f := logSize + ls.logT[v]
	x.ForEach(func(u int) { f += ls.logS[v][u] })
	return f
}

// SizesLog2 returns the float64 log₂ shadows of Sizes(z), parallel to
// it: out[i] = log₂ N_i. The differential suite asserts these track the
// exact values to well within the guard band.
func (ls *LogSizer) SizesLog2(z []int) []float64 {
	if len(z) != ls.n {
		panic(fmt.Sprintf("qoh: invalid join sequence %v", z))
	}
	out := make([]float64, ls.n)
	x := graph.NewBitset(ls.n)
	logSize := 0.0
	for i, v := range z {
		logSize = ls.ExtendLog2(logSize, v, x)
		out[i] = logSize
		x.Add(v)
	}
	return out
}
