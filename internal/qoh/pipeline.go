package qoh

import (
	"fmt"
	"sort"

	"approxqo/internal/num"
)

// Alloc is a memory allocation for the joins of one pipeline, in pages,
// parallel to the pipeline's join operations.
type Alloc []num.Num

// joinShape describes one hash join inside a pipeline: the streaming
// outer size and the on-disk inner (hash-table) size.
type joinShape struct {
	outer, inner num.Num
	hjmin        num.Num
}

// shapes lists the joins of pipeline P(z, i, k) — join indices i..k,
// 1-based as in the paper — given the precomputed sizes of z and the
// per-relation hjmin table.
func (in *Instance) shapes(z []int, sizes, hjT []num.Num, i, k int) []joinShape {
	js := make([]joinShape, 0, k-i+1)
	for j := i; j <= k; j++ {
		js = append(js, joinShape{
			outer: sizes[j-1],
			inner: in.T[z[j]], // join J_j brings in relation z[j] (0-based position j)
			hjmin: hjT[z[j]],
		})
	}
	return js
}

// hjTable precomputes hjmin(t_v) for every relation. hjmin depends only
// on the inner relation's base size, so the interval DP over O(n²)
// pipelines needs just these n values instead of an HJMin evaluation
// (a Log2 plus a fresh power of two) per join per pipeline.
func (in *Instance) hjTable() []num.Num {
	hjT := make([]num.Num, in.N())
	for v := range hjT {
		hjT[v] = in.hjmin(in.T[v])
	}
	return hjT
}

// OptimalAlloc computes a cost-minimizing memory split for one pipeline
// whose joins have the given outer/inner sizes. Because h is linear and
// decreasing in each join's memory, the LP optimum is the continuous
// knapsack: pay every join its mandatory hjmin, then spend the surplus
// on joins in decreasing order of marginal saving per page
// (outer+inner)/(inner − hjmin) — Lemma 10's "starve the joins with the
// smallest outer relations" is the special case of equal inners.
// It returns the allocation and the summed h costs, or an error if even
// the mandatory minimums exceed M.
func (in *Instance) optimalAlloc(js []joinShape) (Alloc, num.Num, error) {
	mandatory := num.Zero()
	for _, j := range js {
		mandatory = mandatory.Add(j.hjmin)
	}
	if in.M.Less(mandatory) {
		return nil, num.Num{}, fmt.Errorf("qoh: pipeline needs %v pages of mandatory memory, budget %v", mandatory, in.M)
	}
	alloc := make(Alloc, len(js))
	for idx, j := range js {
		alloc[idx] = j.hjmin
	}
	surplus := in.M.Sub(mandatory)

	// Joins that can still benefit: inner > hjmin (room for a bigger
	// hash table). Order by marginal saving per page, descending.
	type candidate struct {
		idx  int
		room num.Num // inner − hjmin
		rate num.Num // (outer+inner)/room
	}
	var cands []candidate
	for idx, j := range js {
		if j.hjmin.Less(j.inner) {
			room := j.inner.Sub(j.hjmin)
			cands = append(cands, candidate{idx: idx, room: room, rate: j.outer.Add(j.inner).Div(room)})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[b].rate.Less(cands[a].rate) })
	for _, c := range cands {
		if surplus.IsZero() {
			break
		}
		grant := c.room.Min(surplus)
		alloc[c.idx] = alloc[c.idx].Add(grant)
		surplus = surplus.Sub(grant)
	}

	total := num.Zero()
	for idx, j := range js {
		h, err := HCost(alloc[idx], j.outer, j.inner, in.psi())
		if err != nil {
			return nil, num.Num{}, err
		}
		total = total.Add(h)
	}
	return alloc, total, nil
}

// PipelineCost returns the cost of executing pipeline P(z, i, k) —
// joins J_i..J_k, 1 ≤ i ≤ k ≤ n−1 — under an optimal memory allocation:
// read N_{i−1}, sum of hash-join costs, write N_k. The allocation is
// returned alongside.
func (in *Instance) PipelineCost(z []int, i, k int) (num.Num, Alloc, error) {
	n := in.N()
	if i < 1 || k < i || k > n-1 {
		return num.Num{}, nil, fmt.Errorf("qoh: invalid pipeline bounds (%d,%d) for n=%d", i, k, n)
	}
	sizes := in.Sizes(z)
	return in.pipelineCostWithSizes(z, sizes, in.hjTable(), i, k)
}

func (in *Instance) pipelineCostWithSizes(z []int, sizes, hjT []num.Num, i, k int) (num.Num, Alloc, error) {
	in.stats.DPSubset()
	js := in.shapes(z, sizes, hjT, i, k)
	alloc, hsum, err := in.optimalAlloc(js)
	if err != nil {
		return num.Num{}, nil, err
	}
	cost := sizes[i-1].Add(hsum).Add(sizes[k])
	return cost, alloc, nil
}

// Plan is a fully specified QO_H execution: a join sequence, pipeline
// boundaries, per-pipeline memory allocations, and the total cost.
type Plan struct {
	Z      []int
	Breaks []int     // end join index of each pipeline, increasing, last = n−1
	Allocs []Alloc   // parallel to Breaks
	Costs  []num.Num // per-pipeline costs, parallel to Breaks
	Cost   num.Num
}

// Pipelines renders the boundaries as (i, k) pairs.
func (p *Plan) Pipelines() [][2]int {
	var out [][2]int
	start := 1
	for _, end := range p.Breaks {
		out = append(out, [2]int{start, end})
		start = end + 1
	}
	return out
}

// CostDecomposition evaluates a specific decomposition (given as the end
// join index of each pipeline; the last entry must be n−1) under optimal
// per-pipeline memory allocation.
func (in *Instance) CostDecomposition(z []int, breaks []int) (*Plan, error) {
	n := in.N()
	if len(breaks) == 0 || breaks[len(breaks)-1] != n-1 {
		return nil, fmt.Errorf("qoh: decomposition must end at join %d", n-1)
	}
	sizes := in.Sizes(z)
	hjT := in.hjTable()
	plan := &Plan{Z: append([]int(nil), z...), Breaks: append([]int(nil), breaks...), Cost: num.Zero()}
	start := 1
	for _, end := range breaks {
		if end < start {
			return nil, fmt.Errorf("qoh: non-increasing pipeline boundary %d", end)
		}
		cost, alloc, err := in.pipelineCostWithSizes(z, sizes, hjT, start, end)
		if err != nil {
			return nil, err
		}
		plan.Allocs = append(plan.Allocs, alloc)
		plan.Costs = append(plan.Costs, cost)
		plan.Cost = plan.Cost.Add(cost)
		start = end + 1
	}
	return plan, nil
}

// BestDecomposition finds a minimum-cost pipeline decomposition of z by
// interval DP over boundary positions, with optimal memory allocation
// inside each pipeline. It returns an error if no feasible decomposition
// exists (some join's hjmin alone exceeds M).
func (in *Instance) BestDecomposition(z []int) (*Plan, error) {
	n := in.N()
	if n < 2 {
		return nil, fmt.Errorf("qoh: need at least two relations")
	}
	in.stats.CostEval() // one candidate sequence costed end to end
	sizes := in.Sizes(z)
	hjT := in.hjTable()

	// pipe[i][k] = optimal cost of pipeline covering joins i..k (1-based),
	// or invalid Num if infeasible.
	type cell struct {
		cost  num.Num
		alloc Alloc
		ok    bool
	}
	pipe := make([][]cell, n)
	for i := 1; i <= n-1; i++ {
		pipe[i] = make([]cell, n)
		for k := i; k <= n-1; k++ {
			cost, alloc, err := in.pipelineCostWithSizes(z, sizes, hjT, i, k)
			if err == nil {
				pipe[i][k] = cell{cost: cost, alloc: alloc, ok: true}
			}
		}
	}

	// dp[k] = min cost of executing joins 1..k with a boundary after k.
	dp := make([]num.Num, n)
	choice := make([]int, n) // start join of the last pipeline ending at k
	dpOK := make([]bool, n)
	dp[0] = num.Zero()
	dpOK[0] = true
	for k := 1; k <= n-1; k++ {
		for i := 1; i <= k; i++ {
			if !dpOK[i-1] || !pipe[i][k].ok {
				continue
			}
			total := dp[i-1].Add(pipe[i][k].cost)
			if !dpOK[k] || total.Less(dp[k]) {
				dp[k], choice[k], dpOK[k] = total, i, true
			}
		}
	}
	if !dpOK[n-1] {
		return nil, fmt.Errorf("qoh: no feasible pipeline decomposition for sequence %v", z)
	}

	// Reconstruct boundaries.
	var breaks []int
	for k := n - 1; k >= 1; k = choice[k] - 1 {
		breaks = append(breaks, k)
	}
	for l, r := 0, len(breaks)-1; l < r; l, r = l+1, r-1 {
		breaks[l], breaks[r] = breaks[r], breaks[l]
	}
	return in.CostDecomposition(z, breaks)
}

// FeasibleStart reports whether v can be the first relation of any
// feasible sequence: every other relation it might hash against must fit
// its mandatory memory — in particular, a relation R with hjmin(t_R) > M
// can never be an inner, so it must come first. This implements the
// f_H reduction's forcing of v₀ to the front.
func (in *Instance) FeasibleStart(v int) bool {
	// v is the first (streaming) relation; all joins build hash tables on
	// later relations. A single join's mandatory memory must fit.
	for u := 0; u < in.N(); u++ {
		if u == v {
			continue
		}
		if in.M.Less(in.hjmin(in.T[u])) {
			return false
		}
	}
	return true
}
