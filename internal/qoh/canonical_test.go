package qoh

import (
	"math/rand"
	"testing"

	"approxqo/internal/num"
)

func TestFingerprintInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	for _, n := range []int{2, 4, 6, 9} {
		in := randomInstance(n, int64(900+n))
		want := Fingerprint(in)
		for rep := 0; rep < 200; rep++ {
			rel := Relabel(in, rng.Perm(n))
			if err := rel.Validate(); err != nil {
				t.Fatalf("n=%d rep %d: relabeled instance invalid: %v", n, rep, err)
			}
			if got := Fingerprint(rel); got != want {
				t.Fatalf("n=%d rep %d: fingerprint changed under relabeling", n, rep)
			}
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	in := randomInstance(6, 910)
	want := Fingerprint(in)

	// Different memory budget → different instance.
	mod := Relabel(in, []int{0, 1, 2, 3, 4, 5})
	mod.M = in.M.Add(num.One())
	if Fingerprint(mod) == want {
		t.Fatal("memory-perturbed instance has identical fingerprint")
	}

	// Explicit default ψ denotes the same instance as the zero value.
	eff := Relabel(in, []int{0, 1, 2, 3, 4, 5})
	eff.Psi = DefaultPsi
	if Fingerprint(eff) != want {
		t.Fatal("explicit DefaultPsi changed the fingerprint")
	}
	eff.Psi = 0.75
	if Fingerprint(eff) == want {
		t.Fatal("ψ-perturbed instance has identical fingerprint")
	}
}

func TestCanonicalizeAgreesAcrossRelabelings(t *testing.T) {
	rng := rand.New(rand.NewSource(412))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		in := randomInstance(n, int64(920+trial))
		canon, pi := Canonicalize(in)
		if err := canon.Validate(); err != nil {
			t.Fatalf("trial %d: canonical form invalid: %v", trial, err)
		}
		ref := Relabel(in, pi)
		if !canon.Q.Equal(ref.Q) {
			t.Fatalf("trial %d: canonical ≠ Relabel(in, pi)", trial)
		}
		canon2, _ := Canonicalize(Relabel(in, rng.Perm(n)))
		if !canon.Q.Equal(canon2.Q) {
			t.Fatalf("trial %d: canonical graphs differ across relabelings", trial)
		}
		for i := 0; i < n; i++ {
			if !canon.T[i].Equal(canon2.T[i]) {
				t.Fatalf("trial %d: canonical T differs across relabelings", trial)
			}
			for j := 0; j < n; j++ {
				if i != j && !canon.S[i][j].Equal(canon2.S[i][j]) {
					t.Fatalf("trial %d: canonical S differs across relabelings", trial)
				}
			}
		}
	}
}
