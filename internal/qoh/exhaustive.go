package qoh

import (
	"fmt"

	"approxqo/internal/num"
)

// MaxExhaustiveN caps exhaustive QO_H search (n! sequences, each with a
// decomposition DP).
const MaxExhaustiveN = 8

// ExactBest enumerates every join sequence (n ≤ MaxExhaustiveN) and
// returns the overall cheapest feasible plan: optimal sequence, optimal
// pipeline decomposition, optimal memory allocation. It returns an
// error if no sequence is feasible.
func (in *Instance) ExactBest() (*Plan, error) {
	n := in.N()
	if n > MaxExhaustiveN {
		return nil, fmt.Errorf("qoh: exhaustive search capped at n ≤ %d, got %d", MaxExhaustiveN, n)
	}
	if n < 2 {
		return nil, fmt.Errorf("qoh: need at least two relations")
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var best *Plan
	var visit func(k int)
	visit = func(k int) {
		if k == n {
			plan, err := in.BestDecomposition(perm)
			if err != nil {
				return
			}
			if best == nil || plan.Cost.Less(best.Cost) {
				best = plan
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			visit(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	visit(0)
	if best == nil {
		return nil, fmt.Errorf("qoh: no feasible join sequence")
	}
	return best, nil
}

// Decide answers the paper's QO_H decision problem exactly: does a
// feasible join sequence, pipeline decomposition and memory allocation
// with total cost ≤ bound exist? On YES it returns an optimal witness
// plan. Limited to n ≤ MaxExhaustiveN.
func (in *Instance) Decide(bound num.Num) (bool, *Plan, error) {
	best, err := in.ExactBest()
	if err != nil {
		return false, nil, err
	}
	if best.Cost.LessEq(bound) {
		return true, best, nil
	}
	return false, nil, nil
}
