package core

import (
	"fmt"
	"math"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qoh"
	"approxqo/internal/qon"
)

// EdgeBudget is an edge-count function e(m) for sparse-query-graph
// instances (§6): the constructed query graph on m vertices must have
// exactly e(m) edges.
type EdgeBudget func(m int) int

// SparseBudget returns e(m) = m + ⌈m^τ⌉, the sparse end of the paper's
// admissible range for a given 0 < τ < 1.
func SparseBudget(tau float64) EdgeBudget {
	if tau <= 0 || tau >= 1 {
		panic(fmt.Sprintf("core: tau = %v outside (0,1)", tau))
	}
	return func(m int) int { return m + int(math.Ceil(math.Pow(float64(m), tau))) }
}

// DenseBudget returns the densest e(m) the §6 construction can realize:
// the auxiliary graph G₂ plus the source graph plus one bridge edge,
// minus ⌈m^τ⌉. (The paper states the admissible range as
// m(m−1)/2 − Θ(m^τ); the literal construction — E = E₁ ∪ E₂ ∪ {bridge}
// — tops out lower, at |E₁| + (m−n choose 2) + 1, because it adds no
// V₁×V₂ edges beyond the bridge. We expose the constructible maximum;
// see DESIGN.md.)
func DenseBudget(tau float64, sourceN, sourceEdges int) EdgeBudget {
	if tau <= 0 || tau >= 1 {
		panic(fmt.Sprintf("core: tau = %v outside (0,1)", tau))
	}
	return func(m int) int {
		aux := m - sourceN
		max := sourceEdges + aux*(aux-1)/2 + 1
		return max - int(math.Ceil(math.Pow(float64(m), tau)))
	}
}

// SparseFNParams parameterizes f_{N,e}.
type SparseFNParams struct {
	FNParams
	// B = log₂ β for the auxiliary graph's selectivities and sizes
	// (paper: β = 4, i.e. B = 2). Zero means 2.
	B int64
	// K is the vertex blow-up exponent: the query graph has m = n^K
	// vertices (paper: K = Θ(2/τ)). Must be ≥ 2.
	K int
	// Budget is the edge-count function e(m).
	Budget EdgeBudget
	// Seed drives the random construction of the connected auxiliary
	// graph G₂.
	Seed int64
}

// SparseFNInstance is the output of the f_{N,e} reduction.
type SparseFNInstance struct {
	*FNInstance
	// M is the total vertex count n^K; SourceN the CLIQUE graph's n.
	M, SourceN int
	// Beta = 2^B, U = β^n (auxiliary relation size).
	Beta, U num.Num
	// Bridge is the {v₁, v₂} edge joining V₁ (vertices 0..n−1) to the
	// auxiliary block V₂ (vertices n..m−1).
	Bridge [2]int
}

// SparseFN applies the f_{N,e} reduction of §6.1: embed the CLIQUE
// graph G₁ into a query graph on m = n^K vertices with exactly e(m)
// edges by attaching a connected auxiliary graph G₂ whose relations are
// tiny (β^n versus α^{Θ(n)}) and whose selectivities are mild (1/β), so
// the added block perturbs costs by at most an α^{O(1)} factor.
//
// One deliberate deviation from the paper's text: the bridge edge's
// access cost on the V₁ side is set to t/β (its QO_N lower bound
// t·s_bridge) rather than the t/α the paper's blanket rule would give,
// which would violate the model's own w ≥ t·s constraint; the change is
// irrelevant to every cost the analysis touches.
func SparseFN(g1 *graph.Graph, p SparseFNParams) (*SparseFNInstance, error) {
	n := g1.N()
	if n < 2 {
		return nil, fmt.Errorf("core: f_{N,e} needs at least two source vertices")
	}
	if err := p.FNParams.validate(n); err != nil {
		return nil, err
	}
	if p.K < 2 {
		return nil, fmt.Errorf("core: need blow-up exponent K ≥ 2, got %d", p.K)
	}
	if p.Budget == nil {
		return nil, fmt.Errorf("core: nil edge budget")
	}
	b := p.B
	if b == 0 {
		b = 2
	}
	m := intPow(n, p.K)
	// Negligibility of the auxiliary block (the paper's α = β^{n^{2k+2}},
	// scaled to the minimum that makes the proof sketch's bounds hold):
	// the product of every auxiliary relation size is u^{m−n} = 2^{B·n·(m−n)},
	// which must stay below a single factor of α.
	if p.A < b*int64(n)*int64(m) {
		return nil, fmt.Errorf("core: A = %d too small — need A ≥ B·n·m = %d for the auxiliary block to be negligible", p.A, b*int64(n)*int64(m))
	}
	e1 := g1.EdgeCount()
	e2 := p.Budget(m) - e1 - 1
	auxN := m - n
	if auxN < 1 {
		return nil, fmt.Errorf("core: blow-up produced no auxiliary vertices")
	}
	if e2 < auxN-1 || e2 > auxN*(auxN-1)/2 {
		return nil, fmt.Errorf("core: edge budget e(%d)=%d infeasible: G₂ needs %d edges in [%d, %d]",
			m, p.Budget(m), e2, auxN-1, auxN*(auxN-1)/2)
	}

	g2 := graph.ConnectedRandom(auxN, e2, p.Seed)
	q := g1.DisjointUnion(g2)
	bridge := [2]int{0, n} // v₁ = source vertex 0, v₂ = first auxiliary vertex
	q.AddEdge(bridge[0], bridge[1])

	peak := (p.OmegaYes + p.OmegaNo + 1) / 2
	alpha := num.Pow2(p.A)
	beta := num.Pow2(b)
	t := num.Pow2(p.A * int64(peak))
	w := num.Pow2(p.A * int64(peak-1))
	u := num.Pow2(b * int64(n))

	inst := &qon.Instance{Q: q, T: make([]num.Num, m)}
	for v := 0; v < m; v++ {
		if v < n {
			inst.T[v] = t
		} else {
			inst.T[v] = u
		}
	}
	one := num.One()
	invAlpha, invBeta := alpha.Inv(), beta.Inv()
	inst.S = make([][]num.Num, m)
	inst.W = make([][]num.Num, m)
	for i := 0; i < m; i++ {
		inst.S[i] = make([]num.Num, m)
		inst.W[i] = make([]num.Num, m)
		for j := 0; j < m; j++ {
			if i == j {
				inst.S[i][j] = one
				inst.W[i][j] = inst.T[i]
				continue
			}
			if !q.HasEdge(i, j) {
				inst.S[i][j] = one
				inst.W[i][j] = inst.T[i]
				continue
			}
			switch {
			case i < n && j < n: // E₁ edge
				inst.S[i][j] = invAlpha
				inst.W[i][j] = t.Mul(invAlpha)
			case i >= n && j >= n: // E₂ edge
				inst.S[i][j] = invBeta
				inst.W[i][j] = u.Mul(invBeta)
			case i < n: // bridge, V₁ side: lower bound t·s = t/β
				inst.S[i][j] = invBeta
				inst.W[i][j] = t.Mul(invBeta)
			default: // bridge, V₂ side
				inst.S[i][j] = invBeta
				inst.W[i][j] = u.Mul(invBeta)
			}
		}
	}

	fn := &FNInstance{
		QON:    inst,
		Params: p.FNParams,
		Alpha:  alpha,
		T:      t,
		W:      w,
		Peak:   peak,
	}
	fn.K = w.Mul(alpha.Pow(int64(peak)*int64(peak+1)/2 + 1))
	fn.NoLowerBound = fn.K.Mul(alpha.Pow(int64(peak - p.OmegaNo - 1)))
	return &SparseFNInstance{
		FNInstance: fn,
		M:          m,
		SourceN:    n,
		Beta:       beta,
		U:          u,
		Bridge:     bridge,
	}, nil
}

// SparseFHParams parameterizes f_{H,e}.
type SparseFHParams struct {
	FHParams
	// K is the vertex blow-up exponent: the query graph has m = n^K
	// vertices. Must be ≥ 2.
	K int
	// Budget is the edge-count function e(m).
	Budget EdgeBudget
	// Seed drives the construction of G₂.
	Seed int64
}

// SparseFHInstance is the output of the f_{H,e} reduction. Relations:
// vertex 0 is R₀, vertices 1..n are the source relations, vertices
// n+1..m−1 the auxiliary relations.
type SparseFHInstance struct {
	*FHInstance
	M int // total relation count n^K
	// Bridge joins source vertex v₁ (=1) to the first auxiliary vertex.
	Bridge [2]int
}

// SparseFH applies the f_{H,e} reduction of §6.2: the §5 construction
// on V₁ ∪ {v₀}, plus a connected auxiliary graph G₂ of tiny relations
// (size 2^n, selectivity ½ edges) bridged to V₁; the v₀–V₁ selectivities
// drop from ½ to 2^{−n} to absorb the auxiliary block's size product.
func SparseFH(g1 *graph.Graph, p SparseFHParams) (*SparseFHInstance, error) {
	n := g1.N()
	if n < 3 || n%3 != 0 {
		return nil, fmt.Errorf("core: f_{H,e} needs source n divisible by 3, got %d", n)
	}
	if p.K < 2 {
		return nil, fmt.Errorf("core: need blow-up exponent K ≥ 2, got %d", p.K)
	}
	if p.Budget == nil {
		return nil, fmt.Errorf("core: nil edge budget")
	}
	m := intPow(n, p.K)
	// Negligibility (paper: α = Ω(4^{n^{k+1}})): the product of the
	// auxiliary relation sizes is 2^{n·(m−n−1)} < 2^{n·m}, which must
	// stay below a single factor of α.
	if p.A < int64(n)*int64(m) {
		return nil, fmt.Errorf("core: A = %d too small — need A ≥ n·m = %d for the auxiliary block to be negligible", p.A, int64(n)*int64(m))
	}
	base, err := FH(g1, p.FHParams)
	if err != nil {
		return nil, err
	}
	auxN := m - n - 1
	if auxN < 1 {
		return nil, fmt.Errorf("core: blow-up produced no auxiliary vertices")
	}
	e1 := g1.EdgeCount()
	e2 := p.Budget(m) - e1 - n - 1
	if e2 < auxN-1 || e2 > auxN*(auxN-1)/2 {
		return nil, fmt.Errorf("core: edge budget e(%d)=%d infeasible: G₂ needs %d edges in [%d, %d]",
			m, p.Budget(m), e2, auxN-1, auxN*(auxN-1)/2)
	}
	g2 := graph.ConnectedRandom(auxN, e2, p.Seed)

	// Extend the base QO_H instance with the auxiliary block.
	q := graph.New(m)
	for _, e := range base.QOH.Q.Edges() {
		q.AddEdge(e[0], e[1])
	}
	for _, e := range g2.Edges() {
		q.AddEdge(e[0]+n+1, e[1]+n+1)
	}
	bridge := [2]int{1, n + 1}
	q.AddEdge(bridge[0], bridge[1])

	inst := &qoh.Instance{
		Q:   q,
		T:   make([]num.Num, m),
		M:   base.M,
		Psi: base.QOH.Psi,
	}
	copy(inst.T, base.QOH.T)
	auxSize := num.Pow2(int64(n))
	for v := n + 1; v < m; v++ {
		inst.T[v] = auxSize
	}
	one := num.One()
	half := num.Pow2(-1)
	invTwoN := num.Pow2(-int64(n))
	invAlpha := base.Alpha.Inv()
	inst.S = make([][]num.Num, m)
	for i := 0; i < m; i++ {
		inst.S[i] = make([]num.Num, m)
		for j := 0; j < m; j++ {
			switch {
			case i == j || !q.HasEdge(i, j):
				inst.S[i][j] = one
			case i == 0 || j == 0: // v₀–V₁ edges
				inst.S[i][j] = invTwoN
			case i <= n && j <= n: // E₁
				inst.S[i][j] = invAlpha
			default: // E₂ and the bridge
				inst.S[i][j] = half
			}
		}
	}

	fh := &FHInstance{
		QOH:     inst,
		Params:  base.Params,
		NSource: n,
		Alpha:   base.Alpha,
		T:       base.T,
		T0:      base.T0,
		M:       base.M,
		L:       base.L,
	}
	return &SparseFHInstance{FHInstance: fh, M: m, Bridge: bridge}, nil
}

// WitnessSequenceSparse orders the relations R₀, clique (2n/3), rest of
// V₁, then the auxiliary block (reachable through the bridge).
func (s *SparseFHInstance) WitnessSequenceSparse(clique []int) []int {
	z := s.WitnessSequence(clique) // R₀ + source relations
	for v := s.NSource + 1; v < s.M; v++ {
		z = append(z, v)
	}
	return z
}

func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
