package core

import (
	"math/rand"
	"testing"

	"approxqo/internal/cliquered"
	"approxqo/internal/qon"
	"approxqo/internal/stats"
)

// Differential on hardness instances: the f_N reduction builds uniform
// power-of-two instances whose sequence costs collide massively, so the
// log₂ fast path sees exact ties everywhere — every Rank must still
// agree with the exact ordering, and the guard band must actually fire.
func TestLogCosterRanksHardnessInstances(t *testing.T) {
	yes, no := cliquered.YesNoPair(12, 0.75, 0.25)
	for name, g := range map[string]*cliquered.Certified{"yes": &yes, "no": &no} {
		fn, err := FN(g.G, FNParams{A: 4, OmegaYes: 9, OmegaNo: 6})
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.Stats{}
		in := fn.QON.WithStats(st)
		lc := qon.NewLogCoster(in)
		rng := rand.New(rand.NewSource(7))
		n := in.N()
		for trial := 0; trial < 20; trial++ {
			a, b := qon.Sequence(rng.Perm(n)), qon.Sequence(rng.Perm(n))
			want := in.Cost(a).Cmp(in.Cost(b))
			if got := lc.Rank(a, b); got != want {
				t.Fatalf("%s instance: Rank(%v, %v) = %d, exact order %d", name, a, b, got, want)
			}
		}
		if snap := st.Snapshot(); snap.Fallbacks == 0 {
			t.Errorf("%s instance: no guard-band fallback across 20 power-of-two rankings", name)
		}
	}
}
