package core

import (
	"fmt"
	"math"

	"approxqo/internal/num"
)

// GapCertificate records, for one YES/NO instance pair of a hardness
// reduction, the costs the theorem promises and the costs actually
// measured on the constructed instances. The experiments assert the
// *shape* of the theorem: YesMeasured ≤ YesBound < NoBound ≤ every
// observed NO cost, with log₂(NoBound/YesBound) growing as Θ(n·log α).
type GapCertificate struct {
	// Name identifies the experiment (e.g. "Theorem 9, n=24").
	Name string
	// YesBound is the promised upper bound on the YES optimum
	// (K_{c,d}(α,n) for f_N, L(α,n)-scale for f_H).
	YesBound num.Num
	// NoBound is the promised lower bound on every NO plan.
	NoBound num.Num
	// YesMeasured is the cost of the constructed YES witness plan.
	YesMeasured num.Num
	// NoMeasured is the cheapest NO plan found (exact when small enough
	// to enumerate, otherwise the best of the optimizer ensemble —
	// an upper bound on the NO optimum, itself ≥ NoBound by the theorem).
	NoMeasured num.Num
	// NoExact reports whether NoMeasured is the exact NO optimum.
	NoExact bool
}

// GapLog2 returns log₂(NoMeasured / YesMeasured), the measured
// hardness gap.
func (g *GapCertificate) GapLog2() float64 {
	return g.NoMeasured.Log2() - g.YesMeasured.Log2()
}

// PromisedGapLog2 returns log₂(NoBound / YesBound), the gap the theorem
// promises.
func (g *GapCertificate) PromisedGapLog2() float64 {
	return g.NoBound.Log2() - g.YesBound.Log2()
}

// Check verifies the certificate's invariants and returns a descriptive
// error naming the first violated one.
func (g *GapCertificate) Check() error {
	if g.YesBound.Less(g.YesMeasured) {
		return fmt.Errorf("%s: YES witness cost 2^%.1f exceeds promised bound 2^%.1f",
			g.Name, g.YesMeasured.Log2(), g.YesBound.Log2())
	}
	if g.NoMeasured.Less(g.NoBound) {
		return fmt.Errorf("%s: observed NO cost 2^%.1f is below promised lower bound 2^%.1f",
			g.Name, g.NoMeasured.Log2(), g.NoBound.Log2())
	}
	if g.NoMeasured.LessEq(g.YesMeasured) {
		return fmt.Errorf("%s: no gap — NO cost 2^%.1f ≤ YES cost 2^%.1f",
			g.Name, g.NoMeasured.Log2(), g.YesMeasured.Log2())
	}
	return nil
}

// CompetitiveRatioExponent translates the measured gap into the
// theorem's 2^{log^{1−δ} K} form: it returns the exponent η such that
// gap = 2^{(log₂ K)^η}, i.e. η = log(log₂ gap)/log(log₂ K). Theorem 9
// promises η → 1 as δ → 0.
func (g *GapCertificate) CompetitiveRatioExponent() float64 {
	lgGap := g.GapLog2()
	lgK := g.YesMeasured.Log2()
	if lgGap <= 1 || lgK <= 2 {
		return 0
	}
	return math.Log(lgGap) / math.Log(lgK)
}
