package core

import (
	"fmt"

	"approxqo/internal/cliquered"
	"approxqo/internal/num"
	"approxqo/internal/qoh"
	"approxqo/internal/qon"
	"approxqo/internal/sat"
)

// Theorem9Result is the end-to-end Theorem 9 pipeline applied to one
// formula: 3SAT → (Lemma 3) CLIQUE → (f_N) QO_N.
type Theorem9Result struct {
	Formula     *sat.Formula
	Satisfiable bool
	Clique      *cliquered.Instance
	FN          *FNInstance
	// Witness is the Lemma 6 clique-first sequence (satisfiable
	// formulas only) and WitnessCost its cost, which Theorem 9 relates
	// to K = FN.K.
	Witness     qon.Sequence
	WitnessCost num.Num
}

// Theorem9 runs the paper's Theorem 9 chain on a 3-CNF formula.
//
// delta is the promise gap in clause failures: the NO-side clique bound
// is CliqueIfSat − delta, sound for formulas in which at least delta
// clauses fail under every assignment (the PCP amplification of
// Theorem 1 supplies delta = Θ(m) in the paper; callers verify their
// formulas, e.g. with sat.MaxSat, when they need the NO promise).
func Theorem9(f *sat.Formula, a int64, delta int) (*Theorem9Result, error) {
	if delta < 1 {
		return nil, fmt.Errorf("core: need promise gap delta ≥ 1, got %d", delta)
	}
	cl, err := cliquered.Lemma3(f)
	if err != nil {
		return nil, err
	}
	if cl.CliqueIfSat-delta < 1 {
		return nil, fmt.Errorf("core: delta %d exhausts the clique promise %d", delta, cl.CliqueIfSat)
	}
	fn, err := FN(cl.G, FNParams{A: a, OmegaYes: cl.CliqueIfSat, OmegaNo: cl.CliqueIfSat - delta})
	if err != nil {
		return nil, err
	}
	res := &Theorem9Result{Formula: f, Clique: cl, FN: fn}
	ok, model := sat.Solve(f)
	res.Satisfiable = ok
	if ok {
		witnessClique, err := cl.WitnessClique(f, model)
		if err != nil {
			return nil, err
		}
		res.Witness, res.WitnessCost, err = fn.YesWitnessCost(witnessClique)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Theorem16 runs the sparse-graph variant of the Theorem 9 chain:
// 3SAT → (Lemma 3) CLIQUE → (f_{N,e}) sparse QO_N. The edge budget and
// blow-up exponent come from params (everything except the FNParams,
// which this function derives from the Lemma 3 instance and delta as in
// Theorem9).
func Theorem16(f *sat.Formula, params SparseFNParams, delta int) (*cliquered.Instance, *SparseFNInstance, error) {
	if delta < 1 {
		return nil, nil, fmt.Errorf("core: need promise gap delta ≥ 1, got %d", delta)
	}
	cl, err := cliquered.Lemma3(f)
	if err != nil {
		return nil, nil, err
	}
	if cl.CliqueIfSat-delta < 1 {
		return nil, nil, fmt.Errorf("core: delta %d exhausts the clique promise %d", delta, cl.CliqueIfSat)
	}
	params.OmegaYes = cl.CliqueIfSat
	params.OmegaNo = cl.CliqueIfSat - delta
	sp, err := SparseFN(cl.G, params)
	if err != nil {
		return nil, nil, err
	}
	return cl, sp, nil
}

// Theorem17 runs the sparse-graph variant of the Theorem 15 chain:
// 3SAT → (Lemma 4) ⅔CLIQUE → (f_{H,e}) sparse QO_H.
func Theorem17(f *sat.Formula, params SparseFHParams) (*cliquered.Instance, *SparseFHInstance, error) {
	cl, err := cliquered.Lemma4(f)
	if err != nil {
		return nil, nil, err
	}
	sp, err := SparseFH(cl.G, params)
	if err != nil {
		return nil, nil, err
	}
	return cl, sp, nil
}

// Theorem15Result is the end-to-end Theorem 15 pipeline applied to one
// formula: 3SAT → (Lemma 4) ⅔CLIQUE → (f_H) QO_H.
type Theorem15Result struct {
	Formula     *sat.Formula
	Satisfiable bool
	Clique      *cliquered.Instance
	FH          *FHInstance
	// WitnessPlan is the Lemma 12 five-pipeline plan (satisfiable
	// formulas only), whose cost Theorem 15 relates to L(α,n).
	WitnessPlan *qoh.Plan
}

// Theorem15 runs the paper's Theorem 15 chain on a 3-CNF formula. The
// Lemma 4 graph has n = 3(v+2m) vertices, automatically divisible by 3
// as f_H requires; a must keep a·(n−1) even (pass an even a).
func Theorem15(f *sat.Formula, a int64) (*Theorem15Result, error) {
	cl, err := cliquered.Lemma4(f)
	if err != nil {
		return nil, err
	}
	fh, err := FH(cl.G, FHParams{A: a})
	if err != nil {
		return nil, err
	}
	res := &Theorem15Result{Formula: f, Clique: cl, FH: fh}
	ok, model := sat.Solve(f)
	res.Satisfiable = ok
	if ok {
		witnessClique, err := cl.WitnessClique(f, model)
		if err != nil {
			return nil, err
		}
		res.WitnessPlan, err = fh.YesWitnessPlan(witnessClique)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
