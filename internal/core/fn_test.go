package core

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"approxqo/internal/cliquered"
	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/opt"
)

var ctx = context.Background()

func TestFNConstruction(t *testing.T) {
	yes, _ := cliquered.YesNoPair(12, 0.75, 0.25)
	fn, err := FN(yes.G, FNParams{A: 4, OmegaYes: 9, OmegaNo: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.QON.Validate(); err != nil {
		t.Fatalf("constructed instance invalid: %v", err)
	}
	// peak = ⌈(9+6)/2⌉ = 8; t = α^8, w = α^7, α = 16.
	if fn.Peak != 8 {
		t.Errorf("peak = %d, want 8", fn.Peak)
	}
	if got := fn.T.Log2(); got != 4*8 {
		t.Errorf("log₂ t = %v, want 32", got)
	}
	if got := fn.W.Log2(); got != 4*7 {
		t.Errorf("log₂ w = %v, want 28", got)
	}
	// K = w·α^{8·9/2+1} = w·α^{37} → log₂ = 28 + 4·37 = 176.
	if got := fn.K.Log2(); got != 176 {
		t.Errorf("log₂ K = %v, want 176", got)
	}
	// NoLowerBound = K·α^{8−6−1} = K·α.
	if got := fn.NoLowerBound.Log2(); got != 176+4 {
		t.Errorf("log₂ NoLowerBound = %v, want 180", got)
	}
}

func TestFNParamValidation(t *testing.T) {
	g := graph.Complete(6)
	cases := []FNParams{
		{A: 0, OmegaYes: 4, OmegaNo: 2},
		{A: 2, OmegaYes: 2, OmegaNo: 4}, // reversed
		{A: 2, OmegaYes: 4, OmegaNo: 0}, // zero NO
		{A: 2, OmegaYes: 7, OmegaNo: 4}, // OmegaYes > n
		{A: 2, OmegaYes: 4, OmegaNo: 4}, // equal
	}
	for i, p := range cases {
		if _, err := FN(g, p); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	if _, err := FN(graph.New(1), FNParams{A: 2, OmegaYes: 1, OmegaNo: 1}); err == nil {
		t.Error("single-vertex graph accepted")
	}
}

func TestCliqueFirst(t *testing.T) {
	g := graph.CompleteMultipartite([]int{2, 2, 1, 1})
	clique := g.MaxClique()
	z := CliqueFirst(g, clique)
	if len(z) != g.N() {
		t.Fatalf("sequence length %d, want %d", len(z), g.N())
	}
	seen := map[int]bool{}
	for _, v := range z {
		if seen[v] {
			t.Fatalf("duplicate vertex %d", v)
		}
		seen[v] = true
	}
	for i, v := range clique {
		if z[i] != v {
			t.Fatal("clique vertices not first")
		}
	}
}

func TestCliqueFirstConnectedAvoidsCartesians(t *testing.T) {
	g := graph.CompleteMultipartite([]int{3, 3, 3})
	fn, err := FN(g, FNParams{A: 2, OmegaYes: 3, OmegaNo: 1})
	if err != nil {
		t.Fatal(err)
	}
	z := CliqueFirst(g, g.MaxClique())
	if fn.QON.HasCartesianProduct(z) {
		t.Error("clique-first sequence has cartesian products on a connected graph")
	}
}

func TestYesWitnessCostRejects(t *testing.T) {
	yes, _ := cliquered.YesNoPair(12, 0.75, 0.25)
	fn, err := FN(yes.G, FNParams{A: 4, OmegaYes: 9, OmegaNo: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.YesWitnessCost([]int{0, 1}); err == nil {
		t.Error("undersized clique accepted")
	}
	// 12 vertices that are not a clique.
	notClique := make([]int, 12)
	for i := range notClique {
		notClique[i] = i
	}
	if _, _, err := fn.YesWitnessCost(notClique); err == nil {
		t.Error("non-clique witness accepted")
	}
}

// The heart of Theorem 9 at certifiable scale: on a matched YES/NO pair
// the exact optima straddle K and the promised NO lower bound.
func TestTheorem9GapCertified(t *testing.T) {
	const n, a = 12, 6
	yes, no := cliquered.YesNoPair(n, 0.75, 0.25) // ω = 9 vs 6
	params := FNParams{A: a, OmegaYes: yes.Omega, OmegaNo: no.Omega}

	fnYes, err := FN(yes.G, params)
	if err != nil {
		t.Fatal(err)
	}
	fnNo, err := FN(no.G, params)
	if err != nil {
		t.Fatal(err)
	}
	dp := opt.DP{MaxN: 14}
	yesOpt, err := dp.Optimize(ctx, fnYes.QON)
	if err != nil {
		t.Fatal(err)
	}
	noOpt, err := dp.Optimize(ctx, fnNo.QON)
	if err != nil {
		t.Fatal(err)
	}

	cert := &GapCertificate{
		Name:        "Theorem 9 certified pair n=12",
		YesBound:    fnYes.K,
		NoBound:     fnNo.NoLowerBound,
		YesMeasured: yesOpt.Cost,
		NoMeasured:  noOpt.Cost,
		NoExact:     true,
	}
	if err := cert.Check(); err != nil {
		t.Fatalf("gap certificate violated: %v", err)
	}
	if cert.GapLog2() <= 0 {
		t.Error("no measured gap")
	}
	// Witness (Lemma 6) bounds the YES optimum from above by K too.
	clique := yes.G.MaxClique()
	_, wc, err := fnYes.YesWitnessCost(clique)
	if err != nil {
		t.Fatal(err)
	}
	if fnYes.K.Less(wc) {
		t.Errorf("witness cost 2^%.1f exceeds K 2^%.1f", wc.Log2(), fnYes.K.Log2())
	}
	if wc.Less(yesOpt.Cost) {
		t.Error("witness cheaper than certified optimum")
	}
}

// Lemma 5/6 shape: along a clique-first YES sequence, the per-join cost
// profile rises to its maximum within one position of Peak and the total
// is dominated by the peak term.
func TestLemma6Profile(t *testing.T) {
	yes, _ := cliquered.YesNoPair(16, 0.75, 0.25) // ω = 12
	fn, err := FN(yes.G, FNParams{A: 6, OmegaYes: 12, OmegaNo: 8})
	if err != nil {
		t.Fatal(err)
	}
	z := CliqueFirst(yes.G, yes.G.MaxClique())
	profile := fn.ProfileH(z)
	argmax := 0
	for i := range profile {
		if profile[argmax].Less(profile[i]) {
			argmax = i
		}
	}
	// H_i is 1-indexed in the paper; profile[i] is H_{i+1}.
	peakPos := argmax + 1
	if peakPos < fn.Peak-1 || peakPos > fn.Peak+1 {
		t.Errorf("profile peak at %d, want within 1 of %d", peakPos, fn.Peak)
	}
	// Rising up to the peak: strictly increasing through the clique.
	for i := 0; i+1 < fn.Peak-1; i++ {
		if profile[i+1].LessEq(profile[i]) {
			t.Errorf("profile not rising at join %d", i+1)
		}
	}
	// Total ≤ K (Lemma 6).
	total := num.Sum(profile...)
	if fn.K.Less(total) {
		t.Errorf("profile total 2^%.1f exceeds K 2^%.1f", total.Log2(), fn.K.Log2())
	}
}

// Lemma 8's lower bound is claimed for *every* sequence of a NO
// instance; spot-check it against the whole heuristic ensemble plus the
// exact optimum.
func TestLemma8LowerBoundSampled(t *testing.T) {
	_, no := cliquered.YesNoPair(12, 0.75, 0.25)
	fn, err := FN(no.G, FNParams{A: 4, OmegaYes: 9, OmegaNo: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range append(opt.Heuristics(opt.WithSeed(3)), opt.NewDP()) {
		r, err := o.Optimize(ctx, fn.QON)
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		if r.Cost.Less(fn.NoLowerBound) {
			t.Errorf("%s found cost 2^%.1f below the Lemma 8 bound 2^%.1f",
				o.Name(), r.Cost.Log2(), fn.NoLowerBound.Log2())
		}
	}
}

// Property: on random certified pairs with random promise parameters,
// the Theorem 9 certificate holds with exact DP optima on both sides.
func TestQuickFNGapRandomParams(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 8 // 8..12
		// Promise gap ≥ 3 so the promised separation is strict.
		omegaNo := rng.Intn(n-5) + 2
		omegaYes := omegaNo + rng.Intn(n-omegaNo-3) + 3
		if omegaYes > n {
			return true // discard
		}
		yes := cliquered.CertifiedCliqueGraph(n, omegaYes)
		no := cliquered.CertifiedCliqueGraph(n, omegaNo)
		params := FNParams{A: int64(rng.Intn(8) + 4), OmegaYes: omegaYes, OmegaNo: omegaNo}
		fnYes, err := FN(yes.G, params)
		if err != nil {
			return false
		}
		fnNo, err := FN(no.G, params)
		if err != nil {
			return false
		}
		dp := opt.NewDP()
		yesOpt, err1 := dp.Optimize(ctx, fnYes.QON)
		noOpt, err2 := dp.Optimize(ctx, fnNo.QON)
		if err1 != nil || err2 != nil {
			return false
		}
		// Lemma 8 lower bound is unconditional; the YES-≤-K side needs
		// Lemma 6's asymptotic regime, so only assert what is promised
		// unconditionally at every size: the NO bound and gap direction.
		if noOpt.Cost.Less(fnNo.NoLowerBound) {
			return false
		}
		return yesOpt.Cost.Less(noOpt.Cost)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
