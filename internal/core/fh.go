package core

import (
	"fmt"

	"approxqo/internal/graph"
	"approxqo/internal/num"
	"approxqo/internal/qoh"
)

// FHParams parameterizes the f_H reduction.
type FHParams struct {
	// A = log₂ α; the paper uses α = Ω(4^n). A·(n−1) must be even so the
	// relation size t = α^{(n−1)/2} is an exact power of two.
	A int64
	// Psi is the hjmin exponent (0 means qoh.DefaultPsi).
	Psi float64
	// T0Power is the exponent of the outermost relation's size,
	// t₀ = (n·t)^T0Power. The paper uses Θ((nt)^{12}); any power ≥ 3
	// with ψ = ½ already forces hjmin(t₀) > M. Zero means 12.
	T0Power int64
}

func (p FHParams) t0Power() int64 {
	if p.T0Power == 0 {
		return 12
	}
	return p.T0Power
}

// FHInstance is the output of the f_H reduction: a QO_H instance plus
// the quantities Theorem 15 reasons about. Vertex 0 of the QO_H query
// graph is the new relation R₀; source vertex i maps to vertex i+1.
type FHInstance struct {
	QOH    *qoh.Instance
	Params FHParams
	// NSource is n, the source ⅔CLIQUE graph's vertex count (the QO_H
	// instance has n+1 relations). Divisible by 3.
	NSource int
	// Alpha = 2^A, T = α^{(n−1)/2}, T0 = (n·t)^{T0Power} rounded to a
	// power of two, M = (n/3 − 1)·t + 2·hjmin(t).
	Alpha, T, T0, M num.Num
	// L is L(α,n) = t₀·α^{n²/9}: Theorem 15's YES upper bound (up to
	// the constant the O(·) hides).
	L num.Num
}

// FH applies the f_H reduction of §5 to a ⅔CLIQUE graph g (whose vertex
// count must be divisible by 3): add an outermost relation R₀ joined to
// every source relation with selectivity ½, give source edges
// selectivity 1/α, size every source relation t = α^{(n−1)/2}, make R₀
// too large to ever be a hash-join inner, and set the pipeline memory to
// (n/3 − 1)·t + 2·hjmin(t).
func FH(g *graph.Graph, params FHParams) (*FHInstance, error) {
	n := g.N()
	if n < 3 || n%3 != 0 {
		return nil, fmt.Errorf("core: f_H needs n divisible by 3, got %d", n)
	}
	if params.A < 1 {
		return nil, fmt.Errorf("core: need A ≥ 1, got %d", params.A)
	}
	if params.A*int64(n-1)%2 != 0 {
		return nil, fmt.Errorf("core: A·(n−1) = %d must be even for an exact t", params.A*int64(n-1))
	}
	psi := params.Psi
	if psi == 0 {
		psi = qoh.DefaultPsi
	}
	if psi <= 0 || psi >= 1 {
		return nil, fmt.Errorf("core: psi = %v outside (0,1)", psi)
	}

	alpha := num.Pow2(params.A)
	t := num.Pow2(params.A * int64(n-1) / 2)

	// Query graph: vertex 0 is R₀, wired to every source vertex.
	q := graph.New(n + 1)
	for v := 0; v < n; v++ {
		q.AddEdge(0, v+1)
	}
	for _, e := range g.Edges() {
		q.AddEdge(e[0]+1, e[1]+1)
	}

	// t₀ = (n·t)^power, rounded up to a power of two so every quantity
	// stays exact. The only property the reduction needs is
	// hjmin(t₀) > M, which the rounding preserves.
	nt := num.FromInt64(int64(n)).Mul(t)
	t0 := roundUpPow2(nt.Pow(params.t0Power()))

	hjminT := qoh.HJMin(t, psi)
	mem := num.FromInt64(int64(n/3 - 1)).Mul(t).Add(hjminT.MulInt64(2))

	inst := &qoh.Instance{
		Q:   q,
		T:   make([]num.Num, n+1),
		S:   make([][]num.Num, n+1),
		M:   mem,
		Psi: psi,
	}
	inst.T[0] = t0
	for v := 1; v <= n; v++ {
		inst.T[v] = t
	}
	one := num.One()
	half := num.Pow2(-1)
	invAlpha := alpha.Inv()
	for i := 0; i <= n; i++ {
		inst.S[i] = make([]num.Num, n+1)
		for j := 0; j <= n; j++ {
			switch {
			case i == j:
				inst.S[i][j] = one
			case i == 0 || j == 0:
				inst.S[i][j] = half
			case g.HasEdge(i-1, j-1):
				inst.S[i][j] = invAlpha
			default:
				inst.S[i][j] = one
			}
		}
	}

	fh := &FHInstance{
		QOH:     inst,
		Params:  params,
		NSource: n,
		Alpha:   alpha,
		T:       t,
		T0:      t0,
		M:       mem,
	}
	fh.L = t0.Mul(alpha.Pow(int64(n) * int64(n) / 9))

	// The forcing property: R₀ must be outermost.
	if !mem.Less(qoh.HJMin(t0, psi)) {
		return nil, fmt.Errorf("core: t₀ too small — hjmin(t₀) = %v must exceed M = %v", qoh.HJMin(t0, psi), mem)
	}
	return fh, nil
}

// roundUpPow2 returns the smallest power of two ≥ v.
func roundUpPow2(v num.Num) num.Num {
	exp := int64(v.Log2())
	p := num.Pow2(exp)
	for p.Less(v) {
		exp++
		p = num.Pow2(exp)
	}
	return p
}

// GBound returns G(α,n) = t₀·α^{n²/9 + nε/3 − 1} expressed through the
// NO promise: for a NO graph whose largest clique has omegaNo vertices,
// nε/3 = 2n/3 − omegaNo (Lemma 13's bound on N_{2n/3}).
func (fh *FHInstance) GBound(omegaNo int) num.Num {
	n := fh.NSource
	epsTerm := int64(2*n/3 - omegaNo)
	return fh.T0.Mul(fh.Alpha.Pow(int64(n)*int64(n)/9 + epsTerm - 1))
}

// YesWitnessPlan builds the Lemma 12 witness for a YES graph: the
// sequence (R₀, clique of 2n/3 source vertices, the rest) decomposed
// into the five pipelines P(1,1), P(2,n/3), P(n/3+1,2n/3),
// P(2n/3+1,n−1), P(n,n), each with its optimal memory allocation.
// The clique is given in source-vertex labels.
func (fh *FHInstance) YesWitnessPlan(clique []int) (*qoh.Plan, error) {
	n := fh.NSource
	if len(clique) < 2*n/3 {
		return nil, fmt.Errorf("core: witness clique has %d vertices, need ≥ %d", len(clique), 2*n/3)
	}
	z := fh.WitnessSequence(clique)
	var breaks []int
	if n >= 6 {
		breaks = []int{1, n / 3, 2 * n / 3}
		if n-1 > 2*n/3 {
			breaks = append(breaks, n-1)
		}
		if breaks[len(breaks)-1] != n {
			breaks = append(breaks, n)
		}
	} else {
		breaks = []int{n}
	}
	return fh.QOH.CostDecomposition(z, breaks)
}

// WitnessSequence orders the QO_H relations as R₀, then the first 2n/3
// clique vertices, then the remaining source vertices (source labels are
// shifted by one).
func (fh *FHInstance) WitnessSequence(clique []int) []int {
	n := fh.NSource
	z := make([]int, 0, n+1)
	z = append(z, 0)
	used := make([]bool, n+1)
	used[0] = true
	limit := 2 * n / 3
	for _, v := range clique {
		if len(z) == limit+1 {
			break
		}
		z = append(z, v+1)
		used[v+1] = true
	}
	for v := 1; v <= n; v++ {
		if !used[v] {
			z = append(z, v)
		}
	}
	return z
}
