package core

import (
	"testing"

	"approxqo/internal/cliquered"
)

func TestSparseBudgets(t *testing.T) {
	b := SparseBudget(0.5)
	if got := b(16); got != 16+4 {
		t.Errorf("SparseBudget(0.5)(16) = %d, want 20", got)
	}
	d := DenseBudget(0.5, 4, 5)
	// max = 5 + C(12,2) + 1 = 72; minus ⌈16^0.5⌉ = 4 → 68.
	if got := d(16); got != 68 {
		t.Errorf("DenseBudget(16) = %d, want 68", got)
	}
	for _, tau := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tau=%v accepted", tau)
				}
			}()
			SparseBudget(tau)
		}()
	}
}

func TestSparseFNConstruction(t *testing.T) {
	src := cliquered.CertifiedCliqueGraph(4, 3) // ω = 3
	p := SparseFNParams{
		// A ≥ B·n·m = 2·4·16 = 128: the negligibility threshold.
		FNParams: FNParams{A: 128, OmegaYes: 3, OmegaNo: 1},
		K:        2,
		Budget:   SparseBudget(0.5),
		Seed:     7,
	}
	s, err := SparseFN(src.G, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 16 || s.QON.N() != 16 {
		t.Fatalf("m = %d, want 16", s.M)
	}
	// Exact edge budget.
	if got, want := s.QON.Q.EdgeCount(), p.Budget(16); got != want {
		t.Errorf("edge count = %d, want e(16) = %d", got, want)
	}
	if !s.QON.Q.IsConnected() {
		t.Error("sparse query graph disconnected")
	}
	if err := s.QON.Validate(); err != nil {
		t.Fatalf("sparse instance invalid: %v", err)
	}
	// Auxiliary relations are tiny compared to the source relations.
	if !s.U.Less(s.T) {
		t.Error("auxiliary size u not below t")
	}
	// Witness sequence through the bridge works and costs a finite value.
	clique := src.G.MaxClique()
	z := CliqueFirst(s.QON.Q, clique)
	if s.QON.HasCartesianProduct(z) {
		t.Error("clique-first on the connected sparse graph has cartesian products")
	}
	bd := s.QON.Evaluate(z)
	if bd.C.IsZero() {
		t.Error("zero witness cost")
	}
}

// On a matched sparse YES/NO pair at DP-certifiable size, the gap shape
// survives the blow-up: the YES optimum stays within the α^{O(1)}-padded
// K bound and below the NO optimum.
func TestSparseFNGap(t *testing.T) {
	yes := cliquered.CertifiedCliqueGraph(4, 3)
	no := cliquered.CertifiedCliqueGraph(4, 2)
	mk := func(g cliquered.Certified) *SparseFNInstance {
		s, err := SparseFN(g.G, SparseFNParams{
			FNParams: FNParams{A: 128, OmegaYes: 3, OmegaNo: 2},
			K:        2,
			Budget:   SparseBudget(0.5),
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sy, sn := mk(yes), mk(no)
	// m = 16: the subset DP is exact and fast enough here.
	yesZ := CliqueFirst(sy.QON.Q, yes.G.MaxClique())
	noZ := CliqueFirst(sn.QON.Q, no.G.MaxClique())
	yesCost := sy.QON.Cost(yesZ)
	noCost := sn.QON.Cost(noZ)
	if noCost.LessEq(yesCost) {
		t.Errorf("sparse gap absent: NO witness 2^%.1f ≤ YES witness 2^%.1f",
			noCost.Log2(), yesCost.Log2())
	}
	// The YES witness stays within K padded by the auxiliary block's
	// α^{O(1)} slack (one α factor at this scale).
	if sy.K.Mul(sy.Alpha).Less(yesCost) {
		t.Errorf("sparse YES witness 2^%.1f above padded K 2^%.1f",
			yesCost.Log2(), sy.K.Mul(sy.Alpha).Log2())
	}
}

func TestSparseFNRejects(t *testing.T) {
	src := cliquered.CertifiedCliqueGraph(4, 3)
	base := SparseFNParams{
		FNParams: FNParams{A: 128, OmegaYes: 3, OmegaNo: 1},
		K:        2,
		Budget:   SparseBudget(0.5),
	}
	p := base
	p.K = 1
	if _, err := SparseFN(src.G, p); err != nil == false {
		t.Error("K = 1 accepted")
	}
	p = base
	p.Budget = nil
	if _, err := SparseFN(src.G, p); err == nil {
		t.Error("nil budget accepted")
	}
	p = base
	p.Budget = func(m int) int { return m - 2 } // infeasible: too few edges
	if _, err := SparseFN(src.G, p); err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestSparseFHConstruction(t *testing.T) {
	src := cliquered.CertifiedCliqueGraph(6, 4)
	s, err := SparseFH(src.G, SparseFHParams{
		// A ≥ n·m = 216, with A·(n−1) even; τ = 0.75 keeps the budget
		// above the construction's floor |E₁| + n + 1 + (auxN − 1).
		FHParams: FHParams{A: 216},
		K:        2,
		Budget:   SparseBudget(0.75),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 36 || s.QOH.N() != 36 {
		t.Fatalf("m = %d, want 36", s.M)
	}
	if got, want := s.QOH.Q.EdgeCount(), SparseBudget(0.75)(36); got != want {
		t.Errorf("edge count = %d, want %d", got, want)
	}
	if err := s.QOH.Validate(); err != nil {
		t.Fatalf("sparse QO_H instance invalid: %v", err)
	}
	if !s.QOH.Q.IsConnected() {
		t.Error("sparse query graph disconnected")
	}
	// R₀ forcing survives the blow-up.
	if !s.QOH.FeasibleStart(0) {
		t.Error("R₀ not a feasible start")
	}
	if s.QOH.FeasibleStart(1) {
		t.Error("source relation feasible as start despite huge R₀")
	}
	// Witness sequence extends over the auxiliary block and admits a
	// feasible decomposition.
	z := s.WitnessSequenceSparse(src.G.MaxClique())
	if len(z) != 36 {
		t.Fatalf("witness sequence length %d, want 36", len(z))
	}
	plan, err := s.QOH.BestDecomposition(z)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost.IsZero() {
		t.Error("zero plan cost")
	}
}

func TestSparseFHRejects(t *testing.T) {
	src := cliquered.CertifiedCliqueGraph(6, 4)
	if _, err := SparseFH(src.G, SparseFHParams{FHParams: FHParams{A: 216}, K: 1, Budget: SparseBudget(0.75)}); err == nil {
		t.Error("K = 1 accepted")
	}
	bad := cliquered.CertifiedCliqueGraph(5, 3)
	if _, err := SparseFH(bad.G, SparseFHParams{FHParams: FHParams{A: 216}, K: 2, Budget: SparseBudget(0.75)}); err == nil {
		t.Error("n not divisible by 3 accepted")
	}
	// Undersized A rejected.
	if _, err := SparseFH(src.G, SparseFHParams{FHParams: FHParams{A: 4}, K: 2, Budget: SparseBudget(0.75)}); err == nil {
		t.Error("undersized A accepted")
	}
}
