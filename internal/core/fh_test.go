package core

import (
	"testing"

	"approxqo/internal/cliquered"
	"approxqo/internal/graph"
	"approxqo/internal/num"
)

// yes6 is a certified ⅔CLIQUE YES graph on 6 vertices (ω = 4 = 2n/3) and
// no6 a NO graph (ω = 3).
func pair6() (yes, no cliquered.Certified) {
	return cliquered.CertifiedCliqueGraph(6, 4), cliquered.CertifiedCliqueGraph(6, 3)
}

func TestFHConstruction(t *testing.T) {
	yes, _ := pair6()
	fh, err := FH(yes.G, FHParams{A: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fh.QOH.Validate(); err != nil {
		t.Fatalf("constructed instance invalid: %v", err)
	}
	if fh.QOH.N() != 7 {
		t.Fatalf("relation count = %d, want 7", fh.QOH.N())
	}
	// t = α^{(n−1)/2} = 2^{4·5/2} = 2^10.
	if got := fh.T.Log2(); got != 10 {
		t.Errorf("log₂ t = %v, want 10", got)
	}
	// v₀ wired to every source relation.
	for v := 1; v <= 6; v++ {
		if !fh.QOH.Q.HasEdge(0, v) {
			t.Errorf("missing edge v₀–%d", v)
		}
	}
	// L = t₀·α^{n²/9} = t₀·α⁴.
	if got, want := fh.L.Log2(), fh.T0.Log2()+16; got != want {
		t.Errorf("log₂ L = %v, want %v", got, want)
	}
	// The forcing property: only R₀ can start a feasible sequence.
	if !fh.QOH.FeasibleStart(0) {
		t.Error("R₀ not a feasible start")
	}
	for v := 1; v <= 6; v++ {
		if fh.QOH.FeasibleStart(v) {
			t.Errorf("relation %d should be infeasible as a start (R₀ cannot be an inner)", v)
		}
	}
}

func TestFHRejects(t *testing.T) {
	if _, err := FH(graph.Complete(5), FHParams{A: 4}); err == nil {
		t.Error("n not divisible by 3 accepted")
	}
	if _, err := FH(graph.Complete(6), FHParams{A: 3}); err == nil {
		t.Error("odd A·(n−1) accepted")
	}
	if _, err := FH(graph.Complete(6), FHParams{A: 0}); err == nil {
		t.Error("A = 0 accepted")
	}
	if _, err := FH(graph.Complete(6), FHParams{A: 4, Psi: 1.5}); err == nil {
		t.Error("psi out of range accepted")
	}
}

func TestFHWitnessPlan(t *testing.T) {
	yes, _ := pair6()
	fh, err := FH(yes.G, FHParams{A: 4})
	if err != nil {
		t.Fatal(err)
	}
	clique := yes.G.MaxClique()
	plan, err := fh.YesWitnessPlan(clique)
	if err != nil {
		t.Fatal(err)
	}
	// Five pipelines: P(1,1), P(2,2), P(3,4), P(5,5), P(6,6) for n=6.
	if len(plan.Breaks) != 5 {
		t.Errorf("witness plan has %d pipelines, want 5 (%v)", len(plan.Breaks), plan.Breaks)
	}
	if plan.Z[0] != 0 {
		t.Error("witness sequence does not start with R₀")
	}
	// Lemma 12: cost = O(L). The constant is small at this scale.
	if fh.L.MulInt64(16).Less(plan.Cost) {
		t.Errorf("witness cost 2^%.1f not O(L) (L = 2^%.1f)", plan.Cost.Log2(), fh.L.Log2())
	}
	if _, err := fh.YesWitnessPlan(clique[:2]); err == nil {
		t.Error("undersized clique accepted")
	}
}

// The Theorem 15 gap at exhaustively-certifiable scale: exact QO_H
// optima of a YES/NO pair straddle the YES witness bound and stay
// ordered. At n=6 the promise gap ε·n/3 = 1 is the smallest nontrivial
// one; larger n are exercised by the experiment harness.
func TestTheorem15GapExact(t *testing.T) {
	yes, no := pair6()
	fhYes, err := FH(yes.G, FHParams{A: 4})
	if err != nil {
		t.Fatal(err)
	}
	fhNo, err := FH(no.G, FHParams{A: 4})
	if err != nil {
		t.Fatal(err)
	}
	yesBest, err := fhYes.QOH.ExactBest()
	if err != nil {
		t.Fatal(err)
	}
	noBest, err := fhNo.QOH.ExactBest()
	if err != nil {
		t.Fatal(err)
	}
	// Both optima start with R₀ (feasibility forcing).
	if yesBest.Z[0] != 0 || noBest.Z[0] != 0 {
		t.Fatalf("optimal sequences do not start with R₀: %v / %v", yesBest.Z, noBest.Z)
	}
	// Gap direction: the NO optimum is strictly costlier.
	if noBest.Cost.LessEq(yesBest.Cost) {
		t.Errorf("no gap: NO optimum 2^%.1f ≤ YES optimum 2^%.1f",
			noBest.Cost.Log2(), yesBest.Cost.Log2())
	}
	// The NO optimum exceeds G(α,n) up to its Ω(·) constant; check the
	// certified ordering NoBest ≥ GBound/α as a conservative form.
	gb := fhNo.GBound(no.Omega)
	if noBest.Cost.Mul(fhNo.Alpha).Less(gb) {
		t.Errorf("NO optimum 2^%.1f far below G bound 2^%.1f", noBest.Cost.Log2(), gb.Log2())
	}
	// The witness plan is an upper bound for the YES optimum.
	plan, err := fhYes.YesWitnessPlan(yes.G.MaxClique())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost.Less(yesBest.Cost) {
		t.Error("witness plan beats the exhaustive optimum")
	}
}

// Lemma 11: along the witness sequence of a YES instance, the five cut
// sizes N₁, N_{n/3}, N_{2n/3}, N_{n−1}, N_n are all O(L).
func TestLemma11CutSizes(t *testing.T) {
	yes := cliquered.CertifiedCliqueGraph(9, 6) // n = 9, ω = 6 = 2n/3
	fh, err := FH(yes.G, FHParams{A: 4})
	if err != nil {
		t.Fatal(err)
	}
	z := fh.WitnessSequence(yes.G.MaxClique())
	sizes := fh.QOH.Sizes(z)
	n := fh.NSource
	bound := fh.L.MulInt64(4)
	for _, cut := range []int{1, n / 3, 2 * n / 3, n - 1, n} {
		if bound.Less(sizes[cut]) {
			t.Errorf("N_%d = 2^%.1f exceeds O(L) = 2^%.1f", cut, sizes[cut].Log2(), bound.Log2())
		}
	}
}

// Lemma 13: for a NO instance, every feasible sequence has
// N_{n/3+j} = Ω(G) for 1 ≤ j ≤ n/3 — spot-check across sampled orders.
func TestLemma13MiddleSizesSampled(t *testing.T) {
	no := cliquered.CertifiedCliqueGraph(9, 5) // ω = 5 < (2−ε)·9/3
	fh, err := FH(no.G, FHParams{A: 4})
	if err != nil {
		t.Fatal(err)
	}
	gb := fh.GBound(no.Omega)
	n := fh.NSource
	// Try the adversary's best shot: greedy-clique-first orders and a few
	// rotations.
	clique := no.G.MaxClique()
	for shift := 0; shift < 3; shift++ {
		rotated := append(append([]int(nil), clique[shift:]...), clique[:shift]...)
		z := fh.WitnessSequence(rotated)
		sizes := fh.QOH.Sizes(z)
		for j := 1; j <= n/3; j++ {
			// Ω(·) tolerance: one factor of α.
			if sizes[n/3+j].Mul(fh.Alpha).Less(gb) {
				t.Errorf("shift %d: N_%d = 2^%.1f below Ω(G) = 2^%.1f",
					shift, n/3+j, sizes[n/3+j].Log2(), gb.Log2())
			}
		}
	}
}

func TestRoundUpPow2(t *testing.T) {
	cases := []struct{ in, want int64 }{{1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024}}
	for _, tc := range cases {
		got, ok := roundUpPow2(num.FromInt64(tc.in)).Int64()
		if !ok || got != tc.want {
			t.Errorf("roundUpPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
