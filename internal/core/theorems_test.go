package core

import (
	"testing"

	"approxqo/internal/sat"
)

func satFormula() *sat.Formula {
	f := sat.New(3)
	f.AddClause(1, 2, 3)
	f.AddClause(-1, 2)
	return f
}

func unsatFormula() *sat.Formula {
	f := sat.New(2)
	f.AddClause(1)
	f.AddClause(-1)
	f.AddClause(2)
	return f
}

func TestTheorem9PipelineSat(t *testing.T) {
	res, err := Theorem9(satFormula(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("satisfiable formula misjudged")
	}
	if err := res.FN.QON.Validate(); err != nil {
		t.Fatalf("constructed instance invalid: %v", err)
	}
	// The witness is a valid sequence starting with a clique of size
	// CliqueIfSat whose cost is positive.
	if !res.FN.QON.ValidSequence(res.Witness) {
		t.Fatal("invalid witness sequence")
	}
	k := res.Clique.CliqueIfSat
	if !res.Clique.G.IsClique(res.Witness[:k]) {
		t.Error("witness does not start with the promised clique")
	}
	if res.WitnessCost.IsZero() {
		t.Error("zero witness cost")
	}
	// Instance size: n = 6v + 6m = 6·3 + 6·2 = 30.
	if res.FN.QON.N() != 30 {
		t.Errorf("instance has %d relations, want 30", res.FN.QON.N())
	}
}

func TestTheorem9PipelineUnsat(t *testing.T) {
	res, err := Theorem9(unsatFormula(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Fatal("unsatisfiable formula misjudged")
	}
	if res.Witness != nil {
		t.Error("witness produced for unsatisfiable formula")
	}
	// The NO promise with delta = 1 is exact here (MaxSat fails exactly
	// one clause), so Lemma 8's bound must hold; verify the constructed
	// graph really has ω = CliqueIfSat − 1.
	omega := res.Clique.G.CliqueNumber()
	if omega != res.Clique.CliqueIfSat-1 {
		t.Fatalf("ω = %d, want %d", omega, res.Clique.CliqueIfSat-1)
	}
}

func TestTheorem9Rejects(t *testing.T) {
	if _, err := Theorem9(satFormula(), 4, 0); err == nil {
		t.Error("delta = 0 accepted")
	}
	if _, err := Theorem9(satFormula(), 4, 10_000); err == nil {
		t.Error("promise-exhausting delta accepted")
	}
}

func TestTheorem15PipelineSat(t *testing.T) {
	res, err := Theorem15(satFormula(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("satisfiable formula misjudged")
	}
	if err := res.FH.QOH.Validate(); err != nil {
		t.Fatalf("constructed instance invalid: %v", err)
	}
	// Lemma 4 graph: n = 3(v+2m) = 3·7 = 21 → 22 relations.
	if res.FH.QOH.N() != 22 {
		t.Errorf("instance has %d relations, want 22", res.FH.QOH.N())
	}
	if res.WitnessPlan == nil || res.WitnessPlan.Cost.IsZero() {
		t.Fatal("missing witness plan")
	}
	if res.WitnessPlan.Z[0] != 0 {
		t.Error("witness plan does not start with R₀")
	}
	// Lemma 12: witness cost = O(L).
	if res.FH.L.MulInt64(64).Less(res.WitnessPlan.Cost) {
		t.Errorf("witness cost 2^%.1f not O(L) (L = 2^%.1f)",
			res.WitnessPlan.Cost.Log2(), res.FH.L.Log2())
	}
}

func TestTheorem15PipelineUnsat(t *testing.T) {
	res, err := Theorem15(unsatFormula(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable || res.WitnessPlan != nil {
		t.Fatal("unsatisfiable formula misjudged")
	}
	// ⅔CLIQUE NO side: ω < 2n/3.
	n := res.Clique.G.N()
	if omega := res.Clique.G.CliqueNumber(); omega >= 2*n/3 {
		t.Errorf("ω = %d, want < %d", omega, 2*n/3)
	}
}

func TestTheorem15OddA(t *testing.T) {
	// n = 3(v+2m) = 21, so A·(n−1) = 20·A is always even — any A works
	// for this shape; the A parity check is covered in fh tests. Here
	// verify an odd A still passes for n−1 even.
	if _, err := Theorem15(satFormula(), 3); err != nil {
		t.Fatalf("odd A with even n−1 rejected: %v", err)
	}
}

func TestTheorem16Pipeline(t *testing.T) {
	f := satFormula() // v=3, m=2 → Lemma 3 graph n = 30, m = n^2 = 900
	n := 30
	m := n * n
	cl, sp, err := Theorem16(f, SparseFNParams{
		FNParams: FNParams{A: 2 * int64(n) * int64(m)},
		K:        2,
		// The Lemma 3 source graph is dense (|E₁| = Θ(n²)), so the edge
		// budget needs the larger τ before G₂ can stay connected.
		Budget: SparseBudget(0.9),
		Seed:   5,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.M != m || sp.QON.N() != m {
		t.Fatalf("blow-up m = %d, want %d", sp.M, m)
	}
	if got, want := sp.QON.Q.EdgeCount(), SparseBudget(0.9)(m); got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
	if err := sp.QON.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	if sp.Params.OmegaYes != cl.CliqueIfSat {
		t.Error("promise not derived from the Lemma 3 instance")
	}
	if _, _, err := Theorem16(f, SparseFNParams{}, 0); err == nil {
		t.Error("delta = 0 accepted")
	}
}

func TestTheorem17Pipeline(t *testing.T) {
	f := satFormula() // Lemma 4 graph n = 21 → m = 441
	n := 21
	m := n * n
	a := int64(n) * int64(m)
	if a*int64(n-1)%2 != 0 {
		a++
	}
	cl, sp, err := Theorem17(f, SparseFHParams{
		FHParams: FHParams{A: a},
		K:        2,
		// The Lemma 4 source graph is dense (|E₁| = Θ(n²)), so the edge
		// budget needs the larger τ before G₂ can stay connected.
		Budget: SparseBudget(0.9),
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp.M != m {
		t.Fatalf("blow-up m = %d, want %d", sp.M, m)
	}
	if err := sp.QOH.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	if cl.G.N() != n {
		t.Errorf("Lemma 4 graph has %d vertices, want %d", cl.G.N(), n)
	}
	if !sp.QOH.FeasibleStart(0) || sp.QOH.FeasibleStart(1) {
		t.Error("R₀ forcing lost in the sparse blow-up")
	}
}

// The paper's chain formally starts from 3SAT(13); run Theorem 9 on the
// occurrence-bounded transform of a formula and verify the pipeline is
// unaffected (Bound13 preserves satisfiability, and the constructed
// graph stays dense enough).
func TestTheorem9From3SAT13(t *testing.T) {
	raw := sat.Random3SAT(3, 9, 4) // heavy occurrence counts
	bounded := sat.Bound13(raw)
	if bounded.MaxOccurrences() > 13 {
		t.Fatalf("Bound13 left %d occurrences", bounded.MaxOccurrences())
	}
	res, err := Theorem9(bounded, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable != sat.Satisfiable(raw) {
		t.Error("satisfiability changed through the chain")
	}
	if err := res.FN.QON.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	// Density: the Lemma 3 graph from a 13-bounded formula keeps min
	// degree ≥ n−15 (see cliquered tests); spot-check here too.
	n := res.Clique.G.N()
	if md := res.Clique.G.MinDegree(); md < n-15 {
		t.Errorf("min degree %d < n−15 = %d", md, n-15)
	}
}
